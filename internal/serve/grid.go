package serve

import (
	"fmt"

	"github.com/anacin-go/anacinx/internal/campaign"
	"github.com/anacin-go/anacinx/internal/core"
	"github.com/anacin-go/anacinx/internal/patterns"
)

// GridRequest is the JSON body of POST /v1/campaigns: the wire form of
// a campaign.Grid. Omitted dimensions take the paper-flavoured
// defaults (campaign.DefaultGrid); an omitted or zero runs takes
// campaign.DefaultRuns — over HTTP there is no way to distinguish
// "absent" from 0, and a 0-run campaign is never what a client meant —
// while base_seed is taken literally (0 is a valid seed). kernel is a
// core.ParseKernel spec string ("wl2", "wlu3", "vertex", ...).
type GridRequest struct {
	Patterns      []string  `json:"patterns,omitempty"`
	Procs         []int     `json:"procs,omitempty"`
	Iterations    []int     `json:"iterations,omitempty"`
	Nodes         []int     `json:"nodes,omitempty"`
	NDPercents    []float64 `json:"nd_percents,omitempty"`
	Runs          int       `json:"runs,omitempty"`
	BaseSeed      int64     `json:"base_seed,omitempty"`
	Kernel        string    `json:"kernel,omitempty"`
	CaptureStacks bool      `json:"capture_stacks,omitempty"`
}

// grid validates the request and converts it to a normalized
// campaign.Grid. Every returned error is a client error (HTTP 400):
// the limits guard the server, not the simulator — maxCells/maxRuns
// come from the server's Config.
func (r *GridRequest) grid(maxCells, maxRuns int) (campaign.Grid, error) {
	g := campaign.Grid{
		Patterns:      r.Patterns,
		Procs:         r.Procs,
		Iterations:    r.Iterations,
		Nodes:         r.Nodes,
		NDPercents:    r.NDPercents,
		Runs:          r.Runs,
		BaseSeed:      r.BaseSeed,
		CaptureStacks: r.CaptureStacks,
	}
	if g.Runs == 0 {
		g.Runs = campaign.DefaultRuns
	}
	if g.Runs < 1 {
		return campaign.Grid{}, fmt.Errorf("runs = %d, need >= 1", r.Runs)
	}
	if g.Runs > maxRuns {
		return campaign.Grid{}, fmt.Errorf("runs = %d exceeds the server's limit of %d", g.Runs, maxRuns)
	}
	k, err := core.ParseKernel(r.Kernel)
	if err != nil {
		return campaign.Grid{}, fmt.Errorf("kernel: %v", err)
	}
	g.Kernel = k

	q, err := g.Normalized()
	if err != nil {
		return campaign.Grid{}, err
	}
	if cells := q.Cells(); cells > maxCells {
		return campaign.Grid{}, fmt.Errorf("grid has %d cells, exceeding the server's limit of %d", cells, maxCells)
	}
	for _, name := range q.Patterns {
		pat, err := patterns.ByName(name)
		if err != nil {
			return campaign.Grid{}, err
		}
		for _, procs := range q.Procs {
			if procs < pat.MinProcs() {
				return campaign.Grid{}, fmt.Errorf("pattern %q needs >= %d procs, got %d", name, pat.MinProcs(), procs)
			}
		}
	}
	for _, it := range q.Iterations {
		if it < 1 {
			return campaign.Grid{}, fmt.Errorf("iterations must be >= 1, got %d", it)
		}
	}
	for _, n := range q.Nodes {
		if n < 1 {
			return campaign.Grid{}, fmt.Errorf("nodes must be >= 1, got %d", n)
		}
	}
	for _, nd := range q.NDPercents {
		if nd < 0 || nd > 100 {
			return campaign.Grid{}, fmt.Errorf("nd_percents must be in [0, 100], got %g", nd)
		}
	}
	return q, nil
}
