package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/anacin-go/anacinx/internal/campaign"
	"github.com/anacin-go/anacinx/internal/kernel"
)

func fpOf(word uint64) kernel.Fingerprint {
	f := kernel.NewFingerprinter()
	f.Word(word)
	return f.Sum()
}

func okCell(pattern string) campaign.Cell {
	return campaign.Cell{Pattern: pattern, Procs: 4, Iterations: 1, Nodes: 1, Runs: 2}
}

func TestStoreHitMissCounters(t *testing.T) {
	s := NewStore()
	computes := 0
	compute := func(context.Context) campaign.Cell { computes++; return okCell("p") }

	cell, src, err := s.GetOrCompute(context.Background(), fpOf(1), compute)
	if err != nil || src != SourceComputed || cell.Pattern != "p" {
		t.Fatalf("first get: cell=%+v src=%v err=%v", cell, src, err)
	}
	cell, src, err = s.GetOrCompute(context.Background(), fpOf(1), compute)
	if err != nil || src != SourceStore || cell.Pattern != "p" {
		t.Fatalf("second get: cell=%+v src=%v err=%v", cell, src, err)
	}
	if computes != 1 {
		t.Errorf("computes = %d, want 1", computes)
	}
	if s.Hits() != 1 || s.Misses() != 1 || s.Joined() != 0 || s.Len() != 1 {
		t.Errorf("counters: hits=%d misses=%d joined=%d len=%d", s.Hits(), s.Misses(), s.Joined(), s.Len())
	}
}

// TestStoreSingleflight pins the dedupe core: N concurrent requests
// for the same fingerprint run exactly one computation, and everyone
// receives its result.
func TestStoreSingleflight(t *testing.T) {
	s := NewStore()
	var computes atomic.Int32
	release := make(chan struct{})
	compute := func(ctx context.Context) campaign.Cell {
		computes.Add(1)
		<-release
		return okCell("dedup")
	}

	const n = 8
	var wg sync.WaitGroup
	var joined atomic.Int32
	results := make([]campaign.Cell, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cell, src, err := s.GetOrCompute(context.Background(), fpOf(7), compute)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
			}
			if src == SourceJoined {
				joined.Add(1)
			}
			results[i] = cell
		}(i)
	}
	// Let the requests pile onto the flight, then release the compute.
	for s.Joined() < n-1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Errorf("computations = %d, want 1", got)
	}
	if got := joined.Load(); got != n-1 {
		t.Errorf("joined = %d, want %d", got, n-1)
	}
	for i, c := range results {
		if c.Pattern != "dedup" {
			t.Errorf("request %d got cell %+v", i, c)
		}
	}
}

// TestStoreComputeOutlivesFirstCaller: the computation keeps running
// for the second waiter after the first caller disconnects.
func TestStoreComputeOutlivesFirstCaller(t *testing.T) {
	s := NewStore()
	started := make(chan struct{})
	release := make(chan struct{})
	var sawCancel atomic.Bool
	compute := func(ctx context.Context) campaign.Cell {
		close(started)
		select {
		case <-release:
			return okCell("survivor")
		case <-ctx.Done():
			sawCancel.Store(true)
			return campaign.Cell{Err: ctx.Err()}
		}
	}

	ctx1, cancel1 := context.WithCancel(context.Background())
	firstDone := make(chan error, 1)
	go func() {
		_, _, err := s.GetOrCompute(ctx1, fpOf(9), compute)
		firstDone <- err
	}()
	<-started

	secondDone := make(chan campaign.Cell, 1)
	go func() {
		cell, _, err := s.GetOrCompute(context.Background(), fpOf(9), compute)
		if err != nil {
			t.Errorf("second waiter: %v", err)
		}
		secondDone <- cell
	}()
	// Wait until the second request has actually joined the flight.
	for s.Joined() == 0 {
		time.Sleep(time.Millisecond)
	}

	cancel1()
	if err := <-firstDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("first caller err = %v, want context.Canceled", err)
	}
	close(release)
	if cell := <-secondDone; cell.Pattern != "survivor" || cell.Err != nil {
		t.Errorf("second waiter cell = %+v", cell)
	}
	if sawCancel.Load() {
		t.Error("computation was cancelled despite a live waiter")
	}
	if s.Misses() != 1 {
		t.Errorf("misses = %d, want 1", s.Misses())
	}
}

// TestStoreCancelWhenAllWaiversGone: once every waiter disconnects,
// the computation's context is cancelled and nothing is stored.
func TestStoreCancelWhenAllWaitersGone(t *testing.T) {
	s := NewStore()
	started := make(chan struct{})
	cancelled := make(chan struct{})
	compute := func(ctx context.Context) campaign.Cell {
		close(started)
		<-ctx.Done()
		close(cancelled)
		return campaign.Cell{Err: ctx.Err()}
	}

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, err := s.GetOrCompute(ctx, fpOf(11), compute)
		errCh <- err
	}()
	<-started
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("compute context never cancelled after its only waiter left")
	}
	// The cancelled result must not be stored: a retry computes fresh.
	for s.Inflight() != 0 {
		time.Sleep(time.Millisecond)
	}
	if s.Len() != 0 {
		t.Errorf("store kept a cancelled cell (len=%d)", s.Len())
	}
	cell, src, err := s.GetOrCompute(context.Background(), fpOf(11),
		func(context.Context) campaign.Cell { return okCell("retry") })
	if err != nil || src != SourceComputed || cell.Pattern != "retry" {
		t.Errorf("retry after cancel: cell=%+v src=%v err=%v", cell, src, err)
	}
}

// TestStoreFailedCellNotCached: a cell that fails (non-cancellation)
// is returned to its requester but not stored, so the next request
// retries.
func TestStoreFailedCellNotCached(t *testing.T) {
	s := NewStore()
	calls := 0
	boom := errors.New("boom")
	compute := func(context.Context) campaign.Cell {
		calls++
		if calls == 1 {
			return campaign.Cell{Pattern: "p", Err: boom}
		}
		return okCell("p")
	}
	cell, _, err := s.GetOrCompute(context.Background(), fpOf(3), compute)
	if err != nil || !errors.Is(cell.Err, boom) {
		t.Fatalf("first: cell.Err=%v err=%v", cell.Err, err)
	}
	cell, src, err := s.GetOrCompute(context.Background(), fpOf(3), compute)
	if err != nil || cell.Err != nil || src != SourceComputed {
		t.Fatalf("retry: cell=%+v src=%v err=%v", cell, src, err)
	}
	if calls != 2 {
		t.Errorf("calls = %d, want 2", calls)
	}
}
