// Package serve is the long-running campaign service in front of the
// pipeline: submit a campaign grid as JSON, get a job id, stream live
// per-cell progress over SSE, and fetch results when done. Its
// production core is a content-addressed result store — every grid
// cell is keyed by a fingerprint of everything that determines its
// measurement (campaign.Grid.CellFingerprint), so concurrent jobs
// submitting overlapping grids dedupe to one simulation and repeat
// queries are served from the store without simulating at all.
//
// The package lives outside the simulated world: unlike internal/sim
// and friends it legitimately uses wall-clock time, goroutines, and
// net/http, and is therefore deliberately not in the determinism
// linter's wallclock/goroutine package scopes (internal/lint).
package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"github.com/anacin-go/anacinx/internal/campaign"
	"github.com/anacin-go/anacinx/internal/kernel"
)

// Source says where a cell result came from.
type Source string

const (
	// SourceComputed: this request ran the simulation.
	SourceComputed Source = "computed"
	// SourceJoined: another request was already simulating the same
	// cell; this one waited for it (in-flight dedupe).
	SourceJoined Source = "joined"
	// SourceStore: the cell was already in the store (content hit).
	SourceStore Source = "store"
)

// Store is the content-addressed result store. Completed cells are
// kept forever (a cell is a pure function of its fingerprint, so
// entries never go stale), and at most one simulation per fingerprint
// is in flight at a time: concurrent requests for the same cell join
// the in-flight computation instead of starting their own
// (singleflight). All methods are safe for concurrent use.
type Store struct {
	mu       sync.Mutex
	cells    map[kernel.Fingerprint]campaign.Cell
	inflight map[kernel.Fingerprint]*flight

	hits   atomic.Uint64
	misses atomic.Uint64
	joined atomic.Uint64
}

// flight is one in-progress cell computation. The compute context is
// detached from any single caller and refcounted by waiters: it is
// cancelled only when every job waiting on the cell has gone away, so
// one client disconnecting never aborts work another client needs.
type flight struct {
	done    chan struct{} // closed when cell is set
	cell    campaign.Cell
	waiters int
	cancel  context.CancelFunc
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		cells:    make(map[kernel.Fingerprint]campaign.Cell, 64),
		inflight: make(map[kernel.Fingerprint]*flight),
	}
}

// GetOrCompute returns the cell stored under fp, computing it at most
// once across all concurrent callers. compute receives a context that
// stays alive while at least one caller is still waiting; if every
// waiter's ctx is cancelled, the computation is cancelled too. The
// returned Source distinguishes a store hit, an in-flight join, and an
// actual computation. ctx errors are returned as err; a failed
// computation instead surfaces via the returned cell's Err field and
// is NOT stored, so a later identical request retries it.
func (s *Store) GetOrCompute(ctx context.Context, fp kernel.Fingerprint, compute func(context.Context) campaign.Cell) (campaign.Cell, Source, error) {
	for {
		cell, src, retry, err := s.attempt(ctx, fp, compute)
		if err == nil && retry && ctx.Err() == nil {
			// The flight this caller joined was cancelled under it (its
			// last waiter left just as we arrived). Our context is still
			// live, so try again — the next attempt computes fresh.
			continue
		}
		return cell, src, err
	}
}

func (s *Store) attempt(ctx context.Context, fp kernel.Fingerprint, compute func(context.Context) campaign.Cell) (campaign.Cell, Source, bool, error) {
	s.mu.Lock()
	if cell, ok := s.cells[fp]; ok {
		s.hits.Add(1)
		s.mu.Unlock()
		return cell, SourceStore, false, nil
	}
	if f, ok := s.inflight[fp]; ok {
		s.joined.Add(1)
		f.waiters++
		s.mu.Unlock()
		select {
		case <-f.done:
			return f.cell, SourceJoined, cancelled(f.cell), nil
		case <-ctx.Done():
			s.release(f)
			return campaign.Cell{}, SourceJoined, false, ctx.Err()
		}
	}
	s.misses.Add(1)
	// The compute context is rooted in Background, not in ctx: other
	// waiters may join this flight, and their interest must keep the
	// simulation alive after the first caller disconnects.
	cctx, cancel := context.WithCancel(context.Background())
	f := &flight{done: make(chan struct{}), waiters: 1, cancel: cancel}
	s.inflight[fp] = f
	s.mu.Unlock()

	go func() {
		cell := compute(cctx)
		s.mu.Lock()
		f.cell = cell
		if cell.Err == nil {
			s.cells[fp] = cell
		}
		delete(s.inflight, fp)
		s.mu.Unlock()
		cancel()
		close(f.done)
	}()

	select {
	case <-f.done:
		return f.cell, SourceComputed, false, nil
	case <-ctx.Done():
		s.release(f)
		return campaign.Cell{}, SourceComputed, false, ctx.Err()
	}
}

// Len returns the number of stored cells.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cells)
}

// Inflight returns how many cell computations are currently running.
func (s *Store) Inflight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.inflight)
}

// Hits counts requests served directly from the store.
func (s *Store) Hits() uint64 { return s.hits.Load() }

// Misses counts requests that started a simulation — the store's
// measure of actual compute spent. A resubmitted grid whose every cell
// hits leaves Misses unchanged.
func (s *Store) Misses() uint64 { return s.misses.Load() }

// Joined counts requests that deduped onto an in-flight computation.
func (s *Store) Joined() uint64 { return s.joined.Load() }

// release drops one waiter's interest in a flight; the last one out
// cancels the computation. Cancelling after the flight completed is a
// harmless no-op.
func (s *Store) release(f *flight) {
	s.mu.Lock()
	f.waiters--
	last := f.waiters == 0
	s.mu.Unlock()
	if last {
		f.cancel()
	}
}

// cancelled reports whether the cell's recorded error is cancellation
// fallout rather than a real measurement failure. A joiner that
// receives such a cell retries (its own context is still live): the
// flight it joined was torn down because its other waiters left, not
// because the cell is uncomputable.
func cancelled(c campaign.Cell) bool {
	return c.Err != nil &&
		(errors.Is(c.Err, context.Canceled) || errors.Is(c.Err, context.DeadlineExceeded))
}
