package serve

import (
	"encoding/json"
	"sync"
)

// Event is one server-sent event: a monotonically increasing ID (the
// SSE `id:` field, 1-based per job), a type (the SSE `event:` field),
// and a pre-marshaled JSON payload (the SSE `data:` field).
type Event struct {
	ID   int
	Type string
	Data []byte
}

// EventLog is an append-only per-job event history with broadcast.
// Every subscriber — no matter how late it connects — observes exactly
// the same sequence: Snapshot replays the backlog from any cursor, and
// the changed channel wakes waiters on append. The log is closed when
// its job reaches a terminal state; a drained subscriber then ends its
// stream instead of waiting forever.
type EventLog struct {
	mu      sync.Mutex
	events  []Event
	closed  bool
	changed chan struct{} // closed and replaced on every Append/Close
}

// NewEventLog returns an empty open log.
func NewEventLog() *EventLog {
	return &EventLog{changed: make(chan struct{})}
}

// Append marshals v and appends it as the next event. Appending to a
// closed log panics: events after the terminal event would be
// unobservable by design, so that is a programming error.
func (l *EventLog) Append(typ string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		// Event payloads are our own structs of plain values; a marshal
		// failure is a programming error, not a runtime condition.
		panic("serve: unmarshalable event payload: " + err.Error())
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		panic("serve: Append on closed EventLog")
	}
	l.events = append(l.events, Event{ID: len(l.events) + 1, Type: typ, Data: data})
	close(l.changed)
	l.changed = make(chan struct{})
}

// Close marks the log complete and wakes all waiters. Closing twice is
// a no-op.
func (l *EventLog) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	close(l.changed)
	l.changed = make(chan struct{})
}

// Snapshot returns the events after cursor (an event ID; 0 replays
// everything), whether the log is closed, and a channel that is closed
// on the next append or close. The caller loops: deliver the batch,
// advance its cursor, and when the batch is empty and the log is not
// closed, wait on changed (or its client's disconnect).
func (l *EventLog) Snapshot(cursor int) (batch []Event, closed bool, changed <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if cursor < 0 {
		cursor = 0
	}
	if cursor < len(l.events) {
		// Events are 1-based and dense, so the event after ID cursor
		// lives at index cursor.
		batch = l.events[cursor:len(l.events):len(l.events)]
	}
	return batch, l.closed, l.changed
}

// Len returns the number of events appended so far.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}
