package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"github.com/anacin-go/anacinx/internal/trace"
)

// Config tunes a Server. The zero value serves with sensible limits.
type Config struct {
	// CellWorkers caps concurrent cells per job (0 = GOMAXPROCS).
	CellWorkers int
	// SimWorkers caps simulations in flight across all jobs
	// (0 = GOMAXPROCS).
	SimWorkers int
	// MaxCells rejects grids with more cells (0 = DefaultMaxCells).
	MaxCells int
	// MaxRuns rejects grids with more runs per cell (0 = DefaultMaxRuns).
	MaxRuns int
	// MaxBodyBytes caps the request body (0 = DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// ArchiveDir, when non-empty, runs cells through the streaming
	// pipeline and archives every run's v2 binary trace under
	// <ArchiveDir>/<cell-fingerprint>/run-<i>.anctr. The archive is the
	// durable counterpart of the in-memory result store: any archived
	// cell can be re-derived offline with `anacin replay`.
	ArchiveDir string
	// Codec tunes archived-trace compression (DEFLATE level, codec
	// worker count). Zero is the v2 format default; the worker count
	// never changes archived bytes.
	Codec trace.CodecOptions
	// Log receives request and lifecycle lines (nil = log.Default()).
	Log *log.Logger
}

// Default admission limits: generous for a course-scale service,
// small enough that one request cannot monopolize the machine.
const (
	DefaultMaxCells     = 1024
	DefaultMaxRuns      = 200
	DefaultMaxBodyBytes = 1 << 20
)

// Server is the anacind campaign service: HTTP handlers over a job
// registry and a content-addressed result store.
type Server struct {
	cfg      Config
	store    *Store
	registry *Registry
	mux      *http.ServeMux
	started  time.Time
}

// New assembles a server from its config.
func New(cfg Config) *Server {
	if cfg.MaxCells <= 0 {
		cfg.MaxCells = DefaultMaxCells
	}
	if cfg.MaxRuns <= 0 {
		cfg.MaxRuns = DefaultMaxRuns
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.Log == nil {
		cfg.Log = log.Default()
	}
	store := NewStore()
	s := &Server{
		cfg:      cfg,
		store:    store,
		registry: NewRegistryArchive(store, cfg.CellWorkers, cfg.SimWorkers, cfg.ArchiveDir, cfg.Codec),
		mux:      http.NewServeMux(),
		started:  time.Now(),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/campaigns", s.handleList)
	s.mux.HandleFunc("GET /v1/campaigns/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /v1/campaigns/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/results", s.handleResults)
	return s
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Store exposes the result store (stats, tests).
func (s *Server) Store() *Store { return s.store }

// Registry exposes the job registry (tests, drain).
func (s *Server) Registry() *Registry { return s.registry }

// Shutdown gracefully drains the server: new submissions are refused
// with 503 while in-flight jobs finish. If ctx expires first, the
// remaining jobs are cancelled (and still waited for) before
// returning ctx's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.cfg.Log.Printf("anacind: draining (%d job(s) running)", s.runningJobs())
	err := s.registry.Drain(ctx)
	if err != nil {
		s.cfg.Log.Printf("anacind: drain grace expired; jobs cancelled: %v", err)
	} else {
		s.cfg.Log.Printf("anacind: drained")
	}
	return err
}

func (s *Server) runningJobs() int {
	n := 0
	for _, j := range s.registry.Jobs() {
		st := j.Status()
		if st == StatusQueued || st == StatusRunning {
			n++
		}
	}
	return n
}

// httpError is the uniform JSON error shape.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)}) //nolint:errcheck
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// statsView is the /v1/stats payload: store effectiveness and job
// population. misses counts actual simulations; a resubmitted grid
// that fully dedupes leaves it unchanged — the smoke gate's assertion.
type statsView struct {
	UptimeMS int64 `json:"uptime_ms"`
	Store    struct {
		Entries  int    `json:"entries"`
		Inflight int    `json:"inflight"`
		Hits     uint64 `json:"hits"`
		Misses   uint64 `json:"misses"`
		Joined   uint64 `json:"joined"`
	} `json:"store"`
	Jobs struct {
		Total     int `json:"total"`
		Running   int `json:"running"`
		Done      int `json:"done"`
		Cancelled int `json:"cancelled"`
	} `json:"jobs"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var v statsView
	v.UptimeMS = time.Since(s.started).Milliseconds()
	v.Store.Entries = s.store.Len()
	v.Store.Inflight = s.store.Inflight()
	v.Store.Hits = s.store.Hits()
	v.Store.Misses = s.store.Misses()
	v.Store.Joined = s.store.Joined()
	for _, j := range s.registry.Jobs() {
		v.Jobs.Total++
		switch j.Status() {
		case StatusQueued, StatusRunning:
			v.Jobs.Running++
		case StatusDone:
			v.Jobs.Done++
		case StatusCancelled:
			v.Jobs.Cancelled++
		}
	}
	writeJSON(w, http.StatusOK, v)
}

// submitResponse echoes the admitted job plus its resource links.
type submitResponse struct {
	JobView
	Links map[string]string `json:"links"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if ct := r.Header.Get("Content-Type"); ct != "" && !strings.HasPrefix(ct, "application/json") {
		httpError(w, http.StatusUnsupportedMediaType, "content-type %q, want application/json", ct)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req GridRequest
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad grid json: %v", err)
		return
	}
	if dec.More() {
		httpError(w, http.StatusBadRequest, "bad grid json: trailing data after the grid object")
		return
	}
	grid, err := req.grid(s.cfg.MaxCells, s.cfg.MaxRuns)
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid grid: %v", err)
		return
	}
	job, err := s.registry.Submit(grid)
	if errors.Is(err, ErrDraining) {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid grid: %v", err)
		return
	}
	s.cfg.Log.Printf("anacind: %s submitted: %d cell(s) x %d run(s), kernel %s",
		job.ID, len(job.specs), grid.Runs, grid.Kernel.Name())
	writeJSON(w, http.StatusAccepted, submitResponse{
		JobView: job.View(),
		Links: map[string]string{
			"self":    "/v1/campaigns/" + job.ID,
			"events":  "/v1/campaigns/" + job.ID + "/events",
			"results": "/v1/campaigns/" + job.ID + "/results",
		},
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.registry.Jobs()
	views := make([]JobView, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.View())
	}
	writeJSON(w, http.StatusOK, map[string]any{"campaigns": views})
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.registry.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no campaign %q", id)
		return nil, false
	}
	return j, true
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"job": j.View(), "cells": j.Cells()})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	j.Cancel()
	<-j.Done()
	s.cfg.Log.Printf("anacind: %s cancelled", j.ID)
	writeJSON(w, http.StatusOK, map[string]any{"job": j.View()})
}

// handleEvents streams the job's event log as Server-Sent Events. The
// full history replays first (or everything after Last-Event-ID on
// reconnect), then live events as cells complete; the stream ends
// after the terminal `done` event, so a plain blocking client reads to
// EOF exactly when the job is over.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	cursor := 0
	if last := r.Header.Get("Last-Event-ID"); last != "" {
		fmt.Sscanf(last, "%d", &cursor) //nolint:errcheck
	}
	log := j.Events()
	for {
		batch, closed, changed := log.Snapshot(cursor)
		for _, ev := range batch {
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Type, ev.Data); err != nil {
				return
			}
			cursor = ev.ID
		}
		if len(batch) > 0 {
			fl.Flush()
		}
		if closed && func() bool { b, _, _ := log.Snapshot(cursor); return len(b) == 0 }() {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// handleResults serves the finished campaign. While the job is still
// running it answers 202 with the job view (poll or use the SSE
// stream); a cancelled job answers 410. ?format=csv and
// ?format=markdown reuse the campaign writers, so a service result is
// byte-identical to what `anacin campaign` would have written for the
// same grid.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	switch j.Status() {
	case StatusQueued, StatusRunning:
		writeJSON(w, http.StatusAccepted, map[string]any{"job": j.View()})
		return
	case StatusCancelled:
		httpError(w, http.StatusGone, "campaign %s was cancelled", j.ID)
		return
	}
	res := j.Result()
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, map[string]any{
			"job":    j.View(),
			"kernel": res.KernelName,
			"cells":  j.Cells(),
		})
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		writeOrLog(s.cfg.Log, w, func(w io.Writer) error { return res.WriteCSV(w) })
	case "markdown", "md":
		w.Header().Set("Content-Type", "text/markdown")
		writeOrLog(s.cfg.Log, w, func(w io.Writer) error { return res.WriteMarkdown(w) })
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q (want json, csv, or markdown)", format)
	}
}

func writeOrLog(l *log.Logger, w io.Writer, f func(io.Writer) error) {
	if err := f(w); err != nil {
		l.Printf("anacind: writing response: %v", err)
	}
}
