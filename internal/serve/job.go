package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/anacin-go/anacinx/internal/analysis"
	"github.com/anacin-go/anacinx/internal/campaign"
	"github.com/anacin-go/anacinx/internal/trace"
)

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusCancelled Status = "cancelled"
)

// ErrDraining is returned by Submit once shutdown has begun: the
// server finishes in-flight jobs but admits no new ones.
var ErrDraining = errors.New("serve: draining, not accepting new campaigns")

// runCellFn indirects campaign.RunCell so tests can substitute slow,
// blocking, or instrumented cells without simulating.
var runCellFn = campaign.RunCell

// runCellStreamFn likewise indirects the streaming/archiving path.
var runCellStreamFn = campaign.RunCellStream

// SummaryView is analysis.Summary with wire-friendly field names.
type SummaryView struct {
	N      int     `json:"n"`
	Min    float64 `json:"min"`
	Q1     float64 `json:"q1"`
	Median float64 `json:"median"`
	Q3     float64 `json:"q3"`
	Max    float64 `json:"max"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
}

func summaryView(s analysis.Summary) SummaryView {
	return SummaryView{N: s.N, Min: s.Min, Q1: s.Q1, Median: s.Median,
		Q3: s.Q3, Max: s.Max, Mean: s.Mean, StdDev: s.StdDev}
}

// CellView is one cell's wire representation: its coordinates, where
// its result came from (computed / joined / store), and its reduced
// measurements.
type CellView struct {
	Index              int          `json:"index"`
	Pattern            string       `json:"pattern"`
	Procs              int          `json:"procs"`
	Iterations         int          `json:"iterations"`
	Nodes              int          `json:"nodes"`
	NDPercent          float64      `json:"nd_percent"`
	Runs               int          `json:"runs"`
	Fingerprint        string       `json:"fingerprint"`
	Done               bool         `json:"done"`
	Source             Source       `json:"source,omitempty"`
	WallMS             int64        `json:"wall_ms"`
	Summary            *SummaryView `json:"summary,omitempty"`
	DistinctStructures int          `json:"distinct_structures,omitempty"`
	Error              string       `json:"error,omitempty"`
}

// JobView is a job's wire representation.
type JobView struct {
	ID         string    `json:"id"`
	Status     Status    `json:"status"`
	Kernel     string    `json:"kernel"`
	TotalCells int       `json:"total_cells"`
	DoneCells  int       `json:"done_cells"`
	Runs       int       `json:"runs"`
	BaseSeed   int64     `json:"base_seed"`
	Created    time.Time `json:"created"`
	ElapsedMS  int64     `json:"elapsed_ms"`
	ETAMS      int64     `json:"eta_ms"`
}

// cellEvent is the payload of every SSE `cell` event: the completed
// cell plus the job-level progress counters at that moment, so a
// client needs no other stream to render a live progress bar and ETA.
type cellEvent struct {
	CellView
	DoneCells  int   `json:"done_cells"`
	TotalCells int   `json:"total_cells"`
	ElapsedMS  int64 `json:"elapsed_ms"`
	ETAMS      int64 `json:"eta_ms"`
}

// Job is one submitted campaign: a grid expanded to cell specs, run
// through the content-addressed store, narrated on an EventLog.
type Job struct {
	ID     string
	grid   campaign.Grid
	specs  []campaign.CellSpec
	log    *EventLog
	cancel context.CancelFunc
	doneCh chan struct{}

	mu        sync.Mutex
	status    Status
	cells     []CellView
	doneCells int
	created   time.Time
	started   time.Time
	finished  time.Time
	result    *campaign.Result
}

// View snapshots the job for JSON.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.viewLocked()
}

func (j *Job) viewLocked() JobView {
	v := JobView{
		ID:         j.ID,
		Status:     j.status,
		Kernel:     j.grid.Kernel.Name(),
		TotalCells: len(j.specs),
		DoneCells:  j.doneCells,
		Runs:       j.grid.Runs,
		BaseSeed:   j.grid.BaseSeed,
		Created:    j.created,
	}
	switch {
	case j.status == StatusQueued:
	case j.finished.IsZero():
		elapsed := time.Since(j.started)
		v.ElapsedMS = elapsed.Milliseconds()
		v.ETAMS = etaMS(elapsed, j.doneCells, len(j.specs)-j.doneCells)
	default:
		v.ElapsedMS = j.finished.Sub(j.started).Milliseconds()
	}
	return v
}

// Cells snapshots the per-cell states in spec order.
func (j *Job) Cells() []CellView {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]CellView, len(j.cells))
	copy(out, j.cells)
	return out
}

// Status returns the job's current lifecycle state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Result returns the assembled campaign result, or nil until the job
// is done.
func (j *Job) Result() *campaign.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Events returns the job's event log for SSE streaming.
func (j *Job) Events() *EventLog { return j.log }

// Cancel aborts the job: in-flight cells whose computations no other
// job is waiting on are cancelled, and the job finishes with status
// cancelled.
func (j *Job) Cancel() { j.cancel() }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.doneCh }

// etaMS extrapolates remaining milliseconds from the completed pace
// (multiply before divide, like campaign's etaFrom).
func etaMS(elapsed time.Duration, done, remaining int) int64 {
	if done <= 0 || remaining <= 0 {
		return 0
	}
	return time.Duration(int64(elapsed) * int64(remaining) / int64(done)).Milliseconds()
}

// Registry owns every job and the worker budget they share. It is the
// drain point for graceful shutdown.
type Registry struct {
	store       *Store
	cellWorkers int
	archiveDir  string
	codec       trace.CodecOptions
	simSlots    chan struct{}

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	nextID   int
	draining bool
	wg       sync.WaitGroup
}

// NewRegistry returns a registry running jobs against store.
// cellWorkers caps concurrent cells per job; simWorkers caps
// simulations in flight across all jobs (both default to GOMAXPROCS).
func NewRegistry(store *Store, cellWorkers, simWorkers int) *Registry {
	return NewRegistryArchive(store, cellWorkers, simWorkers, "", trace.CodecOptions{})
}

// NewRegistryArchive is NewRegistry with trace archiving: when
// archiveDir is non-empty, cells run through the streaming pipeline and
// every run's v2 trace is kept under
// <archiveDir>/<cell-fingerprint>/run-<i>.anctr, replayable with
// `anacin replay`. Cell results are byte-identical either way. codec
// tunes archived-trace compression (zero = the v2 format default; the
// codec worker count never changes archived bytes).
func NewRegistryArchive(store *Store, cellWorkers, simWorkers int, archiveDir string, codec trace.CodecOptions) *Registry {
	if cellWorkers < 1 {
		cellWorkers = runtime.GOMAXPROCS(0)
	}
	if simWorkers < 1 {
		simWorkers = runtime.GOMAXPROCS(0)
	}
	return &Registry{
		store:       store,
		cellWorkers: cellWorkers,
		archiveDir:  archiveDir,
		codec:       codec,
		simSlots:    make(chan struct{}, simWorkers),
		jobs:        make(map[string]*Job),
	}
}

// Submit admits a normalized grid as a new job and starts it.
func (r *Registry) Submit(grid campaign.Grid) (*Job, error) {
	specs := grid.CellSpecs()
	if len(specs) == 0 {
		return nil, errors.New("serve: grid has no cells")
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		grid:    grid,
		specs:   specs,
		log:     NewEventLog(),
		cancel:  cancel,
		doneCh:  make(chan struct{}),
		status:  StatusQueued,
		cells:   make([]CellView, len(specs)),
		created: time.Now(),
	}
	for i, spec := range specs {
		j.cells[i] = CellView{
			Index: i, Pattern: spec.Pattern, Procs: spec.Procs,
			Iterations: spec.Iterations, Nodes: spec.Nodes,
			NDPercent: spec.NDPercent, Runs: grid.Runs,
			Fingerprint: grid.CellFingerprint(spec).String(),
		}
	}

	r.mu.Lock()
	if r.draining {
		r.mu.Unlock()
		cancel()
		return nil, ErrDraining
	}
	r.nextID++
	j.ID = fmt.Sprintf("job-%d", r.nextID)
	r.jobs[j.ID] = j
	r.order = append(r.order, j.ID)
	r.wg.Add(1)
	r.mu.Unlock()

	go func() {
		defer r.wg.Done()
		j.run(ctx, r)
	}()
	return j, nil
}

// Get looks a job up by id.
func (r *Registry) Get(id string) (*Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// Jobs returns every job in submission order.
func (r *Registry) Jobs() []*Job {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Job, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.jobs[id])
	}
	return out
}

// Drain stops admitting jobs and waits for the running ones. If ctx
// expires first, every remaining job is cancelled and Drain still
// waits for them to unwind before returning ctx's error.
func (r *Registry) Drain(ctx context.Context) error {
	r.mu.Lock()
	r.draining = true
	r.mu.Unlock()
	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		for _, j := range r.Jobs() {
			j.Cancel()
		}
		<-done
		return ctx.Err()
	}
}

// run executes the job's cells through the store on a worker pool and
// narrates progress on the event log.
func (j *Job) run(ctx context.Context, r *Registry) {
	defer close(j.doneCh)
	defer j.log.Close()

	j.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	view := j.viewLocked()
	j.mu.Unlock()
	j.log.Append("job", view)

	workers := r.cellWorkers
	if workers > len(j.specs) {
		workers = len(j.specs)
	}
	// Each cell's runs get the remaining share of the machine, like the
	// campaign Runner's two-level budget.
	runWorkers := runtime.GOMAXPROCS(0) / workers
	if runWorkers < 1 {
		runWorkers = 1
	}

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				if ctx.Err() != nil {
					continue
				}
				j.runCell(ctx, r, idx, runWorkers)
			}
		}()
	}
dispatch:
	for i := range j.specs {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()

	j.mu.Lock()
	j.finished = time.Now()
	if ctx.Err() != nil {
		j.status = StatusCancelled
	} else {
		j.status = StatusDone
		cells := make([]campaign.Cell, 0, len(j.specs))
		for i, spec := range j.specs {
			cv := j.cells[i]
			cell := campaign.Cell{
				Pattern: spec.Pattern, Procs: spec.Procs, Iterations: spec.Iterations,
				Nodes: spec.Nodes, NDPercent: spec.NDPercent, Runs: j.grid.Runs,
				DistinctStructures: cv.DistinctStructures,
			}
			if cv.Summary != nil {
				cell.Summary = analysis.Summary{N: cv.Summary.N, Min: cv.Summary.Min,
					Q1: cv.Summary.Q1, Median: cv.Summary.Median, Q3: cv.Summary.Q3,
					Max: cv.Summary.Max, Mean: cv.Summary.Mean, StdDev: cv.Summary.StdDev}
			}
			if cv.Error != "" {
				cell.Err = errors.New(cv.Error)
			}
			cells = append(cells, cell)
		}
		campaign.SortCells(cells)
		j.result = &campaign.Result{KernelName: j.grid.Kernel.Name(), Cells: cells}
	}
	view = j.viewLocked()
	j.mu.Unlock()
	j.log.Append("done", view)
}

// runCell resolves one cell through the store and records it.
func (j *Job) runCell(ctx context.Context, r *Registry, idx, runWorkers int) {
	spec := j.specs[idx]
	fp := j.grid.CellFingerprint(spec)
	start := time.Now()
	cell, src, err := r.store.GetOrCompute(ctx, fp, func(cctx context.Context) campaign.Cell {
		// The global slot bounds total concurrent simulations across
		// jobs; dedupe happens before the queue, so waiting here never
		// duplicates work.
		select {
		case r.simSlots <- struct{}{}:
		case <-cctx.Done():
			return campaign.Cell{Pattern: spec.Pattern, Procs: spec.Procs,
				Iterations: spec.Iterations, Nodes: spec.Nodes,
				NDPercent: spec.NDPercent, Runs: j.grid.Runs, Err: cctx.Err()}
		}
		defer func() { <-r.simSlots }()
		if r.archiveDir != "" {
			return runCellStreamFn(cctx, j.grid, spec, runWorkers, r.archiveDir, r.codec)
		}
		return runCellFn(cctx, j.grid, spec, runWorkers)
	})
	if err != nil {
		// Our job was cancelled; the terminal event reports it.
		return
	}

	j.mu.Lock()
	cv := &j.cells[idx]
	cv.Done = true
	cv.Source = src
	cv.WallMS = time.Since(start).Milliseconds()
	sv := summaryView(cell.Summary)
	cv.Summary = &sv
	cv.DistinctStructures = cell.DistinctStructures
	if cell.Err != nil {
		cv.Error = cell.Err.Error()
	}
	j.doneCells++
	elapsed := time.Since(j.started)
	ev := cellEvent{
		CellView:   *cv,
		DoneCells:  j.doneCells,
		TotalCells: len(j.specs),
		ElapsedMS:  elapsed.Milliseconds(),
		ETAMS:      etaMS(elapsed, j.doneCells, len(j.specs)-j.doneCells),
	}
	// Append under the job mutex: worker goroutines complete cells
	// concurrently, and the event stream must narrate done_cells in
	// strictly increasing order.
	j.log.Append("cell", ev)
	j.mu.Unlock()
}
