package serve

import (
	"context"
	"sync/atomic"
	"testing"

	"github.com/anacin-go/anacinx/internal/campaign"
	"github.com/anacin-go/anacinx/internal/trace"
)

// swapRunCellStream overrides the streaming cell executor for the
// duration of a test. Like swapRunCell, callers must not run in
// parallel (package-global state).
func swapRunCellStream(t *testing.T, fn func(context.Context, campaign.Grid, campaign.CellSpec, int, string, trace.CodecOptions) campaign.Cell) {
	t.Helper()
	old := runCellStreamFn
	runCellStreamFn = fn
	t.Cleanup(func() { runCellStreamFn = old })
}

// TestArchiveDirRoutesCellsThroughStreaming pins the serve wiring: a
// server configured with ArchiveDir resolves every cell through the
// streaming/archiving executor (passing the configured directory), and
// never the materializing one.
func TestArchiveDirRoutesCellsThroughStreaming(t *testing.T) {
	var streamed, materialized atomic.Int64
	var gotDir atomic.Value
	swapRunCell(t, func(_ context.Context, g campaign.Grid, spec campaign.CellSpec, _ int) campaign.Cell {
		materialized.Add(1)
		return fakeCell(g, spec)
	})
	swapRunCellStream(t, func(_ context.Context, g campaign.Grid, spec campaign.CellSpec, _ int, dir string, _ trace.CodecOptions) campaign.Cell {
		streamed.Add(1)
		gotDir.Store(dir)
		return fakeCell(g, spec)
	})

	dir := t.TempDir()
	_, ts := newTestServer(t, Config{MaxCells: 8, MaxRuns: 10, ArchiveDir: dir})
	v := submit(t, ts, smallBody)
	waitStatus(t, ts, v.ID, StatusDone)

	if streamed.Load() != int64(v.Total) {
		t.Errorf("streaming executor ran %d cells, want %d", streamed.Load(), v.Total)
	}
	if materialized.Load() != 0 {
		t.Errorf("materializing executor ran %d cells, want 0", materialized.Load())
	}
	if got, _ := gotDir.Load().(string); got != dir {
		t.Errorf("streaming executor got archive dir %q, want %q", got, dir)
	}
}

// TestNoArchiveDirKeepsMaterializingPath pins the default: without
// ArchiveDir the registry uses the materializing executor, so existing
// deployments see no behavior change.
func TestNoArchiveDirKeepsMaterializingPath(t *testing.T) {
	var streamed, materialized atomic.Int64
	swapRunCell(t, func(_ context.Context, g campaign.Grid, spec campaign.CellSpec, _ int) campaign.Cell {
		materialized.Add(1)
		return fakeCell(g, spec)
	})
	swapRunCellStream(t, func(_ context.Context, g campaign.Grid, spec campaign.CellSpec, _ int, _ string, _ trace.CodecOptions) campaign.Cell {
		streamed.Add(1)
		return fakeCell(g, spec)
	})

	_, ts := newTestServer(t, Config{MaxCells: 8, MaxRuns: 10})
	v := submit(t, ts, smallBody)
	waitStatus(t, ts, v.ID, StatusDone)

	if materialized.Load() != int64(v.Total) {
		t.Errorf("materializing executor ran %d cells, want %d", materialized.Load(), v.Total)
	}
	if streamed.Load() != 0 {
		t.Errorf("streaming executor ran %d cells, want 0", streamed.Load())
	}
}
