package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/anacin-go/anacinx/internal/analysis"
	"github.com/anacin-go/anacinx/internal/campaign"
)

// newQuietLogger routes server log lines to the test log (shown only
// with -v or on failure).
func newQuietLogger(t *testing.T) *log.Logger { return log.New(&logWriter{t: t}, "", 0) }

type logWriter struct{ t *testing.T }

func (w *logWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", strings.TrimRight(string(p), "\n"))
	return len(p), nil
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Log == nil {
		cfg.Log = newQuietLogger(t)
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	// Cancelled jobs can leave store computations briefly in flight;
	// wait them out so this cleanup (LIFO, before swapRunCell's restore)
	// never races a compute goroutine still reading runCellFn.
	t.Cleanup(func() {
		deadline := time.Now().Add(10 * time.Second)
		for s.Store().Inflight() != 0 {
			if time.Now().After(deadline) {
				t.Error("store computations never drained")
				return
			}
			time.Sleep(time.Millisecond)
		}
	})
	return s, ts
}

// fakeCell fabricates a plausible completed cell for a spec without
// simulating anything.
func fakeCell(g campaign.Grid, spec campaign.CellSpec) campaign.Cell {
	return campaign.Cell{
		Pattern: spec.Pattern, Procs: spec.Procs, Iterations: spec.Iterations,
		Nodes: spec.Nodes, NDPercent: spec.NDPercent, Runs: g.Runs,
		Summary:            analysis.Summary{N: g.Runs, Median: spec.NDPercent / 100},
		DistinctStructures: 1,
	}
}

// swapRunCell overrides the cell executor for the duration of a test.
// Tests that call it must not run in parallel (package-global state).
func swapRunCell(t *testing.T, fn func(context.Context, campaign.Grid, campaign.CellSpec, int) campaign.Cell) {
	t.Helper()
	old := runCellFn
	runCellFn = fn
	t.Cleanup(func() { runCellFn = old })
}

const smallBody = `{"patterns":["message_race","ring_halo"],"procs":[4],"iterations":[1],"nodes":[1],"nd_percents":[0,100],"runs":2,"base_seed":7,"kernel":"wl2"}`

type submitView struct {
	ID     string            `json:"id"`
	Status Status            `json:"status"`
	Kernel string            `json:"kernel"`
	Total  int               `json:"total_cells"`
	Links  map[string]string `json:"links"`
}

func submit(t *testing.T, ts *httptest.Server, body string) submitView {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, raw)
	}
	var v submitView
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("submit: %v (body %s)", err, raw)
	}
	if v.ID == "" || v.Links["events"] == "" || v.Links["results"] == "" {
		t.Fatalf("submit response missing id/links: %s", raw)
	}
	return v
}

type jobResponse struct {
	Job   JobView    `json:"job"`
	Cells []CellView `json:"cells"`
}

func getJob(t *testing.T, ts *httptest.Server, id string) jobResponse {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get job: status %d", resp.StatusCode)
	}
	var v jobResponse
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func waitStatus(t *testing.T, ts *httptest.Server, id string, want Status) jobResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		v := getJob(t, ts, id)
		if v.Job.Status == want {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, v.Job.Status, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

type sseFrame struct {
	ID   int
	Type string
	Data string
}

// readSSE consumes a /events stream to its natural EOF (the server ends
// it after the terminal event) and returns the parsed frames.
func readSSE(t *testing.T, ts *httptest.Server, path string, lastEventID string) []sseFrame {
	t.Helper()
	req, err := http.NewRequest("GET", ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events: content-type %q", ct)
	}
	var frames []sseFrame
	var cur sseFrame
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.Type != "" {
				frames = append(frames, cur)
			}
			cur = sseFrame{}
		case strings.HasPrefix(line, "id: "):
			fmt.Sscanf(line, "id: %d", &cur.ID) //nolint:errcheck
		case strings.HasPrefix(line, "event: "):
			cur.Type = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = strings.TrimPrefix(line, "data: ")
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("events: %v", err)
	}
	return frames
}

func TestSubmitRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxCells: 8, MaxRuns: 10})
	cases := []struct {
		name        string
		contentType string
		body        string
		wantStatus  int
		wantSubstr  string
	}{
		{"bad json", "application/json", `{"patterns":`, 400, "bad grid json"},
		{"unknown field", "application/json", `{"paterns":["message_race"]}`, 400, "unknown field"},
		{"trailing data", "application/json", `{"runs":2}{"runs":3}`, 400, "trailing data"},
		{"negative runs", "application/json", `{"runs":-1}`, 400, "runs"},
		{"runs over limit", "application/json", `{"patterns":["message_race"],"procs":[4],"runs":99}`, 400, "limit"},
		{"bad kernel", "application/json", `{"kernel":"wat"}`, 400, "kernel"},
		{"unknown pattern", "application/json", `{"patterns":["no_such_pattern"],"procs":[4],"iterations":[1],"nodes":[1],"nd_percents":[0]}`, 400, "no_such_pattern"},
		{"nd out of range", "application/json", `{"patterns":["message_race"],"procs":[4],"iterations":[1],"nodes":[1],"nd_percents":[150]}`, 400, "nd_percents"},
		{"too many cells", "application/json", `{"patterns":["message_race"],"procs":[4],"iterations":[1],"nodes":[1],"nd_percents":[0,10,20,30,40,50,60,70,80]}`, 400, "cells"},
		{"wrong content type", "text/plain", smallBody, 415, "content-type"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := ts.Client().Post(ts.URL+"/v1/campaigns", tc.contentType, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.wantStatus, raw)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
				t.Fatalf("error body %s (unmarshal: %v)", raw, err)
			}
			if !strings.Contains(e.Error, tc.wantSubstr) {
				t.Errorf("error %q does not mention %q", e.Error, tc.wantSubstr)
			}
		})
	}
}

func TestUnknownJob404(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{"/v1/campaigns/job-99", "/v1/campaigns/job-99/events", "/v1/campaigns/job-99/results"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestJobLifecycle drives a faked campaign from submission to done and
// checks the status, results (all three formats), list, and stats
// surfaces along the way.
func TestJobLifecycle(t *testing.T) {
	swapRunCell(t, func(ctx context.Context, g campaign.Grid, spec campaign.CellSpec, _ int) campaign.Cell {
		return fakeCell(g, spec)
	})
	s, ts := newTestServer(t, Config{})

	sub := submit(t, ts, smallBody)
	if sub.Kernel != "wlst-h2" && sub.Kernel != "wl2" {
		// Name depends on kernel.NewWL(2).Name(); just require non-empty.
		if sub.Kernel == "" {
			t.Fatal("submit response has empty kernel")
		}
	}
	if sub.Total != 4 {
		t.Fatalf("total_cells = %d, want 4", sub.Total)
	}

	done := waitStatus(t, ts, sub.ID, StatusDone)
	if done.Job.DoneCells != 4 {
		t.Errorf("done_cells = %d, want 4", done.Job.DoneCells)
	}
	for _, c := range done.Cells {
		if !c.Done || c.Source != SourceComputed || c.Summary == nil || c.Fingerprint == "" {
			t.Errorf("cell %d incomplete: %+v", c.Index, c)
		}
	}

	// Results, all formats.
	var jsonRes struct {
		Kernel string     `json:"kernel"`
		Cells  []CellView `json:"cells"`
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/campaigns/" + sub.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("results: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&jsonRes); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(jsonRes.Cells) != 4 || jsonRes.Kernel == "" {
		t.Errorf("json results: kernel %q, %d cells", jsonRes.Kernel, len(jsonRes.Cells))
	}
	for _, format := range []string{"csv", "markdown"} {
		resp, err := ts.Client().Get(ts.URL + "/v1/campaigns/" + sub.ID + "/results?format=" + format)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || len(raw) == 0 {
			t.Errorf("results?format=%s: status %d, %d bytes", format, resp.StatusCode, len(raw))
		}
		if format == "csv" && !strings.Contains(string(raw), "message_race") {
			t.Errorf("csv results missing cells:\n%s", raw)
		}
	}
	resp, err = ts.Client().Get(ts.URL + "/v1/campaigns/" + sub.ID + "/results?format=yaml")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("results?format=yaml: status %d, want 400", resp.StatusCode)
	}

	// List includes the job; stats count it done with 4 misses.
	resp, err = ts.Client().Get(ts.URL + "/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Campaigns []JobView `json:"campaigns"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Campaigns) != 1 || list.Campaigns[0].ID != sub.ID {
		t.Errorf("list: %+v", list)
	}
	if s.Store().Misses() != 4 || s.Store().Len() != 4 {
		t.Errorf("store: misses=%d len=%d, want 4/4", s.Store().Misses(), s.Store().Len())
	}
}

// TestSSEOrdering pins the event contract: every subscriber — one
// connected before the first cell finishes, one connected only after
// the job is done, and one resuming from Last-Event-ID — observes the
// same dense 1-based sequence: `job`, then one `cell` per cell with
// done_cells strictly increasing, then a terminal `done`.
func TestSSEOrdering(t *testing.T) {
	gate := make(chan struct{})
	swapRunCell(t, func(ctx context.Context, g campaign.Grid, spec campaign.CellSpec, _ int) campaign.Cell {
		<-gate
		return fakeCell(g, spec)
	})
	_, ts := newTestServer(t, Config{CellWorkers: 4})

	sub := submit(t, ts, smallBody)

	var wg sync.WaitGroup
	var live []sseFrame
	wg.Add(1)
	go func() {
		defer wg.Done()
		live = readSSE(t, ts, sub.Links["events"], "")
	}()
	close(gate)
	wg.Wait()
	waitStatus(t, ts, sub.ID, StatusDone)

	replay := readSSE(t, ts, sub.Links["events"], "")
	resumed := readSSE(t, ts, sub.Links["events"], "2")

	checkSequence := func(name string, frames []sseFrame) {
		t.Helper()
		if len(frames) != 6 { // job + 4 cells + done
			t.Fatalf("%s: %d frames, want 6: %+v", name, len(frames), frames)
		}
		for i, f := range frames {
			if f.ID != i+1 {
				t.Errorf("%s: frame %d has id %d", name, i, f.ID)
			}
		}
		if frames[0].Type != "job" || frames[5].Type != "done" {
			t.Errorf("%s: boundary events %q...%q", name, frames[0].Type, frames[5].Type)
		}
		for i := 1; i <= 4; i++ {
			if frames[i].Type != "cell" {
				t.Fatalf("%s: frame %d type %q, want cell", name, i, frames[i].Type)
			}
			var ev struct {
				DoneCells  int  `json:"done_cells"`
				TotalCells int  `json:"total_cells"`
				Done       bool `json:"done"`
			}
			if err := json.Unmarshal([]byte(frames[i].Data), &ev); err != nil {
				t.Fatal(err)
			}
			if ev.DoneCells != i || ev.TotalCells != 4 || !ev.Done {
				t.Errorf("%s: cell frame %d: done_cells=%d total=%d done=%v",
					name, i, ev.DoneCells, ev.TotalCells, ev.Done)
			}
		}
	}
	checkSequence("live", live)
	checkSequence("replay", replay)

	// The live subscriber and the late replay see byte-identical streams.
	for i := range live {
		if live[i] != replay[i] {
			t.Errorf("frame %d differs: live %+v, replay %+v", i, live[i], replay[i])
		}
	}
	// Resume from id 2 delivers exactly the tail.
	if len(resumed) != 4 || resumed[0].ID != 3 || resumed[3].Type != "done" {
		t.Errorf("resumed stream: %+v", resumed)
	}
}

// TestConcurrentOverlappingSubmissionsDedupe is the singleflight story
// end to end: two simultaneous grids sharing a cell run that cell's
// simulation once, and the second job's copy arrives as joined/store.
func TestConcurrentOverlappingSubmissionsDedupe(t *testing.T) {
	release := make(chan struct{})
	swapRunCell(t, func(ctx context.Context, g campaign.Grid, spec campaign.CellSpec, _ int) campaign.Cell {
		select {
		case <-release:
			return fakeCell(g, spec)
		case <-ctx.Done():
			return campaign.Cell{Pattern: spec.Pattern, Procs: spec.Procs, Iterations: spec.Iterations,
				Nodes: spec.Nodes, NDPercent: spec.NDPercent, Runs: g.Runs, Err: ctx.Err()}
		}
	})
	s, ts := newTestServer(t, Config{CellWorkers: 4, SimWorkers: 8})

	// grid1 and grid2 share the (message_race, nd=100) cell; everything
	// else that feeds the fingerprint (runs, seed, kernel) is identical.
	grid1 := `{"patterns":["message_race"],"procs":[4],"iterations":[1],"nodes":[1],"nd_percents":[0,100],"runs":2,"base_seed":7,"kernel":"wl2"}`
	grid2 := `{"patterns":["message_race"],"procs":[4],"iterations":[1],"nodes":[1],"nd_percents":[100,50],"runs":2,"base_seed":7,"kernel":"wl2"}`
	sub1 := submit(t, ts, grid1)
	sub2 := submit(t, ts, grid2)

	// Wait until all three distinct cells are in flight and the shared
	// cell's second request has joined, then let the simulations finish.
	deadline := time.Now().Add(10 * time.Second)
	for s.Store().Inflight() != 3 || s.Store().Joined() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("inflight=%d joined=%d, want 3/1", s.Store().Inflight(), s.Store().Joined())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	done1 := waitStatus(t, ts, sub1.ID, StatusDone)
	done2 := waitStatus(t, ts, sub2.ID, StatusDone)

	if s.Store().Misses() != 3 {
		t.Errorf("misses = %d, want 3 (the shared cell must simulate once)", s.Store().Misses())
	}
	sources := map[float64]Source{}
	for _, c := range done2.Cells {
		sources[c.NDPercent] = c.Source
	}
	if src := sources[100]; src != SourceJoined && src != SourceStore {
		t.Errorf("shared cell in job 2 has source %q, want joined or store", src)
	}
	for _, c := range done1.Cells {
		if c.Source != SourceComputed && !(c.NDPercent == 100 && c.Source == SourceJoined) {
			t.Errorf("job 1 cell nd=%g source %q", c.NDPercent, c.Source)
		}
	}
}

// TestResubmitServedFromStore is the acceptance criterion in-process:
// submitting the same grid twice performs the simulations once; the
// second job completes entirely from the store with zero new misses.
func TestResubmitServedFromStore(t *testing.T) {
	swapRunCell(t, func(ctx context.Context, g campaign.Grid, spec campaign.CellSpec, _ int) campaign.Cell {
		return fakeCell(g, spec)
	})
	s, ts := newTestServer(t, Config{})

	sub1 := submit(t, ts, smallBody)
	waitStatus(t, ts, sub1.ID, StatusDone)
	missesAfterFirst := s.Store().Misses()
	if missesAfterFirst != 4 {
		t.Fatalf("first submission: misses = %d, want 4", missesAfterFirst)
	}

	sub2 := submit(t, ts, smallBody)
	done2 := waitStatus(t, ts, sub2.ID, StatusDone)
	if got := s.Store().Misses(); got != missesAfterFirst {
		t.Errorf("resubmission simulated: misses %d -> %d", missesAfterFirst, got)
	}
	if s.Store().Hits() != 4 {
		t.Errorf("hits = %d, want 4", s.Store().Hits())
	}
	for _, c := range done2.Cells {
		if c.Source != SourceStore {
			t.Errorf("resubmitted cell %d source %q, want store", c.Index, c.Source)
		}
	}

	// The two jobs' result tables are identical: same grid, same store.
	csv1 := fetchResults(t, ts, sub1.ID, "csv")
	csv2 := fetchResults(t, ts, sub2.ID, "csv")
	if csv1 != csv2 {
		t.Errorf("resubmitted CSV differs:\n--- first\n%s\n--- second\n%s", csv1, csv2)
	}
}

func fetchResults(t *testing.T, ts *httptest.Server, id, format string) string {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/campaigns/" + id + "/results?format=" + format)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("results %s: status %d", id, resp.StatusCode)
	}
	return string(raw)
}

// TestCancelJob: DELETE cancels a running job; its results answer 410
// and its event stream still terminates.
func TestCancelJob(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	swapRunCell(t, func(ctx context.Context, g campaign.Grid, spec campaign.CellSpec, _ int) campaign.Cell {
		select {
		case <-release:
			return fakeCell(g, spec)
		case <-ctx.Done():
			return campaign.Cell{Pattern: spec.Pattern, Procs: spec.Procs, Iterations: spec.Iterations,
				Nodes: spec.Nodes, NDPercent: spec.NDPercent, Runs: g.Runs, Err: ctx.Err()}
		}
	})
	s, ts := newTestServer(t, Config{})

	sub := submit(t, ts, smallBody)
	// While running, results answers 202.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := ts.Client().Get(ts.URL + "/v1/campaigns/" + sub.ID + "/results")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("results while running: status %d, want 202", resp.StatusCode)
		}
		time.Sleep(time.Millisecond)
	}

	req, err := http.NewRequest("DELETE", ts.URL+"/v1/campaigns/"+sub.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var v struct {
		Job JobView `json:"job"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || v.Job.Status != StatusCancelled {
		t.Fatalf("cancel: status %d, job %s", resp.StatusCode, v.Job.Status)
	}

	resp, err = ts.Client().Get(ts.URL + "/v1/campaigns/" + sub.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Errorf("results after cancel: status %d, want 410", resp.StatusCode)
	}

	// The event log closed with a terminal event; a subscriber drains.
	frames := readSSE(t, ts, sub.Links["events"], "")
	if len(frames) == 0 || frames[len(frames)-1].Type != "done" {
		t.Errorf("cancelled job stream: %+v", frames)
	}
	// Cancelled cells were never stored.
	if s.Store().Len() != 0 {
		t.Errorf("store kept %d cells from a cancelled job", s.Store().Len())
	}
}

// TestGracefulDrain: during Shutdown, new submissions get 503 while the
// in-flight job runs to completion and its results stay fetchable.
func TestGracefulDrain(t *testing.T) {
	release := make(chan struct{})
	swapRunCell(t, func(ctx context.Context, g campaign.Grid, spec campaign.CellSpec, _ int) campaign.Cell {
		select {
		case <-release:
			return fakeCell(g, spec)
		case <-ctx.Done():
			return campaign.Cell{Pattern: spec.Pattern, Procs: spec.Procs, Iterations: spec.Iterations,
				Nodes: spec.Nodes, NDPercent: spec.NDPercent, Runs: g.Runs, Err: ctx.Err()}
		}
	})
	s, ts := newTestServer(t, Config{})

	sub := submit(t, ts, smallBody)
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- s.Shutdown(context.Background()) }()

	// Drain flips immediately; submissions start bouncing with 503.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := ts.Client().Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(smallBody))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submit during drain: status %d, want 503", resp.StatusCode)
		}
		time.Sleep(time.Millisecond)
	}

	close(release)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	done := waitStatus(t, ts, sub.ID, StatusDone)
	if done.Job.DoneCells != 4 {
		t.Errorf("drained job finished %d/4 cells", done.Job.DoneCells)
	}
}

// TestDrainGraceExpiry: when the drain context expires, remaining jobs
// are cancelled, Shutdown surfaces the context error, and the job ends
// cancelled rather than wedged.
func TestDrainGraceExpiry(t *testing.T) {
	swapRunCell(t, func(ctx context.Context, g campaign.Grid, spec campaign.CellSpec, _ int) campaign.Cell {
		<-ctx.Done() // never finishes on its own
		return campaign.Cell{Pattern: spec.Pattern, Procs: spec.Procs, Iterations: spec.Iterations,
			Nodes: spec.Nodes, NDPercent: spec.NDPercent, Runs: g.Runs, Err: ctx.Err()}
	})
	s, ts := newTestServer(t, Config{})

	sub := submit(t, ts, smallBody)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown err = %v, want DeadlineExceeded", err)
	}
	if st := waitStatus(t, ts, sub.ID, StatusCancelled); st.Job.Status != StatusCancelled {
		t.Errorf("job status %s", st.Job.Status)
	}
}

// TestEndToEndRealSimulation runs one genuinely simulated 2-cell grid
// through the full HTTP surface — no fakes — and then resubmits it,
// asserting the second pass does not simulate. This is the in-repo
// twin of the CI serve-smoke gate.
func TestEndToEndRealSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations in -short mode")
	}
	s, ts := newTestServer(t, Config{})
	body := `{"patterns":["message_race"],"procs":[4],"iterations":[1],"nodes":[1],"nd_percents":[0,100],"runs":2,"base_seed":42,"kernel":"wl2"}`

	sub := submit(t, ts, body)
	frames := readSSE(t, ts, sub.Links["events"], "")
	if frames[len(frames)-1].Type != "done" {
		t.Fatalf("stream did not end with done: %+v", frames)
	}
	done := waitStatus(t, ts, sub.ID, StatusDone)
	for _, c := range done.Cells {
		if c.Source != SourceComputed || c.Summary == nil || c.Error != "" {
			t.Errorf("cell %d: %+v", c.Index, c)
		}
	}
	// nd=100 must measure more non-determinism than nd=0 — the paper's
	// monotonicity, observable straight through the service.
	if done.Cells[0].Summary.Median > done.Cells[1].Summary.Median {
		t.Errorf("median(nd=0)=%g > median(nd=100)=%g",
			done.Cells[0].Summary.Median, done.Cells[1].Summary.Median)
	}
	misses := s.Store().Misses()

	sub2 := submit(t, ts, body)
	done2 := waitStatus(t, ts, sub2.ID, StatusDone)
	if got := s.Store().Misses(); got != misses {
		t.Errorf("resubmission simulated: misses %d -> %d", misses, got)
	}
	for _, c := range done2.Cells {
		if c.Source != SourceStore {
			t.Errorf("resubmitted cell %d source %q", c.Index, c.Source)
		}
	}
	if csv1, csv2 := fetchResults(t, ts, sub.ID, "csv"), fetchResults(t, ts, sub2.ID, "csv"); csv1 != csv2 {
		t.Errorf("resubmitted CSV differs:\n%s\n---\n%s", csv1, csv2)
	}
}
