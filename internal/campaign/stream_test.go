package campaign

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/anacin-go/anacinx/internal/trace"
)

// TestRunCellStreamMatchesRunCell pins the campaign-level equivalence:
// a cell run through the streaming pipeline carries exactly the summary
// and distinct-structure count of the materializing path, and archives
// its runs under the cell's fingerprint.
func TestRunCellStreamMatchesRunCell(t *testing.T) {
	g, err := smallGrid().Normalized()
	if err != nil {
		t.Fatal(err)
	}
	specs := g.CellSpecs()
	dir := t.TempDir()
	for _, spec := range specs[:2] {
		want := RunCell(context.Background(), g, spec, 0)
		got := RunCellStream(context.Background(), g, spec, 0, dir, trace.CodecOptions{})
		if !reflect.DeepEqual(got, want) {
			t.Errorf("spec %+v: streamed cell %+v, want %+v", spec, got, want)
		}

		cellDir := filepath.Join(dir, g.CellFingerprint(spec).String())
		entries, err := os.ReadDir(cellDir)
		if err != nil {
			t.Fatalf("spec %+v: archive dir: %v", spec, err)
		}
		if len(entries) != g.Runs {
			t.Errorf("spec %+v: archived %d traces, want %d", spec, len(entries), g.Runs)
		}
		for i := 0; i < g.Runs; i++ {
			p := filepath.Join(cellDir, fmt.Sprintf("run-%d.anctr", i))
			if _, err := os.Stat(p); err != nil {
				t.Errorf("spec %+v: missing archived trace: %v", spec, err)
			}
		}
	}
}

// TestRunnerStreamMatchesDefault pins that Runner{Stream: true}
// produces a Result deep-equal to the default materializing Runner —
// the switch is purely an execution strategy.
func TestRunnerStreamMatchesDefault(t *testing.T) {
	g := smallGrid()
	want, err := (&Runner{}).Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := (&Runner{Stream: true}).Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("streamed result differs from materializing result")
	}

	// ArchiveDir alone implies streaming and lays out one directory per
	// cell fingerprint.
	dir := t.TempDir()
	archived, err := (&Runner{ArchiveDir: dir}).Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(archived, want) {
		t.Errorf("archived result differs from materializing result")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if wantCells := g.Cells(); len(entries) != wantCells {
		t.Errorf("archive has %d cell dirs, want %d", len(entries), wantCells)
	}
}
