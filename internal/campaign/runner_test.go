package campaign

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"
)

// TestParallelMatchesSequential is the determinism gate for the worker
// pool: every worker count must produce byte-identical CSV and markdown
// to the sequential (Workers = 1) path.
func TestParallelMatchesSequential(t *testing.T) {
	g := smallGrid()
	render := func(workers int) (csvOut, mdOut []byte) {
		t.Helper()
		r := &Runner{Workers: workers}
		res, err := r.Run(context.Background(), g)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var cb, mb bytes.Buffer
		if err := res.WriteCSV(&cb); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteMarkdown(&mb); err != nil {
			t.Fatal(err)
		}
		return cb.Bytes(), mb.Bytes()
	}
	wantCSV, wantMD := render(1)
	for _, workers := range []int{2, 4, 8} {
		gotCSV, gotMD := render(workers)
		if !bytes.Equal(gotCSV, wantCSV) {
			t.Errorf("workers=%d CSV differs from sequential:\n%s\nvs\n%s", workers, gotCSV, wantCSV)
		}
		if !bytes.Equal(gotMD, wantMD) {
			t.Errorf("workers=%d markdown differs from sequential", workers)
		}
	}
}

func TestRunnerProgress(t *testing.T) {
	g := smallGrid()
	var seen []Progress
	r := &Runner{Workers: 2, Progress: func(p Progress) { seen = append(seen, p) }}
	res, err := r.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(res.Cells) {
		t.Fatalf("progress callbacks = %d, cells = %d", len(seen), len(res.Cells))
	}
	for i, p := range seen {
		if p.DoneCells != i+1 || p.TotalCells != len(res.Cells) {
			t.Errorf("observation %d: DoneCells=%d TotalCells=%d", i, p.DoneCells, p.TotalCells)
		}
		if p.DoneRuns != (i+1)*g.Runs || p.TotalRuns != len(res.Cells)*g.Runs {
			t.Errorf("observation %d: DoneRuns=%d TotalRuns=%d", i, p.DoneRuns, p.TotalRuns)
		}
		if p.Cell.Pattern == "" || p.CellWall < 0 || p.Elapsed <= 0 || p.ETA < 0 {
			t.Errorf("observation %d malformed: %+v", i, p)
		}
	}
	last := seen[len(seen)-1]
	if last.ETA != 0 {
		t.Errorf("final ETA = %v, want 0", last.ETA)
	}
}

// TestETAFromSkewedPace pins the multiply-before-divide fix: with many
// cells done quickly, the old elapsed/done*remaining form truncated the
// per-cell pace to whole nanoseconds before scaling it back up, so the
// truncation error was multiplied by the remaining count.
func TestETAFromSkewedPace(t *testing.T) {
	cases := []struct {
		elapsed         time.Duration
		done, remaining int
		want            time.Duration
	}{
		// 1500ns over 1000 cells = 1.5ns/cell; 500 left → 750ns. The old
		// form computed 1500/1000 = 1ns/cell → 500ns (33% short).
		{1500 * time.Nanosecond, 1000, 500, 750 * time.Nanosecond},
		// Sub-nanosecond pace: old form reported exactly 0.
		{900 * time.Nanosecond, 1000, 1000, 900 * time.Nanosecond},
		// Even pace survives unchanged.
		{10 * time.Second, 2, 8, 40 * time.Second},
		// Degenerate inputs are quiet zeros, not panics.
		{time.Second, 0, 5, 0},
		{time.Second, 5, 0, 0},
		{time.Second, 5, -1, 0},
	}
	for _, c := range cases {
		if got := etaFrom(c.elapsed, c.done, c.remaining); got != c.want {
			t.Errorf("etaFrom(%v, %d, %d) = %v, want %v", c.elapsed, c.done, c.remaining, got, c.want)
		}
	}
}

func TestRunCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, smallGrid()); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestRunCancelledMidway(t *testing.T) {
	// Cancel from the first progress callback: the campaign must stop
	// early and surface the cancellation instead of a full result.
	g := smallGrid()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := &Runner{Workers: 1, Progress: func(p Progress) { cancel() }}
	start := time.Now()
	_, err := r.Run(ctx, g)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Not a strict timing assertion — just a sanity bound far below
	// what running the full grid sequentially would take if
	// cancellation were ignored.
	if elapsed := time.Since(start); elapsed > 2*time.Minute {
		t.Errorf("cancellation took %v", elapsed)
	}
}
