package campaign

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/anacin-go/anacinx/internal/trace"
)

// Progress is one observation of a running campaign, delivered to
// Runner.Progress after each cell completes. Callbacks are serialized
// (never concurrent), so the handler may write to a terminal or mutate
// its own state without locking.
type Progress struct {
	// TotalCells and DoneCells count grid cells; DoneCells includes the
	// cell reported by this observation.
	TotalCells, DoneCells int
	// TotalRuns and DoneRuns count individual simulated executions
	// (cells × runs-per-cell).
	TotalRuns, DoneRuns int
	// Cell is the just-completed cell, including its summary (or error).
	Cell Cell
	// CellWall is the wall-clock time the cell took, including its
	// kernel-distance reduction.
	CellWall time.Duration
	// Elapsed is the wall-clock time since the campaign started.
	Elapsed time.Duration
	// ETA estimates the remaining wall-clock time from the mean
	// completed-cell rate. It is 0 once the campaign is done.
	ETA time.Duration
}

// Runner executes campaign grids on a worker pool. The zero value is
// ready to use: cells run on up to GOMAXPROCS workers and each cell's
// runs get the remaining share of the machine, so the two levels of
// parallelism multiply out to roughly GOMAXPROCS goroutines instead of
// cells × runs.
//
// Cell results depend only on the cell's configuration (the simulator
// is deterministic in its seed), and the result slice is keyed and
// sorted, so a Runner produces byte-identical CSV and markdown output
// for every worker count — including Workers = 1, the sequential path.
type Runner struct {
	// Workers is the number of cells in flight at once.
	// 0 = min(GOMAXPROCS, number of cells).
	Workers int
	// RunWorkers caps the per-cell run concurrency. 0 budgets the
	// machine across cell workers: max(1, GOMAXPROCS / Workers).
	RunWorkers int
	// Progress, when non-nil, observes every completed cell.
	Progress func(Progress)
	// Stream routes cells through the streaming pipeline (RunCellStream):
	// runs simulate straight into v2 trace files and are embedded by
	// streaming them back, holding per-cell memory flat in run length.
	// Cell results are byte-identical to the materializing path.
	Stream bool
	// ArchiveDir, when non-empty, archives every run's v2 trace under
	// <ArchiveDir>/<cell-fingerprint>/run-<i>.anctr and implies Stream.
	ArchiveDir string
	// Codec tunes archived-trace compression (DEFLATE level, codec
	// worker count) on the streaming path. Zero is the v2 format
	// default; the worker count never changes archived bytes.
	Codec trace.CodecOptions
}

// Run executes every cell of the grid and returns the cells sorted by
// (pattern, procs, iterations, nodes, nd). Per-cell failures are
// recorded in Cell.Err and do not stop the campaign; cancelling ctx
// does, aborting in-flight cells and returning an error satisfying
// errors.Is(err, ctx.Err()) — together with a partial Result holding
// the cells that completed before cancellation, so callers can report
// how far a truncated campaign got instead of discarding it.
func (r *Runner) Run(ctx context.Context, g Grid) (*Result, error) {
	q := g.withDefaults()
	if err := q.validate(); err != nil {
		return nil, err
	}
	cells := q.CellSpecs()
	workers := r.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	runWorkers := r.RunWorkers
	if runWorkers < 1 {
		runWorkers = runtime.GOMAXPROCS(0) / workers
		if runWorkers < 1 {
			runWorkers = 1
		}
	}

	res := &Result{KernelName: q.Kernel.Name(), Cells: make([]Cell, len(cells))}
	start := time.Now()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex // guards the progress counters and callback
		done     int
		doneRuns int
		next     = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				if ctx.Err() != nil {
					continue
				}
				cellStart := time.Now()
				if r.Stream || r.ArchiveDir != "" {
					res.Cells[idx] = RunCellStream(ctx, q, cells[idx], runWorkers, r.ArchiveDir, r.Codec)
				} else {
					res.Cells[idx] = RunCell(ctx, q, cells[idx], runWorkers)
				}
				r.report(&mu, res.Cells[idx], time.Since(cellStart), start, len(cells), q.Runs, &done, &doneRuns)
			}
		}()
	}
dispatch:
	for i := range cells {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		// Keep only the cells that actually ran (skipped dispatches leave
		// zero-valued cells), sorted like a complete result, so the
		// partial grid is directly renderable.
		kept := res.Cells[:0]
		for _, c := range res.Cells {
			if c.Pattern != "" {
				kept = append(kept, c)
			}
		}
		res.Cells = kept
		SortCells(res.Cells)
		return res, fmt.Errorf("campaign: cancelled after %d/%d cells: %w", len(res.Cells), len(cells), err)
	}
	SortCells(res.Cells)
	return res, nil
}

// report updates the shared progress counters and invokes the callback
// under the mutex, serializing observations.
func (r *Runner) report(mu *sync.Mutex, cell Cell, cellWall time.Duration, start time.Time, totalCells, runsPerCell int, done, doneRuns *int) {
	mu.Lock()
	defer mu.Unlock()
	*done++
	*doneRuns += runsPerCell
	if r.Progress == nil {
		return
	}
	elapsed := time.Since(start)
	eta := etaFrom(elapsed, *done, totalCells-*done)
	r.Progress(Progress{
		TotalCells: totalCells,
		DoneCells:  *done,
		TotalRuns:  totalCells * runsPerCell,
		DoneRuns:   *doneRuns,
		Cell:       cell,
		CellWall:   cellWall,
		Elapsed:    elapsed,
		ETA:        eta,
	})
}

// etaFrom extrapolates remaining wall-clock time from the mean pace of
// the completed cells. The multiply happens before the divide: the old
// elapsed/done*remaining form truncated the per-cell pace to whole
// nanoseconds first, which collapsed the estimate toward zero whenever
// many fast cells had completed (elapsed/done rounds down, and the
// error is multiplied by remaining).
func etaFrom(elapsed time.Duration, done, remaining int) time.Duration {
	if done <= 0 || remaining <= 0 {
		return 0
	}
	return time.Duration(int64(elapsed) * int64(remaining) / int64(done))
}
