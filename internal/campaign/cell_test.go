package campaign

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"github.com/anacin-go/anacinx/internal/kernel"
)

// TestCellLevelMatchesBatchRun is the contract the serving layer rests
// on: running every CellSpec individually through RunCell and sorting
// with SortCells produces byte-identical CSV to the batch Runner over
// the same grid.
func TestCellLevelMatchesBatchRun(t *testing.T) {
	g := smallGrid()
	res, err := Run(g)
	if err != nil {
		t.Fatal(err)
	}

	q, err := g.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	specs := q.CellSpecs()
	if len(specs) != len(res.Cells) {
		t.Fatalf("CellSpecs = %d, batch cells = %d", len(specs), len(res.Cells))
	}
	cells := make([]Cell, len(specs))
	for i, spec := range specs {
		cells[i] = RunCell(context.Background(), q, spec, 0)
	}
	SortCells(cells)
	manual := &Result{KernelName: q.Kernel.Name(), Cells: cells}

	var want, got bytes.Buffer
	if err := res.WriteCSV(&want); err != nil {
		t.Fatal(err)
	}
	if err := manual.WriteCSV(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("cell-level CSV differs from batch run:\n%s\nvs\n%s", got.Bytes(), want.Bytes())
	}
}

func TestNormalizedRejectsBadRuns(t *testing.T) {
	g := smallGrid()
	g.Runs = 0
	if _, err := g.Normalized(); err == nil {
		t.Error("Normalized accepted Runs = 0")
	}
}

// TestCellFingerprint pins the dedupe key's two obligations: equal
// (grid knobs, spec) inputs collide — including across distinct Grid
// values that normalize identically — and every knob that changes the
// measurement changes the fingerprint.
func TestCellFingerprint(t *testing.T) {
	g := smallGrid()
	spec := CellSpec{Pattern: "message_race", Procs: 4, Iterations: 1, Nodes: 1, NDPercent: 50}
	base := g.CellFingerprint(spec)

	// Same logical cell from an independently-built grid: same key.
	g2 := smallGrid()
	if got := g2.CellFingerprint(spec); got != base {
		t.Errorf("identical cells fingerprint differently: %v vs %v", got, base)
	}
	// A normalized grid (explicit default kernel) keys like the nil-kernel one.
	q, err := g.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if got := q.CellFingerprint(spec); got != base {
		t.Errorf("normalized grid fingerprints differently: %v vs %v", got, base)
	}

	seen := map[string]string{base.String(): "base"}
	check := func(name string, g Grid, spec CellSpec) {
		t.Helper()
		got := g.CellFingerprint(spec).String()
		if prev, ok := seen[got]; ok {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[got] = name
	}
	mut := spec
	mut.Pattern = "ring_halo"
	check("pattern", g, mut)
	mut = spec
	mut.Procs = 8
	check("procs", g, mut)
	mut = spec
	mut.Iterations = 2
	check("iterations", g, mut)
	mut = spec
	mut.Nodes = 2
	check("nodes", g, mut)
	mut = spec
	mut.NDPercent = 51
	check("nd", g, mut)
	gm := g
	gm.Runs = 5
	check("runs", gm, spec)
	gm = g
	gm.BaseSeed = 2
	check("seed", gm, spec)
	gm = g
	gm.CaptureStacks = true
	check("stacks", gm, spec)
	gm = g
	gm.Kernel = kernel.NewWL(3)
	check("kernel", gm, spec)
}

// TestRunCancelledMidwayPartialResult pins the partial-result contract:
// a cancelled Run returns the completed cells alongside the error.
func TestRunCancelledMidwayPartialResult(t *testing.T) {
	g := smallGrid()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := &Runner{Workers: 1, Progress: func(p Progress) { cancel() }}
	res, err := r.Run(ctx, g)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled Run returned nil Result, want partial cells")
	}
	if len(res.Cells) == 0 || len(res.Cells) >= g.Cells() {
		t.Fatalf("partial cells = %d, want in [1, %d)", len(res.Cells), g.Cells())
	}
	for i, c := range res.Cells {
		if c.Pattern == "" {
			t.Errorf("partial cell %d is zero-valued", i)
		}
	}
	// The partial result must render: CSV of a truncated campaign is
	// still a valid, parseable archive.
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("partial CSV does not round-trip: %v", err)
	}
	if len(back.Cells) != len(res.Cells) {
		t.Errorf("round-trip cells = %d, want %d", len(back.Cells), len(res.Cells))
	}
}
