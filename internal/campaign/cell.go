package campaign

import (
	"context"
	"path/filepath"
	"sort"

	"github.com/anacin-go/anacinx/internal/core"
	"github.com/anacin-go/anacinx/internal/kernel"
	"github.com/anacin-go/anacinx/internal/trace"
)

// CellSpec is one grid point's coordinates: the dimensions a Grid
// crosses, without the grid-level scalar knobs (Runs, BaseSeed,
// Kernel). A (Grid, CellSpec) pair fully determines a cell's
// measurement — see Grid.CellFingerprint.
type CellSpec struct {
	Pattern    string
	Procs      int
	Iterations int
	Nodes      int
	NDPercent  float64
}

// Normalized returns the grid with dimension defaults and the default
// kernel applied, validated. Serving layers call it once at admission
// so that every later CellSpecs/CellFingerprint/RunCell call sees the
// same concrete configuration the Runner would execute.
func (g Grid) Normalized() (Grid, error) {
	q := g.withDefaults()
	if err := q.validate(); err != nil {
		return Grid{}, err
	}
	return q, nil
}

// CellSpecs expands the grid's cross product in declaration order
// (patterns, then procs, iterations, nodes, nd). Dimension defaults
// are applied first, so the result matches what Run would execute.
func (g *Grid) CellSpecs() []CellSpec {
	q := g.withDefaults()
	out := make([]CellSpec, 0, q.Cells())
	for _, pattern := range q.Patterns {
		for _, procs := range q.Procs {
			for _, iters := range q.Iterations {
				for _, nodes := range q.Nodes {
					for _, nd := range q.NDPercents {
						out = append(out, CellSpec{pattern, procs, iters, nodes, nd})
					}
				}
			}
		}
	}
	return out
}

// cellFingerprintVersion tags the fold schema below. Bump it whenever
// the schema — or the semantics of any folded knob — changes, so stale
// stores can never serve results computed under different rules.
const cellFingerprintVersion = "anacin/cell/v1"

// CellFingerprint is the content address of one cell's measurement: a
// fingerprint of everything that determines its Summary — the cell
// coordinates plus the grid's scalar knobs (runs, base seed, stack
// capture, kernel configuration; kernel names encode depth,
// directedness, and seed). Two submissions whose grids overlap on a
// cell produce equal fingerprints for it, which is what lets a result
// store dedupe concurrent campaigns and serve repeat queries without
// re-simulating. The grid should be Normalized first; a nil kernel is
// fingerprinted as the default (matching what Run would execute).
func (g *Grid) CellFingerprint(spec CellSpec) kernel.Fingerprint {
	k := g.Kernel
	if k == nil {
		k = kernel.NewWL(2)
	}
	fp := kernel.NewFingerprinter()
	fp.String(cellFingerprintVersion)
	fp.String(k.Name())
	fp.String(spec.Pattern)
	fp.Int(int64(spec.Procs))
	fp.Int(int64(spec.Iterations))
	fp.Int(int64(spec.Nodes))
	fp.Float(spec.NDPercent)
	fp.Int(int64(g.Runs))
	fp.Int(g.BaseSeed)
	fp.Bool(g.CaptureStacks)
	return fp.Sum()
}

// RunCell executes one grid cell of g and reduces it to its summary.
// Failures are recorded in Cell.Err, not returned: a cell is an
// independent measurement and its caller (the Runner's pool, or a
// serving layer's store) decides what a failure means for the whole.
// runWorkers caps the cell's run concurrency (<=0 means one worker per
// core); batch layers that already parallelize across cells pass their
// per-cell budget.
func RunCell(ctx context.Context, g Grid, spec CellSpec, runWorkers int) Cell {
	q := g.withDefaults()
	cell := Cell{
		Pattern: spec.Pattern, Procs: spec.Procs, Iterations: spec.Iterations,
		Nodes: spec.Nodes, NDPercent: spec.NDPercent, Runs: q.Runs,
	}
	e := core.DefaultExperiment(spec.Pattern, spec.Procs, spec.NDPercent)
	e.Iterations = spec.Iterations
	e.Nodes = spec.Nodes
	e.Runs = q.Runs
	e.BaseSeed = q.BaseSeed
	e.CaptureStacks = q.CaptureStacks
	e.Workers = runWorkers
	rs, err := e.ExecuteContext(ctx)
	if err != nil {
		cell.Err = err
		return cell
	}
	// DistanceSummary routes through the run set's embedding cache, so
	// a future per-cell root-source pass would reuse these embeddings.
	cell.Summary = rs.DistanceSummary(q.Kernel)
	cell.DistinctStructures = rs.DistinctStructures()
	return cell
}

// RunCellStream is RunCell through the streaming pipeline: every run
// simulates straight into a v2 trace file, is embedded by streaming the
// file back, and is reduced without a trace or graph ever materializing
// — flat memory in run length. When archiveDir is non-empty, the cell's
// traces are archived there under the cell's fingerprint
// (<archiveDir>/<fingerprint>/run-<i>.anctr), making the directory a
// content-addressed store replayable with `anacin replay`. The
// resulting Cell is byte-identical to RunCell's (the embeddings, and
// therefore the summary, match exactly — a property the tests pin).
// codec tunes archived-trace compression (zero = format default); the
// worker count never changes archived bytes.
func RunCellStream(ctx context.Context, g Grid, spec CellSpec, runWorkers int, archiveDir string, codec trace.CodecOptions) Cell {
	q := g.withDefaults()
	cell := Cell{
		Pattern: spec.Pattern, Procs: spec.Procs, Iterations: spec.Iterations,
		Nodes: spec.Nodes, NDPercent: spec.NDPercent, Runs: q.Runs,
	}
	e := core.DefaultExperiment(spec.Pattern, spec.Procs, spec.NDPercent)
	e.Iterations = spec.Iterations
	e.Nodes = spec.Nodes
	e.Runs = q.Runs
	e.BaseSeed = q.BaseSeed
	e.CaptureStacks = q.CaptureStacks
	e.Workers = runWorkers
	e.Codec = codec
	dir := ""
	if archiveDir != "" {
		dir = filepath.Join(archiveDir, g.CellFingerprint(spec).String())
	}
	srs, err := e.ExecuteStreamContext(ctx, q.Kernel, dir)
	if err != nil {
		cell.Err = err
		return cell
	}
	cell.Summary = srs.DistanceSummary()
	cell.DistinctStructures = srs.DistinctStructures()
	return cell
}

// SortCells orders cells by their deterministic key — the order Run
// returns and WriteCSV/WriteMarkdown expect. Layers that assemble a
// Result from individually-executed cells (the serve store path) sort
// with this so their output is byte-identical to a batch Run of the
// same grid.
func SortCells(cells []Cell) {
	sort.Slice(cells, func(i, j int) bool { return cells[i].key() < cells[j].key() })
}
