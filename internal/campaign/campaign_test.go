package campaign

import (
	"bytes"
	"strings"
	"testing"

	"github.com/anacin-go/anacinx/internal/kernel"
)

func smallGrid() Grid {
	return Grid{
		Patterns:   []string{"message_race", "ring_halo"},
		Procs:      []int{4, 6},
		NDPercents: []float64{0, 100},
		Runs:       4,
	}
}

func TestGridDefaults(t *testing.T) {
	var g Grid
	q := g.withDefaults()
	if len(q.Patterns) != 3 || q.Runs != 10 || q.Kernel == nil {
		t.Errorf("defaults wrong: %+v", q)
	}
	if g.Cells() != 3*1*1*1*3 {
		t.Errorf("default Cells = %d", g.Cells())
	}
	sg := smallGrid()
	if sg.Cells() != 2*2*1*1*2 {
		t.Errorf("small Cells = %d", sg.Cells())
	}
}

func TestRunGrid(t *testing.T) {
	res, err := Run(smallGrid())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 8 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	if len(res.Failed()) != 0 {
		t.Fatalf("failed cells: %+v", res.Failed())
	}
	// Sorted deterministically.
	for i := 1; i < len(res.Cells); i++ {
		if res.Cells[i-1].key() > res.Cells[i].key() {
			t.Fatal("cells not sorted")
		}
	}
	// Semantics: 0% ND always 1 structure and zero distance;
	// ring_halo everywhere deterministic; message_race at 100% racy.
	for _, c := range res.Cells {
		if c.NDPercent == 0 || c.Pattern == "ring_halo" {
			if c.Summary.Max != 0 || c.DistinctStructures != 1 {
				t.Errorf("cell %+v should be deterministic", c)
			}
		}
		if c.Pattern == "message_race" && c.NDPercent == 100 && c.Procs == 6 {
			if c.DistinctStructures < 2 {
				t.Errorf("100%% race shows no structural diversity: %+v", c)
			}
		}
	}
}

func TestRunGridRecordsCellErrors(t *testing.T) {
	g := smallGrid()
	g.Patterns = []string{"message_race", "definitely_not_a_pattern"}
	res, err := Run(g)
	if err != nil {
		t.Fatal(err)
	}
	failed := res.Failed()
	if len(failed) != 4 { // 2 procs x 2 nd for the bad pattern
		t.Fatalf("failed = %d", len(failed))
	}
	for _, c := range failed {
		if c.Pattern != "definitely_not_a_pattern" || c.Err == nil {
			t.Errorf("unexpected failure: %+v", c)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	res, err := Run(smallGrid())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != len(res.Cells) {
		t.Fatalf("round trip lost cells: %d vs %d", len(got.Cells), len(res.Cells))
	}
	for i := range got.Cells {
		a, b := res.Cells[i], got.Cells[i]
		if a.Pattern != b.Pattern || a.Procs != b.Procs || a.NDPercent != b.NDPercent ||
			a.Summary.Median != b.Summary.Median || a.DistinctStructures != b.DistinctStructures {
			t.Errorf("cell %d mangled:\n%+v\n%+v", i, a, b)
		}
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("not,a,campaign\n1,2,3\n")); err == nil {
		t.Error("garbage header accepted")
	}
	head := strings.Join(csvHeader, ",")
	if _, err := ReadCSV(strings.NewReader(head + "\nrace,notanint,1,1,0,4,6,0,0,0,0,0,0,0,1,\n")); err == nil {
		t.Error("bad int accepted")
	}
}

func TestWriteMarkdown(t *testing.T) {
	res, err := Run(Grid{Patterns: []string{"message_race"}, Procs: []int{4}, NDPercents: []float64{100}, Runs: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# Campaign", "| pattern |", "message_race", "3/3"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestCustomKernel(t *testing.T) {
	g := Grid{Patterns: []string{"message_race"}, Procs: []int{4}, NDPercents: []float64{0}, Runs: 3,
		Kernel: kernel.VertexHistogram{}}
	res, err := Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.KernelName != "vertex-hist" {
		t.Errorf("kernel name %q", res.KernelName)
	}
}
