package campaign

import (
	"bytes"
	"strings"
	"testing"

	"github.com/anacin-go/anacinx/internal/core"
	"github.com/anacin-go/anacinx/internal/kernel"
)

func smallGrid() Grid {
	return Grid{
		Patterns:   []string{"message_race", "ring_halo"},
		Procs:      []int{4, 6},
		NDPercents: []float64{0, 100},
		Runs:       4,
	}
}

func TestGridDefaults(t *testing.T) {
	var g Grid
	q := g.withDefaults()
	if len(q.Patterns) != 3 || q.Kernel == nil {
		t.Errorf("defaults wrong: %+v", q)
	}
	if g.Cells() != 3*1*1*1*3 {
		t.Errorf("default Cells = %d", g.Cells())
	}
	sg := smallGrid()
	if sg.Cells() != 2*2*1*1*2 {
		t.Errorf("small Cells = %d", sg.Cells())
	}
	dg := DefaultGrid()
	if dg.Runs != DefaultRuns || dg.BaseSeed != DefaultBaseSeed || len(dg.Patterns) != 3 {
		t.Errorf("DefaultGrid = %+v", dg)
	}
}

func TestRunRejectsUnsetRuns(t *testing.T) {
	// Runs is taken literally: zero (the likely typo "forgot to set it")
	// and negative values are validation errors, not a silent 10.
	for _, runs := range []int{0, -3} {
		g := smallGrid()
		g.Runs = runs
		if _, err := Run(g); err == nil {
			t.Errorf("Runs = %d accepted", runs)
		}
	}
}

func TestBaseSeedZeroHonored(t *testing.T) {
	// Seed 0 must run with seed 0, not be silently rewritten to 1. The
	// cell's sample must match a directly-executed experiment with
	// BaseSeed 0 — and differ from seed 1's, or the comparison would not
	// detect a rewrite. (message_race at 4 procs / 3 runs separates the
	// two seeds by distinct-structure count: 2 vs 3.)
	g := Grid{Patterns: []string{"message_race"}, Procs: []int{4},
		NDPercents: []float64{100}, Runs: 3, BaseSeed: 0}
	res, err := Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 || res.Cells[0].Err != nil {
		t.Fatalf("cells: %+v", res.Cells)
	}
	direct := func(seed int64) int {
		e := core.DefaultExperiment("message_race", 4, 100)
		e.Runs = 3
		e.BaseSeed = seed
		e.CaptureStacks = false
		rs, err := e.Execute()
		if err != nil {
			t.Fatal(err)
		}
		return rs.DistinctStructures()
	}
	seed0, seed1 := direct(0), direct(1)
	if seed0 == seed1 {
		t.Fatalf("test configuration cannot distinguish seeds (both give %d structures)", seed0)
	}
	if got := res.Cells[0].DistinctStructures; got != seed0 {
		t.Errorf("seed-0 cell has %d distinct structures, want %d (seed-1 gives %d)", got, seed0, seed1)
	}
}

func TestRunGrid(t *testing.T) {
	res, err := Run(smallGrid())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 8 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	if len(res.Failed()) != 0 {
		t.Fatalf("failed cells: %+v", res.Failed())
	}
	// Sorted deterministically.
	for i := 1; i < len(res.Cells); i++ {
		if res.Cells[i-1].key() > res.Cells[i].key() {
			t.Fatal("cells not sorted")
		}
	}
	// Semantics: 0% ND always 1 structure and zero distance;
	// ring_halo everywhere deterministic; message_race at 100% racy.
	for _, c := range res.Cells {
		if c.NDPercent == 0 || c.Pattern == "ring_halo" {
			if c.Summary.Max != 0 || c.DistinctStructures != 1 {
				t.Errorf("cell %+v should be deterministic", c)
			}
		}
		if c.Pattern == "message_race" && c.NDPercent == 100 && c.Procs == 6 {
			if c.DistinctStructures < 2 {
				t.Errorf("100%% race shows no structural diversity: %+v", c)
			}
		}
	}
}

func TestRunGridRecordsCellErrors(t *testing.T) {
	g := smallGrid()
	g.Patterns = []string{"message_race", "definitely_not_a_pattern"}
	res, err := Run(g)
	if err != nil {
		t.Fatal(err)
	}
	failed := res.Failed()
	if len(failed) != 4 { // 2 procs x 2 nd for the bad pattern
		t.Fatalf("failed = %d", len(failed))
	}
	for _, c := range failed {
		if c.Pattern != "definitely_not_a_pattern" || c.Err == nil {
			t.Errorf("unexpected failure: %+v", c)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	res, err := Run(smallGrid())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	written := append([]byte(nil), buf.Bytes()...)
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.KernelName != res.KernelName {
		t.Errorf("kernel name %q lost in round trip (want %q)", got.KernelName, res.KernelName)
	}
	if len(got.Cells) != len(res.Cells) {
		t.Fatalf("round trip lost cells: %d vs %d", len(got.Cells), len(res.Cells))
	}
	// The round trip is lossless: every configuration field and every
	// summary float comes back bit-for-bit equal.
	for i := range got.Cells {
		a, b := res.Cells[i], got.Cells[i]
		if a.Pattern != b.Pattern || a.Procs != b.Procs || a.Iterations != b.Iterations ||
			a.Nodes != b.Nodes || a.NDPercent != b.NDPercent || a.Runs != b.Runs ||
			a.Summary != b.Summary || a.DistinctStructures != b.DistinctStructures {
			t.Errorf("cell %d mangled:\n%+v\n%+v", i, a, b)
		}
	}
	// And re-serializing the parsed result reproduces the bytes.
	var buf2 bytes.Buffer
	if err := got.WriteCSV(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(written, buf2.Bytes()) {
		t.Error("write→read→write is not byte-stable")
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("not,a,campaign\n1,2,3\n")); err == nil {
		t.Error("garbage header accepted")
	}
	head := strings.Join(csvHeader, ",")
	if _, err := ReadCSV(strings.NewReader(head + "\nrace,notanint,1,1,0,4,6,0,0,0,0,0,0,0,1,\n")); err == nil {
		t.Error("bad int accepted")
	}
}

func TestWriteMarkdown(t *testing.T) {
	res, err := Run(Grid{Patterns: []string{"message_race"}, Procs: []int{4}, NDPercents: []float64{100}, Runs: 3, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# Campaign", "| pattern |", "message_race", "3/3"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestCustomKernel(t *testing.T) {
	g := Grid{Patterns: []string{"message_race"}, Procs: []int{4}, NDPercents: []float64{0}, Runs: 3,
		Kernel: kernel.VertexHistogram{}}
	res, err := Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.KernelName != "vertex-hist" {
		t.Errorf("kernel name %q", res.KernelName)
	}
}
