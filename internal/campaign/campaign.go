// Package campaign runs grids of experiments — the cross product of
// patterns, process counts, iteration counts, node counts, and injected
// non-determinism levels — and reduces each cell to its kernel-distance
// statistics. It is the batch layer a study like the paper's own
// evaluation needs: Figs. 5–7 are single rows/columns of such a grid.
//
// Results serialize to CSV (for external plotting) and markdown (for
// reports); cells are independent and keyed, so output ordering is
// deterministic regardless of execution interleaving.
package campaign

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/anacin-go/anacinx/internal/analysis"
	"github.com/anacin-go/anacinx/internal/kernel"
)

// Grid declares the cross product to run. Empty dimension slices and a
// nil kernel default to a single paper-flavoured value (emptiness is
// unambiguously "unset"); the scalar knobs Runs and BaseSeed are taken
// literally — a zero Runs is a validation error rather than a silent
// 10, and seed 0 runs with seed 0. Start from DefaultGrid for the
// paper's configuration.
type Grid struct {
	// Patterns lists pattern registry names (default: the paper's
	// three mini-applications).
	Patterns []string
	// Procs lists process counts (default: 16).
	Procs []int
	// Iterations lists iteration counts (default: 1).
	Iterations []int
	// Nodes lists node counts (default: 1).
	Nodes []int
	// NDPercents lists injection levels (default: 0, 50, 100).
	NDPercents []float64
	// Runs per cell; must be >= 1 (DefaultGrid uses DefaultRuns).
	Runs int
	// BaseSeed seeds every cell identically (runs use BaseSeed+i).
	// Every value, including 0, is honored as given.
	BaseSeed int64
	// Kernel is the graph kernel (nil = WL depth 2).
	Kernel kernel.Kernel
	// CaptureStacks enables callstack capture (off by default: the
	// campaign reduces to distances only).
	CaptureStacks bool
}

// DefaultRuns is the per-cell sample size of DefaultGrid.
const DefaultRuns = 10

// DefaultBaseSeed is the base seed of DefaultGrid.
const DefaultBaseSeed = 1

// DefaultGrid returns the paper-flavoured campaign: the three
// mini-applications at 16 processes, one iteration, one node, ND levels
// 0/50/100, DefaultRuns runs seeded from DefaultBaseSeed. Callers that
// want other scalar knobs should modify the returned grid rather than
// relying on zero values.
func DefaultGrid() Grid {
	return Grid{
		Patterns:   []string{"message_race", "amg2013", "unstructured_mesh"},
		Procs:      []int{16},
		Iterations: []int{1},
		Nodes:      []int{1},
		NDPercents: []float64{0, 50, 100},
		Runs:       DefaultRuns,
		BaseSeed:   DefaultBaseSeed,
	}
}

func (g *Grid) withDefaults() Grid {
	q := *g
	def := DefaultGrid()
	if len(q.Patterns) == 0 {
		q.Patterns = def.Patterns
	}
	if len(q.Procs) == 0 {
		q.Procs = def.Procs
	}
	if len(q.Iterations) == 0 {
		q.Iterations = def.Iterations
	}
	if len(q.Nodes) == 0 {
		q.Nodes = def.Nodes
	}
	if len(q.NDPercents) == 0 {
		q.NDPercents = def.NDPercents
	}
	if q.Kernel == nil {
		q.Kernel = kernel.NewWL(2)
	}
	return q
}

// validate rejects grids whose scalar knobs are unrunnable. Dimension
// defaults are applied by withDefaults before this is called.
func (g *Grid) validate() error {
	if g.Runs < 1 {
		return fmt.Errorf("campaign: Runs = %d, need >= 1 (set Runs explicitly or start from DefaultGrid)", g.Runs)
	}
	return nil
}

// Cells returns how many experiments the grid will run.
func (g *Grid) Cells() int {
	q := g.withDefaults()
	return len(q.Patterns) * len(q.Procs) * len(q.Iterations) * len(q.Nodes) * len(q.NDPercents)
}

// Cell is one grid point's configuration and reduced measurements.
type Cell struct {
	Pattern    string
	Procs      int
	Iterations int
	Nodes      int
	NDPercent  float64
	Runs       int
	// Summary describes the pairwise kernel-distance sample.
	Summary analysis.Summary
	// DistinctStructures counts distinct match orders in the sample.
	DistinctStructures int
	// Err records a per-cell failure (the campaign continues).
	Err error
}

// key orders cells deterministically.
func (c *Cell) key() string {
	return fmt.Sprintf("%s|%06d|%06d|%06d|%012.4f", c.Pattern, c.Procs, c.Iterations, c.Nodes, c.NDPercent)
}

// Result is a completed campaign.
type Result struct {
	KernelName string
	Cells      []Cell
}

// Run executes every cell of the grid with the default parallel Runner
// and returns the cells sorted by (pattern, procs, iterations, nodes,
// nd). See Runner for worker-pool and progress knobs and RunContext for
// cancellation.
func Run(g Grid) (*Result, error) {
	return RunContext(context.Background(), g)
}

// RunContext is Run with cancellation: cancelling ctx aborts in-flight
// cells and returns an error satisfying errors.Is(err, ctx.Err()).
func RunContext(ctx context.Context, g Grid) (*Result, error) {
	return (&Runner{}).Run(ctx, g)
}

// Failed returns the cells that errored.
func (r *Result) Failed() []Cell {
	var out []Cell
	for _, c := range r.Cells {
		if c.Err != nil {
			out = append(out, c)
		}
	}
	return out
}

// csvHeader is the column layout of WriteCSV. The kernel column repeats
// the campaign-level kernel name on every row so the archive is
// self-describing (and trivially greppable) without a comment syntax
// that encoding/csv would not round-trip.
var csvHeader = []string{
	"pattern", "procs", "iterations", "nodes", "nd_percent", "runs",
	"pairs", "min", "q1", "median", "q3", "max", "mean", "stddev",
	"distinct_structures", "error", "kernel",
}

// WriteCSV emits one row per cell. Floats use the shortest
// representation that parses back to exactly the same value
// (strconv.FormatFloat precision -1), so ReadCSV(WriteCSV(r))
// reproduces every summary bit-for-bit — the archiving contract a
// reproducible campaign needs.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, c := range r.Cells {
		errStr := ""
		if c.Err != nil {
			errStr = c.Err.Error()
		}
		row := []string{
			c.Pattern,
			strconv.Itoa(c.Procs), strconv.Itoa(c.Iterations), strconv.Itoa(c.Nodes),
			f(c.NDPercent), strconv.Itoa(c.Runs),
			strconv.Itoa(c.Summary.N),
			f(c.Summary.Min), f(c.Summary.Q1), f(c.Summary.Median),
			f(c.Summary.Q3), f(c.Summary.Max), f(c.Summary.Mean), f(c.Summary.StdDev),
			strconv.Itoa(c.DistinctStructures),
			errStr,
			r.KernelName,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a campaign CSV back into cells (summaries only; the
// error column round-trips as an opaque message).
func ReadCSV(rd io.Reader) (*Result, error) {
	cr := csv.NewReader(rd)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("campaign: csv: %w", err)
	}
	if len(rows) == 0 || strings.Join(rows[0], ",") != strings.Join(csvHeader, ",") {
		return nil, fmt.Errorf("campaign: unrecognized csv header")
	}
	res := &Result{}
	for i, row := range rows[1:] {
		if len(row) != len(csvHeader) {
			return nil, fmt.Errorf("campaign: row %d has %d columns", i+1, len(row))
		}
		var c Cell
		c.Pattern = row[0]
		ints := map[int]*int{1: &c.Procs, 2: &c.Iterations, 3: &c.Nodes, 5: &c.Runs, 6: &c.Summary.N, 14: &c.DistinctStructures}
		for col, dst := range ints {
			v, err := strconv.Atoi(row[col])
			if err != nil {
				return nil, fmt.Errorf("campaign: row %d col %d: %w", i+1, col, err)
			}
			*dst = v
		}
		floats := map[int]*float64{
			4: &c.NDPercent, 7: &c.Summary.Min, 8: &c.Summary.Q1, 9: &c.Summary.Median,
			10: &c.Summary.Q3, 11: &c.Summary.Max, 12: &c.Summary.Mean, 13: &c.Summary.StdDev,
		}
		for col, dst := range floats {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				return nil, fmt.Errorf("campaign: row %d col %d: %w", i+1, col, err)
			}
			*dst = v
		}
		if row[15] != "" {
			c.Err = fmt.Errorf("%s", row[15])
		}
		if res.KernelName == "" {
			res.KernelName = row[16]
		} else if row[16] != res.KernelName {
			return nil, fmt.Errorf("campaign: row %d kernel %q conflicts with %q", i+1, row[16], res.KernelName)
		}
		res.Cells = append(res.Cells, c)
	}
	return res, nil
}

// WriteMarkdown renders the campaign as a table.
func (r *Result) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# Campaign (%s kernel, %d cells)\n\n", r.KernelName, len(r.Cells))
	b.WriteString("| pattern | procs | iters | nodes | nd% | median | mean | max | structures |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|\n")
	for _, c := range r.Cells {
		if c.Err != nil {
			fmt.Fprintf(&b, "| %s | %d | %d | %d | %.0f | ERROR: %v | | | |\n",
				c.Pattern, c.Procs, c.Iterations, c.Nodes, c.NDPercent, c.Err)
			continue
		}
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %.0f | %.4g | %.4g | %.4g | %d/%d |\n",
			c.Pattern, c.Procs, c.Iterations, c.Nodes, c.NDPercent,
			c.Summary.Median, c.Summary.Mean, c.Summary.Max, c.DistinctStructures, c.Runs)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
