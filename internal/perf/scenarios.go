package perf

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"github.com/anacin-go/anacinx/internal/analysis"
	"github.com/anacin-go/anacinx/internal/core"
	"github.com/anacin-go/anacinx/internal/experiments"
	"github.com/anacin-go/anacinx/internal/graph"
	"github.com/anacin-go/anacinx/internal/kernel"
	"github.com/anacin-go/anacinx/internal/patterns"
	"github.com/anacin-go/anacinx/internal/sim"
	"github.com/anacin-go/anacinx/internal/trace"
	"github.com/anacin-go/anacinx/internal/verify"
)

// The scenario set covers every layer of the hot path behind the
// paper's figures, front half (trace production) to back half (kernel
// analysis):
//
//   - sim/32rank-{stacks,nostacks}: one full 32-rank simulation with
//     and without callstack capture — the trace-production substrate
//     (rank scheduling, message pooling, stack interning); the pair's
//     difference isolates capture cost.
//   - trace-to-graph/32rank: event-graph construction from a pre-built
//     trace — the bridge between the halves.
//   - wl-features/h2/r32: one WL depth-2 embedding of a 32-rank
//     unstructured-mesh event graph — the innermost kernel, and the
//     workload the acceptance Go benchmark
//     (BenchmarkWLFeaturesH2Rank32) times.
//   - dot/wl-h2: the n(n+1)/2 merge-join dot products over pre-built
//     embeddings — the Gram inner loop in isolation.
//   - gram/w{1,2,4,8}: the Gram matrix over a 12-run sample of
//     16-rank graphs at fixed worker counts, built through the
//     pipeline's embedding cache (warm after the first rep) — cache
//     lookups plus dot products, charting parallel scaling of the
//     fill.
//   - slice-profile/32rank: the Fig. 8 slice profile (16 windows,
//     8 runs, 32 ranks) — many small Gram builds in parallel.
//   - figure/fig2: one paper figure end to end (simulate, trace,
//     graph, embed, check) — what a user-visible unit of work costs.

// sampleGraphs simulates a run sample and returns its event graphs
// (setup-time work, excluded from scenario timing).
func sampleGraphs(pattern string, procs, runs int) ([]*graph.Graph, error) {
	e := core.DefaultExperiment(pattern, procs, 100)
	e.Runs = runs
	e.CaptureStacks = false
	rs, err := e.Execute()
	if err != nil {
		return nil, err
	}
	return rs.Graphs, nil
}

// simWorkload builds the front-half workload the sim/* and
// trace-to-graph/* scenarios share: the 32-rank unstructured-mesh
// pattern at a multi-node, 25%-ND configuration — the shape of one cell
// of an ND-percentage sweep, which the paper's workflow simulates
// hundreds of times.
func simWorkload(procs, iterations int, captureStacks bool) (sim.Config, trace.Meta, sim.Program, error) {
	pat, err := patterns.ByName("unstructured_mesh")
	if err != nil {
		return sim.Config{}, trace.Meta{}, nil, err
	}
	params := patterns.DefaultParams(procs)
	params.Iterations = iterations
	prog, err := pat.Program(params)
	if err != nil {
		return sim.Config{}, trace.Meta{}, nil, err
	}
	cfg := sim.DefaultConfig(procs, 1)
	cfg.Nodes = 2
	cfg.NDPercent = 25
	cfg.CaptureStacks = captureStacks
	meta := trace.Meta{Pattern: "unstructured_mesh", Iterations: iterations, MsgSize: params.MsgSize}
	return cfg, meta, sim.Adapt(prog), nil
}

// simScenario times one full simulated execution — the trace-generation
// front half of the pipeline. The stacks/nostacks pair isolates the
// cost of callstack capture (interned PC decoding) from the scheduler
// and matching machinery underneath it.
func simScenario(procs, iterations int, captureStacks bool) Scenario {
	suffix, what := "nostacks", "no callstack capture"
	if captureStacks {
		suffix, what = "stacks", "interned callstack capture"
	}
	return Scenario{
		Name: fmt.Sprintf("sim/%drank-%s", procs, suffix),
		Description: fmt.Sprintf("one %d-rank unstructured-mesh simulation (%d iterations, 25%% ND, %s)",
			procs, iterations, what),
		Setup: func() (func() error, error) {
			cfg, meta, prog, err := simWorkload(procs, iterations, captureStacks)
			if err != nil {
				return nil, err
			}
			return func() error {
				tr, _, err := sim.Run(cfg, meta, prog)
				if err != nil {
					return err
				}
				if tr.NumEvents() == 0 {
					return fmt.Errorf("empty trace")
				}
				return nil
			}, nil
		},
	}
}

// traceToGraphScenario times event-graph construction from an
// already-recorded trace — the second stage of the front half, which
// reuses the interned callstack keys the tracer recorded.
func traceToGraphScenario(procs, iterations int) Scenario {
	return Scenario{
		Name: fmt.Sprintf("trace-to-graph/%drank", procs),
		Description: fmt.Sprintf("event-graph build from one %d-rank unstructured-mesh trace (%d iterations, stacks on)",
			procs, iterations),
		Setup: func() (func() error, error) {
			cfg, meta, prog, err := simWorkload(procs, iterations, true)
			if err != nil {
				return nil, err
			}
			tr, _, err := sim.Run(cfg, meta, prog)
			if err != nil {
				return nil, err
			}
			return func() error {
				g, err := graph.FromTrace(tr)
				if err != nil {
					return err
				}
				if g.NumNodes() != tr.NumEvents() {
					return fmt.Errorf("graph has %d nodes for %d events", g.NumNodes(), tr.NumEvents())
				}
				return nil
			}, nil
		},
	}
}

// simScenarioIterations sizes the sim/* and trace-to-graph/* workloads:
// enough iterations that one op is well above timer resolution, few
// enough that a 20-rep CI run stays cheap.
const simScenarioIterations = 8

// wlFeaturesScenario times a single WL embedding.
func wlFeaturesScenario(name string, h, procs int) Scenario {
	return Scenario{
		Name:        name,
		Description: fmt.Sprintf("WL depth-%d embedding of one %d-rank unstructured-mesh graph", h, procs),
		Setup: func() (func() error, error) {
			gs, err := sampleGraphs("unstructured_mesh", procs, 1)
			if err != nil {
				return nil, err
			}
			w := kernel.NewWL(h)
			return func() error {
				if w.Features(gs[0]).Len() == 0 {
					return fmt.Errorf("empty embedding")
				}
				return nil
			}, nil
		},
	}
}

// gramScenario times the Gram-matrix build at a fixed worker count,
// through the same embedding cache the pipeline uses: a RunSet holds
// one cache across all of its analyses, so after the first build (here
// a warmup rep) every rebuild pays cache lookups plus the merge-join
// dot products, not re-embedding. The cold embedding cost is tracked
// separately by wl-features/h2/r32; the dot stage alone by dot/wl-h2.
func gramScenario(workers int) Scenario {
	return Scenario{
		Name:        fmt.Sprintf("gram/w%d", workers),
		Description: fmt.Sprintf("WL-2 Gram matrix over 12 16-rank graphs, %d workers, run-set embedding cache", workers),
		Setup: func() (func() error, error) {
			gs, err := sampleGraphs("unstructured_mesh", 16, 12)
			if err != nil {
				return nil, err
			}
			w := kernel.NewWL(2)
			c := kernel.NewCache()
			return func() error {
				m := c.NewMatrixWorkers(w, gs, workers)
				if m.Len() != len(gs) {
					return fmt.Errorf("matrix has %d rows, want %d", m.Len(), len(gs))
				}
				return nil
			}, nil
		},
	}
}

// dotScenario isolates the Gram matrix's inner loop: the n(n+1)/2
// merge-join dot products over pre-built WL depth-2 embeddings of a
// 12-run, 16-rank sample — the same workload as gram/w1 minus the
// embedding stage, so the two together attribute Gram time between
// embedding and dot products.
func dotScenario() Scenario {
	return Scenario{
		Name:        "dot/wl-h2",
		Description: "upper-triangle dot products over 12 pre-built WL-2 embeddings (16-rank graphs)",
		Setup: func() (func() error, error) {
			gs, err := sampleGraphs("unstructured_mesh", 16, 12)
			if err != nil {
				return nil, err
			}
			w := kernel.NewWL(2)
			feats := make([]kernel.FeatureVector, len(gs))
			for i, g := range gs {
				feats[i] = w.Features(g)
			}
			return func() error {
				sum := 0.0
				for i := range feats {
					for j := i; j < len(feats); j++ {
						sum += feats[i].Dot(feats[j])
					}
				}
				if sum <= 0 {
					return fmt.Errorf("degenerate dot-product sum %v", sum)
				}
				return nil
			}, nil
		},
	}
}

// sliceProfileScenario times the Fig. 8 slice profile: slice an 8-run,
// 32-rank sample into 16 logical-time windows and build one small Gram
// matrix per window (uncached, so the scenario measures the raw
// parallel profile, not cache hits).
func sliceProfileScenario() Scenario {
	return Scenario{
		Name:        "slice-profile/32rank",
		Description: "16-window slice profile of an 8-run 32-rank sample (WL-2)",
		Setup: func() (func() error, error) {
			gs, err := sampleGraphs("unstructured_mesh", 32, 8)
			if err != nil {
				return nil, err
			}
			w := kernel.NewWL(2)
			return func() error {
				p, err := analysis.NewSliceProfile(w, gs, 16)
				if err != nil {
					return err
				}
				if len(p.MeanDistance) != 16 {
					return fmt.Errorf("profile has %d slices, want 16", len(p.MeanDistance))
				}
				return nil
			}, nil
		},
	}
}

// largePSimIterations sizes the large-P simulations: the point is rank
// count, not iteration depth, so two iterations keep one op in the
// tens-of-milliseconds range even at 4096 ranks.
const largePSimIterations = 2

// largePSimScenario times one simulation of a named pattern at a rank
// count far past the 32-rank core set — the workloads that motivated
// per-source channel rows and arena trace storage. Stacks are captured
// so ns/op divided by event count is comparable with sim/32rank-stacks.
// Three pattern families stress different axes:
//
//   - stencil2d: wide halo exchange, every rank talks to 4 neighbours —
//     many short channel rows.
//   - collective_tree: tiny traced streams over O(P log P) internal
//     tree/butterfly messages — collective plumbing.
//   - master_worker: every worker shares channels with rank 0 — one
//     fan-in row that escalates to map indexing while the rest stay
//     two-entry.
func largePSimScenario(pattern, suffix string, procs int, nd float64) Scenario {
	return Scenario{
		Name: fmt.Sprintf("sim/%drank-%s", procs, suffix),
		Description: fmt.Sprintf("one %d-rank %s simulation (%d iterations, %g%% ND, stacks on)",
			procs, pattern, largePSimIterations, nd),
		Setup: func() (func() error, error) {
			pat, err := patterns.ByName(pattern)
			if err != nil {
				return nil, err
			}
			params := patterns.DefaultParams(procs)
			params.Iterations = largePSimIterations
			prog, err := pat.Program(params)
			if err != nil {
				return nil, err
			}
			cfg := sim.DefaultConfig(procs, 1)
			cfg.Nodes = 4
			cfg.NDPercent = nd
			cfg.CaptureStacks = true
			cfg.EventsPerRankHint = pat.EventsPerRankHint(params)
			meta := trace.Meta{Pattern: pattern, Iterations: params.Iterations, MsgSize: params.MsgSize}
			adapted := sim.Adapt(prog)
			return func() error {
				tr, _, err := sim.Run(cfg, meta, adapted)
				if err != nil {
					return err
				}
				if tr.NumEvents() == 0 {
					return fmt.Errorf("empty trace")
				}
				return nil
			}, nil
		},
	}
}

// raceCellIterations sizes the 1024-rank message-race cell and its
// sim-stage scenario: long enough (49,104 racing messages per run) that
// the fixed 1024-goroutine spawn/teardown cost amortizes to noise, as
// it does in real campaign cells; total events per run = 2·1024 +
// 2·24·1023 = 51,152.
const raceCellIterations = 24

// raceSimScenario times exactly one run of the 1024-rank message-race
// cell's simulation stage (stacks off, as large-P campaigns run): its
// ns/op divided by 51,152 events is the per-event cost the scaling work
// is accountable for, compared against sim/32rank-stacks ns/op over its
// 1,600 events. The full cell (simulate + graph + embed, 4 runs) is
// timed by campaign-cell/1024rank-race.
func raceSimScenario() Scenario {
	return Scenario{
		Name:        "sim/1024rank-race",
		Description: "one 1024-rank message-race simulation (24 iterations, 50% ND, stacks off) — the campaign cell's per-run sim stage",
		Setup: func() (func() error, error) {
			pat, err := patterns.ByName("message_race")
			if err != nil {
				return nil, err
			}
			params := patterns.DefaultParams(1024)
			params.Iterations = raceCellIterations
			prog, err := pat.Program(params)
			if err != nil {
				return nil, err
			}
			cfg := sim.DefaultConfig(1024, 1)
			cfg.Nodes = 4
			cfg.NDPercent = 50
			cfg.CaptureStacks = false
			cfg.EventsPerRankHint = pat.EventsPerRankHint(params)
			meta := trace.Meta{Pattern: "message_race", Iterations: params.Iterations, MsgSize: params.MsgSize}
			adapted := sim.Adapt(prog)
			return func() error {
				tr, _, err := sim.Run(cfg, meta, adapted)
				if err != nil {
					return err
				}
				if tr.NumEvents() == 0 {
					return fmt.Errorf("empty trace")
				}
				return nil
			}, nil
		},
	}
}

// campaignCellScenario times one full 1024-rank message-race campaign
// cell — the acceptance workload for the large-P scaling work: a
// 4-run sample simulated, graphed (through the parallel trace→graph
// path; each run is far past its sequential threshold), and reduced
// to WL-2 pairwise distances. Before per-source channel rows this
// cell alone held 1024² channel entries per concurrent run.
func campaignCellScenario() Scenario {
	return Scenario{
		Name:        "campaign-cell/1024rank-race",
		Description: "one 1024-rank message-race campaign cell (4 runs, 24 iterations, 50% ND, graphs + WL-2 distances)",
		Setup: func() (func() error, error) {
			e := core.DefaultExperiment("message_race", 1024, 50)
			e.Runs = 4
			e.Iterations = raceCellIterations
			e.Nodes = 4
			e.CaptureStacks = false
			w := kernel.NewWL(2)
			return func() error {
				rs, err := e.Execute()
				if err != nil {
					return err
				}
				d := rs.Distances(w)
				if want := e.Runs * (e.Runs - 1) / 2; len(d) != want {
					return fmt.Errorf("distance sample has %d pairs, want %d", len(d), want)
				}
				return nil
			}, nil
		},
	}
}

// raceTrace simulates one run of the 1024-rank message-race cell
// (stacks on, so the callstack table/dictionary codecs are exercised)
// — the shared input of the trace-codec scenarios.
func raceTrace() (*trace.Trace, error) {
	pat, err := patterns.ByName("message_race")
	if err != nil {
		return nil, err
	}
	params := patterns.DefaultParams(1024)
	params.Iterations = raceCellIterations
	prog, err := pat.Program(params)
	if err != nil {
		return nil, err
	}
	cfg := sim.DefaultConfig(1024, 1)
	cfg.Nodes = 4
	cfg.NDPercent = 50
	cfg.CaptureStacks = true
	cfg.EventsPerRankHint = pat.EventsPerRankHint(params)
	meta := trace.Meta{Pattern: "message_race", Iterations: params.Iterations, MsgSize: params.MsgSize}
	tr, _, err := sim.Run(cfg, meta, sim.Adapt(prog))
	return tr, err
}

// traceEncodeScenario times binary encoding of a 1024-rank race trace
// (51,152 events) into a discarding counter: the v1/v2 pair prices the
// columnar rewrite — v2's per-rank delta columns and front-coded
// dictionary versus v1's interleaved varint rows. Each scenario also
// records its encoded size (and, for v2, the ratio against v1) through
// the Output hook, so a codec change that trades archive bloat for
// speed is visible — and gated — in the same report as the wall-clock.
// workers > 1 routes the v2 encode through the segment-compression
// pipeline (WriteBinaryV2Options); the bytes are identical to the
// serial encode by design, which the Output measurement re-confirms on
// every bench run since the ratio is computed against a serial v1
// encode of the same trace.
func traceEncodeScenario(version, workers int) Scenario {
	name := fmt.Sprintf("trace-encode/1024rank-v%d", version)
	desc := fmt.Sprintf("binary v%d encode of one 1024-rank message-race trace (%d iterations, stacks on)",
		version, raceCellIterations)
	if workers > 1 {
		name = fmt.Sprintf("trace-encode/1024rank-v%d-par%d", version, workers)
		desc = fmt.Sprintf("binary v%d encode of one 1024-rank message-race trace through the %d-worker compression pipeline (bytes identical to serial)",
			version, workers)
	}
	encode := func(tr *trace.Trace, w *countingWriter) error {
		switch {
		case version == 1:
			return tr.WriteBinary(w)
		case workers > 1:
			return tr.WriteBinaryV2Options(w, trace.CodecOptions{Workers: workers})
		default:
			return tr.WriteBinaryV2(w)
		}
	}
	var tr *trace.Trace
	return Scenario{
		Name:        name,
		Description: desc,
		Setup: func() (func() error, error) {
			var err error
			if tr, err = raceTrace(); err != nil {
				return nil, err
			}
			return func() error {
				var n countingWriter
				if err := encode(tr, &n); err != nil {
					return err
				}
				if n == 0 {
					return fmt.Errorf("empty encoding")
				}
				return nil
			}, nil
		},
		Output: func() (int64, float64, error) {
			if tr == nil {
				return 0, 0, fmt.Errorf("output measured before setup")
			}
			var n, v1 countingWriter
			if err := encode(tr, &n); err != nil {
				return 0, 0, err
			}
			if version == 1 {
				return int64(n), 0, nil
			}
			if err := tr.WriteBinary(&v1); err != nil {
				return 0, 0, err
			}
			return int64(n), float64(n) / float64(v1), nil
		},
	}
}

// countingWriter discards writes, keeping only the byte count — enough
// to validate an encode without buffering 51k events of output per rep.
type countingWriter int64

func (w *countingWriter) Write(p []byte) (int, error) {
	*w += countingWriter(len(p))
	return len(p), nil
}

// traceDecodeGraphScenario times the stored-trace-to-graph path: the
// v1 pair decodes the full trace and builds the graph from it; the v2
// pair seeks the footer and streams rank cursors straight into the
// graph builder (graph.FromReader) — the `anacin replay` hot path.
func traceDecodeGraphScenario(version int) Scenario {
	return Scenario{
		Name: fmt.Sprintf("trace-decode+graph/1024rank-v%d", version),
		Description: fmt.Sprintf("binary v%d decode + event-graph build of one 1024-rank message-race trace (%d iterations)",
			version, raceCellIterations),
		Setup: func() (func() error, error) {
			tr, err := raceTrace()
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			if version == 1 {
				err = tr.WriteBinary(&buf)
			} else {
				err = tr.WriteBinaryV2(&buf)
			}
			if err != nil {
				return nil, err
			}
			data := buf.Bytes()
			want := tr.NumEvents()
			return func() error {
				var g *graph.Graph
				if version == 1 {
					dt, err := trace.ReadBinary(bytes.NewReader(data))
					if err != nil {
						return err
					}
					if g, err = graph.FromTrace(dt); err != nil {
						return err
					}
				} else {
					r, err := trace.NewReader(bytes.NewReader(data), int64(len(data)))
					if err != nil {
						return err
					}
					if g, err = graph.FromReader(r); err != nil {
						return err
					}
				}
				if g.NumNodes() != want {
					return fmt.Errorf("graph has %d nodes for %d events", g.NumNodes(), want)
				}
				return nil
			}, nil
		},
	}
}

// verifyScenario times the static verifier end to end at one process
// count: dual-policy symbolic elaboration of every registered pattern
// plus match/deadlock/count/metadata analysis — the `anacin verify`
// inner loop, which must stay in milliseconds so CI can gate on it for
// free.
func verifyScenario(procs int) Scenario {
	return Scenario{
		Name: fmt.Sprintf("verify/elaborate-%drank", procs),
		Description: fmt.Sprintf("static verification of all registered patterns at %d ranks (dual elaboration + analysis)",
			procs),
		Setup: func() (func() error, error) {
			opts := verify.Options{Procs: []int{procs}, Iters: []int{1}}
			return func() error {
				findings, summaries := verify.VerifyAll(opts)
				if n := verify.Gating(findings); n > 0 {
					return fmt.Errorf("%d gating findings", n)
				}
				if len(summaries) == 0 {
					return fmt.Errorf("no verified configurations")
				}
				return nil
			}, nil
		},
	}
}

// figureScenario times one paper-figure runner end to end (quick
// workload, no artifact files).
func figureScenario(id string) Scenario {
	return Scenario{
		Name:        "figure/" + id,
		Description: fmt.Sprintf("paper figure %s end to end (simulate, embed, check)", id),
		Setup: func() (func() error, error) {
			runner, ok := experiments.All()[id]
			if !ok {
				return nil, fmt.Errorf("unknown figure %q", id)
			}
			return func() error {
				res, err := runner(experiments.Options{Quick: true})
				if err != nil {
					return err
				}
				for _, c := range res.Checks {
					if !c.OK {
						return fmt.Errorf("shape check %s failed: %s", c.Name, c.Detail)
					}
				}
				return nil
			}, nil
		},
	}
}

// AllScenarios returns the full scenario set in its canonical order.
func AllScenarios() []Scenario {
	return []Scenario{
		simScenario(32, simScenarioIterations, true),
		simScenario(32, simScenarioIterations, false),
		// The per-event acceptance pair (sim/32rank-stacks vs
		// sim/1024rank-race) runs back to back, before the heavy 4096-rank
		// scenarios: a long bench run heats the machine, and comparing
		// numbers measured at different throttle states would skew the
		// per-event ratio either way.
		raceSimScenario(),
		campaignCellScenario(),
		traceToGraphScenario(32, simScenarioIterations),
		traceEncodeScenario(1, 1),
		traceEncodeScenario(2, 1),
		traceEncodeScenario(2, 4),
		traceDecodeGraphScenario(1),
		traceDecodeGraphScenario(2),
		wlFeaturesScenario("wl-features/h2/r32", 2, 32),
		dotScenario(),
		gramScenario(1),
		gramScenario(2),
		gramScenario(4),
		gramScenario(8),
		sliceProfileScenario(),
		verifyScenario(32),
		figureScenario("fig2"),
		largePSimScenario("stencil2d", "stencil", 256, 25),
		largePSimScenario("stencil2d", "stencil", 1024, 25),
		largePSimScenario("stencil2d", "stencil", 4096, 25),
		largePSimScenario("collective_tree", "collectives", 256, 25),
		largePSimScenario("collective_tree", "collectives", 1024, 25),
		largePSimScenario("collective_tree", "collectives", 4096, 25),
		largePSimScenario("master_worker", "masterworker", 256, 100),
		largePSimScenario("master_worker", "masterworker", 1024, 100),
		largePSimScenario("master_worker", "masterworker", 4096, 100),
	}
}

// quickNames is the reduced set CI runs on every push: the innermost
// kernel, the isolated dot-product stage, serial and mid-parallel Gram
// builds, one end-to-end figure, and the 1024-rank tier of the large-P
// family (the 4096-rank tier stays full-set-only for CI wall-clock).
// Large-P scenarios participate in the same regression gate as the
// core set: >25% min-wall-clock slowdowns (the CI statistic) and
// allocs/op growth both fail.
var quickNames = []string{
	"sim/32rank-stacks", "sim/32rank-nostacks", "trace-to-graph/32rank",
	"wl-features/h2/r32", "dot/wl-h2", "gram/w1", "gram/w4", "figure/fig2",
	"verify/elaborate-32rank",
	"sim/1024rank-stencil", "sim/1024rank-collectives", "sim/1024rank-masterworker",
	"sim/1024rank-race", "campaign-cell/1024rank-race",
	"trace-encode/1024rank-v1", "trace-encode/1024rank-v2", "trace-encode/1024rank-v2-par4",
	"trace-decode+graph/1024rank-v1", "trace-decode+graph/1024rank-v2",
}

// ScenarioNames lists the full set's names in canonical order.
func ScenarioNames() []string {
	all := AllScenarios()
	names := make([]string, len(all))
	for i, sc := range all {
		names[i] = sc.Name
	}
	return names
}

// Select resolves a -scenarios spec: "all", "quick", or a
// comma-separated list of names (order preserved, duplicates
// rejected).
func Select(spec string) ([]Scenario, error) {
	switch spec {
	case "", "all":
		return AllScenarios(), nil
	case "quick":
		return Select(strings.Join(quickNames, ","))
	}
	byName := make(map[string]Scenario)
	for _, sc := range AllScenarios() {
		byName[sc.Name] = sc
	}
	var out []Scenario
	taken := make(map[string]bool)
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		sc, ok := byName[name]
		if !ok {
			known := ScenarioNames()
			sort.Strings(known)
			return nil, fmt.Errorf("perf: unknown scenario %q (known: %s)", name, strings.Join(known, ", "))
		}
		if taken[name] {
			return nil, fmt.Errorf("perf: scenario %q listed twice", name)
		}
		taken[name] = true
		out = append(out, sc)
	}
	return out, nil
}
