package perf

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Markdown rendering for CI step summaries: GitHub Actions renders
// anything appended to $GITHUB_STEP_SUMMARY as GitHub-flavored
// markdown, so the bench job can surface per-scenario numbers — and,
// on pull requests, the before/after delta of every scenario — on the
// run page itself instead of burying them in the log. `anacin bench
// -summary <path>` appends these tables (see cmd/anacin).

// WriteMarkdownReport appends a markdown table of the report's
// per-scenario statistics.
func WriteMarkdownReport(w io.Writer, r *Report) error {
	if _, err := fmt.Fprintf(w, "### Benchmark results (%d reps, %d warmup, GOMAXPROCS %d)\n\n",
		r.Reps, r.Warmup, r.GOMAXPROCS); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "| Scenario | Median | P95 | Min | Allocs/op | Output |\n|---|---:|---:|---:|---:|---:|\n"); err != nil {
		return err
	}
	for _, res := range r.Scenarios {
		out := ""
		if res.OutputBytes > 0 {
			out = fmt.Sprintf("%d B", res.OutputBytes)
			if res.OutputRatio > 0 {
				out += fmt.Sprintf(" (%.2fx v1)", res.OutputRatio)
			}
		}
		if _, err := fmt.Fprintf(w, "| %s | %s | %s | %s | %d | %s |\n",
			res.Name, time.Duration(res.MedianNs), time.Duration(res.P95Ns),
			time.Duration(res.MinNs), res.AllocsPerOp, out); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteMarkdownDeltas appends a markdown before/after table of the
// comparison, one row per scenario, with the relative delta of the
// gated statistic, the allocs/op movement, and a pass/fail marker
// against the gate threshold.
// Speedups show as negative deltas — the table makes improvements as
// visible as regressions, where the pass/fail gate alone reports only
// the latter.
func WriteMarkdownDeltas(w io.Writer, deltas []Delta, stat Stat, threshold float64) error {
	if _, err := fmt.Fprintf(w, "### Benchmark comparison (gate: +%.0f%% %s)\n\n", threshold*100, stat); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "| Scenario | Baseline | Current | Delta | Allocs/op | Output | Status |\n|---|---:|---:|---:|---:|---:|:---:|\n"); err != nil {
		return err
	}
	for _, d := range deltas {
		delta := "n/a"
		if d.Ratio != 0 {
			delta = fmt.Sprintf("%+.1f%%", (d.Ratio-1)*100)
		}
		allocs := fmt.Sprintf("%d → %d", d.BaselineAllocs, d.CurrentAllocs)
		out := ""
		if d.BytesRatio != 0 {
			out = fmt.Sprintf("%d → %d B (%+.1f%%)", d.BaselineBytes, d.CurrentBytes, (d.BytesRatio-1)*100)
		} else if d.CurrentBytes > 0 {
			out = fmt.Sprintf("%d B", d.CurrentBytes)
		}
		var failed []string
		if d.Regressed {
			failed = append(failed, "time")
		}
		if d.AllocRegressed {
			failed = append(failed, "allocs")
		}
		if d.BytesRegressed {
			failed = append(failed, "bytes")
		}
		status := "✅"
		switch {
		case len(failed) > 0:
			status = "❌ regressed (" + strings.Join(failed, ", ") + ")"
		case d.Note != "":
			status = "➖ " + d.Note
		case d.Ratio != 0 && d.Ratio < 1:
			status = "✅ faster"
		}
		if _, err := fmt.Fprintf(w, "| %s | %s | %s | %s | %s | %s | %s |\n",
			d.Name, time.Duration(d.BaselineNs), time.Duration(d.CurrentNs), delta, allocs, out, status); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
