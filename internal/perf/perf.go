// Package perf is the repository's reproducible performance harness:
// it runs named benchmark scenarios with warmup and repetition,
// summarizes each with robust statistics (median/p95/min wall-clock,
// allocations), and serializes the result as a schema-versioned
// BENCH.json that both humans and CI can diff across commits.
//
// The design follows the methodology of Hunold & Carpen-Amarie ("MPI
// Benchmarking Revisited", see PAPERS.md): performance claims are only
// meaningful when the measurement procedure — warmup policy, sample
// size, summary statistic — is fixed and recorded alongside the
// numbers. A BENCH.json therefore embeds the environment (commit, go
// version, GOMAXPROCS) and the procedure (reps, warmup) next to every
// scenario's statistics, and Compare refuses to diff reports whose
// schemas disagree.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"
)

// Schema identifies the BENCH.json layout. Bump on any
// breaking change to Report or Result; Compare and Load reject
// mismatches instead of silently misreading old baselines.
const Schema = "anacinx-bench/v1"

// Report is one harness invocation: environment, procedure, and one
// Result per scenario. Field order is part of the schema — Marshal
// output is byte-stable for a given Report value, which CI relies on
// when archiving baselines.
type Report struct {
	Schema     string   `json:"schema"`
	Commit     string   `json:"commit,omitempty"`
	Date       string   `json:"date,omitempty"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Reps       int      `json:"reps"`
	Warmup     int      `json:"warmup"`
	Scenarios  []Result `json:"scenarios"`
}

// Result summarizes one scenario's sample of Reps timed operations.
type Result struct {
	Name string `json:"name"`
	// MedianNs is the summary statistic the regression gate compares:
	// robust to the occasional GC pause or scheduler hiccup that
	// poisons a mean.
	MedianNs int64 `json:"median_ns"`
	// P95Ns captures the tail; MinNs approximates the noise floor.
	P95Ns  int64 `json:"p95_ns"`
	MinNs  int64 `json:"min_ns"`
	MeanNs int64 `json:"mean_ns"`
	// AllocsPerOp and BytesPerOp come from one dedicated untimed rep
	// after the timed loop, with a runtime.GC() settling the heap first.
	// The counters are process-wide MemStats deltas, so allocations by
	// goroutines the op itself spawns (e.g. Gram-matrix workers) are
	// correctly included, but any unrelated background activity during
	// that rep still leaks in — treat the figures as close estimates,
	// not exact per-op accounting.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// OutputBytes and OutputRatio record the size of the artifact the
	// scenario produces (e.g. a compressed trace archive) and its ratio
	// against a reference encoding, when the scenario declares an Output
	// hook. Zero means "not measured" — wall-clock-only scenarios omit
	// the fields entirely, keeping old baselines readable.
	OutputBytes int64   `json:"output_bytes,omitempty"`
	OutputRatio float64 `json:"output_ratio,omitempty"`
}

// Scenario is a named, self-contained benchmark: Setup builds the
// workload (untimed) and returns the operation to measure.
type Scenario struct {
	Name        string
	Description string
	Setup       func() (func() error, error)
	// Output, when non-nil, measures the scenario's artifact size after
	// the timed reps (untimed): it returns the output byte count and a
	// ratio against a reference encoding (0 when there is none). Codec
	// scenarios use it to track compressed archive size next to
	// wall-clock, so a "faster" codec that bloats archives still trips
	// the comparison gate.
	Output func() (bytes int64, ratio float64, err error)
}

// Options configure a harness run.
type Options struct {
	// Reps is the number of timed repetitions per scenario (>=1;
	// default 10). Statistics are computed over exactly these reps.
	Reps int
	// Warmup is the number of untimed repetitions executed first
	// (default 2) — they populate caches, the label interner, and the
	// scratch pools, so the timed reps measure steady state.
	Warmup int
	// Commit and Date stamp the report (both optional).
	Commit string
	Date   string
	// Logf, when non-nil, receives one progress line per scenario.
	Logf func(format string, args ...any)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Reps < 1 {
		out.Reps = 10
	}
	if out.Warmup < 0 {
		out.Warmup = 2
	}
	return out
}

// Run executes every scenario and assembles the Report.
func Run(scenarios []Scenario, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	rep := &Report{
		Schema:     Schema,
		Commit:     opts.Commit,
		Date:       opts.Date,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Reps:       opts.Reps,
		Warmup:     opts.Warmup,
		Scenarios:  make([]Result, 0, len(scenarios)),
	}
	for _, sc := range scenarios {
		res, err := runScenario(sc, opts)
		if err != nil {
			return nil, fmt.Errorf("perf: scenario %s: %w", sc.Name, err)
		}
		rep.Scenarios = append(rep.Scenarios, res)
		if opts.Logf != nil {
			line := fmt.Sprintf("%-24s median %s  p95 %s  min %s  %d allocs/op",
				sc.Name, time.Duration(res.MedianNs), time.Duration(res.P95Ns),
				time.Duration(res.MinNs), res.AllocsPerOp)
			if res.OutputBytes > 0 {
				line += fmt.Sprintf("  out %d B", res.OutputBytes)
				if res.OutputRatio > 0 {
					line += fmt.Sprintf(" (%.2fx v1)", res.OutputRatio)
				}
			}
			opts.Logf("%s", line)
		}
	}
	return rep, nil
}

func runScenario(sc Scenario, opts Options) (Result, error) {
	op, err := sc.Setup()
	if err != nil {
		return Result{}, fmt.Errorf("setup: %w", err)
	}
	for i := 0; i < opts.Warmup; i++ {
		if err := op(); err != nil {
			return Result{}, fmt.Errorf("warmup rep %d: %w", i, err)
		}
	}
	durs := make([]int64, opts.Reps)
	for i := range durs {
		start := time.Now()
		if err := op(); err != nil {
			return Result{}, fmt.Errorf("rep %d: %w", i, err)
		}
		durs[i] = time.Since(start).Nanoseconds()
	}
	// Allocations are measured in a dedicated untimed rep so the timed
	// loop stays free of ReadMemStats stop-the-world pauses, and a GC
	// first settles pending sweeps and background-goroutine churn that
	// would otherwise be attributed to the scenario.
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if err := op(); err != nil {
		return Result{}, fmt.Errorf("alloc rep: %w", err)
	}
	runtime.ReadMemStats(&after)
	reps := int64(opts.Reps)
	res := Result{
		Name:        sc.Name,
		AllocsPerOp: int64(after.Mallocs - before.Mallocs),
		BytesPerOp:  int64(after.TotalAlloc - before.TotalAlloc),
	}
	var sum int64
	for _, d := range durs {
		sum += d
	}
	res.MeanNs = sum / reps
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	res.MinNs = durs[0]
	res.MedianNs = median(durs)
	res.P95Ns = percentile(durs, 0.95)
	if sc.Output != nil {
		b, ratio, err := sc.Output()
		if err != nil {
			return Result{}, fmt.Errorf("output: %w", err)
		}
		res.OutputBytes, res.OutputRatio = b, ratio
	}
	return res, nil
}

// median of a sorted sample: middle element, or the mean of the two
// middle elements for even sizes.
func median(sorted []int64) int64 {
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// percentile applies the nearest-rank method to a sorted sample.
func percentile(sorted []int64, p float64) int64 {
	n := len(sorted)
	rank := int(p*float64(n)+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return sorted[rank]
}

// Marshal renders the report as indented JSON with a trailing newline.
// Output bytes are a pure function of the Report value.
func (r *Report) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the report to path (the conventional name is
// BENCH.json).
func (r *Report) WriteFile(path string) error {
	b, err := r.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// Load reads a report and validates its schema.
func Load(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("perf: %s has schema %q, this binary speaks %q", path, r.Schema, Schema)
	}
	return &r, nil
}
