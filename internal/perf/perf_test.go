package perf

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// goldenReport is a fully-populated report used by the serialization
// tests.
func goldenReport() *Report {
	return &Report{
		Schema:     Schema,
		Commit:     "abc1234",
		Date:       "2026-08-06T12:00:00Z",
		GoVersion:  "go1.22.0",
		GOOS:       "linux",
		GOARCH:     "amd64",
		GOMAXPROCS: 8,
		Reps:       10,
		Warmup:     2,
		Scenarios: []Result{
			{Name: "wl-features/h2/r32", MedianNs: 120000, P95Ns: 150000, MinNs: 110000, MeanNs: 125000, AllocsPerOp: 4, BytesPerOp: 9560},
			{Name: "gram/w4", MedianNs: 900000, P95Ns: 1100000, MinNs: 850000, MeanNs: 930000, AllocsPerOp: 200, BytesPerOp: 420000},
		},
	}
}

// TestReportRoundTrip pins the BENCH.json golden property: marshal →
// write → load → re-marshal is byte-stable and loses nothing.
func TestReportRoundTrip(t *testing.T) {
	r := goldenReport()
	first, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(first, []byte("\n")) {
		t.Error("marshal output lacks trailing newline")
	}
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded, r) {
		t.Fatal("loaded report differs from written report")
	}
	second, err := loaded.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("re-marshal is not byte-stable:\n%s\nvs\n%s", first, second)
	}
}

func TestLoadRejectsWrongSchema(t *testing.T) {
	r := goldenReport()
	r.Schema = "anacinx-bench/v0"
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("Load accepted wrong schema (err=%v)", err)
	}
}

// reportWith builds a minimal report with one median per scenario name.
func reportWith(medians map[string]int64) *Report {
	r := &Report{Schema: Schema}
	// Deterministic order is irrelevant to Compare; insert as given.
	for name, m := range medians {
		r.Scenarios = append(r.Scenarios, Result{Name: name, MedianNs: m})
	}
	return r
}

func deltaByName(t *testing.T, deltas []Delta, name string) Delta {
	t.Helper()
	for _, d := range deltas {
		if d.Name == name {
			return d
		}
	}
	t.Fatalf("no delta for %q", name)
	return Delta{}
}

func TestCompareEdgeCases(t *testing.T) {
	baseline := &Report{Schema: Schema, Scenarios: []Result{
		{Name: "at-threshold", MedianNs: 100},
		{Name: "just-over", MedianNs: 100},
		{Name: "improved", MedianNs: 100},
		{Name: "vanished", MedianNs: 100},
		{Name: "zero-base", MedianNs: 0},
	}}
	current := &Report{Schema: Schema, Scenarios: []Result{
		{Name: "at-threshold", MedianNs: 125}, // exactly +25%: passes
		{Name: "just-over", MedianNs: 126},    // +26%: fails
		{Name: "improved", MedianNs: 40},
		{Name: "zero-base", MedianNs: 999},
		{Name: "brand-new", MedianNs: 50},
	}}
	deltas, err := Compare(baseline, current, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if d := deltaByName(t, deltas, "at-threshold"); d.Regressed {
		t.Error("exactly-at-threshold regression must pass the gate")
	}
	if d := deltaByName(t, deltas, "just-over"); !d.Regressed {
		t.Error("+26% at 25% threshold must fail the gate")
	}
	if d := deltaByName(t, deltas, "improved"); d.Regressed || d.Ratio != 0.4 {
		t.Errorf("improvement misreported: %+v", d)
	}
	if d := deltaByName(t, deltas, "vanished"); !d.Regressed || d.Note == "" {
		t.Errorf("scenario missing from current must regress: %+v", d)
	}
	if d := deltaByName(t, deltas, "zero-base"); d.Regressed || d.Note == "" {
		t.Errorf("zero baseline must be noted, never regressed: %+v", d)
	}
	if d := deltaByName(t, deltas, "brand-new"); d.Regressed || d.Note == "" {
		t.Errorf("new scenario must be noted, never regressed: %+v", d)
	}
	if got := Regressions(deltas); len(got) != 2 {
		t.Errorf("Regressions returned %d deltas, want 2", len(got))
	}
	var buf bytes.Buffer
	if err := WriteDeltas(&buf, deltas); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "REGRESSED") {
		t.Error("delta table does not flag regressions")
	}

	if _, err := Compare(baseline, current, -1); err == nil {
		t.Error("negative threshold accepted")
	}
	if _, err := Compare(&Report{Schema: "bogus"}, current, 0.25); err == nil {
		t.Error("schema mismatch accepted")
	}
}

// TestCompareByMinStat pins the CI gate configuration: the min
// statistic is the one compared, independent of the medians.
func TestCompareByMinStat(t *testing.T) {
	baseline := &Report{Schema: Schema, Scenarios: []Result{
		{Name: "s", MedianNs: 100, MinNs: 80},
	}}
	current := &Report{Schema: Schema, Scenarios: []Result{
		{Name: "s", MedianNs: 300, MinNs: 90}, // median tripled, min +12.5%
	}}
	deltas, err := CompareBy(baseline, current, 0.25, StatMin)
	if err != nil {
		t.Fatal(err)
	}
	d := deltaByName(t, deltas, "s")
	if d.Regressed || d.BaselineNs != 80 || d.CurrentNs != 90 {
		t.Errorf("min-stat gate misread the reports: %+v", d)
	}
	deltas, err = CompareBy(baseline, current, 0.10, StatMin)
	if err != nil {
		t.Fatal(err)
	}
	if d := deltaByName(t, deltas, "s"); !d.Regressed {
		t.Errorf("min +12.5%% at 10%% threshold must regress: %+v", d)
	}
	if _, err := CompareBy(baseline, current, 0.25, Stat("p95")); err == nil {
		t.Error("unknown stat accepted")
	}
}

// TestCompareAllocGate pins the allocs/op gate: a regression must clear
// both the relative threshold and the absolute allocSlack, so leaks on
// big counts trip the gate while a few stray allocations on tiny counts
// do not.
func TestCompareAllocGate(t *testing.T) {
	baseline := &Report{Schema: Schema, Scenarios: []Result{
		{Name: "big-leak", MedianNs: 100, AllocsPerOp: 1000},
		{Name: "big-at-threshold", MedianNs: 100, AllocsPerOp: 1000},
		{Name: "small-jitter", MedianNs: 100, AllocsPerOp: 4},
		{Name: "small-leak", MedianNs: 100, AllocsPerOp: 4},
		{Name: "zero-alloc-grown", MedianNs: 100, AllocsPerOp: 0},
		{Name: "improved", MedianNs: 100, AllocsPerOp: 1000},
	}}
	current := &Report{Schema: Schema, Scenarios: []Result{
		{Name: "big-leak", MedianNs: 100, AllocsPerOp: 1300},         // +30%: fails
		{Name: "big-at-threshold", MedianNs: 100, AllocsPerOp: 1250}, // exactly +25%: passes
		{Name: "small-jitter", MedianNs: 100, AllocsPerOp: 20},       // 5x but +16 ≤ slack: passes
		{Name: "small-leak", MedianNs: 100, AllocsPerOp: 21},         // 5.25x and +17 > slack: fails
		{Name: "zero-alloc-grown", MedianNs: 100, AllocsPerOp: 100},  // 0 → 100: fails
		{Name: "improved", MedianNs: 100, AllocsPerOp: 100},
	}}
	deltas, err := Compare(baseline, current, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]bool{
		"big-leak":         true,
		"big-at-threshold": false,
		"small-jitter":     false,
		"small-leak":       true,
		"zero-alloc-grown": true,
		"improved":         false,
	} {
		d := deltaByName(t, deltas, name)
		if d.AllocRegressed != want {
			t.Errorf("%s: AllocRegressed = %v, want %v (%d -> %d allocs)",
				name, d.AllocRegressed, want, d.BaselineAllocs, d.CurrentAllocs)
		}
		if d.Regressed {
			t.Errorf("%s: timed gate tripped, but only allocs moved: %+v", name, d)
		}
	}
	if d := deltaByName(t, deltas, "improved"); d.AllocRatio != 0.1 {
		t.Errorf("improved: AllocRatio = %v, want 0.1", d.AllocRatio)
	}
	if got := Regressions(deltas); len(got) != 3 {
		t.Errorf("Regressions returned %d deltas, want 3 alloc regressions", len(got))
	}
	var buf bytes.Buffer
	if err := WriteDeltas(&buf, deltas); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "REGRESSED allocs") {
		t.Errorf("delta table does not flag alloc regressions:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "allocs 1000 -> 1300 (+30.0%)") {
		t.Errorf("delta table does not show alloc movement:\n%s", buf.String())
	}
}

// TestCompareBytesGate pins the output-size gate: growth past the
// threshold fails only when both sides measured a size, so old
// baselines without the field and wall-clock-only scenarios stay inert.
func TestCompareBytesGate(t *testing.T) {
	baseline := &Report{Schema: Schema, Scenarios: []Result{
		{Name: "bloated", MedianNs: 100, OutputBytes: 1000},
		{Name: "at-threshold", MedianNs: 100, OutputBytes: 1000},
		{Name: "shrunk", MedianNs: 100, OutputBytes: 1000},
		{Name: "no-baseline-size", MedianNs: 100},
		{Name: "size-dropped", MedianNs: 100, OutputBytes: 1000},
	}}
	current := &Report{Schema: Schema, Scenarios: []Result{
		{Name: "bloated", MedianNs: 100, OutputBytes: 1300},      // +30%: fails
		{Name: "at-threshold", MedianNs: 100, OutputBytes: 1250}, // exactly +25%: passes
		{Name: "shrunk", MedianNs: 100, OutputBytes: 600},
		{Name: "no-baseline-size", MedianNs: 100, OutputBytes: 5000}, // no anchor: inert
		{Name: "size-dropped", MedianNs: 100},                        // measurement removed: inert
	}}
	deltas, err := Compare(baseline, current, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]bool{
		"bloated":          true,
		"at-threshold":     false,
		"shrunk":           false,
		"no-baseline-size": false,
		"size-dropped":     false,
	} {
		d := deltaByName(t, deltas, name)
		if d.BytesRegressed != want {
			t.Errorf("%s: BytesRegressed = %v, want %v (%d -> %d bytes)",
				name, d.BytesRegressed, want, d.BaselineBytes, d.CurrentBytes)
		}
		if d.Regressed || d.AllocRegressed {
			t.Errorf("%s: wrong gate tripped, only output size moved: %+v", name, d)
		}
	}
	if d := deltaByName(t, deltas, "shrunk"); d.BytesRatio != 0.6 {
		t.Errorf("shrunk: BytesRatio = %v, want 0.6", d.BytesRatio)
	}
	if got := Regressions(deltas); len(got) != 1 {
		t.Errorf("Regressions returned %d deltas, want 1 size regression", len(got))
	}
	var buf bytes.Buffer
	if err := WriteDeltas(&buf, deltas); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "REGRESSED bytes") {
		t.Errorf("delta table does not flag size regressions:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "bytes 1000 -> 1300 (+30.0%)") {
		t.Errorf("delta table does not show size movement:\n%s", buf.String())
	}
}

// TestMarkdownWriters pins the step-summary tables: a results table
// row per scenario, and a delta table that labels regressions,
// improvements, and ungated (noted) scenarios distinctly.
func TestMarkdownWriters(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMarkdownReport(&buf, goldenReport()); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{
		"### Benchmark results (10 reps, 2 warmup, GOMAXPROCS 8)",
		"| Scenario | Median | P95 | Min | Allocs/op | Output |",
		"| wl-features/h2/r32 | 120µs | 150µs | 110µs | 4 |  |",
		"| gram/w4 | 900µs | 1.1ms | 850µs | 200 |  |",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("results table missing %q:\n%s", want, got)
		}
	}

	deltas := []Delta{
		{Name: "worse", BaselineNs: 100, CurrentNs: 200, Ratio: 2, Regressed: true},
		{Name: "better", BaselineNs: 200, CurrentNs: 100, Ratio: 0.5},
		{Name: "flat", BaselineNs: 100, CurrentNs: 100, Ratio: 1},
		{Name: "leaky", BaselineNs: 100, CurrentNs: 100, Ratio: 1,
			BaselineAllocs: 10, CurrentAllocs: 500, AllocRatio: 50, AllocRegressed: true},
		{Name: "bloat", BaselineNs: 100, CurrentNs: 100, Ratio: 1,
			BaselineBytes: 1000, CurrentBytes: 2000, BytesRatio: 2, BytesRegressed: true},
		{Name: "new", CurrentNs: 50, Note: "new scenario (not gated)"},
	}
	buf.Reset()
	if err := WriteMarkdownDeltas(&buf, deltas, StatMin, 0.25); err != nil {
		t.Fatal(err)
	}
	got = buf.String()
	for _, want := range []string{
		"### Benchmark comparison (gate: +25% min)",
		"| worse | 100ns | 200ns | +100.0% | 0 → 0 |  | ❌ regressed (time) |",
		"| better | 200ns | 100ns | -50.0% | 0 → 0 |  | ✅ faster |",
		"| flat | 100ns | 100ns | +0.0% | 0 → 0 |  | ✅ |",
		"| leaky | 100ns | 100ns | +0.0% | 10 → 500 |  | ❌ regressed (allocs) |",
		"| bloat | 100ns | 100ns | +0.0% | 0 → 0 | 1000 → 2000 B (+100.0%) | ❌ regressed (bytes) |",
		"| new | 0s | 50ns | n/a | 0 → 0 |  | ➖ new scenario (not gated) |",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("delta table missing %q:\n%s", want, got)
		}
	}
}

func TestParseStat(t *testing.T) {
	for _, ok := range []string{"median", "min"} {
		if s, err := ParseStat(ok); err != nil || string(s) != ok {
			t.Errorf("ParseStat(%q) = %q, %v", ok, s, err)
		}
	}
	if _, err := ParseStat("mean"); err == nil {
		t.Error("ParseStat accepted unsupported statistic")
	}
}

// TestRunHarness smoke-tests the measurement loop on synthetic
// scenarios: statistics must be ordered, warmup must not be counted,
// and setup/op failures must surface with scenario context.
func TestRunHarness(t *testing.T) {
	calls := 0
	rep, err := Run([]Scenario{{
		Name: "counting",
		Setup: func() (func() error, error) {
			return func() error { calls++; return nil }, nil
		},
	}}, Options{Reps: 5, Warmup: 2})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 8 {
		t.Errorf("op ran %d times, want 5 timed + 2 warmup + 1 alloc", calls)
	}
	if rep.Schema != Schema || rep.Reps != 5 || rep.Warmup != 2 || rep.GOMAXPROCS < 1 {
		t.Errorf("report metadata wrong: %+v", rep)
	}
	res := rep.Scenarios[0]
	if res.MinNs > res.MedianNs || res.MedianNs > res.P95Ns {
		t.Errorf("statistics out of order: min %d median %d p95 %d", res.MinNs, res.MedianNs, res.P95Ns)
	}

	boom := errors.New("boom")
	if _, err := Run([]Scenario{{Name: "bad-setup", Setup: func() (func() error, error) { return nil, boom }}}, Options{Reps: 1}); !errors.Is(err, boom) {
		t.Errorf("setup error not propagated: %v", err)
	}
	if _, err := Run([]Scenario{{Name: "bad-op", Setup: func() (func() error, error) {
		return func() error { return boom }, nil
	}}}, Options{Reps: 1}); !errors.Is(err, boom) || !strings.Contains(err.Error(), "bad-op") {
		t.Errorf("op error lacks scenario context: %v", err)
	}
}

func TestStatisticsHelpers(t *testing.T) {
	if m := median([]int64{1, 2, 3}); m != 2 {
		t.Errorf("odd median = %d", m)
	}
	if m := median([]int64{1, 2, 3, 10}); m != 2 {
		t.Errorf("even median = %d, want 2", m)
	}
	if p := percentile([]int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.95); p != 10 {
		t.Errorf("p95 of 1..10 = %d, want 10", p)
	}
	if p := percentile([]int64{7}, 0.95); p != 7 {
		t.Errorf("p95 of singleton = %d", p)
	}
}

func TestSelect(t *testing.T) {
	all, err := Select("all")
	if err != nil || len(all) != len(AllScenarios()) {
		t.Fatalf("Select(all): %d scenarios, err %v", len(all), err)
	}
	quick, err := Select("quick")
	if err != nil {
		t.Fatal(err)
	}
	if len(quick) == 0 || len(quick) >= len(all) {
		t.Errorf("quick set has %d scenarios, want a strict non-empty subset of %d", len(quick), len(all))
	}
	named, err := Select("gram/w4, wl-features/h2/r32")
	if err != nil || len(named) != 2 || named[0].Name != "gram/w4" {
		t.Fatalf("explicit selection failed: %v, %v", named, err)
	}
	if _, err := Select("no-such-scenario"); err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Errorf("unknown scenario accepted: %v", err)
	}
	if _, err := Select("gram/w4,gram/w4"); err == nil {
		t.Error("duplicate scenario accepted")
	}
}

// TestScenarioSetupsRun executes one timed rep of the quick set —
// end-to-end coverage that scenario wiring (simulator, kernel,
// figures) actually works.
func TestScenarioSetupsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario execution in -short mode")
	}
	quick, err := Select("quick")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(quick, Options{Reps: 1, Warmup: 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range rep.Scenarios {
		if res.MinNs <= 0 {
			t.Errorf("%s: non-positive timing %d", res.Name, res.MinNs)
		}
	}
}
