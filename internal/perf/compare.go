package perf

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Stat selects which per-scenario statistic the regression gate
// compares. Median is the human-facing default; Min approximates the
// noise floor and is far more stable on loaded, shared machines (noise
// only ever adds time, so the minimum converges from above), which is
// why CI gates on it — see docs/benchmarking.md.
type Stat string

const (
	StatMedian Stat = "median"
	StatMin    Stat = "min"
)

// ParseStat validates a user-supplied statistic name.
func ParseStat(s string) (Stat, error) {
	switch Stat(s) {
	case StatMedian, StatMin:
		return Stat(s), nil
	}
	return "", fmt.Errorf("perf: unknown gate statistic %q (want %q or %q)", s, StatMedian, StatMin)
}

func (s Stat) of(r Result) int64 {
	if s == StatMin {
		return r.MinNs
	}
	return r.MedianNs
}

// allocSlack is the absolute allocs/op increase tolerated before the
// alloc gate can trip. Timing noise motivates a relative threshold, but
// allocation counts are near-deterministic and tiny for the leanest
// scenarios — a lazily-initialized sync.Pool shard or a one-off map
// growth can add a handful of allocations and would exceed any purely
// relative threshold on a 10-allocs/op scenario. Requiring the increase
// to clear both the relative threshold and this absolute slack keeps the
// gate meaningful on big counts and non-flaky on small ones.
const allocSlack = 16

// Delta is the comparison of one scenario across two reports.
type Delta struct {
	Name string
	// BaselineNs and CurrentNs hold the gated statistic (median or min,
	// per the Stat passed to CompareBy).
	BaselineNs int64
	CurrentNs  int64
	// Ratio is CurrentNs/BaselineNs (0 when it cannot be computed).
	Ratio float64
	// BaselineAllocs and CurrentAllocs hold the scenarios' allocs/op.
	BaselineAllocs int64
	CurrentAllocs  int64
	// AllocRatio is CurrentAllocs/BaselineAllocs (0 when it cannot be
	// computed).
	AllocRatio float64
	// Regressed marks a gate failure on the timed statistic: the current
	// value exceeds the baseline by strictly more than the threshold, or
	// the scenario vanished from the current report (a disappearing
	// scenario must not be able to dodge the gate).
	Regressed bool
	// AllocRegressed marks a gate failure on allocs/op: the current
	// count exceeds the baseline by more than the relative threshold AND
	// by more than allocSlack absolute allocations.
	AllocRegressed bool
	// BaselineBytes and CurrentBytes hold the scenarios' measured output
	// sizes (0 when the scenario does not measure one).
	BaselineBytes int64
	CurrentBytes  int64
	// BytesRatio is CurrentBytes/BaselineBytes (0 when it cannot be
	// computed).
	BytesRatio float64
	// BytesRegressed marks a gate failure on output size: both sides
	// measured a size and the current one grew past the threshold.
	// Output bytes are deterministic (no timing noise), so no absolute
	// slack applies.
	BytesRegressed bool
	// Note explains non-numeric outcomes: "missing in current report",
	// "no baseline (new scenario)", "zero baseline median".
	Note string
}

// Compare diffs current against baseline scenario by scenario on the
// median statistic; see CompareBy.
func Compare(baseline, current *Report, threshold float64) ([]Delta, error) {
	return CompareBy(baseline, current, threshold, StatMedian)
}

// CompareBy diffs current against baseline scenario by scenario.
// threshold is the allowed relative increase of the gated statistic,
// e.g. 0.25 allows up to (and including) a 25% slowdown. Scenarios only
// present in current are reported but never regress — adding a scenario
// must not fail the gate; scenarios only present in baseline do regress.
// A zero baseline value cannot anchor a ratio and never regresses.
//
// The same threshold also gates allocs/op: a scenario whose allocation
// count grows by more than the threshold and by more than allocSlack
// absolute allocations is flagged AllocRegressed. Allocation regressions
// are invisible to wall-clock statistics at small scale but compound
// into GC pressure at large scale, so the gate catches them directly.
//
// Scenarios that measure an output size (Result.OutputBytes) are gated
// on it too: when both sides recorded a size and the current one grew
// by more than the threshold, the delta is flagged BytesRegressed. This
// keeps a codec change honest — trading archive size for encode speed
// passes the wall-clock gate but not this one. A side with no
// measurement (old baseline, or a wall-clock-only scenario) leaves the
// size gate inert.
func CompareBy(baseline, current *Report, threshold float64, stat Stat) ([]Delta, error) {
	if threshold < 0 {
		return nil, fmt.Errorf("perf: negative regression threshold %v", threshold)
	}
	if _, err := ParseStat(string(stat)); err != nil {
		return nil, err
	}
	if baseline.Schema != Schema || current.Schema != Schema {
		return nil, fmt.Errorf("perf: schema mismatch: baseline %q, current %q, want %q",
			baseline.Schema, current.Schema, Schema)
	}
	cur := make(map[string]Result, len(current.Scenarios))
	for _, r := range current.Scenarios {
		cur[r.Name] = r
	}
	deltas := make([]Delta, 0, len(baseline.Scenarios)+len(current.Scenarios))
	seen := make(map[string]bool, len(baseline.Scenarios))
	for _, base := range baseline.Scenarios {
		seen[base.Name] = true
		d := Delta{Name: base.Name, BaselineNs: stat.of(base), BaselineAllocs: base.AllocsPerOp}
		now, ok := cur[base.Name]
		switch {
		case !ok:
			d.Regressed = true
			d.Note = "missing in current report"
		case d.BaselineNs == 0:
			d.CurrentNs = stat.of(now)
			d.Note = "zero baseline " + string(stat)
		default:
			d.CurrentNs = stat.of(now)
			d.Ratio = float64(d.CurrentNs) / float64(d.BaselineNs)
			d.Regressed = d.Ratio > 1+threshold
		}
		if ok {
			d.CurrentAllocs = now.AllocsPerOp
			if d.BaselineAllocs > 0 {
				d.AllocRatio = float64(d.CurrentAllocs) / float64(d.BaselineAllocs)
			}
			grown := d.CurrentAllocs - d.BaselineAllocs
			d.AllocRegressed = grown > allocSlack &&
				float64(d.CurrentAllocs) > float64(d.BaselineAllocs)*(1+threshold)
			d.BaselineBytes, d.CurrentBytes = base.OutputBytes, now.OutputBytes
			if d.BaselineBytes > 0 && d.CurrentBytes > 0 {
				d.BytesRatio = float64(d.CurrentBytes) / float64(d.BaselineBytes)
				d.BytesRegressed = d.BytesRatio > 1+threshold
			}
		}
		deltas = append(deltas, d)
	}
	for _, now := range current.Scenarios {
		if !seen[now.Name] {
			deltas = append(deltas, Delta{
				Name: now.Name, CurrentNs: stat.of(now), CurrentAllocs: now.AllocsPerOp,
				Note: "no baseline (new scenario)",
			})
		}
	}
	return deltas, nil
}

// Regressions filters the deltas that fail the gate, on the timed
// statistic, allocs/op, or output size.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regressed || d.AllocRegressed || d.BytesRegressed {
			out = append(out, d)
		}
	}
	return out
}

// WriteDeltas renders a human-readable comparison table.
func WriteDeltas(w io.Writer, deltas []Delta) error {
	for _, d := range deltas {
		var failed []string
		if d.Regressed {
			failed = append(failed, "time")
		}
		if d.AllocRegressed {
			failed = append(failed, "allocs")
		}
		if d.BytesRegressed {
			failed = append(failed, "bytes")
		}
		status := "ok"
		if len(failed) > 0 {
			status = "REGRESSED " + strings.Join(failed, "+")
		}
		line := fmt.Sprintf("%-24s %12s -> %12s", d.Name,
			time.Duration(d.BaselineNs), time.Duration(d.CurrentNs))
		if d.Ratio != 0 {
			line += fmt.Sprintf("  %+6.1f%%", (d.Ratio-1)*100)
		}
		line += fmt.Sprintf("  allocs %d -> %d", d.BaselineAllocs, d.CurrentAllocs)
		if d.AllocRatio != 0 {
			line += fmt.Sprintf(" (%+.1f%%)", (d.AllocRatio-1)*100)
		}
		if d.BytesRatio != 0 {
			line += fmt.Sprintf("  bytes %d -> %d (%+.1f%%)", d.BaselineBytes, d.CurrentBytes, (d.BytesRatio-1)*100)
		}
		if d.Note != "" {
			line += "  (" + d.Note + ")"
		}
		if _, err := fmt.Fprintf(w, "%s  [%s]\n", line, status); err != nil {
			return err
		}
	}
	return nil
}
