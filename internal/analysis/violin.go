package analysis

import "math"

// Violin is the data behind one violin-plot body: a Gaussian
// kernel-density estimate of a sample, evaluated on a regular grid,
// together with the sample's summary. The paper's Figures 5–7 are
// violins of kernel-distance samples.
type Violin struct {
	Summary Summary
	// Grid holds the evaluation points, ascending.
	Grid []float64
	// Density holds the KDE value at each grid point; it integrates to
	// ~1 over the grid by the trapezoid rule.
	Density []float64
	// Bandwidth is the KDE bandwidth used (Silverman's rule).
	Bandwidth float64
}

// NewViolin estimates the density of sample on gridN points spanning
// the sample range extended by three bandwidths on each side (so the
// Gaussian tails are captured and the density integrates to ~1). A
// degenerate sample (all values equal, or fewer than 2 points) yields a
// single-spike violin. gridN < 2 is raised to 2.
func NewViolin(sample []float64, gridN int) *Violin {
	if gridN < 2 {
		gridN = 2
	}
	v := &Violin{Summary: Summarize(sample)}
	if v.Summary.N == 0 {
		return v
	}
	// Silverman's rule of thumb; fall back to a nominal width for
	// zero-variance samples so the spike has nonzero support.
	h := 1.06 * v.Summary.StdDev * math.Pow(float64(v.Summary.N), -1.0/5)
	if h <= 0 {
		h = math.Max(math.Abs(v.Summary.Mean)*0.01, 1e-9)
	}
	v.Bandwidth = h

	lo, hi := v.Summary.Min-3*h, v.Summary.Max+3*h
	v.Grid = make([]float64, gridN)
	v.Density = make([]float64, gridN)
	step := (hi - lo) / float64(gridN-1)
	norm := 1 / (float64(v.Summary.N) * h * math.Sqrt(2*math.Pi))
	for i := range v.Grid {
		x := lo + float64(i)*step
		v.Grid[i] = x
		d := 0.0
		for _, s := range sample {
			z := (x - s) / h
			d += math.Exp(-0.5 * z * z)
		}
		v.Density[i] = d * norm
	}
	return v
}

// MaxDensity returns the peak density value (0 for an empty violin).
func (v *Violin) MaxDensity() float64 {
	max := 0.0
	for _, d := range v.Density {
		if d > max {
			max = d
		}
	}
	return max
}

// Integral returns the trapezoid-rule integral of the density over the
// grid; for a well-formed violin it is close to 1.
func (v *Violin) Integral() float64 {
	if len(v.Grid) < 2 {
		return 0
	}
	sum := 0.0
	for i := 1; i < len(v.Grid); i++ {
		sum += (v.Density[i] + v.Density[i-1]) / 2 * (v.Grid[i] - v.Grid[i-1])
	}
	return sum
}
