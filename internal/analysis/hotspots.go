package analysis

import (
	"fmt"

	"github.com/anacin-go/anacinx/internal/trace"
)

// Rank hotspots: a coarser localization than callstack ranking. Before
// asking "which call-path?", a developer asks "which process?": the
// hotspot score of a rank is the mean fraction of its event stream that
// differs between two runs, averaged over all run pairs. Ranks hosting
// the wildcard receives score high; pure senders score near zero.

// RankHotspot is one rank's divergence score.
type RankHotspot struct {
	Rank int
	// Score is the mean fraction (0..1) of the rank's events that
	// differ across run pairs.
	Score float64
	// Events is the rank's (first run's) event-stream length.
	Events int
}

// RankHotspots computes per-rank divergence scores over a sample of
// runs (>= 2 traces of one workload). The result is indexed by rank.
func RankHotspots(traces []*trace.Trace) ([]RankHotspot, error) {
	if len(traces) < 2 {
		return nil, fmt.Errorf("analysis: rank hotspots need >= 2 runs, got %d", len(traces))
	}
	procs := traces[0].Procs()
	sums := make([]float64, procs)
	pairs := 0
	for i := 0; i < len(traces); i++ {
		for j := i + 1; j < len(traces); j++ {
			counts, err := trace.DivergenceCounts(traces[i], traces[j])
			if err != nil {
				return nil, err
			}
			for rank, c := range counts {
				// Normalize by the longer stream so the fraction stays
				// in [0,1] even with length mismatches.
				la, lb := len(traces[i].Events[rank]), len(traces[j].Events[rank])
				denom := la
				if lb > denom {
					denom = lb
				}
				if denom > 0 {
					sums[rank] += float64(c) / float64(denom)
				}
			}
			pairs++
		}
	}
	out := make([]RankHotspot, procs)
	for rank := range out {
		out[rank] = RankHotspot{
			Rank:   rank,
			Score:  sums[rank] / float64(pairs),
			Events: len(traces[0].Events[rank]),
		}
	}
	return out, nil
}
