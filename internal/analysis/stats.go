// Package analysis turns kernel-distance samples into the quantities
// the paper's figures plot: distribution summaries and violin densities
// (Figs. 5–7), per-slice non-determinism profiles over logical time,
// and ranked callstack frequencies identifying root sources of
// non-determinism (Fig. 8).
package analysis

import (
	"fmt"
	"math"
	"sort"
)

// Summary is a five-number-plus description of a sample.
type Summary struct {
	N      int
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
	Mean   float64
	StdDev float64
}

// Summarize computes the summary of xs. It returns the zero Summary for
// an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum, sumsq float64
	for _, x := range sorted {
		sum += x
		sumsq += x * x
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumsq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Q1:     Quantile(sorted, 0.25),
		Median: Quantile(sorted, 0.5),
		Q3:     Quantile(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
		Mean:   mean,
		StdDev: math.Sqrt(variance),
	}
}

// Quantile returns the q-th quantile (0 <= q <= 1) of an
// ascending-sorted sample, with linear interpolation between order
// statistics (type-7, the numpy/R default). It panics on an empty
// sample or q outside [0,1].
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("analysis: Quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("analysis: quantile %v outside [0,1]", q))
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.4g q1=%.4g med=%.4g q3=%.4g max=%.4g mean=%.4g sd=%.4g",
		s.N, s.Min, s.Q1, s.Median, s.Q3, s.Max, s.Mean, s.StdDev)
}
