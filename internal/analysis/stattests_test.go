package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/anacin-go/anacinx/internal/vtime"
)

func TestMannWhitneyValidation(t *testing.T) {
	if _, err := MannWhitney(nil, []float64{1}); err == nil {
		t.Error("empty first sample accepted")
	}
	if _, err := MannWhitney([]float64{1}, nil); err == nil {
		t.Error("empty second sample accepted")
	}
}

func TestMannWhitneyClearShift(t *testing.T) {
	// Two well-separated samples: p must be tiny and the common
	// language effect size near 1.
	var a, b []float64
	for i := 0; i < 20; i++ {
		a = append(a, 10+float64(i)*0.1)
		b = append(b, 1+float64(i)*0.1)
	}
	res, err := MannWhitney(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-6 {
		t.Errorf("p = %v for fully separated samples", res.P)
	}
	if res.CommonLanguage != 1 {
		t.Errorf("common language = %v, want 1", res.CommonLanguage)
	}
	if res.Z <= 0 {
		t.Errorf("z = %v, want positive (a > b)", res.Z)
	}
}

func TestMannWhitneyNoShift(t *testing.T) {
	// Identical samples: no evidence.
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	res, err := MannWhitney(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.9 {
		t.Errorf("p = %v for identical samples, want ~1", res.P)
	}
	if math.Abs(res.CommonLanguage-0.5) > 1e-9 {
		t.Errorf("common language = %v, want 0.5", res.CommonLanguage)
	}
}

func TestMannWhitneyAllTied(t *testing.T) {
	a := []float64{3, 3, 3}
	b := []float64{3, 3, 3, 3}
	res, err := MannWhitney(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 || res.Z != 0 {
		t.Errorf("all-tied: %+v", res)
	}
}

func TestMannWhitneyKnownValue(t *testing.T) {
	// Hand-checkable case: a = {1,2}, b = {3,4,5}. All b exceed all a,
	// so U1 = 0 and the effect size is 0.
	res, err := MannWhitney([]float64{1, 2}, []float64{3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.U != 0 || res.CommonLanguage != 0 {
		t.Errorf("U = %v, CL = %v, want 0, 0", res.U, res.CommonLanguage)
	}
}

func TestMannWhitneySymmetry(t *testing.T) {
	a := []float64{1, 5, 3, 7, 2, 8}
	b := []float64{4, 6, 2, 9, 5}
	r1, err := MannWhitney(a, b)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := MannWhitney(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.P-r2.P) > 1e-12 {
		t.Errorf("p asymmetric: %v vs %v", r1.P, r2.P)
	}
	if math.Abs((r1.CommonLanguage+r2.CommonLanguage)-1) > 1e-12 {
		t.Errorf("effect sizes don't complement: %v + %v", r1.CommonLanguage, r2.CommonLanguage)
	}
}

// Property: p-values stay in [0,1] and U in [0, n1*n2] for random
// samples.
func TestQuickMannWhitneyRanges(t *testing.T) {
	f := func(seed int64, n1Raw, n2Raw uint8) bool {
		rng := vtime.NewRNG(seed)
		n1, n2 := int(n1Raw)%20+1, int(n2Raw)%20+1
		a := make([]float64, n1)
		b := make([]float64, n2)
		for i := range a {
			a[i] = rng.Float64() * 10
		}
		for i := range b {
			b[i] = rng.Float64() * 10
		}
		res, err := MannWhitney(a, b)
		if err != nil {
			return false
		}
		return res.P >= 0 && res.P <= 1 && res.U >= 0 && res.U <= float64(n1*n2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKendallValidation(t *testing.T) {
	if _, err := Kendall([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("unequal lengths accepted")
	}
	if _, err := Kendall([]float64{1}, []float64{1}); err == nil {
		t.Error("single pair accepted")
	}
}

func TestKendallPerfectTrends(t *testing.T) {
	x := []float64{0, 10, 20, 30, 40, 50}
	up := []float64{1, 2, 3, 4, 5, 6}
	down := []float64{6, 5, 4, 3, 2, 1}
	res, err := Kendall(x, up)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tau != 1 {
		t.Errorf("tau = %v for perfect ascent", res.Tau)
	}
	if res.P > 0.01 {
		t.Errorf("p = %v for perfect ascent of 6 points", res.P)
	}
	res, err = Kendall(x, down)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tau != -1 {
		t.Errorf("tau = %v for perfect descent", res.Tau)
	}
}

func TestKendallNoTrend(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 5, 5, 5} // constant: all y-pairs tied
	res, err := Kendall(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tau != 0 || res.P != 1 {
		t.Errorf("constant y: %+v", res)
	}
}

func TestKendallWithTies(t *testing.T) {
	// A rising-then-flat series, like a saturating Fig. 7 sweep: tau
	// must be positive.
	x := []float64{0, 10, 20, 30, 40, 50, 60}
	y := []float64{0, 5, 9, 12, 12, 12, 12}
	res, err := Kendall(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tau <= 0.5 {
		t.Errorf("tau = %v for rising-saturating series", res.Tau)
	}
	if res.Concordant == 0 || res.Discordant != 0 {
		t.Errorf("pair counts: %d concordant, %d discordant", res.Concordant, res.Discordant)
	}
}

// Property: tau stays in [-1, 1] and flipping y negates it.
func TestQuickKendallAntisymmetric(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := vtime.NewRNG(seed)
		n := int(nRaw)%15 + 2
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(i)
			y[i] = rng.Float64()
		}
		r1, err := Kendall(x, y)
		if err != nil {
			return false
		}
		neg := make([]float64, n)
		for i, v := range y {
			neg[i] = -v
		}
		r2, err := Kendall(x, neg)
		if err != nil {
			return false
		}
		return r1.Tau >= -1 && r1.Tau <= 1 && math.Abs(r1.Tau+r2.Tau) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNormalSF(t *testing.T) {
	// Known values: SF(0)=0.5, SF(1.96)≈0.025.
	if got := normalSF(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("SF(0) = %v", got)
	}
	if got := normalSF(1.959964); math.Abs(got-0.025) > 1e-4 {
		t.Errorf("SF(1.96) = %v", got)
	}
}
