package analysis

import (
	"testing"

	"github.com/anacin-go/anacinx/internal/sim"
	"github.com/anacin-go/anacinx/internal/trace"
)

// raceTraces runs N message-race executions (wildcards only on rank 0).
func raceTraces(t *testing.T, procs, runs int, nd float64) []*trace.Trace {
	t.Helper()
	out := make([]*trace.Trace, runs)
	for i := range out {
		cfg := sim.DefaultConfig(procs, int64(100+i))
		cfg.NDPercent = nd
		tr, _, err := sim.Run(cfg, trace.Meta{}, func(r *sim.Rank) {
			if r.Rank() == 0 {
				for j := 0; j < 2*(procs-1); j++ {
					r.Recv(sim.AnySource, sim.AnyTag)
				}
			} else {
				r.SendSize(0, 0, 1)
				r.SendSize(0, 1, 1)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = tr
	}
	return out
}

func TestRankHotspotsValidation(t *testing.T) {
	traces := raceTraces(t, 3, 1, 0)
	if _, err := RankHotspots(traces); err == nil {
		t.Error("single trace accepted")
	}
}

func TestRankHotspotsLocalizeTheReceiver(t *testing.T) {
	traces := raceTraces(t, 6, 5, 100)
	hotspots, err := RankHotspots(traces)
	if err != nil {
		t.Fatal(err)
	}
	if len(hotspots) != 6 {
		t.Fatalf("hotspots for %d ranks", len(hotspots))
	}
	// Rank 0 hosts every wildcard receive: it must dominate, and the
	// senders (whose streams are identical across runs) must score 0.
	if hotspots[0].Score <= 0 {
		t.Errorf("receiver rank scored %v", hotspots[0].Score)
	}
	for _, h := range hotspots[1:] {
		if h.Score != 0 {
			t.Errorf("sender rank %d scored %v, want 0", h.Rank, h.Score)
		}
		if h.Score > hotspots[0].Score {
			t.Errorf("sender rank %d outscored the receiver", h.Rank)
		}
	}
	// Scores stay in [0,1].
	for _, h := range hotspots {
		if h.Score < 0 || h.Score > 1 {
			t.Errorf("rank %d score %v out of range", h.Rank, h.Score)
		}
	}
}

func TestRankHotspotsZeroAtZeroND(t *testing.T) {
	traces := raceTraces(t, 4, 4, 0)
	hotspots, err := RankHotspots(traces)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hotspots {
		if h.Score != 0 {
			t.Errorf("rank %d score %v at 0%% ND", h.Rank, h.Score)
		}
	}
}
