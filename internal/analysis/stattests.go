package analysis

import (
	"fmt"
	"math"
	"sort"
)

// Statistical tests backing the course module's claims. The paper
// collects "20 data points ... to improve the statistical significance
// of the results" but reports no tests; these make the comparisons
// quantitative: Mann-Whitney U for two-sample location shifts (Figs. 5
// and 6: does the larger configuration really measure more
// non-determinism?) and Kendall's tau for monotone trends (Fig. 7:
// does measured ND really rise with injected ND?). Both are
// distribution-free, which matters because kernel-distance samples are
// skewed and discrete.

// MannWhitneyResult reports a two-sided Mann-Whitney U test.
type MannWhitneyResult struct {
	// U is the test statistic of the first sample.
	U float64
	// Z is the normal approximation z-score (tie-corrected).
	Z float64
	// P is the two-sided p-value under the normal approximation.
	P float64
	// CommonLanguage is U/(n1*n2): the probability that a random
	// observation from the first sample exceeds one from the second
	// (0.5 = no effect).
	CommonLanguage float64
}

// MannWhitney tests whether two independent samples differ in location.
// The normal approximation is used, which is accurate for n1, n2 >= 8
// — amply satisfied by the paper's 20-run samples (190 pairs). It
// returns an error for empty samples.
func MannWhitney(a, b []float64) (*MannWhitneyResult, error) {
	n1, n2 := len(a), len(b)
	if n1 == 0 || n2 == 0 {
		return nil, fmt.Errorf("analysis: MannWhitney needs two nonempty samples (%d, %d)", n1, n2)
	}
	type obs struct {
		v     float64
		first bool
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range a {
		all = append(all, obs{v, true})
	}
	for _, v := range b {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Midranks with tie correction.
	ranks := make([]float64, len(all))
	tieTerm := 0.0
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}
	r1 := 0.0
	for i, o := range all {
		if o.first {
			r1 += ranks[i]
		}
	}
	u1 := r1 - float64(n1)*float64(n1+1)/2
	mean := float64(n1) * float64(n2) / 2
	nTot := float64(n1 + n2)
	variance := float64(n1) * float64(n2) / 12 * (nTot + 1 - tieTerm/(nTot*(nTot-1)))
	res := &MannWhitneyResult{U: u1, CommonLanguage: u1 / (float64(n1) * float64(n2))}
	if variance <= 0 {
		// All observations tied: no evidence of a shift.
		res.Z, res.P = 0, 1
		return res, nil
	}
	// Continuity correction toward the mean.
	diff := u1 - mean
	switch {
	case diff > 0.5:
		diff -= 0.5
	case diff < -0.5:
		diff += 0.5
	default:
		diff = 0
	}
	res.Z = diff / math.Sqrt(variance)
	res.P = 2 * normalSF(math.Abs(res.Z))
	if res.P > 1 {
		res.P = 1
	}
	return res, nil
}

// KendallResult reports a Kendall rank-correlation test.
type KendallResult struct {
	// Tau is Kendall's tau-b in [-1, 1] (tie-corrected).
	Tau float64
	// Z is the normal approximation z-score.
	Z float64
	// P is the two-sided p-value.
	P float64
	// Concordant and Discordant count the pair classifications.
	Concordant, Discordant int
}

// Kendall computes the tau-b rank correlation between paired samples
// x and y (equal length >= 2). For the Fig. 7 trend, x is the injected
// ND percentage and y the median measured distance.
func Kendall(x, y []float64) (*KendallResult, error) {
	n := len(x)
	if n != len(y) {
		return nil, fmt.Errorf("analysis: Kendall needs paired samples (%d vs %d)", n, len(y))
	}
	if n < 2 {
		return nil, fmt.Errorf("analysis: Kendall needs >= 2 pairs, got %d", n)
	}
	var conc, disc int
	var tiesX, tiesY float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := sign(x[j] - x[i])
			dy := sign(y[j] - y[i])
			switch {
			case dx == 0 && dy == 0:
				tiesX++
				tiesY++
			case dx == 0:
				tiesX++
			case dy == 0:
				tiesY++
			case dx == dy:
				conc++
			default:
				disc++
			}
		}
	}
	n0 := float64(n*(n-1)) / 2
	denom := math.Sqrt((n0 - tiesX) * (n0 - tiesY))
	res := &KendallResult{Concordant: conc, Discordant: disc}
	if denom == 0 {
		res.Tau, res.Z, res.P = 0, 0, 1
		return res, nil
	}
	res.Tau = float64(conc-disc) / denom
	// Normal approximation for the no-tie variance; adequate for the
	// trend-detection use here.
	nf := float64(n)
	variance := (2 * (2*nf + 5)) / (9 * nf * (nf - 1))
	res.Z = res.Tau / math.Sqrt(variance)
	res.P = 2 * normalSF(math.Abs(res.Z))
	if res.P > 1 {
		res.P = 1
	}
	return res, nil
}

func sign(v float64) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// normalSF is the standard normal survival function P(X > z).
func normalSF(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}
