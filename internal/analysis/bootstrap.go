package analysis

import (
	"fmt"
	"sort"

	"github.com/anacin-go/anacinx/internal/vtime"
)

// CI is a bootstrap confidence interval for a sample statistic.
type CI struct {
	// Point is the statistic on the original sample.
	Point float64
	// Lo and Hi bound the central confidence interval.
	Lo, Hi float64
	// Level is the nominal coverage, e.g. 0.95.
	Level float64
}

// String renders the interval as "point [lo, hi]".
func (ci CI) String() string {
	return fmt.Sprintf("%.4g [%.4g, %.4g]", ci.Point, ci.Lo, ci.Hi)
}

// BootstrapMedianCI estimates a percentile-bootstrap confidence
// interval for the sample median. The resampling stream is seeded, so
// results are reproducible — in keeping with everything else in this
// repository. resamples <= 0 selects the default of 2000; level must
// lie in (0, 1).
func BootstrapMedianCI(sample []float64, level float64, resamples int, seed int64) (CI, error) {
	return bootstrapCI(sample, level, resamples, seed, func(sorted []float64) float64 {
		return Quantile(sorted, 0.5)
	})
}

// BootstrapMeanCI is BootstrapMedianCI for the mean.
func BootstrapMeanCI(sample []float64, level float64, resamples int, seed int64) (CI, error) {
	return bootstrapCI(sample, level, resamples, seed, func(sorted []float64) float64 {
		sum := 0.0
		for _, v := range sorted {
			sum += v
		}
		return sum / float64(len(sorted))
	})
}

func bootstrapCI(sample []float64, level float64, resamples int, seed int64, stat func(sorted []float64) float64) (CI, error) {
	if len(sample) == 0 {
		return CI{}, fmt.Errorf("analysis: bootstrap of empty sample")
	}
	if level <= 0 || level >= 1 {
		return CI{}, fmt.Errorf("analysis: bootstrap level %v outside (0,1)", level)
	}
	if resamples <= 0 {
		resamples = 2000
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	ci := CI{Point: stat(sorted), Level: level}

	rng := vtime.NewRNG(seed).Split(0xb007)
	stats := make([]float64, resamples)
	resample := make([]float64, len(sample))
	for b := 0; b < resamples; b++ {
		for i := range resample {
			resample[i] = sample[rng.Intn(len(sample))]
		}
		sort.Float64s(resample)
		stats[b] = stat(resample)
	}
	sort.Float64s(stats)
	alpha := (1 - level) / 2
	ci.Lo = Quantile(stats, alpha)
	ci.Hi = Quantile(stats, 1-alpha)
	return ci, nil
}
