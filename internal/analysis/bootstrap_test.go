package analysis

import (
	"strings"
	"testing"

	"github.com/anacin-go/anacinx/internal/vtime"
)

func TestBootstrapValidation(t *testing.T) {
	if _, err := BootstrapMedianCI(nil, 0.95, 100, 1); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := BootstrapMedianCI([]float64{1, 2}, 0, 100, 1); err == nil {
		t.Error("level 0 accepted")
	}
	if _, err := BootstrapMedianCI([]float64{1, 2}, 1, 100, 1); err == nil {
		t.Error("level 1 accepted")
	}
}

func TestBootstrapMedianContainsPoint(t *testing.T) {
	sample := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9}
	ci, err := BootstrapMedianCI(sample, 0.95, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Lo > ci.Point || ci.Point > ci.Hi {
		t.Errorf("point %v outside [%v, %v]", ci.Point, ci.Lo, ci.Hi)
	}
	if ci.Lo < 1 || ci.Hi > 9 {
		t.Errorf("interval [%v, %v] escapes the sample range", ci.Lo, ci.Hi)
	}
	if !strings.Contains(ci.String(), "[") {
		t.Errorf("String = %q", ci.String())
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	sample := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	a, err := BootstrapMedianCI(sample, 0.9, 300, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BootstrapMedianCI(sample, 0.9, 300, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed gave %v vs %v", a, b)
	}
	c, err := BootstrapMedianCI(sample, 0.9, 300, 43)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seed gave an identical interval (suspicious)")
	}
}

func TestBootstrapConstantSample(t *testing.T) {
	ci, err := BootstrapMeanCI([]float64{5, 5, 5, 5}, 0.95, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Point != 5 || ci.Lo != 5 || ci.Hi != 5 {
		t.Errorf("constant sample CI = %+v", ci)
	}
}

func TestBootstrapCoverageSanity(t *testing.T) {
	// For many normal-ish samples with true median 0, the 95% CI should
	// contain 0 most of the time (allow generous slack: >= 80%).
	rng := vtime.NewRNG(99)
	contains := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		sample := make([]float64, 30)
		for i := range sample {
			sample[i] = rng.NormFloat64()
		}
		ci, err := BootstrapMedianCI(sample, 0.95, 400, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		if ci.Lo <= 0 && 0 <= ci.Hi {
			contains++
		}
	}
	if contains < trials*8/10 {
		t.Errorf("95%% CI contained the true median in only %d/%d trials", contains, trials)
	}
}

func TestBootstrapWiderAtHigherLevel(t *testing.T) {
	sample := []float64{2, 4, 4, 4, 5, 5, 7, 9, 12, 1, 3, 8}
	narrow, err := BootstrapMeanCI(sample, 0.5, 800, 5)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := BootstrapMeanCI(sample, 0.99, 800, 5)
	if err != nil {
		t.Fatal(err)
	}
	if (wide.Hi - wide.Lo) <= (narrow.Hi - narrow.Lo) {
		t.Errorf("99%% interval [%v,%v] not wider than 50%% [%v,%v]",
			wide.Lo, wide.Hi, narrow.Lo, narrow.Hi)
	}
}
