package analysis

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/anacin-go/anacinx/internal/graph"
	"github.com/anacin-go/anacinx/internal/kernel"
)

// Root-source identification, the advanced-level analysis of the course
// module (paper Use Case 3 / Fig. 8): slice every run's event graph
// along logical time, find the slices where runs disagree most (high
// per-slice kernel distance), and rank the callstacks of the receive
// events inside those slices. Call-paths that keep appearing in
// high-non-determinism regions are the likely root sources.

// SliceProfile is the non-determinism profile of a set of runs over
// logical time: for each of `Slices` logical-time windows, the mean
// kernel distance of that window's subgraphs across all run pairs.
type SliceProfile struct {
	KernelName string
	// MeanDistance[s] is the average pairwise kernel distance of slice s.
	MeanDistance []float64
	// MaxDistance[s] is the largest pairwise distance of slice s.
	MaxDistance []float64
}

// NewSliceProfile computes the profile of the given runs' event graphs
// under k, using `slices` logical-time windows. At least two graphs and
// one slice are required.
func NewSliceProfile(k kernel.Kernel, graphs []*graph.Graph, slices int) (*SliceProfile, error) {
	return NewSliceProfileCached(k, graphs, slices, nil)
}

// NewSliceProfileCached is NewSliceProfile with an optional embedding
// cache (nil computes every embedding). A pipeline that has already
// embedded the whole graphs — e.g. for the violin distance sample —
// shares its cache here so the slices=1 coarsening fallback (which
// reconstructs the full graphs) reuses them, and repeated profiles of
// one run set pay for each slice embedding once.
//
// Slice columns are independent, so the per-slice Gram builds fan out
// across the machine's cores with the same work-stealing cursor shape
// as the parallel matrix build; each value lands at a fixed slice
// index, so the profile is identical to the sequential result.
func NewSliceProfileCached(k kernel.Kernel, graphs []*graph.Graph, slices int, cache *kernel.Cache) (*SliceProfile, error) {
	if len(graphs) < 2 {
		return nil, fmt.Errorf("analysis: slice profile needs >= 2 runs, got %d", len(graphs))
	}
	if slices < 1 {
		return nil, fmt.Errorf("analysis: slice count %d < 1", slices)
	}
	// Slice every run once, then build one small Gram matrix per slice
	// index.
	sliced := make([][]*graph.Graph, len(graphs))
	for i, g := range graphs {
		s, err := g.SliceByLamport(slices)
		if err != nil {
			return nil, err
		}
		sliced[i] = s
	}
	p := &SliceProfile{
		KernelName:   k.Name(),
		MeanDistance: make([]float64, slices),
		MaxDistance:  make([]float64, slices),
	}
	profileSlice := func(s int) {
		col := make([]*graph.Graph, len(graphs))
		for i := range graphs {
			col[i] = sliced[i][s]
		}
		// One worker per slice column already saturates the cores, so
		// each Gram build runs single-threaded (nested parallelism
		// would only add scheduling overhead on these small graphs).
		dists := cache.NewMatrixWorkers(k, col, 1).PairwiseDistances()
		sum, max := 0.0, 0.0
		for _, d := range dists {
			sum += d
			if d > max {
				max = d
			}
		}
		p.MeanDistance[s] = sum / float64(len(dists))
		p.MaxDistance[s] = max
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > slices {
		workers = slices
	}
	if workers < 2 {
		for s := 0; s < slices; s++ {
			profileSlice(s)
		}
		return p, nil
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s := int(cursor.Add(1)) - 1
				if s >= slices {
					return
				}
				profileSlice(s)
			}
		}()
	}
	wg.Wait()
	return p, nil
}

// HighSlices returns the indices of slices whose mean distance is at or
// above the q-th quantile of the nonzero profile (e.g. q=0.75 keeps the
// top quartile). If every slice has zero distance — a fully
// deterministic workload — it returns nil.
func (p *SliceProfile) HighSlices(q float64) []int {
	var nonzero []float64
	for _, d := range p.MeanDistance {
		if d > 0 {
			nonzero = append(nonzero, d)
		}
	}
	if len(nonzero) == 0 {
		return nil
	}
	sort.Float64s(nonzero)
	threshold := Quantile(nonzero, q)
	var out []int
	for s, d := range p.MeanDistance {
		if d > 0 && d >= threshold {
			out = append(out, s)
		}
	}
	return out
}

// CallstackFrequency is one bar of the Fig. 8 chart: a call-path and
// how often it appears among receive events inside high-ND slices,
// normalized so the most frequent call-path has frequency 1.
type CallstackFrequency struct {
	Callstack string
	Count     int
	// Frequency is Count normalized by the maximum count.
	Frequency float64
}

// RankCallstacks counts the callstacks of receive events inside the
// given slices of every run and returns them sorted by descending
// frequency (ties broken by callstack string for determinism).
func RankCallstacks(graphs []*graph.Graph, slices int, highSlices []int) ([]CallstackFrequency, error) {
	if slices < 1 {
		return nil, fmt.Errorf("analysis: slice count %d < 1", slices)
	}
	want := make(map[int]bool, len(highSlices))
	for _, s := range highSlices {
		if s < 0 || s >= slices {
			return nil, fmt.Errorf("analysis: high slice %d out of range [0,%d)", s, slices)
		}
		want[s] = true
	}
	counts := make(map[string]int)
	for _, g := range graphs {
		sl, err := g.SliceByLamport(slices)
		if err != nil {
			return nil, err
		}
		for s := range want {
			for _, key := range sl[s].SliceCallstacks() {
				counts[key]++
			}
		}
	}
	out := make([]CallstackFrequency, 0, len(counts))
	maxCount := 0
	for key, c := range counts {
		out = append(out, CallstackFrequency{Callstack: key, Count: c})
		if c > maxCount {
			maxCount = c
		}
	}
	for i := range out {
		out[i].Frequency = float64(out[i].Count) / float64(maxCount)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Callstack < out[j].Callstack
	})
	return out, nil
}

// IdentifyRootSources is the end-to-end Fig. 8 analysis: profile the
// runs, select the top-quartile slices, and rank callstacks within
// them. It returns the profile alongside the ranking so callers can
// show both.
//
// Slicing trades localization precision against sensitivity: when the
// events of one race spread across slices (e.g. senders idle at low
// logical time while the receiver drains at high logical time), the
// send→recv edges cross slice boundaries and every slice looks locally
// identical even though the whole graphs differ. When that happens —
// a positive whole-graph distance but an all-zero profile — the
// function coarsens the slicing (halving the count) until some slice
// registers the divergence; at slices=1 the "slice" is the whole graph
// and the ranking degrades gracefully to "all wildcard receives".
func IdentifyRootSources(k kernel.Kernel, graphs []*graph.Graph, slices int) (*SliceProfile, []CallstackFrequency, error) {
	return IdentifyRootSourcesCached(k, graphs, slices, nil)
}

// IdentifyRootSourcesCached is IdentifyRootSources with an optional
// embedding cache shared with the rest of the pipeline (see
// NewSliceProfileCached); core.RunSet.RootSources threads the run
// set's cache through here.
func IdentifyRootSourcesCached(k kernel.Kernel, graphs []*graph.Graph, slices int, cache *kernel.Cache) (*SliceProfile, []CallstackFrequency, error) {
	for {
		profile, err := NewSliceProfileCached(k, graphs, slices, cache)
		if err != nil {
			return nil, nil, err
		}
		high := profile.HighSlices(0.75)
		if len(high) == 0 && slices > 1 {
			slices /= 2
			continue
		}
		ranked, err := RankCallstacks(graphs, slices, high)
		if err != nil {
			return nil, nil, err
		}
		return profile, ranked, nil
	}
}
