package analysis

import (
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"github.com/anacin-go/anacinx/internal/graph"
	"github.com/anacin-go/anacinx/internal/kernel"
	"github.com/anacin-go/anacinx/internal/patterns"
	"github.com/anacin-go/anacinx/internal/sim"
	"github.com/anacin-go/anacinx/internal/trace"
)

func TestSummarizeKnownSample(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Min != 2 || s.Max != 9 {
		t.Errorf("extremes wrong: %+v", s)
	}
	if s.Mean != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	if s.StdDev != 2 {
		t.Errorf("StdDev = %v, want 2", s.StdDev)
	}
	if s.Median != 4.5 {
		t.Errorf("Median = %v, want 4.5", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.N != 1 || s.Min != 3.5 || s.Max != 3.5 || s.Median != 3.5 || s.Q1 != 3.5 || s.Q3 != 3.5 || s.StdDev != 0 {
		t.Errorf("singleton summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Summarize reordered its input")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	str := s.String()
	for _, want := range []string{"n=3", "min=1", "max=3", "med=2"} {
		if !strings.Contains(str, want) {
			t.Errorf("summary string %q missing %q", str, want)
		}
	}
}

func TestViolinIntegratesToOne(t *testing.T) {
	sample := []float64{1, 1.5, 2, 2.2, 2.4, 3, 3.1, 4, 5, 5.5}
	v := NewViolin(sample, 256)
	if got := v.Integral(); math.Abs(got-1) > 0.02 {
		t.Errorf("density integral = %v, want ~1", got)
	}
	if v.MaxDensity() <= 0 {
		t.Error("zero peak density")
	}
	if len(v.Grid) != 256 || len(v.Density) != 256 {
		t.Errorf("grid sizes %d/%d", len(v.Grid), len(v.Density))
	}
	for i := 1; i < len(v.Grid); i++ {
		if v.Grid[i] <= v.Grid[i-1] {
			t.Fatal("grid not ascending")
		}
	}
}

func TestViolinPeakNearMode(t *testing.T) {
	// Bimodal sample: peaks near 0 and 10; density at 5 must be lower
	// than at the modes.
	var sample []float64
	for i := 0; i < 50; i++ {
		sample = append(sample, float64(i%5)*0.1)    // cluster near 0
		sample = append(sample, 10+float64(i%5)*0.1) // cluster near 10
	}
	v := NewViolin(sample, 512)
	at := func(x float64) float64 {
		best, bestDist := 0.0, math.MaxFloat64
		for i, g := range v.Grid {
			if d := math.Abs(g - x); d < bestDist {
				bestDist, best = d, v.Density[i]
			}
		}
		return best
	}
	if at(5) >= at(0.2) || at(5) >= at(10.2) {
		t.Errorf("valley density %v not below peaks %v/%v", at(5), at(0.2), at(10.2))
	}
}

func TestViolinDegenerateSamples(t *testing.T) {
	if v := NewViolin(nil, 100); v.Summary.N != 0 || len(v.Grid) != 0 {
		t.Errorf("empty violin = %+v", v)
	}
	v := NewViolin([]float64{2, 2, 2, 2}, 100)
	if v.MaxDensity() <= 0 {
		t.Error("constant sample has zero density spike")
	}
	if v.Bandwidth <= 0 {
		t.Error("degenerate bandwidth not defaulted")
	}
	v = NewViolin([]float64{0, 0, 0}, 1) // gridN raised to 2
	if len(v.Grid) != 2 {
		t.Errorf("gridN floor: %d", len(v.Grid))
	}
}

// runGraphs produces event graphs of `runs` executions of a pattern.
func runGraphs(t testing.TB, patName string, procs, iters, runs int, nd float64) []*graph.Graph {
	t.Helper()
	pat, err := patterns.ByName(patName)
	if err != nil {
		t.Fatal(err)
	}
	params := patterns.DefaultParams(procs)
	params.Iterations = iters
	prog, err := pat.Program(params)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*graph.Graph, runs)
	for i := 0; i < runs; i++ {
		cfg := sim.DefaultConfig(procs, int64(1000+i))
		cfg.NDPercent = nd
		tr, _, err := sim.Run(cfg, trace.Meta{Pattern: patName, Iterations: iters}, sim.Adapt(prog))
		if err != nil {
			t.Fatal(err)
		}
		g, err := graph.FromTrace(tr)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = g
	}
	return out
}

func TestSliceProfileValidation(t *testing.T) {
	graphs := runGraphs(t, "message_race", 4, 2, 2, 0)
	if _, err := NewSliceProfile(kernel.NewWL(2), graphs[:1], 4); err == nil {
		t.Error("single run accepted")
	}
	if _, err := NewSliceProfile(kernel.NewWL(2), graphs, 0); err == nil {
		t.Error("zero slices accepted")
	}
}

func TestSliceProfileZeroAtZeroND(t *testing.T) {
	graphs := runGraphs(t, "amg2013", 6, 2, 4, 0)
	p, err := NewSliceProfile(kernel.NewWL(2), graphs, 6)
	if err != nil {
		t.Fatal(err)
	}
	for s, d := range p.MeanDistance {
		if d != 0 {
			t.Errorf("slice %d mean distance %v at 0%% ND", s, d)
		}
	}
	if got := p.HighSlices(0.75); got != nil {
		t.Errorf("HighSlices on a zero profile = %v, want nil", got)
	}
}

func TestSliceProfilePositiveAtFullND(t *testing.T) {
	graphs := runGraphs(t, "amg2013", 8, 3, 6, 100)
	p, err := NewSliceProfile(kernel.NewWL(2), graphs, 6)
	if err != nil {
		t.Fatal(err)
	}
	any := false
	for s, d := range p.MeanDistance {
		if d < 0 {
			t.Errorf("negative mean distance at slice %d", s)
		}
		if d > 0 {
			any = true
		}
		if p.MaxDistance[s] < p.MeanDistance[s] {
			t.Errorf("slice %d: max %v below mean %v", s, p.MaxDistance[s], d)
		}
	}
	if !any {
		t.Error("no slice shows non-determinism at 100% ND")
	}
	high := p.HighSlices(0.75)
	if len(high) == 0 {
		t.Error("no high slices found")
	}
	for _, s := range high {
		if s < 0 || s >= 6 {
			t.Errorf("high slice %d out of range", s)
		}
	}
}

// TestSliceProfileCachedMatchesUncached pins the cached (and
// parallelized) slice profile float-for-float to the uncached path,
// and checks the cache actually carries the slice embeddings across
// repeated profiles: a second profile of the same runs recomputes
// nothing.
func TestSliceProfileCachedMatchesUncached(t *testing.T) {
	graphs := runGraphs(t, "amg2013", 8, 3, 5, 100)
	k := kernel.NewWL(2)
	want, err := NewSliceProfile(k, graphs, 6)
	if err != nil {
		t.Fatal(err)
	}
	c := kernel.NewCache()
	got, err := NewSliceProfileCached(k, graphs, 6, c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cached profile diverges:\n got %+v\nwant %+v", got, want)
	}
	if c.Len() == 0 {
		t.Fatal("profile populated no cache entries")
	}
	misses := c.Misses()
	again, err := NewSliceProfileCached(k, graphs, 6, c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Fatal("warm cached profile diverges")
	}
	if c.Misses() != misses {
		t.Fatalf("warm profile recomputed embeddings: misses %d -> %d", misses, c.Misses())
	}
}

func TestRankCallstacksFindsWildcardReceives(t *testing.T) {
	// AMG2013, the workload of the paper's Fig. 8: its wildcard-receive
	// call-path (gatherWork) must top the ranking.
	graphs := runGraphs(t, "amg2013", 8, 3, 5, 100)
	profile, ranked, err := IdentifyRootSources(kernel.NewWL(2), graphs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if profile == nil || len(ranked) == 0 {
		t.Fatal("no root sources identified")
	}
	if !strings.Contains(ranked[0].Callstack, "gatherWork") {
		t.Errorf("top callstack %q does not name gatherWork", ranked[0].Callstack)
	}
	if ranked[0].Frequency != 1 {
		t.Errorf("top frequency = %v, want 1 (normalized)", ranked[0].Frequency)
	}
	// Frequencies descend and stay in (0, 1].
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Frequency > ranked[i-1].Frequency {
			t.Error("frequencies not descending")
		}
		if ranked[i].Frequency <= 0 || ranked[i].Frequency > 1 {
			t.Errorf("frequency %v out of range", ranked[i].Frequency)
		}
	}
}

func TestIdentifyRootSourcesCoarsensForSkewedRaces(t *testing.T) {
	// In a pure message race the senders finish at low logical time
	// while rank 0 drains at high logical time, so fine slicing sees
	// nothing; the fallback must coarsen until the divergence registers
	// and still name the racing receive.
	graphs := runGraphs(t, "message_race", 6, 4, 5, 100)
	_, ranked, err := IdentifyRootSources(kernel.NewWL(2), graphs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) == 0 {
		t.Fatal("coarsening fallback found nothing")
	}
	if !strings.Contains(ranked[0].Callstack, "drainRaces") {
		t.Errorf("top callstack %q does not name drainRaces", ranked[0].Callstack)
	}
}

func TestRankCallstacksValidation(t *testing.T) {
	graphs := runGraphs(t, "message_race", 4, 1, 2, 0)
	if _, err := RankCallstacks(graphs, 0, nil); err == nil {
		t.Error("zero slices accepted")
	}
	if _, err := RankCallstacks(graphs, 4, []int{9}); err == nil {
		t.Error("out-of-range slice accepted")
	}
	// No high slices → empty ranking, no error.
	got, err := RankCallstacks(graphs, 4, nil)
	if err != nil || len(got) != 0 {
		t.Errorf("empty selection: %v, %v", got, err)
	}
}

// Property: Summarize orders its quantiles for any sample.
func TestQuickSummaryOrdered(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Quantile is monotone in q.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []float64, qa, qb uint8) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		a, b := float64(qa)/255, float64(qb)/255
		if a > b {
			a, b = b, a
		}
		return Quantile(xs, a) <= Quantile(xs, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkViolin(b *testing.B) {
	sample := make([]float64, 190)
	for i := range sample {
		sample[i] = float64(i%19) * 0.37
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = NewViolin(sample, 256)
	}
}

func BenchmarkIdentifyRootSources(b *testing.B) {
	graphs := runGraphs(b, "amg2013", 8, 2, 5, 100)
	k := kernel.NewWL(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := IdentifyRootSources(k, graphs, 8); err != nil {
			b.Fatal(err)
		}
	}
}
