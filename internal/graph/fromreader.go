package graph

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"github.com/anacin-go/anacinx/internal/trace"
	"github.com/anacin-go/anacinx/internal/vtime"
)

// Streaming trace→graph construction. A v2 trace file carries per-rank
// event/send/receive counts and the maximum send id in its footer, so
// the entire prefix-sum layout of fromTracePar can be fixed before a
// single event is decoded. One decode pass per rank then fills nodes,
// program edges, and the send join table directly from the cursor —
// the full *trace.Trace is never materialized. The result is
// bit-identical to FromTrace on the equivalent trace (a property the
// tests pin).

// FromReader builds the event graph of a v2 binary trace through its
// footer index, without materializing a *trace.Trace. The graph is
// identical to FromTrace(reader.ToTrace()).
func FromReader(r *trace.Reader) (*Graph, error) {
	return FromReaderWorkers(r, runtime.GOMAXPROCS(0))
}

// FromReaderWorkers is FromReader with an explicit worker bound.
// workers <= 0 means GOMAXPROCS.
func FromReaderWorkers(r *trace.Reader, workers int) (*Graph, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := r.Procs()
	if workers > p {
		workers = p
	}
	if workers < 1 {
		workers = 1
	}

	// Layout straight from the footer: no counting decode.
	nodeOff := make([]int32, p+1)
	progOff := make([]int32, p+1)
	msgOff := make([]int32, p+1)
	var numSends int
	var maxSendID int64 = -1
	for rank := 0; rank < p; rank++ {
		events, sends, recvs, maxID := r.RankCounts(rank)
		nodeOff[rank+1] = nodeOff[rank] + int32(events)
		prog := events - 1
		if prog < 0 {
			prog = 0
		}
		progOff[rank+1] = progOff[rank] + int32(prog)
		msgOff[rank+1] = msgOff[rank] + int32(recvs)
		numSends += sends
		if maxID > maxSendID {
			maxSendID = maxID
		}
	}
	// Same dense-table criterion as fromTracePar: scattered message ids
	// fall back to the sequential map-based build (which needs the full
	// trace anyway for its two-pass join).
	if maxSendID+1 > int64(4*numSends)+1024 {
		tr, err := r.ToTrace()
		if err != nil {
			return nil, err
		}
		return fromTraceSeq(tr)
	}
	numProg := int(progOff[p])
	numRecvs := int(msgOff[p])

	g := &Graph{
		Meta:  r.Meta(),
		Nodes: make([]Node, int(nodeOff[p])),
		Edges: make([]Edge, numProg+numRecvs),
	}
	sendSlot := make([]int32, maxSendID+1)
	matchEdge := make([]int32, maxSendID+1)
	// msgID per event is the only column stages B and C need beyond what
	// the nodes already carry (Kind lives in g.Nodes); everything else is
	// dropped as soon as the node is written.
	msgIDs := make([][]int64, p)
	errs := make([]error, p)

	// Stage A: decode each rank once — validate its stream invariants
	// (the per-rank half of trace.Validate), fill nodes and program
	// edges, and claim send slots. Duplicate-send detection rides the
	// same CAS as fromTracePar.
	readAhead := runtime.GOMAXPROCS(0) > 1
	forEachRank(workers, p, func(rank int) {
		footEvents, footSends, footRecvs, footMax := r.RankCounts(rank)
		base := nodeOff[rank]
		pbase := progOff[rank]
		ids := make([]int64, 0, footEvents)
		// Each rank is drained start to finish here, so segment
		// read-ahead overlaps the next block's inflate with this
		// block's node/edge fill whenever a second core exists.
		c := r.Cursor(rank)
		if readAhead {
			c.EnableReadAhead()
		}
		var ev trace.Event
		var lastTime vtime.Time
		var lastLamport int64
		sends, recvs := 0, 0
		var seenMax int64 = -1
		i := 0
		for c.Next(&ev) {
			if i >= footEvents {
				errs[rank] = fmt.Errorf("rank %d: more events than footer count %d", rank, footEvents)
				return
			}
			if !ev.Kind.Valid() {
				errs[rank] = fmt.Errorf("rank %d event %d: invalid kind %d", rank, i, ev.Kind)
				return
			}
			if ev.Time < lastTime {
				errs[rank] = fmt.Errorf("rank %d event %d: time %v before predecessor %v", rank, i, ev.Time, lastTime)
				return
			}
			if i > 0 && ev.Lamport <= lastLamport {
				errs[rank] = fmt.Errorf("rank %d event %d: lamport %d not after predecessor %d", rank, i, ev.Lamport, lastLamport)
				return
			}
			lastTime, lastLamport = ev.Time, ev.Lamport
			id := base + int32(i)
			g.Nodes[id] = Node{
				ID:           NodeID(id),
				Rank:         ev.Rank,
				Seq:          ev.Seq,
				Kind:         ev.Kind,
				Label:        ev.Label(),
				Lamport:      ev.Lamport,
				Time:         ev.Time,
				CallstackKey: ev.CallstackKey(),
			}
			if i > 0 {
				g.Edges[pbase+int32(i-1)] = Edge{From: NodeID(id - 1), To: NodeID(id), Kind: EdgeProgram}
			}
			ids = append(ids, ev.MsgID)
			if ev.MsgID != trace.NoMsg {
				if ev.Kind.IsSend() {
					if ev.MsgID < 0 {
						errs[rank] = fmt.Errorf("rank %d event %d: negative msg id %d", rank, i, ev.MsgID)
						return
					}
					sends++
					if ev.MsgID > seenMax {
						seenMax = ev.MsgID
					}
					if !atomic.CompareAndSwapInt32(&sendSlot[ev.MsgID], 0, id+1) {
						prev := int(atomic.LoadInt32(&sendSlot[ev.MsgID]) - 1)
						errs[rank] = fmt.Errorf("graph: source trace invalid: msg %d sent twice (ranks %d and %d)",
							ev.MsgID, g.Nodes[prev].Rank, rank)
						return
					}
				} else if ev.Kind.IsReceive() {
					recvs++
				}
			}
			i++
		}
		if err := c.Err(); err != nil {
			errs[rank] = err
			return
		}
		// The footer counts fixed the layout; a stream that disagrees
		// with them would silently corrupt slots in other ranks' ranges.
		if i != footEvents || sends != footSends || recvs != footRecvs || seenMax != footMax {
			errs[rank] = fmt.Errorf("rank %d: stream (%d events, %d sends, %d recvs, max id %d) disagrees with footer (%d, %d, %d, %d)",
				rank, i, sends, recvs, seenMax, footEvents, footSends, footRecvs, footMax)
			return
		}
		msgIDs[rank] = ids
	})
	if err := firstErr(errs); err != nil {
		return nil, fmt.Errorf("graph: source trace invalid: %w", err)
	}

	// Stage B: message edges, joined through the send table — same slot
	// arithmetic as fromTracePar, reading kinds back from the nodes.
	forEachRank(workers, p, func(rank int) {
		base := nodeOff[rank]
		slot := int32(numProg) + msgOff[rank]
		for i, msgID := range msgIDs[rank] {
			to := base + int32(i)
			if msgID == trace.NoMsg || !g.Nodes[to].Kind.IsReceive() {
				continue
			}
			var from int32
			if msgID >= 0 && msgID <= maxSendID {
				from = sendSlot[msgID]
			}
			if from == 0 {
				errs[rank] = fmt.Errorf("graph: recv of msg %d has no send", msgID)
				return
			}
			if g.Nodes[to].Lamport <= g.Nodes[from-1].Lamport {
				errs[rank] = fmt.Errorf("graph: edge %d violates causality: lamport %d→%d",
					slot, g.Nodes[from-1].Lamport, g.Nodes[to].Lamport)
				return
			}
			g.Edges[slot] = Edge{From: NodeID(from - 1), To: NodeID(to), Kind: EdgeMessage}
			if !atomic.CompareAndSwapInt32(&matchEdge[msgID], 0, slot+1) {
				prev := atomic.LoadInt32(&matchEdge[msgID]) - 1
				errs[rank] = fmt.Errorf("graph: source trace invalid: msg %d received twice (ranks %d and %d)",
					msgID, g.Nodes[g.Edges[prev].To].Rank, rank)
				return
			}
			slot++
		}
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}

	// Stage C: adjacency, identical to fromTracePar's carve-and-fill.
	g.Out = make([][]int32, len(g.Nodes))
	g.In = make([][]int32, len(g.Nodes))
	forEachRank(workers, p, func(rank int) {
		n := len(msgIDs[rank])
		if n == 0 {
			return
		}
		base := nodeOff[rank]
		pbase := progOff[rank]
		matched := 0
		for i, msgID := range msgIDs[rank] {
			if msgID != trace.NoMsg && g.Nodes[base+int32(i)].Kind.IsSend() && matchEdge[msgID] != 0 {
				matched++
			}
		}
		prog := n - 1
		outBack := make([]int32, prog+matched)
		inBack := make([]int32, prog+int(msgOff[rank+1]-msgOff[rank]))
		var op, ip int32
		recvSlot := int32(numProg) + msgOff[rank]
		for i, msgID := range msgIDs[rank] {
			id := base + int32(i)
			outDeg, inDeg := int32(0), int32(0)
			if i < n-1 {
				outDeg++
			}
			if i > 0 {
				inDeg++
			}
			isSend := msgID != trace.NoMsg && g.Nodes[id].Kind.IsSend()
			isRecv := msgID != trace.NoMsg && g.Nodes[id].Kind.IsReceive()
			var sendEdge int32
			if isSend {
				sendEdge = matchEdge[msgID]
				if sendEdge != 0 {
					outDeg++
				}
			}
			if isRecv {
				inDeg++
			}
			out := outBack[op : op : op+outDeg]
			op += outDeg
			in := inBack[ip : ip : ip+inDeg]
			ip += inDeg
			if i < n-1 {
				out = append(out, pbase+int32(i))
			}
			if isSend && sendEdge != 0 {
				out = append(out, sendEdge-1)
			}
			if i > 0 {
				in = append(in, pbase+int32(i-1))
			}
			if isRecv {
				in = append(in, recvSlot)
				recvSlot++
			}
			g.Out[id] = out
			g.In[id] = in
		}
	})
	return g, nil
}
