package graph

import (
	"fmt"

	"github.com/anacin-go/anacinx/internal/vtime"
)

// Critical-path analysis: the longest chain of causally ordered events,
// weighted by virtual time. In a message-passing execution the critical
// path is the sequence of computation and communication that determined
// the total runtime; everything off it had slack. The course module
// uses it to show students *which* messages mattered — and how the
// critical path itself changes between non-deterministic runs.

// CriticalPath is the result of (*Graph).CriticalPath.
type CriticalPath struct {
	// Nodes lists the path's node ids in execution order.
	Nodes []NodeID
	// Elapsed is the virtual time spanned by the path (the time of its
	// last event).
	Elapsed vtime.Time
	// MessageHops counts the message edges traversed.
	MessageHops int
}

// CriticalPath returns the heaviest causal chain through the event
// graph: the path ending at the latest event, followed backwards
// through the predecessor (program or message) whose own completion
// time is largest. The graph must be sealed and causally valid.
func (g *Graph) CriticalPath() (*CriticalPath, error) {
	if g.Out == nil || g.In == nil {
		return nil, fmt.Errorf("graph: not sealed")
	}
	cp := &CriticalPath{}
	if len(g.Nodes) == 0 {
		return cp, nil
	}
	// Find the globally latest event (ties: larger node id, i.e. the
	// later rank/seq in the deterministic node order).
	end := NodeID(0)
	for i := range g.Nodes {
		if g.Nodes[i].Time >= g.Nodes[end].Time {
			end = NodeID(i)
		}
	}
	cp.Elapsed = g.Nodes[end].Time

	// Walk backwards greedily: among in-neighbors pick the one with the
	// latest completion time (the binding dependency). Event graphs are
	// DAGs in Lamport order, so this terminates.
	var rev []NodeID
	cur := end
	for {
		rev = append(rev, cur)
		if len(rev) > len(g.Nodes) {
			return nil, fmt.Errorf("graph: critical path longer than node count; cycle?")
		}
		var best NodeID = None
		var bestEdge EdgeKind
		for _, ei := range g.In[cur] {
			e := &g.Edges[ei]
			from := e.From
			if best == None || g.Nodes[from].Time > g.Nodes[best].Time ||
				(g.Nodes[from].Time == g.Nodes[best].Time && from > best) {
				best = from
				bestEdge = e.Kind
			}
		}
		if best == None {
			break
		}
		if bestEdge == EdgeMessage {
			cp.MessageHops++
		}
		cur = best
	}
	// Reverse into execution order.
	cp.Nodes = make([]NodeID, len(rev))
	for i, id := range rev {
		cp.Nodes[len(rev)-1-i] = id
	}
	return cp, nil
}

// Describe renders the path as "rank#seq kind" hops, for course output.
func (cp *CriticalPath) Describe(g *Graph) []string {
	out := make([]string, len(cp.Nodes))
	for i, id := range cp.Nodes {
		n := &g.Nodes[id]
		out[i] = fmt.Sprintf("%d#%d %s@%v", n.Rank, n.Seq, n.Label, n.Time)
	}
	return out
}
