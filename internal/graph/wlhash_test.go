package graph

import (
	"testing"

	"github.com/anacin-go/anacinx/internal/sim"
	"github.com/anacin-go/anacinx/internal/trace"
)

func TestWLHashIdenticalRuns(t *testing.T) {
	a := mustGraph(t, raceTrace(t, 4, 100, 9))
	b := mustGraph(t, raceTrace(t, 4, 100, 9))
	for _, h := range []int{0, 1, 2, 3} {
		if !WLEquivalent(a, b, h) {
			t.Errorf("identical runs not WL-%d equivalent", h)
		}
	}
}

func TestWLHashIsomorphicPermutation(t *testing.T) {
	// A single-round symmetric message race: permuting which sender's
	// message lands first is a graph automorphism, so two such runs
	// with different match orders must hash EQUAL — the formal content
	// of the Fig. 4 caveat documented in EXPERIMENTS.md.
	var a, b *Graph
	base := raceTrace(t, 4, 100, 1)
	a = mustGraph(t, base)
	for seed := int64(2); seed < 64; seed++ {
		cand := raceTrace(t, 4, 100, seed)
		if cand.OrderHash() != base.OrderHash() {
			b = mustGraph(t, cand)
			break
		}
	}
	if b == nil {
		t.Skip("no divergent seed found")
	}
	if !WLEquivalent(a, b, 3) {
		t.Error("permuted symmetric race not WL-equivalent (expected isomorphic)")
	}
}

func TestWLHashDistinguishesStructure(t *testing.T) {
	// Different process counts are trivially non-isomorphic.
	a := mustGraph(t, raceTrace(t, 4, 0, 1))
	b := mustGraph(t, raceTrace(t, 5, 0, 1))
	if WLEquivalent(a, b, 2) {
		t.Error("4-proc and 5-proc races hash equal")
	}
	// An asymmetric workload's two ND runs differ structurally.
	c := meshLikeGraph(t, 1)
	d := meshLikeGraph(t, 2)
	if WLEquivalent(c, d, 3) {
		t.Skip("these two seeds happened to be isomorphic; informational only")
	}
}

// meshLikeGraph builds a small asymmetric racing workload.
func meshLikeGraph(t *testing.T, seed int64) *Graph {
	t.Helper()
	cfg := sim.DefaultConfig(6, seed)
	cfg.NDPercent = 100
	tr, _, err := sim.Run(cfg, trace.Meta{}, func(r *sim.Rank) {
		p := r.Size()
		for i := 0; i < 2; i++ {
			r.SendSize((r.Rank()+1)%p, i, 1)
			r.SendSize((r.Rank()+2)%p, i, 1)
		}
		for i := 0; i < 4; i++ {
			r.Recv(sim.AnySource, sim.AnyTag)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return mustGraph(t, tr)
}

func TestWLHashEmptyAndDepthZero(t *testing.T) {
	empty := &Graph{}
	empty.Seal()
	if empty.WLHash(2) == mustGraph(t, raceTrace(t, 3, 0, 1)).WLHash(2) {
		t.Error("empty graph hashes like a real one")
	}
	// Depth 0 is the label multiset: two runs of one config always
	// agree there.
	a := mustGraph(t, raceTrace(t, 4, 100, 1))
	b := mustGraph(t, raceTrace(t, 4, 100, 2))
	if !WLEquivalent(a, b, 0) {
		t.Error("same config runs differ at depth 0 (label multiset)")
	}
}

func TestNodeIDString(t *testing.T) {
	if NodeID(7).String() != "7" {
		t.Error("NodeID.String wrong")
	}
}
