package graph

import (
	"bytes"
	"encoding/xml"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"github.com/anacin-go/anacinx/internal/sim"
	"github.com/anacin-go/anacinx/internal/trace"
)

// raceTrace runs a small message race and returns its trace.
func raceTrace(t testing.TB, procs int, nd float64, seed int64) *trace.Trace {
	t.Helper()
	cfg := sim.DefaultConfig(procs, seed)
	cfg.NDPercent = nd
	tr, _, err := sim.Run(cfg, trace.Meta{Pattern: "race"}, func(r *sim.Rank) {
		if r.Rank() == 0 {
			for i := 0; i < procs-1; i++ {
				r.Recv(sim.AnySource, sim.AnyTag)
			}
		} else {
			r.SendSize(0, 0, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func mustGraph(t testing.TB, tr *trace.Trace) *Graph {
	t.Helper()
	g, err := FromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFromTraceShape(t *testing.T) {
	const procs = 4
	tr := raceTrace(t, procs, 0, 1)
	g := mustGraph(t, tr)

	// Events: per rank init+finalize, 3 sends, 3 recvs.
	wantNodes := 2*procs + 3 + 3
	if g.NumNodes() != wantNodes {
		t.Errorf("NumNodes = %d, want %d", g.NumNodes(), wantNodes)
	}
	// Program edges: sum over ranks of (events-1). Rank 0 has 5 events,
	// others 3 → 4 + 3*2 = 10. Message edges: 3.
	if g.MessageEdges() != 3 {
		t.Errorf("MessageEdges = %d, want 3", g.MessageEdges())
	}
	if g.NumEdges()-g.MessageEdges() != 10 {
		t.Errorf("program edges = %d, want 10", g.NumEdges()-g.MessageEdges())
	}
	if g.Ranks() != procs {
		t.Errorf("Ranks = %d, want %d", g.Ranks(), procs)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestFromTraceRejectsInvalid(t *testing.T) {
	bad := trace.New(trace.Meta{Procs: 1})
	bad.Append(trace.Event{Rank: 0, Kind: trace.KindRecv, Peer: 0, MsgID: 5, Lamport: 1})
	if _, err := FromTrace(bad); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestMessageEdgesJoinSendToRecv(t *testing.T) {
	tr := raceTrace(t, 3, 0, 1)
	g := mustGraph(t, tr)
	for i := range g.Edges {
		e := &g.Edges[i]
		if e.Kind != EdgeMessage {
			continue
		}
		from, to := &g.Nodes[e.From], &g.Nodes[e.To]
		if !from.Kind.IsSend() || !to.Kind.IsReceive() {
			t.Errorf("message edge %v→%v connects %v→%v", e.From, e.To, from.Kind, to.Kind)
		}
		if to.Rank != 0 {
			t.Errorf("race receive on rank %d, want 0", to.Rank)
		}
		if from.Rank == to.Rank {
			t.Errorf("message edge within one rank")
		}
	}
}

func TestNodesOfRankOrdered(t *testing.T) {
	tr := raceTrace(t, 4, 0, 1)
	g := mustGraph(t, tr)
	ids := g.NodesOfRank(0)
	if len(ids) != 5 { // init, 3 recvs, finalize
		t.Fatalf("rank 0 has %d nodes", len(ids))
	}
	for i, id := range ids {
		if g.Nodes[id].Seq != i {
			t.Errorf("node %d has seq %d", i, g.Nodes[id].Seq)
		}
	}
}

func TestNeighbors(t *testing.T) {
	tr := raceTrace(t, 3, 0, 1)
	g := mustGraph(t, tr)
	// Rank 0's first recv: in-neighbors are its init (program) and a
	// send (message); out-neighbor is the next recv.
	recv := g.NodesOfRank(0)[1]
	in := g.InNeighbors(recv, nil)
	out := g.OutNeighbors(recv, nil)
	if len(in) != 2 {
		t.Errorf("recv in-degree = %d, want 2", len(in))
	}
	if len(out) != 1 {
		t.Errorf("recv out-degree = %d, want 1", len(out))
	}
}

func TestLabelCounts(t *testing.T) {
	tr := raceTrace(t, 4, 0, 1)
	g := mustGraph(t, tr)
	counts := g.LabelCounts()
	if counts["init"] != 4 || counts["finalize"] != 4 || counts["send"] != 3 || counts["recv"] != 3 {
		t.Errorf("LabelCounts = %v", counts)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	fresh := func() *Graph { return mustGraph(t, raceTrace(t, 3, 0, 1)) }

	g := fresh()
	g.Edges[0].To = 9999
	if err := g.Validate(); err == nil {
		t.Error("out-of-range edge accepted")
	}

	g = fresh()
	// Find a program edge and force it across ranks.
	for i := range g.Edges {
		if g.Edges[i].Kind == EdgeProgram {
			for j := range g.Nodes {
				if g.Nodes[j].Rank != g.Nodes[g.Edges[i].From].Rank && g.Nodes[j].Lamport > g.Nodes[g.Edges[i].From].Lamport {
					g.Edges[i].To = NodeID(j)
					break
				}
			}
			break
		}
	}
	if err := g.Validate(); err == nil {
		t.Error("cross-rank program edge accepted")
	}

	g = fresh()
	g.Nodes[2].ID = 7
	if err := g.Validate(); err == nil {
		t.Error("non-dense node ID accepted")
	}

	g = fresh()
	g.Out = nil
	if err := g.Validate(); err == nil {
		t.Error("unsealed graph accepted")
	}
}

func TestSliceByLamportPartition(t *testing.T) {
	tr := raceTrace(t, 4, 100, 3)
	g := mustGraph(t, tr)
	for _, count := range []int{1, 2, 3, 5, 10} {
		slices, err := g.SliceByLamport(count)
		if err != nil {
			t.Fatal(err)
		}
		if len(slices) != count {
			t.Fatalf("got %d slices, want %d", len(slices), count)
		}
		total := 0
		for _, s := range slices {
			total += s.NumNodes()
			if err := s.Validate(); err != nil {
				t.Errorf("slice invalid: %v", err)
			}
		}
		if total != g.NumNodes() {
			t.Errorf("count=%d: slices hold %d nodes, parent has %d", count, total, g.NumNodes())
		}
	}
}

func TestSliceByLamportOrdering(t *testing.T) {
	// Every node in slice k must have Lamport <= every node in k+1...
	// strictly: max lamport of slice k <= min lamport of slice k+1.
	g := mustGraph(t, raceTrace(t, 6, 100, 9))
	slices, err := g.SliceByLamport(4)
	if err != nil {
		t.Fatal(err)
	}
	prevMax := int64(-1)
	for k, s := range slices {
		if s.NumNodes() == 0 {
			continue
		}
		min, max := int64(1<<62), int64(0)
		for i := range s.Nodes {
			if l := s.Nodes[i].Lamport; l < min {
				min = l
			}
			if l := s.Nodes[i].Lamport; l > max {
				max = l
			}
		}
		if min <= prevMax {
			t.Errorf("slice %d min lamport %d overlaps previous max %d", k, min, prevMax)
		}
		prevMax = max
	}
}

func TestSliceCountOne(t *testing.T) {
	g := mustGraph(t, raceTrace(t, 3, 0, 1))
	slices, err := g.SliceByLamport(1)
	if err != nil {
		t.Fatal(err)
	}
	if slices[0].NumNodes() != g.NumNodes() {
		t.Error("single slice must contain every node")
	}
	// All intra-slice edges survive (every edge, since there is one slice).
	if slices[0].NumEdges() != g.NumEdges() {
		t.Errorf("single slice has %d edges, parent %d", slices[0].NumEdges(), g.NumEdges())
	}
}

func TestSliceRejectsBadCount(t *testing.T) {
	g := mustGraph(t, raceTrace(t, 3, 0, 1))
	if _, err := g.SliceByLamport(0); err == nil {
		t.Error("count 0 accepted")
	}
}

func TestSliceEmptyGraph(t *testing.T) {
	g := &Graph{}
	g.Seal()
	slices, err := g.SliceByLamport(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range slices {
		if s.NumNodes() != 0 {
			t.Error("empty graph produced nonempty slice")
		}
	}
}

func TestSliceCallstacks(t *testing.T) {
	g := mustGraph(t, raceTrace(t, 4, 0, 1))
	keys := g.SliceCallstacks()
	if len(keys) != 3 { // one per recv
		t.Fatalf("SliceCallstacks = %d entries, want 3", len(keys))
	}
	for _, k := range keys {
		if k == "" {
			t.Error("empty callstack key")
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := mustGraph(t, raceTrace(t, 3, 0, 1))
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, "race"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "rank=same", "style=dashed", "style=solid", "recv", "send"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	if strings.Count(out, "->") != g.NumEdges() {
		t.Errorf("DOT has %d edges, graph has %d", strings.Count(out, "->"), g.NumEdges())
	}
}

func TestWriteGraphML(t *testing.T) {
	g := mustGraph(t, raceTrace(t, 3, 0, 1))
	var buf bytes.Buffer
	if err := g.WriteGraphML(&buf, "race<&>"); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	// Well-formed XML.
	dec := xml.NewDecoder(strings.NewReader(doc))
	for {
		_, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("GraphML not well-formed: %v", err)
		}
	}
	for _, want := range []string{"graphml", `edgedefault="directed"`, "race&lt;&amp;&gt;",
		`key="label"`, `key="lamport"`, `key="kind"`, "recv", "message"} {
		if !strings.Contains(doc, want) {
			t.Errorf("GraphML missing %q", want)
		}
	}
	if got := strings.Count(doc, "<node "); got != g.NumNodes() {
		t.Errorf("%d node elements for %d nodes", got, g.NumNodes())
	}
	if got := strings.Count(doc, "<edge "); got != g.NumEdges() {
		t.Errorf("%d edge elements for %d edges", got, g.NumEdges())
	}
}

func TestEdgeKindString(t *testing.T) {
	if EdgeProgram.String() != "program" || EdgeMessage.String() != "message" {
		t.Error("EdgeKind.String wrong")
	}
}

// Property: for arbitrary seeds and ND levels the builder produces a
// valid graph whose message-edge count equals the trace's matched pairs.
func TestQuickBuilderInvariants(t *testing.T) {
	f := func(seed int64, ndRaw uint8) bool {
		nd := float64(ndRaw) / 255 * 100
		tr := raceTrace(t, 5, nd, seed)
		g, err := FromTrace(tr)
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		return g.MessageEdges() == tr.MatchedPairs() && g.NumNodes() == tr.NumEvents()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFromTrace(b *testing.B) {
	tr := raceTrace(b, 16, 100, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromTrace(tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSliceByLamport(b *testing.B) {
	g := mustGraph(b, raceTrace(b, 16, 100, 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.SliceByLamport(8); err != nil {
			b.Fatal(err)
		}
	}
}
