package graph

import (
	"bytes"
	"strings"
	"testing"

	"github.com/anacin-go/anacinx/internal/trace"
	"github.com/anacin-go/anacinx/internal/vtime"
)

// readerFor encodes tr as a v2 binary trace and opens a Reader over it.
func readerFor(t *testing.T, tr *trace.Trace) *trace.Reader {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteBinaryV2(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestFromReaderMatchesFromTrace(t *testing.T) {
	traces := map[string]*trace.Trace{
		"race-16rank":   iterRaceTrace(t, 16, 8, 25),
		"race-64rank":   iterRaceTrace(t, 64, 4, 25),
		"coll-12rank":   collectiveTrace(t, 12),
		"empty-streams": trace.New(trace.Meta{Procs: 5}),
	}
	for name, tr := range traces {
		want, err := fromTraceSeq(tr)
		if err != nil {
			t.Fatalf("%s: sequential build: %v", name, err)
		}
		r := readerFor(t, tr)
		for _, workers := range []int{1, 2, 8} {
			got, err := FromReaderWorkers(r, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: streaming build: %v", name, workers, err)
			}
			assertGraphsEqual(t, want, got, name)
			if err := got.Validate(); err != nil {
				t.Fatalf("%s workers=%d: streamed graph invalid: %v", name, workers, err)
			}
		}
	}
}

// A trace with sparse, scattered message ids must take the sequential
// map-based fallback and still come out identical.
func TestFromReaderScatteredMsgIDFallback(t *testing.T) {
	tr := trace.New(trace.Meta{Pattern: "sparse", Procs: 2})
	tr.Append(trace.Event{Rank: 0, Kind: trace.KindSend, Peer: 1, MsgID: 1 << 40,
		Time: vtime.Time(1), Lamport: 1})
	tr.Append(trace.Event{Rank: 1, Kind: trace.KindRecv, Peer: 0, MsgID: 1 << 40,
		Time: vtime.Time(2), Lamport: 2})
	want, err := fromTraceSeq(tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromReader(readerFor(t, tr))
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, want, got, "sparse")
}

func TestFromReaderRejectsInvalidStream(t *testing.T) {
	// The v2 codec happily serializes invalid traces (it does not
	// validate); FromReader must reject them during its decode pass.
	mk := func(mutate func(tr *trace.Trace)) *trace.Reader {
		tr := iterRaceTrace(t, 16, 4, 0)
		mutate(tr)
		return readerFor(t, tr)
	}
	cases := map[string]struct {
		r    *trace.Reader
		want string
	}{
		"lamport-regression": {mk(func(tr *trace.Trace) {
			tr.Events[3][1].Lamport = tr.Events[3][0].Lamport
		}), "lamport"},
		"recv-without-send": {mk(func(tr *trace.Trace) {
			for i := range tr.Events[0] {
				if tr.Events[0][i].Kind == trace.KindRecv {
					tr.Events[0][i].MsgID = 500
					break
				}
			}
		}), "no send"},
	}
	for name, tc := range cases {
		_, err := FromReaderWorkers(tc.r, 4)
		if err == nil {
			t.Errorf("%s: streaming build accepted an invalid trace", name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}
}
