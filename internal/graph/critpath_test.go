package graph

import (
	"strings"
	"testing"

	"github.com/anacin-go/anacinx/internal/sim"
	"github.com/anacin-go/anacinx/internal/trace"
	"github.com/anacin-go/anacinx/internal/vtime"
)

func TestCriticalPathEmptyAndUnsealed(t *testing.T) {
	g := &Graph{}
	if _, err := g.CriticalPath(); err == nil {
		t.Error("unsealed graph accepted")
	}
	g.Seal()
	cp, err := g.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Nodes) != 0 || cp.Elapsed != 0 {
		t.Errorf("empty graph path: %+v", cp)
	}
}

func TestCriticalPathThroughMessage(t *testing.T) {
	// Rank 0 computes 1ms then sends to rank 1; rank 1's recv (and
	// finalize) dominate the runtime, so the critical path must cross
	// the message edge and start on rank 0.
	cfg := sim.DefaultConfig(2, 1)
	tr, _, err := sim.Run(cfg, trace.Meta{}, func(r *sim.Rank) {
		if r.Rank() == 0 {
			r.Compute(vtime.Millisecond)
			r.Send(1, 0, nil)
		} else {
			r.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := g.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if cp.MessageHops != 1 {
		t.Errorf("MessageHops = %d, want 1", cp.MessageHops)
	}
	if len(cp.Nodes) < 3 {
		t.Fatalf("path too short: %v", cp.Nodes)
	}
	// The path must start at rank 0's init and end at rank 1's final
	// event (the late receiver side).
	first, last := g.Nodes[cp.Nodes[0]], g.Nodes[cp.Nodes[len(cp.Nodes)-1]]
	if first.Rank != 0 || first.Seq != 0 {
		t.Errorf("path starts at rank %d seq %d", first.Rank, first.Seq)
	}
	if last.Rank != 1 {
		t.Errorf("path ends on rank %d, want 1", last.Rank)
	}
	if cp.Elapsed < vtime.Time(vtime.Millisecond) {
		t.Errorf("Elapsed = %v, want >= 1ms", cp.Elapsed)
	}
	// Times along the path are non-decreasing.
	for i := 1; i < len(cp.Nodes); i++ {
		if g.Nodes[cp.Nodes[i]].Time < g.Nodes[cp.Nodes[i-1]].Time {
			t.Fatal("path times regress")
		}
	}
}

func TestCriticalPathDescribe(t *testing.T) {
	g := mustGraph(t, raceTrace(t, 3, 0, 1))
	cp, err := g.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	lines := cp.Describe(g)
	if len(lines) != len(cp.Nodes) {
		t.Fatalf("describe length %d vs %d", len(lines), len(cp.Nodes))
	}
	if !strings.Contains(lines[len(lines)-1], "finalize") {
		t.Errorf("last hop %q is not a finalize", lines[len(lines)-1])
	}
}

func TestCriticalPathChangesAcrossNDRuns(t *testing.T) {
	// At 100% ND different runs can have different critical paths; at
	// least the path is always well-formed.
	for seed := int64(0); seed < 5; seed++ {
		g := mustGraph(t, raceTrace(t, 5, 100, seed))
		cp, err := g.CriticalPath()
		if err != nil {
			t.Fatal(err)
		}
		if len(cp.Nodes) == 0 || cp.Elapsed <= 0 {
			t.Fatalf("seed %d: degenerate path %+v", seed, cp)
		}
	}
}
