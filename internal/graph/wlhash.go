package graph

import (
	"slices"
	"strconv"
)

// fnv-1a constants, applied byte-wise to little-endian 8-byte words —
// the same digest hash/fnv computes, inlined so refinement does not
// allocate a digest object per node.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvWord folds one 64-bit word into an FNV-1a state, byte-identical
// to writing the word's little-endian bytes into a hash/fnv digest.
func fnvWord(h, w uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= w & 0xff
		h *= fnvPrime64
		w >>= 8
	}
	return h
}

// WLHash returns a Weisfeiler-Lehman canonical digest of the graph at
// refinement depth h: the multiset of node labels after h rounds of
// neighborhood refinement, hashed order-independently. Two isomorphic
// graphs always have equal WLHash; unequal hashes prove
// non-isomorphism. (Equal hashes do NOT prove isomorphism — WL
// equivalence is coarser — but for event graphs, whose structure is
// rich in degree and label variety, it is a practical identity check:
// tests and teaching material use it to show when two runs'
// communication structures are genuinely interchangeable.)
func (g *Graph) WLHash(h int) uint64 {
	n := len(g.Nodes)
	labels := make([]uint64, n)
	for i := range g.Nodes {
		labels[i] = fnvString(g.Nodes[i].Label)
	}
	next := make([]uint64, n)
	var scratch []uint64
	for depth := 0; depth < h; depth++ {
		for i := 0; i < n; i++ {
			acc := fnvWord(fnvOffset64, labels[i])
			scratch = scratch[:0]
			for _, ei := range g.In[i] {
				scratch = append(scratch, mix(uint64(g.Edges[ei].Kind)+1, labels[g.Edges[ei].From]))
			}
			sortU64(scratch)
			for _, v := range scratch {
				acc = fnvWord(acc, v)
			}
			acc = fnvWord(acc, 0x517cc1b727220a95) // in/out separator
			scratch = scratch[:0]
			for _, ei := range g.Out[i] {
				scratch = append(scratch, mix(uint64(g.Edges[ei].Kind)+1, labels[g.Edges[ei].To]))
			}
			sortU64(scratch)
			for _, v := range scratch {
				acc = fnvWord(acc, v)
			}
			next[i] = acc
		}
		labels, next = next, labels
	}
	// Order-independent combine: sort the final labels and hash the
	// sequence (plus the node count, so the empty graph is distinct).
	sortU64(labels)
	acc := fnvWord(fnvOffset64, uint64(n))
	for _, v := range labels {
		acc = fnvWord(acc, v)
	}
	return acc
}

// WLEquivalent reports whether two graphs are indistinguishable by
// depth-h WL refinement — a necessary condition for isomorphism.
func WLEquivalent(a, b *Graph, h int) bool { return a.WLHash(h) == b.WLHash(h) }

func fnvString(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

func mix(a, b uint64) uint64 {
	return fnvWord(fnvWord(fnvOffset64, a), b)
}

func sortU64(s []uint64) { slices.Sort(s) }

// String of a NodeID for error messages.
func (id NodeID) String() string { return strconv.Itoa(int(id)) }
