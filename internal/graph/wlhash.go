package graph

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// WLHash returns a Weisfeiler-Lehman canonical digest of the graph at
// refinement depth h: the multiset of node labels after h rounds of
// neighborhood refinement, hashed order-independently. Two isomorphic
// graphs always have equal WLHash; unequal hashes prove
// non-isomorphism. (Equal hashes do NOT prove isomorphism — WL
// equivalence is coarser — but for event graphs, whose structure is
// rich in degree and label variety, it is a practical identity check:
// tests and teaching material use it to show when two runs'
// communication structures are genuinely interchangeable.)
func (g *Graph) WLHash(h int) uint64 {
	n := len(g.Nodes)
	labels := make([]uint64, n)
	for i := range g.Nodes {
		labels[i] = fnvString(g.Nodes[i].Label)
	}
	next := make([]uint64, n)
	var scratch []uint64
	for depth := 0; depth < h; depth++ {
		for i := 0; i < n; i++ {
			acc := fnv.New64a()
			writeU64(acc, labels[i])
			scratch = scratch[:0]
			for _, ei := range g.In[i] {
				scratch = append(scratch, mix(uint64(g.Edges[ei].Kind)+1, labels[g.Edges[ei].From]))
			}
			sortU64(scratch)
			for _, v := range scratch {
				writeU64(acc, v)
			}
			writeU64(acc, 0x517cc1b727220a95) // in/out separator
			scratch = scratch[:0]
			for _, ei := range g.Out[i] {
				scratch = append(scratch, mix(uint64(g.Edges[ei].Kind)+1, labels[g.Edges[ei].To]))
			}
			sortU64(scratch)
			for _, v := range scratch {
				writeU64(acc, v)
			}
			next[i] = acc.Sum64()
		}
		labels, next = next, labels
	}
	// Order-independent combine: sort the final labels and hash the
	// sequence (plus the node count, so the empty graph is distinct).
	sortU64(labels)
	acc := fnv.New64a()
	writeU64(acc, uint64(n))
	for _, v := range labels {
		writeU64(acc, v)
	}
	return acc.Sum64()
}

// WLEquivalent reports whether two graphs are indistinguishable by
// depth-h WL refinement — a necessary condition for isomorphism.
func WLEquivalent(a, b *Graph, h int) bool { return a.WLHash(h) == b.WLHash(h) }

type u64Writer interface{ Write(p []byte) (int, error) }

func writeU64(w u64Writer, v uint64) {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	w.Write(buf[:]) //nolint:errcheck // fnv cannot fail
}

func fnvString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck
	return h.Sum64()
}

func mix(a, b uint64) uint64 {
	h := fnv.New64a()
	writeU64(h, a)
	writeU64(h, b)
	return h.Sum64()
}

func sortU64(s []uint64) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// String of a NodeID for error messages.
func (id NodeID) String() string { return strconv.Itoa(int(id)) }
