package graph

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/anacin-go/anacinx/internal/trace"
	"github.com/anacin-go/anacinx/internal/vtime"
)

// Parallel trace→graph construction. Event graphs have a rigidly
// regular shape — nodes are rank-major, program edges follow each
// rank's stream, and every message edge slot is determined by the
// receiving rank and its receive ordinal — so the entire layout can be
// computed from per-rank counts and then filled by workers writing to
// disjoint index ranges. The result is bit-identical to the sequential
// build (a property the tests pin), only the wall-clock differs.
//
// Validation is folded into construction: each worker checks its own
// rank's stream invariants (the per-rank half of trace.Validate), and
// the cross-rank send/receive uniqueness checks ride on the same
// compare-and-swap slots that resolve message edges, so no separate
// sequential validation sweep over the events is needed.

// parallelMinEvents is the event count below which FromTrace stays
// sequential: the fork/join overhead of a worker pool only pays for
// itself on traces that take longer to scan than to spawn workers.
const parallelMinEvents = 1 << 14

// FromTraceWorkers builds the event graph of a trace using up to
// workers goroutines partitioned over ranks. workers <= 0 means
// GOMAXPROCS. The resulting graph is identical to the sequential
// FromTrace build regardless of worker count or scheduling.
func FromTraceWorkers(tr *trace.Trace, workers int) (*Graph, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if p := tr.Procs(); workers > p {
		workers = p
	}
	if workers <= 1 {
		return fromTraceSeq(tr)
	}
	return fromTracePar(tr, workers)
}

// rankCounts is the stage-0 summary of one rank's stream.
type rankCounts struct {
	events, sends, recvs int
	maxSendID            int64
}

// forEachRank runs fn(rank) for every rank on a pool of workers. Ranks
// are handed out through an atomic counter (work stealing), so a heavy
// rank — the fan-in root of a message race — does not serialize behind
// a static partition.
func forEachRank(workers, p int, fn func(rank int)) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				r := int(next.Add(1)) - 1
				if r >= p {
					return
				}
				fn(r)
			}
		}()
	}
	wg.Wait()
}

// firstErr returns the lowest-rank error, matching the rank-major order
// in which the sequential build would have encountered it.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// countRank validates one rank's stream invariants (the per-rank half
// of trace.Validate) and tallies the counts the layout pass needs.
func countRank(rank int, evs []trace.Event) (rankCounts, error) {
	c := rankCounts{events: len(evs), maxSendID: -1}
	var lastTime vtime.Time
	var lastLamport int64
	for i := range evs {
		e := &evs[i]
		if !e.Kind.Valid() {
			return c, fmt.Errorf("rank %d event %d: invalid kind %d", rank, i, e.Kind)
		}
		if e.Rank != rank {
			return c, fmt.Errorf("rank %d event %d: recorded rank %d", rank, i, e.Rank)
		}
		if e.Seq != i {
			return c, fmt.Errorf("rank %d event %d: seq %d not dense", rank, i, e.Seq)
		}
		if e.Time < lastTime {
			return c, fmt.Errorf("rank %d event %d: time %v before predecessor %v", rank, i, e.Time, lastTime)
		}
		if i > 0 && e.Lamport <= lastLamport {
			return c, fmt.Errorf("rank %d event %d: lamport %d not after predecessor %d", rank, i, e.Lamport, lastLamport)
		}
		lastTime, lastLamport = e.Time, e.Lamport
		if e.MsgID != trace.NoMsg {
			if e.Kind.IsSend() {
				c.sends++
				if e.MsgID > c.maxSendID {
					c.maxSendID = e.MsgID
				}
				if e.MsgID < 0 {
					return c, fmt.Errorf("rank %d event %d: negative msg id %d", rank, i, e.MsgID)
				}
			} else if e.Kind.IsReceive() {
				c.recvs++
			}
		}
	}
	return c, nil
}

func fromTracePar(tr *trace.Trace, workers int) (*Graph, error) {
	p := tr.Procs()

	// Stage 0: per-rank counts and stream validation.
	counts := make([]rankCounts, p)
	errs := make([]error, p)
	forEachRank(workers, p, func(r int) {
		counts[r], errs[r] = countRank(r, tr.Events[r])
	})
	if err := firstErr(errs); err != nil {
		return nil, fmt.Errorf("graph: source trace invalid: %w", err)
	}

	// Layout: prefix sums fix every node and edge slot. Program edges
	// occupy [0, numProg) rank-major; message edges follow, rank-major
	// by RECEIVING rank in receive order — exactly the sequential
	// append order.
	nodeOff := make([]int32, p+1)
	progOff := make([]int32, p+1)
	msgOff := make([]int32, p+1)
	var numSends int
	var maxSendID int64 = -1
	for r := 0; r < p; r++ {
		c := &counts[r]
		nodeOff[r+1] = nodeOff[r] + int32(c.events)
		prog := c.events - 1
		if prog < 0 {
			prog = 0
		}
		progOff[r+1] = progOff[r] + int32(prog)
		msgOff[r+1] = msgOff[r] + int32(c.recvs)
		numSends += c.sends
		if c.maxSendID > maxSendID {
			maxSendID = c.maxSendID
		}
	}
	// The message-id join table is a dense slice indexed by MsgID. The
	// simulator issues sequential ids, so the span is proportional to
	// the send count; a hand-built trace with scattered ids falls back
	// to the sequential map-based build.
	if maxSendID+1 > int64(4*numSends)+1024 {
		return fromTraceSeq(tr)
	}
	numProg := int(progOff[p])
	numRecvs := int(msgOff[p])

	g := &Graph{
		Meta:  tr.Meta,
		Nodes: make([]Node, int(nodeOff[p])),
		Edges: make([]Edge, numProg+numRecvs),
	}
	// sendSlot[id] and matchEdge[id] hold nodeID+1 of the send event
	// and edgeIndex+1 of the consuming message edge (0 = absent). Both
	// are claimed with CAS so concurrent duplicate sends or receives of
	// one message are detected instead of silently racing.
	sendSlot := make([]int32, maxSendID+1)
	matchEdge := make([]int32, maxSendID+1)

	// Stage A: nodes, program edges, and the send join table.
	forEachRank(workers, p, func(r int) {
		evs := tr.Events[r]
		base := nodeOff[r]
		pbase := progOff[r]
		for i := range evs {
			e := &evs[i]
			id := base + int32(i)
			g.Nodes[id] = Node{
				ID:           NodeID(id),
				Rank:         e.Rank,
				Seq:          e.Seq,
				Kind:         e.Kind,
				Label:        e.Label(),
				Lamport:      e.Lamport,
				Time:         e.Time,
				CallstackKey: e.CallstackKey(),
			}
			if i > 0 {
				g.Edges[pbase+int32(i-1)] = Edge{From: NodeID(id - 1), To: NodeID(id), Kind: EdgeProgram}
			}
			if e.MsgID != trace.NoMsg && e.Kind.IsSend() {
				// The node is written before the CAS publishes its id, so
				// a loser reading the winner's node observes it complete.
				if !atomic.CompareAndSwapInt32(&sendSlot[e.MsgID], 0, id+1) {
					prev := int(atomic.LoadInt32(&sendSlot[e.MsgID]) - 1)
					errs[r] = fmt.Errorf("graph: source trace invalid: msg %d sent twice (ranks %d and %d)",
						e.MsgID, g.Nodes[prev].Rank, r)
					return
				}
			}
		}
	})
	if err := firstErr(errs); err != nil {
		return nil, fmt.Errorf("graph: source trace invalid: %w", err)
	}

	// Stage B: message edges, joined through the send table. Receives
	// may precede their sender in rank-major order, which is why this
	// stage needs stage A complete.
	forEachRank(workers, p, func(r int) {
		evs := tr.Events[r]
		base := nodeOff[r]
		slot := int32(numProg) + msgOff[r]
		for i := range evs {
			e := &evs[i]
			if e.MsgID == trace.NoMsg || !e.Kind.IsReceive() {
				continue
			}
			var from int32
			if e.MsgID >= 0 && e.MsgID <= maxSendID {
				from = sendSlot[e.MsgID]
			}
			if from == 0 {
				errs[r] = fmt.Errorf("graph: recv of msg %d has no send", e.MsgID)
				return
			}
			to := base + int32(i)
			if g.Nodes[to].Lamport <= g.Nodes[from-1].Lamport {
				errs[r] = fmt.Errorf("graph: edge %d violates causality: lamport %d→%d",
					slot, g.Nodes[from-1].Lamport, g.Nodes[to].Lamport)
				return
			}
			// The edge is written before the CAS publishes its index, so
			// a loser reporting a duplicate observes the winner's edge.
			g.Edges[slot] = Edge{From: NodeID(from - 1), To: NodeID(to), Kind: EdgeMessage}
			if !atomic.CompareAndSwapInt32(&matchEdge[e.MsgID], 0, slot+1) {
				prev := atomic.LoadInt32(&matchEdge[e.MsgID]) - 1
				errs[r] = fmt.Errorf("graph: source trace invalid: msg %d received twice (ranks %d and %d)",
					e.MsgID, g.Nodes[g.Edges[prev].To].Rank, r)
				return
			}
			slot++
		}
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}

	// Stage C: adjacency, the parallel counterpart of Seal. Each rank's
	// nodes form a contiguous ID range, so each worker carves its own
	// backing arrays and fills them without coordination. Out lists are
	// [program edge, message edge] in ascending edge index — the same
	// order sequential Seal produces by scanning edges in index order.
	g.Out = make([][]int32, len(g.Nodes))
	g.In = make([][]int32, len(g.Nodes))
	forEachRank(workers, p, func(r int) {
		evs := tr.Events[r]
		if len(evs) == 0 {
			return
		}
		base := nodeOff[r]
		pbase := progOff[r]
		// Degree pass: program edges plus this rank's matched sends
		// (out) and its receives (in; every receive matched, or stage B
		// would have failed).
		matched := 0
		for i := range evs {
			e := &evs[i]
			if e.MsgID != trace.NoMsg && e.Kind.IsSend() && matchEdge[e.MsgID] != 0 {
				matched++
			}
		}
		prog := len(evs) - 1
		outBack := make([]int32, prog+matched)
		inBack := make([]int32, prog+int(msgOff[r+1]-msgOff[r]))
		var op, ip int32
		recvSlot := int32(numProg) + msgOff[r]
		for i := range evs {
			e := &evs[i]
			id := base + int32(i)
			outDeg, inDeg := int32(0), int32(0)
			if i < len(evs)-1 {
				outDeg++
			}
			if i > 0 {
				inDeg++
			}
			isSend := e.MsgID != trace.NoMsg && e.Kind.IsSend()
			isRecv := e.MsgID != trace.NoMsg && e.Kind.IsReceive()
			var sendEdge int32
			if isSend {
				sendEdge = matchEdge[e.MsgID]
				if sendEdge != 0 {
					outDeg++
				}
			}
			if isRecv {
				inDeg++
			}
			out := outBack[op : op : op+outDeg]
			op += outDeg
			in := inBack[ip : ip : ip+inDeg]
			ip += inDeg
			if i < len(evs)-1 {
				out = append(out, pbase+int32(i))
			}
			if isSend && sendEdge != 0 {
				out = append(out, sendEdge-1)
			}
			if i > 0 {
				in = append(in, pbase+int32(i-1))
			}
			if isRecv {
				in = append(in, recvSlot)
				recvSlot++
			}
			g.Out[id] = out
			g.In[id] = in
		}
	})
	return g, nil
}
