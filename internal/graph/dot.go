package graph

import (
	"fmt"
	"io"
	"sort"
)

// WriteDOT emits the graph in Graphviz DOT form, laid out the way the
// paper draws event graphs: one horizontal row per rank (enforced with
// rank=same groups), program edges solid, message edges dashed.
// Node fill colors follow the paper's legend: green for process
// start/end, blue for sends, red for receives, grey otherwise.
func (g *Graph) WriteDOT(w io.Writer, title string) error {
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pf("digraph %q {\n", title)
	pf("  rankdir=LR;\n  node [shape=circle, style=filled, fontsize=10];\n")

	byRank := make(map[int][]NodeID)
	for i := range g.Nodes {
		byRank[g.Nodes[i].Rank] = append(byRank[g.Nodes[i].Rank], NodeID(i))
	}
	ranks := make([]int, 0, len(byRank))
	for r := range byRank {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)

	for _, r := range ranks {
		pf("  { rank=same;")
		for _, id := range byRank[r] {
			pf(" n%d;", id)
		}
		pf(" }\n")
		for _, id := range byRank[r] {
			n := &g.Nodes[id]
			pf("  n%d [label=%q, fillcolor=%q];\n", id, n.Label, dotColor(n))
		}
	}
	for i := range g.Edges {
		e := &g.Edges[i]
		style := "solid"
		if e.Kind == EdgeMessage {
			style = "dashed"
		}
		pf("  n%d -> n%d [style=%s];\n", e.From, e.To, style)
	}
	pf("}\n")
	return err
}

func dotColor(n *Node) string {
	switch {
	case n.Kind.IsSend():
		return "#7aa6ff" // blue: send
	case n.Kind.IsReceive():
		return "#ff8d7a" // red: receive
	case n.Kind.IsCollective():
		return "#c9a6ff" // violet: collective
	default:
		return "#8fd68f" // green: init/finalize (process start/end)
	}
}
