package graph

import (
	"reflect"
	"testing"

	"github.com/anacin-go/anacinx/internal/sim"
	"github.com/anacin-go/anacinx/internal/trace"
)

// iterRaceTrace simulates a message-race pattern and returns its trace:
// every nonzero rank sends to rank 0, which receives with AnySource —
// fan-in, wildcard matching, and receives that precede their senders in
// rank-major order.
func iterRaceTrace(t *testing.T, procs, iters int, nd float64) *trace.Trace {
	t.Helper()
	cfg := sim.DefaultConfig(procs, 42)
	cfg.Nodes = 2
	cfg.NDPercent = nd
	tr, _, err := sim.Run(cfg, trace.Meta{Pattern: "race"}, func(r *sim.Rank) {
		if r.Rank() == 0 {
			for i := 0; i < iters*(r.Size()-1); i++ {
				r.Recv(sim.AnySource, sim.AnyTag)
			}
			return
		}
		for i := 0; i < iters; i++ {
			r.SendSize(0, i, 64)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	return tr
}

// collectiveTrace exercises NoMsg collective events and internal
// (untraced) plumbing, so traced MsgIDs are a sparse subset of the
// simulator's id space.
func collectiveTrace(t *testing.T, procs int) *trace.Trace {
	t.Helper()
	cfg := sim.DefaultConfig(procs, 7)
	cfg.NDPercent = 10
	tr, _, err := sim.Run(cfg, trace.Meta{Pattern: "coll"}, func(r *sim.Rank) {
		for i := 0; i < 3; i++ {
			if r.Rank() != 0 {
				r.SendSize(0, 1, 32)
			} else {
				for p := 1; p < r.Size(); p++ {
					r.Recv(sim.AnySource, 1)
				}
			}
			r.Barrier()
			r.Allreduce([]byte{byte(r.Rank())}, func(a, b []byte) []byte { return a })
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	return tr
}

// assertGraphsEqual compares every exported structural field.
func assertGraphsEqual(t *testing.T, want, got *Graph, label string) {
	t.Helper()
	if !reflect.DeepEqual(want.Nodes, got.Nodes) {
		t.Fatalf("%s: nodes differ", label)
	}
	if !reflect.DeepEqual(want.Edges, got.Edges) {
		t.Fatalf("%s: edges differ", label)
	}
	if !reflect.DeepEqual(want.Out, got.Out) {
		t.Fatalf("%s: out adjacency differs", label)
	}
	if !reflect.DeepEqual(want.In, got.In) {
		t.Fatalf("%s: in adjacency differs", label)
	}
	if want.Meta != got.Meta {
		t.Fatalf("%s: meta differs", label)
	}
}

func TestParallelFromTraceMatchesSequential(t *testing.T) {
	traces := map[string]*trace.Trace{
		"race-16rank":   iterRaceTrace(t, 16, 8, 25),
		"race-64rank":   iterRaceTrace(t, 64, 4, 25),
		"coll-12rank":   collectiveTrace(t, 12),
		"empty-streams": trace.New(trace.Meta{Procs: 5}),
	}
	for name, tr := range traces {
		seq, err := fromTraceSeq(tr)
		if err != nil {
			t.Fatalf("%s: sequential build: %v", name, err)
		}
		for _, workers := range []int{2, 3, 8} {
			par, err := FromTraceWorkers(tr, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: parallel build: %v", name, workers, err)
			}
			assertGraphsEqual(t, seq, par, name)
			if err := par.Validate(); err != nil {
				t.Fatalf("%s workers=%d: parallel graph invalid: %v", name, workers, err)
			}
		}
	}
}

// The parallel path must report invalid traces, not build garbage.
func TestParallelFromTraceRejectsInvalid(t *testing.T) {
	mk := func(mutate func(tr *trace.Trace)) *trace.Trace {
		tr := iterRaceTrace(t, 16, 4, 0)
		mutate(tr)
		return tr
	}
	cases := map[string]*trace.Trace{
		"lamport-regression": mk(func(tr *trace.Trace) {
			tr.Events[3][1].Lamport = tr.Events[3][0].Lamport
		}),
		"sparse-seq": mk(func(tr *trace.Trace) {
			tr.Events[2][1].Seq = 7
		}),
		"recv-without-send": mk(func(tr *trace.Trace) {
			for i := range tr.Events[0] {
				if tr.Events[0][i].Kind == trace.KindRecv {
					tr.Events[0][i].MsgID = 1 << 40
					break
				}
			}
		}),
	}
	for name, tr := range cases {
		if _, err := FromTraceWorkers(tr, 4); err == nil {
			t.Errorf("%s: parallel build accepted an invalid trace", name)
		}
	}
}
