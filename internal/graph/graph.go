// Package graph builds and manipulates event graphs: the graph model of
// an MPI communication pattern at the heart of ANACIN-X.
//
// An event graph has one node per traced MPI event. Edges are of two
// kinds: program edges link consecutive events on one rank (logical
// time within a process), and message edges link each send event to the
// receive event that consumed its message. Figure 1 of the paper shows
// exactly this structure; the graph-kernel distance between two runs'
// event graphs is the paper's proxy metric for non-determinism.
package graph

import (
	"fmt"
	"runtime"

	"github.com/anacin-go/anacinx/internal/trace"
	"github.com/anacin-go/anacinx/internal/vtime"
)

// NodeID indexes a node within its Graph.
type NodeID int32

// None marks the absence of a node reference.
const None NodeID = -1

// EdgeKind distinguishes the two edge classes of an event graph.
type EdgeKind uint8

const (
	// EdgeProgram links consecutive events on the same rank.
	EdgeProgram EdgeKind = iota
	// EdgeMessage links a send event to its matched receive event.
	EdgeMessage
)

// String names the edge kind.
func (k EdgeKind) String() string {
	if k == EdgeProgram {
		return "program"
	}
	return "message"
}

// Node is one event-graph vertex.
type Node struct {
	ID   NodeID
	Rank int
	// Seq is the event's position in its rank's stream of the source
	// trace (or of the parent graph, for sliced subgraphs).
	Seq  int
	Kind trace.EventKind
	// Label is the kernel label, the MPI operation name.
	Label string
	// Lamport is the event's logical timestamp.
	Lamport int64
	// Time is the event's virtual timestamp.
	Time vtime.Time
	// CallstackKey is the ";"-joined application call-path that issued
	// the event (see trace.Event.CallstackKey).
	CallstackKey string
}

// Edge is one directed event-graph edge.
type Edge struct {
	From, To NodeID
	Kind     EdgeKind
}

// Graph is a directed event graph with adjacency in both directions.
// Construct with FromTrace or Builder; a manually assembled Graph must
// be finished with Seal before use.
type Graph struct {
	Nodes []Node
	Edges []Edge
	// Out and In are adjacency lists indexed by NodeID, populated by
	// Seal, listing edge indices.
	Out [][]int32
	In  [][]int32
	// Meta describes the run this graph models (zero for synthetic
	// graphs).
	Meta trace.Meta
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// MessageEdges returns how many edges are message edges.
func (g *Graph) MessageEdges() int {
	n := 0
	for i := range g.Edges {
		if g.Edges[i].Kind == EdgeMessage {
			n++
		}
	}
	return n
}

// Ranks returns the number of distinct ranks among the nodes.
func (g *Graph) Ranks() int {
	max := -1
	for i := range g.Nodes {
		if g.Nodes[i].Rank > max {
			max = g.Nodes[i].Rank
		}
	}
	return max + 1
}

// Seal populates the adjacency lists from Edges. It must be called after
// all nodes and edges are added and before neighbor queries.
//
// The per-node lists are carved out of two shared backing arrays after a
// degree-counting pass: two allocations regardless of node count,
// instead of the append-doubling churn of growing every list
// independently. Each list is sliced with its capacity clamped to its
// degree, so code that appends to an adjacency list after Seal
// reallocates instead of clobbering its neighbor.
func (g *Graph) Seal() {
	n := len(g.Nodes)
	g.Out = make([][]int32, n)
	g.In = make([][]int32, n)
	outDeg := make([]int32, n)
	inDeg := make([]int32, n)
	for i := range g.Edges {
		outDeg[g.Edges[i].From]++
		inDeg[g.Edges[i].To]++
	}
	outBack := make([]int32, len(g.Edges))
	inBack := make([]int32, len(g.Edges))
	var op, ip int32
	for i := 0; i < n; i++ {
		g.Out[i] = outBack[op : op : op+outDeg[i]]
		op += outDeg[i]
		g.In[i] = inBack[ip : ip : ip+inDeg[i]]
		ip += inDeg[i]
	}
	for i := range g.Edges {
		e := &g.Edges[i]
		g.Out[e.From] = append(g.Out[e.From], int32(i))
		g.In[e.To] = append(g.In[e.To], int32(i))
	}
}

// OutNeighbors appends the successor node ids of n to dst and returns it.
func (g *Graph) OutNeighbors(n NodeID, dst []NodeID) []NodeID {
	for _, ei := range g.Out[n] {
		dst = append(dst, g.Edges[ei].To)
	}
	return dst
}

// InNeighbors appends the predecessor node ids of n to dst and returns it.
func (g *Graph) InNeighbors(n NodeID, dst []NodeID) []NodeID {
	for _, ei := range g.In[n] {
		dst = append(dst, g.Edges[ei].From)
	}
	return dst
}

// Validate checks structural invariants:
//   - edge endpoints are in range and adjacency is sealed;
//   - node IDs are dense and self-describing;
//   - message edges connect a send-capable node to a receive-capable one;
//   - program edges connect consecutive events of one rank;
//   - the graph is acyclic in Lamport order (every edge increases the
//     Lamport timestamp), which any causally consistent execution must
//     satisfy.
func (g *Graph) Validate() error {
	if g.Out == nil || g.In == nil {
		return fmt.Errorf("graph: not sealed")
	}
	for i := range g.Nodes {
		if g.Nodes[i].ID != NodeID(i) {
			return fmt.Errorf("graph: node %d has ID %d", i, g.Nodes[i].ID)
		}
	}
	n := NodeID(len(g.Nodes))
	for i := range g.Edges {
		e := &g.Edges[i]
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return fmt.Errorf("graph: edge %d endpoints (%d,%d) out of range", i, e.From, e.To)
		}
		from, to := &g.Nodes[e.From], &g.Nodes[e.To]
		switch e.Kind {
		case EdgeProgram:
			if from.Rank != to.Rank {
				return fmt.Errorf("graph: program edge %d crosses ranks %d→%d", i, from.Rank, to.Rank)
			}
			if to.Seq <= from.Seq {
				return fmt.Errorf("graph: program edge %d goes backwards (%d→%d)", i, from.Seq, to.Seq)
			}
		case EdgeMessage:
			if !from.Kind.IsSend() {
				return fmt.Errorf("graph: message edge %d leaves non-send node %v", i, from.Kind)
			}
			if !to.Kind.IsReceive() {
				return fmt.Errorf("graph: message edge %d enters non-receive node %v", i, to.Kind)
			}
		default:
			return fmt.Errorf("graph: edge %d has unknown kind %d", i, e.Kind)
		}
		if to.Lamport <= from.Lamport {
			return fmt.Errorf("graph: edge %d violates causality: lamport %d→%d", i, from.Lamport, to.Lamport)
		}
	}
	return nil
}

// FromTrace builds the event graph of a validated trace. Nodes appear in
// rank-major, sequence order; program edges follow each rank's stream;
// message edges join each send to the receive that matched its message.
//
// Large traces are built in parallel over rank partitions (see
// FromTraceWorkers); the result is identical to the sequential build.
func FromTrace(tr *trace.Trace) (*Graph, error) {
	if w := runtime.GOMAXPROCS(0); w > 1 && tr.NumEvents() >= parallelMinEvents {
		return FromTraceWorkers(tr, w)
	}
	return fromTraceSeq(tr)
}

// fromTraceSeq is the sequential reference build.
func fromTraceSeq(tr *trace.Trace) (*Graph, error) {
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("graph: source trace invalid: %w", err)
	}
	// Counting pass: exact node and edge capacities cost one cheap sweep
	// and spare the build loops every reallocation.
	numProg, numSends, numRecvs := 0, 0, 0
	for _, evs := range tr.Events {
		if len(evs) > 0 {
			numProg += len(evs) - 1
		}
		for i := range evs {
			e := &evs[i]
			if e.MsgID == trace.NoMsg {
				continue
			}
			if e.Kind.IsSend() {
				numSends++
			} else if e.Kind.IsReceive() {
				numRecvs++
			}
		}
	}
	g := &Graph{
		Meta:  tr.Meta,
		Nodes: make([]Node, 0, tr.NumEvents()),
		Edges: make([]Edge, 0, numProg+numRecvs),
	}
	sendNode := make(map[int64]NodeID, numSends)
	for _, evs := range tr.Events {
		for i := range evs {
			e := &evs[i]
			id := NodeID(len(g.Nodes))
			g.Nodes = append(g.Nodes, Node{
				ID:           id,
				Rank:         e.Rank,
				Seq:          e.Seq,
				Kind:         e.Kind,
				Label:        e.Label(),
				Lamport:      e.Lamport,
				Time:         e.Time,
				CallstackKey: e.CallstackKey(),
			})
			if i > 0 {
				g.Edges = append(g.Edges, Edge{From: id - 1, To: id, Kind: EdgeProgram})
			}
			if e.MsgID != trace.NoMsg && e.Kind.IsSend() {
				sendNode[e.MsgID] = id
			}
		}
	}
	// Second pass for message edges: a receive may precede its sender in
	// rank-major order.
	var id NodeID
	for _, evs := range tr.Events {
		for i := range evs {
			e := &evs[i]
			if e.MsgID != trace.NoMsg && e.Kind.IsReceive() {
				from, ok := sendNode[e.MsgID]
				if !ok {
					return nil, fmt.Errorf("graph: recv of msg %d has no send", e.MsgID)
				}
				g.Edges = append(g.Edges, Edge{From: from, To: id, Kind: EdgeMessage})
			}
			id++
		}
	}
	g.Seal()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// NodesOfRank returns the node ids of one rank, in sequence order.
func (g *Graph) NodesOfRank(rank int) []NodeID {
	var out []NodeID
	for i := range g.Nodes {
		if g.Nodes[i].Rank == rank {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// LabelCounts returns the multiset of node labels, the degree-0 kernel
// feature vector.
func (g *Graph) LabelCounts() map[string]int {
	counts := make(map[string]int, 8)
	for i := range g.Nodes {
		counts[g.Nodes[i].Label]++
	}
	return counts
}
