package graph

import (
	"encoding/xml"
	"fmt"
	"io"
)

// GraphML export. ANACIN-X stores event graphs as GraphML for its
// Python/GraKeL kernel stage; emitting the same format lets this
// repository's graphs flow into those external tools (igraph, networkx,
// Gephi) unchanged. Node attributes carry the kernel label, rank,
// sequence, Lamport and virtual timestamps, and callstack; edge
// attributes carry the edge kind.

// WriteGraphML emits the graph as a GraphML document.
func (g *Graph) WriteGraphML(w io.Writer, name string) error {
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	esc := func(s string) string {
		var buf []byte
		buf, _ = xmlEscape(s) //nolint:errcheck // cannot fail for valid UTF-8
		return string(buf)
	}
	pf("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n")
	pf(`<graphml xmlns="http://graphml.graphdrawing.org/xmlns">` + "\n")
	for _, key := range []struct{ id, target, name, typ string }{
		{"label", "node", "label", "string"},
		{"rank", "node", "rank", "int"},
		{"seq", "node", "seq", "int"},
		{"lamport", "node", "lamport", "long"},
		{"vtime", "node", "vtime_ns", "long"},
		{"callstack", "node", "callstack", "string"},
		{"kind", "edge", "kind", "string"},
	} {
		pf(`  <key id="%s" for="%s" attr.name="%s" attr.type="%s"/>`+"\n",
			key.id, key.target, key.name, key.typ)
	}
	pf(`  <graph id="%s" edgedefault="directed">`+"\n", esc(name))
	for i := range g.Nodes {
		n := &g.Nodes[i]
		pf(`    <node id="n%d">`+"\n", i)
		pf(`      <data key="label">%s</data>`+"\n", esc(n.Label))
		pf(`      <data key="rank">%d</data>`+"\n", n.Rank)
		pf(`      <data key="seq">%d</data>`+"\n", n.Seq)
		pf(`      <data key="lamport">%d</data>`+"\n", n.Lamport)
		pf(`      <data key="vtime">%d</data>`+"\n", int64(n.Time))
		pf(`      <data key="callstack">%s</data>`+"\n", esc(n.CallstackKey))
		pf("    </node>\n")
	}
	for i := range g.Edges {
		e := &g.Edges[i]
		pf(`    <edge id="e%d" source="n%d" target="n%d"><data key="kind">%s</data></edge>`+"\n",
			i, e.From, e.To, e.Kind)
	}
	pf("  </graph>\n</graphml>\n")
	return err
}

// xmlEscape escapes a string for XML character data.
func xmlEscape(s string) ([]byte, error) {
	var buf []byte
	w := &sliceWriter{&buf}
	if err := xml.EscapeText(w, []byte(s)); err != nil {
		return nil, err
	}
	return buf, nil
}

type sliceWriter struct{ buf *[]byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	*w.buf = append(*w.buf, p...)
	return len(p), nil
}
