package graph

import "fmt"

// Slicing partitions an event graph along logical time. The root-source
// analysis (paper Fig. 8) compares corresponding slices of two runs'
// event graphs: slices whose kernel distance is high are "regions of
// high non-determinism", and the callstacks of events inside them point
// at the code responsible.

// SliceByLamport partitions g into `count` induced subgraphs of equal
// Lamport width. A node with Lamport timestamp L falls into slice
// min(count-1, (L-1)*count/maxLamport) — slice boundaries are identical
// for two graphs with equal maxLamport, and near-identical otherwise,
// which is what makes cross-run slice comparison meaningful.
//
// Edges are induced: an edge survives only if both endpoints land in the
// same slice. Each subgraph keeps the parent's node metadata (rank,
// label, callstack) with remapped dense IDs.
func (g *Graph) SliceByLamport(count int) ([]*Graph, error) {
	if count < 1 {
		return nil, fmt.Errorf("graph: slice count %d < 1", count)
	}
	maxL := int64(0)
	for i := range g.Nodes {
		if g.Nodes[i].Lamport > maxL {
			maxL = g.Nodes[i].Lamport
		}
	}
	slices := make([]*Graph, count)
	for i := range slices {
		slices[i] = &Graph{Meta: g.Meta}
	}
	if maxL == 0 {
		for _, s := range slices {
			s.Seal()
		}
		return slices, nil
	}

	sliceOf := func(lamport int64) int {
		if lamport < 1 {
			lamport = 1
		}
		k := int((lamport - 1) * int64(count) / maxL)
		if k >= count {
			k = count - 1
		}
		return k
	}

	remap := make([]NodeID, len(g.Nodes))
	home := make([]int, len(g.Nodes))
	for i := range g.Nodes {
		n := &g.Nodes[i]
		k := sliceOf(n.Lamport)
		home[i] = k
		s := slices[k]
		id := NodeID(len(s.Nodes))
		remap[i] = id
		cp := *n
		cp.ID = id
		s.Nodes = append(s.Nodes, cp)
	}
	for i := range g.Edges {
		e := &g.Edges[i]
		if home[e.From] != home[e.To] {
			continue
		}
		s := slices[home[e.From]]
		s.Edges = append(s.Edges, Edge{From: remap[e.From], To: remap[e.To], Kind: e.Kind})
	}
	for _, s := range slices {
		s.Seal()
	}
	return slices, nil
}

// SliceCallstacks returns, for each receive-capable node in the slice,
// its callstack key. These are the call-paths the root-source analysis
// counts: receives are where message-matching non-determinism
// materializes.
func (g *Graph) SliceCallstacks() []string {
	var out []string
	for i := range g.Nodes {
		if g.Nodes[i].Kind.IsReceive() {
			out = append(out, g.Nodes[i].CallstackKey)
		}
	}
	return out
}
