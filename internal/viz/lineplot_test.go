package viz

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestLinePlotSVG(t *testing.T) {
	series := []Series{
		{Label: "median", X: []float64{0, 10, 20, 30}, Y: []float64{0, 5, 8, 9}},
		{Label: "mean", X: []float64{0, 10, 20, 30}, Y: []float64{0, 6, 9, 10}},
	}
	var buf bytes.Buffer
	if err := LinePlotSVG(&buf, series, "trend", "nd%", "distance"); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	checkWellFormedXML(t, doc)
	for _, want := range []string{"trend", "nd%", "distance", "median", "mean", "<polyline"} {
		if !strings.Contains(doc, want) {
			t.Errorf("line plot missing %q", want)
		}
	}
	if got := strings.Count(doc, "<polyline"); got != 2 {
		t.Errorf("%d polylines for 2 series", got)
	}
}

func TestLinePlotValidation(t *testing.T) {
	if err := LinePlotSVG(io.Discard, nil, "t", "x", "y"); err == nil {
		t.Error("no series accepted")
	}
	bad := []Series{{Label: "a", X: []float64{1, 2}, Y: []float64{1}}}
	if err := LinePlotSVG(io.Discard, bad, "t", "x", "y"); err == nil {
		t.Error("mismatched series accepted")
	}
	empty := []Series{{Label: "a"}}
	if err := LinePlotSVG(io.Discard, empty, "t", "x", "y"); err == nil {
		t.Error("empty series accepted")
	}
}

func TestLinePlotDegenerateRanges(t *testing.T) {
	// Constant x and constant y must not divide by zero.
	series := []Series{{Label: "flat", X: []float64{5, 5}, Y: []float64{3, 3}}}
	var buf bytes.Buffer
	if err := LinePlotSVG(&buf, series, "t", "x", "y"); err != nil {
		t.Fatal(err)
	}
	checkWellFormedXML(t, buf.String())
}
