package viz

import (
	"fmt"
	"io"
	"math"
	"strings"

	"github.com/anacin-go/anacinx/internal/analysis"
)

// ViolinGroup is one violin body with its x-axis label, e.g. the kernel
// distances measured at one setting ("32 procs", "nd=40%").
type ViolinGroup struct {
	Label  string
	Violin *analysis.Violin
}

// ViolinPlotSVG renders one or more violins side by side against a
// shared value axis — the layout of the paper's Figures 5–7. Each body
// is the mirrored density; the white dot marks the median and the thick
// bar the interquartile range.
func ViolinPlotSVG(w io.Writer, groups []ViolinGroup, title, yLabel string) error {
	if len(groups) == 0 {
		return fmt.Errorf("viz: no violin groups")
	}
	const (
		marginL = 78.0
		marginR = 24.0
		marginT = 54.0
		marginB = 64.0
		slotW   = 86.0
	)
	width := marginL + marginR + slotW*float64(len(groups))
	if width < 360 {
		width = 360
	}
	height := 430.0
	s := NewSVG(width, height)
	s.Text(width/2, 26, "middle", `font-size="15" fill="black"`, title)

	// Shared value range across groups.
	lo, hi := math.MaxFloat64, -math.MaxFloat64
	for _, g := range groups {
		v := g.Violin
		if v.Summary.N == 0 {
			continue
		}
		if len(v.Grid) > 0 {
			lo = math.Min(lo, v.Grid[0])
			hi = math.Max(hi, v.Grid[len(v.Grid)-1])
		} else {
			lo = math.Min(lo, v.Summary.Min)
			hi = math.Max(hi, v.Summary.Max)
		}
	}
	if lo > hi { // every group empty
		lo, hi = 0, 1
	}
	if lo > 0 {
		lo = math.Max(0, lo) // distances are non-negative; anchor at 0 when close
	}
	if hi == lo {
		hi = lo + 1
	}

	plotTop, plotBottom := marginT, height-marginB
	yOf := func(val float64) float64 {
		return plotBottom - (val-lo)/(hi-lo)*(plotBottom-plotTop)
	}

	// Y axis with 5 ticks.
	s.Line(marginL, plotTop, marginL, plotBottom, `stroke="black" stroke-width="1"`)
	for i := 0; i <= 5; i++ {
		val := lo + (hi-lo)*float64(i)/5
		y := yOf(val)
		s.Line(marginL-4, y, marginL, y, `stroke="black" stroke-width="1"`)
		s.Text(marginL-8, y+4, "end", `font-size="11" fill="#333"`, formatTick(val))
	}
	s.Text(16, (plotTop+plotBottom)/2, "middle",
		fmt.Sprintf(`font-size="12" fill="#333" transform="rotate(-90 16 %.1f)"`, (plotTop+plotBottom)/2), yLabel)
	s.Line(marginL, plotBottom, width-marginR, plotBottom, `stroke="black" stroke-width="1"`)

	for gi, g := range groups {
		cx := marginL + slotW*(float64(gi)+0.5)
		v := g.Violin
		s.Text(cx, plotBottom+20, "middle", `font-size="12" fill="#333"`, g.Label)
		if v.Summary.N == 0 {
			s.Text(cx, (plotTop+plotBottom)/2, "middle", `font-size="11" fill="#999"`, "no data")
			continue
		}
		maxD := v.MaxDensity()
		halfW := slotW * 0.42
		if maxD > 0 && len(v.Grid) >= 2 {
			pts := make([]Point, 0, 2*len(v.Grid))
			for i, gv := range v.Grid {
				pts = append(pts, Point{cx + v.Density[i]/maxD*halfW, yOf(gv)})
			}
			for i := len(v.Grid) - 1; i >= 0; i-- {
				pts = append(pts, Point{cx - v.Density[i]/maxD*halfW, yOf(v.Grid[i])})
			}
			s.Polygon(pts, `fill="#7aa6d8" fill-opacity="0.65" stroke="#3a6698" stroke-width="1"`)
		}
		// Interquartile bar and median dot.
		s.Line(cx, yOf(v.Summary.Q1), cx, yOf(v.Summary.Q3), `stroke="#1c3a5c" stroke-width="5"`)
		s.Line(cx, yOf(v.Summary.Min), cx, yOf(v.Summary.Max), `stroke="#1c3a5c" stroke-width="1"`)
		s.Circle(cx, yOf(v.Summary.Median), 3.4, `fill="white" stroke="#1c3a5c" stroke-width="1.4"`)
	}
	_, err := s.WriteTo(w)
	return err
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	case av == 0:
		return "0"
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// ViolinASCII writes a terminal rendition of one sample: a horizontal
// box sketch plus the numeric summary.
//
//	|----[====|====]------|   n=20 min=.. med=.. max=..
func ViolinASCII(w io.Writer, label string, sample []float64) error {
	s := analysis.Summarize(sample)
	const width = 44
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s ", label)
	if s.N == 0 {
		b.WriteString("(no data)\n")
		_, err := io.WriteString(w, b.String())
		return err
	}
	span := s.Max - s.Min
	col := func(v float64) int {
		if span == 0 {
			return width / 2
		}
		c := int((v - s.Min) / span * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c > width-1 {
			c = width - 1
		}
		return c
	}
	row := make([]byte, width)
	for i := range row {
		row[i] = ' '
	}
	for i := col(s.Min); i <= col(s.Max); i++ {
		row[i] = '-'
	}
	for i := col(s.Q1); i <= col(s.Q3); i++ {
		row[i] = '='
	}
	row[col(s.Min)] = '|'
	row[col(s.Max)] = '|'
	row[col(s.Median)] = 'M'
	fmt.Fprintf(&b, "[%s]  %s\n", row, s.String())
	_, err := io.WriteString(w, b.String())
	return err
}
