package viz

import (
	"fmt"
	"io"
	"strings"

	"github.com/anacin-go/anacinx/internal/analysis"
)

// Callstack bar charts (paper Fig. 8): one horizontal bar per
// call-path, length proportional to its normalized frequency among
// receive events in high-non-determinism regions.

// BarChartSVG renders ranked callstack frequencies. Long call-paths are
// compacted to their innermost frames so labels stay readable, with the
// full path in a <title> tooltip.
func BarChartSVG(w io.Writer, ranked []analysis.CallstackFrequency, title string) error {
	if len(ranked) == 0 {
		return fmt.Errorf("viz: no callstacks to chart")
	}
	const (
		marginL = 260.0
		marginR = 70.0
		marginT = 56.0
		rowH    = 30.0
		barH    = 18.0
	)
	width := 760.0
	height := marginT + rowH*float64(len(ranked)) + 40
	s := NewSVG(width, height)
	s.Text(width/2, 26, "middle", `font-size="15" fill="black"`, title)
	s.Text(marginL+(width-marginL-marginR)/2, marginT-12, "middle",
		`font-size="12" fill="#333"`, "normalized frequency in high-ND regions")

	span := width - marginL - marginR
	for i, cf := range ranked {
		y := marginT + rowH*float64(i)
		s.Text(marginL-10, y+barH-4, "end", `font-size="11" fill="#333"`, CompactCallstack(cf.Callstack, 2))
		s.Rect(marginL, y, span*cf.Frequency, barH,
			`fill="#d88a3f" stroke="#8a5220" stroke-width="0.8"`)
		s.Text(marginL+span*cf.Frequency+6, y+barH-4, "start", `font-size="11" fill="#333"`,
			fmt.Sprintf("%.2f (n=%d)", cf.Frequency, cf.Count))
	}
	_, err := s.WriteTo(w)
	return err
}

// BarChartASCII writes the ranking as terminal bars.
func BarChartASCII(w io.Writer, ranked []analysis.CallstackFrequency) error {
	const width = 40
	var b strings.Builder
	if len(ranked) == 0 {
		b.WriteString("(no callstacks in high-ND regions)\n")
		_, err := io.WriteString(w, b.String())
		return err
	}
	labelW := 0
	labels := make([]string, len(ranked))
	for i, cf := range ranked {
		labels[i] = CompactCallstack(cf.Callstack, 2)
		if len(labels[i]) > labelW {
			labelW = len(labels[i])
		}
	}
	if labelW > 48 {
		labelW = 48
	}
	for i, cf := range ranked {
		bar := int(cf.Frequency*float64(width) + 0.5)
		label := labels[i]
		if len(label) > labelW {
			label = label[:labelW-1] + "…"
		}
		fmt.Fprintf(&b, "%-*s %s %.2f (n=%d)\n", labelW, label,
			strings.Repeat("#", bar), cf.Frequency, cf.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CompactCallstack keeps the innermost `frames` frames of a ";"-joined
// call-path, prefixing "…" when frames were dropped.
func CompactCallstack(key string, frames int) string {
	parts := strings.Split(key, ";")
	if len(parts) <= frames {
		return key
	}
	return strings.Join(parts[:frames], ";") + ";…"
}
