package viz

import (
	"bytes"
	"encoding/xml"
	"io"
	"strings"
	"testing"

	"github.com/anacin-go/anacinx/internal/analysis"
	"github.com/anacin-go/anacinx/internal/graph"
	"github.com/anacin-go/anacinx/internal/sim"
	"github.com/anacin-go/anacinx/internal/trace"
)

// checkWellFormedXML decodes every token of an SVG document.
func checkWellFormedXML(t *testing.T, doc string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(doc))
	for {
		_, err := dec.Token()
		if err == io.EOF {
			return
		}
		if err != nil {
			t.Fatalf("SVG not well-formed: %v\n%s", err, doc[:min(len(doc), 400)])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	cfg := sim.DefaultConfig(4, 1)
	tr, _, err := sim.Run(cfg, trace.Meta{Pattern: "race"}, func(r *sim.Rank) {
		if r.Rank() == 0 {
			for i := 0; i < 3; i++ {
				r.Recv(sim.AnySource, sim.AnyTag)
			}
		} else {
			r.SendSize(0, 0, 1)
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSVGBasicShapes(t *testing.T) {
	s := NewSVG(200, 100)
	s.Rect(1, 2, 3, 4, `fill="red"`)
	s.Circle(5, 6, 7, `fill="blue"`)
	s.Line(0, 0, 10, 10, `stroke="black"`)
	s.Polygon([]Point{{0, 0}, {1, 0}, {1, 1}}, `fill="green"`)
	s.Polyline([]Point{{0, 0}, {2, 2}}, `stroke="grey"`)
	s.Text(4, 4, "middle", `font-size="10"`, `a <b> & "c"`)
	s.Arrow(0, 0, 20, 0, `stroke="#123456" stroke-width="1"`)
	doc := s.String()
	checkWellFormedXML(t, doc)
	for _, want := range []string{"<rect", "<circle", "<line", "<polygon", "<polyline", "<text", "&lt;b&gt;", "&quot;c&quot;", `fill="#123456"`} {
		if !strings.Contains(doc, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if s.Width() != 200 || s.Height() != 100 {
		t.Error("dimensions wrong")
	}
}

func TestSVGEmptyPolygonIgnored(t *testing.T) {
	s := NewSVG(10, 10)
	s.Polygon(nil, `fill="x"`)
	s.Polyline(nil, `stroke="x"`)
	if strings.Contains(s.String(), "polygon") || strings.Contains(s.String(), "polyline") {
		t.Error("empty polygon/polyline emitted")
	}
}

func TestSVGZeroLengthArrow(t *testing.T) {
	s := NewSVG(10, 10)
	s.Arrow(5, 5, 5, 5, `stroke="black"`)
	checkWellFormedXML(t, s.String())
}

func TestEventGraphSVG(t *testing.T) {
	g := testGraph(t)
	var buf bytes.Buffer
	if err := EventGraphSVG(&buf, g, "message race"); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	checkWellFormedXML(t, doc)
	// One circle per node plus 4 legend dots.
	if got := strings.Count(doc, "<circle"); got != g.NumNodes()+4 {
		t.Errorf("%d circles for %d nodes", got, g.NumNodes())
	}
	for _, want := range []string{"message race", "rank 0", "rank 3", colorSend, colorRecv, colorStartEnd, colorCollective} {
		if !strings.Contains(doc, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestEventGraphTimeSVG(t *testing.T) {
	g := testGraph(t)
	var buf bytes.Buffer
	if err := EventGraphTimeSVG(&buf, g, "time layout"); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	checkWellFormedXML(t, doc)
	for _, want := range []string{"time layout", "virtual time", "rank 0", "µs"} {
		if !strings.Contains(doc, want) {
			t.Errorf("time-layout SVG missing %q", want)
		}
	}
	if got := strings.Count(doc, "<circle"); got != g.NumNodes() {
		t.Errorf("%d circles for %d nodes", got, g.NumNodes())
	}
}

func TestEventGraphASCII(t *testing.T) {
	g := testGraph(t)
	var buf bytes.Buffer
	if err := EventGraphASCII(&buf, g); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"rank  0", "rank  3", "o-R-R-R-C-o", "messages", "legend"} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII output missing %q:\n%s", want, out)
		}
	}
	// 3 message edges, all into rank 0.
	if got := strings.Count(out, "-> 0#"); got != 3 {
		t.Errorf("%d message lines, want 3:\n%s", got, out)
	}
}

func TestViolinPlotSVG(t *testing.T) {
	groups := []ViolinGroup{
		{Label: "32 procs", Violin: analysis.NewViolin([]float64{1, 2, 2.5, 3, 3.2, 4}, 64)},
		{Label: "16 procs", Violin: analysis.NewViolin([]float64{0.5, 1, 1.2, 1.4}, 64)},
	}
	var buf bytes.Buffer
	if err := ViolinPlotSVG(&buf, groups, "Fig 5", "kernel distance"); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	checkWellFormedXML(t, doc)
	for _, want := range []string{"Fig 5", "32 procs", "16 procs", "kernel distance", "<polygon"} {
		if !strings.Contains(doc, want) {
			t.Errorf("violin SVG missing %q", want)
		}
	}
}

func TestViolinPlotSVGEmptyGroup(t *testing.T) {
	groups := []ViolinGroup{{Label: "empty", Violin: analysis.NewViolin(nil, 64)}}
	var buf bytes.Buffer
	if err := ViolinPlotSVG(&buf, groups, "t", "y"); err != nil {
		t.Fatal(err)
	}
	checkWellFormedXML(t, buf.String())
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty group not marked")
	}
}

func TestViolinPlotSVGNoGroups(t *testing.T) {
	if err := ViolinPlotSVG(io.Discard, nil, "t", "y"); err == nil {
		t.Error("no groups accepted")
	}
}

func TestViolinASCII(t *testing.T) {
	var buf bytes.Buffer
	if err := ViolinASCII(&buf, "nd=50%", []float64{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"nd=50%", "M", "=", "n=5"} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII violin missing %q: %s", want, out)
		}
	}
	buf.Reset()
	if err := ViolinASCII(&buf, "empty", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty sample not marked")
	}
	buf.Reset()
	if err := ViolinASCII(&buf, "const", []float64{2, 2, 2}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "M") {
		t.Error("constant sample missing median marker")
	}
}

func rankedFixture() []analysis.CallstackFrequency {
	return []analysis.CallstackFrequency{
		{Callstack: "patterns.(*AMG2013).gatherWork;patterns.(*AMG2013).exchangeAll;main.main", Count: 40, Frequency: 1},
		{Callstack: "patterns.(*MessageRace).drainRaces;main.main", Count: 10, Frequency: 0.25},
	}
}

func TestBarChartSVG(t *testing.T) {
	var buf bytes.Buffer
	if err := BarChartSVG(&buf, rankedFixture(), "Fig 8"); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	checkWellFormedXML(t, doc)
	for _, want := range []string{"Fig 8", "gatherWork", "drainRaces", "1.00", "0.25"} {
		if !strings.Contains(doc, want) {
			t.Errorf("bar chart missing %q", want)
		}
	}
	if err := BarChartSVG(io.Discard, nil, "t"); err == nil {
		t.Error("empty ranking accepted")
	}
}

func TestBarChartASCII(t *testing.T) {
	var buf bytes.Buffer
	if err := BarChartASCII(&buf, rankedFixture()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "########") || !strings.Contains(out, "gatherWork") {
		t.Errorf("ASCII bars wrong:\n%s", out)
	}
	buf.Reset()
	if err := BarChartASCII(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no callstacks") {
		t.Error("empty ranking not marked")
	}
}

func TestCompactCallstack(t *testing.T) {
	if got := CompactCallstack("a;b;c;d", 2); got != "a;b;…" {
		t.Errorf("CompactCallstack = %q", got)
	}
	if got := CompactCallstack("a;b", 2); got != "a;b" {
		t.Errorf("short path mangled: %q", got)
	}
	if got := CompactCallstack("a", 3); got != "a" {
		t.Errorf("single frame mangled: %q", got)
	}
}

func BenchmarkEventGraphSVG(b *testing.B) {
	g := testGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := EventGraphSVG(io.Discard, g, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}
