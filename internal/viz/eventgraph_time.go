package viz

import (
	"fmt"
	"io"

	"github.com/anacin-go/anacinx/internal/graph"
	"github.com/anacin-go/anacinx/internal/vtime"
)

// EventGraphTimeSVG renders g with the x axis proportional to VIRTUAL
// TIME instead of event position: message edges become slanted by their
// latency, and injected congestion delays are visible as long flat
// arrows — the picture that shows students *why* the arrival order
// flipped, not just that it did. Rows per rank and the node color
// legend match EventGraphSVG.
func EventGraphTimeSVG(w io.Writer, g *graph.Graph, title string) error {
	const (
		marginL = 90.0
		marginR = 50.0
		marginT = 56.0
		rowH    = 56.0
		radius  = 7.0
		plotW   = 860.0
	)
	ranks := g.Ranks()
	var maxT vtime.Time
	for i := range g.Nodes {
		if g.Nodes[i].Time > maxT {
			maxT = g.Nodes[i].Time
		}
	}
	if maxT == 0 {
		maxT = 1
	}
	width := marginL + plotW + marginR
	height := marginT + float64(ranks)*rowH + 70
	s := NewSVG(width, height)
	s.Text(width/2, 26, "middle", `font-size="16" fill="black"`, title)

	pos := func(n *graph.Node) (float64, float64) {
		x := marginL + float64(n.Time)/float64(maxT)*plotW
		return x, marginT + float64(n.Rank)*rowH
	}

	// Row labels, guides, and a time axis.
	for r := 0; r < ranks; r++ {
		y := marginT + float64(r)*rowH
		s.Text(marginL-16, y+4, "end", `font-size="12" fill="#333"`, fmt.Sprintf("rank %d", r))
		s.Line(marginL, y, marginL+plotW, y, `stroke="#eee" stroke-width="1"`)
	}
	axisY := marginT + float64(ranks)*rowH
	s.Line(marginL, axisY, marginL+plotW, axisY, `stroke="black" stroke-width="1"`)
	for i := 0; i <= 5; i++ {
		tv := vtime.Time(float64(maxT) * float64(i) / 5)
		x := marginL + plotW*float64(i)/5
		s.Line(x, axisY, x, axisY+4, `stroke="black" stroke-width="1"`)
		s.Text(x, axisY+18, "middle", `font-size="11" fill="#333"`, tv.String())
	}
	s.Text(marginL+plotW/2, axisY+36, "middle", `font-size="12" fill="#333"`, "virtual time")

	for i := range g.Edges {
		e := &g.Edges[i]
		x1, y1 := pos(&g.Nodes[e.From])
		x2, y2 := pos(&g.Nodes[e.To])
		if e.Kind == graph.EdgeProgram {
			s.Line(x1, y1, x2, y2, `stroke="#555" stroke-width="1.2"`)
		} else {
			s.Arrow(x1, y1+sign(y2-y1)*radius, x2, y2-sign(y2-y1)*radius,
				`stroke="#c06030" stroke-width="1.2"`)
		}
	}
	for i := range g.Nodes {
		n := &g.Nodes[i]
		x, y := pos(n)
		s.Circle(x, y, radius, fmt.Sprintf(`fill="%s" stroke="black" stroke-width="0.6"`, nodeColor(n)))
	}
	_, err := s.WriteTo(w)
	return err
}
