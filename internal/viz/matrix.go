package viz

import (
	"fmt"
	"io"
	"strings"
)

// Communication-matrix heatmap: cell (src, dst) shows how many messages
// src sent to dst during an execution — the standard at-a-glance view
// of a communication pattern's shape (all-to-all fills the plane, a
// message race fills one column, a ring fills two diagonals).

// CommMatrixSVG renders the matrix as a heatmap with counts in cells.
func CommMatrixSVG(w io.Writer, counts [][]int, title string) error {
	n := len(counts)
	if n == 0 {
		return fmt.Errorf("viz: empty communication matrix")
	}
	for r, row := range counts {
		if len(row) != n {
			return fmt.Errorf("viz: matrix row %d has %d columns for %d ranks", r, len(row), n)
		}
	}
	const (
		marginL = 80.0
		marginT = 80.0
		maxCell = 40.0
		minCell = 14.0
	)
	cell := 560.0 / float64(n)
	if cell > maxCell {
		cell = maxCell
	}
	if cell < minCell {
		cell = minCell
	}
	width := marginL + float64(n)*cell + 30
	height := marginT + float64(n)*cell + 30
	s := NewSVG(width, height)
	s.Text(width/2, 26, "middle", `font-size="15" fill="black"`, title)
	s.Text(marginL+float64(n)*cell/2, marginT-34, "middle", `font-size="12" fill="#333"`, "destination rank")
	s.Text(20, marginT+float64(n)*cell/2, "middle",
		fmt.Sprintf(`font-size="12" fill="#333" transform="rotate(-90 20 %.1f)"`, marginT+float64(n)*cell/2),
		"source rank")

	max := 0
	for _, row := range counts {
		for _, c := range row {
			if c > max {
				max = c
			}
		}
	}
	labelEvery := 1
	if n > 16 {
		labelEvery = n / 8
	}
	for i := 0; i < n; i++ {
		if i%labelEvery == 0 {
			s.Text(marginL+(float64(i)+0.5)*cell, marginT-8, "middle", `font-size="10" fill="#333"`, fmt.Sprint(i))
			s.Text(marginL-6, marginT+(float64(i)+0.72)*cell, "end", `font-size="10" fill="#333"`, fmt.Sprint(i))
		}
	}
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			x := marginL + float64(dst)*cell
			y := marginT + float64(src)*cell
			s.Rect(x, y, cell, cell, fmt.Sprintf(`fill="%s" stroke="#ddd" stroke-width="0.5"`,
				heatColor(counts[src][dst], max)))
			if counts[src][dst] > 0 && cell >= 18 {
				s.Text(x+cell/2, y+cell*0.68, "middle", `font-size="9" fill="#222"`,
					fmt.Sprint(counts[src][dst]))
			}
		}
	}
	_, err := s.WriteTo(w)
	return err
}

// heatColor maps a count to a white→orange→red ramp.
func heatColor(count, max int) string {
	if count == 0 || max == 0 {
		return "#ffffff"
	}
	f := float64(count) / float64(max)
	// white (255,255,255) → orange (230,140,60) → dark red (150,30,30)
	var red, green, blue int
	if f < 0.5 {
		t := f * 2
		red = int(255 - t*25)
		green = int(255 - t*115)
		blue = int(255 - t*195)
	} else {
		t := (f - 0.5) * 2
		red = int(230 - t*80)
		green = int(140 - t*110)
		blue = int(60 - t*30)
	}
	return fmt.Sprintf("#%02x%02x%02x", red, green, blue)
}

// CommMatrixASCII renders the matrix as aligned text, "." for zero.
func CommMatrixASCII(w io.Writer, counts [][]int) error {
	n := len(counts)
	var b strings.Builder
	b.WriteString("      dst:")
	for d := 0; d < n; d++ {
		fmt.Fprintf(&b, " %3d", d)
	}
	b.WriteByte('\n')
	for src, row := range counts {
		fmt.Fprintf(&b, "src %3d:  ", src)
		for _, c := range row {
			if c == 0 {
				b.WriteString("   .")
			} else {
				fmt.Fprintf(&b, " %3d", c)
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
