package viz

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/anacin-go/anacinx/internal/graph"
)

// Event-graph rendering follows the paper's visual encoding (Figs. 1–4):
// one horizontal row per MPI rank; green circles for process start/end,
// blue for sends, red for receives (violet for collectives); solid
// horizontal edges for program order and colored arrows for messages.

// Node fill colors, matching the legend repeated under every event-graph
// figure in the paper.
const (
	colorStartEnd   = "#3faf5f" // green: init / finalize
	colorSend       = "#3f6fdf" // blue: send / isend
	colorRecv       = "#df4f3f" // red: recv / wait
	colorCollective = "#8f5fdf" // violet: collectives
	colorOther      = "#9f9f9f"
)

func nodeColor(n *graph.Node) string {
	switch {
	case n.Kind.IsSend():
		return colorSend
	case n.Kind.IsReceive():
		return colorRecv
	case n.Kind.IsCollective():
		return colorCollective
	case n.Label == "init" || n.Label == "finalize":
		return colorStartEnd
	default:
		return colorOther
	}
}

// EventGraphSVG renders g in the paper's row-per-rank layout and writes
// the SVG document to w. Events are spaced by their per-rank sequence
// position (logical layout, like the paper's figures), not by virtual
// time; see EventGraphTimeSVG for the time-true layout.
func EventGraphSVG(w io.Writer, g *graph.Graph, title string) error {
	const (
		marginL = 90.0
		marginT = 56.0
		colW    = 46.0
		rowH    = 56.0
		radius  = 9.0
	)
	ranks := g.Ranks()
	maxSeq := 0
	for i := range g.Nodes {
		if g.Nodes[i].Seq > maxSeq {
			maxSeq = g.Nodes[i].Seq
		}
	}
	width := marginL + float64(maxSeq+1)*colW + 40
	height := marginT + float64(ranks)*rowH + 40
	s := NewSVG(width, height)
	s.Text(width/2, 26, "middle", `font-size="16" fill="black"`, title)

	pos := func(n *graph.Node) (float64, float64) {
		return marginL + float64(n.Seq)*colW, marginT + float64(n.Rank)*rowH
	}

	// Row labels and faint row guide lines.
	for r := 0; r < ranks; r++ {
		y := marginT + float64(r)*rowH
		s.Text(marginL-16, y+4, "end", `font-size="12" fill="#333"`, fmt.Sprintf("rank %d", r))
		s.Line(marginL-8, y, width-30, y, `stroke="#eee" stroke-width="1"`)
	}

	// Edges under nodes: program edges as grey lines, message edges as
	// arrows colored by destination.
	for i := range g.Edges {
		e := &g.Edges[i]
		x1, y1 := pos(&g.Nodes[e.From])
		x2, y2 := pos(&g.Nodes[e.To])
		if e.Kind == graph.EdgeProgram {
			s.Line(x1+radius, y1, x2-radius, y2, `stroke="#555" stroke-width="1.4"`)
		} else {
			s.Arrow(x1, y1+sign(y2-y1)*radius, x2, y2-sign(y2-y1)*radius,
				`stroke="#c06030" stroke-width="1.3"`)
		}
	}

	// Nodes on top.
	for i := range g.Nodes {
		n := &g.Nodes[i]
		x, y := pos(n)
		s.Circle(x, y, radius, fmt.Sprintf(`fill="%s" stroke="black" stroke-width="0.7"`, nodeColor(n)))
	}

	// Legend.
	legendY := height - 18.0
	legend := []struct {
		color, label string
	}{
		{colorStartEnd, "start/end"},
		{colorSend, "send"},
		{colorRecv, "receive"},
		{colorCollective, "collective"},
	}
	x := marginL
	for _, item := range legend {
		s.Circle(x, legendY, 6, fmt.Sprintf(`fill="%s" stroke="black" stroke-width="0.5"`, item.color))
		s.Text(x+12, legendY+4, "start", `font-size="11" fill="#333"`, item.label)
		x += 110
	}

	_, err := s.WriteTo(w)
	return err
}

func sign(v float64) float64 {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// EventGraphASCII writes a terminal sketch of g: one line per rank with
// one glyph per event, followed by the message edges. Glyphs: o =
// start/end, S = send, R = receive, W = wait completion, C = collective,
// . = other.
func EventGraphASCII(w io.Writer, g *graph.Graph) error {
	ranks := g.Ranks()
	rows := make([][]byte, ranks)
	for i := range g.Nodes {
		n := &g.Nodes[i]
		row := rows[n.Rank]
		for len(row) <= n.Seq {
			row = append(row, ' ')
		}
		row[n.Seq] = asciiGlyph(n)
		rows[n.Rank] = row
	}
	var b strings.Builder
	for r := 0; r < ranks; r++ {
		fmt.Fprintf(&b, "rank %2d: ", r)
		for i, glyph := range rows[r] {
			if i > 0 {
				b.WriteByte('-')
			}
			b.WriteByte(glyph)
		}
		b.WriteByte('\n')
	}
	// Message edges, sorted by destination position for readability.
	type msgEdge struct{ fr, fs, tr, ts int }
	var msgs []msgEdge
	for i := range g.Edges {
		e := &g.Edges[i]
		if e.Kind != graph.EdgeMessage {
			continue
		}
		from, to := &g.Nodes[e.From], &g.Nodes[e.To]
		msgs = append(msgs, msgEdge{from.Rank, from.Seq, to.Rank, to.Seq})
	}
	sort.Slice(msgs, func(i, j int) bool {
		if msgs[i].tr != msgs[j].tr {
			return msgs[i].tr < msgs[j].tr
		}
		if msgs[i].ts != msgs[j].ts {
			return msgs[i].ts < msgs[j].ts
		}
		if msgs[i].fr != msgs[j].fr {
			return msgs[i].fr < msgs[j].fr
		}
		return msgs[i].fs < msgs[j].fs
	})
	if len(msgs) > 0 {
		b.WriteString("messages (src#event -> dst#event):\n")
		for _, m := range msgs {
			fmt.Fprintf(&b, "  %d#%d -> %d#%d\n", m.fr, m.fs, m.tr, m.ts)
		}
	}
	b.WriteString("legend: o start/end, S send, R recv, W wait, C collective\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func asciiGlyph(n *graph.Node) byte {
	switch {
	case n.Kind.IsSend():
		return 'S'
	case n.Label == "recv":
		return 'R'
	case n.Kind.IsReceive(): // wait completions
		return 'W'
	case n.Kind.IsCollective():
		return 'C'
	case n.Label == "init" || n.Label == "finalize":
		return 'o'
	default:
		return '.'
	}
}
