// Package viz renders the three ANACIN-X visualizations — event graphs
// (paper Figs. 1–4), kernel-distance violin plots (Figs. 5–7), and
// callstack frequency bar charts (Fig. 8) — as standalone SVG documents
// and as plain-text (ASCII) sketches for terminal use in the course
// module. Only the standard library is used; the SVG builder below is
// the minimal subset the renderers need.
package viz

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// SVG accumulates a single SVG document. Create with NewSVG, draw, then
// WriteTo.
type SVG struct {
	width, height float64
	body          strings.Builder
}

// NewSVG starts a document of the given pixel size with a white
// background.
func NewSVG(width, height float64) *SVG {
	s := &SVG{width: width, height: height}
	s.Rect(0, 0, width, height, `fill="white"`)
	return s
}

// Width returns the document width.
func (s *SVG) Width() float64 { return s.width }

// Height returns the document height.
func (s *SVG) Height() float64 { return s.height }

// Rect draws a rectangle. style is a raw attribute string such as
// `fill="#eee" stroke="black"`.
func (s *SVG) Rect(x, y, w, h float64, style string) {
	fmt.Fprintf(&s.body, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" %s/>`+"\n", x, y, w, h, style)
}

// Circle draws a circle.
func (s *SVG) Circle(cx, cy, r float64, style string) {
	fmt.Fprintf(&s.body, `<circle cx="%.2f" cy="%.2f" r="%.2f" %s/>`+"\n", cx, cy, r, style)
}

// Line draws a line segment.
func (s *SVG) Line(x1, y1, x2, y2 float64, style string) {
	fmt.Fprintf(&s.body, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" %s/>`+"\n", x1, y1, x2, y2, style)
}

// Point is a 2-D coordinate for polygons and polylines.
type Point struct{ X, Y float64 }

// Polygon draws a closed filled polygon.
func (s *SVG) Polygon(pts []Point, style string) {
	if len(pts) == 0 {
		return
	}
	var b strings.Builder
	for i, p := range pts {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.2f,%.2f", p.X, p.Y)
	}
	fmt.Fprintf(&s.body, `<polygon points="%s" %s/>`+"\n", b.String(), style)
}

// Polyline draws an open poly-segment path.
func (s *SVG) Polyline(pts []Point, style string) {
	if len(pts) == 0 {
		return
	}
	var b strings.Builder
	for i, p := range pts {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.2f,%.2f", p.X, p.Y)
	}
	fmt.Fprintf(&s.body, `<polyline points="%s" fill="none" %s/>`+"\n", b.String(), style)
}

// Text draws a string. anchor is "start", "middle", or "end".
func (s *SVG) Text(x, y float64, anchor, style, text string) {
	fmt.Fprintf(&s.body, `<text x="%.2f" y="%.2f" text-anchor="%s" %s>%s</text>`+"\n",
		x, y, anchor, style, escapeXML(text))
}

// Arrow draws a line with a small triangular head at the destination.
func (s *SVG) Arrow(x1, y1, x2, y2 float64, style string) {
	s.Line(x1, y1, x2, y2, style)
	dx, dy := x2-x1, y2-y1
	l := dx*dx + dy*dy
	if l == 0 {
		return
	}
	inv := 1 / math.Sqrt(l)
	ux, uy := dx*inv, dy*inv
	const headLen, headW = 6.0, 3.0
	bx, by := x2-ux*headLen, y2-uy*headLen
	s.Polygon([]Point{
		{x2, y2},
		{bx - uy*headW, by + ux*headW},
		{bx + uy*headW, by - ux*headW},
	}, arrowHeadStyle(style))
}

// arrowHeadStyle derives a fill style from a stroke style by reusing
// the stroke color when present.
func arrowHeadStyle(style string) string {
	const key = `stroke="`
	if i := strings.Index(style, key); i >= 0 {
		rest := style[i+len(key):]
		if j := strings.IndexByte(rest, '"'); j >= 0 {
			return fmt.Sprintf(`fill="%s" stroke="none"`, rest[:j])
		}
	}
	return `fill="black" stroke="none"`
}

// WriteTo emits the complete document.
func (s *SVG) WriteTo(w io.Writer) (int64, error) {
	header := fmt.Sprintf(`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f" font-family="sans-serif">`+"\n",
		s.width, s.height, s.width, s.height)
	n, err := io.WriteString(w, header+s.body.String()+"</svg>\n")
	return int64(n), err
}

// String returns the document as a string.
func (s *SVG) String() string {
	var b strings.Builder
	s.WriteTo(&b) //nolint:errcheck // strings.Builder cannot fail
	return b.String()
}

func escapeXML(t string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(t)
}
