package viz

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestCommMatrixSVG(t *testing.T) {
	counts := [][]int{
		{0, 3, 0},
		{1, 0, 2},
		{5, 0, 0},
	}
	var buf bytes.Buffer
	if err := CommMatrixSVG(&buf, counts, "race matrix"); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	checkWellFormedXML(t, doc)
	for _, want := range []string{"race matrix", "destination rank", "source rank", ">5<", ">3<"} {
		if !strings.Contains(doc, want) {
			t.Errorf("matrix SVG missing %q", want)
		}
	}
	// 9 cells plus the background rect.
	if got := strings.Count(doc, "<rect"); got != 10 {
		t.Errorf("%d rects, want 10", got)
	}
}

func TestCommMatrixSVGValidation(t *testing.T) {
	if err := CommMatrixSVG(io.Discard, nil, "t"); err == nil {
		t.Error("empty matrix accepted")
	}
	ragged := [][]int{{1, 2}, {3}}
	if err := CommMatrixSVG(io.Discard, ragged, "t"); err == nil {
		t.Error("ragged matrix accepted")
	}
}

func TestCommMatrixASCII(t *testing.T) {
	counts := [][]int{
		{0, 2},
		{7, 0},
	}
	var buf bytes.Buffer
	if err := CommMatrixASCII(&buf, counts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"dst:", "src   0", "src   1", "  2", "  7", "."} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII matrix missing %q:\n%s", want, out)
		}
	}
}

func TestHeatColorRamp(t *testing.T) {
	if heatColor(0, 10) != "#ffffff" {
		t.Error("zero not white")
	}
	if heatColor(5, 0) != "#ffffff" {
		t.Error("zero max not white")
	}
	lo, mid, hi := heatColor(1, 10), heatColor(5, 10), heatColor(10, 10)
	if lo == mid || mid == hi || lo == hi {
		t.Errorf("ramp not distinct: %s %s %s", lo, mid, hi)
	}
	for _, c := range []string{lo, mid, hi} {
		if len(c) != 7 || c[0] != '#' {
			t.Errorf("bad color %q", c)
		}
	}
}
