package viz

import (
	"fmt"
	"io"
	"math"
)

// Series is one line of a line plot: (x, y) pairs in x order.
type Series struct {
	Label string
	X, Y  []float64
}

// LinePlotSVG renders one or more series against shared axes — used for
// the Fig. 7 median-trend view (injected ND% on x, median kernel
// distance on y) and for ablation comparisons.
func LinePlotSVG(w io.Writer, series []Series, title, xLabel, yLabel string) error {
	if len(series) == 0 {
		return fmt.Errorf("viz: no series")
	}
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("viz: series %q has %d x for %d y", s.Label, len(s.X), len(s.Y))
		}
		if len(s.X) == 0 {
			return fmt.Errorf("viz: series %q is empty", s.Label)
		}
	}
	const (
		width   = 640.0
		height  = 420.0
		marginL = 70.0
		marginR = 130.0
		marginT = 54.0
		marginB = 64.0
	)
	s := NewSVG(width, height)
	s.Text(width/2, 26, "middle", `font-size="15" fill="black"`, title)

	xlo, xhi := math.MaxFloat64, -math.MaxFloat64
	ylo, yhi := math.MaxFloat64, -math.MaxFloat64
	for _, sr := range series {
		for i := range sr.X {
			xlo, xhi = math.Min(xlo, sr.X[i]), math.Max(xhi, sr.X[i])
			ylo, yhi = math.Min(ylo, sr.Y[i]), math.Max(yhi, sr.Y[i])
		}
	}
	if ylo > 0 {
		ylo = 0 // distances and medians read best anchored at zero
	}
	if xhi == xlo {
		xhi = xlo + 1
	}
	if yhi == ylo {
		yhi = ylo + 1
	}

	plotL, plotR := marginL, width-marginR
	plotT, plotB := marginT, height-marginB
	xOf := func(v float64) float64 { return plotL + (v-xlo)/(xhi-xlo)*(plotR-plotL) }
	yOf := func(v float64) float64 { return plotB - (v-ylo)/(yhi-ylo)*(plotB-plotT) }

	// Axes and ticks.
	s.Line(plotL, plotT, plotL, plotB, `stroke="black" stroke-width="1"`)
	s.Line(plotL, plotB, plotR, plotB, `stroke="black" stroke-width="1"`)
	for i := 0; i <= 5; i++ {
		xv := xlo + (xhi-xlo)*float64(i)/5
		yv := ylo + (yhi-ylo)*float64(i)/5
		s.Line(xOf(xv), plotB, xOf(xv), plotB+4, `stroke="black" stroke-width="1"`)
		s.Text(xOf(xv), plotB+18, "middle", `font-size="11" fill="#333"`, formatTick(xv))
		s.Line(plotL-4, yOf(yv), plotL, yOf(yv), `stroke="black" stroke-width="1"`)
		s.Text(plotL-8, yOf(yv)+4, "end", `font-size="11" fill="#333"`, formatTick(yv))
	}
	s.Text((plotL+plotR)/2, height-16, "middle", `font-size="12" fill="#333"`, xLabel)
	s.Text(16, (plotT+plotB)/2, "middle",
		fmt.Sprintf(`font-size="12" fill="#333" transform="rotate(-90 16 %.1f)"`, (plotT+plotB)/2), yLabel)

	palette := []string{"#3a6698", "#c06030", "#3faf5f", "#8f5fdf", "#af3f5f", "#5f8f9f"}
	for si, sr := range series {
		color := palette[si%len(palette)]
		pts := make([]Point, len(sr.X))
		for i := range sr.X {
			pts[i] = Point{xOf(sr.X[i]), yOf(sr.Y[i])}
		}
		s.Polyline(pts, fmt.Sprintf(`stroke="%s" stroke-width="2"`, color))
		for _, p := range pts {
			s.Circle(p.X, p.Y, 3, fmt.Sprintf(`fill="%s" stroke="none"`, color))
		}
		ly := plotT + 18*float64(si)
		s.Line(plotR+10, ly, plotR+30, ly, fmt.Sprintf(`stroke="%s" stroke-width="2"`, color))
		s.Text(plotR+36, ly+4, "start", `font-size="11" fill="#333"`, sr.Label)
	}
	_, err := s.WriteTo(w)
	return err
}
