package trace

import (
	"bytes"
	"path/filepath"
	"testing"
	"testing/quick"

	"github.com/anacin-go/anacinx/internal/vtime"
)

func TestBinaryRoundTrip(t *testing.T) {
	tr := buildValidTrace()
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash() != tr.Hash() {
		t.Error("binary round trip changed the trace hash")
	}
	if got.Meta != tr.Meta {
		t.Errorf("meta changed: %+v vs %+v", got.Meta, tr.Meta)
	}
}

func TestBinaryRoundTripPreservesCallstacks(t *testing.T) {
	tr := buildValidTrace()
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Events[1][1].CallstackKey()
	if k := got.Events[1][1].CallstackKey(); k != want {
		t.Errorf("callstack key %q, want %q", k, want)
	}
	// Events without callstacks stay empty.
	if len(got.Events[0][0].Callstack) != 0 {
		t.Errorf("init grew a callstack: %v", got.Events[0][0].Callstack)
	}
}

func TestBinaryFileRoundTrip(t *testing.T) {
	tr := buildValidTrace()
	path := filepath.Join(t.TempDir(), "trace.bin")
	if err := tr.SaveBinaryFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash() != tr.Hash() {
		t.Error("binary file round trip changed the trace")
	}
}

func TestBinarySmallerThanJSON(t *testing.T) {
	tr := buildValidTrace()
	var jsonBuf, binBuf bytes.Buffer
	if err := tr.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteBinary(&binBuf); err != nil {
		t.Fatal(err)
	}
	if binBuf.Len() >= jsonBuf.Len() {
		t.Errorf("binary (%d B) not smaller than JSON (%d B)", binBuf.Len(), jsonBuf.Len())
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewBufferString("not a trace at all")); err == nil {
		t.Error("garbage magic accepted")
	}
	// Valid magic, truncated body.
	var buf bytes.Buffer
	buf.Write(binaryMagic[:])
	buf.WriteByte(5) // pattern length 5... then EOF (varint 5 is 0x0a... whatever, truncation)
	if _, err := ReadBinary(&buf); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestBinaryRejectsCorruptTable(t *testing.T) {
	tr := buildValidTrace()
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	// Flip a byte near the end (event data) repeatedly until a decode
	// error or a hash change is observed; silent identical decode would
	// mean the format ignores content.
	raw := buf.Bytes()
	detected := false
	for i := len(raw) - 1; i > len(raw)-10 && i > 8; i-- {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x7f
		got, err := ReadBinary(bytes.NewReader(mut))
		if err != nil || got.Hash() != tr.Hash() {
			detected = true
			break
		}
	}
	if !detected {
		t.Error("tail corruption never detected")
	}
}

// TestQuickBinaryRoundTripRandomTraces round-trips randomly generated
// (valid) traces through the binary codec.
func TestQuickBinaryRoundTripRandomTraces(t *testing.T) {
	f := func(seed int64, procsRaw, eventsRaw uint8) bool {
		rng := vtime.NewRNG(seed)
		procs := int(procsRaw)%5 + 1
		tr := New(Meta{Pattern: "fuzz", Procs: procs, Nodes: 1, Seed: seed})
		var msgID int64
		for rank := 0; rank < procs; rank++ {
			lamport := int64(0)
			clock := vtime.Time(0)
			n := int(eventsRaw) % 12
			for i := 0; i < n; i++ {
				lamport++
				clock = clock.Add(vtime.Duration(rng.Intn(1000) + 1))
				ev := Event{Rank: rank, Kind: KindSend, Peer: (rank + 1) % procs,
					Tag: rng.Intn(8), Size: rng.Intn(64), MsgID: msgID,
					ChanSeq: i, Time: clock, Lamport: lamport}
				if rng.Bernoulli(0.5) {
					ev.Callstack = []string{"a.b", "c.d"}
				}
				msgID++
				tr.Append(ev)
			}
		}
		var buf bytes.Buffer
		if err := tr.WriteBinary(&buf); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return got.Hash() == tr.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickBinaryNeverPanicsOnCorruption mutates valid encodings at
// random offsets: ReadBinary must return an error or a trace, never
// panic or hang.
func TestQuickBinaryNeverPanicsOnCorruption(t *testing.T) {
	base := buildValidTrace()
	var buf bytes.Buffer
	if err := base.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	f := func(seed int64, flips uint8) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		rng := vtime.NewRNG(seed)
		mut := append([]byte(nil), raw...)
		for i := 0; i < int(flips)%8+1; i++ {
			mut[rng.Intn(len(mut))] ^= byte(rng.Intn(255) + 1)
		}
		_, _ = ReadBinary(bytes.NewReader(mut)) //nolint:errcheck // error or success both fine
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBinaryWrite(b *testing.B) {
	tr := buildValidTrace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := tr.WriteBinary(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
