// Package trace defines the execution-trace model recorded by the
// simulated MPI runtime and consumed by the event-graph builder.
//
// A Trace is the Go analogue of the per-rank dumpi/PnMPI trace files that
// ANACIN-X records for a real MPI execution: one ordered stream of MPI
// events per rank, where each event carries the call kind, the peer,
// the matched message identity, a Lamport timestamp (logical time), a
// virtual timestamp, and the callstack of application frames that issued
// the call. Callstacks are what the root-source analysis (paper Fig. 8)
// ranks; message identities are what the event-graph builder joins on.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"github.com/anacin-go/anacinx/internal/vtime"
)

// EventKind identifies the MPI operation an event records.
type EventKind uint8

// Event kinds. P2P kinds come first; collective kinds follow. The
// numeric values are part of the serialized trace format and must not
// be reordered.
const (
	KindInit EventKind = iota
	KindFinalize
	KindSend
	KindIsend
	KindRecv
	KindIrecv
	KindWait
	KindBarrier
	KindBcast
	KindReduce
	KindAllreduce
	KindGather
	KindScatter
	KindAllgather
	KindAlltoall
	KindScan
	numKinds // sentinel; keep last
)

var kindNames = [...]string{
	KindInit:      "init",
	KindFinalize:  "finalize",
	KindSend:      "send",
	KindIsend:     "isend",
	KindRecv:      "recv",
	KindIrecv:     "irecv",
	KindWait:      "wait",
	KindBarrier:   "barrier",
	KindBcast:     "bcast",
	KindReduce:    "reduce",
	KindAllreduce: "allreduce",
	KindGather:    "gather",
	KindScatter:   "scatter",
	KindAllgather: "allgather",
	KindAlltoall:  "alltoall",
	KindScan:      "scan",
}

// String returns the lower-case MPI-style name of the kind.
func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Valid reports whether k is a defined event kind.
func (k EventKind) Valid() bool { return k < numKinds }

// IsCollective reports whether the kind is a collective operation.
func (k EventKind) IsCollective() bool { return k >= KindBarrier && k < numKinds }

// IsReceive reports whether the kind can complete a message reception.
// KindRecv events always carry the matched MsgID; KindWait events carry
// it when they completed an Irecv (and NoMsg when they completed an
// Isend). KindIrecv events mark the posting only and never carry a
// MsgID — the match is reported by the corresponding Wait.
func (k EventKind) IsReceive() bool { return k == KindRecv || k == KindWait }

// IsSend reports whether the kind produces a message (send-side P2P).
func (k EventKind) IsSend() bool { return k == KindSend || k == KindIsend }

// ParseKind converts a kind name (as produced by String) back to the
// EventKind. It returns an error for unknown names.
func ParseKind(s string) (EventKind, error) {
	for k, name := range kindNames {
		if name == s {
			return EventKind(k), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown event kind %q", s)
}

// NoPeer marks events without a peer rank (Init, Finalize, Barrier, ...).
const NoPeer = -1

// NoMsg marks events that do not carry a message identity.
const NoMsg = -1

// Event is one recorded MPI call on one rank.
type Event struct {
	// Rank is the MPI rank that issued the call.
	Rank int `json:"rank"`
	// Seq is the 0-based position of the event in its rank's stream.
	Seq int `json:"seq"`
	// Kind is the MPI operation.
	Kind EventKind `json:"kind"`
	// Peer is the remote rank for P2P operations, the root for rooted
	// collectives, or NoPeer.
	Peer int `json:"peer"`
	// Tag is the MPI message tag, or 0 when not applicable.
	Tag int `json:"tag"`
	// Size is the message payload size in bytes (0 when not applicable).
	Size int `json:"size"`
	// MsgID identifies the message this event sent or received, or NoMsg.
	// A send and the recv that consumed its message share one MsgID;
	// the event-graph builder joins on it.
	MsgID int64 `json:"msg_id"`
	// ChanSeq is the 0-based sequence number of the message on its
	// (src rank → dst rank) channel. Unlike MsgID it is stable across
	// runs with identical per-channel send orders, which makes
	// (src, ChanSeq) the matching identity used by record-and-replay.
	ChanSeq int `json:"chan_seq"`
	// Time is the virtual time at which the call completed.
	Time vtime.Time `json:"time"`
	// Lamport is the logical (Lamport) timestamp of the event.
	Lamport int64 `json:"lamport"`
	// Callstack holds the application call-path that issued the MPI call,
	// innermost frame first, runtime and simulator frames trimmed.
	Callstack []string `json:"callstack,omitempty"`

	// ckey caches the ";"-joined CallstackKey when the callstack came
	// through the interner (SetStack) or a binary trace's string table.
	// It is deliberately unexported and excluded from serialization:
	// the wire formats carry only Callstack, and CallstackKey falls
	// back to joining it when no cached key is present (hand-built
	// events, JSON-decoded traces).
	ckey string
}

// SetStack attaches an interned callstack to the event: Callstack
// aliases st.Frames (shared, must not be mutated) and CallstackKey
// returns st.Key without re-joining the frames.
func (e *Event) SetStack(st Stack) {
	e.Callstack = st.Frames
	e.ckey = st.Key
}

// CallstackKey returns the callstack as a single ";"-joined string,
// innermost frame first, suitable for use as a map key. Events with no
// recorded callstack return "(unknown)". For events recorded through
// the interner the key is precomputed and shared; otherwise it is
// joined on demand.
func (e *Event) CallstackKey() string {
	if e.ckey != "" {
		return e.ckey
	}
	if len(e.Callstack) == 0 {
		return "(unknown)"
	}
	n := len(e.Callstack) - 1
	for _, f := range e.Callstack {
		n += len(f)
	}
	var b strings.Builder
	b.Grow(n)
	b.WriteString(e.Callstack[0])
	for _, f := range e.Callstack[1:] {
		b.WriteByte(';')
		b.WriteString(f)
	}
	return b.String()
}

// Label returns the node label used by graph kernels: the operation name.
// ANACIN-X labels event-graph vertices with the MPI function that
// produced them; kernel similarity is computed over these labels.
func (e *Event) Label() string { return e.Kind.String() }

// Meta describes the run that produced a trace. It is carried alongside
// the events so analysis output can be labelled without out-of-band
// bookkeeping.
type Meta struct {
	Pattern    string  `json:"pattern"`
	Procs      int     `json:"procs"`
	Nodes      int     `json:"nodes"`
	Iterations int     `json:"iterations"`
	MsgSize    int     `json:"msg_size"`
	NDPercent  float64 `json:"nd_percent"`
	Seed       int64   `json:"seed"`
}

// Trace is the complete record of one simulated execution: one ordered
// event stream per rank.
type Trace struct {
	Meta   Meta      `json:"meta"`
	Events [][]Event `json:"events"` // indexed by rank, then by Seq

	// arena is the unconsumed tail of the current carving chunk. When a
	// capacity hint is set, each rank's stream is carved from shared
	// chunks lazily on its first Append, so a large-P trace pays for the
	// ranks that record events, not Procs × hint up front. Unexported
	// and absent from the wire formats: a decoded trace simply appends
	// without an arena.
	arena       []Event
	perRankHint int
}

// arenaChunkEvents bounds one arena chunk (~4096 events ≈ 0.5 MiB), so
// lazily touched ranks share a handful of large allocations instead of
// one small one each.
const arenaChunkEvents = 4096

// New returns an empty trace for the given number of ranks.
func New(meta Meta) *Trace {
	return NewWithCapacity(meta, 0)
}

// NewWithCapacity returns an empty trace whose rank streams are carved
// with perRankHint capacity from shared arena chunks, each rank lazily
// on its first Append. The hint is a capacity, not a limit: streams
// still grow past it (a stream that outgrows its carving is copied out
// of the arena by the ordinary append growth). Callers that know the
// approximate event count per rank (the simulator, bulk converters)
// use it to avoid the repeated append-doubling copies of a cold
// stream; perRankHint <= 0 behaves like New.
func NewWithCapacity(meta Meta, perRankHint int) *Trace {
	t := &Trace{Meta: meta, Events: make([][]Event, meta.Procs)}
	if perRankHint > 0 {
		t.perRankHint = perRankHint
	}
	return t
}

// Procs returns the number of ranks in the trace.
func (t *Trace) Procs() int { return len(t.Events) }

// carve cuts a zero-length, hint-capacity stream from the arena,
// refilling it with a fresh chunk when the tail runs short. The carved
// slice's capacity is clamped to the carving, so appends past the hint
// reallocate instead of bleeding into the next rank's events.
func (t *Trace) carve() []Event {
	hint := t.perRankHint
	if len(t.arena) < hint {
		n := arenaChunkEvents
		if n < hint {
			n = hint
		}
		t.arena = make([]Event, n)
	}
	s := t.arena[:0:hint]
	t.arena = t.arena[hint:]
	return s
}

// Append adds an event to its rank's stream, assigning Seq.
// It panics if the event's rank is out of range, which would indicate a
// runtime bug rather than a recoverable condition.
func (t *Trace) Append(e Event) {
	if e.Rank < 0 || e.Rank >= len(t.Events) {
		panic(fmt.Sprintf("trace: event rank %d out of range [0,%d)", e.Rank, len(t.Events)))
	}
	evs := t.Events[e.Rank]
	if evs == nil && t.perRankHint > 0 {
		evs = t.carve()
	}
	e.Seq = len(evs)
	t.Events[e.Rank] = append(evs, e)
}

// NumEvents returns the total event count across all ranks.
func (t *Trace) NumEvents() int {
	n := 0
	for _, evs := range t.Events {
		n += len(evs)
	}
	return n
}

// MaxLamport returns the largest Lamport timestamp in the trace, or 0
// for an empty trace.
func (t *Trace) MaxLamport() int64 {
	var max int64
	for _, evs := range t.Events {
		for i := range evs {
			if evs[i].Lamport > max {
				max = evs[i].Lamport
			}
		}
	}
	return max
}

// Validate checks structural invariants:
//   - per-rank Seq values are dense and ordered;
//   - virtual times are non-decreasing within a rank;
//   - Lamport clocks strictly increase within a rank;
//   - every received MsgID was sent exactly once, and no message is
//     received twice;
//   - event kinds are defined.
//
// It returns the first violation found.
func (t *Trace) Validate() error {
	sent := make(map[int64]int)  // MsgID -> sending rank
	recvd := make(map[int64]int) // MsgID -> receiving rank
	for rank, evs := range t.Events {
		var lastTime vtime.Time
		var lastLamport int64
		for i := range evs {
			e := &evs[i]
			if !e.Kind.Valid() {
				return fmt.Errorf("rank %d event %d: invalid kind %d", rank, i, e.Kind)
			}
			if e.Rank != rank {
				return fmt.Errorf("rank %d event %d: recorded rank %d", rank, i, e.Rank)
			}
			if e.Seq != i {
				return fmt.Errorf("rank %d event %d: seq %d not dense", rank, i, e.Seq)
			}
			if e.Time < lastTime {
				return fmt.Errorf("rank %d event %d: time %v before predecessor %v", rank, i, e.Time, lastTime)
			}
			if i > 0 && e.Lamport <= lastLamport {
				return fmt.Errorf("rank %d event %d: lamport %d not after predecessor %d", rank, i, e.Lamport, lastLamport)
			}
			lastTime, lastLamport = e.Time, e.Lamport
			if e.MsgID != NoMsg {
				switch {
				case e.Kind.IsSend():
					if prev, dup := sent[e.MsgID]; dup {
						return fmt.Errorf("msg %d sent twice (ranks %d and %d)", e.MsgID, prev, rank)
					}
					sent[e.MsgID] = rank
				case e.Kind.IsReceive():
					if prev, dup := recvd[e.MsgID]; dup {
						return fmt.Errorf("msg %d received twice (ranks %d and %d)", e.MsgID, prev, rank)
					}
					recvd[e.MsgID] = rank
				}
			}
		}
	}
	for id := range recvd {
		if _, ok := sent[id]; !ok {
			return fmt.Errorf("msg %d received but never sent", id)
		}
	}
	return nil
}

// MatchedPairs returns the number of send events whose message was
// consumed by a receive in the same trace.
func (t *Trace) MatchedPairs() int {
	recvd := make(map[int64]bool)
	for _, evs := range t.Events {
		for i := range evs {
			if evs[i].Kind.IsReceive() && evs[i].MsgID != NoMsg {
				recvd[evs[i].MsgID] = true
			}
		}
	}
	n := 0
	for _, evs := range t.Events {
		for i := range evs {
			if evs[i].Kind.IsSend() && recvd[evs[i].MsgID] {
				n++
			}
		}
	}
	return n
}

// KindCounts returns how many events of each kind the trace contains.
func (t *Trace) KindCounts() map[EventKind]int {
	counts := make(map[EventKind]int)
	for _, evs := range t.Events {
		for i := range evs {
			counts[evs[i].Kind]++
		}
	}
	return counts
}

// CommMatrix returns counts[src][dst] = number of messages src sent to
// dst (counting traced sends only, not collective plumbing).
func (t *Trace) CommMatrix() [][]int {
	n := t.Procs()
	counts := make([][]int, n)
	for i := range counts {
		counts[i] = make([]int, n)
	}
	for rank, evs := range t.Events {
		for i := range evs {
			e := &evs[i]
			if e.Kind.IsSend() && e.Peer >= 0 && e.Peer < n {
				counts[rank][e.Peer]++
			}
		}
	}
	return counts
}

// Callstacks returns the distinct callstack keys in the trace, sorted.
func (t *Trace) Callstacks() []string {
	set := make(map[string]bool)
	for _, evs := range t.Events {
		for i := range evs {
			set[evs[i].CallstackKey()] = true
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
