package trace

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

// buildValidTrace constructs a small well-formed 2-rank trace:
// rank 1 sends one message to rank 0.
func buildValidTrace() *Trace {
	t := New(Meta{Pattern: "test", Procs: 2, Nodes: 1, Iterations: 1, MsgSize: 1, NDPercent: 0, Seed: 7})
	t.Append(Event{Rank: 0, Kind: KindInit, Peer: NoPeer, MsgID: NoMsg, Time: 0, Lamport: 1})
	t.Append(Event{Rank: 1, Kind: KindInit, Peer: NoPeer, MsgID: NoMsg, Time: 0, Lamport: 1})
	t.Append(Event{Rank: 1, Kind: KindSend, Peer: 0, Tag: 3, Size: 8, MsgID: 0, Time: 100, Lamport: 2,
		Callstack: []string{"patterns.send", "patterns.main"}})
	t.Append(Event{Rank: 0, Kind: KindRecv, Peer: 1, Tag: 3, Size: 8, MsgID: 0, Time: 200, Lamport: 3,
		Callstack: []string{"patterns.recv", "patterns.main"}})
	t.Append(Event{Rank: 0, Kind: KindFinalize, Peer: NoPeer, MsgID: NoMsg, Time: 300, Lamport: 4})
	t.Append(Event{Rank: 1, Kind: KindFinalize, Peer: NoPeer, MsgID: NoMsg, Time: 300, Lamport: 3})
	return t
}

func TestKindString(t *testing.T) {
	cases := map[EventKind]string{
		KindInit: "init", KindSend: "send", KindRecv: "recv",
		KindBarrier: "barrier", KindAlltoall: "alltoall",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if !strings.Contains(EventKind(200).String(), "200") {
		t.Error("unknown kind should format its number")
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for k := EventKind(0); k < numKinds; k++ {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind(bogus) should fail")
	}
}

func TestKindPredicates(t *testing.T) {
	if !KindSend.IsSend() || !KindIsend.IsSend() || KindRecv.IsSend() {
		t.Error("IsSend is wrong")
	}
	if !KindRecv.IsReceive() || !KindWait.IsReceive() || KindIrecv.IsReceive() || KindSend.IsReceive() {
		t.Error("IsReceive is wrong")
	}
	if KindSend.IsCollective() || !KindBarrier.IsCollective() || !KindAlltoall.IsCollective() {
		t.Error("IsCollective is wrong")
	}
}

func TestAppendAssignsSeq(t *testing.T) {
	tr := New(Meta{Procs: 2})
	tr.Append(Event{Rank: 1, Kind: KindInit})
	tr.Append(Event{Rank: 1, Kind: KindFinalize})
	if tr.Events[1][0].Seq != 0 || tr.Events[1][1].Seq != 1 {
		t.Errorf("Seq assignment wrong: %+v", tr.Events[1])
	}
}

func TestAppendPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Append with bad rank did not panic")
		}
	}()
	New(Meta{Procs: 1}).Append(Event{Rank: 5})
}

func TestValidateAcceptsGoodTrace(t *testing.T) {
	tr := buildValidTrace()
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestValidateRejectsDuplicateRecv(t *testing.T) {
	tr := buildValidTrace()
	tr.Append(Event{Rank: 1, Kind: KindRecv, Peer: 0, MsgID: 0, Time: 400, Lamport: 5})
	if err := tr.Validate(); err == nil {
		t.Error("duplicate recv of same MsgID accepted")
	}
}

func TestValidateRejectsUnsentRecv(t *testing.T) {
	tr := New(Meta{Procs: 1})
	tr.Append(Event{Rank: 0, Kind: KindRecv, Peer: 0, MsgID: 99, Lamport: 1})
	if err := tr.Validate(); err == nil {
		t.Error("recv of never-sent MsgID accepted")
	}
}

func TestValidateRejectsTimeRegression(t *testing.T) {
	tr := New(Meta{Procs: 1})
	tr.Append(Event{Rank: 0, Kind: KindInit, MsgID: NoMsg, Time: 100, Lamport: 1})
	tr.Append(Event{Rank: 0, Kind: KindFinalize, MsgID: NoMsg, Time: 50, Lamport: 2})
	if err := tr.Validate(); err == nil {
		t.Error("time regression accepted")
	}
}

func TestValidateRejectsLamportRegression(t *testing.T) {
	tr := New(Meta{Procs: 1})
	tr.Append(Event{Rank: 0, Kind: KindInit, MsgID: NoMsg, Time: 0, Lamport: 5})
	tr.Append(Event{Rank: 0, Kind: KindFinalize, MsgID: NoMsg, Time: 1, Lamport: 5})
	if err := tr.Validate(); err == nil {
		t.Error("non-increasing lamport accepted")
	}
}

func TestValidateRejectsBadKind(t *testing.T) {
	tr := New(Meta{Procs: 1})
	tr.Append(Event{Rank: 0, Kind: EventKind(99), MsgID: NoMsg, Lamport: 1})
	if err := tr.Validate(); err == nil {
		t.Error("invalid kind accepted")
	}
}

func TestNumEventsAndCounts(t *testing.T) {
	tr := buildValidTrace()
	if n := tr.NumEvents(); n != 6 {
		t.Errorf("NumEvents = %d, want 6", n)
	}
	counts := tr.KindCounts()
	if counts[KindInit] != 2 || counts[KindSend] != 1 || counts[KindRecv] != 1 || counts[KindFinalize] != 2 {
		t.Errorf("KindCounts = %v", counts)
	}
	if tr.MatchedPairs() != 1 {
		t.Errorf("MatchedPairs = %d, want 1", tr.MatchedPairs())
	}
}

func TestMaxLamport(t *testing.T) {
	tr := buildValidTrace()
	if got := tr.MaxLamport(); got != 4 {
		t.Errorf("MaxLamport = %d, want 4", got)
	}
	if got := New(Meta{Procs: 1}).MaxLamport(); got != 0 {
		t.Errorf("empty MaxLamport = %d, want 0", got)
	}
}

func TestEventLabel(t *testing.T) {
	e := Event{Kind: KindRecv}
	if e.Label() != "recv" {
		t.Errorf("Label = %q", e.Label())
	}
}

func TestCallstackKey(t *testing.T) {
	e := Event{Callstack: []string{"a", "b", "c"}}
	if e.CallstackKey() != "a;b;c" {
		t.Errorf("CallstackKey = %q", e.CallstackKey())
	}
	empty := Event{}
	if empty.CallstackKey() != "(unknown)" {
		t.Errorf("empty CallstackKey = %q", empty.CallstackKey())
	}
}

func TestCallstacksSorted(t *testing.T) {
	tr := buildValidTrace()
	keys := tr.Callstacks()
	if len(keys) != 3 { // (unknown), recv path, send path
		t.Fatalf("Callstacks = %v", keys)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Errorf("Callstacks not sorted: %v", keys)
		}
	}
}

func TestCommMatrix(t *testing.T) {
	tr := buildValidTrace()
	m := tr.CommMatrix()
	if len(m) != 2 || len(m[0]) != 2 {
		t.Fatalf("matrix shape %dx%d", len(m), len(m[0]))
	}
	if m[1][0] != 1 || m[0][1] != 0 || m[0][0] != 0 || m[1][1] != 0 {
		t.Errorf("matrix = %v", m)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := buildValidTrace()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash() != tr.Hash() {
		t.Error("JSON round trip changed the trace hash")
	}
	if got.Meta != tr.Meta {
		t.Errorf("meta changed: %+v vs %+v", got.Meta, tr.Meta)
	}
}

func TestReadJSONRejectsMetaMismatch(t *testing.T) {
	tr := buildValidTrace()
	tr.Meta.Procs = 5 // declare more procs than streams
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJSON(&buf); err == nil {
		t.Error("meta/stream mismatch accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	tr := buildValidTrace()
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash() != tr.Hash() {
		t.Error("file round trip changed the trace hash")
	}
}

func TestHashSensitivity(t *testing.T) {
	a := buildValidTrace()
	b := buildValidTrace()
	if a.Hash() != b.Hash() {
		t.Fatal("identical traces hash differently")
	}
	b.Events[0][1].Time += 5
	if a.Hash() == b.Hash() {
		t.Error("Hash ignored a timestamp change")
	}
	if a.OrderHash() != b.OrderHash() {
		t.Error("OrderHash should ignore timestamp changes")
	}
	c := buildValidTrace()
	c.Events[0][1].Peer = 0 // pretend the recv matched a different peer
	if a.OrderHash() == c.OrderHash() {
		t.Error("OrderHash ignored a matching change")
	}
}

func TestCaptureStackTrimsRuntime(t *testing.T) {
	stack := helperOuter()
	if len(stack) == 0 {
		t.Fatal("empty stack")
	}
	for _, f := range stack {
		if strings.HasPrefix(f, "runtime.") || strings.HasPrefix(f, "testing.") {
			t.Errorf("stack contains trimmed frame %q", f)
		}
	}
	// The two helper frames must be present, innermost first.
	joined := strings.Join(stack, ";")
	if !strings.Contains(joined, "helperInner") || !strings.Contains(joined, "helperOuter") {
		t.Errorf("expected helper frames in %v", stack)
	}
	if strings.Index(joined, "helperInner") > strings.Index(joined, "helperOuter") {
		t.Errorf("frames not innermost-first: %v", stack)
	}
}

//go:noinline
func helperOuter() []string { return helperInner() }

//go:noinline
func helperInner() []string { return CaptureStack(0) }

func TestShortFuncName(t *testing.T) {
	cases := map[string]string{
		"github.com/anacin-go/anacinx/internal/patterns.(*AMG).exchange": "patterns.(*AMG).exchange",
		"main.main": "main.main",
	}
	for in, want := range cases {
		if got := shortFuncName(in); got != want {
			t.Errorf("shortFuncName(%q) = %q, want %q", in, got, want)
		}
	}
}

// Property: Append always yields a trace whose per-rank Seq is dense.
func TestQuickAppendSeqDense(t *testing.T) {
	f := func(ranks []uint8) bool {
		tr := New(Meta{Procs: 4})
		lamport := make([]int64, 4)
		for _, r := range ranks {
			rank := int(r % 4)
			lamport[rank]++
			tr.Append(Event{Rank: rank, Kind: KindInit, MsgID: NoMsg, Lamport: lamport[rank]})
		}
		for rank, evs := range tr.Events {
			for i := range evs {
				if evs[i].Seq != i || evs[i].Rank != rank {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkTraceHash(b *testing.B) {
	tr := buildValidTrace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tr.Hash()
	}
}
