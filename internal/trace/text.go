package trace

import (
	"fmt"
	"io"
	"strings"
)

// WriteText renders the trace as a human-readable per-rank listing, the
// format students read when inspecting a single run:
//
//	rank 0:
//	  #0 init      t=0        L=1
//	  #1 recv      t=2.9µs    L=3   from 2 tag 0 (1 B) msg 1 chan 0
//
// Callstacks are shown compacted to their innermost frame when present.
func (t *Trace) WriteText(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: pattern=%s procs=%d nodes=%d iters=%d msgsize=%d nd=%g%% seed=%d\n",
		t.Meta.Pattern, t.Meta.Procs, t.Meta.Nodes, t.Meta.Iterations,
		t.Meta.MsgSize, t.Meta.NDPercent, t.Meta.Seed)
	for rank, evs := range t.Events {
		fmt.Fprintf(&b, "rank %d:\n", rank)
		for i := range evs {
			e := &evs[i]
			fmt.Fprintf(&b, "  #%-3d %-10s t=%-10v L=%-4d", e.Seq, e.Kind, e.Time, e.Lamport)
			if e.Peer != NoPeer {
				role := "peer"
				switch {
				case e.Kind.IsSend():
					role = "to"
				case e.Kind.IsReceive() && e.MsgID != NoMsg:
					role = "from"
				case e.Kind.IsCollective():
					role = "root"
				}
				fmt.Fprintf(&b, " %s %d", role, e.Peer)
			}
			if e.MsgID != NoMsg {
				fmt.Fprintf(&b, " tag %d (%d B) msg %d chan %d", e.Tag, e.Size, e.MsgID, e.ChanSeq)
			}
			if len(e.Callstack) > 0 {
				fmt.Fprintf(&b, "  [%s]", e.Callstack[0])
			}
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// FilterKind returns a copy of the trace containing only events of the
// given kinds (per-rank order preserved, Seq reassigned densely,
// Lamport values kept). The copy is suitable for inspection and
// counting; note that message-matching invariants may no longer
// validate if sends are kept without their receives or vice versa.
func (t *Trace) FilterKind(kinds ...EventKind) *Trace {
	want := make(map[EventKind]bool, len(kinds))
	for _, k := range kinds {
		want[k] = true
	}
	out := New(t.Meta)
	for _, evs := range t.Events {
		for i := range evs {
			if want[evs[i].Kind] {
				out.Append(evs[i])
			}
		}
	}
	return out
}

// EventsOfRank returns rank's event stream (nil if out of range).
func (t *Trace) EventsOfRank(rank int) []Event {
	if rank < 0 || rank >= len(t.Events) {
		return nil
	}
	return t.Events[rank]
}
