package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteText(t *testing.T) {
	tr := buildValidTrace()
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"pattern=test", "rank 0:", "rank 1:",
		"send", "to 0", "recv", "from 1",
		"tag 3 (8 B)", "[patterns.send]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text dump missing %q:\n%s", want, out)
		}
	}
}

func TestFilterKind(t *testing.T) {
	tr := buildValidTrace()
	sends := tr.FilterKind(KindSend)
	if sends.NumEvents() != 1 {
		t.Fatalf("filtered to %d events, want 1", sends.NumEvents())
	}
	if sends.Events[1][0].Kind != KindSend || sends.Events[1][0].Seq != 0 {
		t.Errorf("filtered event %+v", sends.Events[1][0])
	}
	both := tr.FilterKind(KindInit, KindFinalize)
	if both.NumEvents() != 4 {
		t.Errorf("init+finalize count %d, want 4", both.NumEvents())
	}
	none := tr.FilterKind()
	if none.NumEvents() != 0 {
		t.Errorf("empty filter kept %d events", none.NumEvents())
	}
}

func TestEventsOfRank(t *testing.T) {
	tr := buildValidTrace()
	if evs := tr.EventsOfRank(0); len(evs) != 3 {
		t.Errorf("rank 0 has %d events", len(evs))
	}
	if evs := tr.EventsOfRank(-1); evs != nil {
		t.Error("negative rank returned events")
	}
	if evs := tr.EventsOfRank(99); evs != nil {
		t.Error("out-of-range rank returned events")
	}
}
