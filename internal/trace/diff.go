package trace

import "fmt"

// Divergence reports the first point at which two traces' communication
// structures differ — the starting point for debugging a
// non-deterministic pair of runs.
type Divergence struct {
	// Rank is the rank whose streams differ first (the smallest such
	// rank).
	Rank int
	// Seq is the first differing event index on that rank; -1 when one
	// stream is a strict prefix of the other (Len* then differ).
	Seq int
	// A and B describe the differing events ("<none>" past the end).
	A, B string
	// LenA and LenB are the stream lengths on that rank.
	LenA, LenB int
}

// String renders the divergence for humans.
func (d *Divergence) String() string {
	if d.Seq < 0 {
		return fmt.Sprintf("rank %d: stream lengths differ (%d vs %d events)", d.Rank, d.LenA, d.LenB)
	}
	return fmt.Sprintf("rank %d event #%d: %s vs %s", d.Rank, d.Seq, d.A, d.B)
}

// structKey is the communication-structure identity of one event: what
// OrderHash hashes, rendered comparably.
func structKey(e *Event) string {
	if e.MsgID == NoMsg {
		return e.Kind.String()
	}
	return fmt.Sprintf("%s(peer=%d,tag=%d,chan=%d)", e.Kind, e.Peer, e.Tag, e.ChanSeq)
}

// DivergenceCounts returns, per rank, how many event positions differ
// structurally between two traces of the same workload (kind, peer,
// tag, or channel sequence). Positions past the shorter stream's end
// count as differing. Timestamps are ignored.
func DivergenceCounts(a, b *Trace) ([]int, error) {
	if a.Procs() != b.Procs() {
		return nil, fmt.Errorf("trace: diff of %d-rank and %d-rank traces", a.Procs(), b.Procs())
	}
	counts := make([]int, a.Procs())
	for rank := 0; rank < a.Procs(); rank++ {
		ea, eb := a.Events[rank], b.Events[rank]
		n := len(ea)
		if len(eb) < n {
			n = len(eb)
		}
		for i := 0; i < n; i++ {
			if structKey(&ea[i]) != structKey(&eb[i]) {
				counts[rank]++
			}
		}
		counts[rank] += max(len(ea), len(eb)) - n
	}
	return counts, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FirstDivergence locates the first structural difference between two
// traces of the same workload: the lowest rank, then lowest event
// index, at which event kind, peer, tag, or channel sequence differ.
// It returns nil when the structures are identical (equal OrderHash).
// Timestamps are ignored — two runs that matched messages identically
// but at different speeds do not diverge.
func FirstDivergence(a, b *Trace) (*Divergence, error) {
	if a.Procs() != b.Procs() {
		return nil, fmt.Errorf("trace: diff of %d-rank and %d-rank traces", a.Procs(), b.Procs())
	}
	for rank := 0; rank < a.Procs(); rank++ {
		ea, eb := a.Events[rank], b.Events[rank]
		n := len(ea)
		if len(eb) < n {
			n = len(eb)
		}
		for i := 0; i < n; i++ {
			ka, kb := structKey(&ea[i]), structKey(&eb[i])
			if ka != kb {
				return &Divergence{Rank: rank, Seq: i, A: ka, B: kb, LenA: len(ea), LenB: len(eb)}, nil
			}
		}
		if len(ea) != len(eb) {
			return &Divergence{Rank: rank, Seq: -1, A: "<none>", B: "<none>", LenA: len(ea), LenB: len(eb)}, nil
		}
	}
	return nil, nil
}
