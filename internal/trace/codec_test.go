package trace

import (
	"bytes"
	"compress/flate"
	"fmt"
	"sync"
	"testing"
)

// TestArchiveBytesIdenticalAcrossCodecWorkers pins the parallel codec's
// core contract: the worker count is a throughput knob, never a format
// knob. Every worker setting — serial, the pipeline at several widths,
// and the GOMAXPROCS default — must produce archives byte-identical to
// the serial encode, because each segment block is an independent
// DEFLATE stream and the drain writes blocks in submission order.
func TestArchiveBytesIdenticalAcrossCodecWorkers(t *testing.T) {
	tr := interleavedTrace(3, 2*v2SegmentEvents+57)

	var serial bytes.Buffer
	if err := tr.WriteBinaryV2Options(&serial, CodecOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if serial.Len() == 0 {
		t.Fatal("empty serial encoding")
	}

	for _, workers := range []int{0, 2, 3, 4, 8} {
		var got bytes.Buffer
		if err := tr.WriteBinaryV2Options(&got, CodecOptions{Workers: workers}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(serial.Bytes(), got.Bytes()) {
			t.Errorf("workers=%d produced different bytes: %d vs serial %d",
				workers, got.Len(), serial.Len())
		}
	}

	// The default WriteBinaryV2 (zero options) is the same archive too.
	var def bytes.Buffer
	if err := tr.WriteBinaryV2(&def); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), def.Bytes()) {
		t.Error("default WriteBinaryV2 differs from explicit serial encode")
	}
}

// TestStreamWriterBytesIdenticalAcrossCodecWorkers repeats the
// determinism pin on the streaming path — interleaved appends, segment
// flushes mid-stream — which is the path campaign archives actually
// take.
func TestStreamWriterBytesIdenticalAcrossCodecWorkers(t *testing.T) {
	const procs, perRank = 3, v2SegmentEvents + 211
	tr := interleavedTrace(procs, perRank)

	encode := func(workers int) []byte {
		t.Helper()
		var buf bytes.Buffer
		sw := NewStreamWriterOptions(&buf, tr.Meta, CodecOptions{Workers: workers})
		for i := 0; i < perRank; i++ {
			for rank := 0; rank < procs; rank++ {
				sw.Append(tr.Events[rank][i])
			}
		}
		if err := sw.Close(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return buf.Bytes()
	}

	serial := encode(1)
	for _, workers := range []int{0, 2, 4} {
		if got := encode(workers); !bytes.Equal(serial, got) {
			t.Errorf("stream workers=%d produced different bytes: %d vs serial %d",
				workers, len(got), len(serial))
		}
	}
}

// TestCodecLevelRoundTrips pins the compression-level knob: non-default
// levels legitimately change the archived bytes, but every level must
// decode back to the identical trace, serial and pipelined alike.
func TestCodecLevelRoundTrips(t *testing.T) {
	tr := interleavedTrace(2, v2SegmentEvents+91)
	for _, level := range []int{flate.HuffmanOnly, flate.NoCompression, 1, 6, flate.BestCompression} {
		var serial, piped bytes.Buffer
		if err := tr.WriteBinaryV2Options(&serial, CodecOptions{Level: level, Workers: 1}); err != nil {
			t.Fatalf("level=%d: %v", level, err)
		}
		if err := tr.WriteBinaryV2Options(&piped, CodecOptions{Level: level, Workers: 4}); err != nil {
			t.Fatalf("level=%d workers=4: %v", level, err)
		}
		if !bytes.Equal(serial.Bytes(), piped.Bytes()) {
			t.Errorf("level=%d: pipelined bytes differ from serial", level)
		}
		got, err := ReadBinary(bytes.NewReader(serial.Bytes()))
		if err != nil {
			t.Fatalf("level=%d: %v", level, err)
		}
		if got.Hash() != tr.Hash() {
			t.Errorf("level=%d round trip changed the trace hash", level)
		}
	}
	var buf bytes.Buffer
	if err := tr.WriteBinaryV2Options(&buf, CodecOptions{Level: 42}); err == nil {
		t.Error("out-of-range compression level accepted")
	}
}

// streamedArchive encodes tr through a round-robin StreamWriter, the
// interleaving that makes segments of different ranks share compressed
// blocks — the shape the concurrent-cursor tests need.
func streamedArchive(t *testing.T, tr *Trace, perRank int) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf, tr.Meta)
	for i := 0; i < perRank; i++ {
		for rank := range tr.Events {
			sw.Append(tr.Events[rank][i])
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// collectRank drains one cursor into comparable snapshots: every field
// rendered into one string, with the callstack collapsed to its
// interned key (Event itself holds a slice, so it isn't ==-comparable).
type eventSnap string

func snapOf(ev *Event) eventSnap {
	return eventSnap(fmt.Sprintf("%d|%d|%v|%d|%d|%d|%d|%d|%v|%d|%q",
		ev.Rank, ev.Seq, ev.Kind, ev.Peer, ev.Tag, ev.Size,
		ev.MsgID, ev.ChanSeq, ev.Time, ev.Lamport, ev.CallstackKey()))
}

func collectRank(c *Cursor) ([]eventSnap, error) {
	var out []eventSnap
	var ev Event
	for c.Next(&ev) {
		out = append(out, snapOf(&ev))
	}
	return out, c.Err()
}

// TestConcurrentCursorsMatchSerial runs one cursor per rank
// concurrently over a single shared Reader — the graph builder's access
// pattern — and requires every stream to equal a serial pass over the
// same Reader. Under -race this doubles as the data-race pin for the
// shared-block cache and the pooled inflaters. Two concurrent passes
// follow the serial one, so the second exercises the cache after the
// first pass exhausted every shared block's refcount.
func TestConcurrentCursorsMatchSerial(t *testing.T) {
	const procs, perRank = 8, v2SegmentEvents/2 + 77
	tr := interleavedTrace(procs, perRank)
	data := streamedArchive(t, tr, perRank)

	r, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}

	want := make([][]eventSnap, procs)
	for rank := 0; rank < procs; rank++ {
		if want[rank], err = collectRank(r.Cursor(rank)); err != nil {
			t.Fatal(err)
		}
		if len(want[rank]) != perRank {
			t.Fatalf("serial rank %d drained %d events, want %d", rank, len(want[rank]), perRank)
		}
	}

	for pass := 0; pass < 2; pass++ {
		got := make([][]eventSnap, procs)
		errs := make([]error, procs)
		var wg sync.WaitGroup
		for rank := 0; rank < procs; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				c := r.Cursor(rank)
				if rank%2 == pass%2 {
					// Half the cursors pull segments through the read-ahead
					// goroutine, alternating halves across passes.
					c.EnableReadAhead()
				}
				got[rank], errs[rank] = collectRank(c)
			}(rank)
		}
		wg.Wait()
		for rank := 0; rank < procs; rank++ {
			if errs[rank] != nil {
				t.Fatalf("pass %d rank %d: %v", pass, rank, errs[rank])
			}
			if err := snapsEqual(want[rank], got[rank]); err != nil {
				t.Fatalf("pass %d rank %d: concurrent stream diverged from serial: %v", pass, rank, err)
			}
		}
	}
}

func snapsEqual(want, got []eventSnap) error {
	if len(want) != len(got) {
		return fmt.Errorf("%d events, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			return fmt.Errorf("event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	return nil
}

// TestReadAheadCursorMatchesSerial forces read-ahead on regardless of
// GOMAXPROCS and requires the stream to match a plain cursor — the
// equality that lets OrderHash and ToTrace flip it on opportunistically.
func TestReadAheadCursorMatchesSerial(t *testing.T) {
	const procs, perRank = 2, 3*v2SegmentEvents + 13
	tr := interleavedTrace(procs, perRank)
	data := streamedArchive(t, tr, perRank)

	r, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < procs; rank++ {
		plain, err := collectRank(r.Cursor(rank))
		if err != nil {
			t.Fatal(err)
		}
		ahead, err := collectRank(r.Cursor(rank).EnableReadAhead())
		if err != nil {
			t.Fatal(err)
		}
		if err := snapsEqual(plain, ahead); err != nil {
			t.Fatalf("rank %d: read-ahead stream diverged: %v", rank, err)
		}
	}
}
