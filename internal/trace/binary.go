package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"github.com/anacin-go/anacinx/internal/vtime"
)

// splitCallstackKey inverts Event.CallstackKey for non-"(unknown)" keys.
func splitCallstackKey(key string) []string { return strings.Split(key, ";") }

func vtimeFromInt(v int64) vtime.Time { return vtime.Time(v) }

// Compact binary trace format. JSON (io.go) is the interchange format;
// the binary format is ~10x smaller and faster for experiment campaigns
// that archive hundreds of runs. Layout: a magic header, the meta
// block, then per rank a varint event count followed by varint-encoded
// event fields. Callstacks are string-table encoded: each distinct
// call-path is written once and referenced by index thereafter.

// binaryMagic identifies the format and its version.
var binaryMagic = [8]byte{'A', 'N', 'C', 'N', 'T', 'R', '0', '1'}

// WriteBinary serializes the trace in the compact binary format.
func (t *Trace) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	writeVarint := func(v int64) error {
		n := binary.PutVarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	writeString := func(s string) error {
		if err := writeVarint(int64(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}

	// Meta.
	if err := writeString(t.Meta.Pattern); err != nil {
		return err
	}
	// NDPercent is rounded, not truncated, to micro-percent: truncation
	// broke round-tripping of values like 0.3 whose nearest float64 sits
	// just below an exact micro-percent multiple (0.3e6 evaluates to
	// 299999.99999999994, which int64() floored to 299999). v2 stores the
	// exact bit pattern instead (see binaryv2.go).
	for _, v := range []int64{
		int64(t.Meta.Procs), int64(t.Meta.Nodes), int64(t.Meta.Iterations),
		int64(t.Meta.MsgSize), int64(math.Round(t.Meta.NDPercent * 1e6)), t.Meta.Seed,
	} {
		if err := writeVarint(v); err != nil {
			return err
		}
	}

	// Callstack string table.
	table := make(map[string]int64)
	keys := t.Callstacks()
	if err := writeVarint(int64(len(keys))); err != nil {
		return err
	}
	for i, k := range keys {
		table[k] = int64(i)
		if err := writeString(k); err != nil {
			return err
		}
	}

	// Events.
	for _, evs := range t.Events {
		if err := writeVarint(int64(len(evs))); err != nil {
			return err
		}
		for i := range evs {
			e := &evs[i]
			for _, v := range []int64{
				int64(e.Kind), int64(e.Peer), int64(e.Tag), int64(e.Size),
				e.MsgID, int64(e.ChanSeq), int64(e.Time), e.Lamport,
				table[e.CallstackKey()],
			} {
				if err := writeVarint(v); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// unknownMagicError explains a header that is neither v1 nor v2,
// distinguishing an unsupported version of this format from a file that
// is not a binary trace at all.
func unknownMagicError(magic [8]byte) error {
	if bytes.HasPrefix(magic[:], []byte("ANCNTR")) {
		return fmt.Errorf("trace: unsupported binary trace version %q (supported: %q, %q)",
			magic[6:], binaryMagic[6:], binaryMagicV2[6:])
	}
	return fmt.Errorf("trace: not a binary trace (magic %q)", magic[:])
}

// ReadBinary parses a binary trace and validates it. The format version
// is auto-detected from the magic header: v1 ("ANCNTR01") decodes
// streamingly; v2 ("ANCNTR02") is buffered in full first, since its
// index lives at the end of the file (prefer OpenReader or
// LoadBinaryFile for seekable v2 sources). Unknown versions return a
// clear error.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: binary header: %w", err)
	}
	switch magic {
	case binaryMagic:
		return readBinaryV1(br)
	case binaryMagicV2:
		rest, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("trace: v2 body: %w", err)
		}
		buf := make([]byte, 0, 8+len(rest))
		buf = append(buf, magic[:]...)
		buf = append(buf, rest...)
		rd, err := NewReader(bytes.NewReader(buf), int64(len(buf)))
		if err != nil {
			return nil, err
		}
		return rd.ToTrace()
	default:
		return nil, unknownMagicError(magic)
	}
}

// readBinaryV1 decodes the v1 body following the magic header.
func readBinaryV1(br *bufio.Reader) (*Trace, error) {
	readVarint := func() (int64, error) { return binary.ReadVarint(br) }
	readString := func() (string, error) {
		n, err := readVarint()
		if err != nil {
			return "", err
		}
		if n < 0 || n > 1<<20 {
			return "", fmt.Errorf("trace: unreasonable string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}

	var meta Meta
	var err error
	if meta.Pattern, err = readString(); err != nil {
		return nil, err
	}
	ints := make([]int64, 6)
	for i := range ints {
		if ints[i], err = readVarint(); err != nil {
			return nil, err
		}
	}
	meta.Procs = int(ints[0])
	meta.Nodes = int(ints[1])
	meta.Iterations = int(ints[2])
	meta.MsgSize = int(ints[3])
	meta.NDPercent = float64(ints[4]) / 1e6
	meta.Seed = ints[5]
	if meta.Procs < 0 || meta.Procs > 1<<22 {
		return nil, fmt.Errorf("trace: unreasonable proc count %d", meta.Procs)
	}

	nKeys, err := readVarint()
	if err != nil {
		return nil, err
	}
	if nKeys < 0 || nKeys > 1<<22 {
		return nil, fmt.Errorf("trace: unreasonable callstack table size %d", nKeys)
	}
	keys := make([]string, nKeys)
	stacks := make([][]string, nKeys)
	for i := range keys {
		if keys[i], err = readString(); err != nil {
			return nil, err
		}
		if keys[i] != "(unknown)" {
			stacks[i] = splitCallstackKey(keys[i])
		}
	}

	t := New(meta)
	for rank := 0; rank < meta.Procs; rank++ {
		n, err := readVarint()
		if err != nil {
			return nil, err
		}
		if n < 0 || n > 1<<30 {
			return nil, fmt.Errorf("trace: unreasonable event count %d", n)
		}
		for i := int64(0); i < n; i++ {
			vals := make([]int64, 9)
			for j := range vals {
				if vals[j], err = readVarint(); err != nil {
					return nil, err
				}
			}
			stackIdx := vals[8]
			if stackIdx < 0 || stackIdx >= nKeys {
				return nil, fmt.Errorf("trace: callstack index %d out of table", stackIdx)
			}
			ev := Event{
				Rank:      rank,
				Kind:      EventKind(vals[0]),
				Peer:      int(vals[1]),
				Tag:       int(vals[2]),
				Size:      int(vals[3]),
				MsgID:     vals[4],
				ChanSeq:   int(vals[5]),
				Time:      vtimeFromInt(vals[6]),
				Lamport:   vals[7],
				Callstack: stacks[stackIdx],
			}
			if ev.Callstack != nil {
				// The string table already holds the joined key; cache
				// it so re-serialization and graph building skip the
				// per-event join.
				ev.ckey = keys[stackIdx]
			}
			t.Append(ev)
		}
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("trace: binary trace invalid: %w", err)
	}
	return t, nil
}

// SaveBinaryFile writes the trace to path in the binary format.
func (t *Trace) SaveBinaryFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return t.WriteBinary(f)
}

// LoadBinaryFile reads a binary trace (v1 or v2, auto-detected) from
// path. v2 files are decoded through their footer index rather than
// buffered whole.
func LoadBinaryFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: binary header: %w", err)
	}
	if magic == binaryMagicV2 {
		st, err := f.Stat()
		if err != nil {
			return nil, err
		}
		rd, err := NewReader(f, st.Size())
		if err != nil {
			return nil, err
		}
		return rd.ToTrace()
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return ReadBinary(f)
}
