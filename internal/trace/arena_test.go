package trace

import "testing"

// Constructing a trace for a large rank count must not allocate one
// backing slice per rank up front: at P = 4096 the flat per-rank
// make([]Event, 0, hint) this replaces performed P allocations before
// the simulation recorded a single event.
func TestNewWithCapacityAllocatesLazily(t *testing.T) {
	const procs = 4096
	allocs := testing.AllocsPerRun(10, func() {
		tr := NewWithCapacity(Meta{Procs: procs}, 64)
		if tr.Events[procs-1] != nil {
			t.Fatal("per-rank storage allocated before first append")
		}
	})
	// Trace struct, Events header, Meta internals — constant, not O(P).
	if allocs > 8 {
		t.Errorf("NewWithCapacity(procs=%d) = %.0f allocs, want O(1)", procs, allocs)
	}
}

// Ranks that never record an event never get storage; ranks that do get
// it on first append.
func TestArenaCarvesOnFirstAppend(t *testing.T) {
	tr := NewWithCapacity(Meta{Procs: 8}, 16)
	tr.Append(Event{Rank: 3, Kind: KindInit})
	for r := 0; r < 8; r++ {
		if r == 3 {
			if len(tr.Events[r]) != 1 {
				t.Errorf("rank %d: len = %d, want 1", r, len(tr.Events[r]))
			}
			continue
		}
		if tr.Events[r] != nil {
			t.Errorf("rank %d never appended but has storage (cap %d)", r, cap(tr.Events[r]))
		}
	}
}

// Rank carvings share arena chunks, so a rank that outgrows its hint
// must spill into a fresh slice instead of stomping its neighbour's
// carving. Interleave appends across ranks and overflow one of them.
func TestArenaOverflowDoesNotCorruptNeighbors(t *testing.T) {
	const hint = 4
	tr := NewWithCapacity(Meta{Procs: 3}, hint)
	// Touch ranks in order so their carvings are adjacent in the arena.
	for r := 0; r < 3; r++ {
		tr.Append(Event{Rank: r, Kind: KindInit, MsgID: int64(100 * r)})
	}
	// Overflow rank 0 far past its hint while the others sit adjacent.
	for i := 1; i < 4*hint; i++ {
		tr.Append(Event{Rank: 0, Kind: KindSend, MsgID: int64(i)})
	}
	for r := 1; r < 3; r++ {
		if got := tr.Events[r][0].MsgID; got != int64(100*r) {
			t.Errorf("rank %d event overwritten: MsgID = %d, want %d", r, got, 100*r)
		}
	}
	for i, e := range tr.Events[0] {
		if e.MsgID != int64(i) || e.Seq != i {
			t.Fatalf("rank 0 event %d corrupted after overflow: %+v", i, e)
		}
	}
}

// The hint is a capacity hint, not a bound: zero or negative hints fall
// back to plain append growth.
func TestArenaZeroHintStillAppends(t *testing.T) {
	tr := NewWithCapacity(Meta{Procs: 2}, 0)
	tr.Append(Event{Rank: 1, Kind: KindInit})
	tr.Append(Event{Rank: 1, Kind: KindFinalize})
	if len(tr.Events[1]) != 2 || tr.Events[1][1].Seq != 1 {
		t.Errorf("zero-hint trace mis-appended: %+v", tr.Events[1])
	}
}

// Appending within the hint costs one carve per active rank, not one
// backing-array growth per rank per doubling.
func TestArenaAppendAllocsWithinHint(t *testing.T) {
	const procs, hint = 64, 16
	allocs := testing.AllocsPerRun(10, func() {
		tr := NewWithCapacity(Meta{Procs: procs}, hint)
		for r := 0; r < procs; r++ {
			for i := 0; i < hint; i++ {
				tr.Append(Event{Rank: r, Kind: KindSend})
			}
		}
	})
	// procs*hint = 1024 events fit in one 4096-event arena chunk, so the
	// whole loop costs the constructor's allocations plus one chunk.
	if allocs > 16 {
		t.Errorf("appending %d events within hint = %.0f allocs, want ~chunk count", procs*hint, allocs)
	}
}
