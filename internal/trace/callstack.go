package trace

import (
	"runtime"
	"strings"
)

// maxStackDepth bounds how many application frames a recorded callstack
// keeps. Deep recursion beyond this is truncated from the outermost end.
const maxStackDepth = 32

// framePrefixesToTrim lists function-name prefixes that belong to the
// runtime plumbing rather than the "application" (the pattern code a
// student would inspect). ANACIN-X similarly strips MPI-library and
// tracer frames so callstack analysis surfaces user code.
var framePrefixesToTrim = []string{
	"runtime.",
	"testing.",
	// Simulator machinery is all methods on these receivers; free
	// functions in package sim (e.g. test programs) are kept.
	"github.com/anacin-go/anacinx/internal/sim.(*Rank).",
	"github.com/anacin-go/anacinx/internal/sim.(*simulation).",
}

// CaptureStack records the current goroutine's call-path as a slice of
// function names, innermost application frame first. skip extra frames
// below the caller are dropped (0 means the caller of CaptureStack is the
// innermost candidate). Runtime, testing, and simulator frames are
// removed so the result reads like the call-path of the traced program.
func CaptureStack(skip int) []string {
	pcs := make([]uintptr, maxStackDepth+8)
	n := runtime.Callers(skip+2, pcs)
	if n == 0 {
		return nil
	}
	frames := runtime.CallersFrames(pcs[:n])
	var stack []string
	for {
		frame, more := frames.Next()
		name := frame.Function
		if name != "" && !trimmedFrame(name) {
			stack = append(stack, shortFuncName(name))
			if len(stack) >= maxStackDepth {
				break
			}
		}
		if !more {
			break
		}
	}
	return stack
}

func trimmedFrame(name string) bool {
	for _, p := range framePrefixesToTrim {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	// sim.Adapt's wrapper closure gets caller-scoped synthesized names
	// when inlined ("pkg.caller.Adapt.funcN", with N depending on the
	// instantiation), so matching by substring is required to keep
	// callstacks stable across otherwise-identical runs.
	return strings.Contains(name, ".Adapt.func")
}

// shortFuncName reduces a fully qualified function name such as
// "github.com/anacin-go/anacinx/internal/patterns.(*AMG).exchange" to
// "patterns.(*AMG).exchange": the last path element plus symbol. That is
// the granularity a student reads in the Fig. 8 bar chart.
func shortFuncName(full string) string {
	if i := strings.LastIndexByte(full, '/'); i >= 0 {
		return full[i+1:]
	}
	return full
}
