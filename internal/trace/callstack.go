package trace

import (
	"runtime"
	"strings"
	"sync"
)

// maxStackDepth bounds how many application frames a recorded callstack
// keeps. Deep recursion beyond this is truncated from the outermost end.
const maxStackDepth = 32

// framePrefixesToTrim lists function-name prefixes that belong to the
// runtime plumbing rather than the "application" (the pattern code a
// student would inspect). ANACIN-X similarly strips MPI-library and
// tracer frames so callstack analysis surfaces user code.
var framePrefixesToTrim = []string{
	"runtime.",
	"testing.",
	// Simulator machinery is all methods on these receivers; free
	// functions in package sim (e.g. test programs) are kept.
	"github.com/anacin-go/anacinx/internal/sim.(*Rank).",
	"github.com/anacin-go/anacinx/internal/sim.(*simulation).",
}

// Stack is an interned callstack: a shared immutable frame slice
// (innermost application frame first) plus the precomputed ";"-joined
// CallstackKey. All events that issued an MPI call from the same
// callsite share one Stack — callers must treat Frames as read-only.
// The zero Stack means "no callstack recorded".
type Stack struct {
	Frames []string
	Key    string
}

// The intern cache maps raw program-counter sequences to their decoded,
// trimmed Stack. Symbolization (runtime.CallersFrames plus name
// shortening) runs once per distinct callsite per process instead of
// once per traced event — the same replay-system insight that keeps
// recording overhead negligible in classic execution-replay tracers:
// repeated structure is interned, not re-symbolized. The cache is
// keyed on the raw PCs (hash plus exact slice equality, so hash
// collisions cost a scan, never a wrong answer) and is shared
// process-wide, like kernel.Interner: concurrent simulated runs hammer
// it from many goroutines.
type stackEntry struct {
	pcs []uintptr
	st  Stack
}

var stackCache = struct {
	sync.RWMutex
	buckets map[uint64][]*stackEntry
}{buckets: make(map[uint64][]*stackEntry, 64)}

// pcBufPool recycles the raw-PC capture buffers so the hit path of
// CaptureStackInterned allocates nothing at all.
var pcBufPool = sync.Pool{New: func() any {
	b := make([]uintptr, maxStackDepth+8)
	return &b
}}

// CaptureStack records the current goroutine's call-path as a slice of
// function names, innermost application frame first. skip extra frames
// below the caller are dropped (0 means the caller of CaptureStack is the
// innermost candidate). Runtime, testing, and simulator frames are
// removed so the result reads like the call-path of the traced program.
//
// The returned slice is shared with every other capture of the same
// callsite and must not be mutated; use CaptureStackInterned to also
// receive the precomputed key.
func CaptureStack(skip int) []string {
	return CaptureStackInterned(skip + 1).Frames
}

// CaptureStackInterned is CaptureStack plus interning: it returns the
// shared frame slice together with the ";"-joined CallstackKey, decoded
// once per distinct callsite. The simulator records the key alongside
// each event so downstream consumers (the event-graph builder, the
// binary writer) never re-join frames.
func CaptureStackInterned(skip int) Stack {
	bufp := pcBufPool.Get().(*[]uintptr)
	pcs := (*bufp)[:cap(*bufp)]
	n := runtime.Callers(skip+2, pcs)
	if n == 0 {
		pcBufPool.Put(bufp)
		return Stack{}
	}
	st := internPCs(pcs[:n])
	pcBufPool.Put(bufp)
	return st
}

// internPCs resolves a raw PC sequence through the cache, decoding and
// inserting on first sight.
func internPCs(pcs []uintptr) Stack {
	h := hashPCs(pcs)
	stackCache.RLock()
	for _, e := range stackCache.buckets[h] {
		if pcsEqual(e.pcs, pcs) {
			st := e.st
			stackCache.RUnlock()
			return st
		}
	}
	stackCache.RUnlock()

	// Decode outside the lock: symbolization is the expensive part, it
	// is a pure function of the PCs, and racing decoders of the same
	// callsite produce identical results — only one wins the insert.
	st := Stack{Frames: decodeFrames(pcs)}
	st.Key = joinFrames(st.Frames)

	stackCache.Lock()
	for _, e := range stackCache.buckets[h] {
		if pcsEqual(e.pcs, pcs) {
			st = e.st
			stackCache.Unlock()
			return st
		}
	}
	stackCache.buckets[h] = append(stackCache.buckets[h], &stackEntry{
		pcs: append([]uintptr(nil), pcs...), // pcs aliases a pooled buffer
		st:  st,
	})
	stackCache.Unlock()
	return st
}

// decodeFrames symbolizes and trims a PC sequence — the pre-interning
// body of CaptureStack, run once per distinct callsite.
func decodeFrames(pcs []uintptr) []string {
	frames := runtime.CallersFrames(pcs)
	var stack []string
	for {
		frame, more := frames.Next()
		name := frame.Function
		if name != "" && !trimmedFrame(name) {
			stack = append(stack, shortFuncName(name))
			if len(stack) >= maxStackDepth {
				break
			}
		}
		if !more {
			break
		}
	}
	return stack
}

// joinFrames builds the ";"-joined callstack key, or "" for an empty
// stack (Event.CallstackKey maps that to "(unknown)").
func joinFrames(frames []string) string {
	if len(frames) == 0 {
		return ""
	}
	n := len(frames) - 1
	for _, f := range frames {
		n += len(f)
	}
	var b strings.Builder
	b.Grow(n)
	b.WriteString(frames[0])
	for _, f := range frames[1:] {
		b.WriteByte(';')
		b.WriteString(f)
	}
	return b.String()
}

// hashPCs is FNV-1a over the PC words. Collisions are resolved by
// pcsEqual, so the hash only needs to spread, not to be perfect.
func hashPCs(pcs []uintptr) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, pc := range pcs {
		h ^= uint64(pc)
		h *= prime64
	}
	return h
}

func pcsEqual(a, b []uintptr) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

func trimmedFrame(name string) bool {
	for _, p := range framePrefixesToTrim {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	// sim.Adapt's wrapper closure gets caller-scoped synthesized names
	// when inlined ("pkg.caller.Adapt.funcN", with N depending on the
	// instantiation), so matching by substring is required to keep
	// callstacks stable across otherwise-identical runs.
	return strings.Contains(name, ".Adapt.func")
}

// shortFuncName reduces a fully qualified function name such as
// "github.com/anacin-go/anacinx/internal/patterns.(*AMG).exchange" to
// "patterns.(*AMG).exchange": the last path element plus symbol. That is
// the granularity a student reads in the Fig. 8 bar chart.
func shortFuncName(full string) string {
	if i := strings.LastIndexByte(full, '/'); i >= 0 {
		return full[i+1:]
	}
	return full
}
