package trace

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"github.com/anacin-go/anacinx/internal/vtime"
)

func TestBinaryV2RoundTrip(t *testing.T) {
	tr := buildValidTrace()
	var buf bytes.Buffer
	if err := tr.WriteBinaryV2(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash() != tr.Hash() {
		t.Error("v2 round trip changed the trace hash")
	}
	if got.Meta != tr.Meta {
		t.Errorf("meta changed: %+v vs %+v", got.Meta, tr.Meta)
	}
	if want := tr.Events[1][1].CallstackKey(); got.Events[1][1].CallstackKey() != want {
		t.Errorf("callstack key %q, want %q", got.Events[1][1].CallstackKey(), want)
	}
	if len(got.Events[0][0].Callstack) != 0 {
		t.Errorf("init grew a callstack: %v", got.Events[0][0].Callstack)
	}
}

func TestBinaryV2MetaStoresExactFloat(t *testing.T) {
	tr := buildValidTrace()
	tr.Meta.NDPercent = 0.1 + 0.2 // 0.30000000000000004, not a micro-percent multiple
	var buf bytes.Buffer
	if err := tr.WriteBinaryV2(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.Meta.NDPercent) != math.Float64bits(tr.Meta.NDPercent) {
		t.Errorf("v2 NDPercent bits changed: %v -> %v", tr.Meta.NDPercent, got.Meta.NDPercent)
	}
}

func TestBinaryV1NDPercentRounds(t *testing.T) {
	// 0.3*1e6 evaluates to 299999.99999999994; the old truncation decoded
	// it as 0.299999. Rounding restores the exact value.
	tr := buildValidTrace()
	tr.Meta.NDPercent = 0.3
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.NDPercent != 0.3 {
		t.Errorf("v1 NDPercent round trip: got %v, want 0.3", got.Meta.NDPercent)
	}
}

func TestBinaryAutoDetectFile(t *testing.T) {
	tr := buildValidTrace()
	dir := t.TempDir()
	v1 := filepath.Join(dir, "v1.anctr")
	v2 := filepath.Join(dir, "v2.anctr")
	if err := tr.SaveBinaryFile(v1); err != nil {
		t.Fatal(err)
	}
	if err := tr.SaveBinaryV2File(v2); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{v1, v2} {
		got, err := LoadBinaryFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if got.Hash() != tr.Hash() {
			t.Errorf("%s: hash changed", path)
		}
	}
}

func TestBinaryUnknownVersionError(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("ANCNTR07")
	buf.WriteString("somebody")
	_, err := ReadBinary(&buf)
	if err == nil || !strings.Contains(err.Error(), "unsupported binary trace version") {
		t.Errorf("want unsupported-version error, got %v", err)
	}
	buf.Reset()
	buf.WriteString("NOTATRACE!")
	_, err = ReadBinary(&buf)
	if err == nil || !strings.Contains(err.Error(), "not a binary trace") {
		t.Errorf("want not-a-binary-trace error, got %v", err)
	}
}

// interleavedTrace builds a trace large enough to force multiple
// segments per rank, with callstacks drawn from a small dictionary.
func interleavedTrace(procs, perRank int) *Trace {
	tr := New(Meta{Pattern: "seg", Procs: procs, Nodes: 2, Iterations: 3, MsgSize: 8, NDPercent: 12.5, Seed: 42})
	stacks := [][]string{
		nil,
		{"patterns.send", "patterns.iter", "patterns.main"},
		{"patterns.recv", "patterns.iter", "patterns.main"},
		{"patterns.wait", "patterns.main"},
	}
	var msgID int64
	for rank := 0; rank < procs; rank++ {
		clock := vtime.Time(0)
		for i := 0; i < perRank; i++ {
			clock += vtime.Time(i%7 + 1)
			ev := Event{
				Rank: rank, Kind: KindSend, Peer: (rank + 1) % procs,
				Tag: i % 4, Size: 8, MsgID: msgID, ChanSeq: i,
				Time: clock, Lamport: int64(i + 1),
				Callstack: stacks[i%len(stacks)],
			}
			msgID++
			tr.Append(ev)
		}
	}
	return tr
}

func TestStreamWriterMultiSegment(t *testing.T) {
	const procs, perRank = 3, 2*v2SegmentEvents + 57
	tr := interleavedTrace(procs, perRank)
	path := filepath.Join(t.TempDir(), "multi.anctr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sw := NewStreamWriter(f, tr.Meta)
	// Interleave ranks the way a simulator sink would: round-robin.
	for i := 0; i < perRank; i++ {
		for rank := 0; rank < procs; rank++ {
			sw.Append(tr.Events[rank][i])
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if sw.NumEvents() != procs*perRank {
		t.Errorf("NumEvents = %d, want %d", sw.NumEvents(), procs*perRank)
	}

	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	st := r.Stats()
	if st.Events != procs*perRank || st.Ranks != procs {
		t.Errorf("stats %+v, want %d events over %d ranks", st, procs*perRank, procs)
	}
	if want := procs * 3; st.Segments != want {
		t.Errorf("segments = %d, want %d", st.Segments, want)
	}
	if st.MaxSegmentEvents != v2SegmentEvents {
		t.Errorf("max segment = %d, want %d", st.MaxSegmentEvents, v2SegmentEvents)
	}

	// Cursor streams must match the original rank streams exactly.
	var ev Event
	for rank := 0; rank < procs; rank++ {
		c := r.Cursor(rank)
		for i := 0; c.Next(&ev); i++ {
			want := tr.Events[rank][i]
			if ev.Rank != want.Rank || ev.Seq != want.Seq || ev.Kind != want.Kind ||
				ev.Peer != want.Peer || ev.Tag != want.Tag || ev.Size != want.Size ||
				ev.MsgID != want.MsgID || ev.ChanSeq != want.ChanSeq ||
				ev.Time != want.Time || ev.Lamport != want.Lamport ||
				ev.CallstackKey() != want.CallstackKey() {
				t.Fatalf("rank %d event %d: got %+v, want %+v", rank, i, ev, want)
			}
		}
		if c.Err() != nil {
			t.Fatal(c.Err())
		}
		events, _, _, _ := r.RankCounts(rank)
		if events != perRank {
			t.Errorf("rank %d footer events = %d, want %d", rank, events, perRank)
		}
	}
}

func TestReaderOrderHashMatchesTrace(t *testing.T) {
	tr := interleavedTrace(2, 100)
	var buf bytes.Buffer
	if err := tr.WriteBinaryV2(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.OrderHash()
	if err != nil {
		t.Fatal(err)
	}
	if want := tr.OrderHash(); got != want {
		t.Errorf("streamed OrderHash %#x, want %#x", got, want)
	}
}

func TestReaderFooterCounts(t *testing.T) {
	tr := buildValidTrace()
	var buf bytes.Buffer
	if err := tr.WriteBinaryV2(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	events, sends, recvs, maxSendID := r.RankCounts(1)
	if events != 3 || sends != 1 || recvs != 0 || maxSendID != 0 {
		t.Errorf("rank 1 counts = (%d,%d,%d,%d), want (3,1,0,0)", events, sends, recvs, maxSendID)
	}
	events, sends, recvs, maxSendID = r.RankCounts(0)
	if events != 3 || sends != 0 || recvs != 1 || maxSendID != -1 {
		t.Errorf("rank 0 counts = (%d,%d,%d,%d), want (3,0,1,-1)", events, sends, recvs, maxSendID)
	}
	if got, want := r.Callstacks(), tr.Callstacks(); len(got) != len(want) {
		t.Errorf("callstacks %v, want %v", got, want)
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("callstacks %v, want %v", got, want)
				break
			}
		}
	}
}

func TestStreamWriterUsageErrors(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf, Meta{Procs: 1})
	sw.Append(Event{Rank: 3})
	if sw.Err() == nil || !strings.Contains(sw.Err().Error(), "out of range") {
		t.Errorf("want rank-range error, got %v", sw.Err())
	}

	buf.Reset()
	sw = NewStreamWriter(&buf, Meta{Procs: 1})
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	sw.Append(Event{Rank: 0})
	if sw.Err() == nil || !strings.Contains(sw.Err().Error(), "after Close") {
		t.Errorf("want append-after-close error, got %v", sw.Err())
	}
}

func TestOpenReaderRejectsV1(t *testing.T) {
	tr := buildValidTrace()
	path := filepath.Join(t.TempDir(), "v1.anctr")
	if err := tr.SaveBinaryFile(path); err != nil {
		t.Fatal(err)
	}
	_, err := OpenReader(path)
	if err == nil || !strings.Contains(err.Error(), "v1") {
		t.Errorf("want v1 rejection, got %v", err)
	}
}

func TestQuickBinaryV2NeverPanicsOnCorruption(t *testing.T) {
	base := interleavedTrace(2, 40)
	var buf bytes.Buffer
	if err := base.WriteBinaryV2(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	f := func(seed int64, flips uint8) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		rng := vtime.NewRNG(seed)
		mut := append([]byte(nil), raw...)
		for i := 0; i < int(flips)%8+1; i++ {
			mut[rng.Intn(len(mut))] ^= byte(rng.Intn(255) + 1)
		}
		_, _ = ReadBinary(bytes.NewReader(mut)) //nolint:errcheck // error or success both fine
		if r, err := NewReader(bytes.NewReader(mut), int64(len(mut))); err == nil {
			_, _ = r.ToTrace() //nolint:errcheck
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// FuzzBinaryRoundTrip drives both binary formats from one fuzzed trace
// shape: v1 must survive an encode/decode/encode cycle byte-identically
// (its micro-percent meta quantization is idempotent after the rounding
// fix), and v2 must round-trip the trace hash and the exact NDPercent
// bit pattern.
func FuzzBinaryRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(7), uint32(300000))
	f.Add(int64(99), uint8(1), uint8(0), uint32(0))
	f.Add(int64(-5), uint8(4), uint8(11), uint32(4294967295))
	f.Fuzz(func(t *testing.T, seed int64, procsRaw, eventsRaw uint8, ndRaw uint32) {
		rng := vtime.NewRNG(seed)
		procs := int(procsRaw)%5 + 1
		nd := float64(ndRaw) / float64(1<<32) * 100
		tr := New(Meta{Pattern: "fuzz", Procs: procs, Nodes: 1, NDPercent: nd, Seed: seed})
		var msgID int64
		for rank := 0; rank < procs; rank++ {
			lamport := int64(0)
			clock := vtime.Time(0)
			n := int(eventsRaw) % 12
			for i := 0; i < n; i++ {
				lamport++
				clock = clock.Add(vtime.Duration(rng.Intn(1000) + 1))
				ev := Event{Rank: rank, Kind: KindSend, Peer: (rank + 1) % procs,
					Tag: rng.Intn(8), Size: rng.Intn(64), MsgID: msgID,
					ChanSeq: i, Time: clock, Lamport: lamport}
				if rng.Float64() < 0.5 {
					ev.Callstack = []string{"a.b", "c.d"}
				}
				msgID++
				tr.Append(ev)
			}
		}

		// v1: decode must succeed and re-encode byte-identically.
		var v1 bytes.Buffer
		if err := tr.WriteBinary(&v1); err != nil {
			t.Fatal(err)
		}
		dec1, err := ReadBinary(bytes.NewReader(v1.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if want := math.Round(nd*1e6) / 1e6; dec1.Meta.NDPercent != want {
			t.Errorf("v1 NDPercent %v, want %v", dec1.Meta.NDPercent, want)
		}
		var v1again bytes.Buffer
		if err := dec1.WriteBinary(&v1again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(v1.Bytes(), v1again.Bytes()) {
			t.Error("v1 encode/decode/encode not idempotent")
		}

		// v2: exact meta and hash round trip.
		var v2 bytes.Buffer
		if err := tr.WriteBinaryV2(&v2); err != nil {
			t.Fatal(err)
		}
		dec2, err := ReadBinary(bytes.NewReader(v2.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(dec2.Meta.NDPercent) != math.Float64bits(nd) {
			t.Errorf("v2 NDPercent bits changed: %v -> %v", nd, dec2.Meta.NDPercent)
		}
		if dec2.Hash() != tr.Hash() {
			t.Error("v2 round trip changed the trace hash")
		}
	})
}
