package trace

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// Binary trace format v2 ("ANCNTR02"): columnar, compressed, and
// append-only, built for campaign archives that write hundreds of runs
// and read back a few ranks at a time. Where v1 interleaves nine
// varints per event, v2 groups events into per-rank segments and stores
// each field as its own column: kinds as raw bytes, identities as plain
// varints, and the monotone clock columns (time, lamport) plus the
// locally near-sequential ones (msg id, channel seq) as varint deltas,
// which collapse to one or two bytes per value. Each segment's column
// payload, and the footer, are then DEFLATE-compressed — the columnar
// grouping is what makes this bite, since same-field bytes share a
// skewed distribution the entropy coder can exploit. Callstacks are
// dictionary-coded once per file; the dictionary is front-coded in
// sorted order (each key stores only its suffix after the longest
// common prefix with its predecessor).
//
// The file ends with a footer index — per-rank event/send/receive
// counts, the per-rank maximum send id, and the (offset, count) list of
// the rank's segments — followed by a fixed 16-byte trailer holding the
// footer offset and a trailing magic. A reader seeks the trailer from
// EOF, loads the footer, and can then decode any single rank without
// touching the rest of the file (segments are compressed
// independently); the counts are exactly the inputs the parallel graph
// builder's prefix-sum layout needs, so graph construction from a v2
// file skips the counting decode entirely.
//
// Layout:
//
//	magic "ANCNTR02"
//	meta: pattern (uvarint len + bytes), varint procs/nodes/iterations/
//	      msg size, 8-byte LE math.Float64bits(nd percent), varint seed
//	segment blocks (any order, located per rank by the footer). A
//	block holds one run of events per rank it covers: the steady-state
//	flush emits single-rank blocks, and the final drain at Close packs
//	rank tails into blocks of at most ~v2DrainBlockEvents events, so a
//	small trace's ranks share one compression context instead of
//	paying DEFLATE's fixed cost per rank, while a cursor reading a
//	wide trace never inflates more than a small shared block to reach
//	its own run. Block layout:
//	  uvarint run count, per run (uvarint rank, uvarint count), then
//	  uvarint raw payload len, uvarint compressed len, DEFLATE(payload)
//	  where the payload is each run's columns in header order:
//	  kind bytes; peer/tag/size varints; msg id, chan seq, time,
//	  lamport varint deltas (restarting from 0 each run); stack-index
//	  uvarints
//	footer: uvarint raw len, uvarint compressed len, DEFLATE(payload);
//	  the payload is:
//	  dictionary: uvarint count, front-coded sorted keys
//	    (uvarint shared-prefix len, uvarint suffix len, suffix bytes),
//	    then count uvarints mapping stack index -> sorted position
//	  rank index: uvarint rank count, per rank uvarint events/sends/
//	    recvs, varint max send id, uvarint segment count, per segment
//	    uvarint offset + uvarint count
//	trailer: 8-byte LE footer offset, magic "ANCNTR02"
var binaryMagicV2 = [8]byte{'A', 'N', 'C', 'N', 'T', 'R', '0', '2'}

// v2MaxPayloadBytes bounds a segment payload's claimed raw size per
// event: nine fields of at most ten varint bytes each, rounded up. The
// reader rejects larger claims before allocating, so corrupted length
// fields cannot force huge allocations.
const v2MaxPayloadBytesPerEvent = 96

// v2SegmentEvents is the StreamWriter's per-rank flush threshold. It
// bounds both the writer's buffering and a reader cursor's working set:
// decoding never holds more than one segment of columns per open
// cursor. 1024 events ≈ 9 KiB of column data.
const v2SegmentEvents = 1024

// v2DrainBlockEvents caps how many events Close's final drain packs
// into one multi-rank block. Small enough that a cursor inflating a
// shared block (it decompresses the whole block to reach its run) does
// bounded redundant work across many ranks; large enough that a small
// trace's ranks share one compression context.
const v2DrainBlockEvents = 256

// v2TrailerSize is the fixed byte size of the v2 trailer.
const v2TrailerSize = 16

// EventSink consumes trace events as they are recorded. The simulator
// accepts one in place of materializing a *Trace (sim.Config.Sink), and
// StreamWriter implements it by encoding straight to a v2 file, so a
// run's peak trace memory is the sink's segment buffers instead of the
// full event record.
type EventSink interface {
	// Append records one event. Implementations assign the per-rank
	// sequence number themselves (events of one rank must arrive in
	// stream order) and surface failures from their Close/Err methods
	// rather than returning them per event.
	Append(Event)
}

// v2Segment locates one encoded run of events within the file.
type v2Segment struct {
	off   int64
	count int
}

// rankEncoder buffers one rank's pending column data and accumulates
// its footer counts.
type rankEncoder struct {
	kinds    []byte
	peers    []int64
	tags     []int64
	sizes    []int64
	msgIDs   []int64
	chanSeqs []int64
	times    []int64
	lamports []int64
	stacks   []int

	events, sends, recvs int
	maxSendID            int64
	segs                 []v2Segment
}

// StreamWriter encodes a v2 binary trace incrementally. Events arrive
// via Append in any rank interleaving (each rank's own events in
// stream order); segments are flushed as rank buffers fill, and Close
// writes the dictionary, footer, and trailer. Errors are sticky: the
// first I/O or usage error disables further encoding and is returned by
// Close (and Err).
//
// StreamWriter implements EventSink.
type StreamWriter struct {
	bw     *bufio.Writer
	off    int64
	err    error
	closed bool

	meta  Meta
	ranks []rankEncoder
	dict  map[string]int
	keys  []string // dictionary keys in index (first-seen) order
	total int

	payload bytes.Buffer // raw segment/footer payload being assembled
	comp    bytes.Buffer // its DEFLATE-compressed form
	fw      *flate.Writer

	scratch [binary.MaxVarintLen64]byte
}

// NewStreamWriter starts a v2 binary trace for meta on w, writing the
// header immediately. The caller must Close the writer to produce a
// complete file.
func NewStreamWriter(w io.Writer, meta Meta) *StreamWriter {
	sw := &StreamWriter{
		bw:    bufio.NewWriter(w),
		meta:  meta,
		ranks: make([]rankEncoder, meta.Procs),
		dict:  make(map[string]int),
	}
	if meta.Procs < 0 {
		sw.err = fmt.Errorf("trace: negative proc count %d", meta.Procs)
		return sw
	}
	for i := range sw.ranks {
		sw.ranks[i].maxSendID = -1
	}
	sw.write(binaryMagicV2[:])
	sw.writeString(meta.Pattern)
	sw.writeVarint(int64(meta.Procs))
	sw.writeVarint(int64(meta.Nodes))
	sw.writeVarint(int64(meta.Iterations))
	sw.writeVarint(int64(meta.MsgSize))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(meta.NDPercent))
	sw.write(b[:])
	sw.writeVarint(meta.Seed)
	return sw
}

func (sw *StreamWriter) write(p []byte) {
	if sw.err != nil {
		return
	}
	n, err := sw.bw.Write(p)
	sw.off += int64(n)
	sw.err = err
}

func (sw *StreamWriter) writeVarint(v int64) {
	if sw.err != nil {
		return
	}
	n := binary.PutVarint(sw.scratch[:], v)
	sw.write(sw.scratch[:n])
}

func (sw *StreamWriter) writeUvarint(v uint64) {
	if sw.err != nil {
		return
	}
	n := binary.PutUvarint(sw.scratch[:], v)
	sw.write(sw.scratch[:n])
}

func (sw *StreamWriter) writeString(s string) {
	sw.writeUvarint(uint64(len(s)))
	if sw.err == nil {
		n, err := sw.bw.WriteString(s)
		sw.off += int64(n)
		sw.err = err
	}
}

// Buffer-side encoders assemble a payload before compression.

func (sw *StreamWriter) bufVarint(v int64) {
	n := binary.PutVarint(sw.scratch[:], v)
	sw.payload.Write(sw.scratch[:n])
}

func (sw *StreamWriter) bufUvarint(v uint64) {
	n := binary.PutUvarint(sw.scratch[:], v)
	sw.payload.Write(sw.scratch[:n])
}

func (sw *StreamWriter) bufString(s string) {
	sw.bufUvarint(uint64(len(s)))
	sw.payload.WriteString(s)
}

// writeCompressed DEFLATE-compresses the assembled payload and writes
// it framed as uvarint raw len, uvarint compressed len, compressed
// bytes. The payload buffer is reset for the next use.
func (sw *StreamWriter) writeCompressed() {
	if sw.err != nil {
		sw.payload.Reset()
		return
	}
	sw.comp.Reset()
	if sw.fw == nil {
		fw, err := flate.NewWriter(&sw.comp, flate.BestSpeed)
		if err != nil {
			sw.err = err
			return
		}
		sw.fw = fw
	} else {
		sw.fw.Reset(&sw.comp)
	}
	if _, err := sw.fw.Write(sw.payload.Bytes()); err != nil {
		sw.err = err
		return
	}
	if err := sw.fw.Close(); err != nil {
		sw.err = err
		return
	}
	sw.writeUvarint(uint64(sw.payload.Len()))
	sw.writeUvarint(uint64(sw.comp.Len()))
	sw.write(sw.comp.Bytes())
	sw.payload.Reset()
}

// Append implements EventSink: it buffers one event into its rank's
// pending segment, flushing the segment when it reaches
// v2SegmentEvents. The event's Seq is ignored — position in the rank's
// append order is authoritative, exactly as Trace.Append assigns it.
func (sw *StreamWriter) Append(e Event) {
	if sw.err != nil {
		return
	}
	if sw.closed {
		sw.err = fmt.Errorf("trace: StreamWriter.Append after Close")
		return
	}
	if e.Rank < 0 || e.Rank >= len(sw.ranks) {
		sw.err = fmt.Errorf("trace: event rank %d out of range [0,%d)", e.Rank, len(sw.ranks))
		return
	}
	re := &sw.ranks[e.Rank]
	re.kinds = append(re.kinds, byte(e.Kind))
	re.peers = append(re.peers, int64(e.Peer))
	re.tags = append(re.tags, int64(e.Tag))
	re.sizes = append(re.sizes, int64(e.Size))
	re.msgIDs = append(re.msgIDs, e.MsgID)
	re.chanSeqs = append(re.chanSeqs, int64(e.ChanSeq))
	re.times = append(re.times, int64(e.Time))
	re.lamports = append(re.lamports, e.Lamport)
	key := e.CallstackKey()
	idx, ok := sw.dict[key]
	if !ok {
		idx = len(sw.keys)
		sw.dict[key] = idx
		sw.keys = append(sw.keys, key)
	}
	re.stacks = append(re.stacks, idx)
	if e.MsgID != NoMsg {
		if e.Kind.IsSend() {
			re.sends++
			if e.MsgID > re.maxSendID {
				re.maxSendID = e.MsgID
			}
		} else if e.Kind.IsReceive() {
			re.recvs++
		}
	}
	re.events++
	sw.total++
	if len(re.kinds) >= v2SegmentEvents {
		sw.flushRanks(e.Rank, e.Rank+1)
	}
}

// bufColumn encodes one int64 column into the payload buffer, either as
// plain varints or as deltas from the previous value (starting at 0
// each segment).
func (sw *StreamWriter) bufColumn(vals []int64, delta bool) {
	var prev int64
	for _, v := range vals {
		if delta {
			sw.bufVarint(v - prev)
			prev = v
		} else {
			sw.bufVarint(v)
		}
	}
}

// flushRanks writes the buffered events of ranks [lo, hi) that have any
// as one compressed block of per-rank runs, and records each run for
// the footer. All runs share one block offset and one DEFLATE stream.
func (sw *StreamWriter) flushRanks(lo, hi int) {
	var runs []int
	for r := lo; r < hi; r++ {
		if len(sw.ranks[r].kinds) > 0 {
			runs = append(runs, r)
		}
	}
	if len(runs) == 0 {
		return
	}
	off := sw.off
	sw.writeUvarint(uint64(len(runs)))
	for _, r := range runs {
		re := &sw.ranks[r]
		re.segs = append(re.segs, v2Segment{off: off, count: len(re.kinds)})
		sw.writeUvarint(uint64(r))
		sw.writeUvarint(uint64(len(re.kinds)))
	}
	for _, r := range runs {
		re := &sw.ranks[r]
		sw.payload.Write(re.kinds)
		sw.bufColumn(re.peers, false)
		sw.bufColumn(re.tags, false)
		sw.bufColumn(re.sizes, false)
		sw.bufColumn(re.msgIDs, true)
		sw.bufColumn(re.chanSeqs, true)
		sw.bufColumn(re.times, true)
		sw.bufColumn(re.lamports, true)
		for _, si := range re.stacks {
			sw.bufUvarint(uint64(si))
		}
		re.kinds = re.kinds[:0]
		re.peers = re.peers[:0]
		re.tags = re.tags[:0]
		re.sizes = re.sizes[:0]
		re.msgIDs = re.msgIDs[:0]
		re.chanSeqs = re.chanSeqs[:0]
		re.times = re.times[:0]
		re.lamports = re.lamports[:0]
		re.stacks = re.stacks[:0]
	}
	sw.writeCompressed()
}

// commonPrefixLen returns the length of the longest common prefix of a
// and b.
func commonPrefixLen(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// Close flushes the pending segments and writes the dictionary, footer,
// and trailer. It returns the first error the writer encountered.
// Close is idempotent; Append after Close is an error.
func (sw *StreamWriter) Close() error {
	if sw.closed {
		return sw.err
	}
	sw.closed = true
	// Drain rank tails into multi-rank blocks of bounded size: one
	// block for a small trace, ~v2DrainBlockEvents-event blocks for a
	// wide one (a tail larger than the budget flushes alone).
	lo, pending := 0, 0
	for r := range sw.ranks {
		n := len(sw.ranks[r].kinds)
		if pending > 0 && pending+n > v2DrainBlockEvents {
			sw.flushRanks(lo, r)
			lo, pending = r, 0
		}
		pending += n
	}
	sw.flushRanks(lo, len(sw.ranks))
	footerOff := sw.off

	// Dictionary: keys sorted for front-coding, then the permutation
	// from first-seen index (what segments reference) to sorted slot.
	sorted := append([]string(nil), sw.keys...)
	sort.Strings(sorted)
	pos := make(map[string]int, len(sorted))
	for i, k := range sorted {
		pos[k] = i
	}
	sw.bufUvarint(uint64(len(sorted)))
	prev := ""
	for _, k := range sorted {
		p := commonPrefixLen(prev, k)
		sw.bufUvarint(uint64(p))
		sw.bufString(k[p:])
		prev = k
	}
	for _, k := range sw.keys {
		sw.bufUvarint(uint64(pos[k]))
	}

	// Rank index.
	sw.bufUvarint(uint64(len(sw.ranks)))
	for r := range sw.ranks {
		re := &sw.ranks[r]
		sw.bufUvarint(uint64(re.events))
		sw.bufUvarint(uint64(re.sends))
		sw.bufUvarint(uint64(re.recvs))
		sw.bufVarint(re.maxSendID)
		sw.bufUvarint(uint64(len(re.segs)))
		for _, s := range re.segs {
			sw.bufUvarint(uint64(s.off))
			sw.bufUvarint(uint64(s.count))
		}
	}
	sw.writeCompressed()

	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(footerOff))
	sw.write(b[:])
	sw.write(binaryMagicV2[:])
	if ferr := sw.bw.Flush(); sw.err == nil {
		sw.err = ferr
	}
	return sw.err
}

// Err returns the writer's sticky error without closing it.
func (sw *StreamWriter) Err() error { return sw.err }

// NumEvents returns how many events have been appended.
func (sw *StreamWriter) NumEvents() int { return sw.total }

// WriteBinaryV2 serializes the trace in the v2 binary format.
func (t *Trace) WriteBinaryV2(w io.Writer) error {
	sw := NewStreamWriter(w, t.Meta)
	for _, evs := range t.Events {
		for i := range evs {
			sw.Append(evs[i])
		}
	}
	return sw.Close()
}

// SaveBinaryV2File writes the trace to path in the v2 binary format.
func (t *Trace) SaveBinaryV2File(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return t.WriteBinaryV2(f)
}
