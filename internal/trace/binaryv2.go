package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"
)

// Binary trace format v2 ("ANCNTR02"): columnar, compressed, and
// append-only, built for campaign archives that write hundreds of runs
// and read back a few ranks at a time. Where v1 interleaves nine
// varints per event, v2 groups events into per-rank segments and stores
// each field as its own column: kinds as raw bytes, identities as plain
// varints, and the monotone clock columns (time, lamport) plus the
// locally near-sequential ones (msg id, channel seq) as varint deltas,
// which collapse to one or two bytes per value. Each segment's column
// payload, and the footer, are then DEFLATE-compressed — the columnar
// grouping is what makes this bite, since same-field bytes share a
// skewed distribution the entropy coder can exploit. Callstacks are
// dictionary-coded once per file; the dictionary is front-coded in
// sorted order (each key stores only its suffix after the longest
// common prefix with its predecessor).
//
// The file ends with a footer index — per-rank event/send/receive
// counts, the per-rank maximum send id, and the (offset, count) list of
// the rank's segments — followed by a fixed 16-byte trailer holding the
// footer offset and a trailing magic. A reader seeks the trailer from
// EOF, loads the footer, and can then decode any single rank without
// touching the rest of the file (segments are compressed
// independently); the counts are exactly the inputs the parallel graph
// builder's prefix-sum layout needs, so graph construction from a v2
// file skips the counting decode entirely.
//
// Layout:
//
//	magic "ANCNTR02"
//	meta: pattern (uvarint len + bytes), varint procs/nodes/iterations/
//	      msg size, 8-byte LE math.Float64bits(nd percent), varint seed
//	segment blocks (any order, located per rank by the footer). A
//	block holds one run of events per rank it covers: the steady-state
//	flush emits single-rank blocks, and the final drain at Close packs
//	rank tails into blocks of at most ~v2DrainBlockEvents events, so a
//	small trace's ranks share one compression context instead of
//	paying DEFLATE's fixed cost per rank, while a cursor reading a
//	wide trace never inflates more than a small shared block to reach
//	its own run. Block layout:
//	  uvarint run count, per run (uvarint rank, uvarint count), then
//	  uvarint raw payload len, uvarint compressed len, DEFLATE(payload)
//	  where the payload is each run's columns in header order:
//	  kind bytes; peer/tag/size varints; msg id, chan seq, time,
//	  lamport varint deltas (restarting from 0 each run); stack-index
//	  uvarints
//	footer: uvarint raw len, uvarint compressed len, DEFLATE(payload);
//	  the payload is:
//	  dictionary: uvarint count, front-coded sorted keys
//	    (uvarint shared-prefix len, uvarint suffix len, suffix bytes),
//	    then count uvarints mapping stack index -> sorted position
//	  rank index: uvarint rank count, per rank uvarint events/sends/
//	    recvs, varint max send id, uvarint segment count, per segment
//	    uvarint offset + uvarint count
//	trailer: 8-byte LE footer offset, magic "ANCNTR02"
//
// Because every block is its own compression context, the writer is
// free to compress blocks on a worker pool (see CodecOptions.Workers
// and codec.go) — the archived bytes are identical for every worker
// count.
var binaryMagicV2 = [8]byte{'A', 'N', 'C', 'N', 'T', 'R', '0', '2'}

// v2MaxPayloadBytes bounds a segment payload's claimed raw size per
// event: nine fields of at most ten varint bytes each, rounded up. The
// reader rejects larger claims before allocating, so corrupted length
// fields cannot force huge allocations.
const v2MaxPayloadBytesPerEvent = 96

// v2SegmentEvents is the StreamWriter's per-rank flush threshold. It
// bounds both the writer's buffering and a reader cursor's working set:
// decoding never holds more than one segment of columns per open
// cursor. 1024 events ≈ 9 KiB of column data.
const v2SegmentEvents = 1024

// v2DrainBlockEvents caps how many events Close's final drain packs
// into one multi-rank block. Small enough that a cursor inflating a
// shared block (it decompresses the whole block to reach its run) does
// bounded redundant work across many ranks; large enough that a small
// trace's ranks share one compression context. (The reader additionally
// caches a shared block's inflated payload across the cursors that
// need it — see sharedBlock in reader.go.)
const v2DrainBlockEvents = 256

// v2TrailerSize is the fixed byte size of the v2 trailer.
const v2TrailerSize = 16

// EventSink consumes trace events as they are recorded. The simulator
// accepts one in place of materializing a *Trace (sim.Config.Sink), and
// StreamWriter implements it by encoding straight to a v2 file, so a
// run's peak trace memory is the sink's segment buffers instead of the
// full event record.
type EventSink interface {
	// Append records one event. Implementations assign the per-rank
	// sequence number themselves (events of one rank must arrive in
	// stream order) and surface failures from their Close/Err methods
	// rather than returning them per event.
	Append(Event)
}

// v2Segment locates one encoded run of events within the file.
type v2Segment struct {
	off   int64
	count int
}

// colBlockCap is the initial per-rank column capacity: one pooled
// carve covers a small rank's whole stream (master–worker workers,
// drain-only ranks); a hot rank's columns regrow past it once and then
// reset in place between segment flushes.
const colBlockCap = 64

// colBlock is the pooled backing storage of one rank's column buffers:
// one byte slice for kinds, one int64 arena carved into the seven
// numeric columns, one int slice for stack indices. Pooling these is
// what keeps a wide writer (1024 ranks × 9 columns) from paying tens
// of thousands of append-growth allocations per encode.
type colBlock struct {
	kinds  []byte
	i64    []int64
	stacks []int
}

var colBlockPool sync.Pool

func getColBlock() *colBlock {
	if cb, ok := colBlockPool.Get().(*colBlock); ok {
		return cb
	}
	return &colBlock{
		kinds:  make([]byte, 0, colBlockCap),
		i64:    make([]int64, 7*colBlockCap),
		stacks: make([]int, 0, colBlockCap),
	}
}

func putColBlock(cb *colBlock) { colBlockPool.Put(cb) }

// rankEncoder buffers one rank's pending column data and accumulates
// its footer counts. Column slices are carved from a pooled colBlock on
// the rank's first event and released at Close; a column that outgrows
// its carve regrows independently and keeps its capacity across segment
// flushes.
type rankEncoder struct {
	cb       *colBlock
	kinds    []byte
	peers    []int64
	tags     []int64
	sizes    []int64
	msgIDs   []int64
	chanSeqs []int64
	times    []int64
	lamports []int64
	stacks   []int

	events, sends, recvs int
	maxSendID            int64
	segs                 []v2Segment
}

// attach carves the rank's column buffers out of cb.
func (re *rankEncoder) attach(cb *colBlock) {
	const c = colBlockCap
	re.cb = cb
	re.kinds = cb.kinds[:0]
	re.stacks = cb.stacks[:0]
	re.peers = cb.i64[0:0:c]
	re.tags = cb.i64[c : c : 2*c]
	re.sizes = cb.i64[2*c : 2*c : 3*c]
	re.msgIDs = cb.i64[3*c : 3*c : 4*c]
	re.chanSeqs = cb.i64[4*c : 4*c : 5*c]
	re.times = cb.i64[5*c : 5*c : 6*c]
	re.lamports = cb.i64[6*c : 6*c : 7*c]
}

// release returns the rank's colBlock to the pool and drops the column
// slices (some may alias the block's arena).
func (re *rankEncoder) release() {
	if re.cb == nil {
		return
	}
	putColBlock(re.cb)
	re.cb = nil
	re.kinds, re.stacks = nil, nil
	re.peers, re.tags, re.sizes, re.msgIDs = nil, nil, nil, nil
	re.chanSeqs, re.times, re.lamports = nil, nil, nil
}

// fileSink is the buffered file writer plus its running offset and
// sticky I/O error. Exactly one goroutine owns it at a time: the
// StreamWriter's caller during the header, footer, and serial
// operation, the pipeline's drain goroutine between the first
// pipelined flush and the Close-time join.
type fileSink struct {
	bw      *bufio.Writer
	off     int64
	err     error
	scratch [binary.MaxVarintLen64]byte
}

func (s *fileSink) write(p []byte) {
	if s.err != nil {
		return
	}
	n, err := s.bw.Write(p)
	s.off += int64(n)
	s.err = err
}

func (s *fileSink) writeVarint(v int64) {
	if s.err != nil {
		return
	}
	n := binary.PutVarint(s.scratch[:], v)
	s.write(s.scratch[:n])
}

func (s *fileSink) writeUvarint(v uint64) {
	if s.err != nil {
		return
	}
	n := binary.PutUvarint(s.scratch[:], v)
	s.write(s.scratch[:n])
}

func (s *fileSink) writeString(str string) {
	s.writeUvarint(uint64(len(str)))
	if s.err == nil {
		n, err := s.bw.WriteString(str)
		s.off += int64(n)
		s.err = err
	}
}

// StreamWriter encodes a v2 binary trace incrementally. Events arrive
// via Append in any rank interleaving (each rank's own events in
// stream order); segments are flushed as rank buffers fill, and Close
// writes the dictionary, footer, and trailer. Errors are sticky: the
// first I/O or usage error disables further encoding and is returned by
// Close (and Err).
//
// With CodecOptions.Workers > 1 the DEFLATE stage runs on a worker
// pool behind a sequence-numbered reorder (codec.go); the bytes
// written are identical to the serial path's for every worker count.
//
// StreamWriter implements EventSink.
type StreamWriter struct {
	sink   fileSink
	err    error // usage/compression errors; merged with sink.err at Close
	closed bool

	meta  Meta
	ranks []rankEncoder
	dict  map[string]int
	keys  []string // dictionary keys in index (first-seen) order
	total int

	// lastKey/lastIdx memoize the previous Append's dictionary hit:
	// event streams repeat callsites in tight alternation, and interned
	// keys are pointer-equal, so this string compare is O(1) far more
	// often than not.
	lastKey string
	lastIdx int

	level   int
	workers int
	pipe    *codecPipeline // non-nil once a block has been pipelined

	payload []byte      // raw segment/footer payload being assembled
	header  []byte      // block header being assembled
	refs    []segRef    // serial-path footer refs scratch
	comp    *compressor // serial-path and footer DEFLATE context
}

// NewStreamWriter starts a v2 binary trace for meta on w with default
// codec options, writing the header immediately. The caller must Close
// the writer to produce a complete file.
func NewStreamWriter(w io.Writer, meta Meta) *StreamWriter {
	return NewStreamWriterOptions(w, meta, CodecOptions{})
}

// NewStreamWriterOptions is NewStreamWriter with explicit codec
// options. The compression level changes the archived bytes; the
// worker count never does.
func NewStreamWriterOptions(w io.Writer, meta Meta, opts CodecOptions) *StreamWriter {
	sw := &StreamWriter{
		sink:    fileSink{bw: bufio.NewWriter(w)},
		meta:    meta,
		ranks:   make([]rankEncoder, meta.Procs),
		dict:    make(map[string]int),
		lastIdx: -1,
	}
	if meta.Procs < 0 {
		sw.err = fmt.Errorf("trace: negative proc count %d", meta.Procs)
		return sw
	}
	level, workers, err := opts.resolve()
	if err != nil {
		sw.err = err
		return sw
	}
	sw.level, sw.workers = level, workers
	for i := range sw.ranks {
		sw.ranks[i].maxSendID = -1
	}
	sw.sink.write(binaryMagicV2[:])
	sw.sink.writeString(meta.Pattern)
	sw.sink.writeVarint(int64(meta.Procs))
	sw.sink.writeVarint(int64(meta.Nodes))
	sw.sink.writeVarint(int64(meta.Iterations))
	sw.sink.writeVarint(int64(meta.MsgSize))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(meta.NDPercent))
	sw.sink.write(b[:])
	sw.sink.writeVarint(meta.Seed)
	return sw
}

// Append implements EventSink: it buffers one event into its rank's
// pending segment, flushing the segment when it reaches
// v2SegmentEvents. The event's Seq is ignored — position in the rank's
// append order is authoritative, exactly as Trace.Append assigns it.
func (sw *StreamWriter) Append(e Event) {
	if sw.err != nil {
		return
	}
	if sw.closed {
		sw.err = fmt.Errorf("trace: StreamWriter.Append after Close")
		return
	}
	if e.Rank < 0 || e.Rank >= len(sw.ranks) {
		sw.err = fmt.Errorf("trace: event rank %d out of range [0,%d)", e.Rank, len(sw.ranks))
		return
	}
	re := &sw.ranks[e.Rank]
	if re.cb == nil {
		re.attach(getColBlock())
	}
	re.kinds = append(re.kinds, byte(e.Kind))
	re.peers = append(re.peers, int64(e.Peer))
	re.tags = append(re.tags, int64(e.Tag))
	re.sizes = append(re.sizes, int64(e.Size))
	re.msgIDs = append(re.msgIDs, e.MsgID)
	re.chanSeqs = append(re.chanSeqs, int64(e.ChanSeq))
	re.times = append(re.times, int64(e.Time))
	re.lamports = append(re.lamports, e.Lamport)
	key := e.CallstackKey()
	idx := sw.lastIdx
	if idx < 0 || key != sw.lastKey {
		var ok bool
		idx, ok = sw.dict[key]
		if !ok {
			idx = len(sw.keys)
			sw.dict[key] = idx
			sw.keys = append(sw.keys, key)
		}
		sw.lastKey, sw.lastIdx = key, idx
	}
	re.stacks = append(re.stacks, idx)
	if e.MsgID != NoMsg {
		if e.Kind.IsSend() {
			re.sends++
			if e.MsgID > re.maxSendID {
				re.maxSendID = e.MsgID
			}
		} else if e.Kind.IsReceive() {
			re.recvs++
		}
	}
	re.events++
	sw.total++
	if len(re.kinds) >= v2SegmentEvents {
		sw.flushRanks(e.Rank, e.Rank+1)
	}
}

// growFor returns dst with room for at least need more bytes, copying
// on reallocation.
func growFor(dst []byte, need int) []byte {
	if cap(dst)-len(dst) >= need {
		return dst
	}
	ndst := make([]byte, len(dst), len(dst)+need+cap(dst)/2)
	copy(ndst, dst)
	return ndst
}

// appendColumn encodes one int64 column into dst, either as plain
// varints or as deltas from the previous value (starting at 0 each
// run). Worst-case space is reserved once and the varint bytes written
// by direct indexing: a wide flush emits hundreds of thousands of
// varints, and the per-append bounds dance of binary.AppendVarint is
// measurable at that volume. The encoding (zigzag, 7-bit groups) is
// byte-identical to binary.AppendVarint's.
func appendColumn(dst []byte, vals []int64, delta bool) []byte {
	dst = growFor(dst, len(vals)*binary.MaxVarintLen64)
	buf := dst[len(dst):cap(dst)]
	i := 0
	var prev int64
	for _, v := range vals {
		d := v
		if delta {
			d = v - prev
			prev = v
		}
		u := uint64(d) << 1
		if d < 0 {
			u = ^u
		}
		for u >= 0x80 {
			buf[i] = byte(u) | 0x80
			i++
			u >>= 7
		}
		buf[i] = byte(u)
		i++
	}
	return dst[:len(dst)+i]
}

// appendUvarintColumn encodes one uvarint column (the stack indices)
// the same way.
func appendUvarintColumn(dst []byte, vals []int) []byte {
	dst = growFor(dst, len(vals)*binary.MaxVarintLen64)
	buf := dst[len(dst):cap(dst)]
	i := 0
	for _, v := range vals {
		u := uint64(v)
		for u >= 0x80 {
			buf[i] = byte(u) | 0x80
			i++
			u >>= 7
		}
		buf[i] = byte(u)
		i++
	}
	return dst[:len(dst)+i]
}

// flushRanks encodes the buffered events of ranks [lo, hi) that have
// any as one block of per-rank runs sharing one DEFLATE stream, and
// queues it for writing: inline when the writer is serial, through the
// compression pipeline otherwise. The block's footer segments are
// recorded when the block is written (writeBlock), which on both paths
// happens in flush order — so offsets, footer, and bytes are identical
// regardless of worker count.
func (sw *StreamWriter) flushRanks(lo, hi int) {
	if sw.err != nil {
		return
	}
	refs := sw.refs[:0]
	for r := lo; r < hi; r++ {
		if n := len(sw.ranks[r].kinds); n > 0 {
			refs = append(refs, segRef{rank: r, count: n})
		}
	}
	sw.refs = refs[:0] // keep the scratch; a copy goes to the job below
	if len(refs) == 0 {
		return
	}
	header := sw.header[:0]
	header = binary.AppendUvarint(header, uint64(len(refs)))
	for _, ref := range refs {
		header = binary.AppendUvarint(header, uint64(ref.rank))
		header = binary.AppendUvarint(header, uint64(ref.count))
	}
	payload := sw.payload[:0]
	for _, ref := range refs {
		re := &sw.ranks[ref.rank]
		payload = append(payload, re.kinds...)
		payload = appendColumn(payload, re.peers, false)
		payload = appendColumn(payload, re.tags, false)
		payload = appendColumn(payload, re.sizes, false)
		payload = appendColumn(payload, re.msgIDs, true)
		payload = appendColumn(payload, re.chanSeqs, true)
		payload = appendColumn(payload, re.times, true)
		payload = appendColumn(payload, re.lamports, true)
		payload = appendUvarintColumn(payload, re.stacks)
		re.kinds = re.kinds[:0]
		re.peers = re.peers[:0]
		re.tags = re.tags[:0]
		re.sizes = re.sizes[:0]
		re.msgIDs = re.msgIDs[:0]
		re.chanSeqs = re.chanSeqs[:0]
		re.times = re.times[:0]
		re.lamports = re.lamports[:0]
		re.stacks = re.stacks[:0]
	}

	if sw.workers > 1 {
		if sw.pipe == nil {
			sw.pipe = newCodecPipeline(sw, sw.workers)
		}
		// The job owns header and payload until the drain releases them;
		// grab fresh pooled scratch for the next flush.
		sw.pipe.submit(&codecJob{
			header:  header,
			payload: payload,
			refs:    append([]segRef(nil), refs...),
			done:    make(chan struct{}),
		})
		sw.header = getBuf()
		sw.payload = getBuf()
		return
	}
	sw.header, sw.payload = header, payload
	if sw.comp == nil {
		c, err := getCompressor(sw.level)
		if err != nil {
			sw.err = err
			return
		}
		sw.comp = c
	}
	comp, err := sw.comp.compress(payload)
	if err != nil {
		sw.err = err
		return
	}
	sw.writeBlock(header, len(payload), comp, refs)
}

// writeBlock writes one compressed block — header, frame lengths,
// DEFLATE bytes — and records its runs in the footer segment lists at
// the offset the block landed on. On the pipelined path this runs on
// the drain goroutine, which owns both the sink and the segment lists
// until Close joins it.
func (sw *StreamWriter) writeBlock(header []byte, rawLen int, comp []byte, refs []segRef) {
	off := sw.sink.off
	sw.sink.write(header)
	sw.sink.writeUvarint(uint64(rawLen))
	sw.sink.writeUvarint(uint64(len(comp)))
	sw.sink.write(comp)
	for _, ref := range refs {
		re := &sw.ranks[ref.rank]
		re.segs = append(re.segs, v2Segment{off: off, count: ref.count})
	}
}

// writeCompressedPayload DEFLATE-compresses the assembled sw.payload
// and writes it framed as uvarint raw len, uvarint compressed len,
// compressed bytes — the footer's framing. The payload buffer is reset
// for the next use.
func (sw *StreamWriter) writeCompressedPayload() {
	if sw.err != nil {
		sw.payload = sw.payload[:0]
		return
	}
	if sw.comp == nil {
		c, err := getCompressor(sw.level)
		if err != nil {
			sw.err = err
			return
		}
		sw.comp = c
	}
	comp, err := sw.comp.compress(sw.payload)
	if err != nil {
		sw.err = err
		return
	}
	sw.sink.writeUvarint(uint64(len(sw.payload)))
	sw.sink.writeUvarint(uint64(len(comp)))
	sw.sink.write(comp)
	sw.payload = sw.payload[:0]
}

// commonPrefixLen returns the length of the longest common prefix of a
// and b.
func commonPrefixLen(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// Close flushes the pending segments, joins the compression pipeline,
// and writes the dictionary, footer, and trailer. It returns the first
// error the writer encountered. Close is idempotent; Append after
// Close is an error.
func (sw *StreamWriter) Close() error {
	if sw.closed {
		return sw.err
	}
	sw.closed = true
	// Drain rank tails into multi-rank blocks of bounded size: one
	// block for a small trace, ~v2DrainBlockEvents-event blocks for a
	// wide one (a tail larger than the budget flushes alone).
	lo, pending := 0, 0
	for r := range sw.ranks {
		n := len(sw.ranks[r].kinds)
		if pending > 0 && pending+n > v2DrainBlockEvents {
			sw.flushRanks(lo, r)
			lo, pending = r, 0
		}
		pending += n
	}
	sw.flushRanks(lo, len(sw.ranks))
	if sw.pipe != nil {
		// Join: every submitted block is compressed and written, and
		// sink ownership passes back to this goroutine.
		if err := sw.pipe.finish(); err != nil && sw.err == nil {
			sw.err = err
		}
		sw.pipe = nil
	}
	for r := range sw.ranks {
		sw.ranks[r].release()
	}
	footerOff := sw.sink.off

	// Dictionary: keys sorted for front-coding, then the permutation
	// from first-seen index (what segments reference) to sorted slot.
	sorted := append([]string(nil), sw.keys...)
	sort.Strings(sorted)
	pos := make(map[string]int, len(sorted))
	for i, k := range sorted {
		pos[k] = i
	}
	payload := sw.payload[:0]
	payload = binary.AppendUvarint(payload, uint64(len(sorted)))
	prev := ""
	for _, k := range sorted {
		p := commonPrefixLen(prev, k)
		payload = binary.AppendUvarint(payload, uint64(p))
		payload = binary.AppendUvarint(payload, uint64(len(k)-p))
		payload = append(payload, k[p:]...)
		prev = k
	}
	for _, k := range sw.keys {
		payload = binary.AppendUvarint(payload, uint64(pos[k]))
	}

	// Rank index.
	payload = binary.AppendUvarint(payload, uint64(len(sw.ranks)))
	for r := range sw.ranks {
		re := &sw.ranks[r]
		payload = binary.AppendUvarint(payload, uint64(re.events))
		payload = binary.AppendUvarint(payload, uint64(re.sends))
		payload = binary.AppendUvarint(payload, uint64(re.recvs))
		payload = binary.AppendVarint(payload, re.maxSendID)
		payload = binary.AppendUvarint(payload, uint64(len(re.segs)))
		for _, s := range re.segs {
			payload = binary.AppendUvarint(payload, uint64(s.off))
			payload = binary.AppendUvarint(payload, uint64(s.count))
		}
	}
	sw.payload = payload
	sw.writeCompressedPayload()

	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(footerOff))
	sw.sink.write(b[:])
	sw.sink.write(binaryMagicV2[:])
	if ferr := sw.sink.bw.Flush(); sw.sink.err == nil {
		sw.sink.err = ferr
	}
	if sw.err == nil {
		sw.err = sw.sink.err
	}
	putCompressor(sw.comp)
	sw.comp = nil
	putBuf(sw.payload)
	putBuf(sw.header)
	sw.payload, sw.header = nil, nil
	return sw.err
}

// Err returns the writer's sticky usage or compression error without
// closing it. I/O errors from pipelined block writes surface at Close,
// when the pipeline is joined.
func (sw *StreamWriter) Err() error {
	if sw.err != nil {
		return sw.err
	}
	if sw.pipe == nil {
		return sw.sink.err
	}
	return nil
}

// NumEvents returns how many events have been appended.
func (sw *StreamWriter) NumEvents() int { return sw.total }

// WriteBinaryV2 serializes the trace in the v2 binary format with
// default codec options.
func (t *Trace) WriteBinaryV2(w io.Writer) error {
	return t.WriteBinaryV2Options(w, CodecOptions{})
}

// WriteBinaryV2Options serializes the trace in the v2 binary format
// with explicit codec options. The output bytes depend on the
// compression level but never on the worker count.
func (t *Trace) WriteBinaryV2Options(w io.Writer, opts CodecOptions) error {
	sw := NewStreamWriterOptions(w, t.Meta, opts)
	for _, evs := range t.Events {
		for i := range evs {
			sw.Append(evs[i])
		}
	}
	return sw.Close()
}

// SaveBinaryV2File writes the trace to path in the v2 binary format.
func (t *Trace) SaveBinaryV2File(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return t.WriteBinaryV2(f)
}
