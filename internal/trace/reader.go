package trace

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"sort"

	"github.com/anacin-go/anacinx/internal/vtime"
)

// Reader decodes a v2 binary trace (see binaryv2.go) without
// materializing a *Trace: the footer index is loaded up front, and
// per-rank Cursors then stream events one segment of columns at a time.
// Opening a Reader costs the meta block, the callstack dictionary, and
// the rank index — independent of event count — and a cursor's working
// set is one segment, so consumers that fold over events (the graph
// builder, the streaming kernel path, OrderHash) run in flat memory
// regardless of run length.
//
// A Reader is safe for concurrent cursor use: Cursors read through
// io.ReaderAt and share no mutable state.
type Reader struct {
	src    io.ReaderAt
	closer io.Closer

	meta      Meta
	keys      []string   // dictionary, in stack-index order
	frames    [][]string // split frames per key (nil for "(unknown)")
	ranks     []rankIndex
	footerOff int64
	total     int
	maxSeg    int
	dictBytes int64
	size      int64
}

// rankIndex is one rank's footer entry.
type rankIndex struct {
	events, sends, recvs int
	maxSendID            int64
	segs                 []v2Segment
}

// sectionDecoder reads varint-framed fields from a byte-range of the
// underlying file.
type sectionDecoder struct {
	br *bufio.Reader
}

func newSectionDecoder(src io.ReaderAt, off, n int64) *sectionDecoder {
	return &sectionDecoder{br: bufio.NewReader(io.NewSectionReader(src, off, n))}
}

func (d *sectionDecoder) uvarint() (uint64, error) { return binary.ReadUvarint(d.br) }
func (d *sectionDecoder) varint() (int64, error)   { return binary.ReadVarint(d.br) }

func (d *sectionDecoder) stringN(n uint64) (string, error) {
	if n > 1<<20 {
		return "", fmt.Errorf("trace: unreasonable string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func (d *sectionDecoder) string() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	return d.stringN(n)
}

// inflateFrame reads a compressed frame (uvarint raw len, uvarint
// compressed len, DEFLATE bytes) from br and returns the decompressed
// payload. maxRaw bounds the claimed raw size so corrupted length
// fields cannot force huge allocations; maxComp bounds the compressed
// bytes by the space actually available in the file section.
func inflateFrame(br *bufio.Reader, maxRaw, maxComp int64, what string) ([]byte, error) {
	rawLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", what, err)
	}
	compLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", what, err)
	}
	if int64(rawLen) > maxRaw {
		return nil, fmt.Errorf("trace: %s: unreasonable payload size %d", what, rawLen)
	}
	if int64(compLen) > maxComp {
		return nil, fmt.Errorf("trace: %s: compressed size %d exceeds section", what, compLen)
	}
	fr := flate.NewReader(io.LimitReader(br, int64(compLen)))
	var buf bytes.Buffer
	if rawLen <= 1<<20 {
		// Pre-size only when the claim is modest; a corrupted claim
		// within maxRaw must not force a huge allocation before the
		// inflate fails on its own.
		buf.Grow(int(rawLen))
	}
	n, err := io.Copy(&buf, io.LimitReader(fr, int64(rawLen)+1))
	if err != nil {
		return nil, fmt.Errorf("trace: %s: inflate: %w", what, err)
	}
	if n != int64(rawLen) {
		return nil, fmt.Errorf("trace: %s: payload is %d bytes, frame declares %d", what, n, rawLen)
	}
	return buf.Bytes(), nil
}

// OpenReader opens a v2 binary trace file for streaming access. The
// caller must Close the Reader to release the file. v1 files are
// rejected (they carry no index; load them with LoadBinaryFile).
func OpenReader(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	r, err := NewReader(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	r.closer = f
	return r, nil
}

// NewReader opens a v2 binary trace held by src (size bytes) for
// streaming access. Close is a no-op for readers constructed this way.
func NewReader(src io.ReaderAt, size int64) (*Reader, error) {
	if size < 8+v2TrailerSize {
		return nil, fmt.Errorf("trace: file too short (%d bytes) for a v2 binary trace", size)
	}
	var head [8]byte
	if _, err := src.ReadAt(head[:], 0); err != nil {
		return nil, fmt.Errorf("trace: binary header: %w", err)
	}
	if head != binaryMagicV2 {
		if head == binaryMagic {
			return nil, fmt.Errorf("trace: v1 binary trace has no seekable index; load it with LoadBinaryFile")
		}
		return nil, unknownMagicError(head)
	}
	var trailer [v2TrailerSize]byte
	if _, err := src.ReadAt(trailer[:], size-v2TrailerSize); err != nil {
		return nil, fmt.Errorf("trace: v2 trailer: %w", err)
	}
	var tail [8]byte
	copy(tail[:], trailer[8:])
	if tail != binaryMagicV2 {
		return nil, fmt.Errorf("trace: truncated v2 binary trace (no trailing magic)")
	}
	footerOff := int64(binary.LittleEndian.Uint64(trailer[:8]))
	if footerOff < 8 || footerOff > size-v2TrailerSize {
		return nil, fmt.Errorf("trace: v2 footer offset %d out of range", footerOff)
	}
	r := &Reader{src: src, footerOff: footerOff, size: size}

	// Meta block.
	d := newSectionDecoder(src, 8, footerOff-8)
	var err error
	if r.meta.Pattern, err = d.string(); err != nil {
		return nil, fmt.Errorf("trace: v2 meta: %w", err)
	}
	ints := make([]int64, 4)
	for i := range ints {
		if ints[i], err = d.varint(); err != nil {
			return nil, fmt.Errorf("trace: v2 meta: %w", err)
		}
	}
	r.meta.Procs = int(ints[0])
	r.meta.Nodes = int(ints[1])
	r.meta.Iterations = int(ints[2])
	r.meta.MsgSize = int(ints[3])
	var bits [8]byte
	if _, err := io.ReadFull(d.br, bits[:]); err != nil {
		return nil, fmt.Errorf("trace: v2 meta: %w", err)
	}
	r.meta.NDPercent = math.Float64frombits(binary.LittleEndian.Uint64(bits[:]))
	if r.meta.Seed, err = d.varint(); err != nil {
		return nil, fmt.Errorf("trace: v2 meta: %w", err)
	}
	if r.meta.Procs < 0 || r.meta.Procs > 1<<22 {
		return nil, fmt.Errorf("trace: unreasonable proc count %d", r.meta.Procs)
	}

	if err := r.readFooter(); err != nil {
		return nil, err
	}
	return r, nil
}

// readFooter inflates and parses the dictionary and rank index.
func (r *Reader) readFooter() error {
	section := r.size - v2TrailerSize - r.footerOff
	fd := newSectionDecoder(r.src, r.footerOff, section)
	// A corrupted raw-length claim is bounded by DEFLATE's worst-case
	// expansion of the compressed bytes actually present in the section.
	payload, err := inflateFrame(fd.br, 1040*section+64, section, "v2 footer")
	if err != nil {
		return err
	}
	d := &sectionDecoder{br: bufio.NewReader(bytes.NewReader(payload))}

	nKeys, err := d.uvarint()
	if err != nil {
		return fmt.Errorf("trace: v2 dictionary: %w", err)
	}
	if nKeys > 1<<22 {
		return fmt.Errorf("trace: unreasonable callstack table size %d", nKeys)
	}
	sorted := make([]string, nKeys)
	prev := ""
	for i := range sorted {
		p, err := d.uvarint()
		if err != nil {
			return fmt.Errorf("trace: v2 dictionary: %w", err)
		}
		if p > uint64(len(prev)) {
			return fmt.Errorf("trace: v2 dictionary entry %d: prefix %d exceeds predecessor length %d", i, p, len(prev))
		}
		suffix, err := d.string()
		if err != nil {
			return fmt.Errorf("trace: v2 dictionary: %w", err)
		}
		sorted[i] = prev[:p] + suffix
		prev = sorted[i]
	}
	r.keys = make([]string, nKeys)
	r.frames = make([][]string, nKeys)
	for i := range r.keys {
		p, err := d.uvarint()
		if err != nil {
			return fmt.Errorf("trace: v2 dictionary: %w", err)
		}
		if p >= nKeys {
			return fmt.Errorf("trace: v2 dictionary permutation entry %d out of table", p)
		}
		r.keys[i] = sorted[p]
		if r.keys[i] != "(unknown)" {
			r.frames[i] = splitCallstackKey(r.keys[i])
		}
	}

	nRanks, err := d.uvarint()
	if err != nil {
		return fmt.Errorf("trace: v2 rank index: %w", err)
	}
	if int(nRanks) != r.meta.Procs {
		return fmt.Errorf("trace: v2 rank index has %d ranks, meta declares %d", nRanks, r.meta.Procs)
	}
	r.ranks = make([]rankIndex, nRanks)
	for rank := range r.ranks {
		ri := &r.ranks[rank]
		events, err := d.uvarint()
		if err != nil {
			return fmt.Errorf("trace: v2 rank index: %w", err)
		}
		if events > 1<<30 {
			return fmt.Errorf("trace: unreasonable event count %d", events)
		}
		sends, err := d.uvarint()
		if err != nil {
			return fmt.Errorf("trace: v2 rank index: %w", err)
		}
		recvs, err := d.uvarint()
		if err != nil {
			return fmt.Errorf("trace: v2 rank index: %w", err)
		}
		maxSendID, err := d.varint()
		if err != nil {
			return fmt.Errorf("trace: v2 rank index: %w", err)
		}
		nSegs, err := d.uvarint()
		if err != nil {
			return fmt.Errorf("trace: v2 rank index: %w", err)
		}
		if nSegs > events {
			return fmt.Errorf("trace: v2 rank %d: %d segments for %d events", rank, nSegs, events)
		}
		ri.events = int(events)
		ri.sends = int(sends)
		ri.recvs = int(recvs)
		ri.maxSendID = maxSendID
		ri.segs = make([]v2Segment, nSegs)
		var sum int
		for i := range ri.segs {
			off, err := d.uvarint()
			if err != nil {
				return fmt.Errorf("trace: v2 rank index: %w", err)
			}
			count, err := d.uvarint()
			if err != nil {
				return fmt.Errorf("trace: v2 rank index: %w", err)
			}
			if int64(off) < 8 || int64(off) >= r.footerOff {
				return fmt.Errorf("trace: v2 rank %d segment %d: offset %d out of data section", rank, i, off)
			}
			if count == 0 || count > events {
				return fmt.Errorf("trace: v2 rank %d segment %d: bad count %d", rank, i, count)
			}
			ri.segs[i] = v2Segment{off: int64(off), count: int(count)}
			sum += int(count)
			if int(count) > r.maxSeg {
				r.maxSeg = int(count)
			}
		}
		if sum != ri.events {
			return fmt.Errorf("trace: v2 rank %d: segments hold %d events, index declares %d", rank, sum, ri.events)
		}
		r.total += ri.events
	}
	return nil
}

// Meta returns the run description stored in the header.
func (r *Reader) Meta() Meta { return r.meta }

// Procs returns the number of ranks in the trace.
func (r *Reader) Procs() int { return len(r.ranks) }

// NumEvents returns the total event count across all ranks (from the
// footer, without decoding).
func (r *Reader) NumEvents() int { return r.total }

// RankCounts returns rank's footer entry: its event count, its counts
// of message-carrying sends and receives, and the largest MsgID among
// its sends (-1 if none). These are exactly the inputs the parallel
// graph layout needs.
func (r *Reader) RankCounts(rank int) (events, sends, recvs int, maxSendID int64) {
	ri := &r.ranks[rank]
	return ri.events, ri.sends, ri.recvs, ri.maxSendID
}

// Callstacks returns the distinct callstack keys in the trace, sorted —
// the same set Trace.Callstacks reports after materializing.
func (r *Reader) Callstacks() []string {
	keys := append([]string(nil), r.keys...)
	sort.Strings(keys)
	return keys
}

// Close releases the underlying file when the Reader was constructed by
// OpenReader; otherwise it is a no-op.
func (r *Reader) Close() error {
	if r.closer == nil {
		return nil
	}
	c := r.closer
	r.closer = nil
	return c.Close()
}

// Cursor returns a fresh streaming cursor over rank's events. Multiple
// cursors (of the same or different ranks) may be used concurrently.
func (r *Reader) Cursor(rank int) *Cursor {
	c := &Cursor{r: r, rank: rank}
	if rank < 0 || rank >= len(r.ranks) {
		c.err = fmt.Errorf("trace: cursor rank %d out of range [0,%d)", rank, len(r.ranks))
	}
	return c
}

// Cursor streams one rank's events in sequence order, decoding one
// segment of columns at a time.
type Cursor struct {
	r      *Reader
	rank   int
	segIdx int
	pos, n int
	seq    int
	err    error

	br       *bufio.Reader
	pr       bytes.Reader
	kinds    []byte
	peers    []int64
	tags     []int64
	sizes    []int64
	msgIDs   []int64
	chanSeqs []int64
	times    []int64
	lamports []int64
	stacks   []int32
}

// Err returns the first decode error the cursor hit, or nil.
func (c *Cursor) Err() error { return c.err }

// Next decodes the next event into *ev and reports whether one was
// available. After Next returns false, Err distinguishes end-of-stream
// from a decode failure. The event's Callstack (and cached key) alias
// the Reader's dictionary and must be treated as immutable.
func (c *Cursor) Next(ev *Event) bool {
	if c.err != nil {
		return false
	}
	for c.pos == c.n {
		if c.segIdx == len(c.r.ranks[c.rank].segs) {
			return false
		}
		if err := c.loadSegment(c.r.ranks[c.rank].segs[c.segIdx]); err != nil {
			c.err = err
			return false
		}
		c.segIdx++
	}
	i := c.pos
	*ev = Event{
		Rank:    c.rank,
		Seq:     c.seq,
		Kind:    EventKind(c.kinds[i]),
		Peer:    int(c.peers[i]),
		Tag:     int(c.tags[i]),
		Size:    int(c.sizes[i]),
		MsgID:   c.msgIDs[i],
		ChanSeq: int(c.chanSeqs[i]),
		Time:    vtime.Time(c.times[i]),
		Lamport: c.lamports[i],
	}
	if si := c.stacks[i]; c.r.frames[si] != nil {
		ev.Callstack = c.r.frames[si]
		ev.ckey = c.r.keys[si]
	}
	c.pos++
	c.seq++
	return true
}

// growI64 returns s resized to n, reallocating only when needed.
func growI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

// skipVarints discards n varints from pr.
func skipVarints(pr *bytes.Reader, n int) error {
	for i := 0; i < n; i++ {
		for {
			b, err := pr.ReadByte()
			if err != nil {
				return err
			}
			if b < 0x80 {
				break
			}
		}
	}
	return nil
}

// skipRun discards one sibling run's columns (n kind bytes, then eight
// varint columns of n values) from pr.
func skipRun(pr *bytes.Reader, n int) error {
	if _, err := pr.Seek(int64(n), io.SeekCurrent); err != nil {
		return err
	}
	return skipVarints(pr, 8*n)
}

// loadSegment inflates one segment block's payload and decodes the
// cursor's rank's run into its reusable buffers; sibling ranks' runs in
// the same block are varint-skipped.
func (c *Cursor) loadSegment(seg v2Segment) error {
	sr := io.NewSectionReader(c.r.src, seg.off, c.r.footerOff-seg.off)
	if c.br == nil {
		c.br = bufio.NewReader(sr)
	} else {
		c.br.Reset(sr)
	}
	nRuns, err := binary.ReadUvarint(c.br)
	if err != nil {
		return fmt.Errorf("trace: v2 block at %d: %w", seg.off, err)
	}
	if nRuns == 0 || nRuns > uint64(len(c.r.ranks)) {
		return fmt.Errorf("trace: v2 block at %d: %d runs for %d ranks", seg.off, nRuns, len(c.r.ranks))
	}
	type run struct{ rank, count int }
	runs := make([]run, nRuns)
	total, myIdx := 0, -1
	for i := range runs {
		rank, err := binary.ReadUvarint(c.br)
		if err != nil {
			return fmt.Errorf("trace: v2 block at %d: %w", seg.off, err)
		}
		count, err := binary.ReadUvarint(c.br)
		if err != nil {
			return fmt.Errorf("trace: v2 block at %d: %w", seg.off, err)
		}
		if count == 0 || count > 1<<30 {
			return fmt.Errorf("trace: v2 block at %d: bad run count %d", seg.off, count)
		}
		runs[i] = run{rank: int(rank), count: int(count)}
		total += int(count)
		if int(rank) == c.rank {
			if myIdx != -1 {
				return fmt.Errorf("trace: v2 block at %d: rank %d appears twice", seg.off, rank)
			}
			if int(count) != seg.count {
				return fmt.Errorf("trace: v2 block at %d: run count %d, index says %d", seg.off, count, seg.count)
			}
			myIdx = i
		}
	}
	if myIdx == -1 {
		return fmt.Errorf("trace: v2 block at %d: no run for rank %d", seg.off, c.rank)
	}
	payload, err := inflateFrame(c.br,
		int64(total)*v2MaxPayloadBytesPerEvent+64, c.r.footerOff-seg.off,
		fmt.Sprintf("v2 block at %d", seg.off))
	if err != nil {
		return err
	}
	c.pr.Reset(payload)
	for i := 0; i < myIdx; i++ {
		if err := skipRun(&c.pr, runs[i].count); err != nil {
			return fmt.Errorf("trace: v2 block at %d: skipping rank %d run: %w", seg.off, runs[i].rank, err)
		}
	}
	n := seg.count
	if cap(c.kinds) < n {
		c.kinds = make([]byte, n)
		c.stacks = make([]int32, n)
	}
	c.kinds = c.kinds[:n]
	c.stacks = c.stacks[:n]
	if _, err := io.ReadFull(&c.pr, c.kinds); err != nil {
		return fmt.Errorf("trace: v2 segment at %d: kinds: %w", seg.off, err)
	}
	c.peers = growI64(c.peers, n)
	c.tags = growI64(c.tags, n)
	c.sizes = growI64(c.sizes, n)
	c.msgIDs = growI64(c.msgIDs, n)
	c.chanSeqs = growI64(c.chanSeqs, n)
	c.times = growI64(c.times, n)
	c.lamports = growI64(c.lamports, n)
	for _, col := range []struct {
		vals  []int64
		delta bool
		name  string
	}{
		{c.peers, false, "peers"},
		{c.tags, false, "tags"},
		{c.sizes, false, "sizes"},
		{c.msgIDs, true, "msg ids"},
		{c.chanSeqs, true, "chan seqs"},
		{c.times, true, "times"},
		{c.lamports, true, "lamports"},
	} {
		var prev int64
		for i := 0; i < n; i++ {
			v, err := binary.ReadVarint(&c.pr)
			if err != nil {
				return fmt.Errorf("trace: v2 segment at %d: %s: %w", seg.off, col.name, err)
			}
			if col.delta {
				prev += v
				col.vals[i] = prev
			} else {
				col.vals[i] = v
			}
		}
	}
	for i := 0; i < n; i++ {
		si, err := binary.ReadUvarint(&c.pr)
		if err != nil {
			return fmt.Errorf("trace: v2 segment at %d: stacks: %w", seg.off, err)
		}
		if si >= uint64(len(c.r.keys)) {
			return fmt.Errorf("trace: callstack index %d out of table", si)
		}
		c.stacks[i] = int32(si)
	}
	for i := myIdx + 1; i < len(runs); i++ {
		if err := skipRun(&c.pr, runs[i].count); err != nil {
			return fmt.Errorf("trace: v2 block at %d: skipping rank %d run: %w", seg.off, runs[i].rank, err)
		}
	}
	if c.pr.Len() != 0 {
		return fmt.Errorf("trace: v2 block at %d: %d trailing payload bytes", seg.off, c.pr.Len())
	}
	c.pos, c.n = 0, n
	return nil
}

// OrderHash streams the communication-structure hash of the trace —
// identical to materializing it and calling Trace.OrderHash.
func (r *Reader) OrderHash() (uint64, error) {
	h := fnv.New64a()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	var ev Event
	for rank := range r.ranks {
		writeInt(int64(r.ranks[rank].events))
		c := r.Cursor(rank)
		for c.Next(&ev) {
			writeInt(int64(ev.Kind))
			writeInt(int64(ev.Peer))
			writeInt(int64(ev.Tag))
			writeInt(int64(ev.ChanSeq))
		}
		if err := c.Err(); err != nil {
			return 0, err
		}
	}
	return h.Sum64(), nil
}

// ToTrace materializes the full *Trace and validates it — the v2 analog
// of ReadBinary's v1 path.
func (r *Reader) ToTrace() (*Trace, error) {
	t := New(r.meta)
	var ev Event
	for rank := range r.ranks {
		if n := r.ranks[rank].events; n > 0 {
			t.Events[rank] = make([]Event, 0, n)
		}
		c := r.Cursor(rank)
		for c.Next(&ev) {
			t.Append(ev)
		}
		if err := c.Err(); err != nil {
			return nil, err
		}
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("trace: binary trace invalid: %w", err)
	}
	return t, nil
}

// FooterStats summarizes a v2 file's index for inspection tooling.
type FooterStats struct {
	// Ranks is the rank count; Segments the total segment count.
	Ranks, Segments int
	// Events is the total event count; MaxSegmentEvents the largest
	// single segment.
	Events, MaxSegmentEvents int
	// Sends and Recvs count message-carrying send and receive events.
	Sends, Recvs int
	// DictEntries is the callstack dictionary size.
	DictEntries int
	// DataBytes is the size of the segment section, FooterBytes of the
	// footer (dictionary + rank index), FileBytes of the whole file.
	DataBytes, FooterBytes, FileBytes int64
}

// Stats returns the file's footer statistics.
func (r *Reader) Stats() FooterStats {
	st := FooterStats{
		Ranks:            len(r.ranks),
		Events:           r.total,
		MaxSegmentEvents: r.maxSeg,
		DictEntries:      len(r.keys),
		DataBytes:        r.footerOff - 8,
		FooterBytes:      r.size - v2TrailerSize - r.footerOff,
		FileBytes:        r.size,
	}
	for i := range r.ranks {
		st.Segments += len(r.ranks[i].segs)
		st.Sends += r.ranks[i].sends
		st.Recvs += r.ranks[i].recvs
	}
	return st
}
