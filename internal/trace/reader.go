package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"

	"github.com/anacin-go/anacinx/internal/vtime"
)

// Reader decodes a v2 binary trace (see binaryv2.go) without
// materializing a *Trace: the footer index is loaded up front, and
// per-rank Cursors then stream events one segment of columns at a time.
// Opening a Reader costs the meta block, the callstack dictionary, and
// the rank index — independent of event count — and a cursor's working
// set is one segment, so consumers that fold over events (the graph
// builder, the streaming kernel path, OrderHash) run in flat memory
// regardless of run length.
//
// A Reader is safe for concurrent cursor use: Cursors read through
// io.ReaderAt, and the only mutable state they share — the cache of
// inflated multi-rank drain blocks — is mutex-guarded (sharedBlock).
type Reader struct {
	src    io.ReaderAt
	closer io.Closer

	meta      Meta
	keys      []string   // dictionary, in stack-index order
	frames    [][]string // split frames per key (nil for "(unknown)")
	ranks     []rankIndex
	footerOff int64
	total     int
	maxSeg    int
	dictBytes int64
	size      int64

	// shared caches the inflated payload and run list of every block
	// referenced by two or more ranks (the multi-rank drain blocks
	// Close packs tails into), so N cursors crossing one block cost one
	// inflate instead of N. Built once at open; lookups are lock-free,
	// per-block state is mutex-guarded.
	shared map[int64]*sharedBlock
}

// rankIndex is one rank's footer entry.
type rankIndex struct {
	events, sends, recvs int
	maxSendID            int64
	segs                 []v2Segment
}

// sectionDecoder reads varint-framed fields from a byte-range of the
// underlying file.
type sectionDecoder struct {
	br *bufio.Reader
}

func newSectionDecoder(src io.ReaderAt, off, n int64) *sectionDecoder {
	return &sectionDecoder{br: bufio.NewReader(io.NewSectionReader(src, off, n))}
}

func (d *sectionDecoder) uvarint() (uint64, error) { return binary.ReadUvarint(d.br) }
func (d *sectionDecoder) varint() (int64, error)   { return binary.ReadVarint(d.br) }

func (d *sectionDecoder) stringN(n uint64) (string, error) {
	if n > 1<<20 {
		return "", fmt.Errorf("trace: unreasonable string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func (d *sectionDecoder) string() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	return d.stringN(n)
}

// inflateFrame reads a compressed frame (uvarint raw len, uvarint
// compressed len, DEFLATE bytes) from br and returns the decompressed
// payload, inflated into dst when its capacity suffices (pass nil for a
// fresh allocation the caller may retain). The inflater itself comes
// from the process-wide pool (codec.go) instead of being constructed
// per frame. maxRaw bounds the claimed raw size so corrupted length
// fields cannot force huge allocations; maxComp bounds the compressed
// bytes by the space actually available in the file section.
func inflateFrame(br *bufio.Reader, dst []byte, maxRaw, maxComp int64, what string) ([]byte, error) {
	rawLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", what, err)
	}
	compLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", what, err)
	}
	if int64(rawLen) > maxRaw {
		return nil, fmt.Errorf("trace: %s: unreasonable payload size %d", what, rawLen)
	}
	if int64(compLen) > maxComp {
		return nil, fmt.Errorf("trace: %s: compressed size %d exceeds section", what, compLen)
	}
	fr := getInflater(io.LimitReader(br, int64(compLen)))
	defer putInflater(fr)
	if rawLen > 1<<20 {
		// A huge claim (within maxRaw) must not force a huge allocation
		// before the inflate proves it real: grow incrementally.
		var buf bytes.Buffer
		n, err := io.Copy(&buf, io.LimitReader(fr, int64(rawLen)+1))
		if err != nil {
			return nil, fmt.Errorf("trace: %s: inflate: %w", what, err)
		}
		if n != int64(rawLen) {
			return nil, fmt.Errorf("trace: %s: payload is %d bytes, frame declares %d", what, n, rawLen)
		}
		return buf.Bytes(), nil
	}
	if cap(dst) < int(rawLen) {
		dst = make([]byte, rawLen)
	}
	dst = dst[:rawLen]
	if _, err := io.ReadFull(fr, dst); err != nil {
		return nil, fmt.Errorf("trace: %s: inflate: %w", what, err)
	}
	var extra [1]byte
	if n, err := fr.Read(extra[:]); n != 0 || (err != nil && err != io.EOF) {
		if n != 0 {
			return nil, fmt.Errorf("trace: %s: payload exceeds declared %d bytes", what, rawLen)
		}
		return nil, fmt.Errorf("trace: %s: inflate: %w", what, err)
	}
	return dst, nil
}

// OpenReader opens a v2 binary trace file for streaming access. The
// caller must Close the Reader to release the file. v1 files are
// rejected (they carry no index; load them with LoadBinaryFile).
func OpenReader(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	r, err := NewReader(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	r.closer = f
	return r, nil
}

// NewReader opens a v2 binary trace held by src (size bytes) for
// streaming access. Close is a no-op for readers constructed this way.
func NewReader(src io.ReaderAt, size int64) (*Reader, error) {
	if size < 8+v2TrailerSize {
		return nil, fmt.Errorf("trace: file too short (%d bytes) for a v2 binary trace", size)
	}
	var head [8]byte
	if _, err := src.ReadAt(head[:], 0); err != nil {
		return nil, fmt.Errorf("trace: binary header: %w", err)
	}
	if head != binaryMagicV2 {
		if head == binaryMagic {
			return nil, fmt.Errorf("trace: v1 binary trace has no seekable index; load it with LoadBinaryFile")
		}
		return nil, unknownMagicError(head)
	}
	var trailer [v2TrailerSize]byte
	if _, err := src.ReadAt(trailer[:], size-v2TrailerSize); err != nil {
		return nil, fmt.Errorf("trace: v2 trailer: %w", err)
	}
	var tail [8]byte
	copy(tail[:], trailer[8:])
	if tail != binaryMagicV2 {
		return nil, fmt.Errorf("trace: truncated v2 binary trace (no trailing magic)")
	}
	footerOff := int64(binary.LittleEndian.Uint64(trailer[:8]))
	if footerOff < 8 || footerOff > size-v2TrailerSize {
		return nil, fmt.Errorf("trace: v2 footer offset %d out of range", footerOff)
	}
	r := &Reader{src: src, footerOff: footerOff, size: size}

	// Meta block.
	d := newSectionDecoder(src, 8, footerOff-8)
	var err error
	if r.meta.Pattern, err = d.string(); err != nil {
		return nil, fmt.Errorf("trace: v2 meta: %w", err)
	}
	ints := make([]int64, 4)
	for i := range ints {
		if ints[i], err = d.varint(); err != nil {
			return nil, fmt.Errorf("trace: v2 meta: %w", err)
		}
	}
	r.meta.Procs = int(ints[0])
	r.meta.Nodes = int(ints[1])
	r.meta.Iterations = int(ints[2])
	r.meta.MsgSize = int(ints[3])
	var bits [8]byte
	if _, err := io.ReadFull(d.br, bits[:]); err != nil {
		return nil, fmt.Errorf("trace: v2 meta: %w", err)
	}
	r.meta.NDPercent = math.Float64frombits(binary.LittleEndian.Uint64(bits[:]))
	if r.meta.Seed, err = d.varint(); err != nil {
		return nil, fmt.Errorf("trace: v2 meta: %w", err)
	}
	if r.meta.Procs < 0 || r.meta.Procs > 1<<22 {
		return nil, fmt.Errorf("trace: unreasonable proc count %d", r.meta.Procs)
	}

	if err := r.readFooter(); err != nil {
		return nil, err
	}
	r.buildSharedIndex()
	return r, nil
}

// buildSharedIndex registers every block offset referenced by more than
// one rank for cross-cursor payload caching.
func (r *Reader) buildSharedIndex() {
	counts := make(map[int64]int)
	for i := range r.ranks {
		for _, s := range r.ranks[i].segs {
			counts[s.off]++
		}
	}
	for i := range r.ranks {
		for _, s := range r.ranks[i].segs {
			if counts[s.off] < 2 {
				continue
			}
			if r.shared == nil {
				r.shared = make(map[int64]*sharedBlock)
			}
			if r.shared[s.off] == nil {
				r.shared[s.off] = &sharedBlock{refs: counts[s.off]}
			}
		}
	}
}

// readFooter inflates and parses the dictionary and rank index.
func (r *Reader) readFooter() error {
	section := r.size - v2TrailerSize - r.footerOff
	fd := newSectionDecoder(r.src, r.footerOff, section)
	// A corrupted raw-length claim is bounded by DEFLATE's worst-case
	// expansion of the compressed bytes actually present in the section.
	payload, err := inflateFrame(fd.br, nil, 1040*section+64, section, "v2 footer")
	if err != nil {
		return err
	}
	d := &sectionDecoder{br: bufio.NewReader(bytes.NewReader(payload))}

	nKeys, err := d.uvarint()
	if err != nil {
		return fmt.Errorf("trace: v2 dictionary: %w", err)
	}
	if nKeys > 1<<22 {
		return fmt.Errorf("trace: unreasonable callstack table size %d", nKeys)
	}
	sorted := make([]string, nKeys)
	prev := ""
	for i := range sorted {
		p, err := d.uvarint()
		if err != nil {
			return fmt.Errorf("trace: v2 dictionary: %w", err)
		}
		if p > uint64(len(prev)) {
			return fmt.Errorf("trace: v2 dictionary entry %d: prefix %d exceeds predecessor length %d", i, p, len(prev))
		}
		suffix, err := d.string()
		if err != nil {
			return fmt.Errorf("trace: v2 dictionary: %w", err)
		}
		sorted[i] = prev[:p] + suffix
		prev = sorted[i]
	}
	r.keys = make([]string, nKeys)
	r.frames = make([][]string, nKeys)
	for i := range r.keys {
		p, err := d.uvarint()
		if err != nil {
			return fmt.Errorf("trace: v2 dictionary: %w", err)
		}
		if p >= nKeys {
			return fmt.Errorf("trace: v2 dictionary permutation entry %d out of table", p)
		}
		r.keys[i] = sorted[p]
		if r.keys[i] != "(unknown)" {
			r.frames[i] = splitCallstackKey(r.keys[i])
		}
	}

	nRanks, err := d.uvarint()
	if err != nil {
		return fmt.Errorf("trace: v2 rank index: %w", err)
	}
	if int(nRanks) != r.meta.Procs {
		return fmt.Errorf("trace: v2 rank index has %d ranks, meta declares %d", nRanks, r.meta.Procs)
	}
	r.ranks = make([]rankIndex, nRanks)
	for rank := range r.ranks {
		ri := &r.ranks[rank]
		events, err := d.uvarint()
		if err != nil {
			return fmt.Errorf("trace: v2 rank index: %w", err)
		}
		if events > 1<<30 {
			return fmt.Errorf("trace: unreasonable event count %d", events)
		}
		sends, err := d.uvarint()
		if err != nil {
			return fmt.Errorf("trace: v2 rank index: %w", err)
		}
		recvs, err := d.uvarint()
		if err != nil {
			return fmt.Errorf("trace: v2 rank index: %w", err)
		}
		maxSendID, err := d.varint()
		if err != nil {
			return fmt.Errorf("trace: v2 rank index: %w", err)
		}
		nSegs, err := d.uvarint()
		if err != nil {
			return fmt.Errorf("trace: v2 rank index: %w", err)
		}
		if nSegs > events {
			return fmt.Errorf("trace: v2 rank %d: %d segments for %d events", rank, nSegs, events)
		}
		ri.events = int(events)
		ri.sends = int(sends)
		ri.recvs = int(recvs)
		ri.maxSendID = maxSendID
		ri.segs = make([]v2Segment, nSegs)
		var sum int
		for i := range ri.segs {
			off, err := d.uvarint()
			if err != nil {
				return fmt.Errorf("trace: v2 rank index: %w", err)
			}
			count, err := d.uvarint()
			if err != nil {
				return fmt.Errorf("trace: v2 rank index: %w", err)
			}
			if int64(off) < 8 || int64(off) >= r.footerOff {
				return fmt.Errorf("trace: v2 rank %d segment %d: offset %d out of data section", rank, i, off)
			}
			if count == 0 || count > events {
				return fmt.Errorf("trace: v2 rank %d segment %d: bad count %d", rank, i, count)
			}
			ri.segs[i] = v2Segment{off: int64(off), count: int(count)}
			sum += int(count)
			if int(count) > r.maxSeg {
				r.maxSeg = int(count)
			}
		}
		if sum != ri.events {
			return fmt.Errorf("trace: v2 rank %d: segments hold %d events, index declares %d", rank, sum, ri.events)
		}
		r.total += ri.events
	}
	return nil
}

// Meta returns the run description stored in the header.
func (r *Reader) Meta() Meta { return r.meta }

// Procs returns the number of ranks in the trace.
func (r *Reader) Procs() int { return len(r.ranks) }

// NumEvents returns the total event count across all ranks (from the
// footer, without decoding).
func (r *Reader) NumEvents() int { return r.total }

// RankCounts returns rank's footer entry: its event count, its counts
// of message-carrying sends and receives, and the largest MsgID among
// its sends (-1 if none). These are exactly the inputs the parallel
// graph layout needs.
func (r *Reader) RankCounts(rank int) (events, sends, recvs int, maxSendID int64) {
	ri := &r.ranks[rank]
	return ri.events, ri.sends, ri.recvs, ri.maxSendID
}

// Callstacks returns the distinct callstack keys in the trace, sorted —
// the same set Trace.Callstacks reports after materializing.
func (r *Reader) Callstacks() []string {
	keys := append([]string(nil), r.keys...)
	sort.Strings(keys)
	return keys
}

// Close releases the underlying file when the Reader was constructed by
// OpenReader; otherwise it is a no-op.
func (r *Reader) Close() error {
	if r.closer == nil {
		return nil
	}
	c := r.closer
	r.closer = nil
	return c.Close()
}

// blockRun names one run inside a block: the rank it belongs to and its
// event count.
type blockRun struct {
	rank, count int
}

// readBlockRuns parses a block's run list from br into runs (reused
// when capacity allows) and returns it with the block's total event
// count.
func readBlockRuns(r *Reader, br *bufio.Reader, off int64, runs []blockRun) ([]blockRun, int, error) {
	nRuns, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, 0, fmt.Errorf("trace: v2 block at %d: %w", off, err)
	}
	if nRuns == 0 || nRuns > uint64(len(r.ranks)) {
		return nil, 0, fmt.Errorf("trace: v2 block at %d: %d runs for %d ranks", off, nRuns, len(r.ranks))
	}
	total := 0
	for i := 0; i < int(nRuns); i++ {
		rank, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, 0, fmt.Errorf("trace: v2 block at %d: %w", off, err)
		}
		count, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, 0, fmt.Errorf("trace: v2 block at %d: %w", off, err)
		}
		if count == 0 || count > 1<<30 {
			return nil, 0, fmt.Errorf("trace: v2 block at %d: bad run count %d", off, count)
		}
		runs = append(runs, blockRun{rank: int(rank), count: int(count)})
		total += int(count)
	}
	return runs, total, nil
}

// loadBlock reads, parses, and inflates the block at off from scratch,
// returning a freshly allocated run list and payload (retainable — the
// shared cache hands them to multiple cursors).
func (r *Reader) loadBlock(off int64) ([]blockRun, []byte, error) {
	br := bufio.NewReader(io.NewSectionReader(r.src, off, r.footerOff-off))
	runs, total, err := readBlockRuns(r, br, off, nil)
	if err != nil {
		return nil, nil, err
	}
	payload, err := inflateFrame(br, nil,
		int64(total)*v2MaxPayloadBytesPerEvent+64, r.footerOff-off,
		fmt.Sprintf("v2 block at %d", off))
	if err != nil {
		return nil, nil, err
	}
	return runs, payload, nil
}

// sharedBlock caches one multi-rank block's inflated payload and run
// list across the cursors that reference it. The first cursor to arrive
// inflates; the rest reuse payload and run list without touching the
// file. refs counts the expected consumers (one per referencing rank);
// when the last one has been served the cache empties itself so a
// drained Reader pins no payload — a second iteration pass simply
// re-inflates per use.
type sharedBlock struct {
	mu      sync.Mutex
	refs    int
	loaded  bool
	err     error
	runs    []blockRun
	payload []byte
}

// acquire returns the block's payload and run list, inflating on first
// use. The returned slices are immutable shared state.
func (sb *sharedBlock) acquire(r *Reader, off int64) ([]byte, []blockRun, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if !sb.loaded {
		sb.runs, sb.payload, sb.err = r.loadBlock(off)
		sb.loaded = true
	}
	payload, runs, err := sb.payload, sb.runs, sb.err
	sb.refs--
	if sb.refs <= 0 {
		sb.loaded, sb.runs, sb.payload, sb.err = false, nil, nil, nil
	}
	return payload, runs, err
}

// skipNVarintsAt advances off past n varints in p.
func skipNVarintsAt(p []byte, off, n int) (int, error) {
	for i := 0; i < n; i++ {
		for {
			if off >= len(p) {
				return 0, io.ErrUnexpectedEOF
			}
			b := p[off]
			off++
			if b < 0x80 {
				break
			}
		}
	}
	return off, nil
}

// skipRunAt advances off past one sibling run's columns (count kind
// bytes, then eight varint columns of count values) in p.
func skipRunAt(p []byte, off, count int) (int, error) {
	if off+count > len(p) {
		return 0, io.ErrUnexpectedEOF
	}
	return skipNVarintsAt(p, off+count, 8*count)
}

// growI64 returns s resized to n, reallocating only when needed.
func growI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

// segBuf holds one decoded segment: the column buffers plus the private
// scratch (section reader, run list, inflate buffer) used to fill them.
// A cursor owns one (two with read-ahead, swapped as prefetches land);
// all buffers are reused across loads.
type segBuf struct {
	n        int
	kinds    []byte
	peers    []int64
	tags     []int64
	sizes    []int64
	msgIDs   []int64
	chanSeqs []int64
	times    []int64
	lamports []int64
	stacks   []int32

	br      *bufio.Reader
	runs    []blockRun
	payload []byte
}

// load decodes the block at seg into the buffer: rank's run lands in
// the column slices, sibling runs are varint-skipped. Shared blocks
// come inflated from the Reader's cache; private blocks are read and
// inflated into the segBuf's own scratch.
func (b *segBuf) load(r *Reader, rank int, seg v2Segment) error {
	var payload []byte
	var runs []blockRun
	if sh := r.shared[seg.off]; sh != nil {
		var err error
		payload, runs, err = sh.acquire(r, seg.off)
		if err != nil {
			return err
		}
	} else {
		sr := io.NewSectionReader(r.src, seg.off, r.footerOff-seg.off)
		if b.br == nil {
			b.br = bufio.NewReader(sr)
		} else {
			b.br.Reset(sr)
		}
		var total int
		var err error
		b.runs, total, err = readBlockRuns(r, b.br, seg.off, b.runs[:0])
		if err != nil {
			return err
		}
		runs = b.runs
		payload, err = inflateFrame(b.br, b.payload,
			int64(total)*v2MaxPayloadBytesPerEvent+64, r.footerOff-seg.off,
			fmt.Sprintf("v2 block at %d", seg.off))
		if err != nil {
			return err
		}
		b.payload = payload
	}

	myIdx := -1
	for i, run := range runs {
		if run.rank != rank {
			continue
		}
		if myIdx != -1 {
			return fmt.Errorf("trace: v2 block at %d: rank %d appears twice", seg.off, rank)
		}
		if run.count != seg.count {
			return fmt.Errorf("trace: v2 block at %d: run count %d, index says %d", seg.off, run.count, seg.count)
		}
		myIdx = i
	}
	if myIdx == -1 {
		return fmt.Errorf("trace: v2 block at %d: no run for rank %d", seg.off, rank)
	}

	off := 0
	var err error
	for i := 0; i < myIdx; i++ {
		if off, err = skipRunAt(payload, off, runs[i].count); err != nil {
			return fmt.Errorf("trace: v2 block at %d: skipping rank %d run: %w", seg.off, runs[i].rank, err)
		}
	}
	n := seg.count
	if cap(b.kinds) < n {
		b.kinds = make([]byte, n)
		b.stacks = make([]int32, n)
	}
	b.kinds = b.kinds[:n]
	b.stacks = b.stacks[:n]
	if off+n > len(payload) {
		return fmt.Errorf("trace: v2 segment at %d: kinds: %w", seg.off, io.ErrUnexpectedEOF)
	}
	copy(b.kinds, payload[off:off+n])
	off += n
	b.peers = growI64(b.peers, n)
	b.tags = growI64(b.tags, n)
	b.sizes = growI64(b.sizes, n)
	b.msgIDs = growI64(b.msgIDs, n)
	b.chanSeqs = growI64(b.chanSeqs, n)
	b.times = growI64(b.times, n)
	b.lamports = growI64(b.lamports, n)
	for _, col := range []struct {
		vals  []int64
		delta bool
		name  string
	}{
		{b.peers, false, "peers"},
		{b.tags, false, "tags"},
		{b.sizes, false, "sizes"},
		{b.msgIDs, true, "msg ids"},
		{b.chanSeqs, true, "chan seqs"},
		{b.times, true, "times"},
		{b.lamports, true, "lamports"},
	} {
		var prev int64
		for i := 0; i < n; i++ {
			v, w := binary.Varint(payload[off:])
			if w <= 0 {
				return fmt.Errorf("trace: v2 segment at %d: %s: malformed varint", seg.off, col.name)
			}
			off += w
			if col.delta {
				prev += v
				col.vals[i] = prev
			} else {
				col.vals[i] = v
			}
		}
	}
	for i := 0; i < n; i++ {
		si, w := binary.Uvarint(payload[off:])
		if w <= 0 {
			return fmt.Errorf("trace: v2 segment at %d: stacks: malformed varint", seg.off)
		}
		off += w
		if si >= uint64(len(r.keys)) {
			return fmt.Errorf("trace: callstack index %d out of table", si)
		}
		b.stacks[i] = int32(si)
	}
	for i := myIdx + 1; i < len(runs); i++ {
		if off, err = skipRunAt(payload, off, runs[i].count); err != nil {
			return fmt.Errorf("trace: v2 block at %d: skipping rank %d run: %w", seg.off, runs[i].rank, err)
		}
	}
	if off != len(payload) {
		return fmt.Errorf("trace: v2 block at %d: %d trailing payload bytes", seg.off, len(payload)-off)
	}
	b.n = n
	return nil
}

// Cursor returns a fresh streaming cursor over rank's events. Multiple
// cursors (of the same or different ranks) may be used concurrently.
func (r *Reader) Cursor(rank int) *Cursor {
	c := &Cursor{r: r, rank: rank}
	if rank < 0 || rank >= len(r.ranks) {
		c.err = fmt.Errorf("trace: cursor rank %d out of range [0,%d)", rank, len(r.ranks))
	}
	return c
}

// readAheadResult carries one prefetched segment back to its cursor.
type readAheadResult struct {
	sb  *segBuf
	err error
}

// Cursor streams one rank's events in sequence order, decoding one
// segment of columns at a time.
type Cursor struct {
	r      *Reader
	rank   int
	segIdx int
	pos    int
	seq    int
	err    error

	readAhead bool
	cur       *segBuf
	spare     *segBuf
	pending   chan readAheadResult
}

// EnableReadAhead makes the cursor decode segment N+1 on a background
// goroutine while the consumer drains segment N, overlapping inflate
// and decode with the fold that follows. Call it before the first Next.
// The decoded stream is identical; only wall-clock changes. It returns
// the cursor for chaining.
func (c *Cursor) EnableReadAhead() *Cursor {
	c.readAhead = true
	return c
}

// Err returns the first decode error the cursor hit, or nil.
func (c *Cursor) Err() error { return c.err }

// nextSegment makes the next segment current, collecting an outstanding
// prefetch or loading synchronously, and kicks off the next prefetch.
// It returns false at end-of-stream or on error (recorded in c.err).
func (c *Cursor) nextSegment() bool {
	segs := c.r.ranks[c.rank].segs
	if c.pending != nil {
		res := <-c.pending
		c.pending = nil
		if res.err != nil {
			c.err = res.err
			return false
		}
		c.cur, c.spare = res.sb, c.cur
	} else {
		if c.segIdx >= len(segs) {
			return false
		}
		if c.cur == nil {
			c.cur = &segBuf{}
		}
		if err := c.cur.load(c.r, c.rank, segs[c.segIdx]); err != nil {
			c.err = err
			return false
		}
	}
	c.segIdx++
	c.pos = 0
	if c.readAhead && c.segIdx < len(segs) {
		sb := c.spare
		c.spare = nil
		if sb == nil {
			sb = &segBuf{}
		}
		r, rank, seg := c.r, c.rank, segs[c.segIdx]
		ch := make(chan readAheadResult, 1)
		c.pending = ch
		//anacin:allow goroutine read-ahead decodes the next segment into a buffer only it owns and parks the result in a buffered channel; the cursor collects it at the next segment boundary, and an abandoned cursor leaks nothing — the goroutine exits after its one send
		go func() {
			ch <- readAheadResult{sb: sb, err: sb.load(r, rank, seg)}
		}()
	}
	return true
}

// Next decodes the next event into *ev and reports whether one was
// available. After Next returns false, Err distinguishes end-of-stream
// from a decode failure. The event's Callstack (and cached key) alias
// the Reader's dictionary and must be treated as immutable.
func (c *Cursor) Next(ev *Event) bool {
	if c.err != nil {
		return false
	}
	for c.cur == nil || c.pos == c.cur.n {
		if !c.nextSegment() {
			return false
		}
	}
	b := c.cur
	i := c.pos
	*ev = Event{
		Rank:    c.rank,
		Seq:     c.seq,
		Kind:    EventKind(b.kinds[i]),
		Peer:    int(b.peers[i]),
		Tag:     int(b.tags[i]),
		Size:    int(b.sizes[i]),
		MsgID:   b.msgIDs[i],
		ChanSeq: int(b.chanSeqs[i]),
		Time:    vtime.Time(b.times[i]),
		Lamport: b.lamports[i],
	}
	if si := b.stacks[i]; c.r.frames[si] != nil {
		ev.Callstack = c.r.frames[si]
		ev.ckey = c.r.keys[si]
	}
	c.pos++
	c.seq++
	return true
}

// OrderHash streams the communication-structure hash of the trace —
// identical to materializing it and calling Trace.OrderHash.
func (r *Reader) OrderHash() (uint64, error) {
	h := fnv.New64a()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	readAhead := runtime.GOMAXPROCS(0) > 1
	var ev Event
	for rank := range r.ranks {
		writeInt(int64(r.ranks[rank].events))
		c := r.Cursor(rank)
		if readAhead {
			c.EnableReadAhead()
		}
		for c.Next(&ev) {
			writeInt(int64(ev.Kind))
			writeInt(int64(ev.Peer))
			writeInt(int64(ev.Tag))
			writeInt(int64(ev.ChanSeq))
		}
		if err := c.Err(); err != nil {
			return 0, err
		}
	}
	return h.Sum64(), nil
}

// ToTrace materializes the full *Trace and validates it — the v2 analog
// of ReadBinary's v1 path.
func (r *Reader) ToTrace() (*Trace, error) {
	t := New(r.meta)
	readAhead := runtime.GOMAXPROCS(0) > 1
	var ev Event
	for rank := range r.ranks {
		if n := r.ranks[rank].events; n > 0 {
			t.Events[rank] = make([]Event, 0, n)
		}
		c := r.Cursor(rank)
		if readAhead {
			c.EnableReadAhead()
		}
		for c.Next(&ev) {
			t.Append(ev)
		}
		if err := c.Err(); err != nil {
			return nil, err
		}
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("trace: binary trace invalid: %w", err)
	}
	return t, nil
}

// FooterStats summarizes a v2 file's index for inspection tooling.
type FooterStats struct {
	// Ranks is the rank count; Segments the total segment count.
	Ranks, Segments int
	// Events is the total event count; MaxSegmentEvents the largest
	// single segment.
	Events, MaxSegmentEvents int
	// Sends and Recvs count message-carrying send and receive events.
	Sends, Recvs int
	// DictEntries is the callstack dictionary size.
	DictEntries int
	// DataBytes is the size of the segment section, FooterBytes of the
	// footer (dictionary + rank index), FileBytes of the whole file.
	DataBytes, FooterBytes, FileBytes int64
}

// Stats returns the file's footer statistics.
func (r *Reader) Stats() FooterStats {
	st := FooterStats{
		Ranks:            len(r.ranks),
		Events:           r.total,
		MaxSegmentEvents: r.maxSeg,
		DictEntries:      len(r.keys),
		DataBytes:        r.footerOff - 8,
		FooterBytes:      r.size - v2TrailerSize - r.footerOff,
		FileBytes:        r.size,
	}
	for i := range r.ranks {
		st.Segments += len(r.ranks[i].segs)
		st.Sends += r.ranks[i].sends
		st.Recvs += r.ranks[i].recvs
	}
	return st
}
