package trace

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"runtime"
	"sync"
)

// Codec substrate for the v2 binary format: the tunable knobs
// (CodecOptions), the process-wide pools that keep DEFLATE contexts and
// segment scratch buffers out of the per-segment allocation path, and
// the pipelined compression stage the StreamWriter hands segments to
// when it runs with more than one codec worker.
//
// The parallelism is invisible in the output: every segment block is an
// independent compression context (the writer calls flate.Writer.Reset
// per block), so compressing blocks on N workers produces exactly the
// bytes the serial path produces, and the ordered drain writes them in
// submission order at the offsets the serial path would have chosen.
// Byte-identity across worker counts — including Workers=1, which skips
// the pipeline entirely — is pinned by TestArchiveBytesIdenticalAcrossCodecWorkers.

// CodecOptions tunes how a v2 trace encoder compresses segment and
// footer payloads. The zero value is the format default: BestSpeed
// DEFLATE, one codec worker per core.
type CodecOptions struct {
	// Level is the DEFLATE level for every compressed frame. 0 means
	// the format default (flate.BestSpeed); any other value is handed
	// to compress/flate verbatim, so flate.HuffmanOnly (-2) through
	// flate.BestCompression (9) select the usual speed/size trade.
	// (flate.NoCompression is not reachable — an uncompressed archive
	// has no use here, and 0 keeps the zero value meaning "default".)
	// The level changes the archived bytes; the worker count never does.
	Level int
	// Workers bounds the segment-compression pipeline. 0 means one
	// worker per core (GOMAXPROCS); 1 compresses inline on the Append
	// path with no extra goroutines — the serial path; >1 moves DEFLATE
	// onto that many pooled workers with a sequence-numbered reorder
	// before the file writer. Output bytes are identical for every
	// worker count.
	Workers int
}

// resolve validates the options and fills defaults.
func (o CodecOptions) resolve() (level, workers int, err error) {
	level = o.Level
	if level == 0 {
		level = flate.BestSpeed
	}
	if level < flate.HuffmanOnly || level > flate.BestCompression {
		return 0, 0, fmt.Errorf("trace: codec level %d out of range [%d,%d]",
			o.Level, flate.HuffmanOnly, flate.BestCompression)
	}
	workers = o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return level, workers, nil
}

// compressor is one reusable DEFLATE context: a flate.Writer pinned to
// a level plus the buffer it compresses into. Pooled so steady-state
// encoding allocates neither (a fresh flate.Writer alone is ~600 KiB of
// window and hash-chain state).
type compressor struct {
	level int
	fw    *flate.Writer
	buf   bytes.Buffer
}

var compressorPool sync.Pool

// getCompressor returns a pooled compressor for level. A pooled context
// carrying a different level is re-armed rather than discarded — the
// flate.Writer is the expensive part only when the level matches.
func getCompressor(level int) (*compressor, error) {
	c, _ := compressorPool.Get().(*compressor)
	if c == nil {
		c = &compressor{}
	}
	if c.fw == nil || c.level != level {
		fw, err := flate.NewWriter(&c.buf, level)
		if err != nil {
			compressorPool.Put(c)
			return nil, err
		}
		c.fw, c.level = fw, level
	}
	return c, nil
}

func putCompressor(c *compressor) {
	if c == nil {
		return
	}
	c.buf.Reset()
	compressorPool.Put(c)
}

// compress DEFLATEs p into the context's buffer and returns the
// compressed bytes, valid until the next compress or release.
func (c *compressor) compress(p []byte) ([]byte, error) {
	c.buf.Reset()
	c.fw.Reset(&c.buf)
	if _, err := c.fw.Write(p); err != nil {
		return nil, err
	}
	if err := c.fw.Close(); err != nil {
		return nil, err
	}
	return c.buf.Bytes(), nil
}

// inflaterPool recycles flate readers: flate.NewReader allocates ~40 KiB
// of window per call, which the old per-frame construction paid for
// every segment of every cursor. Every reader the stdlib returns
// implements flate.Resetter.
var inflaterPool sync.Pool

func getInflater(r io.Reader) io.ReadCloser {
	if rc, ok := inflaterPool.Get().(io.ReadCloser); ok {
		if err := rc.(flate.Resetter).Reset(r, nil); err == nil {
			return rc
		}
	}
	return flate.NewReader(r)
}

func putInflater(rc io.ReadCloser) {
	rc.Close() //nolint:errcheck // releasing a decode context; stream errors already surfaced
	inflaterPool.Put(rc)
}

// bufPool recycles the byte slices the writer assembles raw segment
// payloads and block headers into. Slices that grew unreasonably large
// are dropped instead of parked.
var bufPool sync.Pool

const maxPooledBuf = 1 << 20

func getBuf() []byte {
	if p, ok := bufPool.Get().(*[]byte); ok {
		return (*p)[:0]
	}
	return make([]byte, 0, 4096)
}

func putBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}

// segRef names one run inside a block for the footer: rank and event
// count. The block's file offset is assigned when the block is written
// (only then is it known, on the pipelined path).
type segRef struct {
	rank, count int
}

// codecJob is one segment block travelling through the pipeline: the
// uncompressed header, the raw payload to DEFLATE, the footer refs to
// record at write time, and the compression result.
type codecJob struct {
	header  []byte
	payload []byte
	refs    []segRef
	comp    *compressor
	err     error
	done    chan struct{}
}

// codecPipeline compresses segment blocks on a bounded worker pool and
// writes them back in submission order. Submission order is carried by
// the buffered `ordered` channel; the drain goroutine owns the writer's
// file sink (and the footer segment lists) from the first submit until
// finish returns, which is also what bounds in-flight memory: submit
// blocks once 2×workers jobs are outstanding.
type codecPipeline struct {
	sw      *StreamWriter
	jobs    chan *codecJob
	ordered chan *codecJob
	workers sync.WaitGroup
	drained chan struct{}
	err     error // first compression failure, read after finish
}

func newCodecPipeline(sw *StreamWriter, workers int) *codecPipeline {
	p := &codecPipeline{
		sw:      sw,
		jobs:    make(chan *codecJob, workers),
		ordered: make(chan *codecJob, 2*workers),
		drained: make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		p.workers.Add(1)
		//anacin:allow goroutine codec workers compress already-assembled immutable payload buffers; they never touch simulation or writer state, and the ordered drain serializes all file writes
		go p.compressLoop()
	}
	//anacin:allow goroutine the drain goroutine is the single owner of the file sink between pipeline start and finish; ownership passes back to the caller at the finish() join
	go p.drain()
	return p
}

func (p *codecPipeline) compressLoop() {
	defer p.workers.Done()
	for job := range p.jobs {
		c, err := getCompressor(p.sw.level)
		if err == nil {
			job.comp = c
			_, err = c.compress(job.payload)
		}
		job.err = err
		close(job.done)
	}
}

// submit hands one block to the pipeline. The ordered send comes first
// so the drain sees jobs in exactly the order flushRanks produced them;
// it may block, which is the pipeline's backpressure.
func (p *codecPipeline) submit(job *codecJob) {
	p.ordered <- job
	p.jobs <- job
}

// drain writes completed blocks in submission order, recording their
// footer segments at the offsets the writes land on — the same offsets
// the serial path assigns, since the order and the bytes are the same.
func (p *codecPipeline) drain() {
	defer close(p.drained)
	for job := range p.ordered {
		<-job.done
		if p.err == nil && job.err != nil {
			p.err = job.err
		}
		if p.err == nil {
			var comp []byte
			if job.comp != nil {
				comp = job.comp.buf.Bytes()
			}
			p.sw.writeBlock(job.header, len(job.payload), comp, job.refs)
		}
		putCompressor(job.comp)
		putBuf(job.header)
		putBuf(job.payload)
	}
}

// finish closes the pipeline, waits for every block to be compressed
// and written, and returns the first compression error. After finish,
// the caller owns the file sink again.
func (p *codecPipeline) finish() error {
	close(p.jobs)
	close(p.ordered)
	p.workers.Wait()
	<-p.drained
	return p.err
}
