package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
)

// WriteJSON serializes the trace as indented JSON.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t)
}

// ReadJSON parses a trace previously written with WriteJSON and
// validates it.
func ReadJSON(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if t.Meta.Procs != len(t.Events) {
		return nil, fmt.Errorf("trace: meta declares %d procs but %d event streams present",
			t.Meta.Procs, len(t.Events))
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("trace: invalid: %w", err)
	}
	return &t, nil
}

// SaveFile writes the trace to path as JSON.
func (t *Trace) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	bw := bufio.NewWriter(f)
	if err := t.WriteJSON(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadFile reads a JSON trace from path.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(bufio.NewReader(f))
}

// Hash returns a 64-bit FNV-1a digest over the trace's semantic content
// (meta, event streams including matching and callstacks). Two runs with
// identical communication behaviour hash equal; any reordering of message
// matches changes the hash. Used by determinism tests and by the CLI to
// show at a glance whether two runs differed.
func (t *Trace) Hash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeStr := func(s string) {
		writeInt(int64(len(s)))
		io.WriteString(h, s)
	}
	writeStr(t.Meta.Pattern)
	writeInt(int64(t.Meta.Procs))
	writeInt(int64(t.Meta.Nodes))
	writeInt(int64(t.Meta.Iterations))
	writeInt(int64(t.Meta.MsgSize))
	writeInt(int64(t.Meta.NDPercent * 1e6))
	writeInt(t.Meta.Seed)
	for _, evs := range t.Events {
		writeInt(int64(len(evs)))
		for i := range evs {
			e := &evs[i]
			writeInt(int64(e.Kind))
			writeInt(int64(e.Peer))
			writeInt(int64(e.Tag))
			writeInt(int64(e.Size))
			writeInt(e.MsgID)
			writeInt(int64(e.ChanSeq))
			writeInt(int64(e.Time))
			writeInt(e.Lamport)
			writeInt(int64(len(e.Callstack)))
			for _, f := range e.Callstack {
				writeStr(f)
			}
		}
	}
	return h.Sum64()
}

// OrderHash is like Hash but covers only the communication structure
// (kinds, peers, tags, and message matching), ignoring timestamps. Two
// runs whose messages matched identically have equal OrderHash even if
// virtual times differ; this is the quantity record-and-replay must
// preserve.
func (t *Trace) OrderHash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	for _, evs := range t.Events {
		writeInt(int64(len(evs)))
		for i := range evs {
			e := &evs[i]
			writeInt(int64(e.Kind))
			writeInt(int64(e.Peer))
			writeInt(int64(e.Tag))
			writeInt(int64(e.ChanSeq))
		}
	}
	return h.Sum64()
}
