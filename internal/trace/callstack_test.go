package trace

import (
	"strings"
	"sync"
	"testing"
)

// captureHelper gives every capture in this file a stable non-test
// frame (testing.* frames are trimmed from recorded stacks).
func captureHelper() Stack { return CaptureStackInterned(0) }

func TestCaptureStackInternedKeyMatchesFrames(t *testing.T) {
	st := captureHelper()
	if len(st.Frames) == 0 {
		t.Fatal("empty capture")
	}
	if want := strings.Join(st.Frames, ";"); st.Key != want {
		t.Errorf("Key = %q, want %q", st.Key, want)
	}
	if st.Frames[0] != "trace.captureHelper" {
		t.Errorf("innermost frame = %q, want trace.captureHelper", st.Frames[0])
	}
}

func TestCaptureStackMatchesInterned(t *testing.T) {
	plain := CaptureStack(0)
	interned := CaptureStackInterned(0)
	// Same callsite depth relative to the test body: both captures must
	// agree above their own (differing) call lines, i.e. share the
	// enclosing test frame.
	if len(plain) == 0 || len(interned.Frames) == 0 {
		t.Fatal("empty capture")
	}
	if plain[0] != interned.Frames[0] {
		t.Errorf("CaptureStack[0] = %q, CaptureStackInterned[0] = %q", plain[0], interned.Frames[0])
	}
}

// TestCaptureStackInternedConcurrent hammers the intern cache from many
// goroutines capturing the same callsite. Under -race this checks the
// cache's locking; the assertions check that every capture returns the
// one shared interned Stack (same backing array, not an equal copy).
func TestCaptureStackInternedConcurrent(t *testing.T) {
	const n = 64
	stacks := make([]Stack, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				stacks[i] = captureHelper()
			}
		}(i)
	}
	wg.Wait()
	first := stacks[0]
	if len(first.Frames) == 0 {
		t.Fatal("empty capture")
	}
	for i := 1; i < n; i++ {
		if stacks[i].Key != first.Key {
			t.Fatalf("goroutine %d captured key %q, goroutine 0 %q", i, stacks[i].Key, first.Key)
		}
		if &stacks[i].Frames[0] != &first.Frames[0] {
			t.Fatalf("goroutine %d got a distinct frame slice for the same callsite", i)
		}
	}
}
