package trace

import (
	"strings"
	"testing"
)

func TestFirstDivergenceIdentical(t *testing.T) {
	a, b := buildValidTrace(), buildValidTrace()
	d, err := FirstDivergence(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != nil {
		t.Errorf("identical traces diverge: %v", d)
	}
}

func TestFirstDivergenceIgnoresTimestamps(t *testing.T) {
	a, b := buildValidTrace(), buildValidTrace()
	for r := range b.Events {
		for i := range b.Events[r] {
			b.Events[r][i].Time += 12345
		}
	}
	d, err := FirstDivergence(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != nil {
		t.Errorf("timestamp-only change reported: %v", d)
	}
}

func TestFirstDivergenceOnMatchChange(t *testing.T) {
	a, b := buildValidTrace(), buildValidTrace()
	// Pretend rank 0's recv matched a different channel position.
	b.Events[0][1].ChanSeq = 7
	d, err := FirstDivergence(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil {
		t.Fatal("match change not detected")
	}
	if d.Rank != 0 || d.Seq != 1 {
		t.Errorf("divergence at rank %d seq %d, want 0/1", d.Rank, d.Seq)
	}
	if !strings.Contains(d.String(), "recv") || !strings.Contains(d.String(), "chan=7") {
		t.Errorf("description %q", d.String())
	}
}

func TestFirstDivergenceOnLength(t *testing.T) {
	a, b := buildValidTrace(), buildValidTrace()
	b.Events[1] = b.Events[1][:2] // drop rank 1's tail
	d, err := FirstDivergence(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil || d.Rank != 1 || d.Seq != -1 {
		t.Fatalf("length divergence: %+v", d)
	}
	if !strings.Contains(d.String(), "lengths differ") {
		t.Errorf("description %q", d.String())
	}
}

func TestDivergenceCounts(t *testing.T) {
	a, b := buildValidTrace(), buildValidTrace()
	counts, err := DivergenceCounts(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 0 || counts[1] != 0 {
		t.Errorf("identical traces diverge: %v", counts)
	}
	b.Events[0][1].ChanSeq = 9 // one differing position on rank 0
	b.Events[1] = b.Events[1][:2]
	counts, err = DivergenceCounts(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 1 {
		t.Errorf("rank 0 count = %d, want 1", counts[0])
	}
	if counts[1] != 1 { // one missing tail event
		t.Errorf("rank 1 count = %d, want 1", counts[1])
	}
	if _, err := DivergenceCounts(a, New(Meta{Procs: 9})); err == nil {
		t.Error("rank mismatch accepted")
	}
}

func TestFirstDivergenceRankMismatch(t *testing.T) {
	a := buildValidTrace()
	b := New(Meta{Procs: 3})
	if _, err := FirstDivergence(a, b); err == nil {
		t.Error("rank-count mismatch accepted")
	}
}
