package core

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/anacin-go/anacinx/internal/kernel"
	"github.com/anacin-go/anacinx/internal/sim"
)

func TestDefaultExperimentValid(t *testing.T) {
	e := DefaultExperiment("message_race", 4, 100)
	if err := e.Validate(); err != nil {
		t.Fatalf("default experiment invalid: %v", err)
	}
}

func TestValidateRejectsBadExperiments(t *testing.T) {
	cases := []Experiment{
		{Pattern: "nope", Procs: 4, Nodes: 1, Runs: 1},
		{Pattern: "message_race", Procs: 1, Nodes: 1, Runs: 1}, // below MinProcs
		{Pattern: "message_race", Procs: 4, Nodes: 1, Runs: 0}, // no runs
		{Pattern: "message_race", Procs: 4, Nodes: 9, Runs: 1}, // nodes > procs
		{Pattern: "message_race", Procs: 4, Nodes: 1, Runs: 1, NDPercent: 200},
		{Pattern: "message_race", Procs: 4, Nodes: 1, Runs: 1, Iterations: -1},
	}
	for i, e := range cases {
		if err := e.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, e)
		}
	}
}

func TestExecuteProducesIndexedRuns(t *testing.T) {
	e := DefaultExperiment("amg2013", 6, 100)
	e.Runs = 8
	rs, err := e.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Traces) != 8 || len(rs.Graphs) != 8 || len(rs.Stats) != 8 {
		t.Fatalf("run set sizes %d/%d/%d", len(rs.Traces), len(rs.Graphs), len(rs.Stats))
	}
	for i, tr := range rs.Traces {
		if tr == nil || rs.Graphs[i] == nil || rs.Stats[i] == nil {
			t.Fatalf("run %d missing outputs", i)
		}
		if tr.Meta.Seed != e.BaseSeed+int64(i) {
			t.Errorf("run %d has seed %d", i, tr.Meta.Seed)
		}
		if tr.Meta.Pattern != "amg2013" {
			t.Errorf("run %d pattern %q", i, tr.Meta.Pattern)
		}
	}
}

func TestExecuteDeterministicAcrossCalls(t *testing.T) {
	// Concurrency must not leak into results: two Execute calls give
	// identical traces run-by-run.
	e := DefaultExperiment("unstructured_mesh", 8, 100)
	e.Runs = 6
	a, err := e.Execute()
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Execute()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Traces {
		if a.Traces[i].Hash() != b.Traces[i].Hash() {
			t.Fatalf("run %d differs across Execute calls", i)
		}
	}
}

func TestExecuteErrorsPropagate(t *testing.T) {
	e := DefaultExperiment("message_race", 4, 100)
	e.Runs = 3
	e.Replay = &sim.Schedule{PerRank: make([][]sim.MatchKey, 4)} // schedule too short → rank panic
	if _, err := e.Execute(); err == nil || !strings.Contains(err.Error(), "run") {
		t.Errorf("err = %v, want wrapped run error", err)
	}
}

func TestExecuteShortCircuitsOnFailure(t *testing.T) {
	// Every run of this experiment fails (the empty replay schedule
	// panics a rank immediately). The worker pool must stop dispatching
	// once the first failure is recorded instead of burning through the
	// whole sample: with W workers, at most the in-flight runs plus a
	// small dispatch margin may start, never all of them.
	e := DefaultExperiment("message_race", 4, 100)
	e.Runs = 64
	e.Workers = 2
	e.Replay = &sim.Schedule{PerRank: make([][]sim.MatchKey, 4)}
	var started atomic.Int64
	executeRunHook = func(int) { started.Add(1) }
	defer func() { executeRunHook = nil }()
	if _, err := e.Execute(); err == nil {
		t.Fatal("failing sample returned nil error")
	}
	// Generous bound: workers + a couple of dispatches that may race the
	// cancellation. Without short-circuiting this is always 64.
	if n := started.Load(); n > 8 {
		t.Errorf("%d of %d runs started after first failure (want early stop)", n, e.Runs)
	}
}

func TestExecuteContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := DefaultExperiment("message_race", 4, 100)
	e.Runs = 8
	if _, err := e.ExecuteContext(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestExecuteWorkersCapRespected(t *testing.T) {
	// Workers = 1 must serialize runs and still produce the identical
	// indexed output (determinism is scheduling-independent).
	e := DefaultExperiment("unstructured_mesh", 8, 100)
	e.Runs = 4
	serial := e
	serial.Workers = 1
	a, err := e.Execute()
	if err != nil {
		t.Fatal(err)
	}
	b, err := serial.Execute()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Traces {
		if a.Traces[i].Hash() != b.Traces[i].Hash() {
			t.Fatalf("run %d differs between worker counts", i)
		}
	}
}

func TestDistancesAndSummary(t *testing.T) {
	e := DefaultExperiment("unstructured_mesh", 8, 100)
	e.Iterations = 2
	e.Runs = 6
	rs, err := e.Execute()
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.NewWL(2)
	d := rs.Distances(k)
	if len(d) != 15 { // C(6,2)
		t.Fatalf("len(distances) = %d", len(d))
	}
	s := rs.DistanceSummary(k)
	if s.N != 15 || s.Max <= 0 {
		t.Errorf("summary = %+v, want positive max at 100%% ND", s)
	}
	if rs.DistinctStructures() < 2 {
		t.Error("expected structural diversity at 100% ND")
	}
}

func TestZeroNDGivesZeroDistances(t *testing.T) {
	e := DefaultExperiment("unstructured_mesh", 8, 0)
	e.Runs = 5
	rs, err := e.Execute()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rs.Distances(kernel.NewWL(2)) {
		if d != 0 {
			t.Fatalf("0%% ND distance %v", d)
		}
	}
	if rs.DistinctStructures() != 1 {
		t.Errorf("DistinctStructures = %d, want 1", rs.DistinctStructures())
	}
}

// TestRunSetCacheShared pins the run set's embedding cache contract:
// one lazily-created cache instance is shared by every analysis entry
// point, so Distances embeds each run's graph once and DistanceSummary
// (and a repeated Distances) reuse those embeddings instead of
// recomputing them.
func TestRunSetCacheShared(t *testing.T) {
	e := DefaultExperiment("unstructured_mesh", 8, 100)
	e.Iterations = 2
	e.Runs = 5
	rs, err := e.Execute()
	if err != nil {
		t.Fatal(err)
	}
	c := rs.Cache()
	if c == nil || rs.Cache() != c {
		t.Fatal("Cache() is not a stable singleton")
	}
	k := kernel.NewWL(2)
	first := rs.Distances(k)
	if c.Len() != e.Runs || c.Misses() != uint64(e.Runs) {
		t.Fatalf("after Distances: len=%d misses=%d, want %d each", c.Len(), c.Misses(), e.Runs)
	}
	misses := c.Misses()
	second := rs.Distances(k)
	s := rs.DistanceSummary(k)
	if c.Misses() != misses {
		t.Fatalf("repeat analyses recomputed embeddings: misses %d -> %d", misses, c.Misses())
	}
	if c.Hits() == 0 {
		t.Fatal("repeat analyses recorded no cache hits")
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cached Distances diverge from first call")
	}
	if s.N != len(first) {
		t.Fatalf("summary over %d distances, want %d", s.N, len(first))
	}
}

func TestRootSourcesEndToEnd(t *testing.T) {
	e := DefaultExperiment("amg2013", 8, 100)
	e.Iterations = 3
	e.Runs = 5
	rs, err := e.Execute()
	if err != nil {
		t.Fatal(err)
	}
	profile, ranked, err := rs.RootSources(kernel.NewWL(2), 8)
	if err != nil {
		t.Fatal(err)
	}
	if profile == nil || len(ranked) == 0 {
		t.Fatal("no root sources")
	}
	if !strings.Contains(ranked[0].Callstack, "gatherWork") {
		t.Errorf("top callstack %q", ranked[0].Callstack)
	}
}

func TestReplayThroughExperiment(t *testing.T) {
	// Record one run, then replay the whole sample: every run collapses
	// onto the recorded structure even at 100% ND.
	base := DefaultExperiment("message_race", 6, 100)
	base.Iterations = 2
	base.Runs = 1
	recorded, err := base.Execute()
	if err != nil {
		t.Fatal(err)
	}
	sched := sim.RecordSchedule(recorded.Traces[0])

	replayed := base
	replayed.Runs = 5
	replayed.BaseSeed = 9000
	replayed.Replay = sched
	rs, err := replayed.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if rs.DistinctStructures() != 1 {
		t.Errorf("replayed sample has %d structures, want 1", rs.DistinctStructures())
	}
	for _, d := range rs.Distances(kernel.NewWL(2)) {
		if d != 0 {
			t.Fatalf("replayed distance %v, want 0", d)
		}
	}
}

func TestParseKernel(t *testing.T) {
	cases := map[string]string{
		"":       "wlst-h2d",
		"wl":     "wlst-h2d",
		"wl0":    "wlst-h0d",
		"wl3":    "wlst-h3d",
		"wlu2":   "wlst-h2u",
		"vertex": "vertex-hist",
		"edge":   "edge-hist",
		"sp":     "shortest-path",
	}
	for spec, want := range cases {
		k, err := ParseKernel(spec)
		if err != nil {
			t.Errorf("ParseKernel(%q): %v", spec, err)
			continue
		}
		if k.Name() != want {
			t.Errorf("ParseKernel(%q) = %s, want %s", spec, k.Name(), want)
		}
	}
	for _, bad := range []string{"x", "wl-1", "wl10", "wlu", "wlfoo"} {
		if _, err := ParseKernel(bad); err == nil {
			t.Errorf("ParseKernel(%q) accepted", bad)
		}
	}
	if KernelSpecs() == "" {
		t.Error("empty KernelSpecs")
	}
}

func BenchmarkExecute20Runs(b *testing.B) {
	e := DefaultExperiment("unstructured_mesh", 16, 100)
	e.Runs = 20
	e.CaptureStacks = false
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Execute(); err != nil {
			b.Fatal(err)
		}
	}
}
