package core

import (
	"fmt"

	"github.com/anacin-go/anacinx/internal/patterns"
	"github.com/anacin-go/anacinx/internal/sim"
	"github.com/anacin-go/anacinx/internal/trace"
)

// Exposure search, in the spirit of the noise-injection work the paper
// cites (Sato et al., PPoPP'17: expose subtle message races by
// injecting noise): find the smallest injected-non-determinism
// percentage at which an application's communication structure starts
// to diverge from its deterministic (0%) structure. A low threshold
// means a hair-trigger race; "never" means the workload's matching is
// structurally immune (concrete-source receives).

// ExposureResult reports an exposure search.
type ExposureResult struct {
	// Exposed is false when no tested level diverged (deterministic
	// workload).
	Exposed bool
	// ThresholdND is the smallest ND% at which divergence was observed,
	// within Resolution.
	ThresholdND float64
	// Resolution is the bisection tolerance in percentage points.
	Resolution float64
	// Probes is how many seeds were tried per level.
	Probes int
	// Levels lists every tested (nd, diverged) pair in test order.
	Levels []ExposureLevel
}

// ExposureLevel is one probe batch of the search.
type ExposureLevel struct {
	ND       float64
	Diverged bool
}

// ExposureSearch bisects the ND axis for the smallest percentage at
// which any of `probes` seeds produces a communication structure
// different from the experiment's 0% structure. Divergence probability
// grows with ND%, so bisection converges to the practical threshold;
// `resolution` (percentage points, >= 0.5 recommended) sets when to
// stop. The experiment's Runs field is ignored.
func (e Experiment) ExposureSearch(probes int, resolution float64) (*ExposureResult, error) {
	if probes < 1 {
		return nil, fmt.Errorf("core: ExposureSearch probes = %d, need >= 1", probes)
	}
	if resolution <= 0 {
		return nil, fmt.Errorf("core: ExposureSearch resolution = %v, need > 0", resolution)
	}
	pat, err := patterns.ByName(e.Pattern)
	if err != nil {
		return nil, err
	}
	program, err := pat.Program(e.params())
	if err != nil {
		return nil, err
	}
	adapted := sim.Adapt(program)

	runOnce := func(nd float64, seed int64) (uint64, error) {
		cfg := e.config(0, pat)
		cfg.NDPercent = nd
		cfg.Seed = seed
		cfg.CaptureStacks = false
		tr, _, err := sim.Run(cfg, trace.Meta{Pattern: e.Pattern}, adapted)
		if err != nil {
			return 0, err
		}
		return tr.OrderHash(), nil
	}

	baseline, err := runOnce(0, e.BaseSeed)
	if err != nil {
		return nil, err
	}
	res := &ExposureResult{Resolution: resolution, Probes: probes}
	diverges := func(nd float64) (bool, error) {
		for p := 0; p < probes; p++ {
			h, err := runOnce(nd, e.BaseSeed+int64(p))
			if err != nil {
				return false, err
			}
			if h != baseline {
				res.Levels = append(res.Levels, ExposureLevel{ND: nd, Diverged: true})
				return true, nil
			}
		}
		res.Levels = append(res.Levels, ExposureLevel{ND: nd, Diverged: false})
		return false, nil
	}

	top, err := diverges(100)
	if err != nil {
		return nil, err
	}
	if !top {
		return res, nil // never exposed
	}
	lo, hi := 0.0, 100.0 // lo never diverged, hi diverged
	for hi-lo > resolution {
		mid := (lo + hi) / 2
		d, err := diverges(mid)
		if err != nil {
			return nil, err
		}
		if d {
			hi = mid
		} else {
			lo = mid
		}
	}
	res.Exposed = true
	res.ThresholdND = hi
	return res, nil
}
