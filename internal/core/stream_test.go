package core

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/anacin-go/anacinx/internal/kernel"
	"github.com/anacin-go/anacinx/internal/trace"
)

// TestExecuteStreamMatchesExecute pins the tentpole equivalence: the
// streaming pipeline (sim → v2 file → reader → streaming WL) produces
// exactly the embeddings, order hashes, and distances of the
// materializing pipeline (sim → *Trace → *Graph → WL), and each
// archived v2 file decodes to exactly the trace the materializing
// pipeline would have produced. (File bytes legitimately differ from a
// rank-major WriteBinaryV2 — the callstack dictionary numbers stacks
// in first-seen order, which follows the scheduler interleave when
// streaming — so equivalence is pinned on the decoded trace hash,
// and TestExecuteStreamDeterministicBytes pins the bytes themselves.)
func TestExecuteStreamMatchesExecute(t *testing.T) {
	for _, pat := range []string{"message_race", "amg2013"} {
		t.Run(pat, func(t *testing.T) {
			e := DefaultExperiment(pat, 6, 60)
			e.Runs = 5
			e.CaptureStacks = true
			rs, err := e.ExecuteContext(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			k := kernel.NewWL(2)
			dir := t.TempDir()
			srs, err := e.ExecuteStreamContext(context.Background(), k, dir)
			if err != nil {
				t.Fatal(err)
			}
			if srs.KernelName != k.Name() {
				t.Errorf("KernelName %q, want %q", srs.KernelName, k.Name())
			}
			for i := range rs.Traces {
				if want := k.Features(rs.Graphs[i]); !reflect.DeepEqual(srs.Features[i], want) {
					t.Errorf("run %d: streamed features differ from materialized", i)
				}
				if want := rs.Traces[i].OrderHash(); srs.OrderHashes[i] != want {
					t.Errorf("run %d: order hash %#x, want %#x", i, srs.OrderHashes[i], want)
				}
				if srs.Stats[i] == nil || srs.Stats[i].Events != rs.Stats[i].Events {
					t.Errorf("run %d: stats events differ", i)
				}

				// The archived file decodes to exactly the live trace.
				want := filepath.Join(dir, fmt.Sprintf("run-%d.anctr", i))
				if srs.TracePaths[i] != want {
					t.Fatalf("run %d archived at %q, want %q", i, srs.TracePaths[i], want)
				}
				decoded, err := trace.LoadBinaryFile(srs.TracePaths[i])
				if err != nil {
					t.Fatal(err)
				}
				if decoded.Hash() != rs.Traces[i].Hash() {
					t.Errorf("run %d: archived trace decodes to a different trace than the live run", i)
				}
			}
			if got, want := srs.Distances(), rs.Distances(k); !reflect.DeepEqual(got, want) {
				t.Errorf("distances differ: %v vs %v", got, want)
			}
			if got, want := srs.DistanceSummary(), rs.DistanceSummary(k); got != want {
				t.Errorf("summary %+v, want %+v", got, want)
			}
			if got, want := srs.DistinctStructures(), rs.DistinctStructures(); got != want {
				t.Errorf("distinct structures %d, want %d", got, want)
			}
		})
	}
}

// TestExecuteStreamScratchLeavesNothing checks the unarchived mode:
// results match the archived run, TracePaths stays nil, and the
// scratch directory is gone.
func TestExecuteStreamScratchLeavesNothing(t *testing.T) {
	e := DefaultExperiment("unstructured_mesh", 4, 100)
	e.Runs = 3
	scratch, err := e.ExecuteStreamContext(context.Background(), nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if scratch.TracePaths != nil {
		t.Errorf("scratch run recorded trace paths %v", scratch.TracePaths)
	}
	if scratch.KernelName != kernel.NewWL(2).Name() {
		t.Errorf("nil kernel defaulted to %q", scratch.KernelName)
	}
	archived, err := e.ExecuteStreamContext(context.Background(), nil, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scratch.Features, archived.Features) {
		t.Error("scratch and archived runs disagree on features")
	}
	if !reflect.DeepEqual(scratch.OrderHashes, archived.OrderHashes) {
		t.Error("scratch and archived runs disagree on order hashes")
	}
}

// TestExecuteStreamDeterministicBytes pins that the streamed encoding
// itself is reproducible: two archived executions of the same
// experiment produce byte-identical trace files run-for-run — the
// property `anacin replay` and the archival store rely on.
func TestExecuteStreamDeterministicBytes(t *testing.T) {
	e := DefaultExperiment("message_race", 6, 60)
	e.Runs = 3
	e.CaptureStacks = true
	dirA, dirB := t.TempDir(), t.TempDir()
	a, err := e.ExecuteStreamContext(context.Background(), nil, dirA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.ExecuteStreamContext(context.Background(), nil, dirB)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.TracePaths {
		ab, err := os.ReadFile(a.TracePaths[i])
		if err != nil {
			t.Fatal(err)
		}
		bb, err := os.ReadFile(b.TracePaths[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ab, bb) {
			t.Errorf("run %d: archived bytes differ across executions", i)
		}
	}
}

func TestExecuteStreamCancellation(t *testing.T) {
	e := DefaultExperiment("message_race", 8, 100)
	e.Runs = 50
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.ExecuteStreamContext(ctx, nil, "")
	if err == nil || !strings.Contains(err.Error(), "cancelled") {
		t.Fatalf("cancelled stream execution returned %v", err)
	}
}

func TestExecuteStreamRejectsBadConfig(t *testing.T) {
	e := DefaultExperiment("message_race", 4, 100)
	e.Runs = 0
	if _, err := e.ExecuteStreamContext(context.Background(), nil, ""); err == nil {
		t.Error("Runs=0 accepted")
	}
	e = DefaultExperiment("nope", 4, 100)
	e.Runs = 1
	if _, err := e.ExecuteStreamContext(context.Background(), nil, ""); err == nil {
		t.Error("unknown pattern accepted")
	}
}
