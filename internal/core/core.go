// Package core orchestrates the full ANACIN-X pipeline: configure a
// communication-pattern workload, execute a sample of independent
// simulated runs, build their event graphs, and reduce them to
// kernel-distance samples and root-source rankings. The CLI, the course
// module, the examples, and the figure-regeneration benchmarks are all
// thin layers over this package.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"github.com/anacin-go/anacinx/internal/analysis"
	"github.com/anacin-go/anacinx/internal/graph"
	"github.com/anacin-go/anacinx/internal/kernel"
	"github.com/anacin-go/anacinx/internal/patterns"
	"github.com/anacin-go/anacinx/internal/sim"
	"github.com/anacin-go/anacinx/internal/trace"
)

// Experiment describes one workload configuration and how many
// independent runs to sample from it. Fields mirror the knobs the paper
// exposes to students: pattern, processes, nodes, iterations, message
// size, and the percentage of non-determinism.
type Experiment struct {
	// Pattern is a patterns registry key, e.g. "unstructured_mesh".
	Pattern string
	// Procs is the MPI process count.
	Procs int
	// Nodes is the compute-node count (>=1).
	Nodes int
	// Iterations is the communication-pattern iteration count.
	Iterations int
	// MsgSize is the per-message payload size in bytes.
	MsgSize int
	// NDPercent is the injected percentage of non-determinism (0..100).
	NDPercent float64
	// Runs is the number of independent executions to sample (the
	// paper uses 20 per configuration).
	Runs int
	// BaseSeed seeds run i with BaseSeed + i.
	BaseSeed int64
	// TopologySeed fixes randomized topologies (unstructured mesh);
	// it is shared by all runs of the experiment.
	TopologySeed int64
	// Degree is the unstructured-mesh out-degree (0 = default).
	Degree int
	// CaptureStacks records callstacks on every event; required for
	// root-source analysis, skippable for pure distance measurements.
	CaptureStacks bool
	// Workers caps how many runs execute concurrently (0 = GOMAXPROCS).
	// Batch layers that already parallelize across experiments (the
	// campaign runner) lower it so the two levels multiply out to
	// roughly GOMAXPROCS total goroutines instead of oversubscribing.
	Workers int
	// Net optionally overrides the network model (zero = sim.DefaultNet).
	Net sim.NetModel
	// Replay optionally pins receives to a recorded schedule.
	Replay *sim.Schedule
	// Codec tunes archived-trace compression on the streaming path
	// (DEFLATE level, codec worker count); ignored unless the
	// experiment streams to an archive. Zero is the v2 format default.
	Codec trace.CodecOptions
}

// DefaultExperiment returns the paper's base configuration for a
// pattern: 20 runs, 1 iteration, 1-byte messages, 1 node, stacks on.
func DefaultExperiment(pattern string, procs int, ndPercent float64) Experiment {
	return Experiment{
		Pattern:       pattern,
		Procs:         procs,
		Nodes:         1,
		Iterations:    1,
		MsgSize:       1,
		NDPercent:     ndPercent,
		Runs:          20,
		BaseSeed:      1,
		TopologySeed:  1,
		CaptureStacks: true,
	}
}

// params converts the experiment to pattern parameters.
func (e *Experiment) params() patterns.Params {
	return patterns.Params{
		Procs:        e.Procs,
		Iterations:   e.Iterations,
		MsgSize:      e.MsgSize,
		TopologySeed: e.TopologySeed,
		Degree:       e.Degree,
	}
}

// config builds the simulator configuration for run index i. The
// pattern's per-rank event estimate sizes the trace arena, replacing
// the flat sim.DefaultEventsPerRankHint that starves heavy workloads
// and overallocates idle large-P ranks.
func (e *Experiment) config(i int, pat patterns.Pattern) sim.Config {
	return sim.Config{
		Procs:             e.Procs,
		Nodes:             e.Nodes,
		NDPercent:         e.NDPercent,
		Seed:              e.BaseSeed + int64(i),
		Net:               e.Net,
		Replay:            e.Replay,
		CaptureStacks:     e.CaptureStacks,
		EventsPerRankHint: pat.EventsPerRankHint(e.params()),
		Codec:             e.Codec,
	}
}

// Validate checks the experiment without running it.
func (e *Experiment) Validate() error {
	if e.Runs < 1 {
		return fmt.Errorf("core: Runs = %d, need >= 1", e.Runs)
	}
	pat, err := patterns.ByName(e.Pattern)
	if err != nil {
		return err
	}
	p := e.params()
	if err := p.Validate(pat.MinProcs()); err != nil {
		return err
	}
	// Build one program to surface pattern-level validation, and one
	// config to surface simulator-level validation.
	if _, err := pat.Program(p); err != nil {
		return err
	}
	cfg := e.config(0, pat)
	probe := cfg
	if _, _, err := sim.Run(probe, trace.Meta{}, func(r *sim.Rank) {}); err != nil {
		return err
	}
	return nil
}

// RunSet holds the sampled executions of one experiment.
type RunSet struct {
	Experiment Experiment
	// Traces[i] is run i's trace (seed BaseSeed+i).
	Traces []*trace.Trace
	// Graphs[i] is run i's event graph.
	Graphs []*graph.Graph
	// Stats[i] summarizes run i's simulation.
	Stats []*sim.Stats

	// cache memoizes kernel embeddings across the run set's
	// reductions; see Cache.
	cacheMu sync.Mutex
	cache   *kernel.Cache
}

// Cache returns the run set's shared embedding cache, creating it on
// first use. Distances, DistanceSummary, and RootSources all embed the
// same graphs; routing them through one content-addressed cache means
// an experiment that draws the violin sample, the slice profile, and
// the root-source ranking embeds each run exactly once per kernel.
func (rs *RunSet) Cache() *kernel.Cache {
	rs.cacheMu.Lock()
	defer rs.cacheMu.Unlock()
	if rs.cache == nil {
		rs.cache = kernel.NewCache()
	}
	return rs.cache
}

// Execute runs the experiment's sample. Runs are independent, so they
// execute concurrently across the machine's cores; results are indexed
// by run number, so the output is identical regardless of scheduling.
func (e Experiment) Execute() (*RunSet, error) {
	return e.ExecuteContext(context.Background())
}

// executeRunHook, when non-nil, observes every run index the worker
// pool actually starts. Tests use it to assert that a failing run
// short-circuits the remaining dispatches.
var executeRunHook func(runIndex int)

// ExecuteContext is Execute with cancellation. Cancelling ctx aborts
// in-flight simulations and stops dispatching new runs; the returned
// error then satisfies errors.Is(err, ctx.Err()). A run failure
// likewise cancels the remaining work — a 20-run sample that already
// lost a member is going to be discarded, so finishing it is waste —
// and the first recorded failure is returned.
func (e Experiment) ExecuteContext(ctx context.Context) (*RunSet, error) {
	pat, err := patterns.ByName(e.Pattern)
	if err != nil {
		return nil, err
	}
	if e.Runs < 1 {
		return nil, fmt.Errorf("core: Runs = %d, need >= 1", e.Runs)
	}
	program, err := pat.Program(e.params())
	if err != nil {
		return nil, err
	}
	adapted := sim.Adapt(program)
	meta := trace.Meta{Pattern: e.Pattern, Iterations: e.Iterations, MsgSize: e.MsgSize}

	rs := &RunSet{
		Experiment: e,
		Traces:     make([]*trace.Trace, e.Runs),
		Graphs:     make([]*graph.Graph, e.Runs),
		Stats:      make([]*sim.Stats, e.Runs),
	}
	workers := e.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > e.Runs {
		workers = e.Runs
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		next     = make(chan int)
	)
	// fail records the first real failure and cancels the rest of the
	// sample. Cancellation fallout from sibling runs is not a failure of
	// this run — recording it would mask the root cause behind
	// "run N: cancelled".
	fail := func(i int, err error) {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return
		}
		errOnce.Do(func() {
			firstErr = fmt.Errorf("core: run %d: %w", i, err)
			cancel()
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if runCtx.Err() != nil {
					continue
				}
				if executeRunHook != nil {
					executeRunHook(i)
				}
				tr, stats, err := sim.RunContext(runCtx, e.config(i, pat), meta, adapted)
				if err != nil {
					fail(i, err)
					continue
				}
				g, err := graph.FromTrace(tr)
				if err != nil {
					fail(i, err)
					continue
				}
				rs.Traces[i], rs.Graphs[i], rs.Stats[i] = tr, g, stats
			}
		}()
	}
dispatch:
	for i := 0; i < e.Runs; i++ {
		select {
		case next <- i:
		case <-runCtx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: experiment cancelled: %w", err)
	}
	return rs, nil
}

// Distances returns the pairwise kernel-distance sample of the run
// set's event graphs — the data behind one violin of Figs. 5–7.
func (rs *RunSet) Distances(k kernel.Kernel) []float64 {
	return rs.Cache().PairwiseDistances(k, rs.Graphs)
}

// DistanceSummary summarizes the pairwise distances.
func (rs *RunSet) DistanceSummary(k kernel.Kernel) analysis.Summary {
	return analysis.Summarize(rs.Distances(k))
}

// RootSources runs the Fig. 8 analysis on the sample: the slice profile
// and ranked receive callstacks of high-non-determinism regions.
func (rs *RunSet) RootSources(k kernel.Kernel, slices int) (*analysis.SliceProfile, []analysis.CallstackFrequency, error) {
	return analysis.IdentifyRootSourcesCached(k, rs.Graphs, slices, rs.Cache())
}

// DistinctStructures reports how many distinct communication structures
// (trace order hashes) the sample contains: 1 means every run matched
// messages identically.
func (rs *RunSet) DistinctStructures() int {
	set := make(map[uint64]bool, len(rs.Traces))
	for _, tr := range rs.Traces {
		set[tr.OrderHash()] = true
	}
	return len(set)
}
