package core

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/anacin-go/anacinx/internal/kernel"
)

// ParseKernel resolves a kernel spec string from CLI flags and configs:
//
//	"wl2"          Weisfeiler-Lehman subtree, depth 2, directed (default)
//	"wl0".."wl9"   other depths
//	"wlu2"         undirected refinement
//	"vertex"       vertex histogram
//	"edge"         edge histogram
//	"sp"           shortest-path kernel (depth-capped)
func ParseKernel(spec string) (kernel.Kernel, error) {
	switch spec {
	case "", "wl", "default":
		return kernel.NewWL(2), nil
	case "vertex", "vertex-hist":
		return kernel.VertexHistogram{}, nil
	case "edge", "edge-hist":
		return kernel.EdgeHistogram{}, nil
	case "sp", "shortest-path":
		return kernel.ShortestPath{}, nil
	}
	directed := true
	rest := ""
	switch {
	case strings.HasPrefix(spec, "wlu"):
		directed = false
		rest = spec[3:]
	case strings.HasPrefix(spec, "wl"):
		rest = spec[2:]
	default:
		return nil, fmt.Errorf("core: unknown kernel %q (want wlN, wluN, vertex, edge)", spec)
	}
	h, err := strconv.Atoi(rest)
	if err != nil || h < 0 || h > 9 {
		return nil, fmt.Errorf("core: bad WL depth in %q", spec)
	}
	return kernel.WL{H: h, Directed: directed}, nil
}

// KernelSpecs lists the accepted kernel spec forms for help text.
func KernelSpecs() string { return "wl<depth> (default wl2), wlu<depth>, vertex, edge, sp" }
