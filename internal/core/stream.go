package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"github.com/anacin-go/anacinx/internal/analysis"
	"github.com/anacin-go/anacinx/internal/kernel"
	"github.com/anacin-go/anacinx/internal/patterns"
	"github.com/anacin-go/anacinx/internal/sim"
	"github.com/anacin-go/anacinx/internal/trace"
)

// Streaming execution: each run simulates straight into a v2 trace file
// (sim.Config.Sink → trace.StreamWriter), then embeds by streaming the
// file back through a trace.Reader. At no point does a full
// *trace.Trace or *graph.Graph exist, so a run's peak memory is the
// encoder's column buffers plus the kernel's refinement window — flat
// in run length for balanced patterns. The embeddings, order hashes,
// and therefore every distance derived from them are byte-identical to
// the materializing ExecuteContext pipeline (pinned by tests).

// StreamRunSet holds the artifacts of a streaming execution. It is the
// flat-memory counterpart of RunSet: embeddings instead of graphs,
// order hashes instead of traces.
type StreamRunSet struct {
	Experiment Experiment
	// KernelName names the kernel that produced Features.
	KernelName string
	// Features[i] is run i's embedding.
	Features []kernel.FeatureVector
	// OrderHashes[i] is run i's trace order hash (the DistinctStructures
	// input).
	OrderHashes []uint64
	// Stats[i] summarizes run i's simulation.
	Stats []*sim.Stats
	// TracePaths[i] is run i's archived v2 trace file; empty when the
	// execution used an unarchived scratch directory.
	TracePaths []string
}

// ExecuteStreamContext runs the experiment's sample through the
// streaming pipeline, embedding every run under k. When archiveDir is
// non-empty, each run's v2 trace is kept there as run-<i>.anctr
// (the directory is created if needed) and recorded in TracePaths;
// otherwise traces live in a scratch directory that is removed before
// returning. Cancellation and failure semantics match ExecuteContext.
func (e Experiment) ExecuteStreamContext(ctx context.Context, k kernel.Kernel, archiveDir string) (*StreamRunSet, error) {
	if k == nil {
		k = kernel.NewWL(2)
	}
	pat, err := patterns.ByName(e.Pattern)
	if err != nil {
		return nil, err
	}
	if e.Runs < 1 {
		return nil, fmt.Errorf("core: Runs = %d, need >= 1", e.Runs)
	}
	program, err := pat.Program(e.params())
	if err != nil {
		return nil, err
	}
	adapted := sim.Adapt(program)

	dir := archiveDir
	archived := dir != ""
	if archived {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("core: archive dir: %w", err)
		}
	} else {
		if dir, err = os.MkdirTemp("", "anacin-stream-*"); err != nil {
			return nil, fmt.Errorf("core: scratch dir: %w", err)
		}
		defer os.RemoveAll(dir)
	}

	srs := &StreamRunSet{
		Experiment:  e,
		KernelName:  k.Name(),
		Features:    make([]kernel.FeatureVector, e.Runs),
		OrderHashes: make([]uint64, e.Runs),
		Stats:       make([]*sim.Stats, e.Runs),
	}
	if archived {
		srs.TracePaths = make([]string, e.Runs)
	}

	workers := e.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > e.Runs {
		workers = e.Runs
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		next     = make(chan int)
	)
	fail := func(i int, err error) {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return
		}
		errOnce.Do(func() {
			firstErr = fmt.Errorf("core: run %d: %w", i, err)
			cancel()
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if runCtx.Err() != nil {
					continue
				}
				path := filepath.Join(dir, fmt.Sprintf("run-%d.anctr", i))
				stats, err := e.streamRun(runCtx, i, pat, adapted, path)
				if err != nil {
					fail(i, err)
					continue
				}
				fv, oh, err := embedTraceFile(k, path)
				if err != nil {
					fail(i, err)
					continue
				}
				if !archived {
					os.Remove(path)
				} else {
					srs.TracePaths[i] = path
				}
				srs.Features[i], srs.OrderHashes[i], srs.Stats[i] = fv, oh, stats
			}
		}()
	}
dispatch:
	for i := 0; i < e.Runs; i++ {
		select {
		case next <- i:
		case <-runCtx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: experiment cancelled: %w", err)
	}
	return srs, nil
}

// streamRun simulates run i with its events streaming into a v2 trace
// file at path.
func (e *Experiment) streamRun(ctx context.Context, i int, pat patterns.Pattern, program sim.Program, path string) (*sim.Stats, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	// Meta must match what the materializing pipeline's trace carries,
	// so the archived file decodes to exactly the trace ExecuteContext
	// would have materialized. (The bytes themselves can differ from a
	// rank-major WriteBinaryV2 of that trace: the v2 callstack
	// dictionary numbers stacks in first-seen order, and the scheduler
	// interleaves ranks. Streamed bytes are still deterministic in the
	// seed.)
	meta := trace.Meta{
		Pattern: e.Pattern, Iterations: e.Iterations, MsgSize: e.MsgSize,
		Procs: e.Procs, Nodes: e.Nodes, NDPercent: e.NDPercent,
		Seed: e.BaseSeed + int64(i),
	}
	cfg := e.config(i, pat)
	sw := trace.NewStreamWriterOptions(f, meta, cfg.Codec)
	cfg.Sink = sw
	_, stats, err := sim.RunContext(ctx, cfg, meta, program)
	if err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	if err := sw.Close(); err != nil {
		f.Close()
		return nil, fmt.Errorf("encode %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	return stats, nil
}

// embedTraceFile opens one archived trace and reduces it to its
// embedding and order hash.
func embedTraceFile(k kernel.Kernel, path string) (kernel.FeatureVector, uint64, error) {
	r, err := trace.OpenReader(path)
	if err != nil {
		return kernel.FeatureVector{}, 0, err
	}
	defer r.Close()
	fv, err := kernel.FeaturesFromReader(k, r)
	if err != nil {
		return kernel.FeatureVector{}, 0, err
	}
	oh, err := r.OrderHash()
	if err != nil {
		return kernel.FeatureVector{}, 0, err
	}
	return fv, oh, nil
}

// Distances returns the pairwise kernel-distance sample of the
// streamed embeddings — the same sample RunSet.Distances draws from
// graphs, byte-identical for equal embeddings.
func (srs *StreamRunSet) Distances() []float64 {
	return kernel.MatrixFromFeatures(srs.KernelName, srs.Features).PairwiseDistances()
}

// DistanceSummary summarizes the pairwise distances.
func (srs *StreamRunSet) DistanceSummary() analysis.Summary {
	return analysis.Summarize(srs.Distances())
}

// DistinctStructures reports how many distinct communication structures
// the sample contains, matching RunSet.DistinctStructures.
func (srs *StreamRunSet) DistinctStructures() int {
	set := make(map[uint64]bool, len(srs.OrderHashes))
	for _, oh := range srs.OrderHashes {
		set[oh] = true
	}
	return len(set)
}
