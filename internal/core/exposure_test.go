package core

import "testing"

func TestExposureSearchValidation(t *testing.T) {
	e := DefaultExperiment("message_race", 6, 0)
	if _, err := e.ExposureSearch(0, 1); err == nil {
		t.Error("zero probes accepted")
	}
	if _, err := e.ExposureSearch(3, 0); err == nil {
		t.Error("zero resolution accepted")
	}
	e.Pattern = "nope"
	if _, err := e.ExposureSearch(3, 1); err == nil {
		t.Error("unknown pattern accepted")
	}
}

func TestExposureSearchFindsRacyThreshold(t *testing.T) {
	// A wide message race exposes at low injection levels.
	e := DefaultExperiment("message_race", 16, 0)
	e.Iterations = 2
	res, err := e.ExposureSearch(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exposed {
		t.Fatal("racy workload never exposed")
	}
	if res.ThresholdND <= 0 || res.ThresholdND > 100 {
		t.Errorf("threshold = %v", res.ThresholdND)
	}
	if res.ThresholdND > 50 {
		t.Errorf("threshold %v suspiciously high for a 16-way race", res.ThresholdND)
	}
	if len(res.Levels) < 3 {
		t.Errorf("bisection tested only %d levels", len(res.Levels))
	}
	// The reported threshold is consistent with the observations: some
	// level at or above it diverged.
	found := false
	for _, l := range res.Levels {
		if l.Diverged && l.ND <= res.ThresholdND+1e-9 {
			found = true
		}
	}
	if !found {
		t.Errorf("threshold %v unsupported by levels %+v", res.ThresholdND, res.Levels)
	}
}

func TestExposureSearchDeterministicPatternNeverExposes(t *testing.T) {
	e := DefaultExperiment("ring_halo", 8, 0)
	e.Iterations = 3
	res, err := e.ExposureSearch(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exposed {
		t.Errorf("concrete-source pattern exposed at %v%%", res.ThresholdND)
	}
	// Only the 100% probe batch should have been tested.
	if len(res.Levels) != 1 || res.Levels[0].ND != 100 || res.Levels[0].Diverged {
		t.Errorf("levels = %+v", res.Levels)
	}
}

func TestExposureSearchReproducible(t *testing.T) {
	e := DefaultExperiment("amg2013", 8, 0)
	a, err := e.ExposureSearch(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.ExposureSearch(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Exposed != b.Exposed || a.ThresholdND != b.ThresholdND {
		t.Errorf("search not reproducible: %+v vs %+v", a, b)
	}
}
