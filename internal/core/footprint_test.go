package core

import (
	"context"
	"path/filepath"
	"testing"

	"github.com/anacin-go/anacinx/internal/kernel"
	"github.com/anacin-go/anacinx/internal/patterns"
	"github.com/anacin-go/anacinx/internal/sim"
	"github.com/anacin-go/anacinx/internal/trace"
)

// streamFootprint runs one ring_halo experiment through the real
// streaming pipeline — simulate into a v2 file, stream it back through
// a Reader into the WL kernel — and returns the two working-set
// measures alongside the event count: the kernel's peak refinement
// window and the file's largest segment (a cursor decodes one segment
// of columns at a time).
func streamFootprint(t *testing.T, iterations int) (events, maxWindow, maxSegment int) {
	t.Helper()
	e := DefaultExperiment("ring_halo", 8, 50)
	e.Iterations = iterations
	e.Runs = 1
	pat, err := patterns.ByName(e.Pattern)
	if err != nil {
		t.Fatal(err)
	}
	program, err := pat.Program(e.params())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.anctr")
	if _, err := e.streamRun(context.Background(), 0, pat, sim.Adapt(program), path); err != nil {
		t.Fatal(err)
	}
	r, err := trace.OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	_, stats, err := kernel.NewWL(2).FeaturesFromReaderStats(r)
	if err != nil {
		t.Fatal(err)
	}
	return r.NumEvents(), stats.MaxWindow, r.Stats().MaxSegmentEvents
}

// TestStreamPipelineFootprintFlat pins the streaming pipeline's memory
// contract end to end: growing a balanced run 10x in iterations must
// not grow the pipeline's working set. The simulator never materializes
// a trace (events stream into the v2 encoder, whose rank buffers flush
// every segment), a reader cursor holds one decoded segment, and the
// WL kernel's refinement window retires nodes as receives match — so
// every stage is bounded by structure, not run length.
func TestStreamPipelineFootprintFlat(t *testing.T) {
	smallEvents, smallWindow, smallSeg := streamFootprint(t, 4)
	bigEvents, bigWindow, bigSeg := streamFootprint(t, 40)
	t.Logf("iters=4:  events=%d window=%d seg=%d", smallEvents, smallWindow, smallSeg)
	t.Logf("iters=40: events=%d window=%d seg=%d", bigEvents, bigWindow, bigSeg)

	if bigEvents < 8*smallEvents {
		t.Fatalf("10x iterations grew events only %dx (%d -> %d); workload not scaling",
			bigEvents/max(smallEvents, 1), smallEvents, bigEvents)
	}
	// The kernel window tracks in-flight structure, not history; allow a
	// little slack for boundary effects but nothing close to the 10x
	// event growth.
	if bigWindow > 2*smallWindow {
		t.Errorf("kernel window grew %d -> %d under 10x iterations; streaming footprint not flat",
			smallWindow, bigWindow)
	}
	// A cursor's decode buffer is one segment of columns, capped by the
	// writer's flush threshold regardless of run length.
	if bigSeg > 1024 {
		t.Errorf("largest segment %d events exceeds the 1024-event flush threshold", bigSeg)
	}
}
