package patterns

import "github.com/anacin-go/anacinx/internal/sim"

func init() { register(&MasterWorker{}) }

// MasterWorker is a self-scheduling task farm, the classic
// master–worker idiom of throughput-bound MPI codes: rank 0 seeds one
// task per worker, then hands the next task to whichever worker
// returns a result first. The master's wildcard receive makes the
// *assignment itself* non-deterministic — arrival order decides not
// just matching but which rank performs which unit of work — so the
// per-worker event counts drift run to run, unlike the fixed plans of
// mcb or unstructured_mesh. Point-to-point only, so it runs on both
// the DES and wallclock runtimes.
type MasterWorker struct{}

// Task-farm message tags: the worker distinguishes an assignment from
// the shutdown marker by tag on its concrete-source receive.
const (
	tagStop   = 0
	tagTask   = 1
	tagResult = 2
)

// Name implements Pattern.
func (*MasterWorker) Name() string { return "master_worker" }

// Description implements Pattern.
func (*MasterWorker) Description() string {
	return "self-scheduling task farm: the master assigns work in result-arrival order"
}

// MinProcs implements Pattern.
func (*MasterWorker) MinProcs() int { return 2 }

// Deterministic implements Pattern.
func (*MasterWorker) Deterministic() bool { return false }

// Tasks returns the total task count for the given parameters:
// Iterations tasks per worker on average.
func (*MasterWorker) Tasks(p Params) int {
	p = p.withDefaults()
	return p.Iterations * (p.Procs - 1)
}

// EventsPerRankHint implements Pattern: each task costs four events
// (assignment send/recv, result send/recv) plus a stop exchange per
// worker. The master records half of every exchange and overflows the
// average — by design.
func (m *MasterWorker) EventsPerRankHint(p Params) int {
	p = p.withDefaults()
	return 2 + ceilDiv(4*m.Tasks(p)+2*(p.Procs-1), p.Procs)
}

// Program implements Pattern.
func (m *MasterWorker) Program(p Params) (sim.ProcProgram, error) {
	if err := p.Validate(m.MinProcs()); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	tasks := m.Tasks(p)
	return func(r sim.Proc) {
		if r.Rank() == 0 {
			m.farmTasks(r, p, tasks)
		} else {
			m.workLoop(r, p)
		}
	}, nil
}

// farmTasks is the master loop and the pattern's root source of
// non-determinism: the wildcard receive admits whichever worker's
// result arrives first, and that worker gets the next task.
func (m *MasterWorker) farmTasks(r sim.Proc, p Params, tasks int) {
	outstanding := 0
	for w := 1; w < r.Size(); w++ {
		if tasks > 0 {
			r.SendSize(w, tagTask, p.MsgSize)
			tasks--
			outstanding++
		} else {
			r.SendSize(w, tagStop, 0)
		}
	}
	for outstanding > 0 {
		res := r.Recv(sim.AnySource, tagResult)
		outstanding--
		if tasks > 0 {
			r.SendSize(res.Src, tagTask, p.MsgSize)
			tasks--
			outstanding++
		} else {
			r.SendSize(res.Src, tagStop, 0)
		}
	}
}

// workLoop receives assignments from the master (concrete source, so
// per-channel FIFO keeps task/stop ordering), computes, and returns a
// result until told to stop.
func (m *MasterWorker) workLoop(r sim.Proc, p Params) {
	for {
		task := r.Recv(0, sim.AnyTag)
		if task.Tag == tagStop {
			return
		}
		r.Compute(p.ComputeGrain)
		r.SendSize(0, tagResult, p.MsgSize)
	}
}
