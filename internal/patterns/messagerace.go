package patterns

import "github.com/anacin-go/anacinx/internal/sim"

func init() { register(&MessageRace{}) }

// MessageRace is the simplest of the paper's three mini-applications:
// every nonzero rank sends one message per iteration to rank 0, which
// receives them with AnySource — so the order in which the racing
// messages match is unknown ahead of time (paper §II-B and Figs. 2, 4).
type MessageRace struct{}

// Name implements Pattern.
func (*MessageRace) Name() string { return "message_race" }

// Description implements Pattern.
func (*MessageRace) Description() string {
	return "all nonzero ranks race messages into rank 0's wildcard receives"
}

// MinProcs implements Pattern.
func (*MessageRace) MinProcs() int { return 2 }

// Deterministic implements Pattern.
func (*MessageRace) Deterministic() bool { return false }

// EventsPerRankHint implements Pattern: 2·iters·(P-1) send/recv events
// spread over P ranks, plus the Init/Finalize bracket. Rank 0 records
// almost all receives and overflows the average — by design.
func (m *MessageRace) EventsPerRankHint(p Params) int {
	p = p.withDefaults()
	return 2 + ceilDiv(2*p.Iterations*(p.Procs-1), p.Procs)
}

// Program implements Pattern.
func (m *MessageRace) Program(p Params) (sim.ProcProgram, error) {
	if err := p.Validate(m.MinProcs()); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	return func(r sim.Proc) {
		for iter := 0; iter < p.Iterations; iter++ {
			if r.Rank() == 0 {
				m.drainRaces(r, p)
			} else {
				m.fireMessage(r, p, iter)
			}
			r.Compute(p.ComputeGrain)
		}
	}, nil
}

// fireMessage is the root source of non-determinism on the sender side:
// the message it posts races against every other rank's.
func (m *MessageRace) fireMessage(r sim.Proc, p Params, iter int) {
	r.SendSize(0, iter, p.MsgSize)
}

// drainRaces is the root source of non-determinism on the receiver
// side: its wildcard receives admit whichever racing message arrives
// first.
func (m *MessageRace) drainRaces(r sim.Proc, p Params) {
	for i := 0; i < r.Size()-1; i++ {
		r.Recv(sim.AnySource, sim.AnyTag)
	}
}
