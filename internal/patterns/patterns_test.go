package patterns

import (
	"math"
	"strings"
	"testing"

	"github.com/anacin-go/anacinx/internal/graph"
	"github.com/anacin-go/anacinx/internal/kernel"
	"github.com/anacin-go/anacinx/internal/sim"
	"github.com/anacin-go/anacinx/internal/trace"
)

// runPattern executes a pattern and returns its validated trace.
func runPattern(t testing.TB, pat Pattern, params Params, nd float64, seed int64) *trace.Trace {
	t.Helper()
	prog, err := pat.Program(params)
	if err != nil {
		t.Fatalf("%s: Program: %v", pat.Name(), err)
	}
	cfg := sim.DefaultConfig(params.Procs, seed)
	cfg.NDPercent = nd
	tr, _, err := sim.Run(cfg, trace.Meta{Pattern: pat.Name(), Iterations: params.Iterations, MsgSize: params.MsgSize}, sim.Adapt(prog))
	if err != nil {
		t.Fatalf("%s: Run: %v", pat.Name(), err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("%s: trace invalid: %v", pat.Name(), err)
	}
	return tr
}

func patternGraph(t testing.TB, pat Pattern, params Params, nd float64, seed int64) *graph.Graph {
	t.Helper()
	g, err := graph.FromTrace(runPattern(t, pat, params, nd, seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 11 {
		t.Fatalf("registry has %d patterns: %v", len(all), sortedNames())
	}
	// The paper's three mini-applications must be present under their
	// documented names, plus the MCB and miniAMR workloads its
	// companion papers evaluate and the large-P bench patterns.
	for _, name := range []string{"message_race", "amg2013", "unstructured_mesh", "mcb", "miniamr", "master_worker", "collective_tree"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("unknown lookup: %v", err)
	}
	// Sorted and self-describing.
	for i := 1; i < len(all); i++ {
		if all[i-1].Name() >= all[i].Name() {
			t.Error("All() not sorted")
		}
	}
	for _, p := range all {
		if p.Description() == "" || p.MinProcs() < 2 {
			t.Errorf("%s: missing description or bad MinProcs", p.Name())
		}
	}
}

func TestParamsValidation(t *testing.T) {
	for _, pat := range All() {
		if _, err := pat.Program(Params{Procs: pat.MinProcs() - 1}); err == nil {
			t.Errorf("%s accepted too few procs", pat.Name())
		}
		bad := DefaultParams(pat.MinProcs())
		bad.Iterations = -1
		if _, err := pat.Program(bad); err == nil {
			t.Errorf("%s accepted negative iterations", pat.Name())
		}
		bad = DefaultParams(pat.MinProcs())
		bad.MsgSize = -1
		if _, err := pat.Program(bad); err == nil {
			t.Errorf("%s accepted negative msg size", pat.Name())
		}
	}
}

func TestAllPatternsRunToCompletion(t *testing.T) {
	// Every pattern must complete without deadlock at 0% and 100% ND,
	// across a spread of process counts and iteration counts.
	for _, pat := range All() {
		for _, procs := range []int{pat.MinProcs(), pat.MinProcs() + 3, 9} {
			if procs < pat.MinProcs() {
				continue
			}
			for _, iters := range []int{1, 2, 3} {
				for _, nd := range []float64{0, 100} {
					params := DefaultParams(procs)
					params.Iterations = iters
					tr := runPattern(t, pat, params, nd, 42)
					if tr.NumEvents() < 2*procs {
						t.Errorf("%s procs=%d: suspiciously few events %d", pat.Name(), procs, tr.NumEvents())
					}
				}
			}
		}
	}
}

func TestMessageRaceShape(t *testing.T) {
	params := DefaultParams(5)
	params.Iterations = 3
	tr := runPattern(t, &MessageRace{}, params, 0, 1)
	counts := tr.KindCounts()
	wantMsgs := 4 * 3 // (procs-1) * iterations
	if counts[trace.KindSend] != wantMsgs || counts[trace.KindRecv] != wantMsgs {
		t.Errorf("counts = %v, want %d sends/recvs", counts, wantMsgs)
	}
	// All receives are on rank 0.
	for rank, evs := range tr.Events {
		for i := range evs {
			if evs[i].Kind == trace.KindRecv && rank != 0 {
				t.Errorf("recv on rank %d", rank)
			}
		}
	}
}

func TestAMGShape(t *testing.T) {
	params := DefaultParams(4)
	tr := runPattern(t, &AMG2013{}, params, 0, 1)
	counts := tr.KindCounts()
	wantMsgs := 4 * 3 * 2 // procs * (procs-1) * two rounds
	if counts[trace.KindSend] != wantMsgs || counts[trace.KindRecv] != wantMsgs {
		t.Errorf("counts = %v, want %d sends/recvs", counts, wantMsgs)
	}
	// Every rank both sends and receives.
	for rank, evs := range tr.Events {
		var sends, recvs int
		for i := range evs {
			switch evs[i].Kind {
			case trace.KindSend:
				sends++
			case trace.KindRecv:
				recvs++
			}
		}
		if sends != 6 || recvs != 6 {
			t.Errorf("rank %d: %d sends, %d recvs, want 6/6", rank, sends, recvs)
		}
	}
}

func TestMeshTopologyProperties(t *testing.T) {
	mesh := &UnstructuredMesh{}
	params := DefaultParams(16)
	params.Degree = 3
	out, indeg := mesh.Topology(params)
	if len(out) != 16 || len(indeg) != 16 {
		t.Fatalf("topology sizes %d/%d", len(out), len(indeg))
	}
	totalOut, totalIn := 0, 0
	for r, neighbors := range out {
		if len(neighbors) != 3 {
			t.Errorf("rank %d has %d out-neighbors", r, len(neighbors))
		}
		seen := map[int]bool{}
		for _, n := range neighbors {
			if n == r {
				t.Errorf("rank %d is its own neighbor", r)
			}
			if n < 0 || n >= 16 {
				t.Errorf("rank %d has invalid neighbor %d", r, n)
			}
			if seen[n] {
				t.Errorf("rank %d has duplicate neighbor %d", r, n)
			}
			seen[n] = true
		}
		totalOut += len(neighbors)
	}
	for _, d := range indeg {
		totalIn += d
	}
	if totalOut != totalIn {
		t.Errorf("out-degree sum %d != in-degree sum %d", totalOut, totalIn)
	}
}

func TestMeshTopologyFixedBySeed(t *testing.T) {
	mesh := &UnstructuredMesh{}
	a := DefaultParams(12)
	b := DefaultParams(12)
	outA, _ := mesh.Topology(a)
	outB, _ := mesh.Topology(b)
	for r := range outA {
		for i := range outA[r] {
			if outA[r][i] != outB[r][i] {
				t.Fatal("same topology seed gave different neighbor graphs")
			}
		}
	}
	b.TopologySeed = 999
	outC, _ := mesh.Topology(b)
	same := true
	for r := range outA {
		for i := range outA[r] {
			if outA[r][i] != outC[r][i] {
				same = false
			}
		}
	}
	if same {
		t.Error("different topology seeds gave identical neighbor graphs")
	}
}

func TestMeshDegreeClamped(t *testing.T) {
	mesh := &UnstructuredMesh{}
	params := DefaultParams(3)
	params.Degree = 10
	out, _ := mesh.Topology(params)
	for r, neighbors := range out {
		if len(neighbors) != 2 {
			t.Errorf("rank %d: degree %d, want clamped 2", r, len(neighbors))
		}
	}
}

func TestDeterministicPatternsAreOrderInvariant(t *testing.T) {
	// RingHalo and Stencil2D use concrete-source receives: at 100% ND,
	// every seed yields the same communication structure.
	for _, pat := range All() {
		if !pat.Deterministic() {
			continue
		}
		params := DefaultParams(6)
		params.Iterations = 3
		var want uint64
		for seed := int64(0); seed < 6; seed++ {
			tr := runPattern(t, pat, params, 100, seed)
			if seed == 0 {
				want = tr.OrderHash()
			} else if tr.OrderHash() != want {
				t.Errorf("%s: seed %d changed structure despite concrete-source receives", pat.Name(), seed)
			}
		}
	}
}

func TestRacingPatternsDivergeAt100PercentND(t *testing.T) {
	// The racing mini-applications must show structural divergence
	// across seeds at 100% ND.
	for _, name := range []string{"message_race", "amg2013", "unstructured_mesh", "mcb", "miniamr"} {
		pat, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		params := DefaultParams(8)
		params.Iterations = 3
		hashes := map[uint64]bool{}
		for seed := int64(0); seed < 8; seed++ {
			tr := runPattern(t, pat, params, 100, seed)
			hashes[tr.OrderHash()] = true
		}
		if len(hashes) < 2 {
			t.Errorf("%s: no structural divergence across 8 seeds at 100%% ND", name)
		}
	}
}

func TestKernelDistanceSeesRacingDivergence(t *testing.T) {
	// End-to-end: WL-2 kernel distance is zero between 0%-ND runs and
	// positive between some 100%-ND runs, for AMG and the mesh — the
	// patterns the paper's quantitative figures use. The pure message
	// race is excluded from the positive-distance assertion: its
	// senders are structurally identical, so swapping two racing
	// messages is a graph automorphism and any isomorphism-invariant
	// kernel legitimately measures distance 0 even though the match
	// order (OrderHash) differs — see
	// TestRacingPatternsDivergeAt100PercentND for that weaker property.
	k := kernel.NewWL(2)
	for _, name := range []string{"amg2013", "unstructured_mesh"} {
		pat, _ := ByName(name)
		params := DefaultParams(8)
		params.Iterations = 3
		gA0 := patternGraph(t, pat, params, 0, 1)
		gB0 := patternGraph(t, pat, params, 0, 2)
		if d := kernel.Distance(k, gA0, gB0); d != 0 {
			t.Errorf("%s: 0%% ND distance %v, want 0", name, d)
		}
		found := false
		gRef := patternGraph(t, pat, params, 100, 1)
		for seed := int64(2); seed < 10 && !found; seed++ {
			g := patternGraph(t, pat, params, 100, seed)
			if kernel.Distance(k, gRef, g) > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no positive kernel distance across seeds at 100%% ND", name)
		}
	}
}

func TestMCBPlanConserved(t *testing.T) {
	mcb := &MonteCarlo{}
	params := DefaultParams(10)
	dests, inbound := mcb.Plan(params)
	outTotal, inTotal := 0, 0
	for r, ds := range dests {
		if len(ds) != batchesPerRank {
			t.Errorf("rank %d emits %d batches", r, len(ds))
		}
		for _, d := range ds {
			if d == r || d < 0 || d >= 10 {
				t.Errorf("rank %d routes a batch to %d", r, d)
			}
		}
		outTotal += len(ds)
	}
	for _, n := range inbound {
		inTotal += n
	}
	if outTotal != inTotal {
		t.Errorf("batch conservation violated: %d out, %d in", outTotal, inTotal)
	}
	// Plan is a pure function of the topology seed.
	dests2, _ := mcb.Plan(params)
	for r := range dests {
		for i := range dests[r] {
			if dests[r][i] != dests2[r][i] {
				t.Fatal("plan not reproducible")
			}
		}
	}
}

func TestMCBRunsAndMatchesCounts(t *testing.T) {
	params := DefaultParams(8)
	params.Iterations = 2
	tr := runPattern(t, &MonteCarlo{}, params, 100, 3)
	counts := tr.KindCounts()
	want := 8 * batchesPerRank * 2
	if counts[trace.KindSend] != want || counts[trace.KindRecv] != want {
		t.Errorf("counts = %v, want %d sends/recvs", counts, want)
	}
}

func TestMiniAMRPlanConserved(t *testing.T) {
	amr := &MiniAMR{}
	params := DefaultParams(8)
	params.Iterations = 3
	refined, inbound := amr.RefinementPlan(params)
	if len(refined) != 3 || len(inbound) != 3 {
		t.Fatalf("plan has %d/%d iterations", len(refined), len(inbound))
	}
	for iter := 0; iter < 3; iter++ {
		nRefined, totalIn := 0, 0
		for r := 0; r < 8; r++ {
			if refined[iter][r] {
				nRefined++
			}
			totalIn += inbound[iter][r]
		}
		if nRefined != 2 { // 25% of 8
			t.Errorf("iter %d: %d refined ranks, want 2", iter, nRefined)
		}
		wantMsgs := 2 * (6*1 + 2*refinedMessages) // both neighbors
		if totalIn != wantMsgs {
			t.Errorf("iter %d: %d inbound, want %d", iter, totalIn, wantMsgs)
		}
	}
	// Plan is a pure function of the topology seed.
	refined2, _ := amr.RefinementPlan(params)
	for iter := range refined {
		for r := range refined[iter] {
			if refined[iter][r] != refined2[iter][r] {
				t.Fatal("plan not reproducible")
			}
		}
	}
}

func TestMiniAMRRuns(t *testing.T) {
	params := DefaultParams(8)
	params.Iterations = 2
	tr := runPattern(t, &MiniAMR{}, params, 100, 5)
	counts := tr.KindCounts()
	want := 2 /*iters*/ * 2 /*sides*/ * (6*1 + 2*refinedMessages)
	if counts[trace.KindSend] != want || counts[trace.KindRecv] != want {
		t.Errorf("counts = %v, want %d sends/recvs", counts, want)
	}
}

func TestSweep3DPipelineShape(t *testing.T) {
	// The wavefront serializes along the grid diagonal: on a 3x3 grid
	// the critical path must cross several message hops, unlike a flat
	// exchange.
	params := DefaultParams(9)
	tr := runPattern(t, &Sweep3D{}, params, 0, 1)
	counts := tr.KindCounts()
	// Per sweep on 3x3: 12 directed grid edges carry one message each;
	// 4 sweeps per iteration.
	if counts[trace.KindSend] != 48 || counts[trace.KindRecv] != 48 {
		t.Errorf("counts = %v, want 48 sends/recvs", counts)
	}
	g, err := graph.FromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := g.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if cp.MessageHops < 4 {
		t.Errorf("critical path crosses only %d message hops; wavefront not pipelined", cp.MessageHops)
	}
}

func TestStencilGrid(t *testing.T) {
	s := &Stencil2D{}
	cases := map[int][2]int{4: {2, 2}, 6: {2, 3}, 9: {3, 3}, 16: {4, 4}, 20: {4, 5}}
	for procs, want := range cases {
		rows, cols := s.Grid(procs)
		if rows != want[0] || cols != want[1] {
			t.Errorf("Grid(%d) = %dx%d, want %dx%d", procs, rows, cols, want[0], want[1])
		}
		if rows*cols > procs {
			t.Errorf("Grid(%d) overflows the rank count", procs)
		}
	}
}

func TestReducePipelineResultNondeterministic(t *testing.T) {
	rp := &ReducePipeline{}
	params := DefaultParams(12)
	params.Iterations = 1
	results := map[float64]bool{}
	for seed := int64(0); seed < 20; seed++ {
		var got float64
		prog, err := rp.ProgramWithSink(params, func(v float64) { got = v })
		if err != nil {
			t.Fatal(err)
		}
		cfg := sim.DefaultConfig(params.Procs, seed)
		cfg.NDPercent = 100
		if _, _, err := sim.Run(cfg, trace.Meta{}, prog); err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(got) {
			t.Fatalf("seed %d: NaN sum", seed)
		}
		results[got] = true
	}
	if len(results) < 2 {
		t.Error("arrival-order reduction produced identical sums across 20 seeds at 100% ND")
	}
}

func TestMasterWorkerShape(t *testing.T) {
	mw := &MasterWorker{}
	params := DefaultParams(6)
	params.Iterations = 4
	tasks := mw.Tasks(params) // 4 per worker on average, 20 total
	if tasks != 20 {
		t.Fatalf("Tasks = %d, want 20", tasks)
	}
	tr := runPattern(t, mw, params, 0, 1)
	counts := tr.KindCounts()
	// Every task costs an assignment and a result message; every worker
	// additionally gets one stop message.
	wantMsgs := 2*tasks + (params.Procs - 1)
	if counts[trace.KindSend] != wantMsgs || counts[trace.KindRecv] != wantMsgs {
		t.Errorf("counts = %v, want %d sends/recvs", counts, wantMsgs)
	}
}

func TestMasterWorkerAssignmentDiverges(t *testing.T) {
	// The defining property of self-scheduling: at 100% ND different
	// seeds route different task counts to the same worker.
	mw := &MasterWorker{}
	params := DefaultParams(8)
	params.Iterations = 4
	hashes := map[uint64]bool{}
	for seed := int64(0); seed < 8; seed++ {
		tr := runPattern(t, mw, params, 100, seed)
		hashes[tr.OrderHash()] = true
	}
	if len(hashes) < 2 {
		t.Error("master_worker: no structural divergence across 8 seeds at 100% ND")
	}
}

func TestCollectiveTreeShape(t *testing.T) {
	params := DefaultParams(7) // non-power-of-two exercises ragged trees
	params.Iterations = 3
	tr := runPattern(t, &CollectiveTree{}, params, 100, 2)
	counts := tr.KindCounts()
	for kind, want := range map[trace.EventKind]int{
		trace.KindBcast:     7 * 3,
		trace.KindAllreduce: 7 * 3,
		trace.KindBarrier:   7 * 3,
	} {
		if counts[kind] != want {
			t.Errorf("%v count = %d, want %d", kind, counts[kind], want)
		}
	}
	// Collective plumbing is internal: no traced P2P at all.
	if counts[trace.KindSend] != 0 || counts[trace.KindRecv] != 0 {
		t.Errorf("collective_tree traced p2p events: %v", counts)
	}
}

func TestEventsPerRankHintTracksActualAverage(t *testing.T) {
	// The hint sizes arena carvings; it must be within a small factor of
	// the real per-rank average — neither starved nor wildly oversized.
	for _, pat := range All() {
		procs := pat.MinProcs() + 7
		params := DefaultParams(procs)
		params.Iterations = 3
		hint := pat.EventsPerRankHint(params)
		tr := runPattern(t, pat, params, 50, 9)
		avg := tr.NumEvents() / procs
		if hint < 2 {
			t.Errorf("%s: hint %d below the Init/Finalize bracket", pat.Name(), hint)
		}
		if hint < avg/2 {
			t.Errorf("%s: hint %d starves the actual average %d", pat.Name(), hint, avg)
		}
		if hint > 8*avg+16 {
			t.Errorf("%s: hint %d wildly oversizes the actual average %d", pat.Name(), hint, avg)
		}
	}
}

func TestCallstacksNamePatternFunctions(t *testing.T) {
	// The root-source analysis depends on callstacks pointing at the
	// pattern functions that issued the wildcard receives.
	tr := runPattern(t, &MessageRace{}, DefaultParams(4), 0, 1)
	foundDrain := false
	for _, evs := range tr.Events {
		for i := range evs {
			if evs[i].Kind == trace.KindRecv {
				if strings.Contains(evs[i].CallstackKey(), "drainRaces") {
					foundDrain = true
				}
			}
		}
	}
	if !foundDrain {
		t.Error("recv callstacks do not name MessageRace.drainRaces")
	}
}

func BenchmarkUnstructuredMesh16(b *testing.B) {
	pat, _ := ByName("unstructured_mesh")
	params := DefaultParams(16)
	params.Iterations = 2
	prog, err := pat.Program(params)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.DefaultConfig(16, 1)
	cfg.NDPercent = 100
	cfg.CaptureStacks = false
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, _, err := sim.Run(cfg, trace.Meta{}, sim.Adapt(prog)); err != nil {
			b.Fatal(err)
		}
	}
}
