package patterns

import (
	"github.com/anacin-go/anacinx/internal/sim"
	"github.com/anacin-go/anacinx/internal/vtime"
)

func init() { register(&MiniAMR{}) }

// MiniAMR mimics the communication of the miniAMR adaptive-mesh-
// refinement proxy, the second mini-application (besides MCB) that the
// ANACIN-X research papers evaluate. Ranks exchange halos around a
// ring, but a fixed, topology-seeded subset of ranks is "refined" each
// iteration and exchanges proportionally more boundary messages — so
// message multiplicities are heterogeneous and drift across
// iterations, the way refinement makes real AMR communication evolve.
// Receives are wildcard, making the pattern racing.
type MiniAMR struct{}

// refineFraction is the fraction of ranks refined per iteration.
const refineFraction = 0.25

// refinedMessages is how many messages a refined rank sends to each
// ring neighbor (an unrefined rank sends one).
const refinedMessages = 3

// Name implements Pattern.
func (*MiniAMR) Name() string { return "miniamr" }

// Description implements Pattern.
func (*MiniAMR) Description() string {
	return "AMR halo exchange: refined ranks send extra boundary messages; wildcard receives"
}

// MinProcs implements Pattern.
func (*MiniAMR) MinProcs() int { return 3 }

// Deterministic implements Pattern.
func (*MiniAMR) Deterministic() bool { return false }

// RefinementPlan returns, per iteration, the set of refined ranks, and
// per (iteration, rank) the inbound message count. The plan is drawn
// from Params.TopologySeed, so all runs of one configuration refine
// identically.
func (m *MiniAMR) RefinementPlan(p Params) (refined [][]bool, inbound [][]int) {
	p = p.withDefaults()
	rng := vtime.NewRNG(p.TopologySeed).Split(0xa312)
	refined = make([][]bool, p.Iterations)
	inbound = make([][]int, p.Iterations)
	nRefined := int(refineFraction * float64(p.Procs))
	if nRefined < 1 {
		nRefined = 1
	}
	for iter := 0; iter < p.Iterations; iter++ {
		refined[iter] = make([]bool, p.Procs)
		for _, r := range rng.Perm(p.Procs)[:nRefined] {
			refined[iter][r] = true
		}
		inbound[iter] = make([]int, p.Procs)
		for r := 0; r < p.Procs; r++ {
			count := 1
			if refined[iter][r] {
				count = refinedMessages
			}
			left := (r - 1 + p.Procs) % p.Procs
			right := (r + 1) % p.Procs
			inbound[iter][left] += count
			inbound[iter][right] += count
		}
	}
	return refined, inbound
}

// EventsPerRankHint implements Pattern: per iteration every rank sends
// one message to each ring side and the nRefined refined ranks send
// refinedMessages-1 extra each; receives mirror sends in aggregate, so
// one iteration records 4·(P + (refinedMessages-1)·nRefined) events
// across P ranks.
func (m *MiniAMR) EventsPerRankHint(p Params) int {
	p = p.withDefaults()
	nRefined := int(refineFraction * float64(p.Procs))
	if nRefined < 1 {
		nRefined = 1
	}
	comm := 4 * p.Iterations * (p.Procs + (refinedMessages-1)*nRefined)
	return 2 + ceilDiv(comm, p.Procs)
}

// Program implements Pattern.
func (m *MiniAMR) Program(p Params) (sim.ProcProgram, error) {
	if err := p.Validate(m.MinProcs()); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	refined, inbound := m.RefinementPlan(p)
	return func(r sim.Proc) {
		for iter := 0; iter < p.Iterations; iter++ {
			m.exchangeBoundaries(r, p, refined[iter][r.Rank()], iter)
			m.receiveBoundaries(r, inbound[iter][r.Rank()])
			r.Compute(p.ComputeGrain)
		}
	}, nil
}

// exchangeBoundaries sends this iteration's halo messages to both ring
// neighbors; a refined rank sends refinedMessages per side.
func (m *MiniAMR) exchangeBoundaries(r sim.Proc, p Params, isRefined bool, iter int) {
	count := 1
	if isRefined {
		count = refinedMessages
	}
	size := r.Size()
	left := (r.Rank() - 1 + size) % size
	right := (r.Rank() + 1) % size
	for i := 0; i < count; i++ {
		r.SendSize(left, iter, p.MsgSize)
		r.SendSize(right, iter, p.MsgSize)
	}
}

// receiveBoundaries admits the planned inbound halos in arrival order —
// miniAMR's root source of non-determinism.
func (m *MiniAMR) receiveBoundaries(r sim.Proc, inbound int) {
	for i := 0; i < inbound; i++ {
		r.Recv(sim.AnySource, sim.AnyTag)
	}
}
