// Package patterns implements the communication-pattern
// mini-applications packaged with ANACIN-X — message race, AMG2013, and
// unstructured mesh — plus contrast patterns used by the course module's
// exercises.
//
// Each pattern is a rank program for the simulated MPI runtime. The
// paper's knobs map directly onto Params: number of processes, number
// of communication-pattern iterations, message size, and (via
// sim.Config) the percentage of non-determinism and the node count.
//
// The three paper patterns receive with AnySource, so their
// communication structure is sensitive to message-arrival order; the
// contrast patterns (ring halo, 2-D stencil) receive from concrete
// sources, so their structure is reproducible at any ND level — a
// distinction the course module asks students to discover.
//
// Pattern methods are deliberately small named functions: recorded
// callstacks such as "patterns.(*MessageRace).drainRaces" are what the
// root-source analysis (paper Fig. 8) surfaces to students.
package patterns

import (
	"fmt"
	"sort"

	"github.com/anacin-go/anacinx/internal/sim"
	"github.com/anacin-go/anacinx/internal/vtime"
)

// Params configures one pattern instance. The zero value is not valid;
// start from DefaultParams.
type Params struct {
	// Procs is the number of ranks the pattern will run on.
	Procs int
	// Iterations is how many times the communication pattern repeats
	// within one execution (the paper's intermediate-level knob,
	// Fig. 6).
	Iterations int
	// MsgSize is the payload size in bytes of every pattern message
	// (the paper's figures use 1-byte messages).
	MsgSize int
	// TopologySeed fixes randomized topology choices (unstructured
	// mesh neighbors). It is part of the application input, NOT of the
	// run's random stream: every run of one configuration must use the
	// same topology or the kernel distance would measure topology
	// changes rather than non-determinism.
	TopologySeed int64
	// Degree is the out-neighbor count for the unstructured mesh.
	// 0 means the default (3, clamped to Procs-1).
	Degree int
	// ComputeGrain is the virtual compute time inserted between
	// communication phases. 0 means the default (1µs).
	ComputeGrain vtime.Duration
}

// DefaultParams returns a valid parameter set for the given process
// count: one iteration, 1-byte messages, topology seed 1.
func DefaultParams(procs int) Params {
	return Params{
		Procs:        procs,
		Iterations:   1,
		MsgSize:      1,
		TopologySeed: 1,
	}
}

func (p *Params) withDefaults() Params {
	q := *p
	if q.Iterations == 0 {
		q.Iterations = 1
	}
	if q.ComputeGrain == 0 {
		q.ComputeGrain = vtime.Microsecond
	}
	if q.Degree == 0 {
		q.Degree = 3
	}
	if q.Degree > q.Procs-1 {
		q.Degree = q.Procs - 1
	}
	return q
}

// Validate checks the parameters against a pattern's requirements.
func (p *Params) Validate(minProcs int) error {
	if p.Procs < minProcs {
		return fmt.Errorf("patterns: %d procs, need >= %d", p.Procs, minProcs)
	}
	if p.Iterations < 0 {
		return fmt.Errorf("patterns: negative iterations %d", p.Iterations)
	}
	if p.MsgSize < 0 {
		return fmt.Errorf("patterns: negative message size %d", p.MsgSize)
	}
	return nil
}

// Pattern is a runnable communication-pattern mini-application.
type Pattern interface {
	// Name is the registry key, e.g. "message_race".
	Name() string
	// Description is a one-line summary for CLI listings.
	Description() string
	// MinProcs is the smallest process count the pattern supports.
	MinProcs() int
	// Deterministic reports whether the pattern's communication
	// structure is invariant to message-arrival order (concrete-source
	// receives only).
	Deterministic() bool
	// Program builds the rank program for the given parameters.
	// It returns an error if the parameters are invalid.
	Program(p Params) (sim.ProcProgram, error)
	// EventsPerRankHint estimates the average number of trace events
	// one rank records under the given parameters (including the Init
	// and Finalize bracket). It sizes the trace's per-rank arena
	// carvings (sim.Config.EventsPerRankHint): a capacity hint, not a
	// bound — streams grow past it freely, so rough is fine, and hot
	// ranks (a fan-in root) are expected to overflow it.
	EventsPerRankHint(p Params) int
}

// ceilDiv returns ⌈a/b⌉ for non-negative a and positive b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// registry holds all known patterns, populated by init functions of the
// pattern files.
var registry = map[string]Pattern{}

func register(p Pattern) {
	if _, dup := registry[p.Name()]; dup {
		panic("patterns: duplicate registration of " + p.Name())
	}
	registry[p.Name()] = p
}

// All returns every registered pattern, sorted by name.
func All() []Pattern {
	names := sortedNames()
	out := make([]Pattern, len(names))
	for i, name := range names {
		out[i] = registry[name]
	}
	return out
}

// ByName looks a pattern up by its registry key.
func ByName(name string) (Pattern, error) {
	p, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("patterns: unknown pattern %q (have %v)", name, sortedNames())
	}
	return p, nil
}

// sortedNames returns the registry keys in sorted order — the only
// order in which the registry may ever be iterated (see docs/linting.md
// on the maprange invariant; the sort here is what keeps the collect
// loop lint-clean).
func sortedNames() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
