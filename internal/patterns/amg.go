package patterns

import "github.com/anacin-go/anacinx/internal/sim"

func init() { register(&AMG2013{}) }

// AMG2013 mimics the communication pattern of the Algebraic Multigrid
// 2013 proxy application as packaged with ANACIN-X: per iteration,
// "each process sends a message to all other processes. Each process
// ... does this twice" (paper §II-B), receiving with AnySource. The
// two rounds model AMG's down- and up-sweep halo exchanges.
type AMG2013 struct{}

// roundsPerIteration is the paper-specified number of all-to-all
// exchanges per pattern iteration.
const roundsPerIteration = 2

// Name implements Pattern.
func (*AMG2013) Name() string { return "amg2013" }

// Description implements Pattern.
func (*AMG2013) Description() string {
	return "two rounds per iteration of every-rank-to-every-rank messages with wildcard receives"
}

// MinProcs implements Pattern.
func (*AMG2013) MinProcs() int { return 2 }

// Deterministic implements Pattern.
func (*AMG2013) Deterministic() bool { return false }

// EventsPerRankHint implements Pattern: every rank sends and receives
// P-1 messages per round, so per-rank streams are uniform and exact.
func (a *AMG2013) EventsPerRankHint(p Params) int {
	p = p.withDefaults()
	return 2 + p.Iterations*roundsPerIteration*2*(p.Procs-1)
}

// Program implements Pattern.
func (a *AMG2013) Program(p Params) (sim.ProcProgram, error) {
	if err := p.Validate(a.MinProcs()); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	return func(r sim.Proc) {
		for iter := 0; iter < p.Iterations; iter++ {
			for round := 0; round < roundsPerIteration; round++ {
				a.exchangeAll(r, p, round)
			}
			r.Compute(p.ComputeGrain)
		}
	}, nil
}

// exchangeAll performs one all-to-all round: send to every other rank,
// then admit every other rank's message in arrival order. The wildcard
// receives are the round's root source of non-determinism.
func (a *AMG2013) exchangeAll(r sim.Proc, p Params, round int) {
	a.broadcastWork(r, p, round)
	a.gatherWork(r, p)
}

// broadcastWork sends this round's boundary data to every other rank.
func (a *AMG2013) broadcastWork(r sim.Proc, p Params, round int) {
	me, size := r.Rank(), r.Size()
	for off := 1; off < size; off++ {
		r.SendSize((me+off)%size, round, p.MsgSize)
	}
}

// gatherWork admits every other rank's contribution, first come first
// served.
func (a *AMG2013) gatherWork(r sim.Proc, p Params) {
	for i := 0; i < r.Size()-1; i++ {
		r.Recv(sim.AnySource, sim.AnyTag)
	}
}
