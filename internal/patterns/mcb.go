package patterns

import (
	"github.com/anacin-go/anacinx/internal/sim"
	"github.com/anacin-go/anacinx/internal/vtime"
)

func init() { register(&MonteCarlo{}) }

// MonteCarlo mimics the communication of the Monte Carlo Benchmark
// (MCB), one of the two mini-applications the ANACIN-X research papers
// evaluate (paper reference [13]): ranks exchange particle batches with
// randomly chosen partners, and each rank drains however many batches
// the (fixed) transport plan routes to it, first come, first served.
//
// The batch plan — which rank sends how many batches to whom — is drawn
// from Params.TopologySeed and is part of the application input, so all
// runs of one configuration move identical particle counts; only the
// arrival order varies. Batch multiplicities distinguish MCB from the
// unstructured mesh: hot destinations receive many racing messages per
// iteration.
type MonteCarlo struct{}

// batchesPerRank is how many particle batches each rank emits per
// iteration.
const batchesPerRank = 4

// Name implements Pattern.
func (*MonteCarlo) Name() string { return "mcb" }

// Description implements Pattern.
func (*MonteCarlo) Description() string {
	return "Monte Carlo transport: fixed random batch plan, wildcard receives of racing batches"
}

// MinProcs implements Pattern.
func (*MonteCarlo) MinProcs() int { return 2 }

// Deterministic implements Pattern.
func (*MonteCarlo) Deterministic() bool { return false }

// Plan returns the batch routing for the given parameters: dests[r] is
// the (ordered, possibly repeating) list of destinations of rank r's
// batches in one iteration; inbound[r] is how many batches rank r
// receives per iteration.
func (m *MonteCarlo) Plan(p Params) (dests [][]int, inbound []int) {
	p = p.withDefaults()
	rng := vtime.NewRNG(p.TopologySeed).Split(0x4cb)
	dests = make([][]int, p.Procs)
	inbound = make([]int, p.Procs)
	for r := 0; r < p.Procs; r++ {
		for b := 0; b < batchesPerRank; b++ {
			dst := rng.Intn(p.Procs - 1)
			if dst >= r {
				dst++ // skip self
			}
			dests[r] = append(dests[r], dst)
			inbound[dst]++
		}
	}
	return dests, inbound
}

// EventsPerRankHint implements Pattern: batchesPerRank sends per rank
// per iteration and, on average, as many receives (hot destinations in
// the plan overflow the average).
func (m *MonteCarlo) EventsPerRankHint(p Params) int {
	p = p.withDefaults()
	return 2 + 2*p.Iterations*batchesPerRank
}

// Program implements Pattern.
func (m *MonteCarlo) Program(p Params) (sim.ProcProgram, error) {
	if err := p.Validate(m.MinProcs()); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	dests, inbound := m.Plan(p)
	return func(r sim.Proc) {
		for iter := 0; iter < p.Iterations; iter++ {
			m.emitBatches(r, p, dests[r.Rank()], iter)
			m.absorbBatches(r, inbound[r.Rank()])
			r.Compute(p.ComputeGrain)
		}
	}, nil
}

// emitBatches sends this iteration's particle batches along the fixed
// transport plan.
func (m *MonteCarlo) emitBatches(r sim.Proc, p Params, dests []int, iter int) {
	for _, dst := range dests {
		r.SendSize(dst, iter, p.MsgSize)
	}
}

// absorbBatches drains the inbound batches in arrival order — MCB's
// root source of non-determinism.
func (m *MonteCarlo) absorbBatches(r sim.Proc, inbound int) {
	for i := 0; i < inbound; i++ {
		r.Recv(sim.AnySource, sim.AnyTag)
	}
}
