package patterns

import (
	"encoding/binary"
	"math"

	"github.com/anacin-go/anacinx/internal/sim"
)

// Contrast patterns for the course module's exercises. They are not in
// the paper's benchmark set; they exist so students can compare the
// racing patterns against workloads whose communication structure is
// immune to arrival order (concrete-source receives) or whose
// non-determinism lives in the data rather than the event graph
// (arrival-order reductions).

func init() {
	register(&RingHalo{})
	register(&Stencil2D{})
	register(&ReducePipeline{})
}

// RingHalo exchanges halos around a ring with concrete-source receives:
// rank r sends to both ring neighbors and receives explicitly from
// each. Because no wildcard is involved, the event graph is identical
// at any ND level — the deterministic control for Use Case 1.
type RingHalo struct{}

// Name implements Pattern.
func (*RingHalo) Name() string { return "ring_halo" }

// Description implements Pattern.
func (*RingHalo) Description() string {
	return "ring neighbor exchange with concrete-source receives (deterministic control)"
}

// MinProcs implements Pattern.
func (*RingHalo) MinProcs() int { return 3 }

// Deterministic implements Pattern.
func (*RingHalo) Deterministic() bool { return true }

// EventsPerRankHint implements Pattern: exactly two sends and two
// receives per rank per iteration.
func (*RingHalo) EventsPerRankHint(p Params) int {
	p = p.withDefaults()
	return 2 + 4*p.Iterations
}

// Program implements Pattern.
func (h *RingHalo) Program(p Params) (sim.ProcProgram, error) {
	if err := p.Validate(h.MinProcs()); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	return func(r sim.Proc) {
		size := r.Size()
		left := (r.Rank() - 1 + size) % size
		right := (r.Rank() + 1) % size
		for iter := 0; iter < p.Iterations; iter++ {
			h.pushHalos(r, p, left, right, iter)
			h.pullHalos(r, left, right, iter)
			r.Compute(p.ComputeGrain)
		}
	}, nil
}

// pushHalos sends this rank's boundary cells to both neighbors.
func (h *RingHalo) pushHalos(r sim.Proc, p Params, left, right, iter int) {
	r.SendSize(left, iter, p.MsgSize)
	r.SendSize(right, iter, p.MsgSize)
}

// pullHalos receives each neighbor's boundary explicitly by source:
// arrival order cannot change what matches where.
func (h *RingHalo) pullHalos(r sim.Proc, left, right, iter int) {
	r.Recv(left, iter)
	r.Recv(right, iter)
}

// Stencil2D is a 5-point halo exchange on the largest sqrt-shaped
// process grid that fits Procs. Like RingHalo it receives from concrete
// sources; unlike RingHalo it leaves ranks outside the grid idle, which
// gives event graphs with heterogeneous per-rank structure.
type Stencil2D struct{}

// Name implements Pattern.
func (*Stencil2D) Name() string { return "stencil2d" }

// Description implements Pattern.
func (*Stencil2D) Description() string {
	return "5-point 2-D halo exchange with concrete-source receives"
}

// MinProcs implements Pattern.
func (*Stencil2D) MinProcs() int { return 4 }

// Deterministic implements Pattern.
func (*Stencil2D) Deterministic() bool { return true }

// Grid returns the process-grid dimensions used for the given process
// count: the largest rows x cols with rows = floor(sqrt(P)) that fits.
func (*Stencil2D) Grid(procs int) (rows, cols int) {
	rows = int(math.Sqrt(float64(procs)))
	if rows < 2 {
		rows = 2
	}
	cols = procs / rows
	return rows, cols
}

// EventsPerRankHint implements Pattern: each iteration exchanges one
// message both ways across every interior grid edge (a rows×cols grid
// has rows·(cols-1) + (rows-1)·cols of them), each recording one send
// plus one receive; ranks outside the grid record only the bracket.
func (s *Stencil2D) EventsPerRankHint(p Params) int {
	p = p.withDefaults()
	rows, cols := s.Grid(p.Procs)
	edges := rows*(cols-1) + (rows-1)*cols
	return 2 + ceilDiv(4*p.Iterations*edges, p.Procs)
}

// Program implements Pattern.
func (s *Stencil2D) Program(p Params) (sim.ProcProgram, error) {
	if err := p.Validate(s.MinProcs()); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	rows, cols := s.Grid(p.Procs)
	return func(r sim.Proc) {
		me := r.Rank()
		if me >= rows*cols {
			return // outside the grid
		}
		row, col := me/cols, me%cols
		var neighbors []int
		if row > 0 {
			neighbors = append(neighbors, me-cols)
		}
		if row < rows-1 {
			neighbors = append(neighbors, me+cols)
		}
		if col > 0 {
			neighbors = append(neighbors, me-1)
		}
		if col < cols-1 {
			neighbors = append(neighbors, me+1)
		}
		for iter := 0; iter < p.Iterations; iter++ {
			s.exchange(r, p, neighbors, iter)
			r.Compute(p.ComputeGrain)
		}
	}, nil
}

// exchange sends to all grid neighbors then receives from each by
// concrete source.
func (s *Stencil2D) exchange(r sim.Proc, p Params, neighbors []int, iter int) {
	for _, n := range neighbors {
		r.SendSize(n, iter, p.MsgSize)
	}
	for _, n := range neighbors {
		r.Recv(n, iter)
	}
}

// ReducePipeline alternates a racing message burst with an
// arrival-order global sum (sim.ReduceArrival + Bcast). Its event
// graph carries the race's non-determinism, and its numerical result
// additionally depends on reduction order — the pattern behind the
// paper's references on irreproducible floating-point reductions.
type ReducePipeline struct{}

// Name implements Pattern.
func (*ReducePipeline) Name() string { return "reduce_pipeline" }

// Description implements Pattern.
func (*ReducePipeline) Description() string {
	return "message race followed by an arrival-order float reduction each iteration"
}

// MinProcs implements Pattern.
func (*ReducePipeline) MinProcs() int { return 2 }

// Deterministic implements Pattern.
func (*ReducePipeline) Deterministic() bool { return false }

// Result extraction: the reduced value ends up broadcast to all ranks;
// tools can re-run the pattern and read it from the returned closure via
// ResultOf. Because patterns are pure rank programs, the value is
// reported through a caller-provided sink.

// SumSink receives rank 0's final reduced value.
type SumSink func(v float64)

// EventsPerRankHint implements Pattern: per iteration the race burst
// records P-1 sends plus P-1 receives and the reduction phase one
// Reduce and one Bcast event per rank — 4P-2 events across P ranks.
func (*ReducePipeline) EventsPerRankHint(p Params) int {
	p = p.withDefaults()
	return 2 + ceilDiv(p.Iterations*(4*p.Procs-2), p.Procs)
}

// Program implements Pattern. The reduced value is discarded; use
// ProgramWithSink to observe it. Because the pattern uses collective
// operations, it requires the DES runtime: running it on the wallclock
// runtime panics with an explanatory message.
func (rp *ReducePipeline) Program(p Params) (sim.ProcProgram, error) {
	if err := p.Validate(rp.MinProcs()); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	return func(r sim.Proc) {
		rank, ok := r.(sim.FullProc)
		if !ok {
			panic("patterns: reduce_pipeline uses collectives and requires the full operation surface (DES runtime)")
		}
		rp.run(rank, p, nil)
	}, nil
}

// ProgramWithSink builds the program and, when sink is non-nil, calls
// it on rank 0 with the final iteration's globally reduced sum.
func (rp *ReducePipeline) ProgramWithSink(p Params, sink SumSink) (sim.Program, error) {
	if err := p.Validate(rp.MinProcs()); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	return func(r *sim.Rank) { rp.run(r, p, sink) }, nil
}

// run is the pattern body, written against the full operation surface so
// it executes identically under the DES runtime and the static verifier.
func (rp *ReducePipeline) run(r sim.FullProc, p Params, sink SumSink) {
	var last float64
	for iter := 0; iter < p.Iterations; iter++ {
		rp.racePhase(r, p, iter)
		last = rp.reducePhase(r, iter)
		r.Compute(p.ComputeGrain)
	}
	if sink != nil && r.Rank() == 0 {
		sink(last)
	}
}

// racePhase is the message-race burst into rank 0.
func (rp *ReducePipeline) racePhase(r sim.FullProc, p Params, iter int) {
	if r.Rank() == 0 {
		for i := 0; i < r.Size()-1; i++ {
			r.Recv(sim.AnySource, sim.AnyTag)
		}
	} else {
		r.SendSize(0, iter, p.MsgSize)
	}
}

// reducePhase performs the arrival-order float sum. The addends mix two
// huge cancelling terms with small ones: when the huge terms meet first
// they cancel exactly and the small terms survive; when a small term is
// absorbed into a huge one first, it is lost to rounding — so the
// rounded result depends on arrival order.
func (rp *ReducePipeline) reducePhase(r sim.FullProc, iter int) float64 {
	var contribution float64
	switch r.Rank() {
	case 0:
		contribution = 1e16
	case 1:
		contribution = -1e16
	default:
		contribution = 0.1 * float64(r.Rank()) * float64(iter+1)
	}
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, math.Float64bits(contribution))
	sum := r.ReduceArrival(0, buf, sumFloat64)
	out := r.Bcast(0, sum)
	return math.Float64frombits(binary.LittleEndian.Uint64(out))
}

// sumFloat64 adds two little-endian float64 payloads; it is associative
// only up to rounding, which is the point.
func sumFloat64(a, b []byte) []byte {
	x := math.Float64frombits(binary.LittleEndian.Uint64(a))
	y := math.Float64frombits(binary.LittleEndian.Uint64(b))
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, math.Float64bits(x+y))
	return out
}
