package patterns

import (
	"encoding/binary"

	"github.com/anacin-go/anacinx/internal/sim"
)

func init() { register(&CollectiveTree{}) }

// CollectiveTree iterates the collective core of a bulk-synchronous
// solver: a binomial-tree broadcast of "coefficients" from rank 0, a
// tree+tree allreduce of a "residual", and a dissemination (butterfly)
// barrier. Every rank records three collective events per iteration,
// but underneath the runtime moves O(P log P) internal tree messages —
// which makes the pattern the large-P stress for collective plumbing:
// the traced event streams stay tiny and uniform while the scheduler
// carries the full message volume. All sources are concrete (tree
// parents and butterfly partners), so the structure is deterministic
// at any ND level.
//
// Collectives are DES-only, so like reduce_pipeline this pattern
// requires the DES runtime and panics on the wallclock substrate.
type CollectiveTree struct{}

// Name implements Pattern.
func (*CollectiveTree) Name() string { return "collective_tree" }

// Description implements Pattern.
func (*CollectiveTree) Description() string {
	return "bcast + allreduce + barrier per iteration over binomial trees and a butterfly"
}

// MinProcs implements Pattern.
func (*CollectiveTree) MinProcs() int { return 2 }

// Deterministic implements Pattern.
func (*CollectiveTree) Deterministic() bool { return true }

// EventsPerRankHint implements Pattern: exactly three collective events
// per rank per iteration.
func (*CollectiveTree) EventsPerRankHint(p Params) int {
	p = p.withDefaults()
	return 2 + 3*p.Iterations
}

// Program implements Pattern.
func (ct *CollectiveTree) Program(p Params) (sim.ProcProgram, error) {
	if err := p.Validate(ct.MinProcs()); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	return func(r sim.Proc) {
		rank, ok := r.(sim.FullProc)
		if !ok {
			panic("patterns: collective_tree uses collectives and requires the full operation surface (DES runtime)")
		}
		for iter := 0; iter < p.Iterations; iter++ {
			ct.solveStep(rank, p, iter)
		}
	}, nil
}

// solveStep is one bulk-synchronous iteration: distribute, reduce,
// synchronize.
func (ct *CollectiveTree) solveStep(r sim.FullProc, p Params, iter int) {
	size := p.MsgSize
	if size < 8 {
		size = 8
	}
	coeffs := make([]byte, size)
	binary.LittleEndian.PutUint64(coeffs, uint64(iter))
	r.Bcast(0, coeffs)

	residual := make([]byte, 8)
	binary.LittleEndian.PutUint64(residual, uint64(r.Rank()+iter))
	r.Allreduce(residual, maxUint64)
	r.Barrier()
	r.Compute(p.ComputeGrain)
}

// maxUint64 combines two little-endian uint64 payloads by maximum — an
// associative, commutative op, so the tree reduction is reproducible.
func maxUint64(a, b []byte) []byte {
	x := binary.LittleEndian.Uint64(a)
	y := binary.LittleEndian.Uint64(b)
	if y > x {
		x = y
	}
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, x)
	return out
}
