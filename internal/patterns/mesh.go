package patterns

import (
	"github.com/anacin-go/anacinx/internal/sim"
	"github.com/anacin-go/anacinx/internal/vtime"
)

func init() { register(&UnstructuredMesh{}) }

// UnstructuredMesh mimics the Chatterbug unstructured-mesh proxy as
// packaged with ANACIN-X: the communicating pairs are randomized
// (paper §II-B — "randomizing which processes are allowed to
// communicate"), then fixed for the lifetime of the configuration.
// Per iteration each rank sends to its out-neighbors and admits its
// in-neighbors' messages with AnySource receives.
//
// The neighbor topology is drawn from Params.TopologySeed, which is an
// application input: all 20 runs of one configuration share a topology,
// so the kernel distance between runs measures message-order
// non-determinism, not topology differences.
type UnstructuredMesh struct{}

// Name implements Pattern.
func (*UnstructuredMesh) Name() string { return "unstructured_mesh" }

// Description implements Pattern.
func (*UnstructuredMesh) Description() string {
	return "randomized fixed neighbor graph; wildcard receives from in-neighbors"
}

// MinProcs implements Pattern.
func (*UnstructuredMesh) MinProcs() int { return 2 }

// Deterministic implements Pattern.
func (*UnstructuredMesh) Deterministic() bool { return false }

// Topology returns the mesh's directed neighbor lists for the given
// parameters: out[r] is rank r's out-neighbor set (sorted), indeg[r]
// how many messages rank r receives per iteration. Exposed so tools can
// display the topology a configuration uses.
func (m *UnstructuredMesh) Topology(p Params) (out [][]int, indeg []int) {
	p = p.withDefaults()
	rng := vtime.NewRNG(p.TopologySeed).Split(0x3e54)
	out = make([][]int, p.Procs)
	indeg = make([]int, p.Procs)
	for r := 0; r < p.Procs; r++ {
		// Sample Degree distinct targets != r via a partial
		// Fisher-Yates over the other ranks.
		candidates := make([]int, 0, p.Procs-1)
		for i := 0; i < p.Procs; i++ {
			if i != r {
				candidates = append(candidates, i)
			}
		}
		rng.Shuffle(len(candidates), func(i, j int) {
			candidates[i], candidates[j] = candidates[j], candidates[i]
		})
		picked := candidates[:p.Degree]
		neighbors := append([]int(nil), picked...)
		out[r] = neighbors
		for _, dst := range neighbors {
			indeg[dst]++
		}
	}
	return out, indeg
}

// EventsPerRankHint implements Pattern: Degree sends per rank per
// iteration and, on average, Degree receives (in-degrees vary with the
// topology draw, out-degrees do not).
func (m *UnstructuredMesh) EventsPerRankHint(p Params) int {
	p = p.withDefaults()
	return 2 + 2*p.Iterations*p.Degree
}

// Program implements Pattern.
func (m *UnstructuredMesh) Program(p Params) (sim.ProcProgram, error) {
	if err := p.Validate(m.MinProcs()); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	out, indeg := m.Topology(p)
	return func(r sim.Proc) {
		for iter := 0; iter < p.Iterations; iter++ {
			m.exchangeHalo(r, p, out[r.Rank()], iter)
			m.collectUpdates(r, indeg[r.Rank()])
			r.Compute(p.ComputeGrain)
		}
	}, nil
}

// exchangeHalo pushes this iteration's boundary data to the fixed
// random out-neighbors.
func (m *UnstructuredMesh) exchangeHalo(r sim.Proc, p Params, neighbors []int, iter int) {
	for _, dst := range neighbors {
		r.SendSize(dst, iter, p.MsgSize)
	}
}

// collectUpdates admits the in-neighbors' messages in arrival order —
// the mesh's root source of non-determinism.
func (m *UnstructuredMesh) collectUpdates(r sim.Proc, indegree int) {
	for i := 0; i < indegree; i++ {
		r.Recv(sim.AnySource, sim.AnyTag)
	}
}
