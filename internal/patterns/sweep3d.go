package patterns

import (
	"math"

	"github.com/anacin-go/anacinx/internal/sim"
)

func init() { register(&Sweep3D{}) }

// Sweep3D mimics the wavefront communication of the Sweep3D transport
// proxy from the Chatterbug suite (paper reference [20], the same suite
// the unstructured-mesh pattern comes from): ranks form a 2-D grid and
// each iteration performs four corner-to-corner sweeps. A rank waits
// for its upstream neighbours (concrete sources), "computes" its cell,
// and forwards to its downstream neighbours — a dependency pipeline.
//
// Matching is concrete-source, so like the other controls the
// communication *structure* is immune to delays; what the pattern adds
// to the course is its critical-path behaviour: sweeps serialize along
// the grid diagonal, so delays compound along the wavefront
// (`anacin critpath -pattern sweep3d`).
type Sweep3D struct{}

// Name implements Pattern.
func (*Sweep3D) Name() string { return "sweep3d" }

// Description implements Pattern.
func (*Sweep3D) Description() string {
	return "four diagonal wavefront sweeps over a 2-D grid (concrete-source pipeline)"
}

// MinProcs implements Pattern.
func (*Sweep3D) MinProcs() int { return 4 }

// Deterministic implements Pattern.
func (*Sweep3D) Deterministic() bool { return true }

// Grid returns the process-grid shape (same policy as Stencil2D).
func (*Sweep3D) Grid(procs int) (rows, cols int) {
	rows = int(math.Sqrt(float64(procs)))
	if rows < 2 {
		rows = 2
	}
	cols = procs / rows
	return rows, cols
}

// sweepDirections are the four corner origins: (rowStep, colStep).
var sweepDirections = [4][2]int{{1, 1}, {1, -1}, {-1, 1}, {-1, -1}}

// EventsPerRankHint implements Pattern: each of the 4 sweeps per
// iteration pushes one message across every interior grid edge (a
// rows×cols grid has rows·(cols-1) + (rows-1)·cols of them), and each
// message records one send plus one receive; ranks outside the grid
// record only the bracket.
func (s *Sweep3D) EventsPerRankHint(p Params) int {
	p = p.withDefaults()
	rows, cols := s.Grid(p.Procs)
	edges := rows*(cols-1) + (rows-1)*cols
	return 2 + ceilDiv(8*p.Iterations*edges, p.Procs)
}

// Program implements Pattern.
func (s *Sweep3D) Program(p Params) (sim.ProcProgram, error) {
	if err := p.Validate(s.MinProcs()); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	rows, cols := s.Grid(p.Procs)
	return func(r sim.Proc) {
		me := r.Rank()
		if me >= rows*cols {
			return // outside the grid
		}
		row, col := me/cols, me%cols
		for iter := 0; iter < p.Iterations; iter++ {
			for dir, step := range sweepDirections {
				tag := iter*len(sweepDirections) + dir
				s.sweepCell(r, p, row, col, rows, cols, step, tag)
			}
		}
	}, nil
}

// sweepCell processes one rank's part of one wavefront: receive from
// the upstream row/column neighbours, compute, forward downstream.
func (s *Sweep3D) sweepCell(r sim.Proc, p Params, row, col, rows, cols int, step [2]int, tag int) {
	me := row*cols + col
	upRow, upCol := row-step[0], col-step[1]
	if upRow >= 0 && upRow < rows {
		r.Recv(upRow*cols+col, tag)
	}
	if upCol >= 0 && upCol < cols {
		r.Recv(row*cols+upCol, tag)
	}
	r.Compute(p.ComputeGrain)
	downRow, downCol := row+step[0], col+step[1]
	if downRow >= 0 && downRow < rows {
		r.SendSize(downRow*cols+col, tag, p.MsgSize)
	}
	if downCol >= 0 && downCol < cols {
		r.SendSize(me+step[1], tag, p.MsgSize)
	}
}
