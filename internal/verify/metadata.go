package verify

import (
	"fmt"

	"github.com/anacin-go/anacinx/internal/patterns"
)

// Metadata cross-checks: the pattern registry's self-descriptions
// (EventsPerRankHint, Deterministic) verified against the elaborated
// structure instead of trusted.

// ceilDiv returns ⌈a/b⌉ for non-negative a and positive b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// checkHint verifies EventsPerRankHint against the elaboration's exact
// trace-event accounting. The hint's contract is the *average* per-rank
// event count including the Init/Finalize bracket, so the reference
// value is 2 + ⌈communication events / P⌉.
func checkHint(pat patterns.Pattern, p patterns.Params, res *Result) *Finding {
	comm := res.TotalTraced() - 2*res.Procs
	want := 2 + ceilDiv(comm, res.Procs)
	got := pat.EventsPerRankHint(p)
	if got == want {
		return nil
	}
	return &Finding{
		Check: "metadata-hint", Severity: SevError,
		Pattern: pat.Name(), Procs: p.Procs, Iterations: p.Iterations, Rank: -1,
		Message: fmt.Sprintf(
			"EventsPerRankHint returns %d but the elaborated structure records %d trace events across %d ranks (average 2+⌈%d/%d⌉ = %d)",
			got, res.TotalTraced(), res.Procs, comm, res.Procs, want),
	}
}

// checkDeterministic evaluates the Deterministic() claim over the whole
// sweep: raced reports, per swept configuration, whether any receive
// slot had more than one candidate sender. A true claim is falsified by
// any racy configuration (error); a false claim that never races across
// the sweep is flagged as a stale annotation (warn) — small-P
// configurations often cannot race, which is why this check is
// sweep-wide.
func checkDeterministic(pat patterns.Pattern, configs []Config, raced []bool) []Finding {
	var out []Finding
	claim := pat.Deterministic()
	any := false
	for i, r := range raced {
		if !r {
			continue
		}
		any = true
		if claim {
			out = append(out, Finding{
				Check: "metadata-deterministic", Severity: SevError,
				Pattern: pat.Name(), Procs: configs[i].Procs, Iterations: configs[i].Iterations, Rank: -1,
				Message: "Deterministic() claims arrival-order invariance, but a wildcard receive has multiple candidate senders at this configuration",
			})
		}
	}
	if !claim && !any && len(configs) > 0 {
		out = append(out, Finding{
			Check: "metadata-deterministic", Severity: SevWarn,
			Pattern: pat.Name(), Procs: 0, Iterations: 0, Rank: -1,
			Message: fmt.Sprintf("Deterministic() claims arrival-order sensitivity, but no receive slot has multiple candidate senders at any of the %d swept configurations", len(configs)),
		})
	}
	return out
}
