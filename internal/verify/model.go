package verify

import (
	"fmt"

	"github.com/anacin-go/anacinx/internal/sim"
)

// OpKind classifies one operation in the elaborated static model.
type OpKind uint8

// Operation kinds, mirroring the sim.FullProc surface. Compute is kept
// in the model (it shapes the skeleton) even though it records no trace
// event.
const (
	OpSend OpKind = iota
	OpIsend
	OpRecv
	OpIrecv
	OpWait
	OpWaitany
	OpProbe
	OpIprobe
	OpCompute
	OpCollective
)

var opKindNames = [...]string{
	OpSend:       "Send",
	OpIsend:      "Isend",
	OpRecv:       "Recv",
	OpIrecv:      "Irecv",
	OpWait:       "Wait",
	OpWaitany:    "Waitany",
	OpProbe:      "Probe",
	OpIprobe:     "Iprobe",
	OpCompute:    "Compute",
	OpCollective: "Collective",
}

func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is one elaborated operation of one rank, in program order.
type Op struct {
	// Kind is the operation class.
	Kind OpKind
	// Seq is the op's index within its rank's program.
	Seq int
	// Peer is the destination rank for sends, the source *filter* for
	// receives and probes (sim.AnySource for wildcards), and the root
	// for rooted collectives.
	Peer int
	// Tag is the tag argument (sim.AnyTag for wildcard receives).
	Tag int
	// Size is the payload size in bytes.
	Size int
	// Coll names the collective ("bcast", "allreduce", ...) for
	// OpCollective ops.
	Coll string
	// Caller is the pattern function that issued the op (last two path
	// segments, e.g. "patterns.(*MessageRace).drainRaces") — the root
	// source the paper's callstack analysis surfaces.
	Caller string
	// Events is how many trace events the op records under the DES
	// runtime (0 for Compute and probes).
	Events int
	// MatchSrc/MatchSeq identify the message the op consumed under the
	// canonical elaboration (receive-completing ops only): the sender
	// rank and the per-channel sequence number. -1 when not applicable.
	MatchSrc, MatchSeq int
}

func (o Op) describe(rank int) string {
	switch o.Kind {
	case OpSend, OpIsend:
		return fmt.Sprintf("rank %d op %d: %s(dst=%d, tag=%d, size=%d) in %s",
			rank, o.Seq, o.Kind, o.Peer, o.Tag, o.Size, o.Caller)
	case OpRecv, OpIrecv, OpProbe, OpIprobe:
		return fmt.Sprintf("rank %d op %d: %s(src=%s, tag=%s) in %s",
			rank, o.Seq, o.Kind, peerString(o.Peer), tagString(o.Tag), o.Caller)
	case OpCollective:
		return fmt.Sprintf("rank %d op %d: %s(root=%d) in %s",
			rank, o.Seq, o.Coll, o.Peer, o.Caller)
	default:
		return fmt.Sprintf("rank %d op %d: %s in %s", rank, o.Seq, o.Kind, o.Caller)
	}
}

func peerString(p int) string {
	if p == sim.AnySource {
		return "ANY"
	}
	return fmt.Sprintf("%d", p)
}

func tagString(t int) string {
	if t == sim.AnyTag {
		return "ANY"
	}
	return fmt.Sprintf("%d", t)
}

// skel is the control-flow skeleton of one op: everything about it
// except the non-deterministic matching outcome. Two elaborations with
// identical per-rank skeletons issued identical communication, so any
// difference proves matching-dependent control flow.
type skel struct {
	kind      OpKind
	peer, tag int
	size      int
	coll      string
}

func (o Op) skeleton() skel {
	return skel{kind: o.Kind, peer: o.Peer, tag: o.Tag, size: o.Size, coll: o.Coll}
}

// MsgRec is one user message of the elaborated execution.
type MsgRec struct {
	Src, Dst  int
	Tag, Size int
	// ChanSeq is the message's sequence number on its (src,dst) channel
	// — the non-overtaking order.
	ChanSeq int
	// SrcOp is the Seq of the send op that posted the message.
	SrcOp int
	// Caller is the sending pattern function.
	Caller string
	// Consumed reports whether any receive matched the message.
	Consumed bool
}

// Slot is one receive decision point of a destination rank, in matching
// order (program order for blocking receives, post order for Irecv).
type Slot struct {
	// Rank is the receiving rank.
	Rank int
	// Op is the Seq of the receive op.
	Op int
	// SrcFilter/TagFilter are the receive's arguments (Any* wildcards).
	SrcFilter, TagFilter int
	// Caller is the receiving pattern function.
	Caller string
	// MatchSrc/MatchSeq are the canonical elaboration's match.
	MatchSrc, MatchSeq int
}

// RankResult is one rank's elaborated program.
type RankResult struct {
	Ops []Op
	// Traced counts the rank's trace events including the Init/Finalize
	// bracket of 2.
	Traced int
	// Done reports whether the rank ran to completion.
	Done bool
	// BlockDesc describes the op the rank is blocked in when !Done.
	BlockDesc string
	// PanicMsg is the recovered panic text when the rank's program
	// panicked during elaboration.
	PanicMsg string
	// PendingRecvs describes Irecvs posted but never matched when the
	// rank finished.
	PendingRecvs []string
	// UnwaitedReqs describes requests the rank never completed with
	// Wait before finishing.
	UnwaitedReqs []string
}

// Result is one complete elaboration of a pattern configuration.
type Result struct {
	Procs int
	Ranks []RankResult
	// Msgs lists every user message in global post order.
	Msgs []*MsgRec
	// Slots lists every rank's receive slots in matching order.
	Slots [][]Slot
	// Stalled reports that elaboration reached a state with no runnable
	// rank before all ranks finished (deadlock or unmatched receive).
	Stalled bool
	// WaitsOn gives, for each rank blocked at the stall, the set of
	// ranks whose progress it needs (nil for done/running ranks).
	WaitsOn [][]int
	// CollMismatch is the description of a mismatched collective
	// sequence, when one aborted the elaboration.
	CollMismatch string
	// BudgetExceeded reports the op budget was exhausted (livelock
	// guard).
	BudgetExceeded bool
	// OpCount is the total ops elaborated across ranks.
	OpCount int
}

// TotalTraced sums the per-rank trace event counts.
func (r *Result) TotalTraced() int {
	total := 0
	for i := range r.Ranks {
		total += r.Ranks[i].Traced
	}
	return total
}

// Clean reports whether elaboration completed with no structural
// residue: all ranks done, every message consumed, no panics.
func (r *Result) Clean() bool {
	if r.Stalled || r.BudgetExceeded || r.CollMismatch != "" {
		return false
	}
	for i := range r.Ranks {
		rr := &r.Ranks[i]
		if !rr.Done || rr.PanicMsg != "" || len(rr.PendingRecvs) > 0 || len(rr.UnwaitedReqs) > 0 {
			return false
		}
	}
	for _, m := range r.Msgs {
		if !m.Consumed {
			return false
		}
	}
	return true
}

// skeletonsEqual reports whether two elaborations issued identical
// per-rank op skeletons.
func skeletonsEqual(a, b *Result) bool {
	if a.Procs != b.Procs {
		return false
	}
	for r := 0; r < a.Procs; r++ {
		ao, bo := a.Ranks[r].Ops, b.Ranks[r].Ops
		if len(ao) != len(bo) {
			return false
		}
		for i := range ao {
			if ao[i].skeleton() != bo[i].skeleton() {
				return false
			}
		}
	}
	return true
}
