package verify

import (
	"encoding/binary"
	"math"
	"sort"

	"github.com/anacin-go/anacinx/internal/sim"
)

// Matching counting. A matching assigns every message to a receive slot
// of its destination rank subject to (1) the slot's source/tag filter
// and (2) per-channel non-overtaking: messages on one (src,dst) channel
// are consumed in channel-sequence order. Destinations are independent
// under this model, so the pattern-wide count is the product of
// per-destination counts.
//
// The count is computed from the canonical elaboration's op structure.
// Its relation to the real simulator's reachable executions depends on
// whether control flow is matching-dependent (see Exactness): when the
// skeleton is matching-independent the enumeration covers every real
// execution, so it is always a sound upper bound; it is exact when
// additionally no send is gated behind a receive, wait, or collective
// (then every enumerated matching is realizable by some arrival order).

// Exactness qualifies how a matching count relates to the set of
// executions the simulator can actually realize.
type Exactness int

// Exactness levels.
const (
	// Exact: the count equals the number of distinct matchings the
	// simulator can realize.
	Exact Exactness = iota
	// UpperBound: every realizable matching is counted, but some counted
	// matchings may be unrealizable because sends are ordered behind
	// receives, waits, or collectives.
	UpperBound
	// Canonical: control flow is matching-dependent (the low- and
	// high-policy elaborations issued different op skeletons), so the
	// count describes only the canonical (low-policy) elaboration.
	Canonical
)

func (e Exactness) String() string {
	switch e {
	case Exact:
		return "exact"
	case UpperBound:
		return "upper-bound"
	default:
		return "canonical"
	}
}

// SlotRace describes one wildcard receive slot with its exact candidate
// sender set: the sources whose message can match the slot in at least
// one valid matching.
type SlotRace struct {
	// Rank is the receiving rank; Slot its index in matching order; Op
	// the receive op's Seq.
	Rank, Slot, Op int
	// Caller is the pattern function that posted the receive.
	Caller string
	// Candidates is the sorted set of feasible source ranks.
	Candidates []int
	// Partial marks candidate sets computed under a saturated
	// enumeration: the set is a subset of the true candidates.
	Partial bool
}

// Count is the matching count of one elaboration.
type Count struct {
	// Matchings is the number of distinct valid matchings; when
	// Saturated it is a floor (the true value is at least this).
	Matchings uint64
	// Saturated reports uint64 overflow or a state-budget cut-off.
	Saturated bool
	// Races lists every receive slot with more than one candidate
	// sender, in (rank, slot) order.
	Races []SlotRace
}

// dfsStateCap bounds the memo table per destination; beyond it the
// enumeration saturates rather than running away.
const dfsStateCap = 1 << 20

// CountMatchings counts the distinct matchings of a clean elaboration
// and derives the exact candidate-sender set of every receive slot.
func CountMatchings(res *Result) Count {
	total := uint64(1)
	saturated := false
	var races []SlotRace
	for d := 0; d < res.Procs; d++ {
		slots := res.Slots[d]
		if len(slots) == 0 {
			continue
		}
		// Channel view of the destination's inbox: per-source message
		// lists already in channel-sequence order (Msgs is in global post
		// order and ChanSeq increases per channel).
		chans := make([][]*MsgRec, res.Procs)
		nmsgs := 0
		for _, m := range res.Msgs {
			if m.Dst == d {
				chans[m.Src] = append(chans[m.Src], m)
				nmsgs++
			}
		}
		if nmsgs != len(slots) {
			// Unclean elaboration (unmatched traffic); the match analyzer
			// reports it — counting would be meaningless here.
			continue
		}
		c, sat, destRaces := countDest(d, slots, chans)
		saturated = saturated || sat
		races = append(races, destRaces...)
		var mulSat bool
		total, mulSat = satMul(total, c)
		saturated = saturated || mulSat
	}
	sort.Slice(races, func(i, j int) bool {
		if races[i].Rank != races[j].Rank {
			return races[i].Rank < races[j].Rank
		}
		return races[i].Slot < races[j].Slot
	})
	return Count{Matchings: total, Saturated: saturated, Races: races}
}

// slotAccepts reports whether a slot's filters admit a message.
func slotAccepts(s *Slot, m *MsgRec) bool {
	if s.SrcFilter != sim.AnySource && s.SrcFilter != m.Src {
		return false
	}
	if s.TagFilter != sim.AnyTag && s.TagFilter != m.Tag {
		return false
	}
	return true
}

// countDest counts matchings for one destination and computes per-slot
// candidate sets.
func countDest(dst int, slots []Slot, chans [][]*MsgRec) (uint64, bool, []SlotRace) {
	// Compact the channel list to the sources that actually sent.
	var srcs []int
	for s, ms := range chans {
		if len(ms) > 0 {
			srcs = append(srcs, s)
		}
	}
	allCompatible := true
	for i := range slots {
		for _, s := range srcs {
			for _, m := range chans[s] {
				if !slotAccepts(&slots[i], m) {
					allCompatible = false
				}
			}
		}
	}
	var (
		count       uint64
		sat         bool
		cands       [][]bool // [slot][channel index] feasibility
		candPartial bool
	)
	if allCompatible {
		// Count may saturate, but the closed-form candidate sets stay
		// exact.
		count, sat = multinomial(srcs, chans)
		cands = closedFormCandidates(len(slots), srcs, chans)
	} else {
		count, sat, cands = countDestDFS(slots, srcs, chans)
		candPartial = sat
	}
	var races []SlotRace
	for i := range slots {
		var cs []int
		for ci, ok := range cands[i] {
			if ok {
				cs = append(cs, srcs[ci])
			}
		}
		if len(cs) > 1 {
			races = append(races, SlotRace{
				Rank:       dst,
				Slot:       i,
				Op:         slots[i].Op,
				Caller:     slots[i].Caller,
				Candidates: cs,
				Partial:    candPartial,
			})
		}
	}
	return count, sat, races
}

// multinomial computes (Σn)! / Πn! — the interleaving count when every
// slot accepts every message — with saturating arithmetic, as a product
// of binomial coefficients.
func multinomial(srcs []int, chans [][]*MsgRec) (uint64, bool) {
	remaining := 0
	for _, s := range srcs {
		remaining += len(chans[s])
	}
	result := uint64(1)
	saturated := false
	for _, s := range srcs {
		b, bsat := binomial(remaining, len(chans[s]))
		saturated = saturated || bsat
		var msat bool
		result, msat = satMul(result, b)
		saturated = saturated || msat
		remaining -= len(chans[s])
	}
	return result, saturated
}

// binomial computes C(n,k) with saturation. Prefix products are
// themselves binomials, so the running division is exact.
func binomial(n, k int) (uint64, bool) {
	if k < 0 || k > n {
		return 0, false
	}
	if k > n-k {
		k = n - k
	}
	result := uint64(1)
	for i := 1; i <= k; i++ {
		f := uint64(n - k + i)
		if result > math.MaxUint64/f {
			return math.MaxUint64, true
		}
		result = result * f / uint64(i)
	}
	return result, false
}

// closedFormCandidates derives candidate sets in the all-compatible
// case: slot j can consume some message of channel c iff a position
// k ∈ [0, n_c) exists with k ≤ j and j−k ≤ (total − n_c).
func closedFormCandidates(nslots int, srcs []int, chans [][]*MsgRec) [][]bool {
	total := 0
	for _, s := range srcs {
		total += len(chans[s])
	}
	cands := make([][]bool, nslots)
	for j := 0; j < nslots; j++ {
		cands[j] = make([]bool, len(srcs))
		for ci, s := range srcs {
			nc := len(chans[s])
			lo := j - (total - nc)
			if lo < 0 {
				lo = 0
			}
			hi := j
			if nc-1 < hi {
				hi = nc - 1
			}
			cands[j][ci] = lo <= hi
		}
	}
	return cands
}

// countDestDFS enumerates matchings slot by slot: at slot depth the
// choices are the unconsumed heads of each channel that pass the slot's
// filter. States are memoized on the per-channel consumed counts (the
// head position fully determines a channel under non-overtaking).
// Candidate sets are recorded on the first expansion of each state —
// every state lives at exactly one depth (= Σ consumed), so memo hits
// never hide a (slot, channel) transition that was not already
// recorded.
func countDestDFS(slots []Slot, srcs []int, chans [][]*MsgRec) (uint64, bool, [][]bool) {
	nch := len(srcs)
	memo := make(map[string]uint64, 64)
	cands := make([][]bool, len(slots))
	for i := range cands {
		cands[i] = make([]bool, nch)
	}
	saturated := false
	consumed := make([]uint16, nch)
	key := make([]byte, 2*nch)
	encode := func() string {
		for i, c := range consumed {
			binary.LittleEndian.PutUint16(key[2*i:], c)
		}
		return string(key)
	}
	var dfs func(depth int) uint64
	dfs = func(depth int) uint64 {
		if depth == len(slots) {
			return 1
		}
		k := encode()
		if v, ok := memo[k]; ok {
			return v
		}
		if len(memo) >= dfsStateCap {
			saturated = true
			return 0
		}
		var total uint64
		for ci, s := range srcs {
			if int(consumed[ci]) >= len(chans[s]) {
				continue
			}
			head := chans[s][consumed[ci]]
			if !slotAccepts(&slots[depth], head) {
				continue
			}
			consumed[ci]++
			sub := dfs(depth + 1)
			consumed[ci]--
			if sub > 0 {
				cands[depth][ci] = true
			}
			var addSat bool
			total, addSat = satAdd(total, sub)
			saturated = saturated || addSat
		}
		memo[k] = total
		return total
	}
	count := dfs(0)
	return count, saturated, cands
}

// satMul multiplies with saturation at MaxUint64.
func satMul(a, b uint64) (uint64, bool) {
	if a == 0 || b == 0 {
		return 0, false
	}
	if a > math.MaxUint64/b {
		return math.MaxUint64, true
	}
	return a * b, false
}

// satAdd adds with saturation at MaxUint64.
func satAdd(a, b uint64) (uint64, bool) {
	if a > math.MaxUint64-b {
		return math.MaxUint64, true
	}
	return a + b, false
}

// ClassifyExactness derives the count's relation to the simulator's
// reachable executions from the dual-policy elaborations: Canonical if
// the skeletons diverged, Exact if additionally no rank orders a send
// after a receive, wait, or collective, UpperBound otherwise.
func ClassifyExactness(low, high *Result) Exactness {
	if !skeletonsEqual(low, high) {
		return Canonical
	}
	for r := range low.Ranks {
		gate := false
		for _, o := range low.Ranks[r].Ops {
			switch o.Kind {
			case OpRecv, OpIrecv, OpWait, OpWaitany, OpCollective:
				gate = true
			case OpSend, OpIsend:
				if gate {
					return UpperBound
				}
			}
		}
	}
	return Exact
}
