// Package verify statically checks the communication structure of
// pattern programs without running the discrete-event scheduler. A
// recording implementation of sim.FullProc elaborates each rank's
// program symbolically; analyzers then resolve deterministic matches,
// search the wait-for graph for deadlock cycles, derive exact
// candidate-sender sets for wildcard receives (with an exact count or
// proven bound on distinct matchings at small P), and machine-check the
// registry's Deterministic/EventsPerRankHint metadata. Findings share
// internal/lint's report conventions: only unsuppressed error-grade
// findings gate, and sanctioned exceptions print their reasons.
package verify

import (
	"fmt"
	"sort"
	"strings"

	"github.com/anacin-go/anacinx/internal/patterns"
	"github.com/anacin-go/anacinx/internal/sim"
)

// Config is one swept pattern configuration.
type Config struct {
	Procs, Iterations int
}

// Options tunes a verification run. The zero value uses the default
// small-P sweep, an eager-send network (the simulator default), the
// default op budget, and the built-in exception table.
type Options struct {
	// Procs overrides the swept process counts (values below the
	// pattern's MinProcs are raised to it, then deduplicated).
	Procs []int
	// Iters overrides the swept iteration counts.
	Iters []int
	// RendezvousThreshold mirrors sim.NetworkParams.RendezvousThreshold:
	// 0 means every send is eager; >0 makes sends of at least that many
	// bytes rendezvous (blocking until matched).
	RendezvousThreshold int
	// MaxOps caps elaborated ops per configuration (0 = DefaultMaxOps).
	MaxOps int
	// Exceptions is the sanctioned-exception table (nil = built-in).
	Exceptions []Exception
}

// defaultProcs/defaultIters are the default sweep: small process counts
// where exhaustive reasoning is cheap, with one multi-iteration point
// to exercise per-channel sequencing.
var (
	defaultProcs = []int{2, 3, 4, 8}
	defaultIters = []int{1, 3}
)

// Sweep returns the configurations a pattern is verified at under the
// options.
func (o *Options) Sweep(minProcs int) []Config {
	procs := o.Procs
	if len(procs) == 0 {
		procs = defaultProcs
	}
	iters := o.Iters
	if len(iters) == 0 {
		iters = defaultIters
	}
	var ps []int
	for _, p := range procs {
		if p < minProcs {
			p = minProcs
		}
		dup := false
		for _, q := range ps {
			if q == p {
				dup = true
				break
			}
		}
		if !dup {
			ps = append(ps, p)
		}
	}
	sort.Ints(ps)
	var out []Config
	for _, p := range ps {
		for _, it := range iters {
			out = append(out, Config{Procs: p, Iterations: it})
		}
	}
	return out
}

func (o *Options) maxOps() int {
	if o.MaxOps > 0 {
		return o.MaxOps
	}
	return DefaultMaxOps
}

func (o *Options) exceptions() []Exception {
	if o.Exceptions != nil {
		return o.Exceptions
	}
	return sanctionedExceptions
}

// Elaborate runs one rank program symbolically at the given process
// count and returns its static op model. It never invokes the
// scheduler; virtual time does not advance.
func Elaborate(prog sim.ProcProgram, procs int, policy Policy, rendezvousThreshold, maxOps int) *Result {
	if maxOps <= 0 {
		maxOps = DefaultMaxOps
	}
	return elaborate(prog, procs, policy, rendezvousThreshold, maxOps)
}

// ConfigSummary is the per-configuration verification digest shown by
// `anacin verify -v`.
type ConfigSummary struct {
	Pattern            string `json:"pattern"`
	Procs              int    `json:"procs"`
	Iterations         int    `json:"iterations"`
	Ops                int    `json:"ops"`
	TraceEvents        int    `json:"trace_events"`
	Matchings          uint64 `json:"matchings"`
	MatchingsSaturated bool   `json:"matchings_saturated,omitempty"`
	Exactness          string `json:"exactness"`
	RaceSlots          int    `json:"race_slots"`
	NDCallSites        int    `json:"nd_call_sites"`
}

// MatchingsLabel renders the count with its exactness qualifier.
func (c ConfigSummary) MatchingsLabel() string {
	n := fmt.Sprintf("%d", c.Matchings)
	if c.MatchingsSaturated {
		// The enumeration saturated; only the floor is known, whatever
		// the exactness tier.
		return ">= " + n
	}
	switch c.Exactness {
	case Exact.String():
		return n
	case UpperBound.String():
		// An upper bound of 1 is exact: the canonical matching itself is
		// realizable.
		if c.Matchings <= 1 {
			return n
		}
		return "<= " + n
	default:
		return n + " (canonical elaboration; control flow is matching-dependent)"
	}
}

// VerifyPattern verifies one pattern across the sweep. It returns the
// findings (sorted, exceptions applied) and one summary per clean
// configuration.
func VerifyPattern(pat patterns.Pattern, opts Options) ([]Finding, []ConfigSummary) {
	configs := opts.Sweep(pat.MinProcs())
	var (
		findings  []Finding
		summaries []ConfigSummary
		raced     = make([]bool, len(configs))
	)
	for ci, cfg := range configs {
		p := patterns.DefaultParams(cfg.Procs)
		p.Iterations = cfg.Iterations
		prog, err := pat.Program(p)
		if err != nil {
			findings = append(findings, Finding{
				Check: "elaboration", Severity: SevError, Pattern: pat.Name(),
				Procs: cfg.Procs, Iterations: cfg.Iterations, Rank: -1,
				Message: "Program construction failed: " + err.Error(),
			})
			continue
		}
		low := elaborate(prog, cfg.Procs, PolicyLow, opts.RendezvousThreshold, opts.maxOps())
		findings = append(findings, Analyze(pat.Name(), cfg.Procs, cfg.Iterations, low)...)
		if !low.Clean() {
			continue
		}
		high := elaborate(prog, cfg.Procs, PolicyHigh, opts.RendezvousThreshold, opts.maxOps())
		exact := ClassifyExactness(low, high)
		count := CountMatchings(low)
		raced[ci] = len(count.Races) > 0
		if f := checkHint(pat, p, low); f != nil {
			findings = append(findings, *f)
		}
		summary := ConfigSummary{
			Pattern:            pat.Name(),
			Procs:              cfg.Procs,
			Iterations:         cfg.Iterations,
			Ops:                low.OpCount,
			TraceEvents:        low.TotalTraced(),
			Matchings:          count.Matchings,
			MatchingsSaturated: count.Saturated,
			Exactness:          exact.String(),
			RaceSlots:          len(count.Races),
			NDCallSites:        ndCallSites(count.Races),
		}
		summaries = append(summaries, summary)
		if len(count.Races) > 0 {
			findings = append(findings, ndStructureFinding(pat.Name(), cfg, count, summary))
		}
	}
	findings = append(findings, checkDeterministic(pat, configs, raced)...)
	findings = applyExceptions(findings, opts.exceptions())
	sortFindings(findings)
	return findings, summaries
}

// ndCallSites counts the distinct pattern call sites behind racy
// receive slots — the paper's root-source view of where
// non-determinism enters.
func ndCallSites(races []SlotRace) int {
	var sites []string
	for _, r := range races {
		dup := false
		for _, s := range sites {
			if s == r.Caller {
				dup = true
				break
			}
		}
		if !dup {
			sites = append(sites, r.Caller)
		}
	}
	return len(sites)
}

// ndStructureFinding is the informational per-configuration ND-source
// report: every racy wildcard slot with its exact candidate-sender set.
func ndStructureFinding(pattern string, cfg Config, count Count, s ConfigSummary) Finding {
	witness := make([]string, 0, maxPerCheck+1)
	for i, r := range count.Races {
		if i == maxPerCheck {
			witness = append(witness, fmt.Sprintf("... and %d further racy slots", len(count.Races)-maxPerCheck))
			break
		}
		qual := ""
		if r.Partial {
			qual = " (candidate set may be incomplete)"
		}
		witness = append(witness, fmt.Sprintf("rank %d slot %d (op %d) in %s: candidate senders {%s}%s",
			r.Rank, r.Slot, r.Op, r.Caller, joinInts(r.Candidates), qual))
	}
	return Finding{
		Check: "nd-structure", Severity: SevInfo, Pattern: pattern,
		Procs: cfg.Procs, Iterations: cfg.Iterations, Rank: -1,
		Message: fmt.Sprintf("%d receive slots race across %d call sites; distinct matchings: %s",
			s.RaceSlots, s.NDCallSites, s.MatchingsLabel()),
		Witness: witness,
	}
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return strings.Join(parts, ",")
}

// VerifyAll verifies every registered pattern and returns the combined
// findings plus per-configuration summaries, in registry order.
func VerifyAll(opts Options) ([]Finding, []ConfigSummary) {
	var (
		findings  []Finding
		summaries []ConfigSummary
	)
	for _, pat := range patterns.All() {
		f, s := VerifyPattern(pat, opts)
		findings = append(findings, f...)
		summaries = append(summaries, s...)
	}
	return findings, summaries
}
