package verify

import (
	"fmt"
	"io"
	"sort"

	"github.com/anacin-go/anacinx/internal/lint"
)

// Severity grades a finding. Only error-grade findings gate a verify
// run (non-zero exit); warnings and notes are informational.
type Severity string

// Severity levels.
const (
	SevError Severity = "error"
	SevWarn  Severity = "warn"
	SevInfo  Severity = "info"
)

// Finding is one verifier diagnostic, in the same suppression model as
// internal/lint: a sanctioned exception marks the finding Suppressed
// with the exception's reason, and suppressed findings do not gate.
type Finding struct {
	// Check is the analyzer that produced the finding: "deadlock",
	// "unmatched-send", "unmatched-recv", "collective-mismatch",
	// "metadata-hint", "metadata-deterministic", "nd-structure",
	// "unwaited-request", or "elaboration".
	Check string `json:"check"`
	// Severity grades the finding; only "error" gates.
	Severity Severity `json:"severity"`
	// Pattern is the registry name of the pattern under verification.
	Pattern string `json:"pattern"`
	// Procs/Iterations identify the swept configuration.
	Procs      int `json:"procs"`
	Iterations int `json:"iterations"`
	// Rank is the rank the finding anchors to, -1 when whole-pattern.
	Rank int `json:"rank"`
	// Message explains the violation.
	Message string `json:"message"`
	// Witness is the finding's evidence: a minimal wait-for cycle for
	// deadlocks, the unmatched op for match findings.
	Witness []string `json:"witness,omitempty"`
	// Suppressed marks a sanctioned exception; Reason is its
	// justification.
	Suppressed bool   `json:"suppressed"`
	Reason     string `json:"reason,omitempty"`
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s[P=%d,iters=%d]: %s: %s: %s",
		f.Pattern, f.Procs, f.Iterations, f.Severity, f.Check, f.Message)
	for _, w := range f.Witness {
		s += "\n    witness: " + w
	}
	if f.Suppressed {
		s += fmt.Sprintf("\n    (allowed: %s)", f.Reason)
	}
	return s
}

// checkNames is the fixed inventory of verifier checks, for the report
// envelope.
func checkNames() []string {
	return []string{
		"deadlock", "unmatched-send", "unmatched-recv", "collective-mismatch",
		"metadata-hint", "metadata-deterministic", "nd-structure",
		"unwaited-request", "elaboration",
	}
}

// Exception sanctions one (pattern, check) pair with a justification,
// the verifier-level analogue of an //anacin:allow directive. The
// reason is printed with every suppressed finding, so the exception
// table doubles as the inventory of known divergences.
type Exception struct {
	Pattern string
	Check   string
	Reason  string
}

// sanctionedExceptions is the built-in exception table. It is empty:
// every registered pattern currently verifies clean. Entries belong
// here only with a reason a student could act on.
var sanctionedExceptions = []Exception{}

// applyExceptions marks findings covered by the exception table as
// suppressed, attaching the reason.
func applyExceptions(findings []Finding, table []Exception) []Finding {
	for i := range findings {
		for _, ex := range table {
			if findings[i].Pattern == ex.Pattern && findings[i].Check == ex.Check {
				findings[i].Suppressed = true
				findings[i].Reason = ex.Reason
				break
			}
		}
	}
	return findings
}

// Gating counts the findings that fail a verify run: unsuppressed
// errors.
func Gating(findings []Finding) int {
	n := 0
	for _, f := range findings {
		if f.Severity == SevError && !f.Suppressed {
			n++
		}
	}
	return n
}

// sortFindings orders findings for stable output: by pattern, then
// severity (errors first), then check, then configuration.
func sortFindings(findings []Finding) {
	rank := map[Severity]int{SevError: 0, SevWarn: 1, SevInfo: 2}
	sort.SliceStable(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pattern != b.Pattern {
			return a.Pattern < b.Pattern
		}
		if rank[a.Severity] != rank[b.Severity] {
			return rank[a.Severity] < rank[b.Severity]
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		if a.Procs != b.Procs {
			return a.Procs < b.Procs
		}
		return a.Iterations < b.Iterations
	})
}

// WriteText prints findings one per line (with witnesses indented).
// Suppressed findings are printed only when includeSuppressed is set.
func WriteText(w io.Writer, findings []Finding, includeSuppressed bool) error {
	for _, f := range findings {
		if f.Suppressed && !includeSuppressed {
			continue
		}
		if _, err := fmt.Fprintln(w, f.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the machine-readable report in the shared lint
// envelope (docs/linting.md): suppressed findings included, so the
// artifact inventories every sanctioned exception, plus the
// per-configuration summaries (matching counts, exactness tier, race
// structure tallies) under "summaries".
func WriteJSON(w io.Writer, module string, findings []Finding, summaries []ConfigSummary) error {
	if findings == nil {
		findings = []Finding{}
	}
	if summaries == nil {
		summaries = []ConfigSummary{}
	}
	suppressed := 0
	for _, f := range findings {
		if f.Suppressed {
			suppressed++
		}
	}
	return lint.WriteEnvelope(w, lint.Envelope{
		Version:    1,
		Module:     module,
		Checks:     checkNames(),
		Total:      len(findings),
		Suppressed: suppressed,
		Active:     len(findings) - suppressed,
		Findings:   findings,
		Summaries:  summaries,
	})
}
