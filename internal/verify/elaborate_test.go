package verify

import (
	"strings"
	"testing"

	"github.com/anacin-go/anacinx/internal/patterns"
	"github.com/anacin-go/anacinx/internal/sim"
)

// elaboratePattern is the test helper: canonical elaboration of a
// registered pattern at the given configuration.
func elaboratePattern(t *testing.T, name string, procs, iters int, policy Policy) *Result {
	t.Helper()
	pat, err := patterns.ByName(name)
	if err != nil {
		t.Fatalf("ByName(%q): %v", name, err)
	}
	p := patterns.DefaultParams(procs)
	p.Iterations = iters
	prog, err := pat.Program(p)
	if err != nil {
		t.Fatalf("Program: %v", err)
	}
	return Elaborate(prog, procs, policy, 0, 0)
}

func TestElaborateMessageRaceStructure(t *testing.T) {
	res := elaboratePattern(t, "message_race", 4, 2, PolicyLow)
	if !res.Clean() {
		t.Fatalf("message_race elaboration not clean: %+v", res)
	}
	// Each of 3 workers sends 2 messages to rank 0; rank 0 posts 6
	// wildcard receives.
	if got := len(res.Msgs); got != 6 {
		t.Fatalf("messages = %d, want 6", got)
	}
	for _, m := range res.Msgs {
		if m.Dst != 0 {
			t.Fatalf("message to rank %d, want all to rank 0", m.Dst)
		}
		if !m.Consumed {
			t.Fatalf("unconsumed message %+v", m)
		}
	}
	if got := len(res.Slots[0]); got != 6 {
		t.Fatalf("rank 0 slots = %d, want 6", got)
	}
	for _, s := range res.Slots[0] {
		if s.SrcFilter != sim.AnySource {
			t.Fatalf("slot src filter = %d, want AnySource", s.SrcFilter)
		}
		if s.MatchSrc < 1 || s.MatchSrc > 3 {
			t.Fatalf("slot matched src %d, want worker 1..3", s.MatchSrc)
		}
	}
	// Trace accounting: workers record 2 sends each, rank 0 records 6
	// receives, plus the bracket of 2 per rank.
	if got, want := res.TotalTraced(), 6+6+2*4; got != want {
		t.Fatalf("TotalTraced = %d, want %d", got, want)
	}
	// Callers surface the pattern functions, not the verify internals.
	found := false
	for _, o := range res.Ranks[0].Ops {
		if o.Kind == OpRecv && strings.Contains(o.Caller, "drainRaces") {
			found = true
		}
		if strings.Contains(o.Caller, "verify.") {
			t.Fatalf("op caller leaked verify internals: %q", o.Caller)
		}
	}
	if !found {
		t.Fatalf("no Recv op attributed to drainRaces; ops: %+v", res.Ranks[0].Ops)
	}
}

func TestElaboratePolicyChangesWildcardMatches(t *testing.T) {
	low := elaboratePattern(t, "message_race", 3, 1, PolicyLow)
	high := elaboratePattern(t, "message_race", 3, 1, PolicyHigh)
	if !skeletonsEqual(low, high) {
		t.Fatalf("message_race skeletons diverged across policies")
	}
	if low.Slots[0][0].MatchSrc == high.Slots[0][0].MatchSrc {
		t.Fatalf("first wildcard slot matched src %d under both policies; want policy-dependent match",
			low.Slots[0][0].MatchSrc)
	}
}

func TestElaborateAllRegisteredPatternsClean(t *testing.T) {
	for _, pat := range patterns.All() {
		for _, cfg := range (&Options{}).Sweep(pat.MinProcs()) {
			p := patterns.DefaultParams(cfg.Procs)
			p.Iterations = cfg.Iterations
			prog, err := pat.Program(p)
			if err != nil {
				t.Fatalf("%s: Program: %v", pat.Name(), err)
			}
			res := Elaborate(prog, cfg.Procs, PolicyLow, 0, 0)
			if !res.Clean() {
				t.Errorf("%s P=%d iters=%d: elaboration not clean (stalled=%v coll=%q budget=%v)",
					pat.Name(), cfg.Procs, cfg.Iterations, res.Stalled, res.CollMismatch, res.BudgetExceeded)
			}
		}
	}
}

// headToHead is the classic send-free deadlock: every rank Recvs from
// its partner before sending, so nobody ever sends.
func headToHead(r sim.Proc) {
	partner := r.Rank() ^ 1
	r.Recv(partner, 0)
	r.SendSize(partner, 0, 1)
}

func TestDeadlockCycleWitness(t *testing.T) {
	res := Elaborate(headToHead, 2, PolicyLow, 0, 0)
	if !res.Stalled {
		t.Fatalf("head-to-head recv did not stall")
	}
	findings := Analyze("fixture", 2, 1, res)
	var dl *Finding
	for i := range findings {
		if findings[i].Check == "deadlock" {
			dl = &findings[i]
		}
	}
	if dl == nil {
		t.Fatalf("no deadlock finding; got %+v", findings)
	}
	if dl.Severity != SevError {
		t.Fatalf("deadlock severity = %s, want error", dl.Severity)
	}
	if len(dl.Witness) != 2 {
		t.Fatalf("witness cycle length = %d, want 2: %v", len(dl.Witness), dl.Witness)
	}
	for _, w := range dl.Witness {
		if !strings.Contains(w, "Recv") || !strings.Contains(w, "waits on rank") {
			t.Fatalf("witness line %q does not describe a blocked Recv wait edge", w)
		}
	}
}

// lostSend sends a tagged message nobody receives.
func lostSend(r sim.Proc) {
	if r.Rank() == 0 {
		r.SendSize(1, 7, 1)
	}
}

func TestUnmatchedSendWitness(t *testing.T) {
	res := Elaborate(lostSend, 2, PolicyLow, 0, 0)
	if res.Stalled {
		t.Fatalf("eager lost send should not stall")
	}
	if res.Clean() {
		t.Fatalf("unconsumed message should not be clean")
	}
	findings := Analyze("fixture", 2, 1, res)
	var um *Finding
	for i := range findings {
		if findings[i].Check == "unmatched-send" {
			um = &findings[i]
		}
	}
	if um == nil {
		t.Fatalf("no unmatched-send finding; got %+v", findings)
	}
	if um.Rank != 0 {
		t.Fatalf("unmatched-send rank = %d, want 0", um.Rank)
	}
	if len(um.Witness) != 1 || !strings.Contains(um.Witness[0], "tag=7") {
		t.Fatalf("witness %v does not identify the tag-7 send", um.Witness)
	}
}

// starvedRecv receives a message that is never sent.
func starvedRecv(r sim.Proc) {
	if r.Rank() == 1 {
		r.Recv(0, 0)
	}
}

func TestStarvedRecvReportsUnmatchedRecv(t *testing.T) {
	res := Elaborate(starvedRecv, 2, PolicyLow, 0, 0)
	if !res.Stalled {
		t.Fatalf("starved recv did not stall")
	}
	findings := Analyze("fixture", 2, 1, res)
	for _, f := range findings {
		if f.Check == "deadlock" {
			t.Fatalf("starved recv misclassified as deadlock: %+v", f)
		}
	}
	var ur *Finding
	for i := range findings {
		if findings[i].Check == "unmatched-recv" {
			ur = &findings[i]
		}
	}
	if ur == nil || ur.Rank != 1 {
		t.Fatalf("want unmatched-recv at rank 1; got %+v", findings)
	}
}

// rendezvousDeadlock exchanges large sends head-to-head; under a
// rendezvous threshold both block before either can receive.
func rendezvousDeadlock(r sim.Proc) {
	partner := r.Rank() ^ 1
	r.SendSize(partner, 0, 1<<20)
	r.Recv(partner, 0)
}

func TestRendezvousSemanticsGateDeadlock(t *testing.T) {
	// Eager: completes cleanly.
	eager := Elaborate(rendezvousDeadlock, 2, PolicyLow, 0, 0)
	if !eager.Clean() {
		t.Fatalf("eager head-to-head send should complete")
	}
	// Rendezvous at 1 KiB: deadlocks.
	rvz := Elaborate(rendezvousDeadlock, 2, PolicyLow, 1024, 0)
	if !rvz.Stalled {
		t.Fatalf("rendezvous head-to-head send should stall")
	}
	findings := Analyze("fixture", 2, 1, rvz)
	found := false
	for _, f := range findings {
		if f.Check == "deadlock" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no deadlock finding under rendezvous threshold; got %+v", findings)
	}
}

// nonblockingRing posts Irecv before sending — the textbook-safe shape;
// it must elaborate clean including Wait bookkeeping.
func nonblockingRing(r sim.Proc) {
	left := (r.Rank() - 1 + r.Size()) % r.Size()
	right := (r.Rank() + 1) % r.Size()
	fp := r.(sim.FullProc)
	req := fp.Irecv(left, 0)
	fp.Send(right, 0, []byte{byte(r.Rank())})
	m := fp.Wait(req)
	if m.Src != left {
		panic("wrong source")
	}
}

func TestElaborateNonblockingRing(t *testing.T) {
	res := Elaborate(nonblockingRing, 4, PolicyLow, 0, 0)
	if !res.Clean() {
		t.Fatalf("nonblocking ring not clean: stalled=%v ranks=%+v", res.Stalled, res.Ranks)
	}
	// Irecv + Send + Wait are traced (1+1+1) plus the bracket.
	for r := range res.Ranks {
		if got, want := res.Ranks[r].Traced, 5; got != want {
			t.Fatalf("rank %d traced = %d, want %d", r, got, want)
		}
	}
}

// forgottenWait posts an Isend and finishes without waiting on it.
func forgottenWait(r sim.Proc) {
	fp := r.(sim.FullProc)
	if r.Rank() == 0 {
		fp.Isend(1, 0, []byte{1})
		return
	}
	r.Recv(0, 0)
}

func TestForgottenWaitReported(t *testing.T) {
	res := Elaborate(forgottenWait, 2, PolicyLow, 0, 0)
	findings := Analyze("fixture", 2, 1, res)
	var uw *Finding
	for i := range findings {
		if findings[i].Check == "unwaited-request" {
			uw = &findings[i]
		}
	}
	if uw == nil || uw.Rank != 0 || uw.Severity != SevWarn {
		t.Fatalf("want unwaited-request warning at rank 0; got %+v", findings)
	}
}

// collSplit joins different collectives on different ranks.
func collSplit(r sim.Proc) {
	fp := r.(sim.FullProc)
	if r.Rank() == 0 {
		fp.Barrier()
	} else {
		fp.Allreduce([]byte{1}, func(a, b []byte) []byte { return a })
	}
}

func TestCollectiveMismatchDetected(t *testing.T) {
	res := Elaborate(collSplit, 2, PolicyLow, 0, 0)
	if res.CollMismatch == "" {
		t.Fatalf("mismatched collectives not detected")
	}
	findings := Analyze("fixture", 2, 1, res)
	found := false
	for _, f := range findings {
		if f.Check == "collective-mismatch" && f.Severity == SevError {
			found = true
		}
	}
	if !found {
		t.Fatalf("no collective-mismatch finding; got %+v", findings)
	}
}

// spinner burns ops forever; the budget must stop it.
func spinner(r sim.Proc) {
	for {
		r.Compute(1)
	}
}

func TestOpBudgetStopsRunawayPrograms(t *testing.T) {
	res := Elaborate(spinner, 2, PolicyLow, 0, 1000)
	if !res.BudgetExceeded {
		t.Fatalf("runaway program did not trip the op budget")
	}
	findings := Analyze("fixture", 2, 1, res)
	found := false
	for _, f := range findings {
		if f.Check == "elaboration" && f.Severity == SevError {
			found = true
		}
	}
	if !found {
		t.Fatalf("budget blowout produced no elaboration finding: %+v", findings)
	}
}
