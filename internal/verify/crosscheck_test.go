package verify

import (
	"testing"

	"github.com/anacin-go/anacinx/internal/patterns"
	"github.com/anacin-go/anacinx/internal/sim"
	"github.com/anacin-go/anacinx/internal/trace"
)

// Cross-checks of the static model against the real discrete-event
// simulator: the verifier must describe the executions the scheduler
// actually produces, not a private abstraction.

// runPattern executes one configuration through the DES runtime.
func runPattern(t *testing.T, pat patterns.Pattern, p patterns.Params, nd float64, seed int64) *trace.Trace {
	t.Helper()
	prog, err := pat.Program(p)
	if err != nil {
		t.Fatalf("%s: Program: %v", pat.Name(), err)
	}
	cfg := sim.DefaultConfig(p.Procs, seed)
	cfg.NDPercent = nd
	tr, _, err := sim.Run(cfg, trace.Meta{Pattern: pat.Name(), Iterations: p.Iterations}, sim.Adapt(prog))
	if err != nil {
		t.Fatalf("%s: Run: %v", pat.Name(), err)
	}
	return tr
}

// TestStaticCountMatchesExhaustiveSimulation pins the tentpole claim:
// for message_race (exact tier) the static matching count equals the
// number of distinct communication structures (OrderHash, which covers
// kinds/peers/tags/matching and ignores virtual time) an exhaustive
// seed sweep through the real simulator at 100% non-determinism
// reaches.
func TestStaticCountMatchesExhaustiveSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("hundreds of simulator runs; skipped in -short")
	}
	pat, err := patterns.ByName("message_race")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		procs, iters, seeds int
	}{
		{2, 1, 40},
		{2, 2, 40},
		{3, 1, 120},
		{3, 2, 400},
		{4, 1, 400},
	}
	for _, c := range cases {
		p := patterns.DefaultParams(c.procs)
		p.Iterations = c.iters
		prog, err := pat.Program(p)
		if err != nil {
			t.Fatal(err)
		}
		res := Elaborate(prog, c.procs, PolicyLow, 0, 0)
		if !res.Clean() {
			t.Fatalf("P=%d iters=%d: elaboration not clean", c.procs, c.iters)
		}
		count := CountMatchings(res)
		if count.Saturated {
			t.Fatalf("P=%d iters=%d: saturated count", c.procs, c.iters)
		}
		hashes := map[uint64]bool{}
		for seed := int64(1); seed <= int64(c.seeds); seed++ {
			tr := runPattern(t, pat, p, 100, seed)
			hashes[tr.OrderHash()] = true
		}
		if uint64(len(hashes)) != count.Matchings {
			t.Errorf("P=%d iters=%d: static count %d, simulator reached %d distinct structures over %d seeds",
				c.procs, c.iters, count.Matchings, len(hashes), c.seeds)
		}
	}
}

// TestStaticCountBoundsSimulation: for the upper-bound tier the
// simulator must never exceed the static count.
func TestStaticCountBoundsSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("many simulator runs; skipped in -short")
	}
	for _, name := range []string{"mcb", "reduce_pipeline"} {
		pat, err := patterns.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p := patterns.DefaultParams(3)
		p.Iterations = 2
		prog, err := pat.Program(p)
		if err != nil {
			t.Fatal(err)
		}
		res := Elaborate(prog, p.Procs, PolicyLow, 0, 0)
		if !res.Clean() {
			t.Fatalf("%s: elaboration not clean", name)
		}
		count := CountMatchings(res)
		hashes := map[uint64]bool{}
		for seed := int64(1); seed <= 120; seed++ {
			tr := runPattern(t, pat, p, 100, seed)
			hashes[tr.OrderHash()] = true
		}
		if uint64(len(hashes)) > count.Matchings {
			t.Errorf("%s: simulator reached %d distinct structures, static bound is %d",
				name, len(hashes), count.Matchings)
		}
	}
}

// TestStaticTraceAccountingMatchesSimulator: the elaborator's
// per-pattern trace-event totals must equal what the DES runtime
// records, for every registered pattern.
func TestStaticTraceAccountingMatchesSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every pattern through the simulator; skipped in -short")
	}
	for _, pat := range patterns.All() {
		procs := pat.MinProcs()
		if procs < 4 {
			procs = 4
		}
		p := patterns.DefaultParams(procs)
		p.Iterations = 2
		prog, err := pat.Program(p)
		if err != nil {
			t.Fatalf("%s: %v", pat.Name(), err)
		}
		res := Elaborate(prog, procs, PolicyLow, 0, 0)
		if !res.Clean() {
			t.Fatalf("%s: elaboration not clean", pat.Name())
		}
		tr := runPattern(t, pat, p, 0, 1)
		simEvents := 0
		for r := range tr.Events {
			simEvents += len(tr.Events[r])
		}
		if res.TotalTraced() != simEvents {
			t.Errorf("%s: static model predicts %d trace events, simulator recorded %d",
				pat.Name(), res.TotalTraced(), simEvents)
		}
		// Per-rank structure too, not just the total — but only where
		// control flow is matching-independent: under a Canonical-tier
		// pattern (master_worker) the canonical elaboration may hand out
		// work differently than the scheduler's matching order, moving
		// events between ranks while conserving the total.
		high := Elaborate(prog, procs, PolicyHigh, 0, 0)
		if !skeletonsEqual(res, high) {
			continue
		}
		for r := range tr.Events {
			if res.Ranks[r].Traced != len(tr.Events[r]) {
				t.Errorf("%s rank %d: static %d events, simulator %d",
					pat.Name(), r, res.Ranks[r].Traced, len(tr.Events[r]))
			}
		}
	}
}
