package verify

import (
	"fmt"
	"runtime"
	"strings"

	"github.com/anacin-go/anacinx/internal/sim"
	"github.com/anacin-go/anacinx/internal/vtime"
)

// The elaborator runs a pattern's rank programs against a recording
// implementation of sim.FullProc — never the scheduler. All P programs
// execute as coroutines under a single baton: exactly one runs at a
// time, and the engine always resumes the lowest-id runnable rank
// (highest-id under the alternate policy), so elaboration is a pure
// function of the program. Message matching follows the simulator's
// rules — per-channel non-overtaking, Irecv post-order matching,
// wildcard receives — with the policy deciding which candidate a
// wildcard admits when several are pending. Running the same program
// under both policies and comparing op skeletons detects
// matching-dependent control flow (see analyze.go).

// Policy selects the canonical schedule and wildcard-matching order of
// one elaboration.
type Policy int

const (
	// PolicyLow resumes the lowest-id runnable rank and matches
	// wildcards to the lowest (src, chanSeq) candidate.
	PolicyLow Policy = iota
	// PolicyHigh is the adversarial mirror: highest-id rank, highest
	// source candidate. Within one channel FIFO order still holds.
	PolicyHigh
)

// DefaultMaxOps bounds the total ops of one elaboration; exceeding it
// aborts with Result.BudgetExceeded (the livelock guard for Iprobe
// spins and runaway programs).
const DefaultMaxOps = 1 << 20

// iprobeStallLimit aborts a rank that polls Iprobe this many times
// without any global progress in between.
const iprobeStallLimit = 10_000

type procState uint8

const (
	stateReady procState = iota
	stateRunning
	stateBlocked
	stateDone
)

type blockKind uint8

const (
	blockNone blockKind = iota
	blockRecv
	blockProbe
	blockReq
	blockAny
	blockRendezvous
	blockColl
)

// emsg is a user message in flight or pending in a mailbox.
type emsg struct {
	rec     *MsgRec
	data    []byte
	rendez  bool
	sender  *eproc    // woken on consumption of a rendezvous message
	sendReq *reqState // the Isend request the message completes, if any
}

// reqState backs one opaque *sim.Request token handed to the program.
type reqState struct {
	isRecv   bool
	src, tag int // Irecv filter
	done     bool
	waited   bool
	msg      *emsg // matched message for Irecv
	slot     int   // index into the owner's slot list (Irecv only)
	sendMsg  *emsg // posted message for rendezvous Isend
}

// collRound is one engine-wide collective instance: the k-th collective
// call of every rank joins round k.
type collRound struct {
	name    string
	root    int
	arrived []bool
	count   int
	data    [][]byte
	parts   [][][]byte
	op      sim.ReduceOp
	done    bool
	out     [][]byte
	outDeck [][][]byte // per-rank [][]byte results (gather/allgather/alltoall)
}

// abortUnwind is the sentinel panic used to unwind rank goroutines when
// the engine aborts elaboration.
type abortUnwind struct{}

type engine struct {
	n      int
	policy Policy
	rvt    int // rendezvous threshold; 0 disables, as in sim.NetModel
	maxOps int

	procs  []*eproc
	yield  chan struct{}
	rounds []*collRound
	msgs   []*MsgRec
	ops    int
	// progress counts state-changing operations; Iprobe stall detection
	// compares it across polls.
	progress int

	abort          bool
	budgetExceeded bool
	collMismatch   string
	stalled        bool
	// stallWaits/stallDescs snapshot the blocked ranks' wait-for edges
	// and op descriptions at the moment of a stall, before unwinding
	// tears the state down.
	stallWaits [][]int
	stallDescs []string

	// callerCache memoizes pattern-caller resolution per raw PC stack.
	callerCache map[[8]uintptr]string
}

type eproc struct {
	e  *engine
	id int

	resume    chan struct{}
	state     procState
	abortFlag bool

	// Block metadata, valid while state == stateBlocked.
	bkind     blockKind
	bsrc, btg int
	breqs     []*reqState
	bmsg      *emsg // rendezvous send awaiting consumption
	bround    *collRound
	bdesc     string

	// Wake payload set by the proc that unblocked this one.
	wakeMsg *emsg
	wakeReq *reqState

	mailbox []*emsg
	posted  []*reqState
	reqs    map[*sim.Request]*reqState
	allReqs []*reqState
	chanSeq []int
	collSeq int

	ops         []Op
	slots       []Slot
	traced      int
	panicMsg    string
	finished    bool
	softYielded bool
	iprobeStall int
	iprobeMark  int
}

// elaborate runs prog on n ranks under the given policy and returns the
// static model.
func elaborate(prog sim.ProcProgram, n int, policy Policy, rendezvousThreshold, maxOps int) *Result {
	if maxOps <= 0 {
		maxOps = DefaultMaxOps
	}
	e := &engine{
		n:           n,
		policy:      policy,
		rvt:         rendezvousThreshold,
		maxOps:      maxOps,
		yield:       make(chan struct{}),
		callerCache: make(map[[8]uintptr]string),
	}
	e.procs = make([]*eproc, n)
	for i := 0; i < n; i++ {
		e.procs[i] = &eproc{
			e:       e,
			id:      i,
			resume:  make(chan struct{}),
			state:   stateReady,
			reqs:    make(map[*sim.Request]*reqState),
			chanSeq: make([]int, n),
		}
	}
	for _, p := range e.procs {
		go p.run(prog)
	}
	e.loop()
	return e.result()
}

// run is one rank's goroutine body: wait for the baton, execute the
// program, and always hand the baton back — even on panic.
func (p *eproc) run(prog sim.ProcProgram) {
	defer func() {
		if r := recover(); r != nil {
			if _, unwind := r.(abortUnwind); !unwind {
				p.panicMsg = fmt.Sprint(r)
			}
		}
		p.state = stateDone
		p.e.yield <- struct{}{}
	}()
	<-p.resume
	if p.abortFlag {
		panic(abortUnwind{})
	}
	p.state = stateRunning
	prog(p)
	p.finished = true
}

// loop drives the baton until every rank is done or no rank can run.
func (e *engine) loop() {
	for {
		next := e.pickRunnable()
		if next == nil {
			if e.allDone() {
				return
			}
			// No runnable rank with ranks outstanding: either the
			// elaboration stalled (deadlock / unmatched receive) or an
			// abort is already in progress.
			if !e.abort {
				e.stalled = true
				e.captureStall()
				e.abort = true
			}
			if e.unwindOne() {
				continue
			}
			return
		}
		next.state = stateRunning
		next.resume <- struct{}{}
		<-e.yield
	}
}

// pickRunnable returns the ready rank the policy prefers, or nil. Ranks
// that soft-yielded (failed Iprobe polls) are deprioritized so other
// ready ranks get the baton first; one is returned only when nothing
// else can run.
func (e *engine) pickRunnable() *eproc {
	if e.abort {
		return nil
	}
	var fallback *eproc
	for i := 0; i < e.n; i++ {
		idx := i
		if e.policy == PolicyHigh {
			idx = e.n - 1 - i
		}
		p := e.procs[idx]
		if p.state != stateReady {
			continue
		}
		if p.softYielded {
			if fallback == nil {
				fallback = p
			}
			continue
		}
		return p
	}
	if fallback != nil {
		fallback.softYielded = false
		return fallback
	}
	return nil
}

// captureStall snapshots every blocked rank's wait-for edges and op
// description before the unwind destroys them.
func (e *engine) captureStall() {
	e.stallWaits = make([][]int, e.n)
	e.stallDescs = make([]string, e.n)
	for i, p := range e.procs {
		if p.state == stateBlocked {
			e.stallWaits[i] = p.waitTargets()
			e.stallDescs[i] = p.bdesc
		}
	}
}

// unwindOne resumes one parked goroutine so it can observe the abort
// flag and exit; reports whether one was found.
func (e *engine) unwindOne() bool {
	for _, p := range e.procs {
		if p.state == stateReady || p.state == stateBlocked {
			p.abortFlag = true
			p.state = stateRunning
			p.resume <- struct{}{}
			<-e.yield
			return true
		}
	}
	return false
}

func (e *engine) allDone() bool {
	for _, p := range e.procs {
		if p.state != stateDone {
			return false
		}
	}
	return true
}

// result assembles the Result from the engine's final state.
func (e *engine) result() *Result {
	res := &Result{
		Procs:          e.n,
		Ranks:          make([]RankResult, e.n),
		Msgs:           e.msgs,
		Slots:          make([][]Slot, e.n),
		Stalled:        e.stalled,
		CollMismatch:   e.collMismatch,
		BudgetExceeded: e.budgetExceeded,
		OpCount:        e.ops,
		WaitsOn:        e.stallWaits,
	}
	for i, p := range e.procs {
		rr := RankResult{
			Ops:      p.ops,
			Traced:   p.traced + 2, // Init/Finalize bracket
			Done:     p.finished && p.panicMsg == "",
			PanicMsg: p.panicMsg,
		}
		if e.stallDescs != nil {
			rr.BlockDesc = e.stallDescs[i]
		}
		if rr.Done {
			for _, req := range p.posted {
				if !req.done {
					rr.PendingRecvs = append(rr.PendingRecvs,
						p.ops[p.slots[req.slot].Op].describe(p.id))
				}
			}
			for _, req := range p.allReqs {
				if !req.waited {
					rr.UnwaitedReqs = append(rr.UnwaitedReqs, describeReq(req))
				}
			}
		}
		res.Ranks[i] = rr
		res.Slots[i] = p.slots
	}
	return res
}

// waitTargets lists the ranks whose progress this blocked rank needs.
func (p *eproc) waitTargets() []int {
	anyNotDone := func() []int {
		var out []int
		for _, q := range p.e.procs {
			if q != p && q.state != stateDone {
				out = append(out, q.id)
			}
		}
		return out
	}
	switch p.bkind {
	case blockRecv, blockProbe:
		if p.bsrc == sim.AnySource {
			return anyNotDone()
		}
		return []int{p.bsrc}
	case blockReq:
		req := p.breqs[0]
		if req.isRecv {
			if req.src == sim.AnySource {
				return anyNotDone()
			}
			return []int{req.src}
		}
		return []int{req.sendMsg.rec.Dst}
	case blockAny:
		var out []int
		seen := make([]bool, p.e.n)
		add := func(r int) {
			if r >= 0 && r < p.e.n && !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
		for _, req := range p.breqs {
			if req.isRecv {
				if req.src == sim.AnySource {
					return anyNotDone()
				}
				add(req.src)
			} else {
				add(req.sendMsg.rec.Dst)
			}
		}
		return out
	case blockRendezvous:
		return []int{p.bmsg.rec.Dst}
	case blockColl:
		var out []int
		for i, arrived := range p.bround.arrived {
			if !arrived {
				out = append(out, i)
			}
		}
		return out
	}
	return nil
}

// --- the baton ---

// block parks the rank until another proc (or the engine) wakes it.
func (p *eproc) block(kind blockKind, desc string) {
	p.bkind = kind
	p.bdesc = desc
	p.state = stateBlocked
	p.e.yield <- struct{}{}
	<-p.resume
	if p.abortFlag {
		panic(abortUnwind{})
	}
	p.state = stateRunning
	p.bkind = blockNone
	p.breqs = nil
	p.bmsg = nil
	p.bround = nil
}

// softYield hands the baton back while staying runnable (Iprobe polls).
func (p *eproc) softYield() {
	p.state = stateReady
	p.softYielded = true
	p.e.yield <- struct{}{}
	<-p.resume
	if p.abortFlag {
		panic(abortUnwind{})
	}
	p.state = stateRunning
}

// charge counts one op against the elaboration budget.
func (p *eproc) charge() {
	p.e.ops++
	if p.e.ops > p.e.maxOps {
		p.e.budgetExceeded = true
		p.e.abort = true
		panic(abortUnwind{})
	}
}

// op appends one model op for this rank and returns its index.
func (p *eproc) op(o Op) int {
	o.Seq = len(p.ops)
	o.Caller = p.patternCaller()
	o.MatchSrc, o.MatchSeq = -1, -1
	p.ops = append(p.ops, o)
	p.traced += o.Events
	return o.Seq
}

// patternCaller names the nearest caller outside this package — the
// pattern function that issued the op. Resolution is memoized on the
// raw PC stack: pattern loops issue ops from a handful of sites, so the
// symbolization cost is paid once per site, not once per op.
func (p *eproc) patternCaller() string {
	var pcs [8]uintptr
	n := runtime.Callers(3, pcs[:])
	var key [8]uintptr
	copy(key[:], pcs[:n])
	if name, ok := p.e.callerCache[key]; ok {
		return name
	}
	name := "?"
	frames := runtime.CallersFrames(pcs[:n])
	for {
		frame, more := frames.Next()
		if frame.Function != "" && !strings.Contains(frame.Function, "internal/verify") {
			name = shortFunc(frame.Function)
			break
		}
		if !more {
			break
		}
	}
	p.e.callerCache[key] = name
	return name
}

// shortFunc trims a fully qualified function name to its last two path
// segments ("patterns.(*MessageRace).drainRaces").
func shortFunc(fn string) string {
	if i := strings.LastIndex(fn, "/"); i >= 0 {
		fn = fn[i+1:]
	}
	return fn
}

// --- sim.Proc surface ---

// Rank implements sim.Proc.
func (p *eproc) Rank() int { return p.id }

// Size implements sim.Proc.
func (p *eproc) Size() int { return p.e.n }

// Compute implements sim.Proc. It shapes the skeleton but records no
// trace event and never blocks.
func (p *eproc) Compute(d vtime.Duration) {
	p.charge()
	p.op(Op{Kind: OpCompute})
}

// Send implements sim.Proc.
func (p *eproc) Send(dst, tag int, data []byte) {
	p.sendCommon(dst, tag, len(data), data, OpSend, nil)
}

// SendSize implements sim.Proc.
func (p *eproc) SendSize(dst, tag, size int) {
	if size < 0 {
		panic(fmt.Sprintf("verify: negative message size %d", size))
	}
	p.sendCommon(dst, tag, size, nil, OpSend, nil)
}

// Recv implements sim.Proc.
func (p *eproc) Recv(src, tag int) sim.Message {
	p.charge()
	p.checkRecvArgs(src, tag)
	seq := p.op(Op{Kind: OpRecv, Peer: src, Tag: tag, Events: 1})
	slot := len(p.slots)
	p.slots = append(p.slots, Slot{
		Rank: p.id, Op: seq, SrcFilter: src, TagFilter: tag,
		Caller: p.ops[seq].Caller, MatchSrc: -1, MatchSeq: -1,
	})
	m := p.takeMatching(src, tag)
	if m == nil {
		p.bsrc, p.btg = src, tag
		p.block(blockRecv, p.ops[seq].describe(p.id))
		m = p.wakeMsg
		p.wakeMsg = nil
	}
	p.noteMatch(seq, slot, m)
	return sim.Message{Src: m.rec.Src, Tag: m.rec.Tag, Size: m.rec.Size, Data: m.data}
}

// checkRecvArgs mirrors the simulator's receive argument validation.
func (p *eproc) checkRecvArgs(src, tag int) {
	if src != sim.AnySource && (src < 0 || src >= p.e.n) {
		panic(fmt.Sprintf("verify: rank %d received from invalid src %d", p.id, src))
	}
	if tag < 0 && tag != sim.AnyTag {
		panic(fmt.Sprintf("verify: rank %d used reserved negative tag %d", p.id, tag))
	}
}

// noteMatch records the canonical match on both the op and its slot.
func (p *eproc) noteMatch(opSeq, slot int, m *emsg) {
	p.ops[opSeq].MatchSrc = m.rec.Src
	p.ops[opSeq].MatchSeq = m.rec.ChanSeq
	p.slots[slot].MatchSrc = m.rec.Src
	p.slots[slot].MatchSeq = m.rec.ChanSeq
}

// sendCommon posts one user message, blocking under the rendezvous
// protocol until it is consumed.
func (p *eproc) sendCommon(dst, tag, size int, data []byte, kind OpKind, req *reqState) int {
	p.charge()
	p.checkPeer(dst)
	if tag < 0 {
		panic(fmt.Sprintf("verify: rank %d used reserved negative tag %d", p.id, tag))
	}
	seq := p.op(Op{Kind: kind, Peer: dst, Tag: tag, Size: size, Events: 1})
	rec := &MsgRec{
		Src: p.id, Dst: dst, Tag: tag, Size: size,
		ChanSeq: p.chanSeq[dst], SrcOp: seq, Caller: p.ops[seq].Caller,
	}
	p.chanSeq[dst]++
	p.e.msgs = append(p.e.msgs, rec)
	m := &emsg{rec: rec, sender: p}
	if data != nil {
		m.data = append([]byte(nil), data...)
	}
	if p.e.rvt > 0 && size >= p.e.rvt {
		m.rendez = true
	}
	if req != nil {
		req.sendMsg = m
		m.sendReq = req
		if !m.rendez {
			req.done = true
		}
	}
	p.e.progress++
	p.deliver(m)
	if m.rendez && req == nil && !m.rec.Consumed {
		p.bmsg = m
		p.block(blockRendezvous, p.ops[seq].describe(p.id))
	}
	return seq
}

func (p *eproc) checkPeer(dst int) {
	if dst < 0 || dst >= p.e.n {
		panic(fmt.Sprintf("verify: rank %d used peer %d, valid range [0,%d)", p.id, dst, p.e.n))
	}
	if dst == p.id {
		panic(fmt.Sprintf("verify: rank %d sent to itself; self-messages are not modelled", p.id))
	}
}

// deliver routes a freshly posted message at its destination: earliest
// posted matching receive wins (posted Irecvs in post order, then a
// blocked Recv), mirroring the simulator; otherwise it queues in the
// mailbox.
func (p *eproc) deliver(m *emsg) {
	dst := p.e.procs[m.rec.Dst]
	for i, req := range dst.posted {
		if !req.done && filterMatch(req.src, req.tag, m.rec) {
			req.done = true
			req.msg = m
			m.rec.Consumed = true
			dst.slots[req.slot].MatchSrc = m.rec.Src
			dst.slots[req.slot].MatchSeq = m.rec.ChanSeq
			dst.posted = append(dst.posted[:i], dst.posted[i+1:]...)
			p.completeRendezvous(m)
			dst.wakeOnRequest(req)
			return
		}
	}
	if dst.state == stateBlocked {
		switch dst.bkind {
		case blockRecv:
			if filterMatch(dst.bsrc, dst.btg, m.rec) {
				m.rec.Consumed = true
				dst.wakeMsg = m
				dst.state = stateReady
				p.completeRendezvous(m)
				return
			}
		case blockProbe:
			if filterMatch(dst.bsrc, dst.btg, m.rec) {
				dst.wakeMsg = m
				dst.state = stateReady
			}
		case blockReq:
			req := dst.breqs[0]
			if req.isRecv && !req.done && filterMatch(req.src, req.tag, m.rec) {
				// A blocked Wait on an Irecv that was still in the posted
				// list is handled above; reaching here means the request
				// was consumed already, so nothing to do.
				break
			}
		}
	}
	dst.mailbox = append(dst.mailbox, m)
}

// completeRendezvous wakes a sender parked on (or a request tied to)
// the consumed rendezvous message.
func (p *eproc) completeRendezvous(m *emsg) {
	if !m.rendez {
		return
	}
	s := m.sender
	if s.state == stateBlocked && s.bkind == blockRendezvous && s.bmsg == m {
		s.state = stateReady
		return
	}
	// Isend: mark the request complete and wake a parked Wait/Waitany.
	if req := m.sendReq; req != nil && !req.done {
		req.done = true
		s.wakeOnRequest(req)
	}
}

// wakeOnRequest readies the rank if it is parked waiting on req.
func (p *eproc) wakeOnRequest(req *reqState) {
	if p.state != stateBlocked {
		return
	}
	switch p.bkind {
	case blockReq:
		if p.breqs[0] == req {
			p.wakeReq = req
			p.state = stateReady
		}
	case blockAny:
		for _, cand := range p.breqs {
			if cand == req {
				p.wakeReq = req
				p.state = stateReady
				return
			}
		}
	}
}

// filterMatch applies the simulator's receive filter to a message.
func filterMatch(src, tag int, m *MsgRec) bool {
	return (src == sim.AnySource || src == m.Src) &&
		(tag == sim.AnyTag || tag == m.Tag)
}

// takeMatching consumes the policy-preferred pending message matching
// (src, tag), or returns nil. Within one channel the earliest matching
// message must win (non-overtaking); across channels the policy picks
// the lowest or highest source.
func (p *eproc) takeMatching(src, tag int) *emsg {
	idx := p.findMatching(src, tag)
	if idx < 0 {
		return nil
	}
	m := p.mailbox[idx]
	p.mailbox = append(p.mailbox[:idx], p.mailbox[idx+1:]...)
	m.rec.Consumed = true
	p.e.progress++
	p.completeRendezvous(m)
	return m
}

// findMatching locates the policy-preferred candidate in the mailbox.
func (p *eproc) findMatching(src, tag int) int {
	best := -1
	for i, m := range p.mailbox {
		if !filterMatch(src, tag, m.rec) {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		b := p.mailbox[best]
		if m.rec.Src == b.rec.Src {
			continue // FIFO within a channel: the earlier message stands
		}
		if p.e.policy == PolicyHigh {
			if m.rec.Src > b.rec.Src {
				best = i
			}
		} else if m.rec.Src < b.rec.Src {
			best = i
		}
	}
	return best
}

// peekMatching is findMatching without consumption (probes).
func (p *eproc) peekMatching(src, tag int) *emsg {
	if i := p.findMatching(src, tag); i >= 0 {
		return p.mailbox[i]
	}
	return nil
}

// --- non-blocking operations ---

// Isend implements sim.FullProc.
func (p *eproc) Isend(dst, tag int, data []byte) *sim.Request {
	req := &reqState{}
	p.sendCommon(dst, tag, len(data), data, OpIsend, req)
	token := &sim.Request{}
	p.reqs[token] = req
	p.allReqs = append(p.allReqs, req)
	return token
}

// Irecv implements sim.FullProc.
func (p *eproc) Irecv(src, tag int) *sim.Request {
	p.charge()
	p.checkRecvArgs(src, tag)
	seq := p.op(Op{Kind: OpIrecv, Peer: src, Tag: tag, Events: 1})
	slot := len(p.slots)
	p.slots = append(p.slots, Slot{
		Rank: p.id, Op: seq, SrcFilter: src, TagFilter: tag,
		Caller: p.ops[seq].Caller, MatchSrc: -1, MatchSeq: -1,
	})
	req := &reqState{isRecv: true, src: src, tag: tag, slot: slot}
	if m := p.takeMatching(src, tag); m != nil {
		req.done = true
		req.msg = m
		p.noteMatch(seq, slot, m)
	} else {
		p.posted = append(p.posted, req)
	}
	token := &sim.Request{}
	p.reqs[token] = req
	p.allReqs = append(p.allReqs, req)
	return token
}

// lookup resolves a request token, mirroring the simulator's ownership
// checks.
func (p *eproc) lookup(token *sim.Request) *reqState {
	if token == nil {
		panic("verify: Wait on nil or foreign request")
	}
	req, ok := p.reqs[token]
	if !ok {
		panic("verify: Wait on nil or foreign request")
	}
	return req
}

// Wait implements sim.FullProc.
func (p *eproc) Wait(token *sim.Request) sim.Message {
	req := p.lookup(token)
	if req.waited {
		panic("verify: Wait called twice on one request")
	}
	req.waited = true
	p.charge()
	seq := p.op(Op{Kind: OpWait, Peer: -1, Tag: -1, Events: 1})
	if !req.done {
		p.breqs = []*reqState{req}
		desc := fmt.Sprintf("rank %d op %d: Wait(%s) in %s",
			p.id, seq, describeReq(req), p.ops[seq].Caller)
		p.block(blockReq, desc)
		p.wakeReq = nil
	}
	if req.isRecv {
		m := req.msg
		p.ops[seq].Peer = m.rec.Src
		p.ops[seq].Tag = m.rec.Tag
		p.ops[seq].MatchSrc = m.rec.Src
		p.ops[seq].MatchSeq = m.rec.ChanSeq
		return sim.Message{Src: m.rec.Src, Tag: m.rec.Tag, Size: m.rec.Size, Data: m.data}
	}
	return sim.Message{}
}

func describeReq(req *reqState) string {
	if req.isRecv {
		return fmt.Sprintf("Irecv src=%s tag=%s", peerString(req.src), tagString(req.tag))
	}
	return fmt.Sprintf("Isend dst=%d tag=%d", req.sendMsg.rec.Dst, req.sendMsg.rec.Tag)
}

// Waitall implements sim.FullProc.
func (p *eproc) Waitall(tokens []*sim.Request) []sim.Message {
	msgs := make([]sim.Message, len(tokens))
	for i, tok := range tokens {
		msgs[i] = p.Wait(tok)
	}
	return msgs
}

// Waitany implements sim.FullProc. Among already-complete requests the
// canonical policy takes the lowest index (highest under PolicyHigh);
// with none complete it parks on the whole set.
func (p *eproc) Waitany(tokens []*sim.Request) (int, sim.Message) {
	if len(tokens) == 0 {
		panic("verify: Waitany with no requests")
	}
	p.charge()
	eligible := 0
	completed := 0
	chosen := -1
	states := make([]*reqState, len(tokens))
	for i, tok := range tokens {
		req := p.lookup(tok)
		states[i] = req
		if req.waited {
			continue
		}
		eligible++
		if req.done {
			completed++
			if chosen < 0 || p.e.policy == PolicyHigh {
				chosen = i
			}
		}
	}
	if eligible == 0 {
		panic("verify: Waitany called with every request already waited")
	}
	p.op(Op{Kind: OpWaitany, Peer: -1, Tag: -1, Size: completed})
	if chosen >= 0 {
		return chosen, p.Wait(tokens[chosen])
	}
	pending := make([]*reqState, 0, eligible)
	for _, req := range states {
		if req != nil && !req.waited {
			pending = append(pending, req)
		}
	}
	p.breqs = pending
	p.block(blockAny, fmt.Sprintf("rank %d: Waitany over %d requests", p.id, eligible))
	woken := p.wakeReq
	p.wakeReq = nil
	for i, req := range states {
		if req == woken {
			return i, p.Wait(tokens[i])
		}
	}
	panic("verify: Waitany completed an unknown request")
}

// Probe implements sim.FullProc.
func (p *eproc) Probe(src, tag int) (msgSrc, msgTag, size int) {
	p.charge()
	p.checkRecvArgs(src, tag)
	seq := p.op(Op{Kind: OpProbe, Peer: src, Tag: tag})
	if m := p.peekMatching(src, tag); m != nil {
		return m.rec.Src, m.rec.Tag, m.rec.Size
	}
	p.bsrc, p.btg = src, tag
	p.block(blockProbe, p.ops[seq].describe(p.id))
	m := p.wakeMsg
	p.wakeMsg = nil
	return m.rec.Src, m.rec.Tag, m.rec.Size
}

// Iprobe implements sim.FullProc. A failed poll hands the baton back so
// other ranks can make the probed-for message appear; a long stall with
// no global progress aborts the elaboration (livelock guard).
func (p *eproc) Iprobe(src, tag int) (ok bool, msgSrc, msgTag, size int) {
	p.charge()
	p.checkRecvArgs(src, tag)
	p.op(Op{Kind: OpIprobe, Peer: src, Tag: tag})
	if m := p.peekMatching(src, tag); m != nil {
		p.iprobeStall = 0
		return true, m.rec.Src, m.rec.Tag, m.rec.Size
	}
	if p.e.progress == p.iprobeMark {
		p.iprobeStall++
		if p.iprobeStall > iprobeStallLimit {
			panic(fmt.Sprintf("verify: rank %d polled Iprobe %d times with no progress (livelock)",
				p.id, p.iprobeStall))
		}
	} else {
		p.iprobeMark = p.e.progress
		p.iprobeStall = 0
	}
	p.softYield()
	return false, 0, 0, 0
}

// Sendrecv implements sim.FullProc, decomposed exactly as the simulator
// does: non-blocking send, blocking receive, wait.
func (p *eproc) Sendrecv(dst, sendTag int, data []byte, src, recvTag int) sim.Message {
	req := p.Isend(dst, sendTag, data)
	m := p.Recv(src, recvTag)
	p.Wait(req)
	return m
}

// --- collectives ---

// joinCollective enters this rank's next collective round, blocking
// until every rank has arrived; the last arrival computes the outputs.
func (p *eproc) joinCollective(name string, root int, data []byte, parts [][]byte, op sim.ReduceOp) *collRound {
	p.charge()
	if root < 0 || root >= p.e.n {
		panic(fmt.Sprintf("verify: collective root %d out of range [0,%d)", root, p.e.n))
	}
	seq := p.collSeq
	p.collSeq++
	for len(p.e.rounds) <= seq {
		p.e.rounds = append(p.e.rounds, nil)
	}
	round := p.e.rounds[seq]
	if round == nil {
		round = &collRound{
			name:    name,
			root:    root,
			arrived: make([]bool, p.e.n),
			data:    make([][]byte, p.e.n),
			parts:   make([][][]byte, p.e.n),
		}
		p.e.rounds[seq] = round
	}
	if round.name != name || round.root != root {
		p.e.collMismatch = fmt.Sprintf(
			"collective sequence mismatch: rank %d called %s(root=%d) as collective #%d, other ranks called %s(root=%d)",
			p.id, name, root, seq, round.name, round.root)
		p.e.abort = true
		panic(abortUnwind{})
	}
	round.arrived[p.id] = true
	round.count++
	if data != nil {
		round.data[p.id] = append([]byte(nil), data...)
	}
	round.parts[p.id] = parts
	if round.op == nil {
		round.op = op
	}
	p.op(Op{Kind: OpCollective, Peer: root, Coll: name, Size: len(data), Events: 1})
	p.e.progress++
	if round.count < p.e.n {
		p.bround = round
		p.block(blockColl, fmt.Sprintf("rank %d: collective %s #%d awaiting %d rank(s)",
			p.id, name, seq, p.e.n-round.count))
		return round
	}
	round.complete(p.e.n)
	// Wake every rank parked on this round.
	for _, q := range p.e.procs {
		if q.state == stateBlocked && q.bkind == blockColl && q.bround == round {
			q.state = stateReady
		}
	}
	return round
}

// complete computes every rank's output once all have arrived. Rooted
// and ordered combines use rank order — the canonical deterministic
// choice (the simulator's trees are deterministic too; ReduceArrival's
// arrival order is data non-determinism the static model does not
// track).
func (c *collRound) complete(n int) {
	c.done = true
	c.out = make([][]byte, n)
	switch c.name {
	case "barrier":
	case "bcast":
		for i := 0; i < n; i++ {
			c.out[i] = append([]byte(nil), c.data[c.root]...)
		}
	case "reduce", "reduce_arrival":
		c.out[c.root] = c.combineAll(n)
	case "allreduce":
		acc := c.combineAll(n)
		for i := 0; i < n; i++ {
			c.out[i] = append([]byte(nil), acc...)
		}
	case "scan":
		acc := append([]byte(nil), c.data[0]...)
		c.out[0] = append([]byte(nil), acc...)
		for i := 1; i < n; i++ {
			acc = c.op(acc, c.data[i])
			c.out[i] = append([]byte(nil), acc...)
		}
	case "scatter":
		rootParts := c.parts[c.root]
		if len(rootParts) != n {
			panic(fmt.Sprintf("verify: Scatter root has %d parts for %d ranks", len(rootParts), n))
		}
		for i := 0; i < n; i++ {
			c.out[i] = append([]byte(nil), rootParts[i]...)
		}
	case "gather":
		c.outDeck = make([][][]byte, n)
		all := make([][]byte, n)
		for i := 0; i < n; i++ {
			all[i] = append([]byte(nil), c.data[i]...)
		}
		c.outDeck[c.root] = all
	case "allgather":
		c.outDeck = make([][][]byte, n)
		for i := 0; i < n; i++ {
			all := make([][]byte, n)
			for j := 0; j < n; j++ {
				all[j] = append([]byte(nil), c.data[j]...)
			}
			c.outDeck[i] = all
		}
	case "alltoall":
		c.outDeck = make([][][]byte, n)
		for i := 0; i < n; i++ {
			if len(c.parts[i]) != n {
				panic(fmt.Sprintf("verify: Alltoall with %d parts for %d ranks", len(c.parts[i]), n))
			}
		}
		for i := 0; i < n; i++ {
			row := make([][]byte, n)
			for j := 0; j < n; j++ {
				row[j] = append([]byte(nil), c.parts[j][i]...)
			}
			c.outDeck[i] = row
		}
	}
}

// combineAll folds every rank's contribution in rank order.
func (c *collRound) combineAll(n int) []byte {
	if c.op == nil {
		panic("verify: reduction with nil op")
	}
	acc := append([]byte(nil), c.data[0]...)
	for i := 1; i < n; i++ {
		acc = c.op(acc, c.data[i])
	}
	return acc
}

// Barrier implements sim.FullProc.
func (p *eproc) Barrier() { p.joinCollective("barrier", 0, nil, nil, nil) }

// Bcast implements sim.FullProc.
func (p *eproc) Bcast(root int, data []byte) []byte {
	round := p.joinCollective("bcast", root, data, nil, nil)
	return round.out[p.id]
}

// Reduce implements sim.FullProc.
func (p *eproc) Reduce(root int, data []byte, op sim.ReduceOp) []byte {
	if op == nil {
		panic("verify: Reduce with nil op")
	}
	round := p.joinCollective("reduce", root, data, nil, op)
	return round.out[p.id]
}

// ReduceArrival implements sim.FullProc. Combination order is rank
// order here: the arrival-order data non-determinism the simulator
// exposes is outside the static structural model.
func (p *eproc) ReduceArrival(root int, data []byte, op sim.ReduceOp) []byte {
	if op == nil {
		panic("verify: ReduceArrival with nil op")
	}
	round := p.joinCollective("reduce_arrival", root, data, nil, op)
	return round.out[p.id]
}

// Allreduce implements sim.FullProc.
func (p *eproc) Allreduce(data []byte, op sim.ReduceOp) []byte {
	if op == nil {
		panic("verify: Allreduce with nil op")
	}
	round := p.joinCollective("allreduce", 0, data, nil, op)
	return round.out[p.id]
}

// Gather implements sim.FullProc.
func (p *eproc) Gather(root int, data []byte) [][]byte {
	round := p.joinCollective("gather", root, data, nil, nil)
	if round.outDeck != nil {
		return round.outDeck[p.id]
	}
	return nil
}

// Scatter implements sim.FullProc.
func (p *eproc) Scatter(root int, parts [][]byte) []byte {
	round := p.joinCollective("scatter", root, nil, parts, nil)
	return round.out[p.id]
}

// Allgather implements sim.FullProc.
func (p *eproc) Allgather(data []byte) [][]byte {
	round := p.joinCollective("allgather", 0, data, nil, nil)
	return round.outDeck[p.id]
}

// Scan implements sim.FullProc.
func (p *eproc) Scan(data []byte, op sim.ReduceOp) []byte {
	if op == nil {
		panic("verify: Scan with nil op")
	}
	round := p.joinCollective("scan", 0, data, nil, op)
	return round.out[p.id]
}

// Alltoall implements sim.FullProc.
func (p *eproc) Alltoall(parts [][]byte) [][]byte {
	if len(parts) != p.e.n {
		panic(fmt.Sprintf("verify: Alltoall with %d parts for %d ranks", len(parts), p.e.n))
	}
	round := p.joinCollective("alltoall", 0, nil, parts, nil)
	return round.outDeck[p.id]
}

// The recorder must satisfy the full recording seam.
var _ sim.FullProc = (*eproc)(nil)
