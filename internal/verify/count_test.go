package verify

import (
	"math"
	"testing"

	"github.com/anacin-go/anacinx/internal/patterns"
	"github.com/anacin-go/anacinx/internal/sim"
)

func countPattern(t *testing.T, name string, procs, iters int) Count {
	t.Helper()
	res := elaboratePattern(t, name, procs, iters, PolicyLow)
	if !res.Clean() {
		t.Fatalf("%s P=%d iters=%d: elaboration not clean", name, procs, iters)
	}
	return CountMatchings(res)
}

func TestCountMessageRace(t *testing.T) {
	// P-1 workers send iters messages each into rank 0's wildcard
	// receives: the count is the multinomial (iters·(P-1))! / (iters!)^(P-1).
	cases := []struct {
		procs, iters int
		want         uint64
	}{
		{2, 1, 1},
		{2, 2, 1},
		{3, 1, 2},
		{3, 2, 6},
		{4, 1, 6},
		{4, 2, 90},
	}
	for _, c := range cases {
		got := countPattern(t, "message_race", c.procs, c.iters)
		if got.Saturated {
			t.Fatalf("P=%d iters=%d: unexpected saturation", c.procs, c.iters)
		}
		if got.Matchings != c.want {
			t.Errorf("P=%d iters=%d: matchings = %d, want %d", c.procs, c.iters, got.Matchings, c.want)
		}
	}
}

func TestCountRaceCandidateSets(t *testing.T) {
	count := countPattern(t, "message_race", 4, 1)
	if len(count.Races) != 3 {
		t.Fatalf("race slots = %d, want 3", len(count.Races))
	}
	for _, r := range count.Races {
		if r.Rank != 0 {
			t.Fatalf("race on rank %d, want 0", r.Rank)
		}
		// Every slot can receive from every worker.
		if len(r.Candidates) != 3 || r.Candidates[0] != 1 || r.Candidates[2] != 3 {
			t.Fatalf("slot %d candidates = %v, want [1 2 3]", r.Slot, r.Candidates)
		}
		if r.Partial {
			t.Fatalf("slot %d candidates flagged partial without saturation", r.Slot)
		}
	}
}

func TestCountDeterministicPatternsAreOne(t *testing.T) {
	for _, name := range []string{"ring_halo", "stencil2d", "collective_tree"} {
		count := countPattern(t, name, 4, 2)
		if count.Matchings != 1 || len(count.Races) != 0 {
			t.Errorf("%s: matchings=%d races=%d, want 1 and 0", name, count.Matchings, len(count.Races))
		}
	}
}

// taggedFunnel mixes a concrete-tag receive into a wildcard burst so
// the all-compatible fast path cannot apply: rank 0 first drains two
// wildcard-source messages of tag 0, then one of tag 1 from anyone.
// Rank 1 sends tag 0 then tag 1 on one channel (FIFO-ordered); rank 2
// sends tag 0.
func taggedFunnel(r sim.Proc) {
	switch r.Rank() {
	case 0:
		r.Recv(sim.AnySource, 0)
		r.Recv(sim.AnySource, 0)
		r.Recv(sim.AnySource, 1)
	case 1:
		r.SendSize(0, 0, 1)
		r.SendSize(0, 1, 1)
	case 2:
		r.SendSize(0, 0, 1)
	}
}

func TestCountDFSWithTagFilters(t *testing.T) {
	res := Elaborate(taggedFunnel, 3, PolicyLow, 0, 0)
	if !res.Clean() {
		t.Fatalf("taggedFunnel not clean")
	}
	count := CountMatchings(res)
	// Slot 2 demands tag 1, which only rank 1's second message carries,
	// so slots 0/1 interleave rank 1's tag-0 and rank 2's tag-0: 2 ways.
	if count.Matchings != 2 || count.Saturated {
		t.Fatalf("matchings = %d (sat=%v), want 2", count.Matchings, count.Saturated)
	}
	// Slots 0 and 1 race between ranks 1 and 2; slot 2 is deterministic
	// despite its wildcard source filter.
	if len(count.Races) != 2 {
		t.Fatalf("race slots = %d, want 2: %+v", len(count.Races), count.Races)
	}
	for _, r := range count.Races {
		if r.Slot == 2 {
			t.Fatalf("tag-constrained slot 2 wrongly reported racy")
		}
		if len(r.Candidates) != 2 {
			t.Fatalf("slot %d candidates = %v, want two", r.Slot, r.Candidates)
		}
	}
}

func TestBinomialSaturates(t *testing.T) {
	if got, sat := binomial(4, 2); got != 6 || sat {
		t.Fatalf("C(4,2) = %d (sat=%v)", got, sat)
	}
	if got, sat := binomial(80, 40); got != math.MaxUint64 || !sat {
		t.Fatalf("C(80,40) = %d (sat=%v), want saturation", got, sat)
	}
}

func TestClassifyExactness(t *testing.T) {
	// message_race: skeletons agree but rank 0 never sends after its
	// receives... it only receives — workers only send. Exact.
	low := elaboratePattern(t, "message_race", 3, 1, PolicyLow)
	high := elaboratePattern(t, "message_race", 3, 1, PolicyHigh)
	if got := ClassifyExactness(low, high); got != Exact {
		t.Errorf("message_race exactness = %s, want exact", got)
	}
	// reduce_pipeline: iteration 2's sends happen after iteration 1's
	// collective — gated, so the enumeration is an upper bound.
	low = elaboratePattern(t, "reduce_pipeline", 3, 2, PolicyLow)
	high = elaboratePattern(t, "reduce_pipeline", 3, 2, PolicyHigh)
	if got := ClassifyExactness(low, high); got != UpperBound {
		t.Errorf("reduce_pipeline exactness = %s, want upper-bound", got)
	}
	// master_worker: work assignment depends on which worker's result
	// arrives first, so the skeletons diverge.
	low = elaboratePattern(t, "master_worker", 4, 1, PolicyLow)
	high = elaboratePattern(t, "master_worker", 4, 1, PolicyHigh)
	if got := ClassifyExactness(low, high); got != Canonical {
		t.Errorf("master_worker exactness = %s, want canonical", got)
	}
}

func TestVerifyAllRegisteredPatternsClean(t *testing.T) {
	findings, summaries := VerifyAll(Options{})
	if g := Gating(findings); g != 0 {
		for _, f := range findings {
			if f.Severity == SevError && !f.Suppressed {
				t.Errorf("gating finding: %s", f.String())
			}
		}
		t.Fatalf("%d gating findings; registered patterns must verify clean", g)
	}
	for _, f := range findings {
		if f.Severity == SevWarn && !f.Suppressed {
			t.Errorf("unexpected warning: %s", f.String())
		}
	}
	if len(summaries) == 0 {
		t.Fatalf("no configuration summaries")
	}
	perPattern := map[string]int{}
	for _, s := range summaries {
		perPattern[s.Pattern]++
	}
	for _, pat := range patterns.All() {
		if perPattern[pat.Name()] == 0 {
			t.Errorf("pattern %s has no clean verified configuration", pat.Name())
		}
	}
}

func TestVerifyMetadataChecksCatchLies(t *testing.T) {
	// A pattern whose metadata is wrong in both directions: claims
	// determinism over a wildcard race and overstates its hint.
	findings, _ := VerifyPattern(&lyingPattern{}, Options{Procs: []int{3}, Iters: []int{1}})
	var hint, det bool
	for _, f := range findings {
		switch f.Check {
		case "metadata-hint":
			hint = f.Severity == SevError
		case "metadata-deterministic":
			det = f.Severity == SevError
		}
	}
	if !hint || !det {
		t.Fatalf("metadata lies not caught (hint=%v det=%v): %+v", hint, det, findings)
	}
}

// lyingPattern is a message race that misdescribes itself.
type lyingPattern struct{}

func (*lyingPattern) Name() string                            { return "lying_fixture" }
func (*lyingPattern) Description() string                     { return "metadata fixture" }
func (*lyingPattern) MinProcs() int                           { return 2 }
func (*lyingPattern) Deterministic() bool                     { return true }
func (*lyingPattern) EventsPerRankHint(p patterns.Params) int { return 99 }
func (*lyingPattern) Program(p patterns.Params) (sim.ProcProgram, error) {
	return func(r sim.Proc) {
		if r.Rank() == 0 {
			for i := 1; i < r.Size(); i++ {
				r.Recv(sim.AnySource, sim.AnyTag)
			}
		} else {
			r.SendSize(0, 0, 1)
		}
	}, nil
}

func TestSanctionedExceptionSuppresses(t *testing.T) {
	findings, _ := VerifyPattern(&lyingPattern{}, Options{
		Procs: []int{3}, Iters: []int{1},
		Exceptions: []Exception{
			{Pattern: "lying_fixture", Check: "metadata-hint", Reason: "fixture hint is intentionally wrong"},
			{Pattern: "lying_fixture", Check: "metadata-deterministic", Reason: "fixture claim is intentionally wrong"},
		},
	})
	if g := Gating(findings); g != 0 {
		t.Fatalf("exceptions did not suppress: %d gating findings", g)
	}
	seen := false
	for _, f := range findings {
		if f.Check == "metadata-hint" {
			if !f.Suppressed || f.Reason == "" {
				t.Fatalf("suppressed finding missing reason: %+v", f)
			}
			seen = true
		}
	}
	if !seen {
		t.Fatalf("suppressed findings must stay in the report")
	}
}
