package verify

import "fmt"

// Structural analysis of one elaboration: deadlock cycles, unmatched
// traffic, collective mismatches, and elaboration failures. All
// findings here are produced against the canonical (low-policy)
// elaboration.

// maxPerCheck caps same-check findings per configuration so one broken
// pattern does not drown the report; the overflow is summarized.
const maxPerCheck = 8

// Analyze derives structural findings from one elaboration of the
// named pattern configuration.
func Analyze(pattern string, procs, iters int, res *Result) []Finding {
	var out []Finding
	mk := func(check string, sev Severity, rank int, msg string, witness ...string) {
		out = append(out, Finding{
			Check: check, Severity: sev, Pattern: pattern,
			Procs: procs, Iterations: iters, Rank: rank,
			Message: msg, Witness: witness,
		})
	}

	if res.CollMismatch != "" {
		mk("collective-mismatch", SevError, -1,
			"ranks joined different collective operations at the same step",
			res.CollMismatch)
	}
	if res.BudgetExceeded {
		mk("elaboration", SevError, -1,
			fmt.Sprintf("op budget exhausted after %d ops (livelock or unbounded loop)", res.OpCount))
	}
	for r := range res.Ranks {
		if pm := res.Ranks[r].PanicMsg; pm != "" {
			mk("elaboration", SevError, r, "rank program panicked during elaboration: "+pm)
		}
	}

	if res.Stalled {
		out = append(out, analyzeStall(pattern, procs, iters, res)...)
	}

	// Unmatched sends: posted messages no receive ever consumed. Only
	// meaningful when elaboration was not aborted early by a mismatch or
	// budget blowout (those already explain the residue).
	if res.CollMismatch == "" && !res.BudgetExceeded {
		unsent := 0
		for _, m := range res.Msgs {
			if m.Consumed {
				continue
			}
			unsent++
			if unsent <= maxPerCheck {
				mk("unmatched-send", SevError, m.Src,
					fmt.Sprintf("message to rank %d never matched by any receive", m.Dst),
					fmt.Sprintf("rank %d op %d: send(dst=%d, tag=%d, size=%d, chan-seq=%d) in %s",
						m.Src, m.SrcOp, m.Dst, m.Tag, m.Size, m.ChanSeq, m.Caller))
			}
		}
		if unsent > maxPerCheck {
			mk("unmatched-send", SevError, -1,
				fmt.Sprintf("%d further unmatched sends omitted", unsent-maxPerCheck))
		}
	}

	for r := range res.Ranks {
		rr := &res.Ranks[r]
		for i, d := range rr.PendingRecvs {
			if i >= maxPerCheck {
				mk("unmatched-recv", SevError, r,
					fmt.Sprintf("%d further pending receives omitted", len(rr.PendingRecvs)-maxPerCheck))
				break
			}
			mk("unmatched-recv", SevError, r,
				"nonblocking receive posted but never matched", d)
		}
		for i, d := range rr.UnwaitedReqs {
			if i >= maxPerCheck {
				mk("unwaited-request", SevWarn, r,
					fmt.Sprintf("%d further unwaited requests omitted", len(rr.UnwaitedReqs)-maxPerCheck))
				break
			}
			mk("unwaited-request", SevWarn, r,
				"request completed by neither Wait nor Waitany before the rank finished", d)
		}
	}
	return out
}

// analyzeStall classifies a no-runnable-rank stall: a cycle in the
// wait-for graph is a deadlock (reported once, with the minimal witness
// cycle); blocked ranks outside any cycle are starved receives/waits
// whose peer finished without sending.
func analyzeStall(pattern string, procs, iters int, res *Result) []Finding {
	var out []Finding
	cycle := minimalCycle(res.WaitsOn)
	inCycle := make([]bool, res.Procs)
	if len(cycle) > 0 {
		witness := make([]string, 0, len(cycle))
		for i, r := range cycle {
			inCycle[r] = true
			next := cycle[(i+1)%len(cycle)]
			witness = append(witness, fmt.Sprintf("%s — waits on rank %d",
				res.Ranks[r].BlockDesc, next))
		}
		out = append(out, Finding{
			Check: "deadlock", Severity: SevError, Pattern: pattern,
			Procs: procs, Iterations: iters, Rank: cycle[0],
			Message: fmt.Sprintf("wait-for cycle of %d ranks under the runtime's matching semantics", len(cycle)),
			Witness: witness,
		})
	}
	n := 0
	for r := range res.WaitsOn {
		if res.WaitsOn[r] == nil || inCycle[r] {
			continue
		}
		n++
		if n > maxPerCheck {
			continue
		}
		out = append(out, Finding{
			Check: "unmatched-recv", Severity: SevError, Pattern: pattern,
			Procs: procs, Iterations: iters, Rank: r,
			Message: "rank blocked at elaboration stall with no matching message in flight",
			Witness: []string{res.Ranks[r].BlockDesc},
		})
	}
	if n > maxPerCheck {
		out = append(out, Finding{
			Check: "unmatched-recv", Severity: SevError, Pattern: pattern,
			Procs: procs, Iterations: iters, Rank: -1,
			Message: fmt.Sprintf("%d further blocked ranks omitted", n-maxPerCheck),
		})
	}
	return out
}

// minimalCycle finds a shortest cycle in the wait-for graph (nil edge
// lists are non-blocked ranks). It BFSes from every blocked rank for
// the shortest path back to itself and keeps the overall minimum,
// breaking ties toward the lowest starting rank; the returned cycle is
// rotated to start at its lowest member.
func minimalCycle(waitsOn [][]int) []int {
	n := len(waitsOn)
	var best []int
	for start := 0; start < n; start++ {
		if waitsOn[start] == nil {
			continue
		}
		// BFS over edges, looking for the shortest path start → ... →
		// start.
		prev := make([]int, n)
		for i := range prev {
			prev[i] = -2 // unvisited
		}
		queue := []int{start}
		prev[start] = -1
		found := -1
		for len(queue) > 0 && found < 0 {
			cur := queue[0]
			queue = queue[1:]
			if waitsOn[cur] == nil {
				continue // done/running rank: absorbing, no outgoing edges
			}
			for _, t := range waitsOn[cur] {
				if t == start {
					found = cur
					break
				}
				if prev[t] == -2 {
					prev[t] = cur
					queue = append(queue, t)
				}
			}
		}
		if found < 0 {
			continue
		}
		var cyc []int
		for cur := found; cur != -1; cur = prev[cur] {
			cyc = append(cyc, cur)
		}
		// cyc is found..start reversed; reverse to start..found.
		for i, j := 0, len(cyc)-1; i < j; i, j = i+1, j-1 {
			cyc[i], cyc[j] = cyc[j], cyc[i]
		}
		if best == nil || len(cyc) < len(best) {
			best = cyc
		}
	}
	if best == nil {
		return nil
	}
	// Canonical rotation: start at the lowest-numbered member.
	lo := 0
	for i, r := range best {
		if r < best[lo] {
			lo = i
		}
	}
	rot := make([]int, 0, len(best))
	rot = append(rot, best[lo:]...)
	rot = append(rot, best[:lo]...)
	return rot
}
