package kernel

import (
	"container/heap"
	"fmt"

	"github.com/anacin-go/anacinx/internal/graph"
	"github.com/anacin-go/anacinx/internal/trace"
)

// Streaming WL embedding. WL refinement is local: a node's depth-d
// label depends only on the depth-(d-1) labels of itself, its program
// neighbors (the previous and next event of its rank), and its message
// partner. Events therefore never need to exist all at once — a sliding
// window per rank holds each node only until its own refinement is done
// AND every neighbor that still needs its labels is done too. The
// feature histogram is aggregated into a map as occurrences appear;
// since vecBuilder.finish canonicalizes by sorting, the resulting
// FeatureVector is byte-identical to WL.Features on the materialized
// graph (a property the tests pin).
//
// Window growth mirrors message latency: balanced patterns (stencils,
// meshes) hold a near-constant window, while an eager fan-in like
// message_race defers every unmatched send to the end of the stream.

// StreamingKernel is a Kernel that can embed a trace directly from a
// v2 reader without materializing the trace or its graph.
type StreamingKernel interface {
	Kernel
	// FeaturesFromReader computes the same embedding Features produces
	// on the trace's event graph.
	FeaturesFromReader(r *trace.Reader) (FeatureVector, error)
}

// StreamStats describes one streaming embedding pass.
type StreamStats struct {
	// Events is the number of trace events consumed.
	Events int
	// MaxWindow is the peak number of simultaneously buffered nodes.
	MaxWindow int
	// MaxInFlight is the peak number of message endpoints awaiting
	// their partner.
	MaxInFlight int
	// DistinctFeatures is the size of the resulting histogram.
	DistinctFeatures int
}

// FeaturesFromReader embeds the trace behind r under k. Kernels that
// implement StreamingKernel stream; any other kernel falls back to
// building the graph through the reader (graph.FromReader) and
// embedding that. Either way the result equals k.Features of the
// trace's event graph.
func FeaturesFromReader(k Kernel, r *trace.Reader) (FeatureVector, error) {
	if sk, ok := k.(StreamingKernel); ok {
		return sk.FeaturesFromReader(r)
	}
	g, err := graph.FromReader(r)
	if err != nil {
		return FeatureVector{}, err
	}
	return k.Features(g), nil
}

// FeaturesFromReader implements StreamingKernel.
func (w WL) FeaturesFromReader(r *trace.Reader) (FeatureVector, error) {
	fv, _, err := w.FeaturesFromReaderStats(r)
	return fv, err
}

// FeaturesFromReaderStats is FeaturesFromReader plus the pass's
// windowing statistics (the footprint regression test pins MaxWindow).
func (w WL) FeaturesFromReaderStats(r *trace.Reader) (FeatureVector, StreamStats, error) {
	if w.H < 0 {
		panic(fmt.Sprintf("kernel: WL.FeaturesFromReader called with negative depth H=%d (construct with NewWL, or set H >= 0)", w.H))
	}
	s := &wlStream{
		w:        w,
		r:        r,
		dp:       make([]uint64, w.H+1),
		windows:  make([]wlWindow, r.Procs()),
		inflight: make(map[int64]*wlNode),
		feats:    make(map[uint64]float64),
	}
	for d := 0; d <= w.H; d++ {
		s.dp[d] = hashWord(fnvOffset, uint64(d))
	}
	if err := s.run(); err != nil {
		return FeatureVector{}, s.stats, err
	}
	s.stats.DistinctFeatures = len(s.feats)
	if s.stats.Events == 0 {
		// Match Features on the empty graph: the literal zero value,
		// not an allocated empty vector.
		return FeatureVector{}, s.stats, nil
	}
	return FromMap(s.feats), s.stats, nil
}

// wlNode is one buffered event during a streaming pass.
type wlNode struct {
	seq     int
	rank    int
	depth   int
	hasNext bool
	// isSend/isRecv mark message-capable roles (MsgID present).
	isSend, isRecv bool
	// pendingMsg marks a send whose receive has not arrived; until the
	// stream ends, it is unknown whether an out message edge exists.
	pendingMsg bool
	inWork     bool
	partner    *wlNode
	labels     []uint64
}

// wlWindow is one rank's sliding window, a deque indexed by sequence.
type wlWindow struct {
	nodes []*wlNode
	head  int // seq of nodes[0]
}

func (w *wlWindow) at(seq int) *wlNode {
	i := seq - w.head
	if i < 0 || i >= len(w.nodes) {
		return nil
	}
	return w.nodes[i]
}

// wlStream drives one embedding pass.
type wlStream struct {
	w        WL
	r        *trace.Reader
	dp       []uint64
	windows  []wlWindow
	inflight map[int64]*wlNode
	feats    map[uint64]float64
	work     []*wlNode
	neigh    []uint64
	live     int
	stats    StreamStats
}

func (s *wlStream) addFeat(h uint64) { s.feats[h]++ }

func (s *wlStream) push(n *wlNode) {
	if n != nil && !n.inWork {
		n.inWork = true
		s.work = append(s.work, n)
	}
}

// cursorHeap merges the per-rank streams by (time, rank): an
// approximation of simulation order that keeps message partners close
// in the merged stream. The interleave only affects window size — the
// occurrence multiset, and therefore the embedding, is independent of
// consumption order.
type cursorEntry struct {
	cur  *trace.Cursor
	ev   trace.Event
	rank int
}
type cursorHeap []cursorEntry

func (h cursorHeap) Len() int { return len(h) }
func (h cursorHeap) Less(i, j int) bool {
	if h[i].ev.Time != h[j].ev.Time {
		return h[i].ev.Time < h[j].ev.Time
	}
	return h[i].rank < h[j].rank
}
func (h cursorHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *cursorHeap) Push(x any)   { *h = append(*h, x.(cursorEntry)) }
func (h *cursorHeap) Pop() any     { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }

func (s *wlStream) run() error {
	p := s.r.Procs()
	h := make(cursorHeap, 0, p)
	for rank := 0; rank < p; rank++ {
		c := s.r.Cursor(rank)
		var ev trace.Event
		if c.Next(&ev) {
			h = append(h, cursorEntry{cur: c, ev: ev, rank: rank})
		} else if err := c.Err(); err != nil {
			return err
		}
	}
	heap.Init(&h)
	for h.Len() > 0 {
		e := &h[0]
		if err := s.ingest(e.ev); err != nil {
			return err
		}
		if e.cur.Next(&e.ev) {
			heap.Fix(&h, 0)
		} else {
			if err := e.cur.Err(); err != nil {
				return err
			}
			heap.Pop(&h)
		}
	}

	// End of stream: every still-pending send is an unmatched send — a
	// node with no out message edge. A pending receive has no sender,
	// which no valid trace produces.
	for id, n := range s.inflight {
		if n.isRecv {
			return fmt.Errorf("kernel: recv of msg %d has no send", id)
		}
		n.pendingMsg = false
		s.push(n)
	}
	clear(s.inflight)
	// Final drain: everything left can now refine to full depth.
	for rank := range s.windows {
		for _, n := range s.windows[rank].nodes {
			s.push(n)
		}
	}
	s.propagate()
	for rank := range s.windows {
		s.release(rank)
	}
	if s.live != 0 {
		return fmt.Errorf("kernel: streaming WL left %d nodes unrefined (internal error)", s.live)
	}
	return nil
}

func (s *wlStream) ingest(ev trace.Event) error {
	n := &wlNode{
		seq:    ev.Seq,
		rank:   ev.Rank,
		labels: make([]uint64, s.w.H+1),
	}
	base := labelInterner.Hash(ev.Label())
	if s.w.Seed != 0 {
		base = splitmix64(base ^ s.w.Seed)
	}
	n.labels[0] = base
	s.addFeat(hashWord(s.dp[0], base))
	events, _, _, _ := s.r.RankCounts(ev.Rank)
	n.hasNext = ev.Seq < events-1

	if ev.MsgID != trace.NoMsg {
		switch {
		case ev.Kind.IsSend():
			n.isSend = true
			if other, ok := s.inflight[ev.MsgID]; ok {
				if other.isSend {
					return fmt.Errorf("kernel: msg %d sent twice (ranks %d and %d)", ev.MsgID, other.rank, n.rank)
				}
				n.partner, other.partner = other, n
				delete(s.inflight, ev.MsgID)
				s.push(other)
			} else {
				n.pendingMsg = true
				s.inflight[ev.MsgID] = n
			}
		case ev.Kind.IsReceive():
			n.isRecv = true
			if other, ok := s.inflight[ev.MsgID]; ok {
				if other.isRecv {
					return fmt.Errorf("kernel: msg %d received twice (ranks %d and %d)", ev.MsgID, other.rank, n.rank)
				}
				other.pendingMsg = false
				n.partner, other.partner = other, n
				delete(s.inflight, ev.MsgID)
				s.push(other)
			} else {
				s.inflight[ev.MsgID] = n
			}
		}
		if len(s.inflight) > s.stats.MaxInFlight {
			s.stats.MaxInFlight = len(s.inflight)
		}
	}

	win := &s.windows[ev.Rank]
	if len(win.nodes) == 0 {
		win.head = ev.Seq
	}
	win.nodes = append(win.nodes, n)
	s.live++
	s.stats.Events++
	if s.live > s.stats.MaxWindow {
		s.stats.MaxWindow = s.live
	}

	s.push(n)
	s.push(win.at(ev.Seq - 1)) // its arrival may unblock the predecessor
	s.propagate()
	s.release(ev.Rank)
	if n.partner != nil {
		s.release(n.partner.rank)
	}
	return nil
}

// propagate advances every worklist node as far as its dependencies
// allow, feeding newly unblocked neighbors back onto the list.
func (s *wlStream) propagate() {
	for len(s.work) > 0 {
		n := s.work[len(s.work)-1]
		s.work = s.work[:len(s.work)-1]
		n.inWork = false
		for s.advance(n) {
			win := &s.windows[n.rank]
			s.push(win.at(n.seq - 1))
			s.push(win.at(n.seq + 1))
			s.push(n.partner)
		}
	}
}

// advance computes n's next refinement depth if all depth-d inputs are
// available, reporting whether it advanced.
func (s *wlStream) advance(n *wlNode) bool {
	d := n.depth
	if d >= s.w.H || n.pendingMsg {
		return false
	}
	if n.partner != nil && n.partner.depth < d {
		return false
	}
	win := &s.windows[n.rank]
	var prev, next *wlNode
	if n.seq > win.head {
		if prev = win.at(n.seq - 1); prev == nil || prev.depth < d {
			return false
		}
	}
	if n.hasNext {
		if next = win.at(n.seq + 1); next == nil || next.depth < d {
			return false
		}
	}

	// Same recurrence as WL.Features: fold the sorted neighbor
	// contributions (in then out when directed, separated; unioned when
	// not) into the node's own depth-d label.
	h := hashWord(fnvOffset, n.labels[d])
	neigh := s.neigh[:0]
	if s.w.Directed {
		if prev != nil {
			neigh = append(neigh, contribution(graph.EdgeProgram, prev.labels[d]))
		}
		if n.isRecv && n.partner != nil {
			neigh = append(neigh, contribution(graph.EdgeMessage, n.partner.labels[d]))
		}
		h = foldSorted(h, neigh)
		h = hashWord(h, inOutSeparator)
		neigh = neigh[:0]
		if next != nil {
			neigh = append(neigh, contribution(graph.EdgeProgram, next.labels[d]))
		}
		if n.isSend && n.partner != nil {
			neigh = append(neigh, contribution(graph.EdgeMessage, n.partner.labels[d]))
		}
		h = foldSorted(h, neigh)
	} else {
		if prev != nil {
			neigh = append(neigh, contribution(graph.EdgeProgram, prev.labels[d]))
		}
		if next != nil {
			neigh = append(neigh, contribution(graph.EdgeProgram, next.labels[d]))
		}
		if n.partner != nil {
			neigh = append(neigh, contribution(graph.EdgeMessage, n.partner.labels[d]))
		}
		h = foldSorted(h, neigh)
	}
	s.neigh = neigh[:0]
	n.depth = d + 1
	n.labels[d+1] = h
	s.addFeat(hashWord(s.dp[d+1], h))
	return true
}

// release frees the window head of one rank while nothing still needs
// it: the head itself is fully refined, its successor (which reads the
// head's labels) is too, and so is its message partner.
func (s *wlStream) release(rank int) {
	win := &s.windows[rank]
	for len(win.nodes) > 0 {
		n := win.nodes[0]
		if n.depth < s.w.H || n.pendingMsg {
			return
		}
		if n.hasNext {
			next := win.at(n.seq + 1)
			if next == nil || next.depth < s.w.H {
				return
			}
		}
		if n.partner != nil && (n.partner.depth < s.w.H || n.partner.pendingMsg) {
			return
		}
		win.nodes[0] = nil
		win.nodes = win.nodes[1:]
		win.head++
		s.live--
	}
}
