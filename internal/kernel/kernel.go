// Package kernel implements graph kernels over event graphs and the
// kernel distance ANACIN-X uses as its proxy metric for non-determinism.
//
// A graph kernel is an inner product of graph embeddings in a
// Reproducing Kernel Hilbert Space (Vishwanathan et al., JMLR 2010).
// Every kernel here is of the explicit-feature-map family: a graph is
// embedded as a sparse histogram of structural features, and
// k(G1, G2) is the dot product of the histograms. The kernel distance
//
//	d(G1, G2) = sqrt(k(G1,G1) + k(G2,G2) - 2 k(G1,G2))
//
// is then the RKHS (Euclidean feature-space) distance. Because two runs
// of a deterministic program produce identical event graphs, d = 0 means
// "no observed non-determinism", and larger d means the communication
// structures diverged more — the quantity plotted in the paper's
// Figures 5, 6, and 7.
//
// The default kernel is the Weisfeiler-Lehman subtree kernel with depth
// 2, the configuration the ANACIN-X papers use; vertex- and
// edge-histogram kernels are provided as cheap baselines and for
// ablation.
//
// # Feature representation
//
// Embeddings are FeatureVector values: parallel keys/vals slices sorted
// by feature key (a CSR-style sorted sparse vector), built by sorting
// and run-length encoding a pooled buffer of feature occurrences. Dot
// is a two-pointer merge join over the sorted keys — no hashing, no
// random memory access, and a float summation order that is a pure
// function of the data. The map-backed Features type it replaced
// summed in Go's randomized map iteration order, so the innermost
// arithmetic of a non-determinism *measurement* tool was itself
// non-deterministic; the sorted layout makes every dot product (and
// therefore every kernel distance) bit-identical across runs,
// processes, and construction orders. Features remains as a
// conversion/compat type — see FromMap and FeatureVector.ToMap.
//
// A content-addressed embedding Cache (keyed by kernel name and a
// structural graph fingerprint) lets a pipeline that feeds the same
// run set into the violin sample, the slice profile, and the
// root-source ranking embed each graph exactly once — see Cache.
package kernel

import (
	"math"

	"github.com/anacin-go/anacinx/internal/graph"
)

// Features is the map-backed compat representation of a sparse feature
// histogram: hashed structural feature → multiplicity. Feature identity
// is stable across processes and platforms (FNV-based hashing of label
// content only). Kernels no longer produce it — they build sorted
// FeatureVector values directly — but it remains the convenient form
// for tests and tools that assemble or inspect histograms by key;
// convert with FromMap / FeatureVector.ToMap.
type Features map[uint64]float64

// Dot returns the inner product of two feature histograms. Note the
// summation follows map iteration order, which Go randomizes — kept
// only as the differential-testing oracle for FeatureVector.Dot (the
// fuzz test pins the two implementations against each other).
func (f Features) Dot(g Features) float64 {
	// Iterate the smaller map.
	if len(g) < len(f) {
		f, g = g, f
	}
	sum := 0.0
	for k, v := range f {
		if w, ok := g[k]; ok {
			//anacin:allow floatfold map-order summation is this oracle's point: fuzz inputs are small integers whose partial sums are exact, so order cannot change the result
			sum += v * w
		}
	}
	return sum
}

// L2 returns the Euclidean norm of the histogram.
func (f Features) L2() float64 { return math.Sqrt(f.Dot(f)) }

// Kernel embeds event graphs as sorted sparse feature vectors.
type Kernel interface {
	// Name identifies the kernel in reports, e.g. "wlst-h2".
	Name() string
	// Features computes the graph's embedding.
	Features(g *graph.Graph) FeatureVector
}

// Value computes k(g1, g2) directly.
func Value(k Kernel, g1, g2 *graph.Graph) float64 {
	return k.Features(g1).Dot(k.Features(g2))
}

// DistanceFromValues converts kernel values to the RKHS distance,
// clamping tiny negative arguments that arise from floating-point
// cancellation.
func DistanceFromValues(k11, k22, k12 float64) float64 {
	d2 := k11 + k22 - 2*k12
	if d2 < 0 {
		d2 = 0
	}
	return math.Sqrt(d2)
}

// Distance computes the (un-normalized) kernel distance between two
// graphs, the paper's measured amount of non-determinism.
func Distance(k Kernel, g1, g2 *graph.Graph) float64 {
	f1, f2 := k.Features(g1), k.Features(g2)
	return DistanceFromValues(f1.Dot(f1), f2.Dot(f2), f1.Dot(f2))
}

// NormalizedDistance computes the distance after normalizing each
// embedding to unit norm: sqrt(2 - 2*k12/sqrt(k11*k22)). It is bounded
// in [0, sqrt(2)] and insensitive to graph size. Graphs with empty
// embeddings are treated as identical to each other and maximally far
// from non-empty ones.
func NormalizedDistance(k Kernel, g1, g2 *graph.Graph) float64 {
	f1, f2 := k.Features(g1), k.Features(g2)
	n1, n2 := f1.L2(), f2.L2()
	switch {
	case n1 == 0 && n2 == 0:
		return 0
	case n1 == 0 || n2 == 0:
		return math.Sqrt2
	}
	cos := f1.Dot(f2) / (n1 * n2)
	if cos > 1 {
		cos = 1
	}
	return math.Sqrt(2 - 2*cos)
}

// fnv-1a constants, applied to 8-byte words.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// hashWord folds one 64-bit word into an FNV-1a state byte by byte.
func hashWord(h, w uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= w & 0xff
		h *= fnvPrime
		w >>= 8
	}
	return h
}

// hashString hashes a label string with FNV-1a.
func hashString(s string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}
