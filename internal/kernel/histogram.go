package kernel

import "github.com/anacin-go/anacinx/internal/graph"

// VertexHistogram is the simplest graph kernel: the embedding is the
// histogram of node labels. It sees only how many events of each MPI
// kind occurred, not how they are wired, so it is blind to pure
// match-order non-determinism — which makes it a useful ablation
// baseline against WL (paper Fig. 7's shape should NOT survive under
// it when only matching changes).
type VertexHistogram struct{}

// Name implements Kernel.
func (VertexHistogram) Name() string { return "vertex-hist" }

// Features implements Kernel.
func (VertexHistogram) Features(g *graph.Graph) FeatureVector {
	b := newVecBuilder(len(g.Nodes))
	for i := range g.Nodes {
		b.add(labelInterner.Hash(g.Nodes[i].Label))
	}
	return b.finish()
}

// EdgeHistogram embeds a graph as the histogram of
// (source label, edge kind, destination label) triples. It sees one hop
// of wiring: enough to notice, for example, that a message edge
// send→recv changed into send→wait, but not deeper structure.
type EdgeHistogram struct{}

// Name implements Kernel.
func (EdgeHistogram) Name() string { return "edge-hist" }

// Features implements Kernel.
func (EdgeHistogram) Features(g *graph.Graph) FeatureVector {
	b := newVecBuilder(len(g.Edges))
	for i := range g.Edges {
		e := &g.Edges[i]
		h := hashWord(fnvOffset, labelInterner.Hash(g.Nodes[e.From].Label))
		h = hashWord(h, uint64(e.Kind)+1)
		h = hashWord(h, labelInterner.Hash(g.Nodes[e.To].Label))
		b.add(h)
	}
	return b.finish()
}
