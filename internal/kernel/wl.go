package kernel

import (
	"fmt"
	"sort"

	"github.com/anacin-go/anacinx/internal/graph"
)

// WL is the Weisfeiler-Lehman subtree kernel (Shervashidze et al.):
// node labels are iteratively refined by hashing each node's label
// together with the sorted multiset of its neighbors' labels; the
// embedding is the histogram of all labels observed at refinement
// depths 0..H. Two nodes share a depth-h label exactly when their
// radius-h neighborhood trees are identical, so the kernel counts
// matching local substructures — for event graphs, matching local
// communication structure.
//
// Event graphs are directed and direction is meaningful (a send's
// successors differ from its predecessors), so refinement hashes the
// in-neighbor and out-neighbor multisets separately when Directed is
// true (the default for NewWL). Edge kinds (program vs message) are
// folded into the neighbor contribution as well.
type WL struct {
	// H is the refinement depth. H=0 degenerates to the vertex
	// histogram kernel. ANACIN-X uses H=2.
	H int
	// Directed selects direction-aware refinement.
	Directed bool
}

// NewWL returns the repository-default Weisfeiler-Lehman kernel at
// depth h: direction-aware refinement.
func NewWL(h int) WL {
	if h < 0 {
		panic(fmt.Sprintf("kernel: negative WL depth %d", h))
	}
	return WL{H: h, Directed: true}
}

// Name implements Kernel.
func (w WL) Name() string {
	dir := "d"
	if !w.Directed {
		dir = "u"
	}
	return fmt.Sprintf("wlst-h%d%s", w.H, dir)
}

// inOutSeparator separates the in-multiset from the out-multiset in the
// refinement hash (arbitrary odd constant).
const inOutSeparator = 0x9ae16a3b2f90404f

// Features implements Kernel.
func (w WL) Features(g *graph.Graph) Features {
	n := g.NumNodes()
	feats := make(Features, n/2+8)
	if n == 0 {
		return feats
	}

	labels := make([]uint64, n)
	for i := range g.Nodes {
		labels[i] = hashString(g.Nodes[i].Label)
	}
	add := func(depth int, label uint64) {
		// Mix the depth in so equal hashes at different depths count as
		// distinct features.
		feats[hashWord(hashWord(fnvOffset, uint64(depth)), label)]++
	}
	for i := range labels {
		add(0, labels[i])
	}

	next := make([]uint64, n)
	var scratch []uint64
	// contribution hashes one neighbor's (edge kind, current label).
	contribution := func(edgeKind graph.EdgeKind, label uint64) uint64 {
		return hashWord(uint64(edgeKind)+1, label)
	}
	for depth := 1; depth <= w.H; depth++ {
		for i := 0; i < n; i++ {
			h := hashWord(fnvOffset, labels[i])
			if w.Directed {
				scratch = scratch[:0]
				for _, ei := range g.In[i] {
					scratch = append(scratch, contribution(g.Edges[ei].Kind, labels[g.Edges[ei].From]))
				}
				h = foldSorted(h, scratch)
				h = hashWord(h, inOutSeparator)
				scratch = scratch[:0]
				for _, ei := range g.Out[i] {
					scratch = append(scratch, contribution(g.Edges[ei].Kind, labels[g.Edges[ei].To]))
				}
				h = foldSorted(h, scratch)
			} else {
				scratch = scratch[:0]
				for _, ei := range g.In[i] {
					scratch = append(scratch, contribution(g.Edges[ei].Kind, labels[g.Edges[ei].From]))
				}
				for _, ei := range g.Out[i] {
					scratch = append(scratch, contribution(g.Edges[ei].Kind, labels[g.Edges[ei].To]))
				}
				h = foldSorted(h, scratch)
			}
			next[i] = h
			add(depth, h)
		}
		labels, next = next, labels
	}
	return feats
}

// foldSorted sorts the multiset in place and folds it into h.
func foldSorted(h uint64, s []uint64) uint64 {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	for _, v := range s {
		h = hashWord(h, v)
	}
	return h
}
