package kernel

import (
	"fmt"

	"github.com/anacin-go/anacinx/internal/graph"
)

// WL is the Weisfeiler-Lehman subtree kernel (Shervashidze et al.):
// node labels are iteratively refined by hashing each node's label
// together with the sorted multiset of its neighbors' labels; the
// embedding is the histogram of all labels observed at refinement
// depths 0..H. Two nodes share a depth-h label exactly when their
// radius-h neighborhood trees are identical, so the kernel counts
// matching local substructures — for event graphs, matching local
// communication structure.
//
// Event graphs are directed and direction is meaningful (a send's
// successors differ from its predecessors), so refinement hashes the
// in-neighbor and out-neighbor multisets separately when Directed is
// true (the default for NewWL). Edge kinds (program vs message) are
// folded into the neighbor contribution as well.
//
// Refinement is allocation-light: label strings are interned once per
// process (see Interner), the label arrays and neighbor-multiset
// buffer come from a pool, and multisets are sorted without the
// sort.Slice closure that used to dominate the profile. The feature
// values are byte-identical to the original string-hashing
// implementation — wl_golden_test.go pins that equivalence against a
// kept copy of the old code.
type WL struct {
	// H is the refinement depth. H=0 degenerates to the vertex
	// histogram kernel. ANACIN-X uses H=2.
	H int
	// Directed selects direction-aware refinement.
	Directed bool
	// Seed, when non-zero, passes the initial label hashes through a
	// seeded SplitMix64 mixer, inducing an independent feature
	// universe per seed. Measurements that agree across seeds cannot
	// be artifacts of a particular hash-collision pattern. Seed 0 is
	// the canonical universe (plain FNV-1a labels).
	Seed uint64
}

// NewWL returns the repository-default Weisfeiler-Lehman kernel at
// depth h: direction-aware refinement.
func NewWL(h int) WL {
	if h < 0 {
		panic(fmt.Sprintf("kernel: negative WL depth %d", h))
	}
	return WL{H: h, Directed: true}
}

// Name implements Kernel.
func (w WL) Name() string {
	dir := "d"
	if !w.Directed {
		dir = "u"
	}
	if w.Seed != 0 {
		return fmt.Sprintf("wlst-h%d%s-s%x", w.H, dir, w.Seed)
	}
	return fmt.Sprintf("wlst-h%d%s", w.H, dir)
}

// inOutSeparator separates the in-multiset from the out-multiset in the
// refinement hash (arbitrary odd constant).
const inOutSeparator = 0x9ae16a3b2f90404f

// Features implements Kernel. It panics on a negative depth: NewWL
// already rejects one, but a WL{H: -1} literal used to slip through and
// silently behave like H=0, which misreports what was measured.
func (w WL) Features(g *graph.Graph) FeatureVector {
	if w.H < 0 {
		panic(fmt.Sprintf("kernel: WL.Features called with negative depth H=%d (construct with NewWL, or set H >= 0)", w.H))
	}
	n := g.NumNodes()
	if n == 0 {
		return FeatureVector{}
	}

	sc := wlScratchPool.Get().(*wlScratch)
	labels := grow(sc.labels, n)
	next := grow(sc.next, n)
	neigh := sc.neigh[:0]
	b := newVecBuilder(n * (w.H + 1))

	for i := range g.Nodes {
		labels[i] = labelInterner.Hash(g.Nodes[i].Label)
	}
	if w.Seed != 0 {
		for i := range labels {
			labels[i] = splitmix64(labels[i] ^ w.Seed)
		}
	}
	// Mix the depth in so equal hashes at different depths count as
	// distinct features. The depth prefix is constant per round, so it
	// is folded once instead of once per node.
	depthPrefix := hashWord(fnvOffset, 0)
	for i := range labels {
		b.add(hashWord(depthPrefix, labels[i]))
	}

	for depth := 1; depth <= w.H; depth++ {
		depthPrefix = hashWord(fnvOffset, uint64(depth))
		for i := 0; i < n; i++ {
			h := hashWord(fnvOffset, labels[i])
			if w.Directed {
				neigh = neigh[:0]
				for _, ei := range g.In[i] {
					neigh = append(neigh, contribution(g.Edges[ei].Kind, labels[g.Edges[ei].From]))
				}
				h = foldSorted(h, neigh)
				h = hashWord(h, inOutSeparator)
				neigh = neigh[:0]
				for _, ei := range g.Out[i] {
					neigh = append(neigh, contribution(g.Edges[ei].Kind, labels[g.Edges[ei].To]))
				}
				h = foldSorted(h, neigh)
			} else {
				neigh = neigh[:0]
				for _, ei := range g.In[i] {
					neigh = append(neigh, contribution(g.Edges[ei].Kind, labels[g.Edges[ei].From]))
				}
				for _, ei := range g.Out[i] {
					neigh = append(neigh, contribution(g.Edges[ei].Kind, labels[g.Edges[ei].To]))
				}
				h = foldSorted(h, neigh)
			}
			next[i] = h
			b.add(hashWord(depthPrefix, h))
		}
		labels, next = next, labels
	}

	sc.labels, sc.next, sc.neigh = labels, next, neigh
	wlScratchPool.Put(sc)
	return b.finish()
}

// contribution hashes one neighbor's (edge kind, current label).
func contribution(edgeKind graph.EdgeKind, label uint64) uint64 {
	return hashWord(uint64(edgeKind)+1, label)
}

// foldSorted sorts the multiset in place and folds it into h.
func foldSorted(h uint64, s []uint64) uint64 {
	sortU64(s)
	for _, v := range s {
		h = hashWord(h, v)
	}
	return h
}
