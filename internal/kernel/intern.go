package kernel

import (
	"slices"
	"sync"
)

// Interner maps label strings to dense uint32 ids and memoizes each
// distinct label's FNV-1a hash, so refinement hashes every distinct
// label string exactly once per process instead of once per node per
// Features call. Event-graph labels are MPI operation names — a few
// dozen distinct strings regardless of graph size — so the table stays
// tiny and the steady state of Features is pure map lookups.
//
// An Interner is safe for concurrent use: the parallel Gram-matrix
// build embeds graphs from many goroutines against the shared
// package-level table.
type Interner struct {
	mu     sync.RWMutex
	ids    map[string]uint32
	labels []string
	hashes []uint64
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]uint32, 32)}
}

// labelInterner memoizes label hashes for every kernel in the package.
// Growth is bounded by the number of distinct event labels the process
// ever sees (MPI op names), not by graph count or size.
var labelInterner = NewInterner()

// Intern returns the dense id of s, assigning the next free id on
// first sight. Ids are stable for the lifetime of the interner and
// contiguous from 0.
func (in *Interner) Intern(s string) uint32 {
	in.mu.RLock()
	id, ok := in.ids[s]
	in.mu.RUnlock()
	if ok {
		return id
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok = in.ids[s]; ok {
		return id
	}
	id = uint32(len(in.labels))
	in.ids[s] = id
	in.labels = append(in.labels, s)
	in.hashes = append(in.hashes, hashString(s))
	return id
}

// HashOf returns the FNV-1a hash of the label with dense id id. It
// panics if id was not returned by Intern.
func (in *Interner) HashOf(id uint32) uint64 {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.hashes[id]
}

// Hash interns s and returns its FNV-1a hash — byte-for-byte the value
// hashString(s) produces, computed once per distinct string.
func (in *Interner) Hash(s string) uint64 {
	in.mu.RLock()
	id, ok := in.ids[s]
	if ok {
		h := in.hashes[id]
		in.mu.RUnlock()
		return h
	}
	in.mu.RUnlock()
	return in.HashOf(in.Intern(s))
}

// LabelOf returns the label string with dense id id (the inverse of
// Intern). It panics if id was not returned by Intern.
func (in *Interner) LabelOf(id uint32) string {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.labels[id]
}

// Len returns the number of distinct labels interned so far.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.labels)
}

// splitmix64 is the SplitMix64 finalizer (Steele et al.): a cheap
// bijective mixer with full avalanche. Seeded WL variants pass initial
// label hashes through it so that every seed induces an independent
// feature universe — collision-robustness ablations re-run a
// measurement under several seeds and compare.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// wlScratch holds the per-call working set of WL.Features: the current
// and next label arrays and the neighbor-multiset buffer. Pooling it
// makes repeated embeddings (Gram matrices embed every graph of a
// 20-run sample) allocation-light.
type wlScratch struct {
	labels []uint64
	next   []uint64
	neigh  []uint64
}

var wlScratchPool = sync.Pool{New: func() any { return new(wlScratch) }}

// grow returns s resized to n, reallocating only when capacity is
// short. Contents are not zeroed — callers overwrite every element.
func grow(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

// sortU64 sorts the multiset in place without allocating (unlike
// sort.Slice, whose closure and interface header escape — the dominant
// allocation of the pre-interner refinement loop).
func sortU64(s []uint64) { slices.Sort(s) }
