package kernel

import (
	"fmt"
	"testing"

	"github.com/anacin-go/anacinx/internal/graph"
)

// BenchmarkWLFeaturesH2Rank32 measures the interned WL path on the
// H=2, 32-rank scenario — the acceptance benchmark for the
// allocation-light refinement (compare against
// BenchmarkWLFeaturesReferenceH2Rank32, the pre-interner
// implementation kept in wl_golden_test.go). The same workload backs
// the "wl-features/h2/r32" scenario of `anacin bench`, so Go-benchmark
// numbers and BENCH.json numbers are directly comparable.
func BenchmarkWLFeaturesH2Rank32(b *testing.B) {
	g := meshGraph(b, 32, 4, 100, 1)
	w := NewWL(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := w.Features(g)
		if f.Len() == 0 {
			b.Fatal("empty features")
		}
	}
}

// BenchmarkWLFeaturesDepth sweeps the refinement depth on the 32-rank
// scenario: cost should grow roughly linearly in H.
func BenchmarkWLFeaturesDepth(b *testing.B) {
	g := meshGraph(b, 32, 4, 100, 1)
	for _, h := range []int{0, 1, 2, 4} {
		b.Run(fmt.Sprintf("h=%d", h), func(b *testing.B) {
			w := NewWL(h)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w.Features(g)
			}
		})
	}
}

// BenchmarkWLGramRank16 measures the parallel Gram-matrix build over a
// 12-graph sample at several worker counts (the "gram/*" bench
// scenarios).
func BenchmarkWLGramRank16(b *testing.B) {
	graphs := make([]*graph.Graph, 12)
	for i := range graphs {
		graphs[i] = meshGraph(b, 16, 3, 100, int64(i+1))
	}
	w := NewWL(2)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := NewMatrixWorkers(w, graphs, workers)
				if m.Len() != len(graphs) {
					b.Fatal("bad matrix")
				}
			}
		})
	}
}
