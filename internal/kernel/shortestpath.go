package kernel

import (
	"github.com/anacin-go/anacinx/internal/graph"
)

// ShortestPath is the shortest-path graph kernel (Borgwardt & Kriegel,
// ICDM 2005): the embedding is the histogram of
// (source label, shortest-path length, destination label) triples over
// all connected ordered node pairs, with path lengths computed on the
// directed event graph and capped at MaxDepth (longer connections
// count as MaxDepth). Compared to WL it sees long-range structure —
// e.g. how far apart two receives sit along a rank — at a higher cost:
// a BFS per node, O(V·(V+E)).
//
// MaxDepth keeps both cost and feature explosion bounded on long
// event chains; ANACIN-X-scale graphs (thousands of nodes) stay fast.
type ShortestPath struct {
	// MaxDepth caps BFS depth; 0 means the default of 8.
	MaxDepth int
}

// Name implements Kernel.
func (k ShortestPath) Name() string { return "shortest-path" }

func (k ShortestPath) maxDepth() int {
	if k.MaxDepth <= 0 {
		return 8
	}
	return k.MaxDepth
}

// Features implements Kernel.
func (k ShortestPath) Features(g *graph.Graph) FeatureVector {
	n := g.NumNodes()
	if n == 0 {
		return FeatureVector{}
	}
	b := newVecBuilder(4 * n)
	maxDepth := k.maxDepth()
	labels := make([]uint64, n)
	for i := range g.Nodes {
		labels[i] = hashString(g.Nodes[i].Label)
	}
	// BFS from every node over out-edges.
	dist := make([]int, n)
	queue := make([]int32, 0, n)
	for src := 0; src < n; src++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue = queue[:0]
		queue = append(queue, int32(src))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			if dist[u] >= maxDepth {
				continue
			}
			for _, ei := range g.Out[u] {
				v := g.Edges[ei].To
				if dist[v] == -1 {
					dist[v] = dist[u] + 1
					queue = append(queue, int32(v))
				}
			}
		}
		for v := 0; v < n; v++ {
			if v == src || dist[v] <= 0 {
				continue
			}
			h := hashWord(fnvOffset, labels[src])
			h = hashWord(h, uint64(dist[v]))
			h = hashWord(h, labels[v])
			b.add(h)
		}
	}
	return b.finish()
}
