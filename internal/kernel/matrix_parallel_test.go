package kernel

import (
	"testing"

	"github.com/anacin-go/anacinx/internal/graph"
)

// TestNewMatrixWorkerCountInvariant pins the parallel Gram-matrix build
// to the sequential result: every worker count must produce the exact
// same matrix (float-for-float — the parallel path reorders scheduling,
// never arithmetic).
func TestNewMatrixWorkerCountInvariant(t *testing.T) {
	graphs := make([]*graph.Graph, 9)
	for i := range graphs {
		graphs[i] = meshGraph(t, 6, 3, 100, int64(i+1))
	}
	for _, k := range allKernels {
		want := newMatrix(k, graphs, 1, nil)
		for _, workers := range []int{2, 3, 8, 64} {
			got := newMatrix(k, graphs, workers, nil)
			if got.KernelName != want.KernelName || got.Len() != want.Len() {
				t.Fatalf("%s workers=%d: shape mismatch", k.Name(), workers)
			}
			for i := 0; i < want.Len(); i++ {
				for j := 0; j < want.Len(); j++ {
					if got.K[i][j] != want.K[i][j] {
						t.Errorf("%s workers=%d: K[%d][%d] = %v, want %v",
							k.Name(), workers, i, j, got.K[i][j], want.K[i][j])
					}
				}
			}
			if err := got.CheckPSD(1e-9); err != nil {
				t.Errorf("%s workers=%d: %v", k.Name(), workers, err)
			}
		}
	}
}

// TestNewMatrixSmallInputs exercises the degenerate sizes the worker
// pool must not trip over.
func TestNewMatrixSmallInputs(t *testing.T) {
	k := NewWL(2)
	if m := NewMatrix(k, nil); m.Len() != 0 {
		t.Errorf("empty input gave %d rows", m.Len())
	}
	one := []*graph.Graph{meshGraph(t, 4, 2, 0, 1)}
	m := NewMatrix(k, one)
	if m.Len() != 1 || m.K[0][0] <= 0 {
		t.Errorf("single-graph matrix: %+v", m)
	}
}
