package kernel

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"github.com/anacin-go/anacinx/internal/graph"
)

// referenceWLFeatures is the pre-interner WL refinement, kept verbatim
// as the golden oracle: string labels are hashed per node per call,
// multisets are sorted with sort.Slice, and the depth prefix is
// re-derived per feature. The production path must reproduce its
// histograms bit for bit — only the allocation profile may differ.
func referenceWLFeatures(w WL, g *graph.Graph) Features {
	n := g.NumNodes()
	feats := make(Features, n/2+8)
	if n == 0 {
		return feats
	}
	labels := make([]uint64, n)
	for i := range g.Nodes {
		labels[i] = hashString(g.Nodes[i].Label)
	}
	add := func(depth int, label uint64) {
		feats[hashWord(hashWord(fnvOffset, uint64(depth)), label)]++
	}
	for i := range labels {
		add(0, labels[i])
	}
	next := make([]uint64, n)
	var scratch []uint64
	refFold := func(h uint64, s []uint64) uint64 {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		for _, v := range s {
			h = hashWord(h, v)
		}
		return h
	}
	for depth := 1; depth <= w.H; depth++ {
		for i := 0; i < n; i++ {
			h := hashWord(fnvOffset, labels[i])
			if w.Directed {
				scratch = scratch[:0]
				for _, ei := range g.In[i] {
					scratch = append(scratch, contribution(g.Edges[ei].Kind, labels[g.Edges[ei].From]))
				}
				h = refFold(h, scratch)
				h = hashWord(h, inOutSeparator)
				scratch = scratch[:0]
				for _, ei := range g.Out[i] {
					scratch = append(scratch, contribution(g.Edges[ei].Kind, labels[g.Edges[ei].To]))
				}
				h = refFold(h, scratch)
			} else {
				scratch = scratch[:0]
				for _, ei := range g.In[i] {
					scratch = append(scratch, contribution(g.Edges[ei].Kind, labels[g.Edges[ei].From]))
				}
				for _, ei := range g.Out[i] {
					scratch = append(scratch, contribution(g.Edges[ei].Kind, labels[g.Edges[ei].To]))
				}
				h = refFold(h, scratch)
			}
			next[i] = h
			add(depth, h)
		}
		labels, next = next, labels
	}
	return feats
}

// goldenGraphs is the cross-section of event graphs the golden tests
// pin: varying rank counts, rounds, ND levels, and seeds.
func goldenGraphs(t testing.TB) []*graph.Graph {
	t.Helper()
	var gs []*graph.Graph
	for _, spec := range []struct {
		procs, rounds int
		nd            float64
		seed          int64
	}{
		{2, 1, 0, 1},
		{4, 2, 100, 3},
		{8, 3, 50, 7},
		{16, 2, 100, 11},
		{32, 4, 100, 1},
	} {
		gs = append(gs, meshGraph(t, spec.procs, spec.rounds, spec.nd, spec.seed))
	}
	return gs
}

// TestWLGoldenFeatures pins the interned refinement byte-identical to
// the reference implementation across depths and both directedness
// modes.
func TestWLGoldenFeatures(t *testing.T) {
	for _, g := range goldenGraphs(t) {
		for h := 0; h <= 4; h++ {
			for _, directed := range []bool{true, false} {
				w := WL{H: h, Directed: directed}
				got := w.Features(g)
				want := referenceWLFeatures(w, g)
				if !reflect.DeepEqual(got.ToMap(), want) {
					t.Fatalf("%s on %d-node graph: sorted-vector features diverge from reference (%d vs %d entries)",
						w.Name(), g.NumNodes(), got.Len(), len(want))
				}
				if !reflect.DeepEqual(got, FromMap(want)) {
					t.Fatalf("%s on %d-node graph: vector layout diverges from FromMap(reference)", w.Name(), g.NumNodes())
				}
			}
		}
	}
	// Repeated calls must be stable (scratch pooling must not leak
	// state between embeddings).
	g := goldenGraphs(t)[2]
	w := NewWL(2)
	first := w.Features(g)
	for i := 0; i < 3; i++ {
		if !reflect.DeepEqual(w.Features(g), first) {
			t.Fatal("repeated Features calls disagree — scratch reuse leaks state")
		}
	}
}

// TestWLGoldenGram pins the Gram matrix built from interned embeddings
// identical to one built from reference embeddings, at several worker
// counts.
func TestWLGoldenGram(t *testing.T) {
	graphs := goldenGraphs(t)
	w := NewWL(2)
	ref := make([]Features, len(graphs))
	for i, g := range graphs {
		ref[i] = referenceWLFeatures(w, g)
	}
	n := len(graphs)
	want := make([][]float64, n)
	for i := range want {
		want[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			want[i][j] = ref[i].Dot(ref[j])
		}
	}
	for _, workers := range []int{1, 4} {
		m := NewMatrixWorkers(w, graphs, workers)
		if !reflect.DeepEqual(m.K, want) {
			t.Fatalf("workers=%d: Gram matrix diverges from reference-path matrix", workers)
		}
	}
}

// TestWLFeaturesNegativeDepth pins the bugfix: a WL{H: -1} literal
// bypasses NewWL's validation and used to silently behave like H=0;
// Features must now refuse it with a contextful panic.
func TestWLFeaturesNegativeDepth(t *testing.T) {
	g := meshGraph(t, 2, 1, 0, 1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("WL{H:-1}.Features did not panic")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "negative depth") || !strings.Contains(msg, "-1") {
			t.Fatalf("panic message %q lacks context", msg)
		}
	}()
	WL{H: -1, Directed: true}.Features(g)
}

// TestWLSeeded covers the seeded feature universes: a non-zero seed is
// deterministic, distance-preserving on identical graphs, and induces
// a feature universe disjoint in hash identity from seed 0.
func TestWLSeeded(t *testing.T) {
	g1 := meshGraph(t, 8, 3, 100, 5)
	g2 := meshGraph(t, 8, 3, 100, 5) // same seed → identical run
	base := WL{H: 2, Directed: true}
	seeded := WL{H: 2, Directed: true, Seed: 0xdecafbad}
	if base.Name() == seeded.Name() {
		t.Fatal("seeded kernel must carry the seed in its name")
	}
	if !reflect.DeepEqual(seeded.Features(g1), seeded.Features(g1)) {
		t.Fatal("seeded features are not deterministic")
	}
	if reflect.DeepEqual(seeded.Features(g1), base.Features(g1)) {
		t.Fatal("seeded features equal unseeded features")
	}
	if d := Distance(seeded, g1, g2); d != 0 {
		t.Fatalf("seeded kernel: identical graphs at distance %v", d)
	}
	// Histogram mass is seed-invariant: mixing relabels features but
	// preserves multiplicities.
	mass := func(f FeatureVector) (m float64) {
		for _, v := range f.Vals {
			m += v
		}
		return
	}
	if a, b := mass(base.Features(g1)), mass(seeded.Features(g1)); a != b {
		t.Fatalf("histogram mass changed under seeding: %v vs %v", a, b)
	}
}

// BenchmarkWLFeaturesReferenceH2Rank32 is the pre-interner
// implementation on the acceptance scenario; compare with
// BenchmarkWLFeaturesH2Rank32 (`go test -bench WL -benchmem`) to see
// the allocation delta the interned path buys.
func BenchmarkWLFeaturesReferenceH2Rank32(b *testing.B) {
	g := meshGraph(b, 32, 4, 100, 1)
	w := NewWL(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := referenceWLFeatures(w, g)
		if len(f) == 0 {
			b.Fatal("empty features")
		}
	}
}
