package kernel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/anacin-go/anacinx/internal/graph"
)

// Matrix is a precomputed kernel (Gram) matrix over a set of graphs.
// Features are computed once per graph, so building the matrix costs
// n embeddings plus n(n+1)/2 dot products.
type Matrix struct {
	// KernelName records which kernel produced the matrix.
	KernelName string
	// K holds the kernel values, K[i][j] = k(G_i, G_j).
	K [][]float64
}

// NewMatrix computes the Gram matrix of the given graphs under k. The
// n embeddings and the n(n+1)/2 dot products are independent, so both
// stages fan out across the machine's cores; every value is written to
// a fixed index, so the matrix is identical to the sequential result.
func NewMatrix(k Kernel, graphs []*graph.Graph) *Matrix {
	return newMatrix(k, graphs, defaultWorkers(), nil)
}

// NewMatrixWorkers is NewMatrix with an explicit worker count. Tests
// sweep it to pin down scheduling-independence, and the perf harness
// uses it to chart Gram-matrix scaling at fixed parallelism
// (`anacin bench`'s gram/* scenarios).
func NewMatrixWorkers(k Kernel, graphs []*graph.Graph, workers int) *Matrix {
	if workers < 1 {
		workers = 1
	}
	return newMatrix(k, graphs, workers, nil)
}

// defaultWorkers is the worker count the parallel stages use when the
// caller does not pin one.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// newMatrix is the shared implementation: explicit worker count,
// optional embedding cache (nil computes every embedding).
func newMatrix(k Kernel, graphs []*graph.Graph, workers int, cache *Cache) *Matrix {
	n := len(graphs)
	// Degenerate sizes, handled explicitly rather than by trusting the
	// worker pool's edge behavior: no graphs means a 0x0 matrix (still
	// carrying the kernel name), and one graph means a single
	// self-similarity value with no pairwise stage at all.
	switch n {
	case 0:
		return &Matrix{KernelName: k.Name(), K: [][]float64{}}
	case 1:
		f := cache.Features(k, graphs[0])
		return &Matrix{KernelName: k.Name(), K: [][]float64{{f.Dot(f)}}}
	}
	if workers > n {
		workers = n
	}
	m := &Matrix{KernelName: k.Name(), K: make([][]float64, n)}
	for i := range m.K {
		m.K[i] = make([]float64, n)
	}
	feats := make([]FeatureVector, n)
	if workers < 2 {
		for i, g := range graphs {
			feats[i] = cache.Features(k, g)
		}
		fillRows(feats, m.K, 0, n)
		return m
	}

	// Stage 1: embed each graph. Indices are claimed with an atomic
	// cursor so a slow embedding does not stall its neighbours.
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				feats[i] = cache.Features(k, graphs[i])
			}
		}()
	}
	wg.Wait()

	// Stage 2: the upper-triangle dot products, one row at a time. Rows
	// shrink linearly (row i has n-i products), so work-stealing rows
	// off a shared cursor balances better than pre-chunking.
	cursor.Store(0)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				fillRows(feats, m.K, i, i+1)
			}
		}()
	}
	wg.Wait()
	return m
}

// MatrixFromFeatures builds a Gram matrix from already-computed
// embeddings — the streaming campaign path embeds each run as its trace
// is consumed, so no graphs exist by matrix time. The degenerate sizes
// and the dot-product order match newMatrix exactly, making the matrix
// (and every distance derived from it) byte-identical to the
// graph-based construction over the same embeddings.
func MatrixFromFeatures(kernelName string, feats []FeatureVector) *Matrix {
	n := len(feats)
	switch n {
	case 0:
		return &Matrix{KernelName: kernelName, K: [][]float64{}}
	case 1:
		f := feats[0]
		return &Matrix{KernelName: kernelName, K: [][]float64{{f.Dot(f)}}}
	}
	m := &Matrix{KernelName: kernelName, K: make([][]float64, n)}
	for i := range m.K {
		m.K[i] = make([]float64, n)
	}
	fillRows(feats, m.K, 0, n)
	return m
}

// fillRows computes rows [lo, hi) of the upper triangle (and mirrors
// them) from the embedded features.
func fillRows(feats []FeatureVector, K [][]float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		for j := i; j < len(feats); j++ {
			v := feats[i].Dot(feats[j])
			K[i][j] = v
			K[j][i] = v
		}
	}
}

// Len returns the number of graphs the matrix covers.
func (m *Matrix) Len() int { return len(m.K) }

// Value returns k(G_i, G_j).
func (m *Matrix) Value(i, j int) float64 { return m.K[i][j] }

// Distance returns the kernel distance between graphs i and j.
func (m *Matrix) Distance(i, j int) float64 {
	return DistanceFromValues(m.K[i][i], m.K[j][j], m.K[i][j])
}

// PairwiseDistances returns the n(n-1)/2 distances of the strict upper
// triangle, ordered (0,1), (0,2), ..., (n-2,n-1). This is the sample of
// kernel distances the paper's violin plots draw: every unordered pair
// of runs contributes one observation of "how different can two
// executions of this configuration be".
func (m *Matrix) PairwiseDistances() []float64 {
	n := m.Len()
	out := make([]float64, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out = append(out, m.Distance(i, j))
		}
	}
	return out
}

// DistancesToFirst returns the distances of graphs 1..n-1 to graph 0,
// an alternative sample construction that designates run 0 as the
// reference execution.
func (m *Matrix) DistancesToFirst() []float64 {
	n := m.Len()
	out := make([]float64, 0, n-1)
	for j := 1; j < n; j++ {
		out = append(out, m.Distance(0, j))
	}
	return out
}

// CheckPSD verifies the matrix is (numerically) positive semidefinite
// by confirming every 2x2 principal minor is non-negative within tol —
// a cheap necessary condition used by tests; explicit-feature-map
// kernels are PSD by construction, so a violation indicates a bug.
func (m *Matrix) CheckPSD(tol float64) error {
	n := m.Len()
	for i := 0; i < n; i++ {
		if m.K[i][i] < -tol {
			return fmt.Errorf("kernel: negative self-similarity K[%d][%d] = %v", i, i, m.K[i][i])
		}
		for j := i + 1; j < n; j++ {
			if m.K[i][j] != m.K[j][i] {
				return fmt.Errorf("kernel: asymmetric at (%d,%d)", i, j)
			}
			minor := m.K[i][i]*m.K[j][j] - m.K[i][j]*m.K[i][j]
			if minor < -tol {
				return fmt.Errorf("kernel: 2x2 minor (%d,%d) = %v < 0", i, j, minor)
			}
		}
	}
	return nil
}

// PairwiseDistances is the package-level convenience: embed, build the
// Gram matrix, and return the upper-triangle distance sample.
func PairwiseDistances(k Kernel, graphs []*graph.Graph) []float64 {
	return NewMatrix(k, graphs).PairwiseDistances()
}
