package kernel

import (
	"fmt"
	"math"
)

// Fingerprint is a 128-bit content hash: two independent 64-bit mixes
// (FNV-1a word folding and a SplitMix64 chain) over the same input
// sequence. It is the key type of every content-addressed layer in the
// pipeline — Cache keys graph embeddings with it, and the campaign
// layer keys whole grid cells with it — because at 128 bits an
// accidental collision across even millions of entries is vanishingly
// unlikely (birthday bound ~n²/2¹²⁹).
type Fingerprint [2]uint64

// String renders the fingerprint as 32 lowercase hex digits, the form
// used in HTTP APIs and logs.
func (f Fingerprint) String() string {
	return fmt.Sprintf("%016x%016x", f[0], f[1])
}

// Fingerprinter accumulates a Fingerprint by folding words and strings
// in sequence. The zero value is not ready to use; start from
// NewFingerprinter. Fold order matters: distinct sequences produce
// distinct fingerprints, so callers should fold a fixed schema
// (ideally starting with a version tag) rather than a sorted bag.
type Fingerprinter struct {
	h1, h2 uint64
}

// NewFingerprinter returns a Fingerprinter in the canonical initial
// state shared with the graph fingerprint in Cache.
func NewFingerprinter() Fingerprinter {
	return Fingerprinter{h1: fnvOffset, h2: splitmix64(fnvOffset)}
}

// Word folds one 64-bit word into both mixes.
func (f *Fingerprinter) Word(w uint64) {
	f.h1 = hashWord(f.h1, w)
	f.h2 = splitmix64(f.h2 ^ w)
}

// Int folds a signed integer.
func (f *Fingerprinter) Int(v int64) { f.Word(uint64(v)) }

// Float folds a float64 by its IEEE-754 bit pattern, so every distinct
// value (including signed zeros and NaNs with different payloads) is a
// distinct input.
func (f *Fingerprinter) Float(v float64) { f.Word(math.Float64bits(v)) }

// Bool folds a boolean.
func (f *Fingerprinter) Bool(b bool) {
	if b {
		f.Word(1)
	} else {
		f.Word(0)
	}
}

// String folds a string as its length followed by its 64-bit FNV-1a
// hash, so adjacent strings cannot alias by concatenation.
func (f *Fingerprinter) String(s string) {
	f.Word(uint64(len(s)))
	f.Word(hashString(s))
}

// Sum returns the fingerprint of everything folded so far. The
// Fingerprinter remains usable; further folds extend the sequence.
func (f *Fingerprinter) Sum() Fingerprint {
	return Fingerprint{f.h1, f.h2}
}
