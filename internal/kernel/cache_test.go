package kernel

import (
	"reflect"
	"sync"
	"testing"

	"github.com/anacin-go/anacinx/internal/graph"
)

func TestCacheFeaturesMemoizes(t *testing.T) {
	g := meshGraph(t, 8, 3, 100, 1)
	k := NewWL(2)
	c := NewCache()
	direct := k.Features(g)
	first := c.Features(k, g)
	if !reflect.DeepEqual(first, direct) {
		t.Fatal("cached embedding differs from direct embedding")
	}
	if c.Len() != 1 || c.Misses() != 1 || c.Hits() != 0 {
		t.Fatalf("after first call: len=%d hits=%d misses=%d", c.Len(), c.Hits(), c.Misses())
	}
	second := c.Features(k, g)
	if !reflect.DeepEqual(second, direct) {
		t.Fatal("hit returned a different embedding")
	}
	if c.Len() != 1 || c.Hits() != 1 {
		t.Fatalf("after second call: len=%d hits=%d", c.Len(), c.Hits())
	}
}

// TestCacheContentAddressed pins the property the pipeline relies on:
// a structurally identical graph that is a distinct object — here the
// whole-graph "slice" SliceByLamport(1) reconstructs — hits the entry
// the original graph populated.
func TestCacheContentAddressed(t *testing.T) {
	g := meshGraph(t, 8, 3, 100, 5)
	k := NewWL(2)
	c := NewCache()
	want := c.Features(k, g)
	whole, err := g.SliceByLamport(1)
	if err != nil {
		t.Fatal(err)
	}
	got := c.Features(k, whole[0])
	if !reflect.DeepEqual(got, want) {
		t.Fatal("reconstructed whole graph embedded differently")
	}
	if c.Hits() != 1 || c.Len() != 1 {
		t.Fatalf("reconstructed graph missed the cache: len=%d hits=%d misses=%d",
			c.Len(), c.Hits(), c.Misses())
	}
}

// TestCacheKeysByKernel: different kernels (and differently-configured
// WL variants) must not share entries.
func TestCacheKeysByKernel(t *testing.T) {
	g := meshGraph(t, 6, 2, 100, 3)
	c := NewCache()
	kernels := []Kernel{NewWL(1), NewWL(2), WL{H: 2, Directed: false},
		WL{H: 2, Directed: true, Seed: 0xbeef}, VertexHistogram{}, EdgeHistogram{}}
	for _, k := range kernels {
		if got, want := c.Features(k, g), k.Features(g); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: cached embedding differs", k.Name())
		}
	}
	if c.Len() != len(kernels) {
		t.Fatalf("cache holds %d entries, want %d", c.Len(), len(kernels))
	}
}

// TestCacheDistinguishesGraphs: graphs that differ only in wiring (same
// label multiset) must get distinct entries — the fingerprint covers
// edges, not just labels.
func TestCacheDistinguishesGraphs(t *testing.T) {
	g1 := meshGraph(t, 8, 4, 100, 1)
	g2 := meshGraph(t, 8, 4, 100, 2) // different match order, same events
	c := NewCache()
	k := NewWL(2)
	f1 := c.Features(k, g1)
	f2 := c.Features(k, g2)
	if c.Len() != 2 {
		t.Fatalf("two distinct graphs share a cache entry (len=%d)", c.Len())
	}
	if reflect.DeepEqual(f1, f2) {
		t.Fatal("distinct runs produced identical embeddings — workload not ND?")
	}
}

func TestNilCacheComputes(t *testing.T) {
	g := meshGraph(t, 6, 2, 100, 7)
	k := NewWL(2)
	var c *Cache
	if got, want := c.Features(k, g), k.Features(g); !reflect.DeepEqual(got, want) {
		t.Fatal("nil cache returned a different embedding")
	}
	if c.Len() != 0 || c.Hits() != 0 || c.Misses() != 0 {
		t.Fatal("nil cache reported non-zero stats")
	}
	m := c.NewMatrix(k, []*graph.Graph{g, g})
	if m.Len() != 2 || m.Distance(0, 1) != 0 {
		t.Fatalf("nil-cache matrix wrong: len=%d d=%v", m.Len(), m.Distance(0, 1))
	}
}

// TestCacheMatrixMatchesUncached pins the cached Gram build
// float-for-float to the uncached one, across worker counts and with a
// pre-warmed cache.
func TestCacheMatrixMatchesUncached(t *testing.T) {
	graphs := make([]*graph.Graph, 7)
	for i := range graphs {
		graphs[i] = meshGraph(t, 6, 3, 100, int64(i+1))
	}
	// Duplicate one graph so the cache sees a same-content collision
	// within a single matrix build.
	graphs = append(graphs, graphs[0])
	k := NewWL(2)
	want := NewMatrix(k, graphs)
	for _, workers := range []int{1, 4} {
		c := NewCache()
		got := c.NewMatrixWorkers(k, graphs, workers)
		if !reflect.DeepEqual(got.K, want.K) {
			t.Fatalf("workers=%d: cached matrix diverges from uncached", workers)
		}
		// 8 graph positions, 7 distinct contents.
		if c.Len() != 7 {
			t.Fatalf("workers=%d: cache holds %d embeddings, want 7", workers, c.Len())
		}
		// Second build must be all hits, no new entries.
		misses := c.Misses()
		again := c.NewMatrixWorkers(k, graphs, workers)
		if !reflect.DeepEqual(again.K, want.K) {
			t.Fatalf("workers=%d: warm rebuild diverges", workers)
		}
		if c.Misses() != misses {
			t.Fatalf("workers=%d: warm rebuild recomputed embeddings", workers)
		}
	}
}

func TestCachePairwiseDistances(t *testing.T) {
	graphs := make([]*graph.Graph, 5)
	for i := range graphs {
		graphs[i] = meshGraph(t, 6, 2, 100, int64(i+1))
	}
	k := NewWL(2)
	want := PairwiseDistances(k, graphs)
	c := NewCache()
	if got := c.PairwiseDistances(k, graphs); !reflect.DeepEqual(got, want) {
		t.Fatal("cached pairwise distances diverge")
	}
	if got := c.PairwiseDistances(k, graphs); !reflect.DeepEqual(got, want) {
		t.Fatal("warm cached pairwise distances diverge")
	}
}

// TestCacheConcurrent hammers one cache from many goroutines under
// -race: concurrent misses on the same key must stay correct.
func TestCacheConcurrent(t *testing.T) {
	graphs := make([]*graph.Graph, 4)
	for i := range graphs {
		graphs[i] = meshGraph(t, 6, 2, 100, int64(i+1))
	}
	k := NewWL(2)
	want := make([]FeatureVector, len(graphs))
	for i, g := range graphs {
		want[i] = k.Features(g)
	}
	c := NewCache()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				i := (w + rep) % len(graphs)
				if got := c.Features(k, graphs[i]); !reflect.DeepEqual(got, want[i]) {
					t.Errorf("goroutine %d: graph %d embedding diverged", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() != len(graphs) {
		t.Fatalf("cache len = %d, want %d", c.Len(), len(graphs))
	}
}

// TestNewMatrixDegenerateSizes pins the explicit n==0 / n==1 paths,
// uncached and through the cache entry point.
func TestNewMatrixDegenerateSizes(t *testing.T) {
	k := NewWL(2)
	m := NewMatrix(k, nil)
	if m.Len() != 0 || m.KernelName != k.Name() {
		t.Fatalf("empty matrix: len=%d name=%q", m.Len(), m.KernelName)
	}
	if got := m.PairwiseDistances(); len(got) != 0 {
		t.Fatalf("empty matrix has %d pairwise distances", len(got))
	}
	if err := m.CheckPSD(0); err != nil {
		t.Fatalf("empty matrix not PSD: %v", err)
	}

	g := meshGraph(t, 4, 2, 0, 1)
	c := NewCache()
	one := c.NewMatrixWorkers(k, []*graph.Graph{g}, 8)
	if one.Len() != 1 || one.K[0][0] <= 0 {
		t.Fatalf("single-graph matrix: %+v", one)
	}
	if one.Distance(0, 0) != 0 {
		t.Fatalf("self distance %v", one.Distance(0, 0))
	}
	if c.Len() != 1 {
		t.Fatalf("single-graph build cached %d embeddings", c.Len())
	}
	// The n==1 path must agree with the general path's diagonal.
	full := NewMatrix(k, []*graph.Graph{g, g})
	if one.K[0][0] != full.K[0][0] {
		t.Fatalf("n==1 self-similarity %v != general path %v", one.K[0][0], full.K[0][0])
	}
}
