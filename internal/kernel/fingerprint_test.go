package kernel

import (
	"math"
	"testing"
)

// TestFingerprinterDistinguishes pins the properties the
// content-addressed layers rely on: distinct fold sequences produce
// distinct fingerprints, and identical sequences reproduce the same
// fingerprint across independent Fingerprinters.
func TestFingerprinterDistinguishes(t *testing.T) {
	sum := func(fold func(fp *Fingerprinter)) Fingerprint {
		fp := NewFingerprinter()
		fold(&fp)
		return fp.Sum()
	}
	seen := map[Fingerprint]string{}
	add := func(name string, fold func(fp *Fingerprinter)) {
		got := sum(fold)
		if prev, ok := seen[got]; ok {
			t.Errorf("fingerprint collision between %q and %q: %v", prev, name, got)
		}
		seen[got] = name
		if again := sum(fold); again != got {
			t.Errorf("%s: fingerprint not reproducible: %v vs %v", name, got, again)
		}
	}
	// Bool and Float fold through Word, so scalar kinds alias on raw
	// words by design (schemas disambiguate by fold position); the
	// distinctions that must hold are between *values* of each kind.
	add("empty", func(fp *Fingerprinter) {})
	add("bool-false", func(fp *Fingerprinter) { fp.Bool(false) })
	add("bool-true", func(fp *Fingerprinter) { fp.Bool(true) })
	add("int-neg", func(fp *Fingerprinter) { fp.Int(-1) })
	add("float-1", func(fp *Fingerprinter) { fp.Float(1) })
	add("float-negzero", func(fp *Fingerprinter) { fp.Float(math.Copysign(0, -1)) })
	add("string-ab|c", func(fp *Fingerprinter) { fp.String("ab"); fp.String("c") })
	add("string-a|bc", func(fp *Fingerprinter) { fp.String("a"); fp.String("bc") })
	add("string-abc", func(fp *Fingerprinter) { fp.String("abc") })
	add("order-12", func(fp *Fingerprinter) { fp.Word(1); fp.Word(2) })
	add("order-21", func(fp *Fingerprinter) { fp.Word(2); fp.Word(1) })
}

func TestFingerprintString(t *testing.T) {
	f := Fingerprint{0x1, 0xabcdef0123456789}
	want := "0000000000000001abcdef0123456789"
	if got := f.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if len(f.String()) != 32 {
		t.Errorf("String() length = %d, want 32", len(f.String()))
	}
}

// TestGraphFingerprintUnchanged pins that the Fingerprinter refactor of
// the cache's graph fingerprint kept the scheme: structurally equal
// graphs collide, structurally distinct graphs do not (see cache tests
// for the full matrix); here we check the Fingerprinter-built value
// matches a hand-rolled replay of the historical fold sequence.
func TestGraphFingerprintUnchanged(t *testing.T) {
	g := meshGraph(t, 4, 2, 100, 7)
	got := fingerprint(g)

	h1 := uint64(fnvOffset)
	h2 := splitmix64(fnvOffset)
	fold := func(w uint64) {
		h1 = hashWord(h1, w)
		h2 = splitmix64(h2 ^ w)
	}
	fold(uint64(len(g.Nodes)))
	for i := range g.Nodes {
		fold(labelInterner.Hash(g.Nodes[i].Label))
	}
	fold(uint64(len(g.Edges)))
	for i := range g.Edges {
		e := &g.Edges[i]
		fold(uint64(uint32(e.From)) | uint64(uint32(e.To))<<31 | uint64(e.Kind)<<63)
	}
	if want := (Fingerprint{h1, h2}); got != want {
		t.Errorf("graph fingerprint changed: got %v, want %v", got, want)
	}
}
