package kernel

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/anacin-go/anacinx/internal/graph"
	"github.com/anacin-go/anacinx/internal/sim"
	"github.com/anacin-go/anacinx/internal/trace"
)

// meshTrace runs a small randomized-neighbor exchange whose match order
// shifts under ND: each rank sends `rounds` tagged messages to its ring
// neighbors and receives 2*rounds with AnySource.
func meshTrace(t testing.TB, procs, rounds int, nd float64, seed int64) *trace.Trace {
	t.Helper()
	cfg := sim.DefaultConfig(procs, seed)
	cfg.NDPercent = nd
	tr, _, err := sim.Run(cfg, trace.Meta{Pattern: "mini-mesh"}, func(r *sim.Rank) {
		p := r.Size()
		left, right := (r.Rank()-1+p)%p, (r.Rank()+1)%p
		for i := 0; i < rounds; i++ {
			r.SendSize(left, i, 1)
			r.SendSize(right, i, 1)
		}
		for i := 0; i < 2*rounds; i++ {
			r.Recv(sim.AnySource, sim.AnyTag)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func meshGraph(t testing.TB, procs, rounds int, nd float64, seed int64) *graph.Graph {
	t.Helper()
	g, err := graph.FromTrace(meshTrace(t, procs, rounds, nd, seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

var allKernels = []Kernel{NewWL(0), NewWL(1), NewWL(2), NewWL(3), WL{H: 2, Directed: false}, VertexHistogram{}, EdgeHistogram{}, ShortestPath{}}

func TestKernelNames(t *testing.T) {
	seen := make(map[string]bool)
	for _, k := range allKernels {
		name := k.Name()
		if name == "" || seen[name] {
			t.Errorf("kernel name %q empty or duplicated", name)
		}
		seen[name] = true
	}
	if NewWL(2).Name() != "wlst-h2d" {
		t.Errorf("WL name = %q", NewWL(2).Name())
	}
}

func TestNewWLPanicsOnNegativeDepth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewWL(-1) did not panic")
		}
	}()
	NewWL(-1)
}

func TestIdenticalGraphsDistanceZero(t *testing.T) {
	g1 := meshGraph(t, 6, 3, 100, 7)
	g2 := meshGraph(t, 6, 3, 100, 7) // same seed → identical run
	for _, k := range allKernels {
		if d := Distance(k, g1, g2); d != 0 {
			t.Errorf("%s: identical graphs have distance %v", k.Name(), d)
		}
		// Normalized distance goes through a cosine, so identical
		// graphs can land within float rounding of zero.
		if d := NormalizedDistance(k, g1, g2); d > 1e-6 {
			t.Errorf("%s: identical graphs have normalized distance %v", k.Name(), d)
		}
	}
}

func TestSelfDistanceZero(t *testing.T) {
	g := meshGraph(t, 5, 2, 100, 3)
	for _, k := range allKernels {
		if d := Distance(k, g, g); d != 0 {
			t.Errorf("%s: self distance %v", k.Name(), d)
		}
	}
}

func TestNDSeparatesRuns(t *testing.T) {
	// Two 100%-ND seeds of the mesh produce different match orders.
	// Depth-1 refinement sees only one hop and may miss the change —
	// depth 2 (the ANACIN-X configuration) and deeper must see it.
	g1 := meshGraph(t, 8, 4, 100, 1)
	g2 := meshGraph(t, 8, 4, 100, 2)
	for _, k := range []Kernel{NewWL(2), NewWL(3)} {
		if d := Distance(k, g1, g2); d <= 0 {
			t.Errorf("%s: distinct runs have distance %v", k.Name(), d)
		}
	}
	// The vertex histogram counts only event kinds, which match-order
	// changes preserve — the ablation blindness the package doc claims.
	if d := Distance(VertexHistogram{}, g1, g2); d != 0 {
		t.Errorf("vertex-hist: distance %v, want 0 (same event multiset)", d)
	}
}

func TestValueMatchesFeatures(t *testing.T) {
	g1 := meshGraph(t, 5, 2, 100, 1)
	g2 := meshGraph(t, 5, 2, 100, 2)
	k := NewWL(2)
	want := k.Features(g1).Dot(k.Features(g2))
	if got := Value(k, g1, g2); got != want {
		t.Errorf("Value = %v, want %v", got, want)
	}
}

func TestSymmetry(t *testing.T) {
	g1 := meshGraph(t, 6, 2, 100, 1)
	g2 := meshGraph(t, 6, 2, 100, 5)
	for _, k := range allKernels {
		if d1, d2 := Distance(k, g1, g2), Distance(k, g2, g1); d1 != d2 {
			t.Errorf("%s: asymmetric distance %v vs %v", k.Name(), d1, d2)
		}
		if v1, v2 := Value(k, g1, g2), Value(k, g2, g1); v1 != v2 {
			t.Errorf("%s: asymmetric value %v vs %v", k.Name(), v1, v2)
		}
	}
}

func TestTriangleInequality(t *testing.T) {
	// The kernel distance is a feature-space Euclidean distance, so the
	// triangle inequality must hold exactly (up to float tolerance).
	graphs := []*graph.Graph{
		meshGraph(t, 6, 3, 100, 1),
		meshGraph(t, 6, 3, 100, 2),
		meshGraph(t, 6, 3, 100, 3),
		meshGraph(t, 6, 2, 100, 4), // structurally different size
		meshGraph(t, 4, 3, 100, 5),
	}
	for _, k := range allKernels {
		m := NewMatrix(k, graphs)
		n := m.Len()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				for l := 0; l < n; l++ {
					dij, dil, dlj := m.Distance(i, j), m.Distance(i, l), m.Distance(l, j)
					if dij > dil+dlj+1e-9 {
						t.Fatalf("%s: triangle violated: d(%d,%d)=%v > %v+%v", k.Name(), i, j, dij, dil, dlj)
					}
				}
			}
		}
	}
}

func TestWLDepthZeroEqualsVertexHistogram(t *testing.T) {
	// WL with H=0 and the vertex histogram induce the same kernel
	// values (feature hashes differ, but dot products agree).
	g1 := meshGraph(t, 6, 2, 100, 1)
	g2 := meshGraph(t, 6, 2, 100, 9)
	wl0 := NewWL(0)
	vh := VertexHistogram{}
	if v1, v2 := Value(wl0, g1, g2), Value(vh, g1, g2); v1 != v2 {
		t.Errorf("wl0 value %v != vertex-hist value %v", v1, v2)
	}
	if d1, d2 := Distance(wl0, g1, g2), Distance(vh, g1, g2); d1 != d2 {
		t.Errorf("wl0 distance %v != vertex-hist distance %v", d1, d2)
	}
}

func TestDeeperWLSeesMore(t *testing.T) {
	// Increasing depth can only add features, so self-similarity grows
	// with H.
	g := meshGraph(t, 6, 3, 100, 2)
	prev := 0.0
	for h := 0; h <= 4; h++ {
		f := NewWL(h).Features(g)
		self := f.Dot(f)
		if self <= prev {
			t.Errorf("H=%d self-similarity %v not above H=%d's %v", h, self, h-1, prev)
		}
		prev = self
	}
}

func TestEmptyGraph(t *testing.T) {
	empty := &graph.Graph{}
	empty.Seal()
	g := meshGraph(t, 4, 2, 0, 1)
	for _, k := range allKernels {
		if d := Distance(k, empty, empty); d != 0 {
			t.Errorf("%s: empty-empty distance %v", k.Name(), d)
		}
		if d := NormalizedDistance(k, empty, empty); d != 0 {
			t.Errorf("%s: empty-empty normalized distance %v", k.Name(), d)
		}
		if d := NormalizedDistance(k, empty, g); d != math.Sqrt2 {
			t.Errorf("%s: empty-nonempty normalized distance %v, want sqrt2", k.Name(), d)
		}
		if d := Distance(k, empty, g); d <= 0 {
			t.Errorf("%s: empty-nonempty distance %v", k.Name(), d)
		}
	}
}

func TestNormalizedDistanceBounds(t *testing.T) {
	g1 := meshGraph(t, 8, 3, 100, 1)
	g2 := meshGraph(t, 4, 1, 100, 2)
	for _, k := range allKernels {
		d := NormalizedDistance(k, g1, g2)
		if d < 0 || d > math.Sqrt2 {
			t.Errorf("%s: normalized distance %v outside [0, sqrt2]", k.Name(), d)
		}
	}
}

func TestDistanceFromValuesClamps(t *testing.T) {
	// Cancellation can make k11+k22-2k12 slightly negative.
	if d := DistanceFromValues(1, 1, 1+1e-16); d != 0 {
		t.Errorf("clamped distance = %v, want 0", d)
	}
	if d := DistanceFromValues(4, 9, 0); d != math.Sqrt(13) {
		t.Errorf("distance = %v", d)
	}
}

func TestMatrixProperties(t *testing.T) {
	graphs := make([]*graph.Graph, 6)
	for i := range graphs {
		graphs[i] = meshGraph(t, 6, 3, 100, int64(i))
	}
	m := NewMatrix(NewWL(2), graphs)
	if m.Len() != 6 || m.KernelName != "wlst-h2d" {
		t.Errorf("matrix meta wrong: %d %q", m.Len(), m.KernelName)
	}
	if err := m.CheckPSD(1e-6); err != nil {
		t.Errorf("CheckPSD: %v", err)
	}
	for i := 0; i < 6; i++ {
		if m.Distance(i, i) != 0 {
			t.Errorf("diagonal distance (%d) = %v", i, m.Distance(i, i))
		}
	}
	pd := m.PairwiseDistances()
	if len(pd) != 15 {
		t.Fatalf("PairwiseDistances len = %d, want 15", len(pd))
	}
	if got := m.DistancesToFirst(); len(got) != 5 {
		t.Fatalf("DistancesToFirst len = %d, want 5", len(got))
	}
	// Spot-check correspondence: pd[0] is d(0,1), which DistancesToFirst
	// reports as its first element.
	if pd[0] != m.DistancesToFirst()[0] {
		t.Error("distance orderings disagree")
	}
}

func TestCheckPSDDetectsCorruption(t *testing.T) {
	graphs := []*graph.Graph{meshGraph(t, 4, 2, 0, 1), meshGraph(t, 4, 2, 0, 2)}
	m := NewMatrix(NewWL(1), graphs)
	m.K[0][1] = m.K[0][0]*m.K[1][1] + 1 // impossible cross term
	m.K[1][0] = m.K[0][1]
	if err := m.CheckPSD(1e-9); err == nil {
		t.Error("corrupted matrix passed CheckPSD")
	}
	m.K[1][0] = 0
	if err := m.CheckPSD(1e-9); err == nil {
		t.Error("asymmetric matrix passed CheckPSD")
	}
}

func TestPairwiseDistancesHelper(t *testing.T) {
	graphs := []*graph.Graph{
		meshGraph(t, 4, 2, 100, 1),
		meshGraph(t, 4, 2, 100, 2),
		meshGraph(t, 4, 2, 100, 3),
	}
	d := PairwiseDistances(NewWL(2), graphs)
	if len(d) != 3 {
		t.Fatalf("len = %d", len(d))
	}
	for _, v := range d {
		if v < 0 || math.IsNaN(v) {
			t.Errorf("bad distance %v", v)
		}
	}
}

func TestFeaturesDeterministic(t *testing.T) {
	g := meshGraph(t, 6, 3, 100, 11)
	for _, k := range allKernels {
		f1, f2 := k.Features(g), k.Features(g)
		if !reflect.DeepEqual(f1, f2) {
			t.Fatalf("%s: nondeterministic features", k.Name())
		}
		for i := 1; i < len(f1.Keys); i++ {
			if f1.Keys[i-1] >= f1.Keys[i] {
				t.Fatalf("%s: keys not strictly ascending at %d", k.Name(), i)
			}
		}
	}
}

// Property: distances are non-negative, symmetric, and zero on
// identical seeds, for arbitrary (seed, nd) draws.
func TestQuickDistanceAxioms(t *testing.T) {
	k := NewWL(2)
	f := func(seedA, seedB int64, ndRaw uint8) bool {
		nd := float64(ndRaw) / 255 * 100
		gA := meshGraph(t, 5, 2, nd, seedA)
		gB := meshGraph(t, 5, 2, nd, seedB)
		d := Distance(k, gA, gB)
		if d < 0 || math.IsNaN(d) {
			return false
		}
		if Distance(k, gB, gA) != d {
			return false
		}
		if seedA == seedB && d != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWL2Features(b *testing.B) {
	g := meshGraph(b, 16, 8, 100, 1)
	k := NewWL(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = k.Features(g)
	}
}

func BenchmarkMatrix20Runs(b *testing.B) {
	graphs := make([]*graph.Graph, 20)
	for i := range graphs {
		graphs[i] = meshGraph(b, 16, 4, 100, int64(i))
	}
	k := NewWL(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewMatrix(k, graphs)
	}
}
