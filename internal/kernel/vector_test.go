package kernel

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// buildShuffled constructs a FeatureVector from the given occurrence
// stream added in a permuted order.
func buildShuffled(occ []uint64, rng *rand.Rand) FeatureVector {
	perm := rng.Perm(len(occ))
	b := newVecBuilder(len(occ))
	for _, i := range perm {
		b.add(occ[i])
	}
	return b.finish()
}

// TestDotBitIdenticalAcrossRebuilds is the regression test for the
// latent non-determinism of the map-based Features.Dot: map iteration
// order made the float summation order vary run to run. The sorted
// representation must produce bit-identical vectors — and bit-identical
// Dot results — across 100 shuffled rebuilds of the same histogram.
func TestDotBitIdenticalAcrossRebuilds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// An occurrence stream with repeats (multiplicities > 1) and wide
	// key spread.
	var occ []uint64
	for i := 0; i < 400; i++ {
		occ = append(occ, splitmix64(uint64(rng.Intn(120))))
	}
	var occ2 []uint64
	for i := 0; i < 300; i++ {
		occ2 = append(occ2, splitmix64(uint64(40+rng.Intn(120))))
	}
	ref := buildShuffled(occ, rng)
	ref2 := buildShuffled(occ2, rng)
	wantSelf := math.Float64bits(ref.Dot(ref))
	wantCross := math.Float64bits(ref.Dot(ref2))
	for i := 0; i < 100; i++ {
		a := buildShuffled(occ, rng)
		b := buildShuffled(occ2, rng)
		if !reflect.DeepEqual(a, ref) || !reflect.DeepEqual(b, ref2) {
			t.Fatalf("rebuild %d: shuffled construction changed the vector", i)
		}
		if got := math.Float64bits(a.Dot(a)); got != wantSelf {
			t.Fatalf("rebuild %d: self dot bits %x, want %x", i, got, wantSelf)
		}
		if got := math.Float64bits(a.Dot(b)); got != wantCross {
			t.Fatalf("rebuild %d: cross dot bits %x, want %x", i, got, wantCross)
		}
		if a.Dot(b) != b.Dot(a) {
			t.Fatalf("rebuild %d: merge-join dot is not symmetric", i)
		}
	}
}

func TestFromMapToMapRoundTrip(t *testing.T) {
	m := Features{7: 2, 1: 5, 99: 1, 3: 0.5}
	fv := FromMap(m)
	for i := 1; i < len(fv.Keys); i++ {
		if fv.Keys[i-1] >= fv.Keys[i] {
			t.Fatalf("FromMap keys not strictly ascending: %v", fv.Keys)
		}
	}
	if !reflect.DeepEqual(fv.ToMap(), m) {
		t.Fatalf("round trip lost data: %v -> %v", m, fv.ToMap())
	}
	if fv.Len() != len(m) {
		t.Fatalf("Len = %d, want %d", fv.Len(), len(m))
	}
	if got, want := fv.Dot(fv), m.Dot(m); got != want {
		t.Fatalf("Dot = %v, want %v", got, want)
	}
}

func TestFeatureVectorDotBasics(t *testing.T) {
	a := FromMap(Features{1: 2, 5: 3, 9: 1})
	b := FromMap(Features{5: 4, 9: 2, 12: 7})
	if got := a.Dot(b); got != 3*4+1*2 {
		t.Fatalf("Dot = %v, want 14", got)
	}
	empty := FeatureVector{}
	if got := a.Dot(empty); got != 0 {
		t.Fatalf("dot with empty = %v", got)
	}
	if got := empty.Dot(empty); got != 0 {
		t.Fatalf("empty self dot = %v", got)
	}
	disjoint := FromMap(Features{2: 1, 6: 1})
	if got := a.Dot(disjoint); got != 0 {
		t.Fatalf("disjoint dot = %v", got)
	}
	if got, want := a.L2(), math.Sqrt(4+9+1); got != want {
		t.Fatalf("L2 = %v, want %v", got, want)
	}
}

// refDotSorted is the order-pinned oracle: products accumulated in
// ascending key order, exactly the order the merge join uses.
func refDotSorted(a, b Features) float64 {
	av := FromMap(a)
	sum := 0.0
	for i, k := range av.Keys {
		if w, ok := b[k]; ok {
			sum += av.Vals[i] * w
		}
	}
	return sum
}

// FuzzDotEquivalence differentially pins the merge-join Dot against
// the map implementation on random sparse inputs. Values are small
// integers (as in real histograms), so every partial sum is exact and
// the map's randomized summation order cannot change the result —
// making exact equality the right oracle for both comparisons.
func FuzzDotEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{3, 4, 9, 9})
	f.Add([]byte{}, []byte{0, 0, 0})
	f.Add([]byte{255, 254, 253}, []byte{255, 1})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		parse := func(raw []byte) Features {
			m := make(Features, len(raw)/2)
			for i := 0; i+1 < len(raw); i += 2 {
				// Mix the key byte so keys spread over the u64 space;
				// value in 1..8 keeps multiplicities realistic.
				m[splitmix64(uint64(raw[i]))] += float64(raw[i+1]%8 + 1)
			}
			return m
		}
		ma, mb := parse(rawA), parse(rawB)
		va, vb := FromMap(ma), FromMap(mb)
		got := va.Dot(vb)
		if want := ma.Dot(mb); got != want {
			t.Fatalf("merge-join Dot = %v, map Dot = %v", got, want)
		}
		if want := refDotSorted(ma, mb); got != want {
			t.Fatalf("merge-join Dot = %v, sorted reference = %v", got, want)
		}
		if back := vb.Dot(va); back != got {
			t.Fatalf("asymmetric: %v vs %v", got, back)
		}
	})
}
