package kernel

import (
	"sync"
	"sync/atomic"

	"github.com/anacin-go/anacinx/internal/graph"
)

// Cache is a content-addressed embedding cache: it memoizes
// Kernel.Features results keyed by (kernel name, structural graph
// fingerprint). One experiment typically pushes the same run set
// through several reductions — the violin distance sample, the
// slice profile, the root-source ranking — each of which used to
// re-embed every graph from scratch. With a shared Cache each distinct
// graph is embedded exactly once per kernel.
//
// Content addressing (rather than pointer identity) means structurally
// identical graphs share an entry even when they are distinct objects:
// SliceByLamport(1) reconstructs the whole graph as a fresh value, and
// the root-source coarsening fallback re-derives it again — all of
// them hit the entry the distance sample already paid for. The kernel
// name keys the kernel configuration: WL names encode depth,
// directedness, and seed, so distinct feature universes never collide.
//
// The fingerprint is a 128-bit structural hash (two independent 64-bit
// mixes over node labels and edge endpoints/kinds — exactly the inputs
// every kernel in this package reads), so an accidental collision
// across the thousands of graphs a campaign touches is vanishingly
// unlikely (birthday bound ~n²/2¹²⁹).
//
// All methods are safe for concurrent use, and safe on a nil *Cache,
// which simply computes without memoizing — callers thread an optional
// cache without branching. Cached FeatureVectors are shared across
// callers and must be treated as immutable.
type Cache struct {
	mu      sync.RWMutex
	entries map[cacheKey]FeatureVector
	hits    atomic.Uint64
	misses  atomic.Uint64
}

type cacheKey struct {
	kernel string
	fp     Fingerprint
}

// NewCache returns an empty embedding cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[cacheKey]FeatureVector, 64)}
}

// Features returns k's embedding of g, computing and memoizing it on
// first sight of (k.Name(), fingerprint(g)). Concurrent misses on the
// same key may compute the embedding more than once; the result is
// identical either way, and the last write wins.
func (c *Cache) Features(k Kernel, g *graph.Graph) FeatureVector {
	if c == nil {
		return k.Features(g)
	}
	key := cacheKey{kernel: k.Name(), fp: fingerprint(g)}
	c.mu.RLock()
	fv, ok := c.entries[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return fv
	}
	c.misses.Add(1)
	fv = k.Features(g)
	c.mu.Lock()
	c.entries[key] = fv
	c.mu.Unlock()
	return fv
}

// NewMatrix is Matrix construction through the cache: embeddings are
// looked up (or computed and stored) per graph, then the Gram matrix
// is assembled exactly as the uncached NewMatrix would.
func (c *Cache) NewMatrix(k Kernel, graphs []*graph.Graph) *Matrix {
	return newMatrix(k, graphs, defaultWorkers(), c)
}

// NewMatrixWorkers is NewMatrix with an explicit worker count.
func (c *Cache) NewMatrixWorkers(k Kernel, graphs []*graph.Graph, workers int) *Matrix {
	if workers < 1 {
		workers = 1
	}
	return newMatrix(k, graphs, workers, c)
}

// PairwiseDistances is the cached counterpart of the package-level
// PairwiseDistances.
func (c *Cache) PairwiseDistances(k Kernel, graphs []*graph.Graph) []float64 {
	return c.NewMatrix(k, graphs).PairwiseDistances()
}

// Len returns the number of memoized embeddings.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Hits returns how many Features calls were served from the cache.
func (c *Cache) Hits() uint64 {
	if c == nil {
		return 0
	}
	return c.hits.Load()
}

// Misses returns how many Features calls had to compute an embedding.
func (c *Cache) Misses() uint64 {
	if c == nil {
		return 0
	}
	return c.misses.Load()
}

// fingerprint computes the 128-bit structural hash of g over exactly
// the inputs the kernels read: the node-label sequence and the edge
// (from, to, kind) triples. Two graphs with equal fingerprints receive
// identical embeddings from every Kernel in this package; Lamport
// times, callstacks, and Meta deliberately do not contribute.
func fingerprint(g *graph.Graph) Fingerprint {
	fp := NewFingerprinter()
	fp.Word(uint64(len(g.Nodes)))
	for i := range g.Nodes {
		fp.Word(labelInterner.Hash(g.Nodes[i].Label))
	}
	fp.Word(uint64(len(g.Edges)))
	for i := range g.Edges {
		e := &g.Edges[i]
		// NodeIDs are int32 and non-negative, so from/to fit in 31 bits
		// each and the kind bit lands at 63: one word per edge.
		fp.Word(uint64(uint32(e.From)) | uint64(uint32(e.To))<<31 | uint64(e.Kind)<<63)
	}
	return fp.Sum()
}
