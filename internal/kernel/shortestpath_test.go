package kernel

import (
	"testing"

	"github.com/anacin-go/anacinx/internal/graph"
)

func TestShortestPathName(t *testing.T) {
	if (ShortestPath{}).Name() != "shortest-path" {
		t.Error("name wrong")
	}
}

func TestShortestPathBasics(t *testing.T) {
	g1 := meshGraph(t, 6, 3, 100, 7)
	g2 := meshGraph(t, 6, 3, 100, 7)
	k := ShortestPath{}
	if d := Distance(k, g1, g2); d != 0 {
		t.Errorf("identical graphs distance %v", d)
	}
	if d := Distance(k, g1, g1); d != 0 {
		t.Errorf("self distance %v", d)
	}
}

func TestShortestPathSeparatesRuns(t *testing.T) {
	// Long-range structure: shortest-path sees the match-order change
	// that the mesh produces at 100% ND.
	g1 := meshGraph(t, 8, 4, 100, 1)
	g2 := meshGraph(t, 8, 4, 100, 2)
	if d := Distance(ShortestPath{}, g1, g2); d <= 0 {
		t.Errorf("distinct runs distance %v", d)
	}
}

func TestShortestPathEmptyGraph(t *testing.T) {
	empty := &graph.Graph{}
	empty.Seal()
	if f := (ShortestPath{}).Features(empty); f.Len() != 0 {
		t.Errorf("empty graph produced %d features", f.Len())
	}
}

func TestShortestPathKnownChain(t *testing.T) {
	// A 3-node chain a->b->c with distinct labels: pairs are
	// (a,1,b), (b,1,c), (a,2,c) — exactly 3 features with count 1.
	g := &graph.Graph{}
	for i, label := range []string{"a", "b", "c"} {
		g.Nodes = append(g.Nodes, graph.Node{ID: graph.NodeID(i), Rank: 0, Seq: i, Label: label, Lamport: int64(i + 1)})
	}
	g.Edges = []graph.Edge{
		{From: 0, To: 1, Kind: graph.EdgeProgram},
		{From: 1, To: 2, Kind: graph.EdgeProgram},
	}
	g.Seal()
	f := ShortestPath{}.Features(g)
	if f.Len() != 3 {
		t.Fatalf("chain features = %d, want 3", f.Len())
	}
	total := 0.0
	for _, v := range f.Vals {
		total += v
	}
	if total != 3 {
		t.Errorf("total multiplicity = %v, want 3", total)
	}
}

func TestShortestPathDepthCap(t *testing.T) {
	// A long chain with MaxDepth 2: node 0 reaches only nodes 1 and 2.
	g := &graph.Graph{}
	const n = 10
	for i := 0; i < n; i++ {
		g.Nodes = append(g.Nodes, graph.Node{ID: graph.NodeID(i), Rank: 0, Seq: i, Label: "x", Lamport: int64(i + 1)})
	}
	for i := 0; i+1 < n; i++ {
		g.Edges = append(g.Edges, graph.Edge{From: graph.NodeID(i), To: graph.NodeID(i + 1), Kind: graph.EdgeProgram})
	}
	g.Seal()
	shallow := ShortestPath{MaxDepth: 2}.Features(g)
	deep := ShortestPath{MaxDepth: 9}.Features(g)
	countOf := func(f FeatureVector) float64 {
		total := 0.0
		for _, v := range f.Vals {
			total += v
		}
		return total
	}
	// Depth 2: each of the first n-1 nodes reaches 1..2 successors:
	// (n-1) + (n-2) pairs. Depth 9: all n(n-1)/2 pairs.
	if got := countOf(shallow); got != float64((n-1)+(n-2)) {
		t.Errorf("depth-2 pair count = %v", got)
	}
	if got := countOf(deep); got != float64(n*(n-1)/2) {
		t.Errorf("depth-9 pair count = %v", got)
	}
}

func BenchmarkShortestPathFeatures(b *testing.B) {
	g := meshGraph(b, 16, 4, 100, 1)
	k := ShortestPath{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = k.Features(g)
	}
}
