package kernel

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/anacin-go/anacinx/internal/graph"
	"github.com/anacin-go/anacinx/internal/sim"
	"github.com/anacin-go/anacinx/internal/trace"
)

// streamReaderFor encodes tr as a v2 binary trace in memory and opens a
// Reader over it.
func streamReaderFor(t testing.TB, tr *trace.Trace) *trace.Reader {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteBinaryV2(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// fanInTrace is the adversarial shape for windowed streaming: every
// nonzero rank's sends complete only when rank 0 drains them.
func fanInTrace(t testing.TB, procs, iters int, nd float64) *trace.Trace {
	t.Helper()
	cfg := sim.DefaultConfig(procs, 42)
	cfg.NDPercent = nd
	tr, _, err := sim.Run(cfg, trace.Meta{Pattern: "race"}, func(r *sim.Rank) {
		if r.Rank() == 0 {
			for i := 0; i < iters*(r.Size()-1); i++ {
				r.Recv(sim.AnySource, sim.AnyTag)
			}
			return
		}
		for i := 0; i < iters; i++ {
			r.SendSize(0, i, 64)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// stencilTrace interleaves sends and receives every iteration, so
// messages are consumed about as fast as they are produced — the
// balanced shape whose streaming window must stay flat.
func stencilTrace(t testing.TB, procs, rounds int, nd float64) *trace.Trace {
	t.Helper()
	cfg := sim.DefaultConfig(procs, 11)
	cfg.NDPercent = nd
	tr, _, err := sim.Run(cfg, trace.Meta{Pattern: "stencil"}, func(r *sim.Rank) {
		p := r.Size()
		left, right := (r.Rank()-1+p)%p, (r.Rank()+1)%p
		for i := 0; i < rounds; i++ {
			r.SendSize(left, i, 1)
			r.SendSize(right, i, 1)
			r.Recv(sim.AnySource, sim.AnyTag)
			r.Recv(sim.AnySource, sim.AnyTag)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestStreamingWLMatchesFeatures(t *testing.T) {
	traces := map[string]*trace.Trace{
		"mesh-8rank":    meshTrace(t, 8, 6, 25, 3),
		"mesh-16rank":   meshTrace(t, 16, 4, 50, 9),
		"stencil-8rank": stencilTrace(t, 8, 10, 25),
		"race-12rank":   fanInTrace(t, 12, 5, 25),
		"empty":         trace.New(trace.Meta{Procs: 3}),
	}
	kernels := []WL{
		NewWL(0), NewWL(1), NewWL(2), NewWL(3),
		{H: 2, Directed: false},
		{H: 2, Directed: true, Seed: 0xfeedface},
	}
	for name, tr := range traces {
		g, err := graph.FromTrace(tr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, k := range kernels {
			want := k.Features(g)
			got, stats, err := k.FeaturesFromReaderStats(streamReaderFor(t, tr))
			if err != nil {
				t.Fatalf("%s %s: streaming: %v", name, k.Name(), err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s %s: streamed embedding differs from Features", name, k.Name())
			}
			if stats.Events != tr.NumEvents() || stats.DistinctFeatures != got.Len() {
				t.Errorf("%s %s: stats %+v inconsistent (%d events, %d features)",
					name, k.Name(), stats, tr.NumEvents(), got.Len())
			}
		}
	}
}

// A balanced pattern must hold a window that does not grow with run
// length — the kernel-level half of the campaign footprint guarantee.
func TestStreamingWLWindowFlatOnBalancedPattern(t *testing.T) {
	window := func(rounds int) int {
		tr := stencilTrace(t, 8, rounds, 25)
		_, stats, err := NewWL(2).FeaturesFromReaderStats(streamReaderFor(t, tr))
		if err != nil {
			t.Fatal(err)
		}
		return stats.MaxWindow
	}
	small, large := window(5), window(50)
	if large > 2*small+64 {
		t.Errorf("window grew with run length: %d events buffered at 5 rounds, %d at 50", small, large)
	}
}

func TestFeaturesFromReaderFallback(t *testing.T) {
	tr := meshTrace(t, 6, 3, 25, 5)
	g, err := graph.FromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []Kernel{VertexHistogram{}, EdgeHistogram{}} {
		want := k.Features(g)
		got, err := FeaturesFromReader(k, streamReaderFor(t, tr))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: reader fallback embedding differs", k.Name())
		}
	}
}

func TestMatrixFromFeaturesMatchesNewMatrix(t *testing.T) {
	k := NewWL(2)
	var graphs []*graph.Graph
	var feats []FeatureVector
	for seed := int64(1); seed <= 4; seed++ {
		g := meshGraph(t, 6, 3, 50, seed)
		graphs = append(graphs, g)
		feats = append(feats, k.Features(g))
	}
	for n := 0; n <= 4; n++ {
		want := NewMatrix(k, graphs[:n])
		got := MatrixFromFeatures(k.Name(), feats[:n])
		if !reflect.DeepEqual(want.K, got.K) {
			t.Errorf("n=%d: feature-built matrix differs from graph-built", n)
		}
		if got.KernelName != want.KernelName {
			t.Errorf("n=%d: kernel name %q vs %q", n, got.KernelName, want.KernelName)
		}
	}
}
