package kernel

import (
	"math"
	"sync"
)

// FeatureVector is the package's canonical sparse embedding: a feature
// histogram stored as parallel slices sorted by feature key (CSR-style,
// one "row"). Keys holds the hashed structural features in strictly
// ascending order; Vals[i] is the multiplicity of Keys[i].
//
// Compared to the map-backed Features it replaces on the hot path, the
// sorted layout makes Dot a branch-predictable two-pointer merge join
// (no hashing, no random memory access) and — more importantly for this
// repository — makes the float summation order a pure function of the
// data. Map iteration order is randomized per process in Go, so the
// map Dot summed products in a different order on every call; with
// integer multiplicities the sums happen to be exact, but any future
// weighted variant would have disagreed in the last ulp between two
// identical runs. The merge join always sums in ascending key order.
//
// The zero value is the empty embedding. A FeatureVector returned by a
// Kernel or a Cache may share its backing arrays with other callers —
// treat it as immutable.
type FeatureVector struct {
	Keys []uint64
	Vals []float64
}

// Len returns the number of distinct features.
func (f FeatureVector) Len() int { return len(f.Keys) }

// Dot returns the inner product of two sorted sparse vectors via a
// two-pointer merge join. Products are accumulated in ascending key
// order, so the result is bit-identical across calls, processes, and
// construction orders of the operands.
func (f FeatureVector) Dot(g FeatureVector) float64 {
	fk, gk := f.Keys, g.Keys
	i, j := 0, 0
	sum := 0.0
	for i < len(fk) && j < len(gk) {
		a, b := fk[i], gk[j]
		switch {
		case a == b:
			sum += f.Vals[i] * g.Vals[j]
			i++
			j++
		case a < b:
			i++
		default:
			j++
		}
	}
	return sum
}

// L2 returns the Euclidean norm of the vector.
func (f FeatureVector) L2() float64 { return math.Sqrt(f.Dot(f)) }

// ToMap converts the vector to the map-backed compat representation.
func (f FeatureVector) ToMap() Features {
	m := make(Features, len(f.Keys))
	for i, k := range f.Keys {
		m[k] = f.Vals[i]
	}
	return m
}

// FromMap converts a map-backed histogram to the sorted representation.
func FromMap(m Features) FeatureVector {
	fv := FeatureVector{
		Keys: make([]uint64, 0, len(m)),
		Vals: make([]float64, len(m)),
	}
	for k := range m {
		fv.Keys = append(fv.Keys, k)
	}
	sortU64(fv.Keys)
	for i, k := range fv.Keys {
		fv.Vals[i] = m[k]
	}
	return fv
}

// vecBuilder accumulates feature occurrences (one entry per observed
// feature instance) and converts them to a FeatureVector by sorting and
// run-length encoding. The occurrence buffer is pooled, so a kernel
// embedding allocates only the two exact-size result slices.
type vecBuilder struct {
	occ []uint64
}

var vecBuilderPool = sync.Pool{New: func() any { return new(vecBuilder) }}

// newVecBuilder fetches a pooled builder with room for sizeHint
// occurrences.
func newVecBuilder(sizeHint int) *vecBuilder {
	b := vecBuilderPool.Get().(*vecBuilder)
	if cap(b.occ) < sizeHint {
		b.occ = make([]uint64, 0, sizeHint)
	}
	return b
}

// add records one occurrence of feature h.
func (b *vecBuilder) add(h uint64) { b.occ = append(b.occ, h) }

// finish sorts the occurrences, run-length encodes them into a fresh
// FeatureVector, and returns the builder to the pool. The result is
// independent of the order occurrences were added in — sorting
// canonicalizes it — which is what makes every embedding, and every
// dot product over embeddings, deterministic.
func (b *vecBuilder) finish() FeatureVector {
	occ := b.occ
	sortU64(occ)
	distinct := 0
	for i := range occ {
		if i == 0 || occ[i] != occ[i-1] {
			distinct++
		}
	}
	fv := FeatureVector{
		Keys: make([]uint64, 0, distinct),
		Vals: make([]float64, 0, distinct),
	}
	for i := 0; i < len(occ); {
		j := i + 1
		for j < len(occ) && occ[j] == occ[i] {
			j++
		}
		fv.Keys = append(fv.Keys, occ[i])
		fv.Vals = append(fv.Vals, float64(j-i))
		i = j
	}
	b.occ = occ[:0]
	vecBuilderPool.Put(b)
	return fv
}
