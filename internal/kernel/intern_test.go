package kernel

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternerDenseIdsAndHashes(t *testing.T) {
	in := NewInterner()
	labels := []string{"MPI_Send", "MPI_Recv", "MPI_Waitall", "MPI_Barrier", "MPI_Send"}
	var ids []uint32
	for _, s := range labels {
		ids = append(ids, in.Intern(s))
	}
	if ids[0] != ids[4] {
		t.Errorf("re-interning a label changed its id: %d vs %d", ids[0], ids[4])
	}
	for i, want := range []uint32{0, 1, 2, 3} {
		if ids[i] != want {
			t.Errorf("id of %q = %d, want dense %d", labels[i], ids[i], want)
		}
	}
	if in.Len() != 4 {
		t.Errorf("Len = %d, want 4", in.Len())
	}
	for _, s := range labels {
		if got, want := in.Hash(s), hashString(s); got != want {
			t.Errorf("Hash(%q) = %#x, want hashString value %#x", s, got, want)
		}
		if got := in.HashOf(in.Intern(s)); got != hashString(s) {
			t.Errorf("HashOf(Intern(%q)) = %#x, want %#x", s, got, hashString(s))
		}
		if in.LabelOf(in.Intern(s)) != s {
			t.Errorf("LabelOf is not the inverse of Intern for %q", s)
		}
	}
}

// TestInternerConcurrent hammers one interner from many goroutines over
// an overlapping label set; run under -race this pins the locking
// discipline, and afterwards every label must have exactly one id.
func TestInternerConcurrent(t *testing.T) {
	in := NewInterner()
	const workers, distinct = 8, 64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4*distinct; i++ {
				s := fmt.Sprintf("label-%d", (i+w)%distinct)
				if in.HashOf(in.Intern(s)) != hashString(s) {
					t.Errorf("hash mismatch for %q", s)
					return
				}
				_ = in.Hash(s)
			}
		}(w)
	}
	wg.Wait()
	if in.Len() != distinct {
		t.Errorf("Len = %d, want %d", in.Len(), distinct)
	}
}

// TestInternerHashMissConcurrent drives the Hash miss path specifically:
// every lookup is a first sight, so concurrent appends keep reallocating
// the hashes slice while other goroutines read it. Under -race this pins
// that the miss path re-reads the slice under the lock rather than
// touching a stale header.
func TestInternerHashMissConcurrent(t *testing.T) {
	in := NewInterner()
	const workers, perWorker = 16, 256
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s := fmt.Sprintf("fresh-%d-%d", w, i)
				if in.Hash(s) != hashString(s) {
					t.Errorf("Hash(%q) mismatch on miss path", s)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if in.Len() != workers*perWorker {
		t.Errorf("Len = %d, want %d", in.Len(), workers*perWorker)
	}
}

func TestSplitmix64(t *testing.T) {
	// Reference values from the canonical SplitMix64 (Vigna), state
	// seeded with 0 and 1234567: successive outputs of the generator.
	if got := splitmix64(0); got != 0xe220a8397b1dcdaf {
		t.Errorf("splitmix64(0) = %#x, want 0xe220a8397b1dcdaf", got)
	}
	// Bijectivity smoke test: no collisions over a small dense range.
	seen := make(map[uint64]uint64, 1<<12)
	for x := uint64(0); x < 1<<12; x++ {
		h := splitmix64(x)
		if prev, dup := seen[h]; dup {
			t.Fatalf("collision: splitmix64(%d) == splitmix64(%d)", x, prev)
		}
		seen[h] = x
	}
}
