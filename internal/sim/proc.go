package sim

import "github.com/anacin-go/anacinx/internal/vtime"

// Proc is the runtime-independent face of a rank: the point-to-point
// subset shared by the deterministic DES runtime (*Rank) and the
// wallclock runtime (*WallRank). Communication patterns written against
// Proc run on either substrate, which is how the course contrasts
// *modelled* non-determinism (injected delays, reproducible per seed)
// with *native* non-determinism (the Go scheduler's real races).
type Proc interface {
	// Rank returns this process's id in [0, Size).
	Rank() int
	// Size returns the number of processes.
	Size() int
	// Send transmits data to dst with the given tag.
	Send(dst, tag int, data []byte)
	// SendSize transmits a size-only message.
	SendSize(dst, tag, size int)
	// Recv blocks for a message matching (src, tag); wildcards allowed.
	Recv(src, tag int) Message
	// Compute models local computation of the given virtual duration.
	Compute(d vtime.Duration)
}

// ProcProgram is a rank program written against the runtime-independent
// Proc surface: it runs under Run (via Adapt) and under RunWallclock.
type ProcProgram func(Proc)

// Adapt converts a runtime-independent program to a DES Program.
func Adapt(p ProcProgram) Program {
	return func(r *Rank) { p(r) }
}

// FullProc is the complete MPI-like operation surface a rank program can
// use: the point-to-point Proc subset plus non-blocking operations,
// probes, and collectives. It is the recording seam for static analysis:
// patterns that need more than Proc assert to FullProc (never to *Rank
// directly), so any implementation — the DES runtime or a symbolic
// recorder that elaborates the program into a static op model without
// running the scheduler (internal/verify) — can execute them.
//
// The wallclock runtime implements only Proc; asserting FullProc on it
// fails, which is how collective-using patterns reject that substrate.
type FullProc interface {
	Proc
	// Isend is the non-blocking send; complete it with Wait.
	Isend(dst, tag int, data []byte) *Request
	// Irecv posts a non-blocking receive; complete it with Wait.
	Irecv(src, tag int) *Request
	// Wait blocks until req completes; returns the message for Irecv.
	Wait(req *Request) Message
	// Waitall completes the given requests in order.
	Waitall(reqs []*Request) []Message
	// Waitany completes one not-yet-waited request (completion order —
	// a root source of non-determinism).
	Waitany(reqs []*Request) (int, Message)
	// Probe blocks for a matching envelope without consuming it.
	Probe(src, tag int) (msgSrc, msgTag, size int)
	// Iprobe reports whether a matching message has arrived.
	Iprobe(src, tag int) (ok bool, msgSrc, msgTag, size int)
	// Sendrecv issues a non-blocking send, completes the receive, then
	// waits for the send.
	Sendrecv(dst, sendTag int, data []byte, src, recvTag int) Message
	// Collective operations; every rank must call the same sequence.
	Barrier()
	Bcast(root int, data []byte) []byte
	Reduce(root int, data []byte, op ReduceOp) []byte
	ReduceArrival(root int, data []byte, op ReduceOp) []byte
	Allreduce(data []byte, op ReduceOp) []byte
	Gather(root int, data []byte) [][]byte
	Scatter(root int, parts [][]byte) []byte
	Allgather(data []byte) [][]byte
	Scan(data []byte, op ReduceOp) []byte
	Alltoall(parts [][]byte) [][]byte
}

// Compile-time checks: both runtimes satisfy Proc, and the DES runtime
// satisfies the full surface.
var (
	_ Proc     = (*Rank)(nil)
	_ Proc     = (*WallRank)(nil)
	_ FullProc = (*Rank)(nil)
)
