package sim

import "github.com/anacin-go/anacinx/internal/vtime"

// Proc is the runtime-independent face of a rank: the point-to-point
// subset shared by the deterministic DES runtime (*Rank) and the
// wallclock runtime (*WallRank). Communication patterns written against
// Proc run on either substrate, which is how the course contrasts
// *modelled* non-determinism (injected delays, reproducible per seed)
// with *native* non-determinism (the Go scheduler's real races).
type Proc interface {
	// Rank returns this process's id in [0, Size).
	Rank() int
	// Size returns the number of processes.
	Size() int
	// Send transmits data to dst with the given tag.
	Send(dst, tag int, data []byte)
	// SendSize transmits a size-only message.
	SendSize(dst, tag, size int)
	// Recv blocks for a message matching (src, tag); wildcards allowed.
	Recv(src, tag int) Message
	// Compute models local computation of the given virtual duration.
	Compute(d vtime.Duration)
}

// ProcProgram is a rank program written against the runtime-independent
// Proc surface: it runs under Run (via Adapt) and under RunWallclock.
type ProcProgram func(Proc)

// Adapt converts a runtime-independent program to a DES Program.
func Adapt(p ProcProgram) Program {
	return func(r *Rank) { p(r) }
}

// Compile-time checks that both runtimes satisfy Proc.
var (
	_ Proc = (*Rank)(nil)
	_ Proc = (*WallRank)(nil)
)
