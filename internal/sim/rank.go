package sim

import (
	"fmt"

	"github.com/anacin-go/anacinx/internal/trace"
	"github.com/anacin-go/anacinx/internal/vtime"
)

// Rank is the handle a Program uses to issue MPI-like operations. A Rank
// is owned by its goroutine; its methods must not be called from other
// goroutines.
type Rank struct {
	sim     *simulation
	id      int
	node    int
	clock   vtime.Time
	lamport int64
	status  rankStatus
	heapIdx int // position in the scheduler's ready heap, -1 when not queued
	resume  chan struct{}
	rng     *vtime.RNG

	mailbox    []*message // arrived, unmatched ("unexpected") messages
	posted     []*Request // outstanding Irecv requests, in post order
	waiting    *waiter    // non-nil while blocked
	scratch    waiter     // reused by every block; a rank waits on one thing at a time
	replayNext int        // cursor into the replay schedule
	collSeq    int        // collective instance counter
}

// Message is a received payload as seen by user code.
type Message struct {
	// Src is the sending rank.
	Src int
	// Tag is the message tag.
	Tag int
	// Size is the payload size in bytes (may exceed len(Data) when the
	// sender used SendSize).
	Size int
	// Data is the payload, nil for size-only messages.
	Data []byte
}

// Request is a handle for a non-blocking operation, completed by Wait.
type Request struct {
	owner      *Rank
	isRecv     bool
	src        int // filter for Irecv
	tag        int
	key        *MatchKey // replay pin, when replaying
	done       bool
	waited     bool
	msg        *message    // matched message for Irecv requests
	completeAt vtime.Time  // completion time for rendezvous Isend requests
	stack      trace.Stack // interned callstack at the post, reused for the Wait event
}

// Rank returns this rank's id in [0, Size).
func (r *Rank) Rank() int { return r.id }

// Size returns the number of ranks in the execution.
func (r *Rank) Size() int { return len(r.sim.ranks) }

// Node returns the compute node hosting this rank.
func (r *Rank) Node() int { return r.node }

// Now returns the rank's current virtual time.
func (r *Rank) Now() vtime.Time { return r.clock }

// Lamport returns the rank's current logical clock.
func (r *Rank) Lamport() int64 { return r.lamport }

// RNG returns this rank's private random stream. It is derived from the
// run's Seed, so values differ between runs with different seeds; do not
// use it for quantities that must be identical across runs (for example
// a mini-application's communication topology) — derive those from a
// fixed seed instead.
func (r *Rank) RNG() *vtime.RNG { return r.rng }

// Compute advances the rank's local clock by d, modelling computation
// between communication calls. Negative durations are ignored.
func (r *Rank) Compute(d vtime.Duration) {
	if d > 0 {
		r.clock = r.clock.Add(d)
	}
	r.yield()
}

// yield hands control back to the scheduler and blocks until resumed.
// Status must already be set (ready or blocked) by the caller; yield
// normalizes running → ready.
//
// Fast path: when the rank is still runnable and would be the
// scheduler's next pick anyway — its clock strictly precedes the
// earliest in-flight arrival and every other ready rank (with the
// scheduler's exact tie-breaks) — the goroutine handoff is skipped and
// the rank simply keeps running. This removes two channel operations
// from the common sequential case without changing the schedule:
// the decision predicate is precisely the scheduler's.
func (r *Rank) yield() {
	if r.status == statusRunning && r.wouldRunNext() {
		return
	}
	if r.status == statusRunning {
		// The scheduler is parked in its loop, so this goroutine owns the
		// scheduler state: re-queue ourselves before handing control back.
		r.sim.makeReady(r)
	}
	r.sim.yielded <- r.id
	<-r.resume
	r.status = statusRunning
	if r.sim.abortFlag {
		panic(abortSentinel{})
	}
}

// wouldRunNext reports whether the scheduler's next action would be to
// resume this rank: no in-flight message arrives at or before its
// clock (the loop delivers events when eventTime <= clock), and no
// other ready rank precedes it under pickReady's (clock, id) order.
func (r *Rank) wouldRunNext() bool {
	s := r.sim
	if s.abortFlag || s.panicErr != nil || s.budgetErr != nil || s.cancelErr != nil {
		return false
	}
	s.steps++
	if s.steps > s.cfg.MaxEvents {
		s.budgetErr = errStepBudget(s.cfg.MaxEvents)
		return false
	}
	// A compute-bound rank can live on this fast path for long stretches
	// without touching the scheduler loop, so the cancellation poll must
	// happen here too or cancellation latency would be unbounded.
	if s.steps&cancelCheckMask == 0 && s.cancelled() {
		return false
	}
	if len(s.events) > 0 && s.events[0].arrival <= r.clock {
		return false
	}
	// The running rank is not in the ready heap, so its top is the best
	// competitor under the scheduler's (clock, id) order.
	if top := s.ready.peek(); top != nil && rankBefore(top, r) {
		return false
	}
	return true
}

// block parks the rank until the scheduler matches the given wait state,
// which it installs in the rank's reusable scratch waiter (safe because a
// rank waits on at most one thing at a time, and the previous wait's
// results are fully consumed before the next block). It returns the
// waiter so callers can read the fields the scheduler filled in.
func (r *Rank) block(w waiter) *waiter {
	r.scratch = w
	r.waiting = &r.scratch
	r.status = statusBlocked
	r.yield()
	return &r.scratch
}

// record appends a trace event for this rank at its current clock.
func (r *Rank) record(kind trace.EventKind, peer, tag, size int, msgID int64, chanSeq int, stack trace.Stack) {
	ev := trace.Event{
		Rank:    r.id,
		Kind:    kind,
		Peer:    peer,
		Tag:     tag,
		Size:    size,
		MsgID:   msgID,
		ChanSeq: chanSeq,
		Time:    r.clock,
		Lamport: r.lamport,
	}
	ev.SetStack(stack)
	if r.sim.sink != nil {
		r.sim.sink.Append(ev)
		r.sim.sinkEvents++
		return
	}
	r.sim.tr.Append(ev)
}

// capture returns the caller-of-caller's interned callstack when stack
// capture is enabled.
func (r *Rank) capture() trace.Stack {
	if !r.sim.cfg.CaptureStacks {
		return trace.Stack{}
	}
	return trace.CaptureStackInterned(2)
}

func (r *Rank) checkPeer(dst int) {
	if dst < 0 || dst >= len(r.sim.ranks) {
		panic(fmt.Sprintf("sim: rank %d used peer %d, valid range [0,%d)", r.id, dst, len(r.sim.ranks)))
	}
	if dst == r.id {
		panic(fmt.Sprintf("sim: rank %d sent to itself; self-messages are not modelled", r.id))
	}
}

// post creates and schedules a message from this rank.
func (r *Rank) post(dst, tag, size int, data []byte, internal bool) *message {
	s := r.sim
	s.msgID++
	ch := s.chans.at(r.id, dst)
	seq := ch.seq
	ch.seq = seq + 1
	var payload []byte
	if data != nil {
		payload = append([]byte(nil), data...) // sender may reuse its buffer
	}
	msg := s.newMessage()
	*msg = message{
		id:          s.msgID - 1,
		src:         r.id,
		dst:         dst,
		tag:         tag,
		size:        size,
		data:        payload,
		chanSeq:     seq,
		sendLamport: r.lamport,
		internal:    internal,
	}
	// Collective plumbing is always eager: the algorithms interleave
	// their sends and receives assuming sends cannot block.
	if !internal && s.cfg.Net.RendezvousThreshold > 0 && size >= s.cfg.Net.RendezvousThreshold {
		msg.rendezvous = true
	}
	s.schedule(msg, r.clock)
	return msg
}

// Send transmits data to rank dst with the given tag. Small sends are
// eager (complete locally after the send overhead); sends at or above
// NetModel.RendezvousThreshold block until a matching receive consumes
// the message, as in real MPI. The payload is copied.
func (r *Rank) Send(dst, tag int, data []byte) {
	r.sendCommon(dst, tag, len(data), data, trace.KindSend, r.capture(), nil)
}

// SendSize transmits a size-only message: the receiver observes Size but
// Data is nil. This mirrors the paper's benchmark configuration of
// 1-byte messages without paying for payload allocation.
func (r *Rank) SendSize(dst, tag, size int) {
	if size < 0 {
		panic(fmt.Sprintf("sim: negative message size %d", size))
	}
	r.sendCommon(dst, tag, size, nil, trace.KindSend, r.capture(), nil)
}

// checkTag rejects negative user tags; the negative tag space is
// reserved for collective plumbing (and AnyTag on the receive side).
func (r *Rank) checkTag(tag int, recvSide bool) {
	if tag >= 0 || (recvSide && tag == AnyTag) {
		return
	}
	panic(fmt.Sprintf("sim: rank %d used reserved negative tag %d", r.id, tag))
}

// sendCommon posts one user message and reports whether it used the
// rendezvous protocol. For rendezvous messages, req (when non-nil, i.e.
// Isend) is wired to the message BEFORE any yield so a consumption
// during the yield is never lost; a nil req (blocking Send) parks the
// rank until consumption. The message's identity is captured into
// locals up front: once this rank yields (or blocks), the receiver may
// consume the message and release its struct back to the pool.
func (r *Rank) sendCommon(dst, tag, size int, data []byte, kind trace.EventKind, stack trace.Stack, req *Request) (rendezvous bool) {
	r.checkPeer(dst)
	r.checkTag(tag, false)
	r.lamport++
	msg := r.post(dst, tag, size, data, false)
	rendezvous = msg.rendezvous
	if rendezvous && req != nil {
		msg.sendReq = req
	}
	msgID, chanSeq := msg.id, msg.chanSeq
	r.clock = r.clock.Add(r.sim.cfg.Net.SendOverhead)
	if rendezvous && req == nil {
		r.block(waiter{kind: waitRendezvous, msg: msg})
	}
	r.record(kind, dst, tag, size, msgID, chanSeq, stack)
	r.yield()
	return rendezvous
}

// Isend is the non-blocking send. Under the eager protocol the request
// is complete immediately; under the rendezvous protocol (payload at or
// above NetModel.RendezvousThreshold) it completes when a matching
// receive consumes the message, so Wait may block.
func (r *Rank) Isend(dst, tag int, data []byte) *Request {
	stack := r.capture()
	req := &Request{owner: r, stack: stack}
	if !r.sendCommon(dst, tag, len(data), data, trace.KindIsend, stack, req) {
		req.done = true
	}
	return req
}

// Sendrecv performs a send and a receive "concurrently": the send is
// issued non-blocking, then the receive completes, then the send is
// waited for. Head-to-head Sendrecv pairs therefore cannot deadlock
// even above the rendezvous threshold. It records isend, recv, and
// wait events, like an MPI tracer watching the underlying calls.
func (r *Rank) Sendrecv(dst, sendTag int, data []byte, src, recvTag int) Message {
	req := r.Isend(dst, sendTag, data)
	m := r.Recv(src, recvTag)
	r.Wait(req)
	return m
}

// replayKey consumes the next recorded match for this rank when a replay
// schedule is installed, or returns nil.
func (r *Rank) replayKey() *MatchKey {
	sched := r.sim.cfg.Replay
	if sched == nil {
		return nil
	}
	if r.replayNext >= len(sched.PerRank[r.id]) {
		panic(fmt.Sprintf("sim: rank %d issued more receives than the replay schedule recorded (%d)",
			r.id, len(sched.PerRank[r.id])))
	}
	key := sched.PerRank[r.id][r.replayNext]
	r.replayNext++
	return &key
}

// Recv blocks until a message matching (src, tag) is available and
// returns it. src may be AnySource and tag may be AnyTag; it is the
// AnySource form whose match order is non-deterministic under message
// races. Under replay the match is pinned to the recorded message.
func (r *Rank) Recv(src, tag int) Message {
	r.checkTag(tag, true)
	stack := r.capture()
	msg := r.recvCommon(src, tag, r.replayKey(), false)
	r.lamport = maxInt64(r.lamport, msg.sendLamport) + 1
	r.record(trace.KindRecv, msg.src, msg.tag, msg.size, msg.id, msg.chanSeq, stack)
	m := Message{Src: msg.src, Tag: msg.tag, Size: msg.size, Data: msg.data}
	r.sim.release(msg)
	r.yield()
	return m
}

// mailboxShiftMax bounds the suffix length up to which removeMailbox
// compacts in place. In-place compaction keeps the slice anchored at
// its backing array, so small mailboxes (the 32-rank steady state)
// never lose front capacity to head advancement and never reallocate.
const mailboxShiftMax = 32

// removeMailbox deletes the message at index i, preserving arrival
// order. Short suffixes compact in place; past mailboxShiftMax the
// shorter side of the hole shifts instead — for a front-of-queue match,
// the steady state of a fan-in rank draining a long mailbox, the prefix
// shift is empty and removal is O(1) instead of memmoving the whole
// tail, which made large-P message-race receives O(P) each.
func (r *Rank) removeMailbox(i int) {
	if tail := len(r.mailbox) - 1 - i; tail > mailboxShiftMax && i < tail {
		copy(r.mailbox[1:i+1], r.mailbox[:i])
		r.mailbox[0] = nil // release the vacated slot's pointer
		r.mailbox = r.mailbox[1:]
		return
	}
	r.mailbox = append(r.mailbox[:i], r.mailbox[i+1:]...)
}

// recvCommon matches a message from the mailbox or blocks for one.
func (r *Rank) recvCommon(src, tag int, key *MatchKey, internal bool) *message {
	if src != AnySource {
		if src < 0 || src >= len(r.sim.ranks) {
			panic(fmt.Sprintf("sim: rank %d received from invalid src %d", r.id, src))
		}
	}
	// Earliest-arrived matching message wins: mailbox order is arrival
	// order, which is exactly the non-deterministic quantity ANACIN-X
	// perturbs.
	for i, msg := range r.mailbox {
		if !matchAllowed(msg, internal) {
			continue
		}
		if filterMatches(src, tag, key, msg) {
			r.removeMailbox(i)
			r.clock = r.clock.Add(r.sim.cfg.Net.RecvOverhead)
			r.sim.consumed(msg, r.clock)
			return msg
		}
	}
	w := r.block(waiter{kind: waitRecv, src: src, tag: tag, key: key, internal: internal})
	return w.msg
}

// matchAllowed prevents user receives from consuming internal collective
// messages and vice versa.
func matchAllowed(msg *message, internal bool) bool { return msg.internal == internal }

// Irecv posts a non-blocking receive for (src, tag) and returns its
// request. The matching decision is made at posting time order, as in
// MPI; complete it with Wait.
func (r *Rank) Irecv(src, tag int) *Request {
	r.checkTag(tag, true)
	stack := r.capture()
	req := &Request{owner: r, isRecv: true, src: src, tag: tag, key: r.replayKey(), stack: stack}
	// An already-arrived message can satisfy the request immediately.
	for i, msg := range r.mailbox {
		if matchAllowed(msg, false) && filterMatches(src, tag, req.key, msg) {
			r.removeMailbox(i)
			req.done = true
			req.msg = msg
			at := r.clock
			if msg.arrival > at {
				at = msg.arrival
			}
			r.sim.consumed(msg, at)
			break
		}
	}
	if !req.done {
		r.posted = append(r.posted, req)
	}
	r.lamport++
	r.record(trace.KindIrecv, src, tag, 0, trace.NoMsg, 0, stack)
	r.yield()
	return req
}

// Wait blocks until req completes and returns the received message for
// Irecv requests (the zero Message for Isend requests). Waiting twice on
// the same request panics, as in MPI.
func (r *Rank) Wait(req *Request) Message {
	if req == nil || req.owner != r {
		panic("sim: Wait on nil or foreign request")
	}
	if req.waited {
		panic("sim: Wait called twice on one request")
	}
	req.waited = true
	switch {
	case !req.done:
		r.block(waiter{kind: waitRequest, src: req.src, tag: req.tag, req: req})
	case req.isRecv && req.msg != nil:
		// Completed before Wait: pay the receive overhead now if the
		// message arrived in the past, or wait until it arrives.
		if req.msg.arrival > r.clock {
			r.clock = req.msg.arrival
		}
		r.clock = r.clock.Add(r.sim.cfg.Net.RecvOverhead)
	case !req.isRecv && req.completeAt > r.clock:
		// Rendezvous Isend consumed in the past at a later virtual
		// time than this rank has reached.
		r.clock = req.completeAt
	}
	var m Message
	if req.isRecv {
		msg := req.msg
		r.lamport = maxInt64(r.lamport, msg.sendLamport) + 1
		r.record(trace.KindWait, msg.src, msg.tag, msg.size, msg.id, msg.chanSeq, req.stack)
		m = Message{Src: msg.src, Tag: msg.tag, Size: msg.size, Data: msg.data}
		req.msg = nil
		r.sim.release(msg)
	} else {
		r.lamport++
		r.record(trace.KindWait, trace.NoPeer, 0, 0, trace.NoMsg, 0, req.stack)
	}
	r.yield()
	return m
}

// Waitall completes the given requests in order.
func (r *Rank) Waitall(reqs []*Request) []Message {
	msgs := make([]Message, len(reqs))
	for i, req := range reqs {
		msgs[i] = r.Wait(req)
	}
	return msgs
}

// Waitany blocks until at least one not-yet-waited request completes
// and returns that request's index and message. Like MPI_Waitany, the
// index depends on completion order, which makes Waitany itself a root
// source of non-determinism even when every Irecv names a concrete
// source. Among requests already complete when Waitany is called, the
// one with the earliest completion wins (message arrival for receives,
// consumption time for rendezvous sends; ties: lowest index), mirroring
// the matching rule. It panics if every request was already waited.
func (r *Rank) Waitany(reqs []*Request) (int, Message) {
	if len(reqs) == 0 {
		panic("sim: Waitany with no requests")
	}
	// Collect the eligible (not yet waited) requests, preferring a
	// completed one with the earliest completion.
	best := -1
	var bestArrival vtime.Time
	eligible := 0
	for i, req := range reqs {
		if req == nil || req.owner != r {
			panic("sim: Waitany on nil or foreign request")
		}
		if req.waited {
			continue
		}
		eligible++
		if !req.done {
			continue
		}
		// An eager Isend completed "in the past" (completeAt zero); a
		// consumed rendezvous Isend completed at its consumption time, so
		// it competes with receive arrivals instead of always winning.
		at := req.completeAt
		if req.isRecv && req.msg != nil {
			at = req.msg.arrival
		}
		if best == -1 || at < bestArrival {
			best, bestArrival = i, at
		}
	}
	if eligible == 0 {
		panic("sim: Waitany called with every request already waited")
	}
	if best >= 0 {
		return best, r.Wait(reqs[best])
	}
	// None complete: park on the whole set; the scheduler reports the
	// request it completed via the waiter.
	pending := make([]*Request, 0, eligible)
	for _, req := range reqs {
		if !req.waited {
			pending = append(pending, req)
		}
	}
	w := r.block(waiter{kind: waitAny, reqs: pending})
	for i, req := range reqs {
		if req == w.req {
			return i, r.Wait(req)
		}
	}
	panic("sim: Waitany completed an unknown request")
}

// Probe blocks until a message matching (src, tag) is available, without
// consuming it, and reports its envelope.
func (r *Rank) Probe(src, tag int) (msgSrc, msgTag, size int) {
	for _, msg := range r.mailbox {
		if matchAllowed(msg, false) && filterMatches(src, tag, nil, msg) {
			return msg.src, msg.tag, msg.size
		}
	}
	w := r.block(waiter{kind: waitProbe, src: src, tag: tag})
	return w.msg.src, w.msg.tag, w.msg.size
}

// iprobePollCost is the virtual time one unsuccessful Iprobe consumes.
// Charging a small cost makes polling loops advance virtual time, so a
// spin on Iprobe eventually reaches the arrival time of in-flight
// messages instead of live-locking the simulation at a fixed instant.
const iprobePollCost = 50 * vtime.Nanosecond

// Iprobe reports whether a message matching (src, tag) has arrived,
// without consuming it. An unsuccessful probe costs iprobePollCost of
// virtual time.
func (r *Rank) Iprobe(src, tag int) (ok bool, msgSrc, msgTag, size int) {
	for _, msg := range r.mailbox {
		if matchAllowed(msg, false) && filterMatches(src, tag, nil, msg) {
			return true, msg.src, msg.tag, msg.size
		}
	}
	r.clock = r.clock.Add(iprobePollCost)
	r.yield()
	return false, 0, 0, 0
}

// sendInternal and recvInternal are the untraced plumbing used by the
// collective algorithms in collectives.go. They move virtual time and
// Lamport clocks like their public counterparts but record no events,
// so a collective appears in the trace as the single logical operation
// the application called — matching how an MPI tracer sees it.
func (r *Rank) sendInternal(dst, tag int, data []byte) {
	r.checkPeer(dst)
	r.lamport++
	r.post(dst, tag, len(data), data, true)
	r.clock = r.clock.Add(r.sim.cfg.Net.SendOverhead)
	r.yield()
}

// recvInternal returns only the payload: the message struct is recycled
// before control leaves the simulator core.
func (r *Rank) recvInternal(src, tag int) []byte {
	msg := r.recvCommon(src, tag, nil, true)
	r.lamport = maxInt64(r.lamport, msg.sendLamport) + 1
	data := msg.data
	r.sim.release(msg)
	r.yield()
	return data
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
