// Package sim is a deterministic discrete-event simulation of an MPI-like
// message-passing runtime. It is the substrate this repository uses in
// place of a real MPI installation: rank programs are ordinary Go
// functions run on goroutines, but exactly one rank executes at a time,
// coupled to a virtual-time scheduler that always advances the globally
// earliest action. Given the same Config (including Seed) a run is
// bit-reproducible.
//
// Non-determinism is modelled, not incidental — exactly as in ANACIN-X's
// communication-pattern benchmarks: with probability NDPercent/100 each
// message suffers an extra random network delay ("congestion"), which can
// permute the arrival order of messages racing into a Recv(AnySource).
// Different seeds then stand in for different real-world executions.
// At NDPercent = 0 no jitter is injected and every seed produces the
// same communication structure.
//
// The runtime supports blocking and non-blocking point-to-point
// operations (Send, Recv, Isend, Irecv, Wait, Probe) with AnySource and
// AnyTag wildcards, the MPI non-overtaking guarantee per (src,dst)
// channel, a node-aware latency model, deadlock detection, collective
// operations built on point-to-point messaging, and ReMPI-style
// record-and-replay of message-matching orders.
package sim

import (
	"context"
	"fmt"
	"strings"

	"github.com/anacin-go/anacinx/internal/trace"
	"github.com/anacin-go/anacinx/internal/vtime"
)

// Wildcards accepted by Recv, Irecv, and Probe.
const (
	// AnySource matches a message from any sending rank.
	AnySource = -1
	// AnyTag matches a message with any tag.
	AnyTag = -1
)

// Program is the code one rank executes, analogous to the body between
// MPI_Init and MPI_Finalize. The runtime records Init and Finalize
// events around it automatically.
type Program func(r *Rank)

// Config parameterizes a simulated execution. The zero value is not
// runnable; start from DefaultConfig.
type Config struct {
	// Procs is the number of MPI ranks. Must be >= 1.
	Procs int
	// Nodes is the number of compute nodes ranks are block-distributed
	// across. Must be >= 1. Messages crossing a node boundary pay a
	// higher base latency and, under non-determinism injection, a larger
	// jitter — which is why the paper recommends multi-node runs to
	// surface non-determinism.
	Nodes int
	// NDPercent is the percentage of messages (0..100) subject to a
	// random congestion delay: the paper's "percentage of
	// non-determinism" knob.
	NDPercent float64
	// Seed selects the random stream. Runs differing only in Seed model
	// independent executions of the same program.
	Seed int64
	// Net is the latency model. Zero fields are filled from DefaultNet.
	Net NetModel
	// Replay, when non-nil, forces every traced receive to match the
	// recorded message, suppressing non-determinism (see Record).
	Replay *Schedule
	// CaptureStacks controls whether events record callstacks. It
	// defaults to true via DefaultConfig; benchmarks that do not need
	// root-source analysis can disable it.
	CaptureStacks bool
	// MaxEvents aborts runaway programs; 0 means DefaultMaxEvents.
	MaxEvents int
	// EventsPerRankHint presizes each rank's event stream in the trace,
	// avoiding append-doubling churn during recording. It is purely a
	// capacity hint — traces grow past it freely; 0 means
	// DefaultEventsPerRankHint.
	EventsPerRankHint int
	// Sink, when non-nil, streams every recorded event out of the
	// simulation (in scheduler order) instead of accumulating an
	// in-memory trace: Run then returns a nil *trace.Trace and the
	// caller reads events back through the sink's own output (a
	// trace.StreamWriter feeding a v2 trace file, typically). Per-rank
	// sequence numbers are the sink's concern; sink errors surface
	// through the sink (trace.StreamWriter.Close/Err), not through Run.
	Sink trace.EventSink
	// Codec tunes how sink-constructing layers (core.streamRun and
	// everything above it) compress archived v2 traces: DEFLATE level
	// and codec worker count. The simulator itself never reads it — it
	// rides the Config so one knob reaches every layer that builds a
	// trace.StreamWriter from one. The zero value is the v2 format
	// default. The worker count never changes archived bytes.
	Codec trace.CodecOptions
}

// DefaultEventsPerRankHint is the per-rank event-stream capacity used
// when Config.EventsPerRankHint is zero. Sized for a typical benchmark
// pattern iteration count; a wrong guess only costs one slice regrowth
// cascade per rank.
const DefaultEventsPerRankHint = 64

// DefaultMaxEvents is the per-run event budget used when
// Config.MaxEvents is zero.
const DefaultMaxEvents = 50_000_000

// NetModel describes message timing. All durations are virtual.
//
// A message of s bytes sent at local time t from src to dst arrives at
//
//	t + SendOverhead + alpha(src,dst) + s/Bandwidth + J
//
// where alpha is IntraNodeLatency or InterNodeLatency and J is 0, or an
// exponential jitter with the link's JitterMean when the message is
// selected for congestion (probability NDPercent/100). Arrival times on
// one (src,dst) channel are additionally forced to be strictly
// increasing, preserving MPI's non-overtaking guarantee.
type NetModel struct {
	SendOverhead     vtime.Duration
	RecvOverhead     vtime.Duration
	IntraNodeLatency vtime.Duration
	InterNodeLatency vtime.Duration
	// BandwidthBytesPerNs is the per-message serialization bandwidth in
	// bytes per virtual nanosecond (1.0 == ~1 GB/s).
	BandwidthBytesPerNs float64
	// JitterMeanIntra/Inter are the means of the exponential congestion
	// delay for intra- and inter-node messages.
	JitterMeanIntra vtime.Duration
	JitterMeanInter vtime.Duration
	// InterNodeNDBoost multiplies the congestion-delay probability of
	// messages that cross a node boundary (clamped to 1). Values above
	// 1 model the paper's observation that running across multiple
	// compute nodes "increases the likelihood that runs are
	// non-deterministic": shared switches and NICs make congestion more
	// frequent, not just larger. Must be >= 1.
	InterNodeNDBoost float64
	// RendezvousThreshold switches sends of at least this many bytes
	// from the eager protocol (send completes locally) to the
	// rendezvous protocol (send completes only when a matching receive
	// consumes the message — so large blocking sends can deadlock, as
	// in real MPI). 0 disables rendezvous entirely. The simplification
	// relative to real rendezvous: transfer *timing* stays eager; only
	// the sender's completion semantics change.
	RendezvousThreshold int
}

// DefaultNet is a commodity-cluster-flavoured latency model: sub-µs
// intra-node latency, a few µs across nodes.
//
// The congestion jitter is deliberately on the order of the
// inter-arrival spacing of a send burst (a few send overheads), not far
// above it: a delayed message then leapfrogs a handful of neighbours
// rather than dropping to the back of the arrival queue. This keeps the
// measured non-determinism *graded* in the injected percentage — the
// rising curve of the paper's Fig. 7 — where an oversized jitter
// saturates the kernel distance at ~10% injection because every delayed
// message reshuffles the entire match order. Inter-node jitter is 3x
// intra-node, which is why multi-node placements surface more
// non-determinism at the same injection level (paper §III-A).
var DefaultNet = NetModel{
	SendOverhead:        200 * vtime.Nanosecond,
	RecvOverhead:        200 * vtime.Nanosecond,
	IntraNodeLatency:    500 * vtime.Nanosecond,
	InterNodeLatency:    2 * vtime.Microsecond,
	BandwidthBytesPerNs: 1.0,
	JitterMeanIntra:     500 * vtime.Nanosecond,
	JitterMeanInter:     4 * vtime.Microsecond,
	InterNodeNDBoost:    3,
}

// DefaultConfig returns a runnable single-node configuration for the
// given process count and seed, with non-determinism disabled.
func DefaultConfig(procs int, seed int64) Config {
	return Config{
		Procs:         procs,
		Nodes:         1,
		NDPercent:     0,
		Seed:          seed,
		Net:           DefaultNet,
		CaptureStacks: true,
	}
}

// validate checks the configuration and fills defaulted fields.
func (c *Config) validate() error {
	if c.Procs < 1 {
		return fmt.Errorf("sim: Procs = %d, need >= 1", c.Procs)
	}
	if c.Nodes < 1 {
		return fmt.Errorf("sim: Nodes = %d, need >= 1", c.Nodes)
	}
	if c.Nodes > c.Procs {
		return fmt.Errorf("sim: Nodes = %d exceeds Procs = %d", c.Nodes, c.Procs)
	}
	if c.NDPercent < 0 || c.NDPercent > 100 {
		return fmt.Errorf("sim: NDPercent = %v, need 0..100", c.NDPercent)
	}
	if c.Net == (NetModel{}) {
		c.Net = DefaultNet
	}
	if c.Net.BandwidthBytesPerNs <= 0 {
		return fmt.Errorf("sim: BandwidthBytesPerNs = %v, need > 0", c.Net.BandwidthBytesPerNs)
	}
	if c.Net.InterNodeNDBoost == 0 {
		c.Net.InterNodeNDBoost = 1
	}
	if c.Net.InterNodeNDBoost < 1 {
		return fmt.Errorf("sim: InterNodeNDBoost = %v, need >= 1", c.Net.InterNodeNDBoost)
	}
	if c.MaxEvents == 0 {
		c.MaxEvents = DefaultMaxEvents
	}
	if c.EventsPerRankHint == 0 {
		c.EventsPerRankHint = DefaultEventsPerRankHint
	}
	if c.EventsPerRankHint < 0 {
		return fmt.Errorf("sim: EventsPerRankHint = %d, need >= 0", c.EventsPerRankHint)
	}
	if c.Replay != nil {
		if err := c.Replay.validate(c.Procs); err != nil {
			return err
		}
	}
	return nil
}

// NodeOf returns the compute node hosting the given rank under block
// distribution: ranks [0..P/N) on node 0, and so on.
func (c *Config) NodeOf(rank int) int {
	perNode := (c.Procs + c.Nodes - 1) / c.Nodes
	return rank / perNode
}

// Stats summarizes a completed run.
type Stats struct {
	// FinalTime is the virtual time at which the last rank finalized.
	FinalTime vtime.Time
	// Messages is the number of point-to-point messages delivered,
	// including the internal messages of collective operations.
	Messages int
	// Bytes is the total payload volume delivered.
	Bytes int64
	// Delayed is how many messages received a congestion delay.
	Delayed int
	// Events is the number of trace events recorded.
	Events int
}

// Run executes program on every rank under cfg and returns the recorded
// trace. meta fields describing the workload (Pattern, Iterations,
// MsgSize) are caller-provided; Run fills the fields it owns (Procs,
// Nodes, NDPercent, Seed). When cfg.Sink is set, events stream to the
// sink instead and the returned trace is nil.
func Run(cfg Config, meta trace.Meta, program Program) (*trace.Trace, *Stats, error) {
	return RunContext(context.Background(), cfg, meta, program)
}

// RunContext is Run with cancellation: when ctx is cancelled the
// simulation aborts at the next scheduler step (or fast-path yield),
// unwinds every rank goroutine, and returns an error satisfying
// errors.Is(err, ctx.Err()). A cancelled run yields no trace — partial
// traces would not be reproducible artifacts.
func RunContext(ctx context.Context, cfg Config, meta trace.Meta, program Program) (*trace.Trace, *Stats, error) {
	if program == nil {
		return nil, nil, fmt.Errorf("sim: nil program")
	}
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	meta.Procs = cfg.Procs
	meta.Nodes = cfg.Nodes
	meta.NDPercent = cfg.NDPercent
	meta.Seed = cfg.Seed
	s := newSim(cfg, meta)
	s.ctx = ctx
	s.cancellable = ctx.Done() != nil
	return s.run(program)
}

// DeadlockError reports that every unfinished rank was blocked with no
// message in flight. It lists each blocked rank's wait state, which is
// the information a student needs to diagnose the hang.
type DeadlockError struct {
	// Blocked maps rank → human-readable wait description.
	Blocked map[int]string
	// Time is the virtual time at which progress stopped.
	Time vtime.Time
}

// Error implements the error interface.
func (e *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: deadlock at t=%v: %d rank(s) blocked:", e.Time, len(e.Blocked))
	for rank := 0; ; rank++ {
		desc, ok := e.Blocked[rank]
		if ok {
			fmt.Fprintf(&b, " rank %d %s;", rank, desc)
		}
		if rank > 1<<20 { // defensive; ranks are small
			break
		}
		if len(e.Blocked) == 0 || rank > maxKey(e.Blocked) {
			break
		}
	}
	return strings.TrimSuffix(b.String(), ";")
}

func maxKey(m map[int]string) int {
	max := -1
	for k := range m {
		if k > max {
			max = k
		}
	}
	return max
}

// PanicError reports that a rank program panicked.
type PanicError struct {
	Rank  int
	Value any
	Stack string
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("sim: rank %d panicked: %v", e.Rank, e.Value)
}
