package sim

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"github.com/anacin-go/anacinx/internal/trace"
)

func TestRecordScheduleCoversReceives(t *testing.T) {
	cfg := DefaultConfig(4, 1)
	cfg.NDPercent = 100
	tr, _ := mustRun(t, cfg, racyProgram(4, 3))
	sched := RecordSchedule(tr)
	if len(sched.PerRank) != 4 {
		t.Fatalf("PerRank len = %d", len(sched.PerRank))
	}
	if got := sched.Receives(); got != 9 { // 3 senders x 3 rounds, all into rank 0
		t.Errorf("Receives = %d, want 9", got)
	}
	if len(sched.PerRank[0]) != 9 {
		t.Errorf("rank 0 schedule has %d entries", len(sched.PerRank[0]))
	}
}

func TestReplayReproducesMatchOrder(t *testing.T) {
	// Record a 100%-ND run, then replay it under a different seed: the
	// match order (OrderHash) must be identical to the recording even
	// though the new seed would otherwise shuffle arrivals.
	program := racyProgram(6, 4)
	cfg := DefaultConfig(6, 1)
	cfg.NDPercent = 100
	cfg.Seed = 42
	recorded, _ := mustRun(t, cfg, program)
	sched := RecordSchedule(recorded)

	replayCfg := cfg
	replayCfg.Seed = 4242 // different randomness
	replayCfg.Replay = sched
	replayed, _ := mustRun(t, replayCfg, program)

	if recorded.OrderHash() != replayed.OrderHash() {
		t.Error("replay did not reproduce the recorded match order")
	}

	// Control: without replay, seed 4242 gives a different order (this
	// particular seed pair is verified to differ; if the workload or
	// network model changes, pick another pair).
	controlCfg := cfg
	controlCfg.Seed = 4242
	control, _ := mustRun(t, controlCfg, program)
	if control.OrderHash() == recorded.OrderHash() {
		t.Skip("control seeds happened to match; replay assertion above still meaningful")
	}
}

func TestReplayManySeeds(t *testing.T) {
	// Replaying the same schedule under many seeds always reproduces the
	// recorded order — the ReMPI property.
	program := racyProgram(5, 3)
	cfg := DefaultConfig(5, 1)
	cfg.NDPercent = 100
	cfg.Seed = 7
	recorded, _ := mustRun(t, cfg, program)
	sched := RecordSchedule(recorded)
	want := recorded.OrderHash()
	for seed := int64(100); seed < 110; seed++ {
		rc := cfg
		rc.Seed = seed
		rc.Replay = sched
		tr, _ := mustRun(t, rc, program)
		if tr.OrderHash() != want {
			t.Fatalf("seed %d: replay diverged", seed)
		}
	}
}

func TestReplayWithIrecv(t *testing.T) {
	program := func(r *Rank) {
		if r.Rank() == 0 {
			for i := 0; i < 4; i++ {
				req := r.Irecv(AnySource, AnyTag)
				r.Wait(req)
			}
		} else {
			r.SendSize(0, 0, 1)
		}
	}
	cfg := DefaultConfig(5, 1)
	cfg.NDPercent = 100
	cfg.Seed = 3
	recorded, _ := mustRun(t, cfg, program)
	sched := RecordSchedule(recorded)
	rc := cfg
	rc.Seed = 33
	rc.Replay = sched
	replayed, _ := mustRun(t, rc, program)
	if recorded.OrderHash() != replayed.OrderHash() {
		t.Error("irecv replay diverged")
	}
}

func TestReplayValidation(t *testing.T) {
	cfg := DefaultConfig(3, 1)
	cfg.Replay = &Schedule{PerRank: make([][]MatchKey, 2)} // wrong rank count
	if _, _, err := Run(cfg, trace.Meta{}, func(r *Rank) {}); err == nil {
		t.Error("mismatched schedule accepted")
	}
	cfg.Replay = &Schedule{PerRank: [][]MatchKey{{{Src: 9, ChanSeq: 0}}, nil, nil}}
	if _, _, err := Run(cfg, trace.Meta{}, func(r *Rank) {}); err == nil {
		t.Error("out-of-range src accepted")
	}
	cfg.Replay = &Schedule{PerRank: [][]MatchKey{{{Src: 1, ChanSeq: -1}}, nil, nil}}
	if _, _, err := Run(cfg, trace.Meta{}, func(r *Rank) {}); err == nil {
		t.Error("negative chan seq accepted")
	}
}

func TestReplayTooFewEntriesPanics(t *testing.T) {
	// The program issues more receives than the schedule recorded.
	cfg := DefaultConfig(2, 1)
	cfg.Replay = &Schedule{PerRank: [][]MatchKey{nil, nil}}
	_, _, err := Run(cfg, trace.Meta{}, func(r *Rank) {
		if r.Rank() == 0 {
			r.Recv(AnySource, AnyTag)
		} else {
			r.SendSize(0, 0, 1)
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	sched := &Schedule{PerRank: [][]MatchKey{
		{{Src: 1, ChanSeq: 0}, {Src: 2, ChanSeq: 0}},
		nil,
		{{Src: 0, ChanSeq: 3}},
	}}
	var buf bytes.Buffer
	if err := sched.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSchedule(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Receives() != 3 || len(got.PerRank) != 3 {
		t.Errorf("round trip lost entries: %+v", got)
	}
	if got.PerRank[2][0] != (MatchKey{Src: 0, ChanSeq: 3}) {
		t.Errorf("entry mangled: %+v", got.PerRank[2][0])
	}
}

func TestScheduleFileRoundTrip(t *testing.T) {
	cfg := DefaultConfig(3, 1)
	cfg.NDPercent = 100
	tr, _ := mustRun(t, cfg, racyProgram(3, 2))
	sched := RecordSchedule(tr)
	path := filepath.Join(t.TempDir(), "sched.json")
	if err := sched.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSchedule(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Receives() != sched.Receives() {
		t.Error("file round trip changed schedule")
	}
}

func TestReadScheduleRejectsGarbage(t *testing.T) {
	if _, err := ReadSchedule(bytes.NewBufferString("{nope")); err == nil {
		t.Error("garbage accepted")
	}
}
