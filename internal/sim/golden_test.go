package sim

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/anacin-go/anacinx/internal/trace"
	"github.com/anacin-go/anacinx/internal/vtime"
)

// The golden-trace suite pins the simulator's observable output at the
// byte level: each case runs a program covering one protocol family
// (eager, rendezvous, collectives, record-and-replay) and compares the
// binary serialization of the resulting trace against a checked-in
// file. The files were generated from the simulator BEFORE the
// allocation-lean hot-path rework (interned callstacks, ready-rank
// heap, pooled messages), so a passing suite proves the optimizations
// changed not a single byte of any trace: replay matching
// (MatchKey = (src, ChanSeq)), Lamport clocks, virtual times, and the
// callstack table that root-source analysis ranks all survive intact.
//
// Regenerate with `go test ./internal/sim -run TestGoldenTraces -update`
// — but only when an intentional semantic change to the simulator is
// being made, never to paper over an accidental one.
var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// goldenCase runs program under cfg and compares (or, with -update,
// rewrites) the binary trace against testdata/<name>.trace.
func goldenCase(t *testing.T, name string, cfg Config, program Program) {
	t.Helper()
	tr, _, err := Run(cfg, trace.Meta{Pattern: "golden/" + name}, program)
	if err != nil {
		t.Fatalf("%s: Run: %v", name, err)
	}
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatalf("%s: WriteBinary: %v", name, err)
	}
	path := filepath.Join("testdata", name+".trace")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: wrote %d bytes (%d events)", name, buf.Len(), tr.NumEvents())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%s: missing golden file (run with -update to create): %v", name, err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		// Reparse both sides for a readable first-divergence report.
		t.Errorf("%s: serialized trace differs from golden (%d bytes now, %d golden)",
			name, buf.Len(), len(want))
		gold, gerr := trace.ReadBinary(bytes.NewReader(want))
		if gerr != nil {
			t.Fatalf("%s: golden file unreadable: %v", name, gerr)
		}
		reportFirstDivergence(t, name, gold, tr)
	}
}

// reportFirstDivergence prints the first event-level difference between
// the golden and current traces, the byte diff's human face.
func reportFirstDivergence(t *testing.T, name string, gold, cur *trace.Trace) {
	t.Helper()
	if gold.Procs() != cur.Procs() {
		t.Errorf("%s: procs %d, golden %d", name, cur.Procs(), gold.Procs())
		return
	}
	for rank := 0; rank < gold.Procs(); rank++ {
		ge, ce := gold.Events[rank], cur.Events[rank]
		n := len(ge)
		if len(ce) < n {
			n = len(ce)
		}
		for i := 0; i < n; i++ {
			g, c := &ge[i], &ce[i]
			if g.Kind != c.Kind || g.Peer != c.Peer || g.Tag != c.Tag ||
				g.Size != c.Size || g.MsgID != c.MsgID || g.ChanSeq != c.ChanSeq ||
				g.Time != c.Time || g.Lamport != c.Lamport ||
				g.CallstackKey() != c.CallstackKey() {
				t.Errorf("%s: first divergence at rank %d event %d:\n  golden: %+v (stack %s)\n  now:    %+v (stack %s)",
					name, rank, i, *g, g.CallstackKey(), *c, c.CallstackKey())
				return
			}
		}
		if len(ge) != len(ce) {
			t.Errorf("%s: rank %d has %d events, golden %d", name, rank, len(ce), len(ge))
			return
		}
	}
}

// ---- eager point-to-point ----

// goldenDrainRace receives one racing message with a wildcard, the
// paper's canonical non-deterministic receive.
func goldenDrainRace(r *Rank) Message { return r.Recv(AnySource, 3) }

// goldenRaceSend fires one message into the rank-0 race.
func goldenRaceSend(r *Rank, iter int) { r.Send(0, 3, []byte{byte(r.Rank()), byte(iter)}) }

// goldenHaloExchange is one eager ring step: post the receive, send,
// complete — the Irecv/Send/Wait triple every halo pattern uses.
func goldenHaloExchange(r *Rank, iter int) {
	p := r.Size()
	next, prev := (r.Rank()+1)%p, (r.Rank()-1+p)%p
	req := r.Irecv(prev, 7)
	r.Send(next, 7, []byte{byte(iter)})
	r.Wait(req)
}

func goldenEagerProgram(r *Rank) {
	for iter := 0; iter < 3; iter++ {
		if r.Rank() == 0 {
			for i := 1; i < r.Size(); i++ {
				goldenDrainRace(r)
			}
		} else {
			goldenRaceSend(r, iter)
		}
		goldenHaloExchange(r, iter)
		r.Compute(500 * vtime.Nanosecond)
	}
	// Probe-then-receive, plus size-only messages.
	if r.Rank() == 1 {
		r.SendSize(2, 9, 4096)
	}
	if r.Rank() == 2 {
		src, tag, _ := r.Probe(1, 9)
		r.Recv(src, tag)
	}
}

// ---- rendezvous protocol ----

// goldenRendezvousPair exercises the blocking rendezvous handshake:
// even ranks block in Send until the odd partner's late Recv consumes.
func goldenRendezvousPair(r *Rank, payload []byte) {
	if r.Rank()%2 == 0 {
		r.Send(r.Rank()+1, 11, payload)
	} else {
		r.Compute(5 * vtime.Microsecond) // make the sender wait
		r.Recv(r.Rank()-1, 11)
	}
}

// goldenRendezvousIsend exercises the non-blocking rendezvous path:
// the Isend completes only when the partner consumes, so Wait blocks.
func goldenRendezvousIsend(r *Rank, payload []byte) {
	if r.Rank()%2 == 1 {
		req := r.Isend(r.Rank()-1, 13, payload)
		r.Compute(1 * vtime.Microsecond)
		r.Wait(req)
	} else {
		r.Compute(3 * vtime.Microsecond)
		r.Recv(r.Rank()+1, 13)
	}
}

func goldenRendezvousProgram(r *Rank) {
	payload := make([]byte, 256) // over the 64 B golden threshold
	for i := range payload {
		payload[i] = byte(r.Rank() + i)
	}
	goldenRendezvousPair(r, payload)
	goldenRendezvousIsend(r, payload)
	// Head-to-head Sendrecv above the threshold: must not deadlock.
	p := r.Size()
	r.Sendrecv((r.Rank()+1)%p, 17, payload, (r.Rank()-1+p)%p, 17)
}

// ---- collectives ----

func goldenCollectiveProgram(r *Rank) {
	sum := func(a, b []byte) []byte {
		out := append([]byte(nil), a...)
		for i := range out {
			if i < len(b) {
				out[i] += b[i]
			}
		}
		return out
	}
	me := []byte{byte(r.Rank() + 1), 0xA5}
	r.Barrier()
	r.Bcast(2, []byte{42, 43, 44})
	r.Reduce(0, me, sum)
	r.Allreduce(me, sum)
	r.Gather(1, me)
	parts := make([][]byte, r.Size())
	for i := range parts {
		parts[i] = []byte{byte(r.Rank()), byte(i)}
	}
	r.Scatter(0, parts)
	r.Allgather(me)
	r.Alltoall(parts)
	r.Scan(me, sum)
	r.ReduceArrival(0, me, sum) // arrival-ordered: exercises wildcard internal recvs
}

// ---- programs shared by the replay pair ----

func goldenReplayProgram(r *Rank) {
	for iter := 0; iter < 4; iter++ {
		if r.Rank() == 0 {
			for i := 1; i < r.Size(); i++ {
				goldenDrainRace(r)
			}
		} else {
			goldenRaceSend(r, iter)
			r.Compute(vtime.Duration(r.Rank()) * 300 * vtime.Nanosecond)
		}
	}
}

func goldenConfig(procs int, nd float64, seed int64) Config {
	cfg := DefaultConfig(procs, seed)
	cfg.Nodes = 2
	cfg.NDPercent = nd
	return cfg
}

func TestGoldenTraces(t *testing.T) {
	eager := goldenConfig(8, 100, 41)
	goldenCase(t, "eager-8rank-nd100", eager, goldenEagerProgram)

	rdv := goldenConfig(8, 100, 43)
	rdv.Net = DefaultNet
	rdv.Net.RendezvousThreshold = 64
	goldenCase(t, "rendezvous-8rank-nd100", rdv, goldenRendezvousProgram)

	coll := goldenConfig(7, 100, 47)
	goldenCase(t, "collectives-7rank-nd100", coll, goldenCollectiveProgram)

	// Record at one seed, replay under a different seed: the replayed
	// trace's match structure is pinned by the schedule, so its bytes
	// are a joint invariant of the matcher, the replay engine, and the
	// scheduler.
	recCfg := goldenConfig(8, 100, 53)
	recTr, _, err := Run(recCfg, trace.Meta{Pattern: "golden/replay-record"}, goldenReplayProgram)
	if err != nil {
		t.Fatalf("replay recording run: %v", err)
	}
	replayCfg := goldenConfig(8, 100, 99) // different seed: jitter differs, matches must not
	replayCfg.Replay = RecordSchedule(recTr)
	goldenCase(t, "replay-8rank-nd100", replayCfg, goldenReplayProgram)
}
