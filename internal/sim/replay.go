package sim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/anacin-go/anacinx/internal/trace"
)

// Record-and-replay in the style of ReMPI (Sato et al., SC'15), the
// related-work tool the paper cites for suppressing non-determinism:
// a recorded Schedule pins every wildcard receive of a later run to the
// message it matched in the recorded run, making the communication
// structure reproducible even at 100% injected non-determinism.

// MatchKey identifies a message independently of the run that carried
// it: the sending rank plus the message's sequence number on its
// (src → dst) channel. Channel sequence numbers are stable across runs
// as long as the program's per-channel send order does not depend on
// received data, which holds for all patterns in this repository.
type MatchKey struct {
	Src     int `json:"src"`
	ChanSeq int `json:"chan_seq"`
}

// Schedule is the per-rank ordered list of receive matches recorded from
// a run. Installing it in Config.Replay pins each traced receive of the
// next run, in issue order, to its recorded message.
//
// Limitation (shared with the recording granularity of the trace): for
// programs with several outstanding Irecv requests, matches are replayed
// in completion order, so replay is faithful when requests are waited in
// posting order.
type Schedule struct {
	PerRank [][]MatchKey `json:"per_rank"`
}

// RecordSchedule extracts the match order of every traced receive from a
// completed run's trace.
func RecordSchedule(tr *trace.Trace) *Schedule {
	s := &Schedule{PerRank: make([][]MatchKey, tr.Procs())}
	for rank, evs := range tr.Events {
		for i := range evs {
			e := &evs[i]
			if e.Kind.IsReceive() && e.MsgID != trace.NoMsg {
				s.PerRank[rank] = append(s.PerRank[rank], MatchKey{Src: e.Peer, ChanSeq: e.ChanSeq})
			}
		}
	}
	return s
}

// validate checks the schedule covers exactly the configured rank count
// and references only valid source ranks.
func (s *Schedule) validate(procs int) error {
	if len(s.PerRank) != procs {
		return fmt.Errorf("sim: replay schedule covers %d ranks, run has %d", len(s.PerRank), procs)
	}
	for rank, keys := range s.PerRank {
		for i, k := range keys {
			if k.Src < 0 || k.Src >= procs {
				return fmt.Errorf("sim: replay schedule rank %d entry %d: src %d out of range", rank, i, k.Src)
			}
			if k.ChanSeq < 0 {
				return fmt.Errorf("sim: replay schedule rank %d entry %d: negative chan seq", rank, i)
			}
		}
	}
	return nil
}

// Receives returns the total number of recorded matches.
func (s *Schedule) Receives() int {
	n := 0
	for _, keys := range s.PerRank {
		n += len(keys)
	}
	return n
}

// WriteJSON serializes the schedule.
func (s *Schedule) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// ReadSchedule parses a schedule written with WriteJSON.
func ReadSchedule(r io.Reader) (*Schedule, error) {
	var s Schedule
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("sim: decode schedule: %w", err)
	}
	return &s, nil
}

// SaveFile writes the schedule to path as JSON.
func (s *Schedule) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	bw := bufio.NewWriter(f)
	if err := s.WriteJSON(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadSchedule reads a JSON schedule from path.
func LoadSchedule(path string) (*Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSchedule(bufio.NewReader(f))
}
