package sim_test

import (
	"strings"
	"testing"
	"time"

	"github.com/anacin-go/anacinx/internal/patterns"
	"github.com/anacin-go/anacinx/internal/sim"
	"github.com/anacin-go/anacinx/internal/trace"
	"github.com/anacin-go/anacinx/internal/vtime"
)

// Wallclock tests assert STRUCTURE only (counts, matching, validity) —
// never timing or order, which the real scheduler owns.

// wallRace is a message race program on the sim.Proc surface.
func wallRace(procs, rounds int) func(sim.Proc) {
	return func(r sim.Proc) {
		if r.Rank() == 0 {
			for i := 0; i < (procs-1)*rounds; i++ {
				r.Recv(sim.AnySource, sim.AnyTag)
			}
		} else {
			for i := 0; i < rounds; i++ {
				r.SendSize(0, i, 1)
			}
		}
	}
}

func TestWallclockValidation(t *testing.T) {
	if _, err := sim.RunWallclock(sim.DefaultWallConfig(0, 1), trace.Meta{}, func(sim.Proc) {}); err == nil {
		t.Error("zero procs accepted")
	}
	bad := sim.DefaultWallConfig(2, 1)
	bad.NDPercent = 101
	if _, err := sim.RunWallclock(bad, trace.Meta{}, func(sim.Proc) {}); err == nil {
		t.Error("bad ND accepted")
	}
	if _, err := sim.RunWallclock(sim.DefaultWallConfig(2, 1), trace.Meta{}, nil); err == nil {
		t.Error("nil program accepted")
	}
}

func TestWallclockBasicExchange(t *testing.T) {
	tr, err := sim.RunWallclock(sim.DefaultWallConfig(4, 1), trace.Meta{Pattern: "wall"}, wallRace(4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	counts := tr.KindCounts()
	if counts[trace.KindSend] != 9 || counts[trace.KindRecv] != 9 {
		t.Errorf("counts = %v", counts)
	}
	if tr.MatchedPairs() != 9 {
		t.Errorf("MatchedPairs = %d", tr.MatchedPairs())
	}
	if tr.Meta.Procs != 4 || tr.Meta.Pattern != "wall" {
		t.Errorf("meta = %+v", tr.Meta)
	}
}

func TestWallclockPayloadIntegrity(t *testing.T) {
	tr, err := sim.RunWallclock(sim.DefaultWallConfig(2, 1), trace.Meta{}, func(r sim.Proc) {
		if r.Rank() == 0 {
			r.Send(1, 5, []byte("payload"))
		} else {
			m := r.Recv(0, 5)
			if string(m.Data) != "payload" || m.Src != 0 || m.Tag != 5 {
				panic("corrupt message")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumEvents() != 6 {
		t.Errorf("events = %d", tr.NumEvents())
	}
}

func TestWallclockFIFOPerChannel(t *testing.T) {
	// Same-channel messages keep send order even with injected jitter.
	cfg := sim.DefaultWallConfig(2, 7)
	cfg.NDPercent = 100
	cfg.JitterMax = 100 * time.Microsecond
	tr, err := sim.RunWallclock(cfg, trace.Meta{}, func(r sim.Proc) {
		if r.Rank() == 0 {
			for i := 0; i < 20; i++ {
				r.SendSize(1, i, 1)
			}
		} else {
			for i := 0; i < 20; i++ {
				m := r.Recv(0, sim.AnyTag)
				if m.Tag != i {
					panic("same-channel overtaking")
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.MatchedPairs() != 20 {
		t.Errorf("MatchedPairs = %d", tr.MatchedPairs())
	}
}

func TestWallclockDeadlockTimesOut(t *testing.T) {
	cfg := sim.DefaultWallConfig(2, 1)
	cfg.RecvTimeout = 50 * time.Millisecond
	_, err := sim.RunWallclock(cfg, trace.Meta{}, func(r sim.Proc) {
		r.Recv(sim.AnySource, sim.AnyTag) // no one sends
	})
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Errorf("err = %v, want receive timeout", err)
	}
}

func TestWallclockPanicPropagates(t *testing.T) {
	cfg := sim.DefaultWallConfig(3, 1)
	cfg.RecvTimeout = time.Second
	_, err := sim.RunWallclock(cfg, trace.Meta{}, func(r sim.Proc) {
		if r.Rank() == 2 {
			panic("wall boom")
		}
		if r.Rank() == 0 {
			r.Recv(sim.AnySource, sim.AnyTag) // unblocked by the failure broadcast
		}
	})
	if err == nil || !strings.Contains(err.Error(), "wall boom") {
		t.Errorf("err = %v", err)
	}
}

func TestWallclockRunsPaperPatterns(t *testing.T) {
	// Every sim.Proc-only pattern must complete on the wallclock runtime
	// and produce a structurally valid trace whose event graph builds.
	for _, name := range []string{"message_race", "amg2013", "unstructured_mesh", "mcb", "ring_halo", "stencil2d"} {
		pat, err := patterns.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		params := patterns.DefaultParams(6)
		params.Iterations = 2
		prog, err := pat.Program(params)
		if err != nil {
			t.Fatal(err)
		}
		cfg := sim.DefaultWallConfig(6, 3)
		cfg.NDPercent = 50
		tr, err := sim.RunWallclock(cfg, trace.Meta{Pattern: name}, prog)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: invalid trace: %v", name, err)
		}
	}
}

func TestWallclockReducePipelineRefused(t *testing.T) {
	pat, err := patterns.ByName("reduce_pipeline")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := pat.Program(patterns.DefaultParams(4))
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.RunWallclock(sim.DefaultWallConfig(4, 1), trace.Meta{}, prog)
	if err == nil || !strings.Contains(err.Error(), "DES runtime") {
		t.Errorf("collective pattern on wallclock: err = %v", err)
	}
}

func TestWallclockComputeSleepsScaled(t *testing.T) {
	cfg := sim.DefaultWallConfig(1, 1)
	cfg.ComputeScale = 1000
	start := time.Now()
	_, err := sim.RunWallclock(cfg, trace.Meta{}, func(r sim.Proc) {
		r.Compute(20 * vtime.Millisecond) // ≈ 20µs real
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("Compute slept way too long: %v", elapsed)
	}
}

func TestWallclockAdaptRunsOnDES(t *testing.T) {
	// The same generic program runs under the deterministic runtime via
	// Adapt; determinism still holds there.
	prog := wallRace(4, 2)
	cfg := sim.DefaultConfig(4, 5)
	cfg.NDPercent = 100
	tr1, _, err := sim.Run(cfg, trace.Meta{}, sim.Adapt(prog))
	if err != nil {
		t.Fatal(err)
	}
	tr2, _, err := sim.Run(cfg, trace.Meta{}, sim.Adapt(prog))
	if err != nil {
		t.Fatal(err)
	}
	if tr1.Hash() != tr2.Hash() {
		t.Error("DES runtime lost determinism through Adapt")
	}
}
