package sim

import (
	"bytes"
	"sync"
	"testing"

	"github.com/anacin-go/anacinx/internal/trace"
)

// TestConcurrentRunsShareInternCache runs the same simulation from 32
// goroutines at once. Every run records callstacks, so all of them
// hammer the process-wide callstack intern cache concurrently — under
// -race this is the cache's data-race check. Because the runs are
// identical, their serialized traces must be byte-identical, and the
// interned frame slices must be shared across runs rather than
// re-decoded per run.
func TestConcurrentRunsShareInternCache(t *testing.T) {
	const runs = 32
	serialized := make([][]byte, runs)
	traces := make([]*trace.Trace, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, _, err := Run(goldenConfig(8, 100, 41), trace.Meta{Pattern: "stress"}, goldenEagerProgram)
			if err != nil {
				errs[i] = err
				return
			}
			var buf bytes.Buffer
			if err := tr.WriteBinary(&buf); err != nil {
				errs[i] = err
				return
			}
			traces[i] = tr
			serialized[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	for i := 1; i < runs; i++ {
		if !bytes.Equal(serialized[i], serialized[0]) {
			t.Fatalf("run %d produced a different trace than run 0 (%d vs %d bytes)",
				i, len(serialized[i]), len(serialized[0]))
		}
	}

	// Interning check: the same callsite's frame slice is the same
	// backing array in every run's events, not an equal copy.
	shared := 0
	for i := 1; i < runs; i++ {
		for rank := range traces[0].Events {
			for j := range traces[0].Events[rank] {
				a := traces[0].Events[rank][j].Callstack
				b := traces[i].Events[rank][j].Callstack
				if len(a) == 0 {
					continue
				}
				if &a[0] != &b[0] {
					t.Fatalf("run %d rank %d event %d: callstack decoded twice for one callsite", i, rank, j)
				}
				shared++
			}
		}
	}
	if shared == 0 {
		t.Fatal("no callstack-bearing events; the stress program must capture stacks")
	}
}
