package sim

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/anacin-go/anacinx/internal/trace"
)

// TestBinaryV2SmallerThanV1OnGoldens pins the v2 format's size win on
// the committed golden traces: re-encoding each v1 golden as v2 must
// shave at least 30% — the delta/columnar layout and front-coded
// dictionary paying for the footer index they add.
func TestBinaryV2SmallerThanV1OnGoldens(t *testing.T) {
	goldens, err := filepath.Glob(filepath.Join("testdata", "*.trace"))
	if err != nil || len(goldens) == 0 {
		t.Fatalf("no golden traces found (err %v)", err)
	}
	for _, path := range goldens {
		v1, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := trace.ReadBinary(bytes.NewReader(v1))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		var v2 bytes.Buffer
		if err := tr.WriteBinaryV2(&v2); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		ratio := float64(v2.Len()) / float64(len(v1))
		t.Logf("%s: v1=%d bytes, v2=%d bytes (%.1f%%)", path, len(v1), v2.Len(), 100*ratio)
		if ratio > 0.70 {
			t.Errorf("%s: v2 is %.1f%% of v1, want <= 70%%", path, 100*ratio)
		}

		// The smaller encoding must still round-trip exactly.
		rt, err := trace.ReadBinary(bytes.NewReader(v2.Bytes()))
		if err != nil {
			t.Fatalf("%s: v2 reread: %v", path, err)
		}
		if rt.Hash() != tr.Hash() {
			t.Errorf("%s: v2 re-encoding changed the trace", path)
		}
	}
}
