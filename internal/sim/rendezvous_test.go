package sim

import (
	"errors"
	"strings"
	"testing"

	"github.com/anacin-go/anacinx/internal/trace"
	"github.com/anacin-go/anacinx/internal/vtime"
)

// rvConfig returns a config whose sends of >= 1024 bytes use the
// rendezvous protocol.
func rvConfig(procs int, seed int64) Config {
	cfg := DefaultConfig(procs, seed)
	cfg.Net.RendezvousThreshold = 1024
	return cfg
}

func TestRendezvousSendCompletesOnMatch(t *testing.T) {
	// The sender's clock after a rendezvous Send must be at least the
	// receiver's matching time — here delayed by 1ms of compute.
	var sendDone, recvDone vtime.Time
	mustRun(t, rvConfig(2, 1), func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 0, make([]byte, 4096))
			sendDone = r.Now()
		} else {
			r.Compute(vtime.Millisecond)
			r.Recv(0, 0)
			recvDone = r.Now()
		}
	})
	if sendDone < vtime.Time(vtime.Millisecond) {
		t.Errorf("rendezvous send completed at %v, before the receive at %v", sendDone, recvDone)
	}
}

func TestEagerSendBelowThreshold(t *testing.T) {
	// Small sends stay eager: the sender finishes long before the
	// receiver bothers to receive.
	var sendDone vtime.Time
	mustRun(t, rvConfig(2, 1), func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 0, make([]byte, 8))
			sendDone = r.Now()
		} else {
			r.Compute(vtime.Millisecond)
			r.Recv(0, 0)
		}
	})
	if sendDone >= vtime.Time(vtime.Millisecond) {
		t.Errorf("small send blocked until the receive: %v", sendDone)
	}
}

func TestRendezvousHeadToHeadDeadlocks(t *testing.T) {
	// The classic MPI bug: both ranks Send large payloads first. Under
	// the rendezvous protocol this deadlocks, and the error must say
	// both ranks are stuck in rendezvous sends.
	_, _, err := Run(rvConfig(2, 1), trace.Meta{}, func(r *Rank) {
		other := 1 - r.Rank()
		r.Send(other, 0, make([]byte, 2048))
		r.Recv(other, 0)
	})
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(dl.Blocked) != 2 {
		t.Errorf("blocked ranks: %v", dl.Blocked)
	}
	if !strings.Contains(err.Error(), "rendezvous") {
		t.Errorf("error %q does not mention rendezvous", err)
	}
}

func TestSendrecvAvoidsHeadToHeadDeadlock(t *testing.T) {
	// The canonical fix: Sendrecv. Must complete and deliver payloads.
	payload := make([]byte, 2048)
	var got [2]Message
	mustRun(t, rvConfig(2, 1), func(r *Rank) {
		other := 1 - r.Rank()
		payload[0] = byte(r.Rank()) // sender id in byte 0 (copied at send)
		p := append([]byte(nil), payload...)
		p[0] = byte(r.Rank())
		got[r.Rank()] = r.Sendrecv(other, 0, p, other, 0)
	})
	for rank := 0; rank < 2; rank++ {
		m := got[rank]
		if m.Size != 2048 || m.Data[0] != byte(1-rank) {
			t.Errorf("rank %d received %d bytes from marker %d", rank, m.Size, m.Data[0])
		}
	}
}

func TestRendezvousIsendWaitAfterConsumption(t *testing.T) {
	// The receive happens while the sender computes; the later Wait
	// must complete instantly but not before the consumption time.
	mustRun(t, rvConfig(2, 1), func(r *Rank) {
		if r.Rank() == 0 {
			req := r.Isend(1, 0, make([]byte, 4096))
			r.Compute(2 * vtime.Millisecond) // receiver consumes meanwhile
			before := r.Now()
			r.Wait(req)
			if r.Now() < before {
				panic("Wait moved the clock backwards")
			}
		} else {
			r.Recv(0, 0)
		}
	})
}

func TestRendezvousIsendWaitBlocksUntilConsumption(t *testing.T) {
	var waitDone vtime.Time
	mustRun(t, rvConfig(2, 1), func(r *Rank) {
		if r.Rank() == 0 {
			req := r.Isend(1, 0, make([]byte, 4096))
			r.Wait(req) // receiver is still computing: must block
			waitDone = r.Now()
		} else {
			r.Compute(3 * vtime.Millisecond)
			r.Recv(0, 0)
		}
	})
	if waitDone < vtime.Time(3*vtime.Millisecond) {
		t.Errorf("Wait returned at %v, before consumption", waitDone)
	}
}

func TestRendezvousWithPostedIrecv(t *testing.T) {
	// Receiver posts an Irecv first; sender's rendezvous Send completes
	// at message arrival.
	mustRun(t, rvConfig(2, 1), func(r *Rank) {
		if r.Rank() == 1 {
			req := r.Irecv(0, 0)
			r.Compute(vtime.Millisecond)
			m := r.Wait(req)
			if m.Size != 4096 {
				panic("wrong payload")
			}
		} else {
			r.Send(1, 0, make([]byte, 4096))
		}
	})
}

func TestRendezvousUnderND(t *testing.T) {
	// Rendezvous + 100% ND: a race of large messages still completes
	// and validates, across seeds.
	for seed := int64(0); seed < 5; seed++ {
		cfg := rvConfig(5, seed)
		cfg.NDPercent = 100
		mustRun(t, cfg, func(r *Rank) {
			if r.Rank() == 0 {
				for i := 0; i < 4; i++ {
					r.Recv(AnySource, AnyTag)
				}
			} else {
				r.Send(0, 0, make([]byte, 2048))
			}
		})
	}
}

func TestCollectivesIgnoreRendezvous(t *testing.T) {
	// Internal collective messages must stay eager even above the
	// threshold — ring allgather of 4 KiB blocks would deadlock
	// otherwise.
	cfg := rvConfig(6, 1)
	mustRun(t, cfg, func(r *Rank) {
		blocks := r.Allgather(make([]byte, 4096))
		if len(blocks) != 6 {
			panic("allgather lost blocks")
		}
		r.Reduce(0, make([]byte, 8192), func(a, b []byte) []byte { return a })
		r.Barrier()
	})
}

func TestRendezvousDeterministic(t *testing.T) {
	cfg := rvConfig(4, 7)
	cfg.NDPercent = 100
	program := func(r *Rank) {
		if r.Rank() == 0 {
			for i := 0; i < 3; i++ {
				r.Recv(AnySource, AnyTag)
			}
		} else {
			r.Send(0, 0, make([]byte, 2048))
		}
	}
	tr1, _ := mustRun(t, cfg, program)
	tr2, _ := mustRun(t, cfg, program)
	if tr1.Hash() != tr2.Hash() {
		t.Error("rendezvous runs not reproducible for one seed")
	}
}
