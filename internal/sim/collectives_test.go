package sim

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"testing"

	"github.com/anacin-go/anacinx/internal/trace"
	"github.com/anacin-go/anacinx/internal/vtime"
)

// opConcat is an associative, non-commutative reduce op used to observe
// combination order.
func opConcat(a, b []byte) []byte { return append(append([]byte(nil), a...), b...) }

// opSumF64 adds two little-endian float64 payloads.
func opSumF64(a, b []byte) []byte {
	x := math.Float64frombits(binary.LittleEndian.Uint64(a))
	y := math.Float64frombits(binary.LittleEndian.Uint64(b))
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, math.Float64bits(x+y))
	return out
}

func f64Bytes(v float64) []byte {
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, math.Float64bits(v))
	return out
}

func f64Of(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// procCounts exercises power-of-two and ragged sizes, plus the P=1 edge.
var procCounts = []int{1, 2, 3, 4, 5, 7, 8, 13}

func TestBarrierSynchronizes(t *testing.T) {
	for _, p := range procCounts {
		p := p
		t.Run(fmt.Sprint(p), func(t *testing.T) {
			// Rank 0 computes for 1ms before the barrier; everyone's
			// clock after the barrier must be at least that.
			after := make([]vtime.Time, p)
			mustRun(t, DefaultConfig(p, 1), func(r *Rank) {
				if r.Rank() == 0 {
					r.Compute(vtime.Millisecond)
				}
				r.Barrier()
				after[r.Rank()] = r.Now()
			})
			for rank, tm := range after {
				if p > 1 && tm < vtime.Time(vtime.Millisecond) {
					t.Errorf("rank %d left the barrier at %v, before the slowest rank entered", rank, tm)
				}
			}
		})
	}
}

func TestBcastAllRoots(t *testing.T) {
	for _, p := range procCounts {
		for root := 0; root < p; root++ {
			payload := []byte(fmt.Sprintf("payload-from-%d", root))
			got := make([][]byte, p)
			mustRun(t, DefaultConfig(p, 1), func(r *Rank) {
				var data []byte
				if r.Rank() == root {
					data = payload
				}
				got[r.Rank()] = r.Bcast(root, data)
			})
			for rank, g := range got {
				if !bytes.Equal(g, payload) {
					t.Fatalf("p=%d root=%d rank=%d got %q", p, root, rank, g)
				}
			}
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, p := range procCounts {
		for root := 0; root < p; root += 2 {
			var result []byte
			mustRun(t, DefaultConfig(p, 1), func(r *Rank) {
				out := r.Reduce(root, f64Bytes(float64(r.Rank()+1)), opSumF64)
				if r.Rank() == root {
					result = out
				} else if out != nil {
					panic("non-root got a reduce result")
				}
			})
			want := float64(p*(p+1)) / 2
			if f64Of(result) != want {
				t.Fatalf("p=%d root=%d: sum = %v, want %v", p, root, f64Of(result), want)
			}
		}
	}
}

func TestReduceDeterministicOrder(t *testing.T) {
	// Tree reduce with a non-commutative op must give the same result
	// for every seed, even at 100% ND.
	cfg := DefaultConfig(6, 1)
	cfg.NDPercent = 100
	var first []byte
	for seed := int64(0); seed < 8; seed++ {
		cfg.Seed = seed
		var result []byte
		mustRun(t, cfg, func(r *Rank) {
			out := r.Reduce(0, []byte{byte('a' + r.Rank())}, opConcat)
			if r.Rank() == 0 {
				result = out
			}
		})
		if seed == 0 {
			first = result
		} else if !bytes.Equal(result, first) {
			t.Fatalf("seed %d changed tree-reduce order: %q vs %q", seed, result, first)
		}
	}
}

func TestReduceArrivalOrderNondeterministic(t *testing.T) {
	// Arrival-order reduce with a non-commutative op at 100% ND must
	// produce at least two distinct results across seeds — the
	// numerical-reproducibility failure mode the paper's references
	// [4][5] discuss.
	cfg := DefaultConfig(8, 1)
	cfg.NDPercent = 100
	results := make(map[string]bool)
	for seed := int64(0); seed < 16; seed++ {
		cfg.Seed = seed
		var result []byte
		mustRun(t, cfg, func(r *Rank) {
			out := r.ReduceArrival(0, []byte{byte('a' + r.Rank())}, opConcat)
			if r.Rank() == 0 {
				result = out
			}
		})
		if len(result) != 8 || result[0] != 'a' {
			t.Fatalf("seed %d: malformed result %q", seed, result)
		}
		results[string(result)] = true
	}
	if len(results) < 2 {
		t.Error("arrival-order reduce was deterministic across 16 seeds at 100% ND")
	}
}

func TestReduceArrivalZeroNDDeterministic(t *testing.T) {
	cfg := DefaultConfig(8, 1)
	results := make(map[string]bool)
	for seed := int64(0); seed < 8; seed++ {
		cfg.Seed = seed
		var result []byte
		mustRun(t, cfg, func(r *Rank) {
			out := r.ReduceArrival(0, []byte{byte('a' + r.Rank())}, opConcat)
			if r.Rank() == 0 {
				result = out
			}
		})
		results[string(result)] = true
	}
	if len(results) != 1 {
		t.Errorf("arrival-order reduce at 0%% ND gave %d distinct results", len(results))
	}
}

func TestAllreduce(t *testing.T) {
	for _, p := range procCounts {
		got := make([]float64, p)
		mustRun(t, DefaultConfig(p, 1), func(r *Rank) {
			out := r.Allreduce(f64Bytes(float64(r.Rank()+1)), opSumF64)
			got[r.Rank()] = f64Of(out)
		})
		want := float64(p*(p+1)) / 2
		for rank, v := range got {
			if v != want {
				t.Fatalf("p=%d rank=%d allreduce = %v, want %v", p, rank, v, want)
			}
		}
	}
}

func TestGather(t *testing.T) {
	for _, p := range procCounts {
		root := p / 2
		var gathered [][]byte
		mustRun(t, DefaultConfig(p, 1), func(r *Rank) {
			out := r.Gather(root, []byte{byte(r.Rank() * 3)})
			if r.Rank() == root {
				gathered = out
			}
		})
		if len(gathered) != p {
			t.Fatalf("p=%d: gathered %d parts", p, len(gathered))
		}
		for rank, part := range gathered {
			if len(part) != 1 || part[0] != byte(rank*3) {
				t.Fatalf("p=%d rank=%d part %v", p, rank, part)
			}
		}
	}
}

func TestScatter(t *testing.T) {
	for _, p := range procCounts {
		root := 0
		parts := make([][]byte, p)
		for i := range parts {
			parts[i] = []byte{byte(i + 10)}
		}
		got := make([][]byte, p)
		mustRun(t, DefaultConfig(p, 1), func(r *Rank) {
			var in [][]byte
			if r.Rank() == root {
				in = parts
			}
			got[r.Rank()] = r.Scatter(root, in)
		})
		for rank, part := range got {
			if len(part) != 1 || part[0] != byte(rank+10) {
				t.Fatalf("p=%d rank=%d got %v", p, rank, part)
			}
		}
	}
}

func TestAllgather(t *testing.T) {
	for _, p := range procCounts {
		got := make([][][]byte, p)
		mustRun(t, DefaultConfig(p, 1), func(r *Rank) {
			got[r.Rank()] = r.Allgather([]byte{byte(r.Rank() + 1)})
		})
		for rank, all := range got {
			if len(all) != p {
				t.Fatalf("p=%d rank=%d: %d blocks", p, rank, len(all))
			}
			for src, block := range all {
				if len(block) != 1 || block[0] != byte(src+1) {
					t.Fatalf("p=%d rank=%d block[%d] = %v", p, rank, src, block)
				}
			}
		}
	}
}

func TestAlltoall(t *testing.T) {
	for _, p := range procCounts {
		got := make([][][]byte, p)
		mustRun(t, DefaultConfig(p, 1), func(r *Rank) {
			parts := make([][]byte, p)
			for dst := range parts {
				parts[dst] = []byte{byte(r.Rank()), byte(dst)}
			}
			got[r.Rank()] = r.Alltoall(parts)
		})
		for rank, all := range got {
			for src, part := range all {
				if len(part) != 2 || part[0] != byte(src) || part[1] != byte(rank) {
					t.Fatalf("p=%d rank=%d from %d: %v", p, rank, src, part)
				}
			}
		}
	}
}

func TestScan(t *testing.T) {
	for _, p := range procCounts {
		got := make([]float64, p)
		mustRun(t, DefaultConfig(p, 1), func(r *Rank) {
			out := r.Scan(f64Bytes(float64(r.Rank()+1)), opSumF64)
			got[r.Rank()] = f64Of(out)
		})
		for rank, v := range got {
			want := float64((rank+1)*(rank+2)) / 2 // 1+2+...+(rank+1)
			if v != want {
				t.Fatalf("p=%d rank=%d scan = %v, want %v", p, rank, v, want)
			}
		}
	}
}

func TestScanOrderFixedUnderND(t *testing.T) {
	// Scan combines in rank order by construction: a non-commutative op
	// gives identical results at 100% ND across seeds.
	cfg := DefaultConfig(5, 1)
	cfg.NDPercent = 100
	var first []byte
	for seed := int64(0); seed < 5; seed++ {
		cfg.Seed = seed
		var last []byte
		mustRun(t, cfg, func(r *Rank) {
			out := r.Scan([]byte{byte('a' + r.Rank())}, opConcat)
			if r.Rank() == 4 {
				last = out
			}
		})
		if string(last) != "abcde" {
			t.Fatalf("seed %d: scan tail = %q", seed, last)
		}
		if seed == 0 {
			first = last
		} else if string(first) != string(last) {
			t.Fatal("scan result varied across seeds")
		}
	}
}

func TestScanNilOpPanics(t *testing.T) {
	_, _, err := Run(DefaultConfig(2, 1), trace.Meta{}, func(r *Rank) { r.Scan(nil, nil) })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
}

func TestCollectivesTraceSingleEvent(t *testing.T) {
	// Each collective call appears exactly once per rank in the trace;
	// the internal plumbing messages are invisible.
	tr, stats := mustRun(t, DefaultConfig(4, 1), func(r *Rank) {
		r.Barrier()
		r.Bcast(0, []byte("x"))
		r.Allreduce(f64Bytes(1), opSumF64)
	})
	counts := tr.KindCounts()
	if counts[trace.KindBarrier] != 4 || counts[trace.KindBcast] != 4 || counts[trace.KindAllreduce] != 4 {
		t.Errorf("KindCounts = %v", counts)
	}
	if counts[trace.KindSend] != 0 || counts[trace.KindRecv] != 0 {
		t.Errorf("internal messages leaked into the trace: %v", counts)
	}
	// ... but they do traverse the network.
	if stats.Messages == 0 {
		t.Error("collectives moved no messages")
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("trace invalid: %v", err)
	}
}

func TestCollectivesUnderND(t *testing.T) {
	// Correctness must hold at 100% ND for every algorithm.
	cfg := DefaultConfig(7, 2)
	cfg.NDPercent = 100
	for seed := int64(0); seed < 5; seed++ {
		cfg.Seed = seed
		var sum float64
		mustRun(t, cfg, func(r *Rank) {
			r.Barrier()
			data := r.Bcast(0, f64Bytes(2.5))
			if f64Of(data) != 2.5 {
				panic("bcast corrupted under ND")
			}
			out := r.Allreduce(f64Bytes(float64(r.Rank())), opSumF64)
			if r.Rank() == 3 {
				sum = f64Of(out)
			}
			all := r.Allgather([]byte{byte(r.Rank())})
			for src, b := range all {
				if b[0] != byte(src) {
					panic("allgather corrupted under ND")
				}
			}
		})
		if sum != 21 { // 0+1+...+6
			t.Fatalf("seed %d: allreduce sum = %v", seed, sum)
		}
	}
}

func TestMixedP2PAndCollectives(t *testing.T) {
	// Interleaving user messages with collectives must not cross-match:
	// user payloads survive intact.
	cfg := DefaultConfig(4, 1)
	cfg.NDPercent = 100
	mustRun(t, cfg, func(r *Rank) {
		if r.Rank() == 0 {
			for i := 1; i < 4; i++ {
				r.Send(i, 0, []byte{0xAA})
			}
		}
		r.Barrier()
		if r.Rank() != 0 {
			m := r.Recv(0, 0)
			if len(m.Data) != 1 || m.Data[0] != 0xAA {
				panic("user message corrupted by collective plumbing")
			}
		}
		r.Barrier()
	})
}

func TestCollectiveValidation(t *testing.T) {
	cases := []struct {
		name    string
		program Program
	}{
		{"bad bcast root", func(r *Rank) { r.Bcast(99, nil) }},
		{"nil reduce op", func(r *Rank) { r.Reduce(0, nil, nil) }},
		{"nil allreduce op", func(r *Rank) { r.Allreduce(nil, nil) }},
		{"nil reduce-arrival op", func(r *Rank) { r.ReduceArrival(0, nil, nil) }},
		{"short scatter", func(r *Rank) { r.Scatter(0, [][]byte{nil}) }},
		{"short alltoall", func(r *Rank) { r.Alltoall([][]byte{nil}) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, _, err := Run(DefaultConfig(3, 1), trace.Meta{}, c.program)
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Errorf("err = %v, want PanicError", err)
			}
		})
	}
}

func TestMismatchedCollectivesDeadlock(t *testing.T) {
	// Rank 0 enters a barrier no one else joins: detected as deadlock.
	_, _, err := Run(DefaultConfig(3, 1), trace.Meta{}, func(r *Rank) {
		if r.Rank() == 0 {
			r.Barrier()
		}
	})
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
}

func TestLamportOrderAcrossCollective(t *testing.T) {
	// A collective is a synchronization point: every rank's collective
	// event must have a Lamport timestamp greater than every rank's
	// pre-collective event... for Barrier (full synchronization) the
	// weaker, always-true property is: each rank's barrier event exceeds
	// its own prior events and at least one remote contribution chain.
	tr, _ := mustRun(t, DefaultConfig(4, 1), func(r *Rank) {
		if r.Rank() == 0 {
			r.Compute(vtime.Millisecond)
		}
		r.Barrier()
	})
	// Rank 0 did Init(1)... Barrier(n). Other ranks' barriers causally
	// follow rank 0's init through the dissemination messages; with the
	// strict-increase validation this reduces to: validate passes and
	// every barrier lamport > its rank's init lamport.
	for rank, evs := range tr.Events {
		var initL, barrierL int64
		for i := range evs {
			switch evs[i].Kind {
			case trace.KindInit:
				initL = evs[i].Lamport
			case trace.KindBarrier:
				barrierL = evs[i].Lamport
			}
		}
		if barrierL <= initL {
			t.Errorf("rank %d: barrier lamport %d <= init %d", rank, barrierL, initL)
		}
	}
}

func TestCollectivesWithRendezvousUserTraffic(t *testing.T) {
	// Large (rendezvous) user messages interleaved with collectives:
	// the protocols must not interfere, at 100% ND, across seeds.
	for seed := int64(0); seed < 4; seed++ {
		cfg := DefaultConfig(6, seed)
		cfg.NDPercent = 100
		cfg.Net.RendezvousThreshold = 512
		mustRun(t, cfg, func(r *Rank) {
			other := (r.Rank() + 3) % 6
			req := r.Isend(other, 1, make([]byte, 2048))
			r.Barrier()
			m := r.Recv((r.Rank()+3)%6, 1)
			if m.Size != 2048 {
				panic("rendezvous payload lost around a barrier")
			}
			sum := r.Allreduce(f64Bytes(1), opSumF64)
			if f64Of(sum) != 6 {
				panic("allreduce wrong amid rendezvous traffic")
			}
			r.Wait(req)
		})
	}
}

func TestReplayWithCollectives(t *testing.T) {
	// Replay pins only traced user receives; collective plumbing runs
	// free. A program mixing both must still replay exactly.
	program := func(r *Rank) {
		if r.Rank() == 0 {
			for i := 0; i < 4; i++ {
				r.Recv(AnySource, AnyTag)
			}
		} else {
			r.SendSize(0, 0, 1)
		}
		r.Barrier()
		r.Allreduce(f64Bytes(float64(r.Rank())), opSumF64)
	}
	cfg := DefaultConfig(5, 9)
	cfg.NDPercent = 100
	recorded, _ := mustRun(t, cfg, program)
	sched := RecordSchedule(recorded)
	for seed := int64(100); seed < 105; seed++ {
		rc := cfg
		rc.Seed = seed
		rc.Replay = sched
		tr, _ := mustRun(t, rc, program)
		if tr.OrderHash() != recorded.OrderHash() {
			t.Fatalf("seed %d: replay diverged with collectives present", seed)
		}
	}
}

func BenchmarkBarrier32(b *testing.B) {
	cfg := DefaultConfig(32, 1)
	cfg.CaptureStacks = false
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Run(cfg, trace.Meta{}, func(r *Rank) { r.Barrier() }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllreduce32(b *testing.B) {
	cfg := DefaultConfig(32, 1)
	cfg.CaptureStacks = false
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _, err := Run(cfg, trace.Meta{}, func(r *Rank) {
			r.Allreduce(f64Bytes(float64(r.Rank())), opSumF64)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
