package sim

import (
	"context"
	"fmt"
	"runtime/debug"
	"unsafe"

	"github.com/anacin-go/anacinx/internal/trace"
	"github.com/anacin-go/anacinx/internal/vtime"
)

// message is one point-to-point payload in flight or in a mailbox.
type message struct {
	id          int64 // global identity, unique within a run
	src, dst    int
	tag         int
	size        int
	data        []byte
	chanSeq     int   // sequence on the (src,dst) channel
	sendLamport int64 // sender's Lamport clock at the send event
	arrival     vtime.Time
	deliverSeq  int64    // heap tie-break; assigned at scheduling time
	delayed     bool     // true when congestion jitter was applied
	internal    bool     // true for untraced collective plumbing
	rendezvous  bool     // sender completion deferred until consumption
	sendReq     *Request // pending non-blocking rendezvous send, if any
}

// eventHeap is a hand-rolled min-heap of in-flight messages ordered by
// (arrival, deliverSeq). Hand-rolled rather than container/heap so the
// per-message push/pop stays free of interface conversions and dynamic
// dispatch — it sits on the hot path of every send. The ordering keys
// live inline in the heap entries: a deep in-flight queue (a fan-in
// root tens of thousands of messages behind its senders) sifts through
// contiguous memory instead of dereferencing two *message per compare.
type eventHeap []heapEntry

// heapEntry is one in-flight message with its ordering keys hoisted out
// of the message object.
type heapEntry struct {
	arrival    vtime.Time
	deliverSeq int64
	msg        *message
}

func entryBefore(a, b heapEntry) bool {
	if a.arrival != b.arrival {
		return a.arrival < b.arrival
	}
	return a.deliverSeq < b.deliverSeq
}

func (h *eventHeap) push(m *message) {
	*h = append(*h, heapEntry{arrival: m.arrival, deliverSeq: m.deliverSeq, msg: m})
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !entryBefore((*h)[i], (*h)[parent]) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *eventHeap) pop() *message {
	old := *h
	m := old[0].msg
	last := len(old) - 1
	old[0] = old[last]
	old[last] = heapEntry{}
	*h = old[:last]
	h.down(0)
	return m
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && entryBefore(h[right], h[left]) {
			least = right
		}
		if !entryBefore(h[least], h[i]) {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

type rankStatus uint8

const (
	statusReady rankStatus = iota
	statusRunning
	statusBlocked
	statusDone
)

type waitKind uint8

const (
	waitRecv waitKind = iota
	waitProbe
	waitRequest
	waitAny
	waitRendezvous
)

// waiter describes why a rank is blocked.
type waiter struct {
	kind     waitKind
	src      int // filter (AnySource ok) for waitRecv/waitProbe
	tag      int
	internal bool       // waiting for collective plumbing, not user messages
	key      *MatchKey  // exact replay match, when replaying
	req      *Request   // for waitRequest
	reqs     []*Request // for waitAny
	msg      *message   // filled by the scheduler on match
}

func (w *waiter) describe() string {
	src := "any"
	if w.src != AnySource {
		src = fmt.Sprint(w.src)
	}
	tag := "any"
	if w.tag != AnyTag {
		tag = fmt.Sprint(w.tag)
	}
	switch w.kind {
	case waitRecv:
		return fmt.Sprintf("in Recv(src=%s, tag=%s)", src, tag)
	case waitProbe:
		return fmt.Sprintf("in Probe(src=%s, tag=%s)", src, tag)
	case waitRequest:
		if w.req != nil && w.req.isRecv {
			return fmt.Sprintf("in Wait(Irecv src=%s, tag=%s)", src, tag)
		}
		return "in Wait(Isend)"
	case waitAny:
		return fmt.Sprintf("in Waitany(%d requests)", len(w.reqs))
	case waitRendezvous:
		if w.msg != nil {
			return fmt.Sprintf("in Send(rendezvous to %d, tag=%d, %d B)", w.msg.dst, w.msg.tag, w.msg.size)
		}
		return "in Send(rendezvous)"
	}
	return "blocked"
}

// matches reports whether msg satisfies the waiter's filter and, when a
// replay key is pinned, whether it is exactly the recorded message.
func (w *waiter) matches(msg *message) bool {
	return msg.internal == w.internal && filterMatches(w.src, w.tag, w.key, msg)
}

// filterMatches applies the (src, tag) wildcard filter plus an optional
// replay pin. Internal/user isolation is enforced separately (by
// matchAllowed on mailbox scans and by the internal flags on waiters and
// posted requests), so collective plumbing may use wildcard receives.
func filterMatches(src, tag int, key *MatchKey, msg *message) bool {
	if src != AnySource && msg.src != src {
		return false
	}
	if tag != AnyTag && msg.tag != tag {
		return false
	}
	if key != nil && (msg.src != key.Src || msg.chanSeq != key.ChanSeq) {
		return false
	}
	return true
}

// chanState is the per-(src,dst) channel bookkeeping: the next ChanSeq
// to assign and the last scheduled arrival (which enforces the MPI
// non-overtaking bump in schedule).
type chanState struct {
	seq         int
	lastArrival vtime.Time
	hasArrival  bool
}

// chanRowLinearMax bounds the destination count up to which a source's
// channel row is searched linearly. Real communication patterns are
// sparse — a stencil rank talks to a handful of neighbours — so the
// linear form keeps the two per-message lookups inside one or two cache
// lines with zero hashing. Rows that outgrow the bound (all-to-all
// exchanges, fan-in roots) build a map index once and stay O(1). A var,
// not a const, so tests can force either regime and assert the traces
// are byte-identical.
var chanRowLinearMax = 16

// chanRow is the channel state for every destination one source has
// actually messaged, in first-touch order (a CSR-style row); index is
// nil until the row outgrows chanRowLinearMax. Keeping dst and state in
// one entry slice costs a single allocation per active row — parallel
// dst/state slices doubled the 32-rank scenarios' allocs/op.
type chanRow struct {
	entries []chanEntry
	index   map[int32]int32 // dst → position in entries
}

// chanEntry is one (dst, state) pair of a source's row.
type chanEntry struct {
	dst   int32
	state chanState
}

// chanRowInitialCap sizes a row's first allocation: stencil and ring
// patterns touch 2–4 destinations per source, so one small block covers
// the common row outright.
const chanRowInitialCap = 4

// chanTable tracks per-channel state sized to the channels actually
// touched: O(P) row headers plus O(channels used) entries, never the
// dense P*P table (24 MiB at 1024 ranks, 384 MiB at 4096) that a
// mostly-sparse communication pattern would leave cold.
type chanTable struct {
	rows []chanRow
}

func newChanTable(p int) chanTable {
	return chanTable{rows: make([]chanRow, p)}
}

// at returns the mutable state of the (src,dst) channel, creating it on
// first touch. The pointer is invalidated by the next at() call (the
// row's backing array may grow); both call sites use it transiently.
func (c *chanTable) at(src, dst int) *chanState {
	row := &c.rows[src]
	d := int32(dst)
	if row.index != nil {
		if i, ok := row.index[d]; ok {
			return &row.entries[i].state
		}
	} else {
		for i := range row.entries {
			if row.entries[i].dst == d {
				return &row.entries[i].state
			}
		}
	}
	if row.entries == nil {
		row.entries = make([]chanEntry, 0, chanRowInitialCap)
	}
	row.entries = append(row.entries, chanEntry{dst: d})
	i := int32(len(row.entries) - 1)
	if row.index != nil {
		row.index[d] = i
	} else if len(row.entries) > chanRowLinearMax {
		row.index = make(map[int32]int32, len(row.entries)*2)
		for j := range row.entries {
			row.index[row.entries[j].dst] = int32(j)
		}
	}
	return &row.entries[i].state
}

// channels returns the number of (src,dst) channels touched so far.
func (c *chanTable) channels() int {
	n := 0
	for i := range c.rows {
		n += len(c.rows[i].entries)
	}
	return n
}

// footprintBytes estimates the resident size of the table: row headers
// plus the capacity (not length) of every row's backing arrays and map.
// It exists for the memory-regression tests, which pin the O(channels
// used) bound.
func (c *chanTable) footprintBytes() int {
	const (
		rowHeader = int(unsafe.Sizeof(chanRow{}))
		entry     = int(unsafe.Sizeof(chanEntry{}))
		// One map bucket holds 8 entries of (key, value, tophash) plus an
		// overflow pointer; approximate the per-entry share generously.
		mapEntry = 2 * (4 + 4 + 8)
	)
	n := len(c.rows) * rowHeader
	for i := range c.rows {
		row := &c.rows[i]
		n += cap(row.entries) * entry
		if row.index != nil {
			n += len(row.index) * mapEntry
		}
	}
	return n
}

// readyHeap is an indexed min-heap of ready ranks ordered by
// (clock, id) — exactly pickReady's order, but O(log P) per transition
// and O(1) per peek instead of an O(P) scan per scheduler step (and per
// fast-path yield). Each Rank carries its heap index; a rank's clock
// never changes while it sits in the heap (only the running rank
// advances its own clock), so entries never need re-sifting in place.
type readyHeap []*Rank

func rankBefore(a, b *Rank) bool {
	return a.clock < b.clock || (a.clock == b.clock && a.id < b.id)
}

func (h *readyHeap) push(r *Rank) {
	r.heapIdx = len(*h)
	*h = append(*h, r)
	h.up(r.heapIdx)
}

func (h *readyHeap) pop() *Rank {
	old := *h
	r := old[0]
	last := len(old) - 1
	old[0] = old[last]
	old[0].heapIdx = 0
	old[last] = nil
	*h = old[:last]
	if last > 0 {
		h.down(0)
	}
	r.heapIdx = -1
	return r
}

// peek returns the ready rank with the smallest (clock, id), or nil.
func (h readyHeap) peek() *Rank {
	if len(h) == 0 {
		return nil
	}
	return h[0]
}

func (h readyHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !rankBefore(h[i], h[parent]) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h readyHeap) down(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && rankBefore(h[right], h[left]) {
			least = right
		}
		if !rankBefore(h[least], h[i]) {
			return
		}
		h.swap(i, least)
		i = least
	}
}

func (h readyHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}

// abortSentinel unwinds rank goroutines during shutdown.
type abortSentinel struct{}

// containsRequest reports whether req is one of reqs.
func containsRequest(reqs []*Request, req *Request) bool {
	for _, r := range reqs {
		if r == req {
			return true
		}
	}
	return false
}

// errStepBudget builds the runaway-program error (shared by the
// scheduler loop and the fast-path yield).
func errStepBudget(budget int) error {
	return fmt.Errorf("sim: step budget %d exceeded (runaway program?)", budget)
}

// simulation holds all scheduler state. Exactly one goroutine — either
// the scheduler or a single resumed rank — touches it at any moment.
type simulation struct {
	cfg  Config
	tr   *trace.Trace    // nil when events stream to sink instead
	sink trace.EventSink // Config.Sink
	// sinkEvents counts events handed to the sink, standing in for
	// tr.NumEvents() in the run's stats.
	sinkEvents int
	ranks      []*Rank

	events     eventHeap
	ready      readyHeap // statusReady ranks, min (clock, id) first
	yielded    chan int  // rank id that just yielded control
	netRNG     *vtime.RNG
	msgID      int64
	deliverSeq int64
	chans      chanTable
	freeMsgs   []*message // recycled message structs (never escape a run)
	stats      Stats
	steps      int
	abortFlag  bool
	panicErr   *PanicError
	budgetErr  error
	// ctx cancels the run; cancellable caches whether ctx can ever be
	// done so the hot scheduling paths skip the check entirely for
	// background runs. cancelErr latches the first observed cancellation.
	ctx         context.Context
	cancellable bool
	cancelErr   error
}

// cancelCheckMask throttles context polling: the scheduler and the
// fast-path yield consult ctx.Err() once every cancelCheckMask+1 steps,
// keeping the per-step cost of cancellation support to a counter test.
const cancelCheckMask = 0x3FF

// cancelled reports (and latches) whether the run's context is done.
// Called only every cancelCheckMask+1 steps.
func (s *simulation) cancelled() bool {
	if s.cancelErr != nil {
		return true
	}
	if !s.cancellable {
		return false
	}
	if err := s.ctx.Err(); err != nil {
		s.cancelErr = fmt.Errorf("sim: run cancelled: %w", err)
		return true
	}
	return false
}

func newSim(cfg Config, meta trace.Meta) *simulation {
	s := &simulation{
		cfg:     cfg,
		sink:    cfg.Sink,
		yielded: make(chan int),
		netRNG:  vtime.NewRNG(cfg.Seed).Split(0xC0FFEE),
		chans:   newChanTable(cfg.Procs),
		ready:   make(readyHeap, 0, cfg.Procs),
	}
	if s.sink == nil {
		s.tr = trace.NewWithCapacity(meta, cfg.EventsPerRankHint)
	}
	base := vtime.NewRNG(cfg.Seed)
	s.ranks = make([]*Rank, cfg.Procs)
	for i := range s.ranks {
		s.ranks[i] = &Rank{
			sim:     s,
			id:      i,
			node:    cfg.NodeOf(i),
			status:  statusReady,
			heapIdx: -1,
			resume:  make(chan struct{}),
			rng:     base.Split(uint64(i) + 1),
		}
		s.ready.push(s.ranks[i])
	}
	return s
}

// makeReady transitions a blocked (or freshly runnable) rank into the
// ready heap. The rank's clock must already be final: entries are never
// re-sifted while in the heap.
func (s *simulation) makeReady(r *Rank) {
	r.status = statusReady
	s.ready.push(r)
}

// newMessage takes a message struct from the free list, or allocates.
func (s *simulation) newMessage() *message {
	if n := len(s.freeMsgs); n > 0 {
		m := s.freeMsgs[n-1]
		s.freeMsgs[n-1] = nil
		s.freeMsgs = s.freeMsgs[:n-1]
		return m
	}
	return new(message)
}

// release recycles a fully consumed message struct. Only the struct is
// pooled — the payload slice escapes to user code with the delivered
// Message and is never reused. Zeroing the struct is what makes the
// pool safe: a recycled message must not leak delayed/rendezvous flags
// or a stale sendReq into the next send.
func (s *simulation) release(m *message) {
	*m = message{}
	s.freeMsgs = append(s.freeMsgs, m)
}

// run launches the rank goroutines and drives the event loop to
// completion.
func (s *simulation) run(program Program) (*trace.Trace, *Stats, error) {
	for _, r := range s.ranks {
		//anacin:allow goroutine the scheduler is the sanctioned owner: it starts each rank exactly once and the yield protocol keeps one goroutine runnable at a time
		go s.rankMain(r, program)
	}
	err := s.loop()
	s.shutdown()
	if s.panicErr != nil {
		return nil, nil, s.panicErr
	}
	if err != nil {
		return nil, nil, err
	}
	if s.sink != nil {
		s.stats.Events = s.sinkEvents
		return nil, &s.stats, nil
	}
	s.stats.Events = s.tr.NumEvents()
	return s.tr, &s.stats, nil
}

// rankMain is the goroutine body for one rank: wait for the first
// resume, record Init, run the program, record Finalize.
func (s *simulation) rankMain(r *Rank, program Program) {
	defer func() {
		if v := recover(); v != nil {
			if _, isAbort := v.(abortSentinel); !isAbort && s.panicErr == nil {
				s.panicErr = &PanicError{Rank: r.id, Value: v, Stack: string(debug.Stack())}
			}
		}
		r.status = statusDone
		s.yielded <- r.id
	}()
	<-r.resume
	if s.abortFlag {
		panic(abortSentinel{})
	}
	r.lamport++
	r.record(trace.KindInit, trace.NoPeer, 0, 0, trace.NoMsg, 0, trace.Stack{})
	r.yield()
	program(r)
	r.lamport++
	r.record(trace.KindFinalize, trace.NoPeer, 0, 0, trace.NoMsg, 0, trace.Stack{})
	// The deferred handler marks the rank done and yields.
}

// loop is the discrete-event core: repeatedly perform the globally
// earliest action — deliver the earliest in-flight message or resume the
// ready rank with the earliest local clock.
func (s *simulation) loop() error {
	for {
		if s.panicErr != nil {
			return nil // surfaced by run
		}
		if s.budgetErr != nil {
			return s.budgetErr
		}
		if s.cancelErr != nil || (s.steps&cancelCheckMask == 0 && s.cancelled()) {
			return s.cancelErr
		}
		s.steps++
		if s.steps > s.cfg.MaxEvents {
			return errStepBudget(s.cfg.MaxEvents)
		}

		next := s.ready.peek()
		var eventTime vtime.Time = vtime.Forever
		if len(s.events) > 0 {
			eventTime = s.events[0].arrival
		}

		switch {
		case next == nil && eventTime == vtime.Forever:
			if s.allDone() {
				return nil
			}
			return s.deadlock()
		case next == nil || eventTime <= next.clock:
			s.deliver(s.events.pop())
		default:
			s.ready.pop()
			next.status = statusRunning
			next.resume <- struct{}{}
			<-s.yielded
		}
	}
}

func (s *simulation) allDone() bool {
	for _, r := range s.ranks {
		if r.status != statusDone {
			return false
		}
	}
	return true
}

func (s *simulation) deadlock() error {
	e := &DeadlockError{Blocked: make(map[int]string), Time: s.maxClock()}
	for _, r := range s.ranks {
		if r.status == statusBlocked && r.waiting != nil {
			e.Blocked[r.id] = r.waiting.describe()
		}
	}
	return e
}

func (s *simulation) maxClock() vtime.Time {
	var t vtime.Time
	for _, r := range s.ranks {
		if r.clock > t {
			t = r.clock
		}
	}
	return t
}

// consumed notifies the sender side that a matching receive took msg,
// completing a rendezvous-protocol send: a blocked Send (or a Wait on a
// rendezvous Isend request) resumes with its clock advanced to the
// consumption time.
func (s *simulation) consumed(msg *message, at vtime.Time) {
	if !msg.rendezvous {
		return
	}
	snd := s.ranks[msg.src]
	if req := msg.sendReq; req != nil {
		req.done = true
		if at > req.completeAt {
			req.completeAt = at
		}
		if snd.status == statusBlocked && snd.waiting != nil &&
			snd.waiting.kind == waitRequest && snd.waiting.req == req {
			if at > snd.clock {
				snd.clock = at
			}
			snd.waiting = nil
			s.makeReady(snd)
		}
		return
	}
	if snd.status == statusBlocked && snd.waiting != nil &&
		snd.waiting.kind == waitRendezvous && snd.waiting.msg == msg {
		if at > snd.clock {
			snd.clock = at
		}
		snd.waiting = nil
		s.makeReady(snd)
	}
}

// deliver routes an arrived message: posted non-blocking receives are
// consulted first (MPI matches posted receives in posting order), then a
// blocking Recv/Probe waiter, and otherwise the message queues in the
// destination's mailbox as an "unexpected" message.
func (s *simulation) deliver(msg *message) {
	d := s.ranks[msg.dst]
	s.stats.Messages++
	s.stats.Bytes += int64(msg.size)
	if msg.delayed {
		s.stats.Delayed++
	}

	// Posted Irecv requests (always user-level), in posting order.
	for i, req := range d.posted {
		if req.done || msg.internal || !filterMatches(req.src, req.tag, req.key, msg) {
			continue
		}
		req.done = true
		req.msg = msg
		d.posted = append(d.posted[:i], d.posted[i+1:]...)
		s.consumed(msg, msg.arrival)
		// If the rank is parked in Wait on exactly this request — or in
		// a Waitany that includes it — release it; the receive
		// completes at arrival + overhead.
		if d.status == statusBlocked && d.waiting != nil {
			w := d.waiting
			switch {
			case w.kind == waitRequest && w.req == req:
				// The rank resumes inside Wait, past its overhead
				// accounting: charge the receive overhead here.
				d.clock = msg.arrival.Add(s.cfg.Net.RecvOverhead)
				d.waiting = nil
				s.makeReady(d)
			case w.kind == waitAny && containsRequest(w.reqs, req):
				// The rank resumes inside Waitany and then calls Wait,
				// which charges the overhead itself: advance only to
				// the arrival.
				w.req = req // report which request completed
				if msg.arrival > d.clock {
					d.clock = msg.arrival
				}
				d.waiting = nil
				s.makeReady(d)
			}
		}
		return
	}

	// Blocking waiter.
	if d.status == statusBlocked && d.waiting != nil {
		w := d.waiting
		switch w.kind {
		case waitRecv:
			if w.matches(msg) {
				w.msg = msg
				d.clock = msg.arrival.Add(s.cfg.Net.RecvOverhead)
				d.waiting = nil
				s.makeReady(d)
				s.consumed(msg, d.clock)
				return
			}
		case waitProbe:
			if w.matches(msg) {
				// Probe observes but does not consume.
				d.mailbox = append(d.mailbox, msg)
				w.msg = msg
				if msg.arrival > d.clock {
					d.clock = msg.arrival
				}
				d.waiting = nil
				s.makeReady(d)
				return
			}
		}
	}

	d.mailbox = append(d.mailbox, msg)
}

// schedule computes a message's arrival time under the network model and
// pushes it onto the event heap.
func (s *simulation) schedule(msg *message, sendClock vtime.Time) {
	net := &s.cfg.Net
	var alpha vtime.Duration
	var jitterMean vtime.Duration
	delayProb := s.cfg.NDPercent / 100
	if s.ranks[msg.src].node == s.ranks[msg.dst].node {
		alpha, jitterMean = net.IntraNodeLatency, net.JitterMeanIntra
	} else {
		alpha, jitterMean = net.InterNodeLatency, net.JitterMeanInter
		delayProb *= net.InterNodeNDBoost
	}
	transfer := vtime.Duration(float64(msg.size) / net.BandwidthBytesPerNs)
	arrival := sendClock.Add(net.SendOverhead).Add(alpha).Add(transfer)
	// The paper's "percentage of non-determinism": each message is
	// independently selected for a congestion delay; crossing a node
	// boundary raises the selection probability (InterNodeNDBoost).
	if s.netRNG.Bernoulli(delayProb) {
		arrival = arrival.Add(s.netRNG.ExpDuration(jitterMean))
		msg.delayed = true
	}
	// MPI non-overtaking: arrivals on one (src,dst) channel are strictly
	// increasing, so jitter can reorder messages from different senders
	// but never two messages on the same channel.
	ch := s.chans.at(msg.src, msg.dst)
	if ch.hasArrival && arrival <= ch.lastArrival {
		arrival = ch.lastArrival.Add(1)
	}
	ch.lastArrival = arrival
	ch.hasArrival = true
	msg.arrival = arrival
	s.deliverSeq++
	msg.deliverSeq = s.deliverSeq
	s.events.push(msg)
	if msg.arrival.Add(0) > s.stats.FinalTime {
		// FinalTime is finalized from rank clocks at the end; tracking
		// arrivals here keeps it monotone for aborted runs too.
		s.stats.FinalTime = msg.arrival
	}
}

// shutdown unwinds any rank goroutine that has not finished, so no
// goroutines leak when a run ends early (deadlock, panic, budget).
func (s *simulation) shutdown() {
	s.abortFlag = true
	for _, r := range s.ranks {
		for r.status != statusDone {
			r.status = statusRunning
			r.resume <- struct{}{}
			<-s.yielded
		}
	}
	// Record the true final time from rank clocks.
	for _, r := range s.ranks {
		if r.clock > s.stats.FinalTime {
			s.stats.FinalTime = r.clock
		}
	}
}
