package sim

import (
	"fmt"

	"github.com/anacin-go/anacinx/internal/trace"
)

// Collective operations, built entirely on the point-to-point machinery.
// The paper lists collective support as ANACIN-X future work; this
// implementation provides it. Every collective appears in the trace as a
// single event per rank (the call an MPI tracer would see); the tree,
// dissemination, and ring messages underneath are internal and untraced,
// though they do move virtual time, Lamport clocks, and are subject to
// the same non-determinism injection as user messages.
//
// As in MPI, all ranks must call the same sequence of collectives with
// compatible arguments; a mismatched sequence manifests as a deadlock
// (which the runtime detects and reports).

// ReduceOp combines two payloads. It must be associative; if it is not
// commutative, ReduceArrival exposes ordering non-determinism.
type ReduceOp func(a, b []byte) []byte

// collTag returns the reserved tag for round `round` of this rank's
// current collective instance. Tags are negative, outside the user tag
// space, and unique per (instance, round) so consecutive collectives
// can never cross-match.
func (r *Rank) collTag(round int) int {
	const maxRounds = 1 << 20
	if round < 0 || round >= maxRounds {
		panic(fmt.Sprintf("sim: collective round %d out of range", round))
	}
	return -(r.collSeq*maxRounds + round) - 2
}

// finishCollective records the single trace event for a completed
// collective and advances the instance counter.
func (r *Rank) finishCollective(kind trace.EventKind, root, size int, stack trace.Stack) {
	r.collSeq++
	r.lamport++
	r.record(kind, root, 0, size, trace.NoMsg, 0, stack)
	r.yield()
}

func (r *Rank) checkRoot(root int) {
	if root < 0 || root >= r.Size() {
		panic(fmt.Sprintf("sim: collective root %d out of range [0,%d)", root, r.Size()))
	}
}

// Barrier blocks until every rank has entered it (dissemination
// algorithm: ceil(log2 P) rounds of shifted exchanges).
func (r *Rank) Barrier() {
	stack := r.capture()
	p := r.Size()
	round := 0
	for k := 1; k < p; k <<= 1 {
		dst := (r.id + k) % p
		src := (r.id - k + p) % p
		tag := r.collTag(round)
		r.sendInternal(dst, tag, nil)
		r.recvInternal(src, tag)
		round++
	}
	r.finishCollective(trace.KindBarrier, trace.NoPeer, 0, stack)
}

// Bcast distributes root's data to every rank along a binomial tree and
// returns each rank's copy.
func (r *Rank) Bcast(root int, data []byte) []byte {
	r.checkRoot(root)
	stack := r.capture()
	p := r.Size()
	rel := (r.id - root + p) % p
	abs := func(relRank int) int { return (relRank + root) % p }
	tag := r.collTag(0)

	// Receive from the parent (the highest set bit of rel).
	mask := 1
	for mask < p {
		if rel&mask != 0 {
			data = r.recvInternal(abs(rel-mask), tag)
			break
		}
		mask <<= 1
	}
	// Forward to children in decreasing mask order.
	mask >>= 1
	for mask > 0 {
		if rel&mask == 0 && rel+mask < p {
			r.sendInternal(abs(rel+mask), tag, data)
		}
		mask >>= 1
	}
	out := append([]byte(nil), data...)
	r.finishCollective(trace.KindBcast, root, len(out), stack)
	return out
}

// Reduce combines every rank's data with op along a binomial tree and
// returns the result on root (nil elsewhere). Combination order is
// deterministic (tree order), so a non-commutative op still yields a
// reproducible result; contrast ReduceArrival.
func (r *Rank) Reduce(root int, data []byte, op ReduceOp) []byte {
	r.checkRoot(root)
	if op == nil {
		panic("sim: Reduce with nil op")
	}
	stack := r.capture()
	p := r.Size()
	rel := (r.id - root + p) % p
	abs := func(relRank int) int { return (relRank + root) % p }
	tag := r.collTag(0)

	acc := append([]byte(nil), data...)
	mask := 1
	for mask < p {
		if rel&mask == 0 {
			childRel := rel | mask
			if childRel < p {
				acc = op(acc, r.recvInternal(abs(childRel), tag))
			}
		} else {
			r.sendInternal(abs(rel&^mask), tag, acc)
			acc = nil
			break
		}
		mask <<= 1
	}
	r.finishCollective(trace.KindReduce, root, len(data), stack)
	return acc
}

// ReduceArrival is a linear reduction in which the root combines
// contributions in ARRIVAL order. With a non-commutative op (for
// example floating-point summation, whose rounding depends on order)
// different executions can produce different results — the numerical
// face of communication non-determinism discussed in the paper's
// references on reproducible reductions.
func (r *Rank) ReduceArrival(root int, data []byte, op ReduceOp) []byte {
	r.checkRoot(root)
	if op == nil {
		panic("sim: ReduceArrival with nil op")
	}
	stack := r.capture()
	tag := r.collTag(0)
	var acc []byte
	if r.id == root {
		acc = append([]byte(nil), data...)
		for i := 1; i < r.Size(); i++ {
			acc = op(acc, r.recvInternal(AnySource, tag))
		}
	} else {
		r.sendInternal(root, tag, data)
	}
	r.finishCollective(trace.KindReduce, root, len(data), stack)
	return acc
}

// Allreduce combines every rank's data with op and returns the result on
// every rank (Reduce to rank 0, then Bcast).
func (r *Rank) Allreduce(data []byte, op ReduceOp) []byte {
	if op == nil {
		panic("sim: Allreduce with nil op")
	}
	stack := r.capture()
	p := r.Size()
	tagReduce := r.collTag(0)
	tagBcast := r.collTag(1)

	// Reduce phase toward rank 0 (binomial tree, root 0).
	acc := append([]byte(nil), data...)
	mask := 1
	for mask < p {
		if r.id&mask == 0 {
			child := r.id | mask
			if child < p {
				acc = op(acc, r.recvInternal(child, tagReduce))
			}
		} else {
			r.sendInternal(r.id&^mask, tagReduce, acc)
			acc = nil
			break
		}
		mask <<= 1
	}
	// Broadcast phase from rank 0 (binomial tree).
	mask = 1
	for mask < p {
		if r.id&mask != 0 {
			acc = r.recvInternal(r.id&^mask, tagBcast)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if r.id&mask == 0 && r.id+mask < p {
			r.sendInternal(r.id+mask, tagBcast, acc)
		}
		mask >>= 1
	}
	out := append([]byte(nil), acc...)
	r.finishCollective(trace.KindAllreduce, trace.NoPeer, len(data), stack)
	return out
}

// Gather collects each rank's data on root. On root the result is
// indexed by rank; other ranks receive nil.
func (r *Rank) Gather(root int, data []byte) [][]byte {
	r.checkRoot(root)
	stack := r.capture()
	tag := r.collTag(0)
	var out [][]byte
	if r.id == root {
		out = make([][]byte, r.Size())
		out[root] = append([]byte(nil), data...)
		for src := 0; src < r.Size(); src++ {
			if src == root {
				continue
			}
			out[src] = r.recvInternal(src, tag)
		}
	} else {
		r.sendInternal(root, tag, data)
	}
	r.finishCollective(trace.KindGather, root, len(data), stack)
	return out
}

// Scatter distributes parts[i] from root to rank i and returns each
// rank's part. On root, parts must have one entry per rank; it is
// ignored elsewhere.
func (r *Rank) Scatter(root int, parts [][]byte) []byte {
	r.checkRoot(root)
	stack := r.capture()
	tag := r.collTag(0)
	var out []byte
	if r.id == root {
		if len(parts) != r.Size() {
			panic(fmt.Sprintf("sim: Scatter root has %d parts for %d ranks", len(parts), r.Size()))
		}
		out = append([]byte(nil), parts[root]...)
		for dst := 0; dst < r.Size(); dst++ {
			if dst == root {
				continue
			}
			r.sendInternal(dst, tag, parts[dst])
		}
	} else {
		out = r.recvInternal(root, tag)
	}
	r.finishCollective(trace.KindScatter, root, len(out), stack)
	return out
}

// Allgather collects every rank's data on every rank (ring algorithm:
// P-1 steps, each forwarding the block received in the previous step).
func (r *Rank) Allgather(data []byte) [][]byte {
	stack := r.capture()
	p := r.Size()
	out := make([][]byte, p)
	out[r.id] = append([]byte(nil), data...)
	if p > 1 {
		next := (r.id + 1) % p
		prev := (r.id - 1 + p) % p
		block := r.id // index of the block we send next
		for step := 0; step < p-1; step++ {
			tag := r.collTag(step)
			r.sendInternal(next, tag, out[block])
			recvd := r.recvInternal(prev, tag)
			block = (block - 1 + p) % p
			out[block] = recvd
		}
	}
	r.finishCollective(trace.KindAllgather, trace.NoPeer, len(data), stack)
	return out
}

// Scan computes the inclusive prefix reduction: rank r returns
// op(data_0, op(data_1, ... data_r)). The pipeline algorithm chains the
// ranks: each receives the running prefix from rank-1, combines its own
// contribution, and forwards to rank+1. Combination order is fixed by
// rank order, so Scan is reproducible at any ND level.
func (r *Rank) Scan(data []byte, op ReduceOp) []byte {
	if op == nil {
		panic("sim: Scan with nil op")
	}
	stack := r.capture()
	tag := r.collTag(0)
	acc := append([]byte(nil), data...)
	if r.id > 0 {
		acc = op(r.recvInternal(r.id-1, tag), acc)
	}
	if r.id < r.Size()-1 {
		r.sendInternal(r.id+1, tag, acc)
	}
	r.finishCollective(trace.KindScan, trace.NoPeer, len(data), stack)
	return acc
}

// Alltoall sends parts[j] to rank j and returns the parts received,
// indexed by source rank. parts must have one entry per rank; the entry
// for the caller's own rank is copied through locally.
func (r *Rank) Alltoall(parts [][]byte) [][]byte {
	if len(parts) != r.Size() {
		panic(fmt.Sprintf("sim: Alltoall with %d parts for %d ranks", len(parts), r.Size()))
	}
	stack := r.capture()
	p := r.Size()
	tag := r.collTag(0)
	out := make([][]byte, p)
	out[r.id] = append([]byte(nil), parts[r.id]...)
	// Eager sends cannot block, so send everything then receive in
	// source order.
	var bytes int
	for off := 1; off < p; off++ {
		dst := (r.id + off) % p
		r.sendInternal(dst, tag, parts[dst])
		bytes += len(parts[dst])
	}
	for off := 1; off < p; off++ {
		src := (r.id - off + p) % p
		out[src] = r.recvInternal(src, tag)
	}
	r.finishCollective(trace.KindAlltoall, trace.NoPeer, bytes, stack)
	return out
}
