package sim_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/anacin-go/anacinx/internal/sim"
	"github.com/anacin-go/anacinx/internal/trace"
	"github.com/anacin-go/anacinx/internal/vtime"
)

// ringProgram is a small deterministic workload for cancellation tests.
func ringProgram(iters int) sim.Program {
	return func(r *sim.Rank) {
		next := (r.Rank() + 1) % r.Size()
		prev := (r.Rank() - 1 + r.Size()) % r.Size()
		for i := 0; i < iters; i++ {
			r.Sendrecv(next, 0, []byte{1}, prev, 0)
			r.Compute(vtime.Microsecond)
		}
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := sim.DefaultConfig(4, 1)
	tr, _, err := sim.RunContext(ctx, cfg, trace.Meta{}, ringProgram(10))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if tr != nil {
		t.Error("cancelled run returned a partial trace")
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	// A long run must notice cancellation promptly: the scheduler and
	// the fast-path yield both poll the context every few hundred steps.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	cfg := sim.DefaultConfig(8, 1)
	cfg.CaptureStacks = false
	start := time.Now()
	_, _, err := sim.RunContext(ctx, cfg, trace.Meta{}, ringProgram(50_000_000))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
}

func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	cfg := sim.DefaultConfig(8, 1)
	cfg.CaptureStacks = false
	_, _, err := sim.RunContext(ctx, cfg, trace.Meta{}, ringProgram(50_000_000))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestRunContextBackgroundUnaffected(t *testing.T) {
	// A background context must not perturb the schedule: same trace
	// hash as plain Run. The program is built once — a closure rebuilt
	// at a second call site gets a different symbol name, which would
	// show up in captured callstacks as a false diff.
	cfg := sim.DefaultConfig(4, 7)
	cfg.NDPercent = 100
	program := ringProgram(3)
	a, _, err := sim.Run(cfg, trace.Meta{}, program)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := sim.RunContext(context.Background(), cfg, trace.Meta{}, program)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() != b.Hash() {
		t.Error("RunContext(Background) changed the schedule")
	}
}
