package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"github.com/anacin-go/anacinx/internal/trace"
	"github.com/anacin-go/anacinx/internal/vtime"
)

// mustRun executes program under cfg and fails the test on error.
func mustRun(t *testing.T, cfg Config, program Program) (*trace.Trace, *Stats) {
	t.Helper()
	tr, stats, err := Run(cfg, trace.Meta{Pattern: "test"}, program)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	return tr, stats
}

func TestRunRejectsBadConfig(t *testing.T) {
	noop := func(r *Rank) {}
	cases := []Config{
		{Procs: 0, Nodes: 1},
		{Procs: 4, Nodes: 0},
		{Procs: 2, Nodes: 3},
		{Procs: 2, Nodes: 1, NDPercent: -1},
		{Procs: 2, Nodes: 1, NDPercent: 101},
		{Procs: 2, Nodes: 1, Net: NetModel{SendOverhead: 1}}, // zero bandwidth
	}
	for i, cfg := range cases {
		if _, _, err := Run(cfg, trace.Meta{}, noop); err == nil {
			t.Errorf("case %d: bad config accepted: %+v", i, cfg)
		}
	}
	if _, _, err := Run(DefaultConfig(2, 1), trace.Meta{}, nil); err == nil {
		t.Error("nil program accepted")
	}
}

func TestEmptyProgram(t *testing.T) {
	tr, stats := mustRun(t, DefaultConfig(3, 1), func(r *Rank) {})
	if tr.NumEvents() != 6 { // init + finalize per rank
		t.Errorf("NumEvents = %d, want 6", tr.NumEvents())
	}
	if stats.Messages != 0 {
		t.Errorf("Messages = %d, want 0", stats.Messages)
	}
	counts := tr.KindCounts()
	if counts[trace.KindInit] != 3 || counts[trace.KindFinalize] != 3 {
		t.Errorf("KindCounts = %v", counts)
	}
}

func TestSendRecvDeliversPayload(t *testing.T) {
	var got Message
	mustRun(t, DefaultConfig(2, 1), func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 7, []byte("hello"))
		} else {
			got = r.Recv(0, 7)
		}
	})
	if got.Src != 0 || got.Tag != 7 || string(got.Data) != "hello" || got.Size != 5 {
		t.Errorf("received %+v", got)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	var got Message
	mustRun(t, DefaultConfig(2, 1), func(r *Rank) {
		if r.Rank() == 0 {
			buf := []byte("aaaa")
			r.Send(1, 0, buf)
			buf[0] = 'z' // mutate after send; receiver must not see it
		} else {
			got = r.Recv(0, 0)
		}
	})
	if string(got.Data) != "aaaa" {
		t.Errorf("payload aliased sender buffer: %q", got.Data)
	}
}

func TestSendSizeCarriesNoData(t *testing.T) {
	var got Message
	mustRun(t, DefaultConfig(2, 1), func(r *Rank) {
		if r.Rank() == 0 {
			r.SendSize(1, 3, 1024)
		} else {
			got = r.Recv(AnySource, AnyTag)
		}
	})
	if got.Size != 1024 || got.Data != nil {
		t.Errorf("SendSize produced %+v", got)
	}
}

func TestRecvBySourceAndTag(t *testing.T) {
	// Rank 2 receives tag 5 from rank 1 first even though rank 0's
	// message (tag 9) arrives earlier; concrete filters must not be
	// fooled by mailbox order.
	var first, second Message
	mustRun(t, DefaultConfig(3, 1), func(r *Rank) {
		switch r.Rank() {
		case 0:
			r.Send(2, 9, []byte("early"))
		case 1:
			r.Compute(50 * vtime.Microsecond)
			r.Send(2, 5, []byte("late"))
		case 2:
			r.Compute(100 * vtime.Microsecond) // both messages arrive first
			first = r.Recv(1, 5)
			second = r.Recv(0, 9)
		}
	})
	if string(first.Data) != "late" || string(second.Data) != "early" {
		t.Errorf("filtered receive wrong: %q, %q", first.Data, second.Data)
	}
}

func TestAnySourceMatchesEarliestArrival(t *testing.T) {
	// With no jitter, rank 1's message (sent immediately) beats rank 2's
	// (sent after compute): arrival order is deterministic.
	var order []int
	mustRun(t, DefaultConfig(3, 1), func(r *Rank) {
		switch r.Rank() {
		case 0:
			for i := 0; i < 2; i++ {
				m := r.Recv(AnySource, AnyTag)
				order = append(order, m.Src)
			}
		case 1:
			r.Send(0, 0, nil)
		case 2:
			r.Compute(20 * vtime.Microsecond)
			r.Send(0, 0, nil)
		}
	})
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("arrival order = %v, want [1 2]", order)
	}
}

func TestNonOvertakingSameChannel(t *testing.T) {
	// 100% ND: every message gets jitter, but two messages on the same
	// (src,dst) channel must still arrive in send order.
	cfg := DefaultConfig(2, 1)
	cfg.NDPercent = 100
	for seed := int64(0); seed < 20; seed++ {
		cfg.Seed = seed
		var tags []int
		mustRun(t, cfg, func(r *Rank) {
			if r.Rank() == 0 {
				for i := 0; i < 10; i++ {
					r.Send(1, i, nil)
				}
			} else {
				for i := 0; i < 10; i++ {
					m := r.Recv(0, AnyTag)
					tags = append(tags, m.Tag)
				}
			}
		})
		for i, tag := range tags {
			if tag != i {
				t.Fatalf("seed %d: same-channel overtaking: tags = %v", seed, tags)
			}
		}
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	cfg := DefaultConfig(8, 1234)
	cfg.Nodes = 2
	cfg.NDPercent = 100
	program := racyProgram(8, 3)
	tr1, _ := mustRun(t, cfg, program)
	tr2, _ := mustRun(t, cfg, program)
	if tr1.Hash() != tr2.Hash() {
		t.Error("identical config+seed produced different traces")
	}
}

func TestSeedsChangeMatchingAt100PercentND(t *testing.T) {
	// At 100% ND, some pair of seeds must produce different match orders
	// in a message race — this is the paper's Fig. 4 in miniature.
	cfg := DefaultConfig(6, 1)
	cfg.NDPercent = 100
	program := racyProgram(6, 4)
	hashes := make(map[uint64]bool)
	for seed := int64(0); seed < 10; seed++ {
		cfg.Seed = seed
		tr, _ := mustRun(t, cfg, program)
		hashes[tr.OrderHash()] = true
	}
	if len(hashes) < 2 {
		t.Error("10 seeds at 100%% ND all produced the same match order")
	}
}

func TestZeroNDIsSeedInvariant(t *testing.T) {
	// At 0% ND the communication structure must not depend on the seed.
	cfg := DefaultConfig(6, 1)
	program := racyProgram(6, 4)
	var want uint64
	for seed := int64(0); seed < 10; seed++ {
		cfg.Seed = seed
		tr, _ := mustRun(t, cfg, program)
		if seed == 0 {
			want = tr.OrderHash()
		} else if tr.OrderHash() != want {
			t.Fatalf("seed %d changed match order at 0%% ND", seed)
		}
	}
}

// racyProgram returns a message-race program: every nonzero rank sends
// rounds messages to rank 0, which receives them with AnySource.
func racyProgram(procs, rounds int) Program {
	return func(r *Rank) {
		if r.Rank() == 0 {
			for i := 0; i < (procs-1)*rounds; i++ {
				r.Recv(AnySource, AnyTag)
			}
		} else {
			for i := 0; i < rounds; i++ {
				r.SendSize(0, i, 1)
			}
		}
	}
}

func TestVirtualTimeAdvances(t *testing.T) {
	_, stats := mustRun(t, DefaultConfig(2, 1), func(r *Rank) {
		if r.Rank() == 0 {
			r.Compute(1 * vtime.Millisecond)
			r.Send(1, 0, nil)
		} else {
			r.Recv(0, 0)
		}
	})
	if stats.FinalTime < vtime.Time(1*vtime.Millisecond) {
		t.Errorf("FinalTime = %v, want >= 1ms", stats.FinalTime)
	}
}

func TestComputeNegativeIgnored(t *testing.T) {
	mustRun(t, DefaultConfig(1, 1), func(r *Rank) {
		before := r.Now()
		r.Compute(-5 * vtime.Second)
		if r.Now() != before {
			t.Errorf("negative Compute moved the clock")
		}
	})
}

func TestDeadlockDetected(t *testing.T) {
	_, _, err := Run(DefaultConfig(2, 1), trace.Meta{}, func(r *Rank) {
		r.Recv(AnySource, AnyTag) // everyone waits, nobody sends
	})
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(dl.Blocked) != 2 {
		t.Errorf("Blocked = %v, want 2 ranks", dl.Blocked)
	}
	if !strings.Contains(dl.Error(), "rank 0") || !strings.Contains(dl.Error(), "Recv") {
		t.Errorf("error message %q lacks rank/wait detail", dl.Error())
	}
}

func TestPartialDeadlockDetected(t *testing.T) {
	// Rank 1 finishes fine; rank 0 waits for a message that never comes.
	_, _, err := Run(DefaultConfig(2, 1), trace.Meta{}, func(r *Rank) {
		if r.Rank() == 0 {
			r.Recv(1, 99)
		}
	})
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if _, ok := dl.Blocked[0]; !ok || len(dl.Blocked) != 1 {
		t.Errorf("Blocked = %v, want rank 0 only", dl.Blocked)
	}
}

func TestPanicPropagates(t *testing.T) {
	_, _, err := Run(DefaultConfig(3, 1), trace.Meta{}, func(r *Rank) {
		if r.Rank() == 2 {
			panic("boom")
		}
		// Other ranks block so the scheduler must unwind them.
		if r.Rank() == 0 {
			r.Recv(AnySource, AnyTag)
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
	if pe.Rank != 2 || pe.Value != "boom" {
		t.Errorf("PanicError = %+v", pe)
	}
}

func TestSelfSendPanics(t *testing.T) {
	_, _, err := Run(DefaultConfig(2, 1), trace.Meta{}, func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(0, 0, nil)
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("self-send: err = %v, want PanicError", err)
	}
}

func TestInvalidPeerPanics(t *testing.T) {
	_, _, err := Run(DefaultConfig(2, 1), trace.Meta{}, func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(5, 0, nil)
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("bad peer: err = %v, want PanicError", err)
	}
}

func TestReservedTagPanics(t *testing.T) {
	_, _, err := Run(DefaultConfig(2, 1), trace.Meta{}, func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, -3, nil)
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("negative tag: err = %v, want PanicError", err)
	}
}

func TestIsendIrecvWait(t *testing.T) {
	var got Message
	tr, _ := mustRun(t, DefaultConfig(2, 1), func(r *Rank) {
		if r.Rank() == 0 {
			req := r.Isend(1, 4, []byte("nb"))
			r.Wait(req)
		} else {
			req := r.Irecv(0, 4)
			got = r.Wait(req)
		}
	})
	if string(got.Data) != "nb" || got.Src != 0 {
		t.Errorf("Irecv/Wait got %+v", got)
	}
	counts := tr.KindCounts()
	if counts[trace.KindIsend] != 1 || counts[trace.KindIrecv] != 1 || counts[trace.KindWait] != 2 {
		t.Errorf("KindCounts = %v", counts)
	}
}

func TestIrecvMatchesPostedBeforeArrival(t *testing.T) {
	// The Irecv is posted before the message is sent; the scheduler must
	// complete the posted request, not queue the message.
	var got Message
	mustRun(t, DefaultConfig(2, 1), func(r *Rank) {
		if r.Rank() == 1 {
			req := r.Irecv(0, 0)
			got = r.Wait(req)
		} else {
			r.Compute(10 * vtime.Microsecond)
			r.Send(1, 0, []byte("x"))
		}
	})
	if string(got.Data) != "x" {
		t.Errorf("posted irecv got %+v", got)
	}
}

func TestIrecvMatchesAlreadyArrived(t *testing.T) {
	var got Message
	mustRun(t, DefaultConfig(2, 1), func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 0, []byte("y"))
		} else {
			r.Compute(50 * vtime.Microsecond) // message is already in the mailbox
			req := r.Irecv(0, 0)
			got = r.Wait(req)
		}
	})
	if string(got.Data) != "y" {
		t.Errorf("late irecv got %+v", got)
	}
}

func TestIrecvPostingOrderMatching(t *testing.T) {
	// Two posted irecvs with AnySource: MPI matches in posting order, so
	// the first-posted request gets the first-arriving message.
	var m1, m2 Message
	mustRun(t, DefaultConfig(3, 1), func(r *Rank) {
		switch r.Rank() {
		case 0:
			req1 := r.Irecv(AnySource, AnyTag)
			req2 := r.Irecv(AnySource, AnyTag)
			m1 = r.Wait(req1)
			m2 = r.Wait(req2)
		case 1:
			r.Send(0, 0, nil)
		case 2:
			r.Compute(30 * vtime.Microsecond)
			r.Send(0, 0, nil)
		}
	})
	if m1.Src != 1 || m2.Src != 2 {
		t.Errorf("posting-order matching violated: %d then %d", m1.Src, m2.Src)
	}
}

func TestWaitTwicePanics(t *testing.T) {
	_, _, err := Run(DefaultConfig(2, 1), trace.Meta{}, func(r *Rank) {
		if r.Rank() == 0 {
			req := r.Isend(1, 0, nil)
			r.Wait(req)
			r.Wait(req)
		} else {
			r.Recv(0, 0)
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("double Wait: err = %v, want PanicError", err)
	}
}

func TestWaitall(t *testing.T) {
	var msgs []Message
	mustRun(t, DefaultConfig(3, 1), func(r *Rank) {
		if r.Rank() == 0 {
			reqs := []*Request{r.Irecv(1, 0), r.Irecv(2, 0)}
			msgs = r.Waitall(reqs)
		} else {
			r.Send(0, 0, []byte{byte(r.Rank())})
		}
	})
	if len(msgs) != 2 || msgs[0].Src != 1 || msgs[1].Src != 2 {
		t.Errorf("Waitall = %+v", msgs)
	}
}

func TestWaitanyBlocksForFirstCompletion(t *testing.T) {
	// Rank 0 posts Irecvs from both senders; rank 2 sends much later,
	// so Waitany must report rank 1's request first, then rank 2's.
	var order []int
	mustRun(t, DefaultConfig(3, 1), func(r *Rank) {
		switch r.Rank() {
		case 0:
			reqs := []*Request{r.Irecv(1, 0), r.Irecv(2, 0)}
			for len(order) < 2 {
				idx, m := r.Waitany(reqs)
				if m.Src != idx+1 {
					panic("index/source mismatch")
				}
				order = append(order, idx)
			}
		case 1:
			r.SendSize(0, 0, 1)
		case 2:
			r.Compute(vtime.Millisecond)
			r.SendSize(0, 0, 1)
		}
	})
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Errorf("completion order = %v, want [0 1]", order)
	}
}

func TestWaitanyPrefersEarliestArrived(t *testing.T) {
	// Both messages already arrived before Waitany: the earlier arrival
	// wins even though it is the later-posted request.
	mustRun(t, DefaultConfig(3, 1), func(r *Rank) {
		switch r.Rank() {
		case 0:
			r.Compute(vtime.Millisecond) // let both messages land first
			reqs := []*Request{r.Irecv(2, 0), r.Irecv(1, 0)}
			idx, m := r.Waitany(reqs)
			// Rank 1 sent immediately; rank 2 after compute: rank 1's
			// message arrived first and is reqs[1].
			if idx != 1 || m.Src != 1 {
				panic(fmt.Sprintf("Waitany picked idx=%d src=%d", idx, m.Src))
			}
			r.Wait(reqs[0])
		case 1:
			r.SendSize(0, 0, 1)
		case 2:
			r.Compute(200 * vtime.Microsecond)
			r.SendSize(0, 0, 1)
		}
	})
}

func TestWaitanyRendezvousIsendCompletionTime(t *testing.T) {
	// Regression: a completed rendezvous Isend must compete in Waitany
	// with its real consumption time, not as "completed in the distant
	// past". Rank 0's Isend to rank 1 is consumed late (rank 1 computes
	// before receiving) while rank 2's message into rank 0's Irecv
	// arrives early; once both requests are complete, Waitany must pick
	// the Irecv. The old completion rule used time 0 for every non-recv
	// request, so the late-consumed Isend always won.
	cfg := DefaultConfig(3, 1)
	cfg.Net.RendezvousThreshold = 64
	mustRun(t, cfg, func(r *Rank) {
		switch r.Rank() {
		case 0:
			send := r.Isend(1, 7, make([]byte, 128)) // rendezvous: completes on consumption
			recv := r.Irecv(2, 9)
			r.Compute(vtime.Millisecond) // run past both completions
			idx, m := r.Waitany([]*Request{send, recv})
			if idx != 1 || m.Src != 2 {
				panic(fmt.Sprintf("Waitany picked idx=%d src=%d, want the early-arrived Irecv (idx=1, src=2)", idx, m.Src))
			}
			r.Wait(send)
		case 1:
			r.Compute(500 * vtime.Microsecond) // consume the rendezvous late
			r.Recv(0, 7)
		case 2:
			r.SendSize(0, 9, 1) // arrives within microseconds
		}
	})
}

func TestWaitanyPanics(t *testing.T) {
	cases := []Program{
		func(r *Rank) { r.Waitany(nil) },
		func(r *Rank) {
			if r.Rank() == 0 {
				req := r.Irecv(1, 0)
				r.Wait(req)
				r.Waitany([]*Request{req}) // already waited
			} else {
				r.SendSize(0, 0, 1)
			}
		},
	}
	for i, program := range cases {
		_, _, err := Run(DefaultConfig(2, 1), trace.Meta{}, program)
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Errorf("case %d: err = %v, want PanicError", i, err)
		}
	}
}

func TestWaitanyOrderNondeterministicUnderND(t *testing.T) {
	// With wildcardless Irecvs from two symmetric senders at 100% ND,
	// the Waitany completion order varies across seeds: Waitany itself
	// is a root source of non-determinism.
	orders := map[string]bool{}
	for seed := int64(0); seed < 12; seed++ {
		cfg := DefaultConfig(3, seed)
		cfg.NDPercent = 100
		var got string
		_, _, err := Run(cfg, trace.Meta{}, func(r *Rank) {
			switch r.Rank() {
			case 0:
				reqs := []*Request{r.Irecv(1, 0), r.Irecv(2, 0)}
				for i := 0; i < 2; i++ {
					idx, _ := r.Waitany(reqs)
					got += fmt.Sprint(idx)
				}
			default:
				r.SendSize(0, 0, 1)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		orders[got] = true
	}
	if len(orders) < 2 {
		t.Error("Waitany order identical across 12 seeds at 100% ND")
	}
}

func TestProbeDoesNotConsume(t *testing.T) {
	mustRun(t, DefaultConfig(2, 1), func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 8, []byte("abc"))
		} else {
			src, tag, size := r.Probe(AnySource, AnyTag)
			if src != 0 || tag != 8 || size != 3 {
				panic("probe envelope wrong")
			}
			m := r.Recv(src, tag)
			if string(m.Data) != "abc" {
				panic("probe consumed the message")
			}
		}
	})
}

func TestIprobe(t *testing.T) {
	mustRun(t, DefaultConfig(2, 1), func(r *Rank) {
		if r.Rank() == 0 {
			r.Compute(10 * vtime.Microsecond)
			r.Send(1, 2, []byte("z"))
		} else {
			polls := 0
			for {
				ok, src, tag, _ := r.Iprobe(AnySource, AnyTag)
				if ok {
					if src != 0 || tag != 2 {
						panic("iprobe envelope wrong")
					}
					r.Recv(src, tag)
					break
				}
				polls++
				if polls > 1_000_000 {
					panic("iprobe never saw the message")
				}
			}
		}
	})
}

func TestNodePlacement(t *testing.T) {
	cfg := DefaultConfig(8, 1)
	cfg.Nodes = 2
	if cfg.NodeOf(0) != 0 || cfg.NodeOf(3) != 0 || cfg.NodeOf(4) != 1 || cfg.NodeOf(7) != 1 {
		t.Errorf("block distribution wrong: %d %d %d %d",
			cfg.NodeOf(0), cfg.NodeOf(3), cfg.NodeOf(4), cfg.NodeOf(7))
	}
	mustRun(t, cfg, func(r *Rank) {
		want := r.Rank() / 4
		if r.Node() != want {
			panic("rank sees wrong node")
		}
	})
}

func TestInterNodeLatencyHigher(t *testing.T) {
	// A message crossing nodes must arrive later than an identical
	// intra-node message.
	intra := measureLatency(t, 2, 1)
	inter := measureLatency(t, 2, 2)
	if inter <= intra {
		t.Errorf("inter-node latency %v not above intra-node %v", inter, intra)
	}
}

func measureLatency(t *testing.T, procs, nodes int) vtime.Time {
	t.Helper()
	var arrival vtime.Time
	cfg := DefaultConfig(procs, 1)
	cfg.Nodes = nodes
	mustRun(t, cfg, func(r *Rank) {
		if r.Rank() == 0 {
			r.SendSize(procs-1, 0, 1)
		} else if r.Rank() == procs-1 {
			r.Recv(0, 0)
			arrival = r.Now()
		}
	})
	return arrival
}

func TestStatsCountsMessages(t *testing.T) {
	_, stats := mustRun(t, DefaultConfig(4, 1), func(r *Rank) {
		if r.Rank() == 0 {
			for i := 1; i < 4; i++ {
				r.Recv(i, 0)
			}
		} else {
			r.Send(0, 0, make([]byte, 100))
		}
	})
	if stats.Messages != 3 {
		t.Errorf("Messages = %d, want 3", stats.Messages)
	}
	if stats.Bytes != 300 {
		t.Errorf("Bytes = %d, want 300", stats.Bytes)
	}
}

func TestNDPercentControlsDelayedFraction(t *testing.T) {
	count := func(nd float64) int {
		cfg := DefaultConfig(2, 1)
		cfg.NDPercent = nd
		cfg.Seed = 99
		_, stats, err := Run(cfg, trace.Meta{}, func(r *Rank) {
			if r.Rank() == 0 {
				for i := 0; i < 400; i++ {
					r.SendSize(1, 0, 1)
				}
			} else {
				for i := 0; i < 400; i++ {
					r.Recv(0, 0)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.Delayed
	}
	if got := count(0); got != 0 {
		t.Errorf("0%% ND delayed %d messages", got)
	}
	if got := count(100); got != 400 {
		t.Errorf("100%% ND delayed %d/400 messages", got)
	}
	mid := count(50)
	if mid < 130 || mid > 270 {
		t.Errorf("50%% ND delayed %d/400 messages, want ~200", mid)
	}
}

func TestCallstacksRecorded(t *testing.T) {
	tr, _ := mustRun(t, DefaultConfig(2, 1), func(r *Rank) {
		if r.Rank() == 0 {
			sendHelper(r)
		} else {
			r.Recv(0, 0)
		}
	})
	var sendEvent *trace.Event
	for i := range tr.Events[0] {
		if tr.Events[0][i].Kind == trace.KindSend {
			sendEvent = &tr.Events[0][i]
		}
	}
	if sendEvent == nil {
		t.Fatal("no send event")
	}
	joined := strings.Join(sendEvent.Callstack, ";")
	if !strings.Contains(joined, "sendHelper") {
		t.Errorf("callstack %v does not name the caller", sendEvent.Callstack)
	}
	for _, f := range sendEvent.Callstack {
		if strings.HasPrefix(f, "sim.(*Rank)") || strings.HasPrefix(f, "sim.(*simulation)") {
			t.Errorf("callstack leaked simulator machinery frame %q", f)
		}
	}
}

//go:noinline
func sendHelper(r *Rank) { r.Send(1, 0, nil) }

func TestCaptureStacksDisabled(t *testing.T) {
	cfg := DefaultConfig(2, 1)
	cfg.CaptureStacks = false
	tr, _ := mustRun(t, cfg, func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 0, nil)
		} else {
			r.Recv(0, 0)
		}
	})
	for _, evs := range tr.Events {
		for i := range evs {
			if len(evs[i].Callstack) != 0 {
				t.Fatalf("callstack recorded with capture disabled: %+v", evs[i])
			}
		}
	}
}

func TestLamportClockRespectsMessages(t *testing.T) {
	tr, _ := mustRun(t, DefaultConfig(2, 1), func(r *Rank) {
		if r.Rank() == 0 {
			for i := 0; i < 5; i++ {
				r.Compute(vtime.Microsecond)
			}
			r.Send(1, 0, nil) // sender did work first; receiver's clock must jump
		} else {
			r.Recv(0, 0)
		}
	})
	var sendL, recvL int64
	for _, evs := range tr.Events {
		for i := range evs {
			switch evs[i].Kind {
			case trace.KindSend:
				sendL = evs[i].Lamport
			case trace.KindRecv:
				recvL = evs[i].Lamport
			}
		}
	}
	if recvL <= sendL {
		t.Errorf("recv lamport %d not after send lamport %d", recvL, sendL)
	}
}

func TestMetaFilledByRun(t *testing.T) {
	cfg := DefaultConfig(4, 77)
	cfg.Nodes = 2
	cfg.NDPercent = 25
	tr, _, err := Run(cfg, trace.Meta{Pattern: "p", Iterations: 3, MsgSize: 9}, func(r *Rank) {})
	if err != nil {
		t.Fatal(err)
	}
	m := tr.Meta
	if m.Pattern != "p" || m.Iterations != 3 || m.MsgSize != 9 ||
		m.Procs != 4 || m.Nodes != 2 || m.NDPercent != 25 || m.Seed != 77 {
		t.Errorf("Meta = %+v", m)
	}
}

func TestStepBudgetAborts(t *testing.T) {
	cfg := DefaultConfig(1, 1)
	cfg.MaxEvents = 100
	_, _, err := Run(cfg, trace.Meta{}, func(r *Rank) {
		for {
			r.Compute(vtime.Nanosecond)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("runaway program: err = %v", err)
	}
}

// Property: for any small proc count, seed, and ND level, the simulator
// produces a structurally valid trace and is deterministic.
func TestQuickRunValidAndDeterministic(t *testing.T) {
	f := func(seed int64, procsRaw, ndRaw uint8) bool {
		procs := int(procsRaw)%6 + 2
		nd := float64(ndRaw) / 255 * 100
		cfg := DefaultConfig(procs, 1)
		cfg.Seed = seed
		cfg.NDPercent = nd
		program := racyProgram(procs, 2)
		tr1, _, err := Run(cfg, trace.Meta{}, program)
		if err != nil || tr1.Validate() != nil {
			return false
		}
		tr2, _, err := Run(cfg, trace.Meta{}, program)
		if err != nil {
			return false
		}
		return tr1.Hash() == tr2.Hash()
	}
	cfgQuick := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfgQuick); err != nil {
		t.Error(err)
	}
}

// Property: every message sent is eventually received when the program
// receives everything it was sent (conservation of messages).
func TestQuickMessageConservation(t *testing.T) {
	f := func(seed int64, ndRaw uint8) bool {
		cfg := DefaultConfig(5, 1)
		cfg.Seed = seed
		cfg.NDPercent = float64(ndRaw) / 255 * 100
		tr, _, err := Run(cfg, trace.Meta{}, racyProgram(5, 3))
		if err != nil {
			return false
		}
		counts := tr.KindCounts()
		return counts[trace.KindSend] == 12 && counts[trace.KindRecv] == 12 &&
			tr.MatchedPairs() == 12
	}
	cfgQuick := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfgQuick); err != nil {
		t.Error(err)
	}
}

func TestRankIntrospection(t *testing.T) {
	mustRun(t, DefaultConfig(2, 11), func(r *Rank) {
		if r.Lamport() < 1 {
			panic("lamport not initialized by Init")
		}
		if r.RNG() == nil {
			panic("nil rank RNG")
		}
		// The rank RNG is usable and private.
		_ = r.RNG().Intn(10)
		if r.Rank() == 0 {
			before := r.Lamport()
			r.Send(1, 0, nil)
			if r.Lamport() <= before {
				panic("send did not advance lamport")
			}
		} else {
			r.Recv(0, 0)
		}
	})
}

func TestPanicErrorMessage(t *testing.T) {
	_, _, err := Run(DefaultConfig(2, 1), trace.Meta{}, func(r *Rank) {
		if r.Rank() == 1 {
			panic("kaboom")
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatal(err)
	}
	if !strings.Contains(pe.Error(), "rank 1") || !strings.Contains(pe.Error(), "kaboom") {
		t.Errorf("PanicError message %q", pe.Error())
	}
	if pe.Stack == "" {
		t.Error("PanicError carries no stack")
	}
}

func TestSendSizeNegativePanics(t *testing.T) {
	_, _, err := Run(DefaultConfig(2, 1), trace.Meta{}, func(r *Rank) {
		if r.Rank() == 0 {
			r.SendSize(1, 0, -1)
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("negative size: err = %v", err)
	}
}

func TestProbeBlocksUntilArrival(t *testing.T) {
	// Probe posted before any message exists: the waiter path.
	var probedAt vtime.Time
	mustRun(t, DefaultConfig(2, 1), func(r *Rank) {
		if r.Rank() == 1 {
			src, tag, size := r.Probe(0, 3)
			probedAt = r.Now()
			if src != 0 || tag != 3 || size != 7 {
				panic("probe envelope wrong")
			}
			r.Recv(src, tag)
		} else {
			r.Compute(40 * vtime.Microsecond)
			r.SendSize(1, 3, 7)
		}
	})
	if probedAt < vtime.Time(40*vtime.Microsecond) {
		t.Errorf("probe returned at %v, before the send", probedAt)
	}
}

func TestWaiterDescriptions(t *testing.T) {
	// Exercise describe() variants through deadlock reports.
	cases := []struct {
		program Program
		want    string
	}{
		{func(r *Rank) {
			if r.Rank() == 0 {
				r.Probe(1, 2)
			}
		}, "Probe"},
		{func(r *Rank) {
			if r.Rank() == 0 {
				req := r.Irecv(1, 9)
				r.Wait(req)
			}
		}, "Wait(Irecv"},
		{func(r *Rank) {
			if r.Rank() == 0 {
				r.Recv(1, AnyTag)
			}
		}, "tag=any"},
	}
	for i, c := range cases {
		_, _, err := Run(DefaultConfig(2, 1), trace.Meta{}, c.program)
		var dl *DeadlockError
		if !errors.As(err, &dl) {
			t.Fatalf("case %d: err = %v", i, err)
		}
		if !strings.Contains(dl.Error(), c.want) {
			t.Errorf("case %d: %q lacks %q", i, dl.Error(), c.want)
		}
	}
}

// TestQuickRandomPlans stresses the matching engine with randomized
// (but conserved) communication plans: every rank sends a random
// multiset of messages to random peers, and receives exactly the
// number routed to it with AnySource. Any plan must complete, validate,
// and match everything, at any ND level — and deterministically per
// seed.
func TestQuickRandomPlans(t *testing.T) {
	f := func(planSeed, runSeed int64, procsRaw, ndRaw uint8) bool {
		procs := int(procsRaw)%6 + 2
		nd := float64(ndRaw) / 255 * 100
		// Build the plan from planSeed (fixed across both runs).
		prng := vtime.NewRNG(planSeed)
		dests := make([][]int, procs)
		inbound := make([]int, procs)
		totalMsgs := 0
		for r := 0; r < procs; r++ {
			k := prng.Intn(5)
			for j := 0; j < k; j++ {
				dst := prng.Intn(procs - 1)
				if dst >= r {
					dst++
				}
				dests[r] = append(dests[r], dst)
				inbound[dst]++
				totalMsgs++
			}
		}
		program := func(r *Rank) {
			for i, dst := range dests[r.Rank()] {
				r.SendSize(dst, i, 1)
			}
			for i := 0; i < inbound[r.Rank()]; i++ {
				r.Recv(AnySource, AnyTag)
			}
		}
		cfg := DefaultConfig(procs, runSeed)
		cfg.NDPercent = nd
		cfg.CaptureStacks = false
		tr1, stats, err := Run(cfg, trace.Meta{}, program)
		if err != nil || tr1.Validate() != nil {
			return false
		}
		if stats.Messages != totalMsgs || tr1.MatchedPairs() != totalMsgs {
			return false
		}
		tr2, _, err := Run(cfg, trace.Meta{}, program)
		return err == nil && tr1.Hash() == tr2.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMessageRace32(b *testing.B) {
	cfg := DefaultConfig(32, 1)
	cfg.NDPercent = 100
	cfg.CaptureStacks = false
	program := racyProgram(32, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, _, err := Run(cfg, trace.Meta{}, program); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSendRecvThroughput(b *testing.B) {
	cfg := DefaultConfig(2, 1)
	cfg.CaptureStacks = false
	const msgs = 1000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _, err := Run(cfg, trace.Meta{}, func(r *Rank) {
			if r.Rank() == 0 {
				for j := 0; j < msgs; j++ {
					r.SendSize(1, 0, 1)
				}
			} else {
				for j := 0; j < msgs; j++ {
					r.Recv(0, 0)
				}
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
