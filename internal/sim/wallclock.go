package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/anacin-go/anacinx/internal/trace"
	"github.com/anacin-go/anacinx/internal/vtime"
)

// The wallclock runtime runs every rank as a real goroutine with real
// locks and real time: non-determinism is NATIVE — the Go scheduler and
// the operating system interleave the racing sends however they please
// — rather than modelled. It exists as the course module's contrast to
// the deterministic DES runtime: at 0% injected non-determinism the DES
// reproduces one structure forever, while the wallclock runtime may
// differ run to run with no injection at all, exactly like a real MPI
// cluster. Traces it produces are structurally identical in format, so
// every downstream tool (event graphs, kernels, root-source analysis)
// works unchanged.
//
// Supported surface: the Proc subset (Send, SendSize, Recv, Compute).
// Collectives and non-blocking operations are DES-only.

// WallConfig parameterizes a wallclock execution.
type WallConfig struct {
	// Procs is the number of ranks (goroutines).
	Procs int
	// NDPercent adds an explicit random pre-delivery delay to this
	// percentage of messages, amplifying the native non-determinism.
	// 0 still leaves scheduler non-determinism in play.
	NDPercent float64
	// Seed seeds the per-rank jitter streams.
	Seed int64
	// JitterMax bounds the injected real-time delay per message.
	// 0 means the default of 200µs.
	JitterMax time.Duration
	// ComputeScale converts virtual Compute durations to real sleeps:
	// realNs = virtualNs / ComputeScale. 0 means the default of 1000
	// (1ms of virtual work ≈ 1µs real).
	ComputeScale int
	// RecvTimeout aborts a receive that waits longer than this in real
	// time (deadlock guard; there is no global deadlock detector on
	// this substrate). 0 means the default of 10s.
	RecvTimeout time.Duration
}

// DefaultWallConfig returns a runnable wallclock configuration.
func DefaultWallConfig(procs int, seed int64) WallConfig {
	return WallConfig{Procs: procs, Seed: seed}
}

func (c *WallConfig) withDefaults() (WallConfig, error) {
	q := *c
	if q.Procs < 1 {
		return q, fmt.Errorf("sim: wallclock Procs = %d, need >= 1", q.Procs)
	}
	if q.NDPercent < 0 || q.NDPercent > 100 {
		return q, fmt.Errorf("sim: wallclock NDPercent = %v, need 0..100", q.NDPercent)
	}
	if q.JitterMax == 0 {
		q.JitterMax = 200 * time.Microsecond
	}
	if q.ComputeScale == 0 {
		q.ComputeScale = 1000
	}
	if q.RecvTimeout == 0 {
		q.RecvTimeout = 10 * time.Second
	}
	return q, nil
}

// wallSim is the shared state of one wallclock execution.
type wallSim struct {
	cfg    WallConfig
	start  time.Time
	msgID  atomic.Int64
	ranks  []*WallRank
	failMu sync.Mutex
	failed error
}

//anacin:allow wallclock the wallclock runtime's timestamps ARE real time; that irreproducibility is the course contrast it exists to show
func (s *wallSim) now() vtime.Time { return vtime.Time(time.Since(s.start).Nanoseconds()) }

func (s *wallSim) fail(err error) {
	s.failMu.Lock()
	if s.failed == nil {
		s.failed = err
	}
	s.failMu.Unlock()
	// Wake every sleeper so blocked receives observe the failure.
	for _, r := range s.ranks {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	}
}

func (s *wallSim) failure() error {
	s.failMu.Lock()
	defer s.failMu.Unlock()
	return s.failed
}

// WallRank is the wallclock counterpart of Rank. Methods must only be
// called from the rank's own goroutine.
type WallRank struct {
	sim     *wallSim
	id      int
	lamport int64
	rng     *vtime.RNG
	events  []trace.Event // rank-local; merged after the run

	mu       sync.Mutex
	cond     *sync.Cond
	mailbox  []*message // guarded by mu; append order = arrival order
	chanSeqs map[int]int
}

// Rank implements Proc.
func (r *WallRank) Rank() int { return r.id }

// Size implements Proc.
func (r *WallRank) Size() int { return len(r.sim.ranks) }

// record appends a trace event with the current wallclock timestamp.
func (r *WallRank) record(kind trace.EventKind, peer, tag, size int, msgID int64, chanSeq int) {
	now := r.sim.now()
	// Per-rank monotonicity guard: the coarse clock can tie.
	if n := len(r.events); n > 0 && now < r.events[n-1].Time {
		now = r.events[n-1].Time
	}
	r.events = append(r.events, trace.Event{
		Rank: r.id, Kind: kind, Peer: peer, Tag: tag, Size: size,
		MsgID: msgID, ChanSeq: chanSeq, Time: now, Lamport: r.lamport,
	})
}

// Send implements Proc.
func (r *WallRank) Send(dst, tag int, data []byte) {
	r.send(dst, tag, len(data), append([]byte(nil), data...))
}

// SendSize implements Proc.
func (r *WallRank) SendSize(dst, tag, size int) {
	if size < 0 {
		panic(fmt.Sprintf("sim: negative message size %d", size))
	}
	r.send(dst, tag, size, nil)
}

func (r *WallRank) send(dst, tag, size int, data []byte) {
	if dst < 0 || dst >= r.Size() || dst == r.id {
		panic(fmt.Sprintf("sim: wallclock rank %d sent to invalid peer %d", r.id, dst))
	}
	if tag < 0 {
		panic(fmt.Sprintf("sim: wallclock rank %d used negative tag %d", r.id, tag))
	}
	// Injected congestion: a real sleep before delivery. Delivering
	// inline from the (sequential) sender preserves per-channel FIFO.
	if r.rng.Bernoulli(r.sim.cfg.NDPercent / 100) {
		delay := time.Duration(r.rng.Intn(int(r.sim.cfg.JitterMax) + 1))
		//anacin:allow wallclock injected congestion on this runtime is a real sleep by design (the DES models it in virtual time instead)
		time.Sleep(delay)
	}
	seq := r.chanSeqs[dst]
	r.chanSeqs[dst] = seq + 1
	r.lamport++
	msg := &message{
		id:          r.sim.msgID.Add(1) - 1,
		src:         r.id,
		dst:         dst,
		tag:         tag,
		size:        size,
		data:        data,
		chanSeq:     seq,
		sendLamport: r.lamport,
	}
	r.record(trace.KindSend, dst, tag, size, msg.id, seq)

	d := r.sim.ranks[dst]
	d.mu.Lock()
	d.mailbox = append(d.mailbox, msg)
	d.cond.Broadcast()
	d.mu.Unlock()
}

// Recv implements Proc.
func (r *WallRank) Recv(src, tag int) Message {
	if src != AnySource && (src < 0 || src >= r.Size()) {
		panic(fmt.Sprintf("sim: wallclock rank %d received from invalid src %d", r.id, src))
	}
	//anacin:allow wallclock the receive deadline guards against real deadlocks on real goroutines; there is no virtual clock to consult here
	deadline := time.Now().Add(r.sim.cfg.RecvTimeout)
	//anacin:allow wallclock same deadline, armed as a timer so sleepers are woken
	timer := time.AfterFunc(r.sim.cfg.RecvTimeout, func() {
		r.sim.fail(fmt.Errorf("sim: wallclock rank %d receive (src=%d, tag=%d) timed out — deadlock?", r.id, src, tag))
	})
	defer timer.Stop()

	r.mu.Lock()
	for {
		if err := r.sim.failure(); err != nil {
			r.mu.Unlock()
			panic(abortSentinel{})
		}
		for i, msg := range r.mailbox {
			if filterMatches(src, tag, nil, msg) {
				// Same removal policy as Rank.removeMailbox: O(1) for the
				// front-of-queue match that dominates fan-in drains.
				if tail := len(r.mailbox) - 1 - i; tail > mailboxShiftMax && i < tail {
					copy(r.mailbox[1:i+1], r.mailbox[:i])
					r.mailbox[0] = nil
					r.mailbox = r.mailbox[1:]
				} else {
					r.mailbox = append(r.mailbox[:i], r.mailbox[i+1:]...)
				}
				r.mu.Unlock()
				r.lamport = maxInt64(r.lamport, msg.sendLamport) + 1
				r.record(trace.KindRecv, msg.src, msg.tag, msg.size, msg.id, msg.chanSeq)
				return Message{Src: msg.src, Tag: msg.tag, Size: msg.size, Data: msg.data}
			}
		}
		//anacin:allow wallclock deadlock-guard deadline check (see Recv above)
		if time.Now().After(deadline) {
			r.mu.Unlock()
			panic(abortSentinel{})
		}
		r.cond.Wait()
	}
}

// Compute implements Proc: sleeps the scaled-down real equivalent.
func (r *WallRank) Compute(d vtime.Duration) {
	if d <= 0 {
		return
	}
	//anacin:allow wallclock Compute on this runtime burns real time: scaled-down sleeps keep relative compute costs while racing natively
	time.Sleep(time.Duration(int64(d) / int64(r.sim.cfg.ComputeScale)))
}

// RunWallclock executes program on every rank as a real goroutine and
// returns the recorded trace. Unlike Run, the result is NOT
// reproducible: the Go scheduler's interleaving is part of the
// execution. Collectives and non-blocking calls are unavailable; use
// the DES runtime for those.
func RunWallclock(cfg WallConfig, meta trace.Meta, program func(Proc)) (*trace.Trace, error) {
	if program == nil {
		return nil, fmt.Errorf("sim: nil program")
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	meta.Procs = cfg.Procs
	meta.Nodes = 1
	meta.NDPercent = cfg.NDPercent
	meta.Seed = cfg.Seed

	//anacin:allow wallclock run epoch: every event timestamp is real elapsed time since this instant
	s := &wallSim{cfg: cfg, start: time.Now()}
	base := vtime.NewRNG(cfg.Seed)
	s.ranks = make([]*WallRank, cfg.Procs)
	for i := range s.ranks {
		r := &WallRank{sim: s, id: i, rng: base.Split(uint64(i) + 1), chanSeqs: make(map[int]int)}
		r.cond = sync.NewCond(&r.mu)
		s.ranks[i] = r
	}

	var wg sync.WaitGroup
	for _, r := range s.ranks {
		wg.Add(1)
		//anacin:allow goroutine the wallclock contrast runtime races real goroutines on purpose: native scheduler non-determinism is the measured object
		go func(r *WallRank) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					if _, isAbort := v.(abortSentinel); !isAbort {
						s.fail(fmt.Errorf("sim: wallclock rank %d panicked: %v", r.id, v))
					}
				}
			}()
			r.lamport++
			r.record(trace.KindInit, trace.NoPeer, 0, 0, trace.NoMsg, 0)
			program(r)
			r.lamport++
			r.record(trace.KindFinalize, trace.NoPeer, 0, 0, trace.NoMsg, 0)
		}(r)
	}
	wg.Wait()
	if err := s.failure(); err != nil {
		return nil, err
	}
	tr := trace.New(meta)
	for _, r := range s.ranks {
		for i := range r.events {
			tr.Append(r.events[i])
		}
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("sim: wallclock trace invalid: %w", err)
	}
	return tr, nil
}
