package sim

import (
	"bytes"
	"testing"

	"github.com/anacin-go/anacinx/internal/trace"
)

// mixedTraffic is a program whose channel rows span both chanTable
// regimes: rank 0 fans a message out to every other rank (a row far
// past chanRowLinearMax at the tested sizes), nonzero ranks race
// replies into rank 0's wildcard receives, and each rank additionally
// exchanges with its ring neighbours (short rows).
func mixedTraffic(iters int) Program {
	return func(r *Rank) {
		p := r.Size()
		right := (r.id + 1) % p
		left := (r.id - 1 + p) % p
		for it := 0; it < iters; it++ {
			if r.id == 0 {
				for dst := 1; dst < p; dst++ {
					r.SendSize(dst, it, 4)
				}
				for i := 0; i < p-1; i++ {
					r.Recv(AnySource, it) // wildcard source, but don't eat ring tags
				}
			} else {
				r.Recv(0, it)
				r.SendSize(0, it, 4)
			}
			r.SendSize(right, 1000+it, 2)
			r.SendSize(left, 2000+it, 2)
			r.Recv(left, 1000+it)
			r.Recv(right, 2000+it)
		}
	}
}

func runMixed(t *testing.T, procs int, nd float64) []byte {
	t.Helper()
	cfg := DefaultConfig(procs, 77)
	cfg.Nodes = 2
	cfg.NDPercent = nd
	tr, _, err := Run(cfg, trace.Meta{Pattern: "mixed"}, mixedTraffic(3))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

// The channel table has two lookup regimes: linear rows and map-indexed
// rows (the former dense/sparse split, now per source row). Forcing
// every row into each regime must not change a single trace byte —
// lookup strategy is an implementation detail; channel state and
// non-overtaking bumps are semantics.
func TestChanTableRegimesProduceIdenticalTraces(t *testing.T) {
	orig := chanRowLinearMax
	defer func() { chanRowLinearMax = orig }()

	for _, nd := range []float64{0, 50} {
		chanRowLinearMax = orig
		def := runMixed(t, 48, nd)

		chanRowLinearMax = 0 // every row map-indexed from the first touch
		sparse := runMixed(t, 48, nd)

		chanRowLinearMax = 1 << 30 // pure linear scan, dense-equivalent
		linear := runMixed(t, 48, nd)

		if !bytes.Equal(def, sparse) {
			t.Errorf("nd=%v: map-indexed rows changed the trace bytes", nd)
		}
		if !bytes.Equal(def, linear) {
			t.Errorf("nd=%v: linear rows changed the trace bytes", nd)
		}
	}
}

// The row-escalation boundary itself: a row crossing chanRowLinearMax
// mid-run keeps its accumulated per-channel state.
func TestChanTableEscalationKeepsState(t *testing.T) {
	orig := chanRowLinearMax
	defer func() { chanRowLinearMax = orig }()
	chanRowLinearMax = 4

	tbl := newChanTable(64)
	for dst := 1; dst < 64; dst++ {
		st := tbl.at(0, dst)
		st.seq = dst // marker written while the row may still be linear
	}
	for dst := 1; dst < 64; dst++ {
		if got := tbl.at(0, dst).seq; got != dst {
			t.Fatalf("channel (0,%d): seq %d after escalation, want %d", dst, got, dst)
		}
	}
	if got := tbl.channels(); got != 63 {
		t.Fatalf("channels = %d, want 63", got)
	}
}

// Memory-footprint regression (the tentpole's O(P²) fix): at P = 4096
// under nearest-neighbour traffic, resident channel state must scale
// with channels actually touched, not with P². The dense table this
// replaces held 4096² entries ≈ 384 MiB; the per-source rows must stay
// within a few MiB including row headers.
func TestChanTableFootprintNearestNeighbor4096(t *testing.T) {
	const p = 4096
	tbl := newChanTable(p)
	for r := 0; r < p; r++ {
		tbl.at(r, (r+1)%p)
		tbl.at(r, (r-1+p)%p)
	}
	if got, want := tbl.channels(), 2*p; got != want {
		t.Fatalf("channels = %d, want %d", got, want)
	}
	got := tbl.footprintBytes()
	// Generous O(channels + P) budget: row headers (~80 B each) plus two
	// entries per rank with append slack. The dense table was ~384 MiB.
	const budget = 4 << 20
	if got > budget {
		t.Errorf("footprint = %d B for %d channels, exceeds O(channels) budget %d B", got, tbl.channels(), budget)
	}
	// And the budget really is sublinear in P²: a dense table would not fit.
	if dense := p * p * 24; got > dense/32 {
		t.Errorf("footprint = %d B is within 32x of a dense table (%d B)", got, dense)
	}
}

// A 1024-rank message-race simulation must complete and stay
// proportional to traffic, exercising every large-P path at once:
// per-source channel rows, lazy arena carving, and fan-in growth past
// the hint on rank 0. Also the body of the CI large-p smoke job, which
// runs it under the race detector with a wall-clock budget.
func TestLargeP1024MessageRace(t *testing.T) {
	const procs = 1024
	cfg := DefaultConfig(procs, 3)
	cfg.Nodes = 4
	cfg.NDPercent = 25
	cfg.CaptureStacks = false
	cfg.EventsPerRankHint = 6 // 2 + 2*iters*(P-1)/P for iters=2
	tr, stats, err := Run(cfg, trace.Meta{Pattern: "message_race"}, func(r *Rank) {
		for it := 0; it < 2; it++ {
			if r.id == 0 {
				for i := 0; i < r.Size()-1; i++ {
					r.Recv(AnySource, AnyTag)
				}
			} else {
				r.SendSize(0, it, 1)
			}
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	wantMsgs := 2 * (procs - 1)
	if stats.Messages != wantMsgs {
		t.Errorf("messages = %d, want %d", stats.Messages, wantMsgs)
	}
	if got, want := tr.NumEvents(), 2*procs+2*wantMsgs; got != want {
		t.Errorf("events = %d, want %d", got, want)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
}
