package experiments

import (
	"testing"

	"github.com/anacin-go/anacinx/internal/analysis"
	"github.com/anacin-go/anacinx/internal/core"
	"github.com/anacin-go/anacinx/internal/kernel"
)

// Seed-robustness meta-tests: the figure runners use committed seeds,
// so a skeptic could ask whether the paper-shape claims hold only for
// those. These tests re-draw the run samples from several unrelated
// seed bases and require the qualitative orderings to hold every time.

// medianAt samples a configuration from the given seed base and returns
// the median pairwise WL-2 distance.
func medianAt(t *testing.T, pattern string, procs, iters int, nd float64, baseSeed int64, runs int) float64 {
	t.Helper()
	e := core.DefaultExperiment(pattern, procs, nd)
	e.Iterations = iters
	e.Runs = runs
	e.BaseSeed = baseSeed
	e.CaptureStacks = false
	rs, err := e.Execute()
	if err != nil {
		t.Fatal(err)
	}
	return analysis.Summarize(rs.Distances(kernel.NewWL(2))).Median
}

func TestFig5ShapeRobustAcrossSeeds(t *testing.T) {
	for _, base := range []int64{1, 5000, 123456} {
		big := medianAt(t, "unstructured_mesh", 12, 1, 100, base, 8)
		small := medianAt(t, "unstructured_mesh", 6, 1, 100, base, 8)
		if big <= small {
			t.Errorf("seed base %d: median(12p)=%v not above median(6p)=%v", base, big, small)
		}
	}
}

func TestFig6ShapeRobustAcrossSeeds(t *testing.T) {
	for _, base := range []int64{1, 5000, 123456} {
		two := medianAt(t, "unstructured_mesh", 8, 2, 100, base, 8)
		one := medianAt(t, "unstructured_mesh", 8, 1, 100, base, 8)
		if two <= one {
			t.Errorf("seed base %d: median(2 iters)=%v not above median(1 iter)=%v", base, two, one)
		}
	}
}

func TestFig7AnchorsRobustAcrossSeeds(t *testing.T) {
	for _, base := range []int64{1, 5000, 123456} {
		zero := medianAt(t, "amg2013", 8, 1, 0, base, 6)
		full := medianAt(t, "amg2013", 8, 1, 100, base, 6)
		if zero != 0 {
			t.Errorf("seed base %d: median at 0%% ND = %v", base, zero)
		}
		if full <= 0 {
			t.Errorf("seed base %d: median at 100%% ND = %v", base, full)
		}
	}
}
