package experiments

import (
	"fmt"
	"os"

	"github.com/anacin-go/anacinx/internal/analysis"
	"github.com/anacin-go/anacinx/internal/core"
	"github.com/anacin-go/anacinx/internal/kernel"
	"github.com/anacin-go/anacinx/internal/sim"
	"github.com/anacin-go/anacinx/internal/viz"
)

// Ablations beyond the paper's figures, reproducing the design-choice
// analyses DESIGN.md calls out. They run with `anacin figures -fig
// abl-kernels` / `-fig abl-replay` and as benchmarks.

// AblationKernels sweeps the graph kernel on one fixed 100%-ND workload:
// which kernels can see match-order non-determinism at all, and what
// does depth buy? The expected outcome — the reason ANACIN-X uses WL
// depth 2 — is that histogram kernels and shallow WL measure zero.
func AblationKernels(o Options) (*Result, error) {
	procs := o.scale(16)
	r := &Result{ID: "abl-kernels", Title: fmt.Sprintf(
		"Kernel ablation: median distance by kernel (unstructured mesh, %d procs, 100%% ND, %d runs)", procs, o.runs())}

	e := core.DefaultExperiment("unstructured_mesh", procs, 100)
	e.Runs = o.runs()
	e.CaptureStacks = false
	rs, err := e.Execute()
	if err != nil {
		return nil, err
	}

	kernels := []kernel.Kernel{
		kernel.NewWL(0), kernel.NewWL(1), kernel.NewWL(2), kernel.NewWL(3), kernel.NewWL(4),
		kernel.WL{H: 2, Directed: false},
		kernel.VertexHistogram{}, kernel.EdgeHistogram{}, kernel.ShortestPath{},
	}
	medians := make(map[string]float64, len(kernels))
	for _, k := range kernels {
		s := analysis.Summarize(rs.Distances(k))
		medians[k.Name()] = s.Median
		r.Series = append(r.Series, fmt.Sprintf("%-14s median=%.4g mean=%.4g max=%.4g",
			k.Name(), s.Median, s.Mean, s.Max))
	}
	r.Checks = append(r.Checks,
		Check{
			Name: "histogram kernels are blind to match-order non-determinism",
			OK:   medians["vertex-hist"] == 0 && medians["edge-hist"] == 0,
			Detail: fmt.Sprintf("vertex=%.4g edge=%.4g",
				medians["vertex-hist"], medians["edge-hist"]),
		},
		Check{
			Name:   "WL depth 2 (the ANACIN-X default) sees it",
			OK:     medians["wlst-h2d"] > 0,
			Detail: fmt.Sprintf("wl2=%.4g", medians["wlst-h2d"]),
		},
		Check{
			Name: "deeper refinement sees at least as much",
			OK:   medians["wlst-h3d"] >= medians["wlst-h2d"] && medians["wlst-h4d"] >= medians["wlst-h3d"],
			Detail: fmt.Sprintf("wl2=%.4g wl3=%.4g wl4=%.4g",
				medians["wlst-h2d"], medians["wlst-h3d"], medians["wlst-h4d"]),
		},
	)
	return r, nil
}

// AblationExposure measures each pattern's exposure threshold: the
// smallest injected-ND percentage at which its communication structure
// first diverges (noise-injection in the spirit of the paper's
// reference on exposing subtle message races). Racing patterns expose
// at low thresholds; concrete-source controls never do.
func AblationExposure(o Options) (*Result, error) {
	procs := o.scale(16)
	probes := 4
	resolution := 2.0
	if o.Quick {
		probes, resolution = 3, 5.0
	}
	r := &Result{ID: "abl-expose", Title: fmt.Sprintf(
		"Exposure thresholds: smallest diverging ND%% per pattern (%d procs, %d probes)", procs, probes)}

	thresholds := map[string]float64{}
	exposed := map[string]bool{}
	for _, pattern := range []string{"message_race", "amg2013", "unstructured_mesh", "miniamr", "mcb", "ring_halo", "stencil2d"} {
		e := core.DefaultExperiment(pattern, procs, 0)
		e.Iterations = 2
		res, err := e.ExposureSearch(probes, resolution)
		if err != nil {
			return nil, err
		}
		exposed[pattern] = res.Exposed
		if res.Exposed {
			thresholds[pattern] = res.ThresholdND
			r.Series = append(r.Series, fmt.Sprintf("%-18s exposes at ~%.2f%% injected ND", pattern, res.ThresholdND))
		} else {
			r.Series = append(r.Series, fmt.Sprintf("%-18s never exposes (structure immune to delays)", pattern))
		}
	}
	racingOK := exposed["message_race"] && exposed["amg2013"] && exposed["unstructured_mesh"] &&
		exposed["miniamr"] && exposed["mcb"]
	controlOK := !exposed["ring_halo"] && !exposed["stencil2d"]
	r.Checks = append(r.Checks,
		Check{
			Name:   "every wildcard-receive pattern exposes at some ND%",
			OK:     racingOK,
			Detail: fmt.Sprintf("thresholds=%v", thresholds),
		},
		Check{
			Name:   "concrete-source controls never expose",
			OK:     controlOK,
			Detail: fmt.Sprintf("ring_halo=%v stencil2d=%v", exposed["ring_halo"], exposed["stencil2d"]),
		},
	)
	return r, nil
}

// AblationReplay contrasts free-running 100%-ND samples with
// record-and-replay (the ReMPI baseline): replay must drive every
// pairwise distance to zero and collapse the sample to one structure.
func AblationReplay(o Options) (*Result, error) {
	procs := o.scale(16)
	r := &Result{ID: "abl-replay", Title: fmt.Sprintf(
		"Record-and-replay ablation (unstructured mesh, %d procs, 100%% ND, %d runs)", procs, o.runs())}

	record := core.DefaultExperiment("unstructured_mesh", procs, 100)
	record.Iterations = 2
	record.Runs = 1
	recorded, err := record.Execute()
	if err != nil {
		return nil, err
	}
	sched := sim.RecordSchedule(recorded.Traces[0])

	free := record
	free.Runs = o.runs()
	free.BaseSeed = 500
	freeRS, err := free.Execute()
	if err != nil {
		return nil, err
	}
	replayed := free
	replayed.Replay = sched
	replayRS, err := replayed.Execute()
	if err != nil {
		return nil, err
	}

	k := o.kernel()
	sFree := analysis.Summarize(freeRS.Distances(k))
	sReplay := analysis.Summarize(replayRS.Distances(k))
	r.Series = append(r.Series,
		fmt.Sprintf("free-running: %s (%d distinct structures)", sFree, freeRS.DistinctStructures()),
		fmt.Sprintf("replayed:     %s (%d distinct structures)", sReplay, replayRS.DistinctStructures()),
	)
	r.Checks = append(r.Checks,
		Check{
			Name:   "free-running sample shows non-determinism",
			OK:     sFree.Max > 0 && freeRS.DistinctStructures() > 1,
			Detail: fmt.Sprintf("max=%.4g structures=%d", sFree.Max, freeRS.DistinctStructures()),
		},
		Check{
			Name:   "replay suppresses it completely",
			OK:     sReplay.Max == 0 && replayRS.DistinctStructures() == 1,
			Detail: fmt.Sprintf("max=%.4g structures=%d", sReplay.Max, replayRS.DistinctStructures()),
		},
	)
	if err := r.writeArtifact(&o, "abl_replay.svg", func(f *os.File) error {
		return viz.ViolinPlotSVG(f, []viz.ViolinGroup{
			{Label: "free-running", Violin: analysis.NewViolin(freeRS.Distances(k), 128)},
			{Label: "replayed", Violin: analysis.NewViolin(replayRS.Distances(k), 128)},
		}, r.Title, "kernel distance")
	}); err != nil {
		return nil, err
	}
	return r, nil
}
