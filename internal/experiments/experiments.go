// Package experiments reproduces every figure of the paper's course
// module, one runner per figure:
//
//	Fig 1   example event graph (message race, 3 processes)
//	Fig 2   message-race event graph, 4 processes
//	Fig 3   AMG2013 event graph, 2 processes
//	Fig 4   two 100%-ND runs of one configuration differ (a/b)
//	Fig 5   kernel-distance violins: 32 vs 16 processes (a/b)
//	Fig 6   kernel-distance violins: 2 vs 1 iterations (a/b)
//	Fig 7   kernel distance vs injected ND% (0..100 step 10)
//	Fig 8   callstack frequencies in high-ND regions
//
// Tables I and II of the paper are curricular outlines, not
// measurements; they are reproduced in docs/COURSE.md.
//
// Each runner returns a Result carrying the measured series, the
// paper-shape checks (does the qualitative claim hold in this
// reproduction?), and the artifact files written to Options.OutDir.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/anacin-go/anacinx/internal/kernel"
)

// Options control where artifacts go and how large the workloads are.
type Options struct {
	// OutDir receives SVG/DOT artifacts; empty disables file output.
	OutDir string
	// Quick shrinks process and run counts (~8 procs, 6 runs) so the
	// full suite executes in seconds — used by tests; benchmarks and
	// the CLI default to the paper-scale configuration.
	Quick bool
	// Kernel overrides the graph kernel (nil = WL depth 2, the
	// ANACIN-X default).
	Kernel kernel.Kernel
}

func (o *Options) kernel() kernel.Kernel {
	if o.Kernel != nil {
		return o.Kernel
	}
	return kernel.NewWL(2)
}

// scale maps a paper-scale process count to the quick-mode equivalent.
func (o *Options) scale(procs int) int {
	if !o.Quick {
		return procs
	}
	scaled := procs / 4
	if scaled < 4 {
		scaled = 4
	}
	return scaled
}

// runs returns the per-configuration sample size (paper: 20).
func (o *Options) runs() int {
	if o.Quick {
		return 6
	}
	return 20
}

// alpha is the significance level the shape checks demand. Quick mode
// uses tiny samples (6 runs → 15 pairs), which cannot reach
// paper-scale significance, so the gate is loosened there; the
// benchmarks run at paper scale with the strict level.
func (o *Options) alpha() float64 {
	if o.Quick {
		return 0.2
	}
	return 0.01
}

// Check is one qualitative claim from the paper evaluated against this
// reproduction's measurements.
type Check struct {
	// Name states the claim, e.g. "median distance grows with procs".
	Name string
	// OK reports whether the reproduction exhibits the claimed shape.
	OK bool
	// Detail carries the numbers behind the verdict.
	Detail string
}

// Result is one figure's reproduction output.
type Result struct {
	// ID is the figure identifier, e.g. "fig5".
	ID string
	// Title is a human-readable description.
	Title string
	// Series holds printable data lines (the rows the paper plots).
	Series []string
	// Checks are the paper-shape verdicts.
	Checks []Check
	// Files lists artifacts written to OutDir.
	Files []string
}

// Passed reports whether every shape check held.
func (r *Result) Passed() bool {
	for _, c := range r.Checks {
		if !c.OK {
			return false
		}
	}
	return true
}

// writeArtifact saves bytes under OutDir (if set) and records the path
// in the result.
func (r *Result) writeArtifact(o *Options, name string, render func(f *os.File) error) error {
	if o.OutDir == "" {
		return nil
	}
	if err := os.MkdirAll(o.OutDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(o.OutDir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return fmt.Errorf("experiments: render %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	r.Files = append(r.Files, path)
	return nil
}

// Runner is a figure-reproduction entry point.
type Runner func(o Options) (*Result, error)

// All maps experiment IDs to their runners: the paper's eight figures
// plus the two ablation studies.
func All() map[string]Runner {
	return map[string]Runner{
		"fig1":        Fig1EventGraph,
		"fig2":        Fig2MessageRace,
		"fig3":        Fig3AMG,
		"fig4":        Fig4NonDeterminism,
		"fig5":        Fig5ProcessCount,
		"fig6":        Fig6Iterations,
		"fig7":        Fig7NDSweep,
		"fig8":        Fig8Callstacks,
		"abl-kernels": AblationKernels,
		"abl-replay":  AblationReplay,
		"abl-expose":  AblationExposure,
	}
}

// IDs returns the experiment ids in presentation order (figures first,
// then ablations).
func IDs() []string {
	return []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"abl-kernels", "abl-replay", "abl-expose"}
}
