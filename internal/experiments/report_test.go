package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteMarkdownReport(t *testing.T) {
	results := []*Result{
		{
			ID:     "fig5",
			Title:  "process count",
			Series: []string{"32 procs med=10.9", "16 procs med=7.5"},
			Checks: []Check{{Name: "grows with procs", OK: true, Detail: "10.9 > 7.5"}},
			Files:  []string{"out/fig5.svg"},
		},
		{
			ID:     "fig7",
			Title:  "nd sweep",
			Checks: []Check{{Name: "rising", OK: false, Detail: "flat"}},
		},
	}
	var buf bytes.Buffer
	if err := WriteMarkdownReport(&buf, results); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# Reproduction report",
		"Checks passed: 1 / 2",
		"## fig5 — process count",
		"[PASS]", "[FAIL]",
		"32 procs med=10.9",
		"artifact: `out/fig5.svg`",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestWriteMarkdownReportEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMarkdownReport(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0 / 0") {
		t.Error("empty report lacks zero summary")
	}
}
