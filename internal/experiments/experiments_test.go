package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/anacin-go/anacinx/internal/kernel"
)

func TestAllCoversEveryID(t *testing.T) {
	runners := All()
	ids := IDs()
	if len(runners) != len(ids) {
		t.Fatalf("%d runners for %d ids", len(runners), len(ids))
	}
	for _, id := range ids {
		if runners[id] == nil {
			t.Errorf("no runner for %s", id)
		}
	}
}

// TestEveryFigureQuick executes each figure in quick mode, asserts every
// paper-shape check passes, and verifies the artifacts land on disk.
func TestEveryFigureQuick(t *testing.T) {
	outDir := t.TempDir()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := All()[id](Options{Quick: true, OutDir: outDir})
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if res.ID != id {
				t.Errorf("result ID %q", res.ID)
			}
			if res.Title == "" || len(res.Series) == 0 {
				t.Error("missing title or series")
			}
			for _, c := range res.Checks {
				if !c.OK {
					t.Errorf("shape check failed: %s (%s)", c.Name, c.Detail)
				}
			}
			if !res.Passed() {
				t.Error("Passed() = false")
			}
			if strings.HasPrefix(id, "fig") && len(res.Files) == 0 {
				t.Error("no artifacts written")
			}
			for _, f := range res.Files {
				info, err := os.Stat(f)
				if err != nil || info.Size() == 0 {
					t.Errorf("artifact %s missing or empty: %v", f, err)
				}
				if dir := filepath.Dir(f); dir != outDir {
					t.Errorf("artifact %s escaped OutDir", f)
				}
			}
		})
	}
}

func TestNoOutDirWritesNothing(t *testing.T) {
	res, err := Fig2MessageRace(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Files) != 0 {
		t.Errorf("files written without OutDir: %v", res.Files)
	}
}

func TestKernelOverride(t *testing.T) {
	// The process-count relation must survive a deeper WL kernel.
	res, err := Fig5ProcessCount(Options{Quick: true, Kernel: kernel.NewWL(3)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Errorf("WL-3 kernel broke the Fig 5 shape: %+v", res.Checks)
	}
	// The edge-histogram baseline, by contrast, is blind to pure
	// match-order changes: both settings measure ~zero. This is the
	// ablation argument for WL depth >= 2.
	res, err = Fig5ProcessCount(Options{Quick: true, Kernel: kernel.EdgeHistogram{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed() {
		t.Log("edge histogram unexpectedly separated the settings (harmless, but surprising)")
	}
}

func TestFig7SettingsShape(t *testing.T) {
	quick := Options{Quick: true}
	procs, levels := Fig7Settings(&quick)
	if procs < 4 || len(levels) < 3 {
		t.Errorf("quick settings %d procs, %d levels", procs, len(levels))
	}
	full := Options{}
	procs, levels = Fig7Settings(&full)
	if procs != 32 || len(levels) != 11 || levels[0] != 0 || levels[10] != 100 {
		t.Errorf("paper settings wrong: %d procs, levels %v", procs, levels)
	}
}

func TestResultPassed(t *testing.T) {
	r := &Result{Checks: []Check{{OK: true}, {OK: true}}}
	if !r.Passed() {
		t.Error("all-OK result not passed")
	}
	r.Checks = append(r.Checks, Check{OK: false})
	if r.Passed() {
		t.Error("failed check ignored")
	}
	empty := &Result{}
	if !empty.Passed() {
		t.Error("no checks should pass vacuously")
	}
}

func TestFig4SeriesMentionOrderHashes(t *testing.T) {
	res, err := Fig4NonDeterminism(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(res.Series, "\n")
	if !strings.Contains(joined, "order hashes") {
		t.Errorf("fig4 series missing order hashes:\n%s", joined)
	}
}
