package experiments

import (
	"fmt"
	"os"

	"github.com/anacin-go/anacinx/internal/core"
	"github.com/anacin-go/anacinx/internal/graph"
	"github.com/anacin-go/anacinx/internal/kernel"
	"github.com/anacin-go/anacinx/internal/viz"
)

// Figures 1–4: event-graph visualizations. These do not scale with
// Quick — the paper draws them at tiny process counts already.

// singleRun executes one run of a pattern configuration and returns its
// event graph.
func singleRun(pattern string, procs, iterations int, nd float64, seed int64) (*core.RunSet, error) {
	e := core.DefaultExperiment(pattern, procs, nd)
	e.Iterations = iterations
	e.Runs = 1
	e.BaseSeed = seed
	rs, err := e.Execute()
	if err != nil {
		return nil, err
	}
	return rs, nil
}

// renderEventGraph writes the SVG and DOT artifacts for one event graph
// and appends the ASCII rendition to the result's series.
func renderEventGraph(r *Result, o *Options, g *graph.Graph, stem, title string) error {
	if err := r.writeArtifact(o, stem+".svg", func(f *os.File) error {
		return viz.EventGraphSVG(f, g, title)
	}); err != nil {
		return err
	}
	if err := r.writeArtifact(o, stem+".dot", func(f *os.File) error {
		return g.WriteDOT(f, title)
	}); err != nil {
		return err
	}
	r.Series = append(r.Series, fmt.Sprintf("%s: %d nodes, %d edges (%d message edges)",
		title, g.NumNodes(), g.NumEdges(), g.MessageEdges()))
	return nil
}

// Fig1EventGraph reproduces Figure 1: an example event graph of a
// message race between three MPI processes.
func Fig1EventGraph(o Options) (*Result, error) {
	r := &Result{ID: "fig1", Title: "Example event graph (message race, 3 processes)"}
	rs, err := singleRun("message_race", 3, 1, 0, 1)
	if err != nil {
		return nil, err
	}
	g := rs.Graphs[0]
	if err := renderEventGraph(r, &o, g, "fig1_event_graph", "Fig 1: event graph, 3 processes"); err != nil {
		return nil, err
	}
	r.Checks = append(r.Checks,
		Check{
			Name:   "graph has one row per rank and send→recv message edges",
			OK:     g.Ranks() == 3 && g.MessageEdges() == 2,
			Detail: fmt.Sprintf("ranks=%d message_edges=%d", g.Ranks(), g.MessageEdges()),
		})
	return r, nil
}

// Fig2MessageRace reproduces Figure 2: the message-race pattern on four
// processes — three senders racing into rank 0.
func Fig2MessageRace(o Options) (*Result, error) {
	r := &Result{ID: "fig2", Title: "Message race event graph (4 processes)"}
	rs, err := singleRun("message_race", 4, 1, 0, 1)
	if err != nil {
		return nil, err
	}
	g := rs.Graphs[0]
	if err := renderEventGraph(r, &o, g, "fig2_message_race", "Fig 2: message race, 4 processes"); err != nil {
		return nil, err
	}
	recvsOnZero := 0
	for i := range g.Nodes {
		if g.Nodes[i].Kind.IsReceive() && g.Nodes[i].Rank == 0 {
			recvsOnZero++
		}
	}
	r.Checks = append(r.Checks,
		Check{
			Name:   "three independent messages race into rank 0",
			OK:     g.Ranks() == 4 && recvsOnZero == 3 && g.MessageEdges() == 3,
			Detail: fmt.Sprintf("ranks=%d rank0_recvs=%d message_edges=%d", g.Ranks(), recvsOnZero, g.MessageEdges()),
		})
	return r, nil
}

// Fig3AMG reproduces Figure 3: the AMG2013 pattern on two processes —
// each rank sends to the other, twice.
func Fig3AMG(o Options) (*Result, error) {
	r := &Result{ID: "fig3", Title: "AMG2013 event graph (2 processes)"}
	rs, err := singleRun("amg2013", 2, 1, 0, 1)
	if err != nil {
		return nil, err
	}
	g := rs.Graphs[0]
	if err := renderEventGraph(r, &o, g, "fig3_amg2013", "Fig 3: AMG2013, 2 processes"); err != nil {
		return nil, err
	}
	// Two rounds × each rank sends one message to the other = 4 message
	// edges, two in each direction.
	r.Checks = append(r.Checks,
		Check{
			Name:   "each process sends to the other twice",
			OK:     g.Ranks() == 2 && g.MessageEdges() == 4,
			Detail: fmt.Sprintf("ranks=%d message_edges=%d", g.Ranks(), g.MessageEdges()),
		})
	return r, nil
}

// Fig4NonDeterminism reproduces Figure 4: two runs of the same
// message-race configuration at 100% non-determinism produce different
// communication patterns (the messages arrive at rank 0 in different
// orders).
func Fig4NonDeterminism(o Options) (*Result, error) {
	r := &Result{ID: "fig4", Title: "Two non-deterministic executions of one configuration (message race, 4 processes, 100% ND)"}
	const procs = 4
	base, err := singleRun("message_race", procs, 1, 100, 1)
	if err != nil {
		return nil, err
	}
	// Search nearby seeds for a run whose match order differs — the
	// paper likewise reruns until non-determinism manifests ("tests
	// should be run across multiple compute nodes to increase the
	// likelihood that runs are non-deterministic").
	var other *core.RunSet
	triedSeeds := 0
	for seed := int64(2); seed < 64; seed++ {
		cand, err := singleRun("message_race", procs, 1, 100, seed)
		if err != nil {
			return nil, err
		}
		triedSeeds++
		if cand.Traces[0].OrderHash() != base.Traces[0].OrderHash() {
			other = cand
			break
		}
	}
	if other == nil {
		r.Checks = append(r.Checks, Check{
			Name:   "two runs with different message-arrival orders exist",
			OK:     false,
			Detail: fmt.Sprintf("no divergent run in %d seeds", triedSeeds),
		})
		return r, nil
	}
	gA, gB := base.Graphs[0], other.Graphs[0]
	if err := renderEventGraph(r, &o, gA, "fig4a_run1", "Fig 4a: run 1"); err != nil {
		return nil, err
	}
	if err := renderEventGraph(r, &o, gB, "fig4b_run2", "Fig 4b: run 2"); err != nil {
		return nil, err
	}
	r.Series = append(r.Series, fmt.Sprintf("order hashes: run1=%x run2=%x (seeds tried: %d)",
		base.Traces[0].OrderHash(), other.Traces[0].OrderHash(), triedSeeds))
	r.Checks = append(r.Checks, Check{
		Name:   "same code + same inputs, different communication pattern",
		OK:     true,
		Detail: "match orders differ at rank 0's wildcard receives",
	})
	// Note for students: with a single round of fully symmetric
	// senders the two graphs are isomorphic, so an unlabeled graph
	// kernel may still report distance 0 — the visualization (rows are
	// rank-labeled) is what exposes the difference here. Quantitative
	// distances use asymmetric workloads (Figs. 5–7).
	d := kernel.Distance(o.kernel(), gA, gB)
	r.Series = append(r.Series, fmt.Sprintf("kernel distance (%s) between the two runs: %.4g", o.kernel().Name(), d))
	return r, nil
}
