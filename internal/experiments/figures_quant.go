package experiments

import (
	"fmt"
	"math"
	"os"
	"strings"

	"github.com/anacin-go/anacinx/internal/analysis"
	"github.com/anacin-go/anacinx/internal/core"
	"github.com/anacin-go/anacinx/internal/viz"
)

// Figures 5–8: the quantitative experiments. Paper-scale settings run
// 20 executions per configuration on up to 32 simulated processes;
// Quick mode shrinks both so the full suite stays test-sized.

// sample executes one configuration and returns its pairwise
// kernel-distance sample plus the run set.
func sample(o *Options, pattern string, procs, iterations int, nd float64) (*core.RunSet, []float64, error) {
	e := core.DefaultExperiment(pattern, procs, nd)
	e.Iterations = iterations
	e.Runs = o.runs()
	rs, err := e.Execute()
	if err != nil {
		return nil, nil, err
	}
	return rs, rs.Distances(o.kernel()), nil
}

// violinSeries formats one configuration's sample as a printable row.
func violinSeries(label string, dists []float64) string {
	s := analysis.Summarize(dists)
	return fmt.Sprintf("%-16s %s", label, s.String())
}

// Fig5ProcessCount reproduces Figure 5: kernel distances of 20
// executions of the unstructured mesh on 32 vs 16 processes at 100%
// non-determinism. The paper's claim (Goal B.1): more processes, more
// non-determinism.
func Fig5ProcessCount(o Options) (*Result, error) {
	big, small := o.scale(32), o.scale(16)
	if big == small { // quick-mode floor collision
		big = small * 2
	}
	r := &Result{ID: "fig5", Title: fmt.Sprintf(
		"Kernel distances, unstructured mesh, %d vs %d processes (100%% ND, %d runs)", big, small, o.runs())}

	_, dBig, err := sample(&o, "unstructured_mesh", big, 1, 100)
	if err != nil {
		return nil, err
	}
	_, dSmall, err := sample(&o, "unstructured_mesh", small, 1, 100)
	if err != nil {
		return nil, err
	}
	sBig, sSmall := analysis.Summarize(dBig), analysis.Summarize(dSmall)
	r.Series = append(r.Series,
		violinSeries(fmt.Sprintf("(a) %d procs", big), dBig),
		violinSeries(fmt.Sprintf("(b) %d procs", small), dSmall),
	)
	mw, err := analysis.MannWhitney(dBig, dSmall)
	if err != nil {
		return nil, err
	}
	r.Checks = append(r.Checks, Check{
		Name: "number of processes and amount of non-determinism are directly related",
		OK:   sBig.Median > sSmall.Median && mw.Z > 0 && mw.P < o.alpha(),
		Detail: fmt.Sprintf("median(%d procs)=%.4g vs median(%d procs)=%.4g (Mann-Whitney p=%.2g, effect=%.2f)",
			big, sBig.Median, small, sSmall.Median, mw.P, mw.CommonLanguage),
	})
	if err := r.writeArtifact(&o, "fig5_process_count.svg", func(f *os.File) error {
		return viz.ViolinPlotSVG(f, []viz.ViolinGroup{
			{Label: fmt.Sprintf("%d procs", big), Violin: analysis.NewViolin(dBig, 128)},
			{Label: fmt.Sprintf("%d procs", small), Violin: analysis.NewViolin(dSmall, 128)},
		}, r.Title, "kernel distance")
	}); err != nil {
		return nil, err
	}
	return r, nil
}

// Fig6Iterations reproduces Figure 6: kernel distances of the
// unstructured mesh on 16 processes with 2 vs 1 communication-pattern
// iterations at 100% non-determinism. The paper's claim (Goal B.2):
// more iterations accumulate more non-determinism.
func Fig6Iterations(o Options) (*Result, error) {
	procs := o.scale(16)
	r := &Result{ID: "fig6", Title: fmt.Sprintf(
		"Kernel distances, unstructured mesh, 2 vs 1 iterations (%d procs, 100%% ND, %d runs)", procs, o.runs())}

	_, dTwo, err := sample(&o, "unstructured_mesh", procs, 2, 100)
	if err != nil {
		return nil, err
	}
	_, dOne, err := sample(&o, "unstructured_mesh", procs, 1, 100)
	if err != nil {
		return nil, err
	}
	sTwo, sOne := analysis.Summarize(dTwo), analysis.Summarize(dOne)
	r.Series = append(r.Series,
		violinSeries("(a) 2 iterations", dTwo),
		violinSeries("(b) 1 iteration", dOne),
	)
	mw, err := analysis.MannWhitney(dTwo, dOne)
	if err != nil {
		return nil, err
	}
	r.Checks = append(r.Checks, Check{
		Name: "iterations accumulate non-determinism",
		OK:   sTwo.Median > sOne.Median && mw.Z > 0 && mw.P < o.alpha(),
		Detail: fmt.Sprintf("median(2 iters)=%.4g vs median(1 iter)=%.4g (Mann-Whitney p=%.2g, effect=%.2f)",
			sTwo.Median, sOne.Median, mw.P, mw.CommonLanguage),
	})
	if err := r.writeArtifact(&o, "fig6_iterations.svg", func(f *os.File) error {
		return viz.ViolinPlotSVG(f, []viz.ViolinGroup{
			{Label: "2 iterations", Violin: analysis.NewViolin(dTwo, 128)},
			{Label: "1 iteration", Violin: analysis.NewViolin(dOne, 128)},
		}, r.Title, "kernel distance")
	}); err != nil {
		return nil, err
	}
	return r, nil
}

// Fig7Settings returns the ND sweep used by Figure 7 (and Figure 8's
// workload): percentages 0..100 in steps of 10 at paper scale, a
// coarser sweep in quick mode.
func Fig7Settings(o *Options) (procs int, ndLevels []float64) {
	procs = o.scale(32)
	if o.Quick {
		return procs, []float64{0, 25, 50, 75, 100}
	}
	for nd := 0.0; nd <= 100; nd += 10 {
		ndLevels = append(ndLevels, nd)
	}
	return procs, ndLevels
}

// Fig7NDSweep reproduces Figure 7: the measured (un-normalized) kernel
// distance of AMG2013 against the injected percentage of
// non-determinism, 0%..100%, on 32 processes, 1 node, 1 iteration,
// 1-byte messages, 20 runs per setting. The paper's claim (Goal C.1):
// the root-source knob directly controls the measured amount of
// non-determinism.
func Fig7NDSweep(o Options) (*Result, error) {
	procs, ndLevels := Fig7Settings(&o)
	r := &Result{ID: "fig7", Title: fmt.Sprintf(
		"Kernel distance vs %% non-determinism, AMG2013, %d procs, %d runs/setting", procs, o.runs())}

	medians := make([]float64, len(ndLevels))
	groups := make([]viz.ViolinGroup, len(ndLevels))
	for i, nd := range ndLevels {
		_, dists, err := sample(&o, "amg2013", procs, 1, nd)
		if err != nil {
			return nil, err
		}
		s := analysis.Summarize(dists)
		medians[i] = s.Median
		label := fmt.Sprintf("%.0f%%", nd)
		r.Series = append(r.Series, violinSeries(label, dists))
		groups[i] = viz.ViolinGroup{Label: label, Violin: analysis.NewViolin(dists, 128)}
	}

	zeroOK := medians[0] == 0
	endOK := medians[len(medians)-1] > 0
	// Trend: the sweep should rise overall (a saturating curve is
	// fine); require the endpoint to sit near the maximum and a
	// significantly positive Kendall rank correlation between injected
	// and measured ND.
	maxMedian := 0.0
	for _, m := range medians {
		if m > maxMedian {
			maxMedian = m
		}
	}
	trendOK := endOK && medians[len(medians)-1] >= 0.75*maxMedian
	kt, err := analysis.Kendall(ndLevels, medians)
	if err != nil {
		return nil, err
	}

	r.Checks = append(r.Checks,
		Check{
			Name:   "0% injected ND measures zero kernel distance",
			OK:     zeroOK,
			Detail: fmt.Sprintf("median(0%%)=%.4g", medians[0]),
		},
		Check{
			Name: "measured ND grows with injected ND (rising trend)",
			OK:   trendOK && kt.Tau > 0 && kt.P < math.Max(o.alpha(), 0.05),
			Detail: fmt.Sprintf("medians=%v Kendall tau=%.2f (p=%.2g, %d concordant / %d discordant)",
				medians, kt.Tau, kt.P, kt.Concordant, kt.Discordant),
		},
	)
	if err := r.writeArtifact(&o, "fig7_nd_sweep.svg", func(f *os.File) error {
		return viz.ViolinPlotSVG(f, groups, r.Title, "kernel distance")
	}); err != nil {
		return nil, err
	}
	if err := r.writeArtifact(&o, "fig7_nd_trend.svg", func(f *os.File) error {
		return viz.LinePlotSVG(f, []viz.Series{{Label: "median", X: ndLevels, Y: medians}},
			r.Title, "injected non-determinism (%)", "median kernel distance")
	}); err != nil {
		return nil, err
	}
	return r, nil
}

// Fig8Callstacks reproduces Figure 8: the normalized relative frequency
// of call-paths observed at receive events inside high-non-determinism
// regions of logical time, for the same AMG2013 workload as Figure 7 at
// 100% injected non-determinism. The paper's claim (Goal C.2): the
// call-paths surfaced this way point at the root sources — here,
// AMG2013's wildcard-receive function.
func Fig8Callstacks(o Options) (*Result, error) {
	procs, _ := Fig7Settings(&o)
	r := &Result{ID: "fig8", Title: fmt.Sprintf(
		"Callstack frequencies in high-ND regions, AMG2013, %d procs, 100%% ND, %d runs", procs, o.runs())}

	rs, _, err := sample(&o, "amg2013", procs, 1, 100)
	if err != nil {
		return nil, err
	}
	slices := 8
	profile, ranked, err := rs.RootSources(o.kernel(), slices)
	if err != nil {
		return nil, err
	}
	for s, d := range profile.MeanDistance {
		r.Series = append(r.Series, fmt.Sprintf("slice %d: mean distance %.4g (max %.4g)", s, d, profile.MaxDistance[s]))
	}
	for _, cf := range ranked {
		r.Series = append(r.Series, fmt.Sprintf("%.3f (n=%d) %s", cf.Frequency, cf.Count, cf.Callstack))
	}
	topNamesGather := len(ranked) > 0 && containsFrame(ranked[0].Callstack, "gatherWork")
	r.Checks = append(r.Checks, Check{
		Name:   "top-ranked call-path is the wildcard receive (AMG2013.gatherWork)",
		OK:     topNamesGather,
		Detail: topDetail(ranked),
	})
	if len(ranked) > 0 {
		if err := r.writeArtifact(&o, "fig8_callstacks.svg", func(f *os.File) error {
			return viz.BarChartSVG(f, ranked, r.Title)
		}); err != nil {
			return nil, err
		}
	}
	return r, nil
}

func containsFrame(callstack, frame string) bool {
	return strings.Contains(callstack, frame)
}

func topDetail(ranked []analysis.CallstackFrequency) string {
	if len(ranked) == 0 {
		return "no callstacks ranked"
	}
	return "top: " + ranked[0].Callstack
}
