package vtime

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeAdd(t *testing.T) {
	if got := Time(100).Add(50); got != 150 {
		t.Errorf("Time(100).Add(50) = %v, want 150", got)
	}
	if got := Time(100).Add(-30); got != 70 {
		t.Errorf("Time(100).Add(-30) = %v, want 70", got)
	}
}

func TestTimeAddSaturates(t *testing.T) {
	got := Time(math.MaxInt64 - 5).Add(100)
	if got != Forever {
		t.Errorf("overflowing Add = %v, want Forever", got)
	}
	if Forever.Add(1) != Forever {
		t.Errorf("Forever.Add(1) must stay Forever")
	}
}

func TestTimeSub(t *testing.T) {
	if d := Time(500).Sub(200); d != 300 {
		t.Errorf("Sub = %v, want 300", d)
	}
	if d := Time(200).Sub(500); d != -300 {
		t.Errorf("Sub = %v, want -300", d)
	}
}

func TestTimeBeforeAfter(t *testing.T) {
	if !Time(1).Before(2) || Time(2).Before(1) || Time(1).Before(1) {
		t.Error("Before is wrong")
	}
	if !Time(2).After(1) || Time(1).After(2) || Time(1).After(1) {
		t.Error("After is wrong")
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{-500, "-500ns"},
		{2 * Microsecond, "2µs"},
		{3 * Millisecond, "3ms"},
		{4 * Second, "4s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestTimeString(t *testing.T) {
	if got := (1500 * Millisecond).String(); got != "1.5s" {
		t.Errorf("Duration String = %q", got)
	}
	if got := Time(2500).String(); got != "2.5µs" {
		t.Errorf("Time String = %q", got)
	}
}

func TestNanosecondsAndInt63(t *testing.T) {
	if (3 * Microsecond).Nanoseconds() != 3000 {
		t.Error("Nanoseconds wrong")
	}
	r := NewRNG(1)
	for i := 0; i < 100; i++ {
		if v := r.Int63(); v < 0 {
			t.Fatalf("Int63 negative: %d", v)
		}
	}
}

func TestDurationSeconds(t *testing.T) {
	if s := (1500 * Millisecond).Seconds(); s != 1.5 {
		t.Errorf("Seconds = %v, want 1.5", s)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("same seed diverged at step %d: %d vs %d", i, x, y)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	master := NewRNG(7)
	s1 := master.Split(1)
	s2 := master.Split(2)
	s1again := master.Split(1)
	// Same id yields the same substream.
	for i := 0; i < 100; i++ {
		if s1.Uint64() != s1again.Uint64() {
			t.Fatal("Split(1) not reproducible")
		}
	}
	// Distinct ids do not track each other.
	s1 = master.Split(1)
	same := 0
	for i := 0; i < 100; i++ {
		if s1.Uint64() == s2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("substreams 1 and 2 matched %d/100 outputs", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) hit only %d distinct values in 10000 draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(9)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / n
	if math.Abs(mean-1.0) > 0.02 {
		t.Errorf("ExpFloat64 mean = %v, want ~1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	sum, sumsq := 0.0, 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("NormFloat64 mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("NormFloat64 variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(17)
	for trial := 0; trial < 50; trial++ {
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				t.Fatalf("Perm produced invalid permutation %v", p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := NewRNG(19)
	s := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Errorf("Shuffle changed the multiset: %v", s)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := NewRNG(23)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := NewRNG(29)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestExpDuration(t *testing.T) {
	r := NewRNG(31)
	if d := r.ExpDuration(0); d != 0 {
		t.Errorf("ExpDuration(0) = %v, want 0", d)
	}
	if d := r.ExpDuration(-5); d != 0 {
		t.Errorf("ExpDuration(-5) = %v, want 0", d)
	}
	sum := Duration(0)
	const n = 100000
	for i := 0; i < n; i++ {
		d := r.ExpDuration(1000)
		if d < 0 {
			t.Fatalf("negative duration %v", d)
		}
		sum += d
	}
	mean := float64(sum) / n
	if math.Abs(mean-1000) > 30 {
		t.Errorf("ExpDuration(1000) mean = %v", mean)
	}
}

// Property: Intn never escapes its bound, for arbitrary seeds and bounds.
func TestQuickIntnBounded(t *testing.T) {
	f := func(seed int64, bound uint8) bool {
		n := int(bound)%100 + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: identical seeds always produce identical prefixes.
func TestQuickSeedReproducible(t *testing.T) {
	f := func(seed int64) bool {
		a, b := NewRNG(seed), NewRNG(seed)
		for i := 0; i < 20; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Time.Add then Sub round-trips when no saturation occurs.
func TestQuickTimeAddSub(t *testing.T) {
	f := func(base int32, delta int32) bool {
		tm := Time(base)
		d := Duration(delta)
		return tm.Add(d).Sub(tm) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkRNGExpDuration(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.ExpDuration(1000)
	}
}
