// Package vtime provides the virtual-time base and deterministic random
// number generation used by the simulated MPI runtime.
//
// All simulation timestamps are integer nanoseconds (Time). Integer time
// keeps event ordering exact and platform-independent: there is no
// floating-point drift, so a run is bit-reproducible for a given seed.
//
// The random number generator is a SplitMix64-seeded PCG-XSH-RR stream.
// It is deliberately not math/rand: the simulator needs (1) a documented,
// frozen algorithm so traces stay reproducible across Go releases, and
// (2) cheap independent substreams (one per rank, one per network link)
// derived from a master seed.
package vtime

import (
	"fmt"
	"math"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulated execution. Virtual time has no relation to wall-clock time.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations, mirroring time.Duration's constants.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Forever is a time later than any reachable simulation time. It is used
// as the "no pending event" sentinel by schedulers.
const Forever Time = math.MaxInt64

// Add returns the time d after t, saturating at Forever on overflow.
func (t Time) Add(d Duration) Time {
	s := t + Time(d)
	if d >= 0 && s < t {
		return Forever
	}
	return s
}

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// String formats the time with an adaptive unit, e.g. "12.5µs".
func (t Time) String() string { return Duration(t).String() }

// Nanoseconds returns the duration as an integer nanosecond count.
func (d Duration) Nanoseconds() int64 { return int64(d) }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String formats the duration with an adaptive unit.
func (d Duration) String() string {
	neg := ""
	if d < 0 {
		neg = "-"
		d = -d
	}
	switch {
	case d < Microsecond:
		return fmt.Sprintf("%s%dns", neg, int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%s%.3gµs", neg, float64(d)/float64(Microsecond))
	case d < Second:
		return fmt.Sprintf("%s%.3gms", neg, float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%s%.3gs", neg, float64(d)/float64(Second))
	}
}
